// Package vmwild is a library-scale reproduction of "Virtual Machine
// Consolidation in the Wild" (Verma, Bagrodia, Jaiswal — Middleware 2014):
// a study of how static, semi-static, stochastic and dynamic VM
// consolidation behave on large enterprise workloads.
//
// The package offers three levels of API:
//
//   - Workload level: Banking, Airlines, NaturalResources and Beverage
//     return the four calibrated data-center profiles of the paper's
//     Table 2; Generate synthesizes their demand traces deterministically.
//
//   - Planning level: SemiStatic, Stochastic and Dynamic planners turn a
//     monitoring window into a consolidation plan (servers to provision
//     plus an hour-by-hour schedule), which Replay evaluates on an
//     emulated data center (utilization, power, contention).
//
//   - Study level: NewStudy wires workload, planners and emulator together
//     and exposes every table and figure of the paper's evaluation;
//     WriteReport renders the whole reproduction.
//
// A quickstart:
//
//	study, err := vmwild.NewStudy(vmwild.Banking())
//	if err != nil { ... }
//	rows, err := study.CompareCosts() // Figure 7
//	sens, err := study.Sensitivity(nil) // Figure 13
//
// Everything is deterministic under a fixed seed (DefaultSeed); the
// synthetic workload generator substitutes for the paper's proprietary
// traces and is calibrated against the published distributions (see
// DESIGN.md and the calibration tests).
package vmwild
