package vmwild_test

import (
	"fmt"
	"log"
	"os"

	"vmwild"
)

// ExampleGenerate synthesizes a small deterministic trace set.
func ExampleGenerate() {
	profile := vmwild.Airlines()
	profile.Servers = 3
	set, err := vmwild.Generate(profile, 24, vmwild.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("servers:", len(set.Servers))
	fmt.Println("hours:", set.Servers[0].Series.Len())
	// Output:
	// servers: 3
	// hours: 24
}

// ExampleSimulateMigration runs the pre-copy model for a busy 2 GB VM on a
// gigabit link.
func ExampleSimulateMigration() {
	res, err := vmwild.SimulateMigration(2048, 40, vmwild.DefaultMigrationConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("converged:", res.Converged)
	fmt.Println("rounds:", res.Rounds)
	// Output:
	// converged: true
	// rounds: 5
}

// ExampleMigrationReliable checks the Section 4.3 reliability envelope.
func ExampleMigrationReliable() {
	fmt.Println(vmwild.MigrationReliable(0.5, 0.5))
	fmt.Println(vmwild.MigrationReliable(0.9, 0.5))
	// Output:
	// true
	// false
}

// ExampleOlioStudy reproduces the Section 4.1 scaling multipliers.
func ExampleOlioStudy() {
	res, err := vmwild.OlioStudy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("6x throughput costs %.1fx CPU and %.1fx memory\n", res.CPUMultiplier, res.MemMultiplier)
	// Output:
	// 6x throughput costs 7.9x CPU and 3.0x memory
}

// ExampleNewStudy shows the study-level workflow on a small estate.
func ExampleNewStudy() {
	profile := vmwild.Banking()
	profile.Servers = 24
	study, err := vmwild.NewStudy(profile)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := study.CompareCosts()
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Println(r.Planner)
	}
	// Output:
	// semi-static
	// stochastic
	// dynamic
}

// ExampleWriteTraceCSV round-trips a trace set through CSV.
func ExampleWriteTraceCSV() {
	profile := vmwild.Beverage()
	profile.Servers = 2
	set, err := vmwild.Generate(profile, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.CreateTemp("", "traces-*.csv")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := vmwild.WriteTraceCSV(f, set); err != nil {
		log.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		log.Fatal(err)
	}
	back, err := vmwild.ReadTraceCSV(f, "restored")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored servers:", len(back.Servers))
	// Output:
	// restored servers: 2
}

// ExampleRunScenario lists the named end-to-end scenarios, runs one, and
// reads its checkpoint verdicts. Scenario runs are bitwise-reproducible
// from their seed, so the output below is stable.
func ExampleRunScenario() {
	for _, s := range vmwild.Scenarios() {
		fmt.Println(s.ID)
	}

	s, err := vmwild.ScenarioByID("rolling-maintenance")
	if err != nil {
		log.Fatal(err)
	}
	res, err := vmwild.RunScenario(s, vmwild.ScenarioOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: passed=%v checkpoints=%d\n", res.ID, res.Passed, len(res.Checkpoints))
	if cp, ok := res.Checkpoint("estate-whole"); ok {
		fmt.Printf("estate-whole: passed=%v\n", cp.Passed)
	}
	// Output:
	// correlated-rack-outage
	// dc-evacuation
	// flash-crowd
	// hardware-refresh
	// rolling-maintenance
	// soak-stress
	// rolling-maintenance: passed=true checkpoints=4
	// estate-whole: passed=true
}
