// Command experiments regenerates every table and figure of the paper's
// evaluation and writes the full report to stdout — the source of
// EXPERIMENTS.md:
//
//	go run ./cmd/experiments > experiments.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"vmwild"
)

func main() {
	seed := flag.Int64("seed", vmwild.DefaultSeed, "workload generator seed")
	flag.Parse()
	if err := vmwild.WriteReport(os.Stdout, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
