// Command experiments regenerates every table and figure of the paper's
// evaluation and writes the full report to stdout — the source of
// EXPERIMENTS.md:
//
//	go run ./cmd/experiments > experiments.txt
//
// The experiment grid fans out across -parallel workers (default:
// GOMAXPROCS); the report is byte-identical at every worker count for the
// same -seed, so parallelism only buys wall-clock time. Progress lines go
// to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"vmwild"
)

func main() {
	seed := flag.Int64("seed", vmwild.DefaultSeed, "workload generator seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment grid workers (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	quiet := flag.Bool("quiet", false, "suppress progress lines on stderr")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := vmwild.ReportOptions{Workers: *parallel}
	if !*quiet {
		opts.Progress = func(ev vmwild.ReportProgress) {
			status := ""
			if ev.Err != nil {
				status = "  FAILED: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-32s %6.1fs%s\n",
				ev.Done, ev.Total, ev.Label, ev.Elapsed.Seconds(), status)
		}
	}

	start := time.Now()
	if err := vmwild.WriteReportWith(ctx, os.Stdout, *seed, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "report complete in %.1fs (%d workers)\n",
			time.Since(start).Seconds(), *parallel)
	}
}
