// Command experiments regenerates every table and figure of the paper's
// evaluation and writes the full report to stdout — the source of
// EXPERIMENTS.md:
//
//	go run ./cmd/experiments > experiments.txt
//
// The experiment grid fans out across -parallel workers (default:
// GOMAXPROCS); the report is byte-identical at every worker count for the
// same -seed, so parallelism only buys wall-clock time. Progress lines go
// to stderr.
//
// -bench-json PATH additionally writes a machine-readable timing profile of
// the run: per-cell wall times, the total, and the worker count — the
// format of the committed BENCH_report.json. A "benchmarks" section already
// present in PATH (maintained from go test -bench runs) is preserved across
// rewrites.
//
// -cpuprofile PATH and -memprofile PATH capture pprof profiles of the full
// report run (CPU sampled throughout; heap snapshot at exit, after a GC),
// for `go tool pprof`. Profile with -parallel 1 when attributing costs to
// individual grid cells.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"vmwild"
)

// benchCell is one grid cell's wall time.
type benchCell struct {
	Label string `json:"label"`
	NS    int64  `json:"ns"`
}

// benchReport is the -bench-json document.
type benchReport struct {
	Schema  string      `json:"schema"`
	Seed    int64       `json:"seed"`
	Workers int         `json:"workers"`
	TotalNS int64       `json:"total_ns"`
	Cells   []benchCell `json:"cells"`
	// Benchmarks carries go test -bench numbers (ns/op, B/op, allocs/op
	// keyed by benchmark name and revision). The tool never computes them;
	// it round-trips whatever the existing file holds so regenerating the
	// timing profile does not lose the recorded baselines.
	Benchmarks json.RawMessage `json:"benchmarks,omitempty"`
}

func main() {
	seed := flag.Int64("seed", vmwild.DefaultSeed, "workload generator seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment grid workers (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	quiet := flag.Bool("quiet", false, "suppress progress lines on stderr")
	benchJSON := flag.String("bench-json", "", "write per-cell wall-time JSON to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var cells []benchCell
	opts := vmwild.ReportOptions{Workers: *parallel}
	if !*quiet || *benchJSON != "" {
		opts.Progress = func(ev vmwild.ReportProgress) {
			if *benchJSON != "" {
				cells = append(cells, benchCell{Label: ev.Label, NS: ev.Elapsed.Nanoseconds()})
			}
			if *quiet {
				return
			}
			status := ""
			if ev.Err != nil {
				status = "  FAILED: " + ev.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%3d/%3d] %-32s %6.1fs%s\n",
				ev.Done, ev.Total, ev.Label, ev.Elapsed.Seconds(), status)
		}
	}

	start := time.Now()
	if err := vmwild.WriteReportWith(ctx, os.Stdout, *seed, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	total := time.Since(start)
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *seed, *parallel, total, cells); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: bench-json:", err)
			os.Exit(1)
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "report complete in %.1fs (%d workers)\n",
			total.Seconds(), *parallel)
	}
}

// writeBenchJSON renders the timing profile, carrying over the benchmarks
// section of any existing document at path.
func writeBenchJSON(path string, seed int64, workers int, total time.Duration, cells []benchCell) error {
	rep := benchReport{
		Schema:  "vmwild-bench/1",
		Seed:    seed,
		Workers: workers,
		TotalNS: total.Nanoseconds(),
		Cells:   cells,
	}
	if prev, err := os.ReadFile(path); err == nil {
		var old benchReport
		if err := json.Unmarshal(prev, &old); err == nil {
			rep.Benchmarks = old.Benchmarks
		}
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
