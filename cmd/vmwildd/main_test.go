package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vmwild"
)

func TestHealthEndpointsGateOnRecovery(t *testing.T) {
	h, err := startHealth("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get("http://" + h.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Alive from the first moment, not ready until recovery finishes.
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz during recovery = %d, want 200", got)
	}
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz during recovery = %d, want 503", got)
	}
	if got := get("/varz"); got != http.StatusServiceUnavailable {
		t.Errorf("/varz before the servers exist = %d, want 503", got)
	}
	h.setReady(map[string]any{"walReplayed": 7})
	if got := get("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz after recovery = %d, want 200", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz after recovery = %d, want 200", got)
	}
}

func TestVarzServesWarehouseMetrics(t *testing.T) {
	h, err := startHealth("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	w := vmwild.NewWarehouse(0)
	w.MaxConns = 64
	qs := vmwild.NewQueryServer(w)
	h.setVarz(func() any {
		return map[string]any{"warehouse": w.Metrics(), "query": qs.Metrics()}
	})
	resp, err := http.Get("http://" + h.Addr() + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/varz = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Warehouse vmwild.WarehouseMetrics `json:"warehouse"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Warehouse.MaxConns != 64 {
		t.Fatalf("/varz warehouse.maxConns = %d, want 64", body.Warehouse.MaxConns)
	}
}

func TestCleanupStaleSnapshots(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "warehouse.snap")
	keep := filepath.Join(dir, "unrelated.txt")
	for _, f := range []string{target, keep} {
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var stale []string
	for i := 0; i < 3; i++ {
		f := filepath.Join(dir, fmt.Sprintf(".snapshot-%d", i))
		if err := os.WriteFile(f, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		stale = append(stale, f)
	}
	cleanupStaleSnapshots(vmwild.OSFS, target)
	for _, f := range stale {
		if _, err := os.Stat(f); !os.IsNotExist(err) {
			t.Errorf("stale temp file %s survived cleanup", f)
		}
	}
	for _, f := range []string{target, keep} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("cleanup removed %s: %v", f, err)
		}
	}
}

func TestWriteSnapshotLeavesNoTempOnFailure(t *testing.T) {
	dir := t.TempDir()
	w := vmwild.NewWarehouse(0)
	w.Ingest(vmwild.MonitorSample{
		Server:            "s1",
		Timestamp:         time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC),
		TotalProcessorPct: 50,
		MemCommittedMB:    512,
	})
	// Renaming onto a directory fails after the stream succeeded.
	target := filepath.Join(dir, "occupied")
	if err := os.Mkdir(target, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(vmwild.OSFS, w, target); err == nil {
		t.Fatal("expected rename failure")
	}
	left, err := filepath.Glob(filepath.Join(dir, ".snapshot-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("failure path stranded temp files: %v", left)
	}

	// The happy path still lands the snapshot.
	good := filepath.Join(dir, "warehouse.snap")
	if err := writeSnapshot(vmwild.OSFS, w, good); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(good); err != nil {
		t.Fatal(err)
	}
}

func TestServeRejectsSnapshotPlusWAL(t *testing.T) {
	err := serve(serveConfig{snapshotPath: "a.snap", walDir: "wal"})
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
}

func TestServeRejectsFaultProfileWithoutDurablePath(t *testing.T) {
	err := serve(serveConfig{faultProfile: "flaky"})
	if err == nil || !strings.Contains(err.Error(), "requires -wal-dir or -snapshot") {
		t.Fatalf("err = %v, want missing-durable-path error", err)
	}
}

func TestServeRejectsBadFaultProfile(t *testing.T) {
	err := serve(serveConfig{faultProfile: "explode", walDir: "wal"})
	if err == nil || !strings.Contains(err.Error(), "unknown fault profile") {
		t.Fatalf("err = %v, want unknown-profile error", err)
	}
}

// TestReadyzReportsStorageDegraded: once the degraded check flips,
// /readyz turns 503 while /healthz stays 200 — the daemon is alive, just
// refusing ingest.
func TestReadyzReportsStorageDegraded(t *testing.T) {
	h, err := startHealth("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.setReady(nil)
	degraded := false
	h.setDegraded(func() bool { return degraded })
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get("http://" + h.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz healthy = %d, want 200", got)
	}
	degraded = true
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz degraded = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz degraded = %d, want 200 (liveness is not readiness)", got)
	}
}

// TestWriteSnapshotFaultFS: the snapshot writer's failure handling runs
// through the injected filesystem — a torn stream reports the failure and
// strands no temp file, and the previous good snapshot survives.
func TestWriteSnapshotFaultFS(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "warehouse.snap")
	w := vmwild.NewWarehouse(0)
	for i := 0; i < 64; i++ {
		w.Ingest(vmwild.MonitorSample{
			Server:            vmwild.ServerID(fmt.Sprintf("s%02d", i%4)),
			Timestamp:         time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
			TotalProcessorPct: float64(i % 100),
			MemCommittedMB:    512,
		})
	}
	if err := writeSnapshot(vmwild.OSFS, w, target); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}

	// Every write through this FS is torn; the stream must fail cleanly.
	ffs, err := vmwild.NewFaultFS(vmwild.OSFS, dir, 3, vmwild.FaultProfile{WriteErrProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshot(ffs, w, target); err == nil {
		t.Fatal("snapshot through an all-faults disk reported success")
	}
	left, err := filepath.Glob(filepath.Join(dir, ".snapshot-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("failure path stranded temp files: %v", left)
	}
	after, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(good) {
		t.Error("failed snapshot attempt damaged the previous good snapshot")
	}
}
