package main

import (
	"encoding/json"
	"net"
	"net/http"
	"sync"
)

// healthServer exposes the daemon's liveness and readiness over HTTP.
// /healthz answers 200 as soon as the process is up — during WAL recovery
// included — so orchestrators don't kill a daemon that is busy replaying a
// large log. /readyz stays 503 until recovery finished and the ingestion
// and query listeners accept traffic.
type healthServer struct {
	mu       sync.Mutex
	ready    bool
	detail   map[string]any
	varz     func() any
	degraded func() bool

	ln  net.Listener
	srv *http.Server
}

// startHealth binds the health listener immediately; readiness is flipped
// later via setReady.
func startHealth(addr string) (*healthServer, error) {
	h := &healthServer{detail: map[string]any{"phase": "recovering"}}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", h.healthz)
	mux.HandleFunc("/readyz", h.readyz)
	mux.HandleFunc("/varz", h.varzHandler)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	h.ln = ln
	h.srv = &http.Server{Handler: mux}
	go h.srv.Serve(ln)
	return h, nil
}

func (h *healthServer) Addr() string { return h.ln.Addr().String() }

// setReady marks recovery as finished; detail is surfaced on /healthz
// (recovery statistics, listen addresses).
func (h *healthServer) setReady(detail map[string]any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ready = true
	if detail != nil {
		h.detail = detail
	}
}

// setVarz installs the live metrics source behind /varz — the overload
// and degradation counters (connections, shed ingest, corrupt frames,
// rejected queries) an operator watches during an incident.
func (h *healthServer) setVarz(source func() any) {
	h.mu.Lock()
	h.varz = source
	h.mu.Unlock()
}

// setDegraded installs a check that flips /readyz to 503 while the
// warehouse is in shed-ingest read-only mode (disk full or poisoned
// journal): the process is alive and serving reads, but a load balancer
// should steer agent traffic to a healthy replica.
func (h *healthServer) setDegraded(check func() bool) {
	h.mu.Lock()
	h.degraded = check
	h.mu.Unlock()
}

func (h *healthServer) varzHandler(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	source := h.varz
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if source == nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "recovering"})
		return
	}
	json.NewEncoder(w).Encode(source())
}

func (h *healthServer) healthz(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	body := map[string]any{"status": "ok", "ready": h.ready}
	for k, v := range h.detail {
		body[k] = v
	}
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

func (h *healthServer) readyz(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	ready := h.ready
	degraded := h.degraded
	h.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "recovering"})
		return
	}
	if degraded != nil && degraded() {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "degraded", "reason": "storage"})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{"status": "ready"})
}

func (h *healthServer) Close() error { return h.srv.Close() }
