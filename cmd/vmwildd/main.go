// Command vmwildd is the deployable consolidation service: it runs the
// monitoring warehouse (agents connect over TCP), the query server
// (planning tools pull aggregated series), and — once enough history has
// accumulated — the dynamic consolidation control loop.
//
//	vmwildd -listen :7700 -query-listen :7701 -interval 2h
//
// For a self-contained demonstration, -simulate A feeds the daemon a
// synthetic Banking fleet on compressed time and prints each consolidation
// tick:
//
//	vmwildd -simulate A -servers 40 -ticks 12
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmwildd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", "127.0.0.1:7700", "agent ingestion address")
		queryListen = flag.String("query-listen", "127.0.0.1:7701", "query protocol address")
		interval    = flag.Duration("interval", 2*time.Hour, "consolidation interval")
		retention   = flag.Duration("retention", 30*24*time.Hour, "sample retention")
		snapshot    = flag.String("snapshot", "", "restore this snapshot file at startup and rewrite it on shutdown")
		simulate    = flag.String("simulate", "", "run a self-contained simulation of workload A, B, C or D instead of serving")
		servers     = flag.Int("servers", 40, "simulated fleet size")
		ticks       = flag.Int("ticks", 12, "simulated consolidation intervals")
		seed        = flag.Int64("seed", vmwild.DefaultSeed, "simulation seed")
	)
	flag.Parse()

	if *simulate != "" {
		return simulateRun(*simulate, *servers, *ticks, *seed)
	}
	return serve(*listen, *queryListen, *interval, *retention, *snapshot)
}

// serve runs the daemon against real agents until SIGINT/SIGTERM.
func serve(listen, queryListen string, interval, retention time.Duration, snapshotPath string) error {
	warehouse := vmwild.NewWarehouse(retention)
	if snapshotPath != "" {
		if f, err := os.Open(snapshotPath); err == nil {
			n, err := warehouse.Restore(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("restore snapshot: %w", err)
			}
			fmt.Printf("restored %d samples from %s\n", n, snapshotPath)
		}
	}
	addr, err := warehouse.Listen(listen)
	if err != nil {
		return err
	}
	defer warehouse.Close()
	qs := vmwild.NewQueryServer(warehouse)
	qaddr, err := qs.Listen(queryListen)
	if err != nil {
		return err
	}
	defer qs.Close()
	fmt.Printf("ingesting on %s, serving queries on %s, interval %v\n", addr, qaddr, interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop

	if snapshotPath != "" {
		f, err := os.Create(snapshotPath)
		if err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		defer f.Close()
		if err := warehouse.Snapshot(f); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", snapshotPath)
	}
	return nil
}

// simulateRun exercises the full daemon loop on compressed time.
func simulateRun(workload string, servers, ticks int, seed int64) error {
	var profile *vmwild.Profile
	for _, p := range vmwild.Profiles() {
		if p.Name == workload {
			profile = p
			break
		}
	}
	if profile == nil {
		return fmt.Errorf("unknown workload %q", workload)
	}
	profile.Servers = servers

	warmup := 7 * 24
	horizon := warmup + 2*ticks + 2
	fleet, err := vmwild.Generate(profile, horizon, seed)
	if err != nil {
		return err
	}
	epoch := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	warehouse := vmwild.NewWarehouse(0)
	specs := make(map[vmwild.ServerID]vmwild.Spec)
	sources := make([]vmwild.MonitorSource, len(fleet.Servers))
	for i, st := range fleet.Servers {
		specs[st.ID] = st.Spec
		src, err := vmwild.NewTraceSource(st, epoch, int64(i))
		if err != nil {
			return err
		}
		sources[i] = src
	}
	streamed := 0
	streamUpTo := func(hour int) error {
		for ; streamed < hour*4; streamed++ {
			ts := epoch.Add(time.Duration(streamed*15) * time.Minute)
			for _, src := range sources {
				s, err := src.Collect(ts)
				if err != nil {
					return err
				}
				warehouse.Ingest(s)
			}
		}
		return nil
	}

	ctrl, err := vmwild.NewController(vmwild.ControllerConfig{
		Fetch: func() (*vmwild.TraceSet, error) {
			return warehouse.CollectSet(profile.Name, specs, epoch)
		},
		Planner: vmwild.PlanInput{Host: vmwild.HS23Elite()},
	})
	if err != nil {
		return err
	}

	fmt.Printf("simulating workload %s: %d servers, %d intervals after a %dh warm-up\n\n",
		profile.Name, servers, ticks, warmup)
	fmt.Println("interval | hosts | migrations | wave | feasible")
	for k := 0; k < ticks; k++ {
		hour := warmup + 2*k
		if err := streamUpTo(hour); err != nil {
			return err
		}
		tick, err := ctrl.RunInterval()
		if err != nil {
			return err
		}
		wave := "-"
		if tick.Execution != nil {
			wave = tick.Execution.Total.Round(time.Second).String()
		}
		fmt.Printf("%8d | %5d | %10d | %6s | %v\n",
			tick.Interval, tick.Step.ActiveHosts, tick.Step.Migrations, wave, tick.Feasible)
	}
	return nil
}
