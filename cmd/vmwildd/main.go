// Command vmwildd is the deployable consolidation service: it runs the
// monitoring warehouse (agents connect over TCP), the query server
// (planning tools pull aggregated series), and — once enough history has
// accumulated — the dynamic consolidation control loop.
//
//	vmwildd -listen :7700 -query-listen :7701 -interval 2h
//
// For a self-contained demonstration, -simulate A feeds the daemon a
// synthetic Banking fleet on compressed time and prints each consolidation
// tick:
//
//	vmwildd -simulate A -servers 40 -ticks 12
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmwildd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", "127.0.0.1:7700", "agent ingestion address")
		queryListen  = flag.String("query-listen", "127.0.0.1:7701", "query protocol address")
		interval     = flag.Duration("interval", 2*time.Hour, "consolidation interval")
		retention    = flag.Duration("retention", 30*24*time.Hour, "sample retention")
		ingestShards = flag.Int("ingest-shards", vmwild.DefaultIngestShards, "warehouse ingest shard count (also the WAL lane count)")
		snapshot     = flag.String("snapshot", "", "restore this snapshot file at startup and rewrite it on shutdown")
		walDir       = flag.String("wal-dir", "", "journal accepted samples to a write-ahead log in this directory and recover from it at startup")
		fsync        = flag.String("fsync", "interval", "WAL fsync policy: always, interval or never")
		ckptEvery    = flag.Int("checkpoint-every", 0, "WAL appends between warehouse checkpoints (0 = default 4096)")
		healthListen = flag.String("health-listen", "", "serve /healthz and /readyz on this address (empty disables)")
		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "sever ingestion/query connections silent longer than this (0 disables)")
		writeTimeout = flag.Duration("write-timeout", 0, "per-write deadline on ack and response writes (0 = 30s default)")
		maxLineBytes = flag.Int("max-line-bytes", 0, "per-connection line size bound (0 = 1 MiB default)")
		maxConns     = flag.Int("max-conns", 0, "max concurrent agent connections; excess waits in the accept backlog (0 = unbounded)")
		qryMaxConns  = flag.Int("query-max-conns", 0, "max concurrent query connections (0 = unbounded)")
		queryWorkers = flag.Int("query-workers", 0, "pipelined query worker pool size (0 = default 8)")
		replicaEvery = flag.Int("replica-every", vmwild.DefaultReplicaEverySamples, "republish a shard's read replica after this many new samples (0 = disable replicas)")
		replicaAge   = flag.Duration("replica-max-age", vmwild.DefaultReplicaMaxAge, "republish a stale shard replica after this age regardless of sample count")
		ingestRate   = flag.Float64("ingest-rate", 0, "token-bucket ingest refill in samples/sec; requires -ingest-burst")
		ingestBurst  = flag.Int("ingest-burst", 0, "token-bucket ingest burst in samples; 0 disables the limiter")
		faultProfile = flag.String("disk-fault-profile", "", "inject seeded filesystem faults on the durable paths: off, flaky, corrupt or enospc:<bytes> (testing only, never production)")
		faultSeed    = flag.Int64("disk-fault-seed", vmwild.DefaultSeed, "seed for the -disk-fault-profile fault schedule")
		simulate     = flag.String("simulate", "", "run a self-contained simulation of workload A, B, C or D instead of serving")
		servers      = flag.Int("servers", 40, "simulated fleet size")
		ticks        = flag.Int("ticks", 12, "simulated consolidation intervals")
		seed         = flag.Int64("seed", vmwild.DefaultSeed, "simulation seed")
		failRate     = flag.Float64("fail-rate", 0, "simulated per-attempt migration failure probability")
		stallRate    = flag.Float64("stall-rate", 0, "simulated per-attempt migration stall probability")
		dropRate     = flag.Float64("drop-rate", 0, "simulated per-sample agent dropout probability")
		retryBudget  = flag.Int("retry-budget", 0, "migration attempts per VM before aborting (0 = default 3)")
	)
	flag.Parse()

	if *simulate != "" {
		return simulateRun(*simulate, *servers, *ticks, *seed, simFaults{
			failRate:    *failRate,
			stallRate:   *stallRate,
			dropRate:    *dropRate,
			retryBudget: *retryBudget,
		})
	}
	return serve(serveConfig{
		listen:       *listen,
		queryListen:  *queryListen,
		interval:     *interval,
		retention:    *retention,
		ingestShards: *ingestShards,
		snapshotPath: *snapshot,
		walDir:       *walDir,
		fsync:        *fsync,
		ckptEvery:    *ckptEvery,
		healthListen: *healthListen,
		readTimeout:  *readTimeout,
		writeTimeout: *writeTimeout,
		maxLineBytes: *maxLineBytes,
		maxConns:     *maxConns,
		qryMaxConns:  *qryMaxConns,
		queryWorkers: *queryWorkers,
		replicaEvery: *replicaEvery,
		replicaAge:   *replicaAge,
		ingestRate:   *ingestRate,
		ingestBurst:  *ingestBurst,
		faultProfile: *faultProfile,
		faultSeed:    *faultSeed,
	})
}

// serveConfig carries the daemon-mode settings.
type serveConfig struct {
	listen, queryListen string
	interval, retention time.Duration
	ingestShards        int
	snapshotPath        string
	walDir, fsync       string
	ckptEvery           int
	healthListen        string
	readTimeout         time.Duration
	writeTimeout        time.Duration
	maxLineBytes        int
	maxConns            int
	qryMaxConns         int
	queryWorkers        int
	replicaEvery        int
	replicaAge          time.Duration
	ingestRate          float64
	ingestBurst         int
	faultProfile        string
	faultSeed           int64
}

// storageFS picks the filesystem the durable paths run on: the real OS,
// or — when -disk-fault-profile asks for it — a seeded fault injector
// rooted at the durable directory. A dev/test hook: it lets an operator
// rehearse the daemon's ENOSPC shedding, poisoned-segment handling and
// crash recovery without sacrificing a disk.
func (cfg serveConfig) storageFS(root string) (vmwild.FS, error) {
	prof, err := vmwild.ParseFaultProfile(cfg.faultProfile)
	if err != nil {
		return nil, err
	}
	if prof == (vmwild.FaultProfile{}) {
		return vmwild.OSFS, nil
	}
	fmt.Fprintf(os.Stderr, "vmwildd: DISK FAULT INJECTION ACTIVE (profile %q, seed %d) — testing only\n",
		cfg.faultProfile, cfg.faultSeed)
	return vmwild.NewFaultFS(vmwild.OSFS, root, cfg.faultSeed, prof)
}

// serve runs the daemon against real agents until SIGINT/SIGTERM.
func serve(cfg serveConfig) error {
	if cfg.walDir != "" && cfg.snapshotPath != "" {
		// The WAL checkpoints subsume shutdown snapshots; restoring both
		// would double-count every sample the snapshot shares with the log.
		return errors.New("-snapshot and -wal-dir are mutually exclusive")
	}

	// One filesystem for every durable path, rooted at whichever durable
	// directory is in use (the mutual exclusion above guarantees at most
	// one), so a fault schedule keys on stable relative paths.
	durableRoot := cfg.walDir
	if durableRoot == "" && cfg.snapshotPath != "" {
		durableRoot = filepath.Dir(cfg.snapshotPath)
	}
	if cfg.faultProfile != "" && durableRoot == "" {
		return errors.New("-disk-fault-profile requires -wal-dir or -snapshot")
	}
	storeFS, err := cfg.storageFS(durableRoot)
	if err != nil {
		return err
	}

	// Liveness first: /healthz must answer while a large WAL is still
	// replaying, /readyz flips only once recovery and the listeners are up.
	var health *healthServer
	if cfg.healthListen != "" {
		h, err := startHealth(cfg.healthListen)
		if err != nil {
			return fmt.Errorf("health listener: %w", err)
		}
		health = h
		defer health.Close()
		fmt.Printf("health endpoints on %s\n", health.Addr())
	}

	if cfg.ingestRate > 0 && cfg.ingestBurst <= 0 {
		return errors.New("-ingest-rate requires -ingest-burst")
	}

	warehouse := vmwild.NewWarehouseShards(cfg.retention, cfg.ingestShards)
	warehouse.ReadTimeout = cfg.readTimeout
	warehouse.WriteTimeout = cfg.writeTimeout
	warehouse.MaxLineBytes = cfg.maxLineBytes
	warehouse.MaxConns = cfg.maxConns
	if cfg.ingestBurst > 0 {
		warehouse.SetIngestLimit(cfg.ingestRate, cfg.ingestBurst)
	}
	if cfg.snapshotPath != "" {
		// A crash during a previous shutdown snapshot may have stranded
		// temp files next to the target; sweep them before writing more.
		cleanupStaleSnapshots(storeFS, cfg.snapshotPath)
		f, err := storeFS.OpenFile(cfg.snapshotPath, os.O_RDONLY, 0)
		switch {
		case err == nil:
			n, err := warehouse.Restore(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("restore snapshot: %w", err)
			}
			fmt.Printf("restored %d samples from %s\n", n, cfg.snapshotPath)
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to restore yet.
		default:
			// A present-but-unreadable snapshot (permissions, I/O) must
			// abort startup, not silently run on an empty warehouse.
			return fmt.Errorf("open snapshot: %w", err)
		}
	}

	detail := map[string]any{"phase": "serving"}
	var wlog *vmwild.WarehouseLog
	if cfg.walDir != "" {
		policy, err := vmwild.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		wlog, err = vmwild.OpenWarehouseLog(warehouse, cfg.walDir, cfg.ckptEvery, vmwild.WALOptions{Sync: policy, FS: storeFS})
		if err != nil {
			return fmt.Errorf("wal recovery: %w", err)
		}
		rec := wlog.Recovery()
		fmt.Printf("wal recovery: %d samples from checkpoint, %d replayed", rec.Restored, rec.Replayed)
		if rec.TornBytes > 0 {
			fmt.Printf(", %d torn bytes discarded", rec.TornBytes)
		}
		fmt.Println()
		detail["walRestored"] = rec.Restored
		detail["walReplayed"] = rec.Replayed
		detail["walTornBytes"] = rec.TornBytes
	}

	// Replicas come up after recovery so the first publish snapshots the
	// restored history; the background cadence loop keeps them fresh from
	// here on. -replica-every 0 opts out (every read takes shard locks).
	if cfg.replicaEvery > 0 {
		if err := warehouse.EnableReplicas(vmwild.ReplicaConfig{
			EverySamples: cfg.replicaEvery,
			MaxAge:       cfg.replicaAge,
		}); err != nil {
			return fmt.Errorf("enable replicas: %w", err)
		}
	}

	addr, err := warehouse.Listen(cfg.listen)
	if err != nil {
		return err
	}
	defer warehouse.Close()
	qs := vmwild.NewQueryServer(warehouse)
	qs.ReadTimeout = cfg.readTimeout
	qs.WriteTimeout = cfg.writeTimeout
	qs.MaxLineBytes = cfg.maxLineBytes
	qs.MaxConns = cfg.qryMaxConns
	qs.Workers = cfg.queryWorkers
	// Priority shedding: when the agent side approaches its connection
	// cap, refuse NEW query connections first — losing a planning query
	// is recoverable, losing monitoring samples is not.
	qs.RejectWhen = warehouse.UnderPressure
	qaddr, err := qs.Listen(cfg.queryListen)
	if err != nil {
		return err
	}
	defer qs.Close()
	fmt.Printf("ingesting on %s, serving queries on %s, interval %v\n", addr, qaddr, cfg.interval)
	if health != nil {
		detail["ingest"] = addr
		detail["query"] = qaddr
		health.setReady(detail)
		health.setVarz(func() any {
			return map[string]any{
				"warehouse": warehouse.Metrics(),
				"query":     qs.Metrics(),
			}
		})
		// A disk-degraded warehouse is alive but refusing ingest; surface
		// that on /readyz so load balancers steer agents to a healthy
		// replica while the operator frees space.
		health.setDegraded(warehouse.DiskDegraded)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop

	if wlog != nil {
		// Close takes a final checkpoint, so the next boot restores
		// without replay.
		if err := wlog.Close(); err != nil {
			return fmt.Errorf("wal shutdown checkpoint: %w", err)
		}
		fmt.Printf("wal checkpointed in %s\n", cfg.walDir)
	}
	if cfg.snapshotPath != "" {
		if err := writeSnapshot(storeFS, warehouse, cfg.snapshotPath); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", cfg.snapshotPath)
	}
	return nil
}

// cleanupStaleSnapshots removes temp files a crashed shutdown snapshot
// left behind in the snapshot's directory, logging each one — silent
// accumulation is how disks fill up.
func cleanupStaleSnapshots(fsys vmwild.FS, path string) {
	dir := filepath.Dir(path)
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmwildd: stale snapshot sweep of %s: %v\n", dir, err)
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".snapshot-") {
			continue
		}
		f := filepath.Join(dir, e.Name())
		if err := fsys.Remove(f); err != nil {
			fmt.Fprintf(os.Stderr, "vmwildd: stale snapshot %s: %v\n", f, err)
			continue
		}
		fmt.Printf("removed stale snapshot temp file %s\n", f)
	}
}

// writeSnapshot persists the warehouse atomically: the snapshot streams
// into a temp file in the target directory and replaces the old file only
// by rename, so a crash mid-write can never truncate the previous good
// snapshot. Every step's error is checked — the rename commits only
// durable bytes (fsync before rename, directory sync after).
func writeSnapshot(fsys vmwild.FS, warehouse *vmwild.Warehouse, path string) error {
	tmpName := filepath.Join(filepath.Dir(path), ".snapshot-"+filepath.Base(path)+".tmp")
	tmp, err := fsys.OpenFile(tmpName, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("write snapshot: %w", err)
	}
	// On any failure, remove the temp file and say so: a silently stranded
	// temp both leaks disk and hides that the snapshot is missing.
	closed := false
	fail := func(stage string, err error) error {
		if !closed {
			tmp.Close()
		}
		if rmErr := fsys.Remove(tmpName); rmErr != nil {
			fmt.Fprintf(os.Stderr, "vmwildd: snapshot %s failed and temp file %s could not be removed: %v\n",
				stage, tmpName, rmErr)
		} else {
			fmt.Fprintf(os.Stderr, "vmwildd: snapshot %s failed, temp file removed\n", stage)
		}
		return fmt.Errorf("write snapshot: %s: %w", stage, err)
	}
	if err := warehouse.Snapshot(tmp); err != nil {
		return fail("stream", err)
	}
	if err := tmp.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := tmp.Close(); err != nil {
		closed = true
		return fail("close", err)
	}
	closed = true
	if err := fsys.Rename(tmpName, path); err != nil {
		return fail("rename", err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		// The rename itself is atomic; a failed directory sync weakens
		// crash ordering but does not invalidate the snapshot.
		fmt.Fprintf(os.Stderr, "vmwildd: snapshot directory sync: %v\n", err)
	}
	return nil
}

// simFaults carries the simulation's fault-injection knobs.
type simFaults struct {
	failRate, stallRate, dropRate float64
	retryBudget                   int
}

func (s simFaults) enabled() bool {
	return s.failRate > 0 || s.stallRate > 0 || s.dropRate > 0
}

// simulateRun exercises the full daemon loop on compressed time.
func simulateRun(workload string, servers, ticks int, seed int64, faults simFaults) error {
	var profile *vmwild.Profile
	for _, p := range vmwild.Profiles() {
		if p.Name == workload {
			profile = p
			break
		}
	}
	if profile == nil {
		return fmt.Errorf("unknown workload %q", workload)
	}
	profile.Servers = servers

	warmup := 7 * 24
	horizon := warmup + 2*ticks + 2
	fleet, err := vmwild.Generate(profile, horizon, seed)
	if err != nil {
		return err
	}
	epoch := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	warehouse := vmwild.NewWarehouse(0)
	specs := make(map[vmwild.ServerID]vmwild.Spec)
	sources := make([]vmwild.MonitorSource, len(fleet.Servers))
	for i, st := range fleet.Servers {
		specs[st.ID] = st.Spec
		src, err := vmwild.NewTraceSource(st, epoch, int64(i))
		if err != nil {
			return err
		}
		sources[i] = src
	}
	var injector *vmwild.FaultInjector
	if faults.enabled() {
		injector, err = vmwild.NewFaultInjector(vmwild.FaultConfig{
			Seed:             seed,
			MigrationFailure: faults.failRate,
			MigrationStall:   faults.stallRate,
			AgentDropout:     faults.dropRate,
		})
		if err != nil {
			return err
		}
	}

	streamed := 0
	streamUpTo := func(hour int) error {
		for ; streamed < hour*4; streamed++ {
			ts := epoch.Add(time.Duration(streamed*15) * time.Minute)
			for i, src := range sources {
				s, err := src.Collect(ts)
				if err != nil {
					return err
				}
				// A dropped-out agent simply misses this observation;
				// the warehouse aggregates whatever arrived.
				if injector.AgentDrops(fleet.Servers[i].ID, streamed) {
					continue
				}
				warehouse.Ingest(s)
			}
		}
		return nil
	}

	execCfg := vmwild.DefaultExecutorConfig()
	if injector != nil {
		execCfg.Fault = injector
	}
	if faults.retryBudget > 0 {
		execCfg.RetryBudget = faults.retryBudget
	}
	ctrl, err := vmwild.NewController(vmwild.ControllerConfig{
		Fetch: func() (*vmwild.TraceSet, error) {
			return warehouse.CollectSet(profile.Name, specs, epoch)
		},
		Planner:  vmwild.PlanInput{Host: vmwild.HS23Elite()},
		Executor: execCfg,
	})
	if err != nil {
		return err
	}

	fmt.Printf("simulating workload %s: %d servers, %d intervals after a %dh warm-up\n\n",
		profile.Name, servers, ticks, warmup)
	fmt.Println("interval | hosts | migrations | attempted | ok | aborted | wave | feasible")
	for k := 0; k < ticks; k++ {
		hour := warmup + 2*k
		if err := streamUpTo(hour); err != nil {
			return err
		}
		tick, err := ctrl.RunInterval()
		if err != nil {
			return err
		}
		wave := "-"
		if tick.Execution != nil {
			wave = tick.Execution.Total.Round(time.Second).String()
		}
		degraded := ""
		if tick.Degraded {
			degraded = " (degraded)"
		}
		fmt.Printf("%8d | %5d | %10d | %9d | %2d | %7d | %6s | %v%s\n",
			tick.Interval, tick.Step.ActiveHosts, tick.Step.Migrations,
			tick.Moves.Attempted, tick.Moves.Succeeded, tick.Moves.Aborted,
			wave, tick.Feasible, degraded)
	}
	return nil
}
