// Command vmwildd is the deployable consolidation service: it runs the
// monitoring warehouse (agents connect over TCP), the query server
// (planning tools pull aggregated series), and — once enough history has
// accumulated — the dynamic consolidation control loop.
//
//	vmwildd -listen :7700 -query-listen :7701 -interval 2h
//
// For a self-contained demonstration, -simulate A feeds the daemon a
// synthetic Banking fleet on compressed time and prints each consolidation
// tick:
//
//	vmwildd -simulate A -servers 40 -ticks 12
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmwildd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen       = flag.String("listen", "127.0.0.1:7700", "agent ingestion address")
		queryListen  = flag.String("query-listen", "127.0.0.1:7701", "query protocol address")
		interval     = flag.Duration("interval", 2*time.Hour, "consolidation interval")
		retention    = flag.Duration("retention", 30*24*time.Hour, "sample retention")
		snapshot     = flag.String("snapshot", "", "restore this snapshot file at startup and rewrite it on shutdown")
		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "sever ingestion/query connections silent longer than this (0 disables)")
		maxLineBytes = flag.Int("max-line-bytes", 0, "per-connection line size bound (0 = 1 MiB default)")
		simulate     = flag.String("simulate", "", "run a self-contained simulation of workload A, B, C or D instead of serving")
		servers      = flag.Int("servers", 40, "simulated fleet size")
		ticks        = flag.Int("ticks", 12, "simulated consolidation intervals")
		seed         = flag.Int64("seed", vmwild.DefaultSeed, "simulation seed")
		failRate     = flag.Float64("fail-rate", 0, "simulated per-attempt migration failure probability")
		stallRate    = flag.Float64("stall-rate", 0, "simulated per-attempt migration stall probability")
		dropRate     = flag.Float64("drop-rate", 0, "simulated per-sample agent dropout probability")
		retryBudget  = flag.Int("retry-budget", 0, "migration attempts per VM before aborting (0 = default 3)")
	)
	flag.Parse()

	if *simulate != "" {
		return simulateRun(*simulate, *servers, *ticks, *seed, simFaults{
			failRate:    *failRate,
			stallRate:   *stallRate,
			dropRate:    *dropRate,
			retryBudget: *retryBudget,
		})
	}
	return serve(*listen, *queryListen, *interval, *retention, *snapshot, *readTimeout, *maxLineBytes)
}

// serve runs the daemon against real agents until SIGINT/SIGTERM.
func serve(listen, queryListen string, interval, retention time.Duration, snapshotPath string, readTimeout time.Duration, maxLineBytes int) error {
	warehouse := vmwild.NewWarehouse(retention)
	warehouse.ReadTimeout = readTimeout
	warehouse.MaxLineBytes = maxLineBytes
	if snapshotPath != "" {
		f, err := os.Open(snapshotPath)
		switch {
		case err == nil:
			n, err := warehouse.Restore(f)
			f.Close()
			if err != nil {
				return fmt.Errorf("restore snapshot: %w", err)
			}
			fmt.Printf("restored %d samples from %s\n", n, snapshotPath)
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to restore yet.
		default:
			// A present-but-unreadable snapshot (permissions, I/O) must
			// abort startup, not silently run on an empty warehouse.
			return fmt.Errorf("open snapshot: %w", err)
		}
	}
	addr, err := warehouse.Listen(listen)
	if err != nil {
		return err
	}
	defer warehouse.Close()
	qs := vmwild.NewQueryServer(warehouse)
	qs.ReadTimeout = readTimeout
	qs.MaxLineBytes = maxLineBytes
	qaddr, err := qs.Listen(queryListen)
	if err != nil {
		return err
	}
	defer qs.Close()
	fmt.Printf("ingesting on %s, serving queries on %s, interval %v\n", addr, qaddr, interval)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	<-stop

	if snapshotPath != "" {
		if err := writeSnapshot(warehouse, snapshotPath); err != nil {
			return err
		}
		fmt.Printf("snapshot written to %s\n", snapshotPath)
	}
	return nil
}

// writeSnapshot persists the warehouse atomically: the snapshot streams
// into a temp file in the target directory and replaces the old file only
// by rename, so a crash mid-write can never truncate the previous good
// snapshot.
func writeSnapshot(warehouse *vmwild.Warehouse, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snapshot-*")
	if err != nil {
		return fmt.Errorf("write snapshot: %w", err)
	}
	if err := warehouse.Snapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("write snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("write snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("write snapshot: %w", err)
	}
	return nil
}

// simFaults carries the simulation's fault-injection knobs.
type simFaults struct {
	failRate, stallRate, dropRate float64
	retryBudget                   int
}

func (s simFaults) enabled() bool {
	return s.failRate > 0 || s.stallRate > 0 || s.dropRate > 0
}

// simulateRun exercises the full daemon loop on compressed time.
func simulateRun(workload string, servers, ticks int, seed int64, faults simFaults) error {
	var profile *vmwild.Profile
	for _, p := range vmwild.Profiles() {
		if p.Name == workload {
			profile = p
			break
		}
	}
	if profile == nil {
		return fmt.Errorf("unknown workload %q", workload)
	}
	profile.Servers = servers

	warmup := 7 * 24
	horizon := warmup + 2*ticks + 2
	fleet, err := vmwild.Generate(profile, horizon, seed)
	if err != nil {
		return err
	}
	epoch := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)
	warehouse := vmwild.NewWarehouse(0)
	specs := make(map[vmwild.ServerID]vmwild.Spec)
	sources := make([]vmwild.MonitorSource, len(fleet.Servers))
	for i, st := range fleet.Servers {
		specs[st.ID] = st.Spec
		src, err := vmwild.NewTraceSource(st, epoch, int64(i))
		if err != nil {
			return err
		}
		sources[i] = src
	}
	var injector *vmwild.FaultInjector
	if faults.enabled() {
		injector, err = vmwild.NewFaultInjector(vmwild.FaultConfig{
			Seed:             seed,
			MigrationFailure: faults.failRate,
			MigrationStall:   faults.stallRate,
			AgentDropout:     faults.dropRate,
		})
		if err != nil {
			return err
		}
	}

	streamed := 0
	streamUpTo := func(hour int) error {
		for ; streamed < hour*4; streamed++ {
			ts := epoch.Add(time.Duration(streamed*15) * time.Minute)
			for i, src := range sources {
				s, err := src.Collect(ts)
				if err != nil {
					return err
				}
				// A dropped-out agent simply misses this observation;
				// the warehouse aggregates whatever arrived.
				if injector.AgentDrops(fleet.Servers[i].ID, streamed) {
					continue
				}
				warehouse.Ingest(s)
			}
		}
		return nil
	}

	execCfg := vmwild.DefaultExecutorConfig()
	if injector != nil {
		execCfg.Fault = injector
	}
	if faults.retryBudget > 0 {
		execCfg.RetryBudget = faults.retryBudget
	}
	ctrl, err := vmwild.NewController(vmwild.ControllerConfig{
		Fetch: func() (*vmwild.TraceSet, error) {
			return warehouse.CollectSet(profile.Name, specs, epoch)
		},
		Planner:  vmwild.PlanInput{Host: vmwild.HS23Elite()},
		Executor: execCfg,
	})
	if err != nil {
		return err
	}

	fmt.Printf("simulating workload %s: %d servers, %d intervals after a %dh warm-up\n\n",
		profile.Name, servers, ticks, warmup)
	fmt.Println("interval | hosts | migrations | attempted | ok | aborted | wave | feasible")
	for k := 0; k < ticks; k++ {
		hour := warmup + 2*k
		if err := streamUpTo(hour); err != nil {
			return err
		}
		tick, err := ctrl.RunInterval()
		if err != nil {
			return err
		}
		wave := "-"
		if tick.Execution != nil {
			wave = tick.Execution.Total.Round(time.Second).String()
		}
		degraded := ""
		if tick.Degraded {
			degraded = " (degraded)"
		}
		fmt.Printf("%8d | %5d | %10d | %9d | %2d | %7d | %6s | %v%s\n",
			tick.Interval, tick.Step.ActiveHosts, tick.Step.Migrations,
			tick.Moves.Attempted, tick.Moves.Succeeded, tick.Moves.Aborted,
			wave, tick.Feasible, degraded)
	}
	return nil
}
