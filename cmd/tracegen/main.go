// Command tracegen writes the synthetic data-center traces as CSV for use
// outside the library (spreadsheets, other simulators).
//
//	tracegen -workload A -hours 1056 -seed 20141208 -o traces_a.csv
//
// The CSV has one row per (server, hour): server id, application, class,
// hardware capacities, hour index, CPU demand (RPE2) and memory demand (MB).
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload    = flag.String("workload", "A", "workload profile: A, B, C or D")
		profilePath = flag.String("profile", "", "load a custom profile from this JSON file instead of -workload")
		hours       = flag.Int("hours", vmwild.HorizonHours, "hours of trace to generate")
		seed        = flag.Int64("seed", vmwild.DefaultSeed, "generator seed")
		out         = flag.String("o", "", "output file (default stdout)")
		servers     = flag.Int("servers", 0, "override server count (0 keeps the profile's)")
	)
	flag.Parse()

	var profile *vmwild.Profile
	if *profilePath != "" {
		f, err := os.Open(*profilePath)
		if err != nil {
			return err
		}
		defer f.Close()
		profile, err = vmwild.ReadProfileJSON(f)
		if err != nil {
			return err
		}
	} else {
		for _, p := range vmwild.Profiles() {
			if p.Name == *workload {
				profile = p
				break
			}
		}
		if profile == nil {
			return fmt.Errorf("unknown workload %q", *workload)
		}
	}
	if *servers > 0 {
		profile.Servers = *servers
	}

	set, err := vmwild.Generate(profile, *hours, *seed)
	if err != nil {
		return err
	}

	var w *bufio.Writer
	if *out == "" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{"server", "app", "class", "cpu_rpe2_capacity", "mem_mb_capacity", "hour", "cpu_rpe2", "mem_mb"}); err != nil {
		return err
	}
	for _, st := range set.Servers {
		base := []string{
			string(st.ID),
			st.App,
			st.Class,
			strconv.FormatFloat(st.Spec.CPURPE2, 'f', 0, 64),
			strconv.FormatFloat(st.Spec.MemMB, 'f', 0, 64),
		}
		for h, u := range st.Series.Samples {
			row := append(append([]string(nil), base...),
				strconv.Itoa(h),
				strconv.FormatFloat(u.CPU, 'f', 1, 64),
				strconv.FormatFloat(u.Mem, 'f', 1, 64),
			)
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	return nil
}
