// Command vmwild is the CLI for the consolidation-study library. It exposes
// the paper's experiments as subcommands:
//
//	vmwild analyze     -workload A    # burstiness + resource-ratio study (Figures 1-6)
//	vmwild compare     -workload A    # planner comparison (Figures 7-12)
//	vmwild sensitivity -workload A    # migration-reservation sweep (Figures 13-16)
//	vmwild migrate     -mem 2048 -dirty 40   # live-migration pre-copy model
//	vmwild recommend   -workload A    # consolidation-mode advisor (Section 8)
//	vmwild execute     -workload A    # do the migration waves fit the interval?
//	vmwild scenario    run flash-crowd       # end-to-end scenario with checkpoints
//	vmwild report                     # the full reproduction, all tables and figures
package main

import (
	"flag"
	"fmt"
	"os"

	"vmwild"
	"vmwild/internal/migration"
	"vmwild/internal/report"
	"vmwild/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vmwild:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: vmwild <analyze|compare|sensitivity|migrate|scenario|report> [flags]")
	}
	switch args[0] {
	case "analyze":
		return analyze(args[1:])
	case "compare":
		return compare(args[1:])
	case "sensitivity":
		return sensitivity(args[1:])
	case "migrate":
		return migrate(args[1:])
	case "recommend":
		return recommend(args[1:])
	case "execute":
		return execute(args[1:])
	case "scenario":
		return scenarioCmd(args[1:])
	case "report":
		return fullReport(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func profileByName(name string) (*vmwild.Profile, error) {
	for _, p := range vmwild.Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q (want A, B, C or D)", name)
}

type studyOpts struct {
	workload *string
	seed     *int64
	servers  *int
}

func studyFlags(fs *flag.FlagSet) studyOpts {
	return studyOpts{
		workload: fs.String("workload", "A", "workload profile: A (Banking), B (Airlines), C (Natural Resources), D (Beverage)"),
		seed:     fs.Int64("seed", vmwild.DefaultSeed, "workload generator seed"),
		servers:  fs.Int("servers", 0, "override the estate size (0 keeps the paper's)"),
	}
}

func newStudy(o studyOpts) (*vmwild.Study, error) {
	p, err := profileByName(*o.workload)
	if err != nil {
		return nil, err
	}
	if *o.servers > 0 {
		p.Servers = *o.servers
	}
	return vmwild.NewStudy(p, vmwild.WithSeed(*o.seed))
}

func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	opts := studyFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	study, err := newStudy(opts)
	if err != nil {
		return err
	}

	bursty, err := study.SampleBurstiness(2)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Burstiest servers of workload %s (Figure 1)", *opts.workload),
		"server", "avg util", "peak util", "peak/avg", "CoV")
	for _, b := range bursty {
		t.AddRow(string(b.ID), b.AvgUtil, b.PeakUtil, b.PeakToAvg, b.CoV)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	cpuCurves, err := study.PeakToAverageCPU()
	if err != nil {
		return err
	}
	memCurves, err := study.PeakToAverageMem()
	if err != nil {
		return err
	}
	curves := make(map[string]*stats.CDF)
	var order []string
	for _, c := range cpuCurves {
		name := fmt.Sprintf("cpu @%dh", c.IntervalHours)
		curves[name] = c.CDF
		order = append(order, name)
	}
	for _, c := range memCurves {
		name := fmt.Sprintf("mem @%dh", c.IntervalHours)
		curves[name] = c.CDF
		order = append(order, name)
	}
	t, err = report.CDFTable("\nPeak-to-average ratios (Figures 2 and 4)", report.DefaultQuantiles, curves, order)
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	cov, err := study.CoVCPU()
	if err != nil {
		return err
	}
	covMem, err := study.CoVMem()
	if err != nil {
		return err
	}
	t, err = report.CDFTable("\nCoefficient of variability (Figures 3 and 5)", report.DefaultQuantiles,
		map[string]*stats.CDF{"cpu": cov, "mem": covMem}, []string{"cpu", "mem"})
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	ratio, err := study.ResourceRatio()
	if err != nil {
		return err
	}
	fmt.Printf("\nAggregate CPU/memory ratio (Figure 6): p10=%.0f p50=%.0f p90=%.0f RPE2/GB; memory-bound in %.0f%% of intervals (blade ratio %.0f)\n",
		ratio.CDF.Quantile(0.10), ratio.CDF.Median(), ratio.CDF.Quantile(0.90), ratio.MemoryBoundFrac*100, ratio.BladeRatio)

	daily, weekly, err := study.Seasonality()
	if err != nil {
		return err
	}
	fmt.Printf("Seasonality (autocorrelation): daily median %.2f, weekly median %.2f\n",
		daily.Median(), weekly.Median())
	return nil
}

func compare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	opts := studyFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	study, err := newStudy(opts)
	if err != nil {
		return err
	}

	rows, err := study.CompareCosts()
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Planner comparison, workload %s (Figure 7)", *opts.workload),
		"planner", "hosts", "space (norm)", "power W", "power (norm)", "migrations")
	for _, r := range rows {
		t.AddRow(r.Planner, r.Hosts, r.NormSpace, r.AvgPowerW, r.NormPower, r.Migrations)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	cont, err := study.Contention()
	if err != nil {
		return err
	}
	t = report.NewTable("\nContention time (Figure 8)", "planner", "hours", "fraction")
	for _, r := range cont {
		t.AddRow(r.Planner, r.Hours, r.Fraction)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	utils, err := study.Utilization()
	if err != nil {
		return err
	}
	t = report.NewTable("\nHost CPU utilization (Figures 10-11)",
		"planner", "avg p50", "peak p50", "peak p90", "peak>100%")
	for _, u := range utils {
		t.AddRow(u.Planner, u.Avg.Median(), u.Peak.Median(), u.Peak.Quantile(0.90), u.FracPeakOver1)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}

	active, err := study.ActiveServers()
	if err != nil {
		return err
	}
	fmt.Printf("\nActive-server fraction under dynamic (Figure 12): min=%.2f p50=%.2f max=%.2f\n",
		active.Quantile(0), active.Median(), active.Quantile(1))
	return nil
}

func sensitivity(args []string) error {
	fs := flag.NewFlagSet("sensitivity", flag.ContinueOnError)
	opts := studyFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	study, err := newStudy(opts)
	if err != nil {
		return err
	}
	sens, err := study.Sensitivity(nil)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Dynamic hosts vs utilization bound, workload %s (Figures 13-16); vanilla=%d stochastic=%d",
		*opts.workload, sens.VanillaHosts, sens.StochasticHosts), "bound", "dynamic hosts")
	for _, pt := range sens.Points {
		t.AddRow(pt.Bound, pt.DynamicHosts)
	}
	return t.Render(os.Stdout)
}

func migrate(args []string) error {
	fs := flag.NewFlagSet("migrate", flag.ContinueOnError)
	mem := fs.Float64("mem", 2048, "VM active memory in MB")
	dirty := fs.Float64("dirty", 40, "page dirty rate in MB/s")
	link := fs.Float64("link", 110, "migration link bandwidth in MB/s")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := migration.DefaultConfig()
	cfg.LinkMBps = *link
	res, err := migration.Simulate(*mem, *dirty, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("pre-copy migration of %.0f MB at %.0f MB/s dirty rate over a %.0f MB/s link:\n", *mem, *dirty, *link)
	fmt.Printf("  duration   %v\n  downtime   %v\n  rounds     %d\n  transferred %.0f MB\n  converged  %v\n",
		res.Duration.Round(1e7), res.Downtime.Round(1e6), res.Rounds, res.TransferredMB, res.Converged)
	return nil
}

func recommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ContinueOnError)
	opts := studyFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	study, err := newStudy(opts)
	if err != nil {
		return err
	}
	rec, err := study.Recommend()
	if err != nil {
		return err
	}
	fmt.Printf("workload %s -> %s consolidation"+"\n\n", *opts.workload, rec.Mode)
	a := rec.Attributes
	t := report.NewTable("measured attributes", "attribute", "value")
	t.AddRow("heavy-tailed servers (CoV>=1)", a.HeavyTailFrac)
	t.AddRow("median CPU peak/avg @2h", a.PeakAvgMedian)
	t.AddRow("memory-bound interval fraction", a.MemoryBoundFrac)
	t.AddRow("predictor under-prediction", a.UnderPrediction)
	t.AddRow("correlation stability", a.CorrelationStability)
	t.AddRow("p90 sizing slack", a.TailGainFrac)
	t.AddRow("dynamic-friendly servers", a.DynamicFriendlyFrac)
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println("\nreasoning:")
	for _, r := range rec.Reasons {
		fmt.Printf("  - %s\n", r)
	}
	return nil
}

func execute(args []string) error {
	fs := flag.NewFlagSet("execute", flag.ContinueOnError)
	opts := studyFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	study, err := newStudy(opts)
	if err != nil {
		return err
	}
	rows, err := study.ExecutionStudy()
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("Execution study, workload %s: migration waves vs the 2h interval", *opts.workload),
		"mechanism", "p50", "p95", "max", "infeasible", "avg moves", "data GB")
	for _, r := range rows {
		t.AddRow(r.Mechanism, r.P50.Round(1e9).String(), r.P95.Round(1e9).String(), r.Max.Round(1e9).String(),
			r.InfeasibleFrac, r.AvgMoves, r.TotalDataGB)
	}
	return t.Render(os.Stdout)
}

func fullReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	seed := fs.Int64("seed", vmwild.DefaultSeed, "workload generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return vmwild.WriteReport(os.Stdout, *seed)
}
