package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vmwild"
)

// scenarioCmd dispatches the scenario harness verbs:
//
//	vmwild scenario list                      # the named scenarios
//	vmwild scenario run                       # run them all
//	vmwild scenario run -seed 7 flash-crowd   # one scenario, alternate seed
//	vmwild scenario run -json soak-stress     # JSONL metric stream on stdout
func scenarioCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: vmwild scenario <list|run> [flags] [id ...]")
	}
	switch args[0] {
	case "list":
		return scenarioList(args[1:], os.Stdout)
	case "run":
		return scenarioRun(args[1:], os.Stdout)
	default:
		return fmt.Errorf("unknown scenario verb %q (want list or run)", args[0])
	}
}

func scenarioList(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scenario list", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, s := range vmwild.Scenarios() {
		fmt.Fprintf(w, "%-24s %s\n", s.ID, s.Name)
		fmt.Fprintf(w, "%-24s   %s\n", "", s.Description)
	}
	return nil
}

func scenarioRun(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	seed := fs.Int64("seed", 0, "override the scenario seed (0 keeps each scenario's own)")
	jsonOut := fs.Bool("json", false, "emit the deterministic JSONL metric stream instead of the text summary")
	state := fs.String("state", "", "soak state directory (empty: fresh temp dir; reuse one to resume a crashed soak)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		for _, s := range vmwild.Scenarios() {
			ids = append(ids, s.ID)
		}
	}
	failed := 0
	for _, id := range ids {
		s, err := vmwild.ScenarioByID(id)
		if err != nil {
			return err
		}
		opts := vmwild.ScenarioOptions{Seed: *seed, StateDir: *state}
		if *jsonOut {
			opts.Metrics = w
		}
		res, err := vmwild.RunScenario(s, opts)
		if err != nil {
			return err
		}
		if !*jsonOut {
			printScenarioResult(w, s, res)
		}
		if !res.Passed {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed their checkpoints", failed, len(ids))
	}
	return nil
}

func printScenarioResult(w io.Writer, s *vmwild.Scenario, res *vmwild.ScenarioResult) {
	fmt.Fprintf(w, "scenario %s (%s) seed=%d servers=%d\n", res.ID, s.Name, res.Seed, res.Servers)
	if res.Recovered > 0 {
		fmt.Fprintf(w, "  resumed from journal: %d intervals fast-forwarded\n", res.Recovered)
	}
	for _, tm := range res.Turns {
		fmt.Fprintf(w, "  turn %-16s intervals=%d moves=%d/%d aborted=%d failed=%d stalled=%d slo=%d hosts=%d\n",
			tm.Turn, tm.Intervals, tm.Completed, tm.Attempted, tm.Aborted,
			tm.FailedAttempts, tm.StalledAttempts, tm.SLOViolations, tm.ActiveHosts)
	}
	for _, cp := range res.Checkpoints {
		verdict := "PASS"
		if !cp.Passed {
			verdict = "FAIL"
		}
		name := cp.Name
		if cp.Turn != "" {
			name = cp.Turn + "/" + cp.Name
		}
		fmt.Fprintf(w, "  checkpoint %-28s %s", name, verdict)
		if cp.Detail != "" {
			fmt.Fprintf(w, "  (%s)", cp.Detail)
		}
		fmt.Fprintln(w)
	}
	if res.Passed {
		fmt.Fprintf(w, "  PASS (%d checkpoints)\n", len(res.Checkpoints))
	} else {
		fmt.Fprintf(w, "  FAIL (%d of %d checkpoints failed)\n", len(res.Failed()), len(res.Checkpoints))
	}
}
