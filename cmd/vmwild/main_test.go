package main

import (
	"strings"
	"testing"
)

// The CLI's run() is the testable surface; every subcommand is exercised on
// a small estate so the suite stays quick.
func TestRunDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs planners")
	}
	tests := []struct {
		name string
		args []string
	}{
		{name: "analyze", args: []string{"analyze", "-workload", "D", "-servers", "20"}},
		{name: "compare", args: []string{"compare", "-workload", "B", "-servers", "20"}},
		{name: "sensitivity", args: []string{"sensitivity", "-workload", "C", "-servers", "20"}},
		{name: "recommend", args: []string{"recommend", "-workload", "A", "-servers", "20"}},
		{name: "execute", args: []string{"execute", "-workload", "A", "-servers", "20"}},
		{name: "migrate", args: []string{"migrate", "-mem", "1024", "-dirty", "20"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("no-args error = %v", err)
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("expected error for unknown subcommand")
	}
	if err := run([]string{"analyze", "-workload", "Z"}); err == nil {
		t.Error("expected error for unknown workload")
	}
	if err := run([]string{"migrate", "-mem", "-5"}); err == nil {
		t.Error("expected error for invalid migration parameters")
	}
}

// The scenario verbs are cheap enough to run for real: list renders the
// catalog, run drives a full in-memory scenario and must report pass.
func TestScenarioCommand(t *testing.T) {
	if err := run([]string{"scenario", "list"}); err != nil {
		t.Fatalf("scenario list: %v", err)
	}
	if err := run([]string{"scenario", "run", "rolling-maintenance"}); err != nil {
		t.Fatalf("scenario run: %v", err)
	}
	if err := run([]string{"scenario", "run", "-seed", "7", "-json", "dc-evacuation"}); err != nil {
		t.Fatalf("scenario run -seed -json: %v", err)
	}
}

func TestScenarioCommandErrors(t *testing.T) {
	if err := run([]string{"scenario"}); err == nil {
		t.Error("expected usage error for bare scenario")
	}
	if err := run([]string{"scenario", "bogus"}); err == nil {
		t.Error("expected error for unknown scenario verb")
	}
	if err := run([]string{"scenario", "run", "no-such-scenario"}); err == nil {
		t.Error("expected error for unknown scenario ID")
	}
}
