package main

import (
	"strings"
	"testing"
)

// The CLI's run() is the testable surface; every subcommand is exercised on
// a small estate so the suite stays quick.
func TestRunDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("runs planners")
	}
	tests := []struct {
		name string
		args []string
	}{
		{name: "analyze", args: []string{"analyze", "-workload", "D", "-servers", "20"}},
		{name: "compare", args: []string{"compare", "-workload", "B", "-servers", "20"}},
		{name: "sensitivity", args: []string{"sensitivity", "-workload", "C", "-servers", "20"}},
		{name: "recommend", args: []string{"recommend", "-workload", "A", "-servers", "20"}},
		{name: "execute", args: []string{"execute", "-workload", "A", "-servers", "20"}},
		{name: "migrate", args: []string{"migrate", "-mem", "1024", "-dirty", "20"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Errorf("no-args error = %v", err)
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("expected error for unknown subcommand")
	}
	if err := run([]string{"analyze", "-workload", "Z"}); err == nil {
		t.Error("expected error for unknown workload")
	}
	if err := run([]string{"migrate", "-mem", "-5"}); err == nil {
		t.Error("expected error for invalid migration parameters")
	}
}
