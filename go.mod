module vmwild

go 1.23
