// Runtime: the full live system on compressed time — agents stream the
// Table 1 metrics into the warehouse over TCP while the consolidation
// controller wakes every (virtual) 2-hour interval, pulls fresh history,
// predicts the next interval's peaks, adapts the placement and schedules
// the migration waves. This is the deployed-system shape of the paper's
// dynamic consolidation tools.
package main

import (
	"fmt"
	"log"
	"time"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile := vmwild.Banking()
	profile.Servers = 30
	const horizonHours = 10 * 24
	fleet, err := vmwild.Generate(profile, horizonHours, vmwild.DefaultSeed)
	if err != nil {
		return err
	}
	epoch := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC)

	// Monitoring plane: agents -> TCP -> warehouse.
	warehouse := vmwild.NewWarehouse(0)
	addr, err := warehouse.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer warehouse.Close()
	fmt.Printf("warehouse on %s; streaming %d servers\n", addr, profile.Servers)

	specs := make(map[vmwild.ServerID]vmwild.Spec)
	sources := make([]vmwild.MonitorSource, len(fleet.Servers))
	for i, st := range fleet.Servers {
		specs[st.ID] = st.Spec
		src, err := vmwild.NewTraceSource(st, epoch, int64(i))
		if err != nil {
			return err
		}
		sources[i] = src
	}

	// streamUpTo pushes 15-minute samples into the warehouse until the
	// given virtual hour.
	streamed := 0
	streamUpTo := func(hour int) error {
		for ; streamed < hour*4; streamed++ {
			ts := epoch.Add(time.Duration(streamed*15) * time.Minute)
			for _, src := range sources {
				s, err := src.Collect(ts)
				if err != nil {
					return err
				}
				warehouse.Ingest(s)
			}
		}
		return nil
	}

	// Control plane: the consolidation loop reads whatever history the
	// warehouse has accumulated.
	ctrl, err := vmwild.NewController(vmwild.ControllerConfig{
		Fetch: func() (*vmwild.TraceSet, error) {
			return warehouse.CollectSet(profile.Name, specs, epoch)
		},
		Planner: vmwild.PlanInput{Host: vmwild.HS23Elite()},
	})
	if err != nil {
		return err
	}

	// Compressed time: one week of warm-up telemetry, then 2-hour
	// consolidation intervals for a day and a half.
	if err := streamUpTo(7 * 24); err != nil {
		return err
	}
	fmt.Println("\nvirtual-hour | active hosts | migrations | wave time | fits 2h?")
	for hour := 7 * 24; hour < 9*24; hour += 2 {
		if err := streamUpTo(hour); err != nil {
			return err
		}
		tick, err := ctrl.RunInterval()
		if err != nil {
			return err
		}
		wave := "-"
		if tick.Execution != nil {
			wave = tick.Execution.Total.Round(time.Second).String()
		}
		fmt.Printf("%12d | %12d | %10d | %9s | %v\n",
			hour, tick.Step.ActiveHosts, tick.Step.Migrations, wave, tick.Feasible)
	}

	ticks := ctrl.Ticks()
	var migrations int
	for _, tk := range ticks {
		migrations += tk.Step.Migrations
	}
	fmt.Printf("\n%d intervals completed, %d migrations ordered in total\n", len(ticks), migrations)
	fmt.Println("night intervals consolidate onto fewer hosts; morning ramps spread out")
	return nil
}
