// Migration: plan the live migrations of a consolidation wave — estimate
// per-VM pre-copy duration, downtime and network cost, check which source
// hosts are inside the reliability envelope, and show why the paper
// reserves 20% of every host for the migration process (Observation 4).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate a day of Airlines-style servers; pick the evaluation
	// window's first hour as the migration moment.
	profile := vmwild.Airlines()
	profile.Servers = 12
	set, err := vmwild.Generate(profile, 24, vmwild.DefaultSeed)
	if err != nil {
		return err
	}

	cfg := vmwild.DefaultMigrationConfig()
	fmt.Printf("migration wave over a %.0f MB/s link:\n\n", cfg.LinkMBps)
	fmt.Printf("%-8s %10s %10s %12s %12s %10s\n", "vm", "mem MB", "cpu util", "duration", "downtime", "data MB")

	type waveEntry struct {
		id       vmwild.ServerID
		mem, cpu float64
		res      vmwild.MigrationResult
	}
	var wave []waveEntry
	for _, st := range set.Servers {
		u := st.Series.Samples[9] // a business-hour sample
		cpuUtil := u.CPU / st.Spec.CPURPE2
		// Dirty rate scales with CPU activity, as in the planner's
		// cost model.
		dirty := 1 + 40*cpuUtil
		res, err := vmwild.SimulateMigration(u.Mem, dirty, cfg)
		if err != nil {
			return err
		}
		wave = append(wave, waveEntry{id: st.ID, mem: u.Mem, cpu: cpuUtil, res: res})
	}
	sort.Slice(wave, func(i, j int) bool { return wave[i].res.Duration < wave[j].res.Duration })
	var totalData float64
	for _, w := range wave {
		fmt.Printf("%-8s %10.0f %9.1f%% %12v %12v %10.0f\n",
			w.id, w.mem, w.cpu*100, w.res.Duration.Round(1e8), w.res.Downtime.Round(1e6), w.res.TransferredMB)
		totalData += w.res.TransferredMB
	}
	fmt.Printf("\ntotal data to move: %.1f GB\n\n", totalData/1024)

	// Reliability envelope: which source hosts can migrate safely?
	fmt.Println("reliability envelope (Section 4.3: CPU < 80%, memory < 85%):")
	for _, tt := range []struct {
		name     string
		cpu, mem float64
	}{
		{name: "healthy host", cpu: 0.55, mem: 0.70},
		{name: "cpu-saturated host", cpu: 0.92, mem: 0.60},
		{name: "memory-pressured host", cpu: 0.50, mem: 0.93},
	} {
		verdict := "RELIABLE"
		if !vmwild.MigrationReliable(tt.cpu, tt.mem) {
			verdict = "AT RISK: shed load before migrating"
		}
		fmt.Printf("  %-22s cpu %3.0f%% mem %3.0f%% -> %s\n", tt.name, tt.cpu*100, tt.mem*100, verdict)
	}

	fmt.Printf("\nthis is why dynamic consolidation reserves %.0f%% of every host:\n", vmwild.DefaultReservation*100)
	fmt.Println("without the reservation, the source host of an urgent migration is")
	fmt.Println("already saturated, the pre-copy cannot converge, and the migration")
	fmt.Println("stalls exactly when it is needed most.")

	// Maintenance drain: the live-migration use case production estates
	// actually adopt. Plan the fleet semi-statically, then evacuate the
	// first host for a firmware update.
	mon, err := set.SliceAll(0, 12)
	if err != nil {
		return err
	}
	eval, err := set.SliceAll(12, 24)
	if err != nil {
		return err
	}
	plan, err := vmwild.SemiStatic().Plan(vmwild.PlanInput{
		Monitoring: mon, Evaluation: eval, Host: vmwild.HS23Elite(),
	})
	if err != nil {
		return err
	}
	sched, ok := plan.Schedule.(interface{ PlacementAt(int) *vmwild.Placement })
	if !ok {
		return fmt.Errorf("unexpected schedule type %T", plan.Schedule)
	}
	placement := sched.PlacementAt(0)
	victim := placement.Hosts()[0].ID
	// Maintenance needs somewhere to put the load: power on a standby
	// blade before evacuating.
	placement.OpenHost()
	drain, moves, err := vmwild.DrainHost(placement, victim, vmwild.DefaultExecutorConfig())
	if err != nil {
		return err
	}
	fmt.Printf("\nmaintenance drain of %s: %d VMs in %d waves, done in %v\n",
		victim, len(moves), len(drain.Waves), drain.Total.Round(time.Second))
	return nil
}
