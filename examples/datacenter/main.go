// Datacenter: a consolidation-engagement walkthrough — workload analysis,
// deployment constraints, planner comparison and the migration-reservation
// sensitivity sweep, the way the paper's Section 5 evaluates a real estate.
package main

import (
	"fmt"
	"log"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile := vmwild.Beverage()
	profile.Servers = 80
	study, err := vmwild.NewStudy(profile, vmwild.WithVirtOverhead(0.05))
	if err != nil {
		return err
	}

	// Step 1: understand the workload (Section 4 of the paper).
	fmt.Printf("=== workload %s (%s), %d servers ===\n", profile.Name, profile.Industry, profile.Servers)
	curves, err := study.PeakToAverageCPU()
	if err != nil {
		return err
	}
	for _, c := range curves {
		fmt.Printf("CPU peak/avg @%dh: median %.1f, 10%% of servers above %.1f\n",
			c.IntervalHours, c.CDF.Median(), c.CDF.Quantile(0.90))
	}
	ratio, err := study.ResourceRatio()
	if err != nil {
		return err
	}
	fmt.Printf("memory-bound in %.0f%% of 2h intervals (aggregate ratio median %.0f vs blade %.0f RPE2/GB)\n\n",
		ratio.MemoryBoundFrac*100, ratio.CDF.Median(), ratio.BladeRatio)

	// Step 2: encode deployment constraints (Section 2.2.4). The first
	// two database servers of the estate are a clustered pair that must
	// not share a host; the first web application is pinned to its
	// subnet's rack by keeping its members together.
	var dbPair, webApp []vmwild.ServerID
	for _, st := range study.Monitoring().Servers {
		if len(dbPair) < 2 && st.Class == "web" && st.App != "" && len(webApp) > 0 && st.App != firstApp(study) {
			dbPair = append(dbPair, st.ID)
		}
		if st.App == firstApp(study) {
			webApp = append(webApp, st.ID)
		}
	}
	cs := vmwild.ConstraintSet{
		vmwild.AntiAffinity(dbPair...),
		vmwild.SameRack(webApp...),
	}

	// Step 3: compare planners under those constraints.
	in := study.Input()
	in.Constraints = cs
	fmt.Printf("%-12s %8s %12s\n", "planner", "hosts", "migrations")
	for _, planner := range []vmwild.Planner{vmwild.SemiStatic(), vmwild.Stochastic(), vmwild.Dynamic()} {
		plan, err := planner.Plan(in)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8d %12d\n", planner.Name(), plan.Provisioned, plan.Migrations)
	}

	// Step 4: how sensitive is dynamic consolidation to the live
	// migration reservation? (Figures 13-16.)
	sens, err := study.Sensitivity(nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nmigration-reservation sweep (vanilla=%d, stochastic=%d):\n", sens.VanillaHosts, sens.StochasticHosts)
	for _, pt := range sens.Points {
		marker := ""
		if pt.DynamicHosts <= sens.StochasticHosts {
			marker = "  <- dynamic wins from here"
		}
		fmt.Printf("  reserve %2.0f%% -> %d hosts%s\n", (1-pt.Bound)*100, pt.DynamicHosts, marker)
	}
	return nil
}

// firstApp returns the first application label of the estate.
func firstApp(study *vmwild.Study) string {
	return study.Monitoring().Servers[0].App
}
