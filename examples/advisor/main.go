// Advisor: run the paper's Section 8 recommendation — "a comprehensive
// consolidation planning analysis prior to VM consolidation in the wild" —
// across all four study data centers, then sanity-check each recommendation
// against the measured planner outcomes.
package main

import (
	"fmt"
	"log"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("consolidation-mode advisory for the four study data centers")
	fmt.Println()
	for _, profile := range vmwild.Profiles() {
		// A 120-server slice keeps the demo quick; drop the override
		// to advise at paper scale.
		profile.Servers = 120
		study, err := vmwild.NewStudy(profile)
		if err != nil {
			return err
		}
		rec, err := study.Recommend()
		if err != nil {
			return err
		}
		a := rec.Attributes
		fmt.Printf("=== %s (%s): recommend %s ===\n", profile.Name, profile.Industry, rec.Mode)
		fmt.Printf("    heavy-tailed %.0f%%  peak/avg %.1f  memory-bound %.0f%%  clusters %d\n",
			a.HeavyTailFrac*100, a.PeakAvgMedian, a.MemoryBoundFrac*100, a.DemandClusters)
		for _, r := range rec.Reasons {
			fmt.Printf("    - %s\n", r)
		}

		// Sanity check: what do the planners actually deliver here?
		rows, err := study.CompareCosts()
		if err != nil {
			return err
		}
		fmt.Printf("    measured: ")
		for _, r := range rows {
			fmt.Printf("%s %d hosts / %.0fW   ", r.Planner, r.Hosts, r.AvgPowerW)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("the pattern the paper reports: only the bursty CPU-bound estate")
	fmt.Println("(Banking) earns dynamic consolidation; the memory-bound estates are")
	fmt.Println("served as well or better by (stochastic) semi-static consolidation.")
	return nil
}
