// Monitoring: run the paper's monitoring pipeline end to end — per-server
// agents collect the Table 1 metric set every (simulated) minute and stream
// it over TCP to the central warehouse, which aggregates hourly averages
// that feed consolidation planning.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A small fleet with two days of demand history to replay.
	profile := vmwild.NaturalResources()
	profile.Servers = 6
	fleet, err := vmwild.Generate(profile, 48, vmwild.DefaultSeed)
	if err != nil {
		return err
	}
	epoch := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC) // the study began in June 2012

	// Central warehouse with a 30-day retention policy.
	warehouse := vmwild.NewWarehouse(30 * 24 * time.Hour)
	addr, err := warehouse.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer warehouse.Close()
	fmt.Printf("warehouse listening on %s\n", addr)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Each server's agent collects one sample per simulated minute and
	// ships them over the socket (batched here; the streaming Agent in
	// the library does the same continuously).
	const hoursToCollect = 24
	specs := make(map[vmwild.ServerID]vmwild.Spec)
	var ids []vmwild.ServerID
	for i, st := range fleet.Servers {
		specs[st.ID] = st.Spec
		ids = append(ids, st.ID)
		src, err := vmwild.NewTraceSource(st, epoch, int64(i))
		if err != nil {
			return err
		}
		batch := make([]vmwild.MonitorSample, 0, hoursToCollect*60)
		for m := 0; m < hoursToCollect*60; m++ {
			s, err := src.Collect(epoch.Add(time.Duration(m) * time.Minute))
			if err != nil {
				return err
			}
			batch = append(batch, s)
		}
		if err := vmwild.SendMonitorBatch(ctx, addr, batch); err != nil {
			return err
		}
	}
	if err := warehouse.WaitForSamples(ctx, ids, hoursToCollect*60); err != nil {
		return err
	}
	stat := warehouse.Stats()
	fmt.Printf("warehouse ingested %d samples from %d servers (%d dropped)\n\n",
		stat.Samples, stat.Servers, stat.Dropped)

	// Planning pulls its data through the warehouse query protocol —
	// the same JSON-over-TCP path a remote planning tool would use.
	qs := vmwild.NewQueryServer(warehouse)
	qaddr, err := qs.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer qs.Close()
	client, err := vmwild.DialQuery(ctx, qaddr)
	if err != nil {
		return err
	}
	defer client.Close()
	collected, err := client.FetchSet(profile.Name, specs, epoch)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %12s %12s %12s\n", "server", "hours", "avg cpu", "avg mem MB")
	for _, st := range collected.Servers {
		var cpu, mem float64
		for _, u := range st.Series.Samples {
			cpu += u.CPU
			mem += u.Mem
		}
		n := float64(st.Series.Len())
		fmt.Printf("%-8s %12d %12.1f %12.0f\n", st.ID, st.Series.Len(), cpu/n, mem/n)
	}

	fmt.Println("\nthe aggregated set plugs straight into planning:")
	fmt.Printf("  servers: %d, step: hourly, ready for vmwild planners\n", len(collected.Servers))
	return nil
}
