// Quickstart: generate a small Banking-style data center, plan it with the
// three consolidation approaches the paper compares, and print the
// space/power outcome of each.
package main

import (
	"fmt"
	"log"

	"vmwild"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 60-server slice of the Banking workload keeps the demo fast;
	// use vmwild.Banking() unmodified for the paper-scale experiment.
	profile := vmwild.Banking()
	profile.Servers = 60

	study, err := vmwild.NewStudy(profile)
	if err != nil {
		return err
	}

	fmt.Printf("workload %s (%s): %d servers, 30-day monitoring + 14-day evaluation\n\n",
		profile.Name, profile.Industry, profile.Servers)

	rows, err := study.CompareCosts()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %14s %14s %12s\n", "planner", "hosts", "space (norm)", "power (norm)", "migrations")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %14.2f %14.2f %12d\n", r.Planner, r.Hosts, r.NormSpace, r.NormPower, r.Migrations)
	}

	fmt.Println("\nThe paper's headline (Observation 5): the stochastic semi-static plan")
	fmt.Println("matches or beats dynamic consolidation on space, because dynamic")
	fmt.Println("consolidation must reserve 20% of every host for live migration.")
	return nil
}
