package vmwild

import (
	"context"
	"io"
	"time"

	"vmwild/internal/advisor"
	"vmwild/internal/analysis"
	"vmwild/internal/catalog"
	"vmwild/internal/chaos"
	"vmwild/internal/constraints"
	"vmwild/internal/controller"
	"vmwild/internal/core"
	"vmwild/internal/emulator"
	"vmwild/internal/executor"
	"vmwild/internal/experiments"
	"vmwild/internal/fault"
	"vmwild/internal/fsx"
	"vmwild/internal/migration"
	"vmwild/internal/monitor"
	"vmwild/internal/placement"
	"vmwild/internal/scenario"
	"vmwild/internal/stats"
	"vmwild/internal/sweep"
	"vmwild/internal/trace"
	"vmwild/internal/traceio"
	"vmwild/internal/wal"
	"vmwild/internal/workload"
)

// Horizon constants (Table 3 of the paper).
const (
	// DefaultSeed makes every experiment reproducible; it is the
	// Middleware '14 conference date.
	DefaultSeed = workload.DefaultSeed
	// MonitoringHours is the planning window: 30 days of hourly data.
	MonitoringHours = workload.MonitoringHours
	// EvaluationHours is the replay window: 14 days.
	EvaluationHours = workload.EvaluationHours
	// HorizonHours is the full generated horizon.
	HorizonHours = workload.HorizonHours
	// DefaultIntervalHours is the dynamic consolidation interval.
	DefaultIntervalHours = core.DefaultIntervalHours
	// DefaultReservation is the live-migration resource reservation.
	DefaultReservation = migration.DefaultReservation
)

// Core data types, re-exported from the implementation packages.
type (
	// Usage is one demand sample (CPU in RPE2 units, memory in MB).
	Usage = trace.Usage
	// Series is a fixed-step demand time series.
	Series = trace.Series
	// Spec is a machine's capacity.
	Spec = trace.Spec
	// ServerID names a monitored server.
	ServerID = trace.ServerID
	// ServerTrace binds a server's identity, capacity and history.
	ServerTrace = trace.ServerTrace
	// TraceSet is one data center's monitored servers.
	TraceSet = trace.Set
	// Profile describes a data center's workload composition.
	Profile = workload.Profile
	// HostModel is a hardware model (capacity, power, rack density).
	HostModel = catalog.Model
	// Planner produces consolidation plans.
	Planner = core.Planner
	// Plan is a planner's output.
	Plan = core.Plan
	// PlanInput is the planner input.
	PlanInput = core.Input
	// DemandMatrix is the dynamic planner's walk-forward sizing, fully
	// materialized for sharing across plans (see SizeDynamicDemands).
	DemandMatrix = core.DemandMatrix
	// CorrFunc is a pairwise demand-correlation function consumed by the
	// stochastic packer.
	CorrFunc = placement.CorrFunc
	// ReplayResult is the emulator's replay outcome.
	ReplayResult = emulator.Result
	// Placement is a mutable assignment of VMs to hosts.
	Placement = placement.Placement
	// CDF is an empirical distribution.
	CDF = stats.CDF
	// ServerBurstiness summarizes one server's demand variability.
	ServerBurstiness = analysis.ServerBurstiness

	// Experiment result types (one per paper artifact).
	CostRow            = experiments.CostRow
	ContentionRow      = experiments.ContentionRow
	UtilizationCurves  = experiments.UtilizationCurves
	SensitivityResult  = experiments.SensitivityResult
	IntervalCurve      = experiments.IntervalCurve
	RatioResult        = experiments.RatioResult
	WorkloadSummary    = experiments.WorkloadSummary
	OlioResult         = experiments.OlioResult
	MigrationPoint     = experiments.MigrationPoint
	VerificationResult = experiments.VerificationResult
	IntervalPoint      = experiments.IntervalPoint
	PredictorPoint     = experiments.PredictorPoint
	MechanismRow       = experiments.MechanismRow
	ExecutionRow       = experiments.ExecutionRow
	BladeRow           = experiments.BladeRow
	FailureRow         = experiments.FailureRow
)

// The four study data centers (Table 2).
func Banking() *Profile          { return workload.Banking() }
func Airlines() *Profile         { return workload.Airlines() }
func NaturalResources() *Profile { return workload.NaturalResources() }
func Beverage() *Profile         { return workload.Beverage() }

// Profiles returns all four study profiles in Table 2 order.
func Profiles() []*Profile { return workload.Profiles() }

// HS23Elite is the reference consolidation target blade (2 sockets, 128 GB,
// 160 RPE2/GB).
func HS23Elite() HostModel { return catalog.HS23Elite }

// HS23Standard is the same blade without the memory extension (64 GB,
// 320 RPE2/GB) — the Observation 3 contrast.
func HS23Standard() HostModel { return catalog.HS23Standard }

// Generate synthesizes hourly demand traces for a profile. The same
// (profile, hours, seed) triple always produces identical traces.
func Generate(p *Profile, hours int, seed int64) (*TraceSet, error) {
	return workload.Generate(p, hours, seed)
}

// ProfileTemplate describes a custom estate in engagement-level terms.
type ProfileTemplate = workload.Template

// ProfileFromTemplate expands a template into a full workload profile.
func ProfileFromTemplate(t ProfileTemplate) (*Profile, error) { return workload.FromTemplate(t) }

// WriteProfileJSON serializes a workload profile (custom estates as data).
func WriteProfileJSON(w io.Writer, p *Profile) error { return workload.WriteProfileJSON(w, p) }

// ReadProfileJSON loads a workload profile, resolving hardware models
// against the default catalog.
func ReadProfileJSON(r io.Reader) (*Profile, error) {
	return workload.ReadProfileJSON(r, catalog.Default())
}

// WriteTraceCSV persists a trace set as CSV (the cmd/tracegen layout); use
// it to exchange traces with external tools.
func WriteTraceCSV(w io.Writer, set *TraceSet) error { return traceio.Write(w, set) }

// ReadTraceCSV loads a trace set from CSV in the same layout — the entry
// point for running the planners on real monitoring exports.
func ReadTraceCSV(r io.Reader, name string) (*TraceSet, error) { return traceio.Read(r, name) }

// Planners.

// SemiStatic returns the vanilla semi-static planner (peak sizing + FFD).
func SemiStatic() Planner { return core.SemiStatic{} }

// Static returns the classical one-time consolidation planner.
func Static() Planner { return core.Static{} }

// Stochastic returns the correlation-aware PCP-style planner.
func Stochastic() Planner { return core.Stochastic{} }

// Dynamic returns the dynamic consolidation planner (2-hour intervals, live
// migration with a 20% reservation).
func Dynamic() Planner { return core.Dynamic{} }

// SizeDynamicDemands precomputes the dynamic planner's Predict + Size walk:
// the per-interval reservation of every server across the evaluation
// window. Attach the result via PlanInput.Demands to let many dynamic plans
// over the same traces (different bounds, host models, constraints) share
// one prediction pass — planning output is identical either way.
func SizeDynamicDemands(in PlanInput) (*DemandMatrix, error) {
	return core.SizeDynamicDemands(in)
}

// NewSharedCorrelation precomputes the stochastic planner's interval-peak
// correlation function over a monitoring set, with a memo that is safe to
// share across concurrent plans. Attach it via PlanInput.Correlations.
func NewSharedCorrelation(set *TraceSet, intervalHours int) (CorrFunc, error) {
	return core.NewSharedCorrelation(set, intervalHours)
}

// Deployment constraints (Section 2.2.4 of the paper).
type (
	// Constraint vetoes candidate VM-to-host assignments.
	Constraint = constraints.Constraint
	// ConstraintSet is an ordered set of constraints, all of which must
	// permit an assignment.
	ConstraintSet = constraints.Set
)

// SameHost binds the given VMs to one physical host.
func SameHost(vms ...ServerID) Constraint { return constraints.SameHost{Group: vms} }

// AntiAffinity forbids any two of the given VMs from sharing a host.
func AntiAffinity(vms ...ServerID) Constraint { return constraints.AntiAffinity{Group: vms} }

// PinHost pins one VM to one host.
func PinHost(vm ServerID, host string) Constraint {
	return constraints.PinHost{VM: vm, Host: host}
}

// AvoidHost excludes one VM from one host.
func AvoidHost(vm ServerID, host string) Constraint {
	return constraints.AvoidHost{VM: vm, Host: host}
}

// SameRack binds the given VMs to one rack (the paper's subnet affinity).
func SameRack(vms ...ServerID) Constraint { return constraints.SameRack{Group: vms} }

// Live migration model (Section 4.3 of the paper).
type (
	// MigrationConfig parameterizes the pre-copy model.
	MigrationConfig = migration.Config
	// MigrationResult is one simulated migration's outcome.
	MigrationResult = migration.Result
	// MigrationCost is a planner-facing migration cost estimate.
	MigrationCost = migration.Cost
)

// DefaultMigrationConfig returns the pre-copy model calibrated to published
// gigabit-Ethernet measurements.
func DefaultMigrationConfig() MigrationConfig { return migration.DefaultConfig() }

// SimulateMigration runs the iterative pre-copy model for a VM with the
// given active memory (MB) and page dirty rate (MB/s).
func SimulateMigration(memMB, dirtyMBps float64, cfg MigrationConfig) (MigrationResult, error) {
	return migration.Simulate(memMB, dirtyMBps, cfg)
}

// MigrationReliable reports whether a host at the given CPU and memory
// utilization can run live migrations dependably (CPU < 80%, memory < 85%).
func MigrationReliable(cpuUtil, memUtil float64) bool {
	return migration.Reliable(cpuUtil, memUtil)
}

// EstimateMigrationCost predicts the transfer volume and duration of
// migrating a VM with the given active memory and CPU activity.
func EstimateMigrationCost(memMB, cpuUtil float64, cfg MigrationConfig) (MigrationCost, error) {
	return migration.EstimateCost(memMB, cpuUtil, cfg)
}

// Consolidation advisor (the paper's Section 8 conclusion: analyze before
// consolidating).
type (
	// Recommendation is the advisor's output: a mode plus the measured
	// workload attributes and the reasoning.
	Recommendation = advisor.Recommendation
	// AdvisorConfig tunes the advisor's decision thresholds.
	AdvisorConfig = advisor.Config
	// WorkloadAttributes are the advisor's decision inputs.
	WorkloadAttributes = advisor.Attributes
	// Mode is a recommended consolidation mode.
	Mode = advisor.Mode
)

// Recommendation modes.
const (
	ModeSemiStatic = advisor.ModeSemiStatic
	ModeStochastic = advisor.ModeStochastic
	ModeDynamic    = advisor.ModeDynamic
)

// Advise analyzes a monitoring window and recommends a consolidation mode,
// encoding the paper's decision logic: memory-bound estates get semi-static
// consolidation, bursty predictable CPU-bound estates get dynamic.
func Advise(set *TraceSet, cfg AdvisorConfig) (Recommendation, error) {
	return advisor.Advise(set, cfg)
}

// MeasureWorkload computes the advisor's decision attributes without
// deciding.
func MeasureWorkload(set *TraceSet, cfg AdvisorConfig) (WorkloadAttributes, error) {
	return advisor.Measure(set, cfg)
}

// Execution step (Section 2.1): turning placement changes into feasible
// live-migration schedules.
type (
	// MigrationMove is one VM relocation.
	MigrationMove = executor.Move
	// MigrationSchedule is a feasible wave-by-wave execution plan.
	MigrationSchedule = executor.Plan
	// ExecutorConfig tunes migration-wave scheduling.
	ExecutorConfig = executor.Config
)

// DefaultExecutorConfig returns the baseline execution settings (one
// migration per host, eight per fabric, gigabit pre-copy).
func DefaultExecutorConfig() ExecutorConfig { return executor.DefaultConfig() }

// Fault-tolerant execution: deterministic fault injection and the
// degraded-execution path behind the paper's Section 1.2 adoption concern.
type (
	// FaultConfig parameterizes the deterministic fault model; the zero
	// value injects nothing.
	FaultConfig = fault.Config
	// FaultInjector answers fault questions as a pure function of
	// (seed, identity); a nil injector injects nothing.
	FaultInjector = fault.Injector
	// FaultOutcome classifies one attempted live migration.
	FaultOutcome = fault.Outcome
	// MigrationExecution reports what a schedule actually did under the
	// fault model: completed moves, aborted moves, realized placement.
	MigrationExecution = executor.Execution
	// ControllerMoveStats is the per-interval migration accounting.
	ControllerMoveStats = controller.MoveStats
)

// Fault outcomes.
const (
	MigrationOK      = fault.OK
	MigrationStalled = fault.Stalled
	MigrationFailed  = fault.Failed
)

// NewFaultInjector validates the configuration and builds an injector.
func NewFaultInjector(cfg FaultConfig) (*FaultInjector, error) { return fault.New(cfg) }

// ExecuteTransition diffs two placements and executes the moves under the
// executor config's fault model: failed attempts retry with exponential
// backoff up to the retry budget, exhausted moves abort, and the returned
// execution's Final placement is where re-planning must start from.
func ExecuteTransition(from, to *Placement, cfg ExecutorConfig) (*MigrationExecution, []MigrationMove, error) {
	return executor.ExecuteTransition(from, to, cfg)
}

// ScheduleTransition plans the migrations that turn one placement into
// another, respecting capacity at every intermediate state.
func ScheduleTransition(from, to *Placement, cfg ExecutorConfig) (*MigrationSchedule, []MigrationMove, error) {
	return executor.ScheduleTransition(from, to, cfg)
}

// DrainHost plans the evacuation of one host for maintenance — the live
// migration use case real data centers do adopt (Section 1.2).
func DrainHost(p *Placement, host string, cfg ExecutorConfig) (*MigrationSchedule, []MigrationMove, error) {
	return executor.Drain(p, host, cfg)
}

// Monitoring substrate (Sections 2.1 and 3.1 of the paper): per-server
// agents stream the Table 1 metric set over TCP to a central warehouse that
// aggregates it into the hourly series the planners consume.
type (
	// MonitorSample is one Table 1 observation.
	MonitorSample = monitor.Sample
	// MonitorSource produces samples for one server.
	MonitorSource = monitor.Source
	// MonitorAgent is the per-server collector.
	MonitorAgent = monitor.Agent
	// Warehouse is the central monitoring store.
	Warehouse = monitor.Warehouse
)

// DefaultIngestShards is the warehouse's default shard count.
const DefaultIngestShards = monitor.DefaultIngestShards

// NewWarehouse creates a monitoring warehouse with the given retention
// and DefaultIngestShards ingest shards.
func NewWarehouse(retention time.Duration) *Warehouse {
	return monitor.NewWarehouse(retention)
}

// NewWarehouseShards creates a monitoring warehouse with an explicit
// ingest shard count (clamped to [1, 256]). One shard reproduces the
// single-lock behavior; more shards trade memory for ingest and query
// concurrency.
func NewWarehouseShards(retention time.Duration, shards int) *Warehouse {
	return monitor.NewWarehouseShards(retention, shards)
}

// NewTraceSource replays a demand trace as per-minute monitoring samples.
func NewTraceSource(st *ServerTrace, epoch time.Time, seed int64) (MonitorSource, error) {
	return monitor.NewTraceSource(st, epoch, seed)
}

// SendMonitorBatch ships samples to a warehouse over one TCP connection.
func SendMonitorBatch(ctx context.Context, addr string, samples []MonitorSample) error {
	return monitor.SendBatch(ctx, addr, samples)
}

// Runtime controller: the live dynamic-consolidation loop of the paper's
// deployed systems [25, 28].
type (
	// Controller runs the consolidation loop (fetch -> predict -> adapt
	// -> schedule) one interval at a time.
	Controller = controller.Controller
	// ControllerConfig assembles a controller.
	ControllerConfig = controller.Config
	// ControllerTick reports one completed interval.
	ControllerTick = controller.Tick
	// FetchFunc supplies monitoring history to the controller.
	FetchFunc = controller.FetchFunc
)

// ErrInsufficientHistory is returned by the controller during warm-up.
var ErrInsufficientHistory = controller.ErrInsufficientHistory

// ErrCircuitOpen is reported by Controller.Run when the configured number
// of consecutive interval failures trips its circuit breaker.
var ErrCircuitOpen = controller.ErrCircuitOpen

// NewController builds a runtime consolidation controller.
func NewController(cfg ControllerConfig) (*Controller, error) { return controller.New(cfg) }

// Durability: the crash-safe control plane (write-ahead log, checkpoints,
// recovery).
type (
	// WALOptions tunes a write-ahead log (segment size, fsync policy,
	// crash injection for tests).
	WALOptions = wal.Options
	// SyncPolicy selects when the WAL reaches the disk.
	SyncPolicy = wal.SyncPolicy
	// WarehouseLog journals warehouse ingestion and checkpoints its state.
	WarehouseLog = monitor.WarehouseLog
	// WarehouseRecovery summarizes what OpenWarehouseLog reconstructed.
	WarehouseRecovery = monitor.RecoveryStat
	// ControllerJournal makes the consolidation loop crash-safe: intent,
	// per-move outcomes and committed placements survive restarts.
	ControllerJournal = controller.Journal
	// ControllerRecovery is the state a controller journal reconstructed.
	ControllerRecovery = controller.Recovery
)

// WAL fsync policies.
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// ParseSyncPolicy maps "always", "interval" or "never" to a SyncPolicy.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParseSyncPolicy(s) }

// OpenWarehouseLog recovers the journal in dir into w (checkpoint restore
// plus WAL replay) and then journals every accepted sample, checkpointing
// each checkpointEvery appends.
func OpenWarehouseLog(w *Warehouse, dir string, checkpointEvery int, opts WALOptions) (*WarehouseLog, error) {
	return monitor.OpenWarehouseLog(w, dir, checkpointEvery, opts)
}

// OpenControllerJournal recovers the controller journal in dir; hand the
// result to ControllerConfig.Journal.
func OpenControllerJournal(dir string, opts WALOptions) (*ControllerJournal, error) {
	return controller.OpenJournal(dir, opts)
}

// Storage fault layer: the filesystem abstraction the durable paths run
// on, and its seeded fault injector — the disk-side counterpart of the
// network chaos proxy. Production code runs on OSFS; tests and the disk
// chaos wall run on a FaultFS whose every fault is a pure function of
// (seed, operation, path, call index).
type (
	// FS is the filesystem surface of the durable paths (WAL segments,
	// journals, checkpoints, snapshots). Set WALOptions.FS to substitute.
	FS = fsx.FS
	// FSFile is one open file on an FS.
	FSFile = fsx.File
	// FaultFS injects seeded filesystem faults: torn writes, failed
	// fsyncs and renames, corrupt reads, a byte budget that runs out
	// (ENOSPC), and whole-process crash emulation that tears unsynced
	// tails.
	FaultFS = fsx.FaultFS
	// FaultProfile parameterizes a FaultFS; the zero value injects
	// nothing.
	FaultProfile = fsx.Profile
	// FSCounters snapshots what a FaultFS did and injected.
	FSCounters = fsx.Counters
)

// OSFS is the production filesystem: a stateless passthrough to the os
// package.
var OSFS = fsx.OS

// Typed storage failure conditions, distinguished because their operator
// responses differ.
var (
	// ErrDiskFull is disk-out-of-space, injected or real: retryable once
	// space frees. The warehouse sheds ingest (clients keep their samples)
	// instead of acking what it cannot store.
	ErrDiskFull = wal.ErrDiskFull
	// ErrPoisoned marks a WAL segment whose fsync failed: the kernel may
	// have dropped the dirty pages, so the unsynced suffix is doubtful and
	// is never acknowledged again. The log truncates to the durable
	// watermark and rotates.
	ErrPoisoned = wal.ErrPoisoned
	// ErrCorruptRecord is damage found at rest during recovery; the log
	// refuses to silently skip acknowledged records.
	ErrCorruptRecord = wal.ErrCorruptRecord
)

// NewFaultFS wraps base (nil means OSFS) in a seeded fault injector.
// Paths are keyed relative to root, so a schedule is independent of where
// the tree lives on disk.
func NewFaultFS(base FS, root string, seed int64, p FaultProfile) (*FaultFS, error) {
	return fsx.NewFaultFS(base, root, seed, p)
}

// ParseFaultProfile maps a -disk-fault-profile flag spelling ("off",
// "flaky", "corrupt", "enospc:<bytes>") to a FaultProfile.
func ParseFaultProfile(s string) (FaultProfile, error) { return fsx.ParseProfile(s) }

// IsNoSpace reports whether err is a disk-full condition, injected
// (ErrDiskFull) or real (ENOSPC from the kernel).
func IsNoSpace(err error) bool { return fsx.IsNoSpace(err) }

// Scenario harness: named end-to-end simulations that drive the full
// controller/executor/monitor stack through scripted events (demand
// surges, maintenance drains, rack outages, hardware swaps) and grade the
// outcome against hard checkpoints. Every run is bitwise-reproducible
// from its seed; `vmwild scenario` is the CLI front end and the repo's
// scenario wall runs them all as tests.
type (
	// Scenario is one named end-to-end simulation: turns that mutate the
	// world, checkpoints that grade it.
	Scenario = scenario.Scenario
	// ScenarioTurn is one phase of a scenario.
	ScenarioTurn = scenario.Turn
	// ScenarioCheckpoint is a hard pass/fail assertion over a turn.
	ScenarioCheckpoint = scenario.Checkpoint
	// ScenarioCheck is the state a checkpoint assertion inspects.
	ScenarioCheck = scenario.Check
	// ScenarioWorld is the mutable simulation state turn actions act on.
	ScenarioWorld = scenario.World
	// ScenarioOptions tunes one run (seed override, metric sinks, soak
	// state directory).
	ScenarioOptions = scenario.Options
	// ScenarioResult is a graded run: per-turn metrics plus checkpoints.
	ScenarioResult = scenario.Result
	// ScenarioTurnMetrics aggregates one turn's intervals.
	ScenarioTurnMetrics = scenario.TurnMetrics
	// ScenarioIntervalMetrics measures one consolidation interval.
	ScenarioIntervalMetrics = scenario.IntervalMetrics
	// ScenarioCheckpointResult is one graded checkpoint.
	ScenarioCheckpointResult = scenario.CheckpointResult
	// ScenarioSoakConfig routes a scenario through the durable
	// warehouse+journal stack.
	ScenarioSoakConfig = scenario.SoakConfig
)

// Scenarios returns a fresh instance of every named scenario, sorted by
// ID. Instances are independent: running one never affects another.
func Scenarios() []*Scenario { return scenario.All() }

// ScenarioByID returns a fresh instance of the named scenario.
func ScenarioByID(id string) (*Scenario, error) { return scenario.Get(id) }

// RunScenario executes a scenario and grades its checkpoints. Checkpoint
// failures are reported in the result (Passed=false), not as errors;
// errors mean the simulation itself could not proceed.
func RunScenario(s *Scenario, opts ScenarioOptions) (*ScenarioResult, error) {
	return scenario.Run(s, opts)
}

// Overload protection and network chaos: the serving plane's robustness
// surface. The warehouse gates connections and sheds over-budget ingest
// through a token bucket (every refusal counted, never silent), the
// reliable sender ships CRC'd acked envelopes whose counters reconcile
// exactly against the warehouse's books, and the chaos proxy injects
// seeded network faults to prove all of it under fire — the chaos wall in
// internal/scenario runs the drills as tests.
type (
	// ChaosConfig parameterizes the seeded TCP fault proxy; the zero value
	// (plus a seed) forwards transparently.
	ChaosConfig = chaos.Config
	// ChaosProxy is a TCP proxy that injects latency, corruption,
	// truncation, resets and partitions, all as pure functions of
	// (seed, connection, direction, chunk).
	ChaosProxy = chaos.Proxy
	// ChaosStats counts what a proxy did to the traffic.
	ChaosStats = chaos.Stats
	// ReliableSender ships samples as sequenced, CRC'd, acknowledged
	// envelopes with exactly-once accounting.
	ReliableSender = monitor.ReliableSender
	// SenderCounters is the sender's reconciliation ledger: Queued ==
	// Acked + ServerShed + DroppedQueue + Pending at quiescence.
	SenderCounters = monitor.SenderCounters
	// WarehouseMetrics is the warehouse's operational counter set
	// (connections, shed ingest, corrupt frames, per-shard detail).
	WarehouseMetrics = monitor.Metrics
	// WarehouseShardMetrics is one ingest shard's slice of the metrics.
	WarehouseShardMetrics = monitor.ShardMetrics
	// QueryServerMetrics counts the query server's admission decisions.
	QueryServerMetrics = monitor.QueryMetrics
	// ResilienceScenario is one chaos-wall drill: the real serving stack
	// driven through fault proxies, graded on timing-free invariants.
	ResilienceScenario = scenario.ResilienceScenario
	// DiskScenario is one disk-chaos drill: the WAL/journal/snapshot stack
	// driven over a seeded fault-injecting filesystem, graded on
	// durability invariants (acks honest, replay == acked, byte-identical
	// recovery).
	DiskScenario = scenario.DiskScenario
)

// NewChaosProxy validates the configuration and builds a fault proxy in
// front of upstream; Listen starts it.
func NewChaosProxy(cfg ChaosConfig, upstream string) (*ChaosProxy, error) {
	return chaos.New(cfg, upstream)
}

// ResilienceScenarios returns the chaos-wall drills in wall order.
func ResilienceScenarios() []*ResilienceScenario { return scenario.Resilience() }

// ResilienceByID finds one chaos-wall drill.
func ResilienceByID(id string) (*ResilienceScenario, error) { return scenario.GetResilience(id) }

// DiskScenarios returns the disk-chaos drills in wall order.
func DiskScenarios() []*DiskScenario { return scenario.DiskChaos() }

// DiskScenarioByID finds one disk-chaos drill.
func DiskScenarioByID(id string) (*DiskScenario, error) { return scenario.GetDiskChaos(id) }

// Warehouse query protocol: how remote planners pull aggregated series.
type (
	// QueryServer exposes a warehouse over the TCP query protocol.
	QueryServer = monitor.QueryServer
	// QueryClient is the planner-side client of the query protocol.
	QueryClient = monitor.QueryClient
)

// NewQueryServer wraps a warehouse in a query server.
func NewQueryServer(w *Warehouse) *QueryServer { return monitor.NewQueryServer(w) }

// DialQuery connects to a warehouse query server.
func DialQuery(ctx context.Context, addr string) (*QueryClient, error) {
	return monitor.DialQuery(ctx, addr)
}

// Read-path scale-out: generation-versioned snapshot replicas with
// Gorilla-compressed columns serve queries lock-free, and the pipelined
// query protocol multiplexes many requests per connection.
type (
	// ReplicaConfig tunes the warehouse's snapshot replica layer: publish
	// cadence (samples and age) and compressed block size.
	ReplicaConfig = monitor.ReplicaConfig
	// ReplicaMetrics counts the replica layer's publishes, reads, block
	// skips, staleness lag, and compression footprint.
	ReplicaMetrics = monitor.ReplicaMetrics
	// RangePoint is one raw sample in a range query result.
	RangePoint = monitor.RangePoint
	// AdviseRequest parameterizes a server-side consolidation
	// recommendation (the op:"advise" query).
	AdviseRequest = monitor.AdviseRequest
	// Advice is the advise query's result: recommended mode, measured
	// attributes, and the recommended planner's placement headline.
	Advice = monitor.Advice
)

// Default replica publish cadence: a shard republishes after this many new
// samples or this much staleness, whichever comes first.
const (
	DefaultReplicaEverySamples = monitor.DefaultReplicaEverySamples
	DefaultReplicaMaxAge       = monitor.DefaultReplicaMaxAge
)

// FetchSetParallel pulls a complete trace set over several pipelined query
// connections with bounded fan-out, returning exactly the single-connection
// result.
func FetchSetParallel(ctx context.Context, addr, name string, specs map[ServerID]Spec, epoch time.Time, conns int) (*TraceSet, error) {
	return monitor.FetchSetParallel(ctx, addr, name, specs, epoch, conns)
}

// WriteReport renders the complete reproduction — every table and figure of
// the paper — using the baseline configuration with the given seed. It runs
// the experiment grid strictly sequentially; use WriteReportWith to fan it
// out across workers with byte-identical output.
func WriteReport(w io.Writer, seed int64) error {
	return WriteReportWith(context.Background(), w, seed, ReportOptions{Workers: 1})
}

// ReportProgress is one finished experiment-grid cell, delivered to a
// progress observer.
type ReportProgress = sweep.Event

// ReportOptions tune how the report's experiment grid executes.
type ReportOptions struct {
	// Workers bounds concurrently executing grid cells; one is strictly
	// sequential, zero or negative means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, observes every finished cell (serialized).
	Progress func(ReportProgress)
}

// WriteReportWith renders the complete reproduction with the experiment
// grid fanned out across opts.Workers workers. Each cell derives its
// randomness from the seed by identity rather than from a shared stream, so
// the report is byte-identical to the sequential one at the same seed —
// only faster. Canceling ctx aborts the run promptly.
func WriteReportWith(ctx context.Context, w io.Writer, seed int64, opts ReportOptions) error {
	cfg := experiments.DefaultConfig()
	if seed != 0 {
		cfg.Seed = seed
	}
	return experiments.WriteAllWith(ctx, w, cfg, experiments.Options{
		Workers:  opts.Workers,
		Progress: opts.Progress,
	})
}
