package catalog

import (
	"math"
	"testing"

	"vmwild/internal/trace"
)

func TestHS23ReferenceRatio(t *testing.T) {
	got := HS23Elite.Spec.RatioPerGB()
	if math.Abs(got-ReferenceRatioPerGB) > 1e-9 {
		t.Errorf("HS23 ratio = %v, want %v", got, ReferenceRatioPerGB)
	}
}

func TestDefaultCatalog(t *testing.T) {
	c := Default()
	names := c.Names()
	if len(names) != 6 {
		t.Fatalf("default catalog has %d models, want 6", len(names))
	}
	m, err := c.Lookup("hs23-elite")
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec.MemMB != 128*1024 {
		t.Errorf("hs23 memory = %v MB, want 131072", m.Spec.MemMB)
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name   string
		models []Model
	}{
		{name: "empty name", models: []Model{{Spec: trace.Spec{CPURPE2: 1, MemMB: 1}}}},
		{name: "zero capacity", models: []Model{{Name: "x"}}},
		{name: "duplicate", models: []Model{LegacySmall, LegacySmall}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.models...); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestStandardBladeRatio(t *testing.T) {
	if got := HS23Standard.Spec.RatioPerGB(); got != 2*ReferenceRatioPerGB {
		t.Errorf("standard blade ratio = %v, want 320 (no memory extension)", got)
	}
}

func TestLegacyModelsAreSmallerThanReference(t *testing.T) {
	for _, m := range []Model{LegacySmall, LegacyMedium, LegacyLarge, LegacyXLarge} {
		if m.Spec.CPURPE2 >= HS23Elite.Spec.CPURPE2 {
			t.Errorf("%s CPU rating %v should be below HS23 %v", m.Name, m.Spec.CPURPE2, HS23Elite.Spec.CPURPE2)
		}
		if m.Spec.MemMB >= HS23Elite.Spec.MemMB {
			t.Errorf("%s memory %v should be below HS23 %v", m.Name, m.Spec.MemMB, HS23Elite.Spec.MemMB)
		}
		if m.IdleWatts <= 0 || m.PeakWatts <= m.IdleWatts {
			t.Errorf("%s power model invalid: idle %v peak %v", m.Name, m.IdleWatts, m.PeakWatts)
		}
		if m.BladesPerRack <= 0 {
			t.Errorf("%s has no rack density", m.Name)
		}
	}
}
