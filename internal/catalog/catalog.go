// Package catalog describes the server hardware the experiments run on: CPU
// performance ratings in RPE2 units (the IDEAS Relative Performance Estimate
// v2 used by the paper) and memory sizes.
//
// The reference target host is an HS23-Elite-class blade: a two-socket,
// 128 GB virtualization blade with a CPU-to-memory capacity ratio of
// 160 RPE2 per GB — the comparison line in the paper's Figure 6. Source
// servers (the legacy machines whose workloads are being consolidated) use
// older, smaller models.
package catalog

import (
	"fmt"
	"sort"

	"vmwild/internal/trace"
)

// Model is one hardware model in the catalog.
type Model struct {
	// Name identifies the model.
	Name string
	// Spec is the capacity: CPU rating in RPE2 units, memory in MB.
	Spec trace.Spec
	// IdleWatts and PeakWatts parameterize the linear power model for
	// this machine.
	IdleWatts float64
	PeakWatts float64
	// BladesPerRack is how many of these fit in one rack for the
	// facilities cost model.
	BladesPerRack int
}

// Reference blade: the consolidation target in all experiments.
//
// 128 GB of memory at 160 RPE2/GB gives a 20480 RPE2 rating, matching the
// paper's description of a memory-extended virtualization blade.
var HS23Elite = Model{
	Name:          "hs23-elite",
	Spec:          trace.Spec{CPURPE2: 160 * 128, MemMB: 128 * 1024},
	IdleWatts:     180,
	PeakWatts:     420,
	BladesPerRack: 14,
}

// ReferenceRatioPerGB is the HS23-class CPU-to-memory capacity ratio the
// paper compares aggregate demand ratios against (Figure 6).
const ReferenceRatioPerGB = 160.0

// HS23Standard is the same blade without the memory extension (64 GB,
// ratio 320 RPE2/GB) — the contrast behind Observation 3's "even after
// using extended memory blade servers": on a standard-memory blade the
// estates are memory-bound even more of the time.
var HS23Standard = Model{
	Name:          "hs23-standard",
	Spec:          trace.Spec{CPURPE2: 160 * 128, MemMB: 64 * 1024},
	IdleWatts:     170,
	PeakWatts:     400,
	BladesPerRack: 14,
}

// Legacy source-server models. Enterprise data centers of the study period
// were dominated by small two- and four-core rack servers with 4-32 GB of
// RAM; their ratings are scaled so that a typical legacy box is roughly a
// tenth of the reference blade.
var (
	LegacySmall = Model{
		Name:          "x3250-m3",
		Spec:          trace.Spec{CPURPE2: 900, MemMB: 4 * 1024},
		IdleWatts:     110,
		PeakWatts:     230,
		BladesPerRack: 42,
	}
	LegacyMedium = Model{
		Name:          "x3550-m3",
		Spec:          trace.Spec{CPURPE2: 2000, MemMB: 16 * 1024},
		IdleWatts:     140,
		PeakWatts:     310,
		BladesPerRack: 42,
	}
	LegacyLarge = Model{
		Name:          "x3650-m4",
		Spec:          trace.Spec{CPURPE2: 4200, MemMB: 32 * 1024},
		IdleWatts:     170,
		PeakWatts:     400,
		BladesPerRack: 21,
	}
	// LegacyXLarge is a four-socket scale-up box hosting CPU-hungry
	// line-of-business applications (the Banking signature).
	LegacyXLarge = Model{
		Name:          "x3850-x5",
		Spec:          trace.Spec{CPURPE2: 8400, MemMB: 64 * 1024},
		IdleWatts:     320,
		PeakWatts:     680,
		BladesPerRack: 10,
	}
)

// Catalog is a lookup of hardware models by name.
type Catalog struct {
	models map[string]Model
}

// New builds a catalog from the given models.
func New(models ...Model) (*Catalog, error) {
	c := &Catalog{models: make(map[string]Model, len(models))}
	for _, m := range models {
		if m.Name == "" {
			return nil, fmt.Errorf("catalog: model with empty name")
		}
		if m.Spec.CPURPE2 <= 0 || m.Spec.MemMB <= 0 {
			return nil, fmt.Errorf("catalog: model %q has non-positive capacity", m.Name)
		}
		if _, dup := c.models[m.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate model %q", m.Name)
		}
		c.models[m.Name] = m
	}
	return c, nil
}

// Default returns the catalog used by all experiments: the HS23-class target
// blade plus the four legacy source-server models.
func Default() *Catalog {
	c, err := New(HS23Elite, HS23Standard, LegacySmall, LegacyMedium, LegacyLarge, LegacyXLarge)
	if err != nil {
		// The built-in models are static and valid; reaching here is a
		// programming error in this package.
		panic(err)
	}
	return c
}

// Lookup returns the model with the given name.
func (c *Catalog) Lookup(name string) (Model, error) {
	m, ok := c.models[name]
	if !ok {
		return Model{}, fmt.Errorf("catalog: unknown model %q", name)
	}
	return m, nil
}

// Names returns all model names in sorted order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.models))
	for name := range c.models {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
