package fault

import (
	"math"
	"strconv"
	"testing"

	"vmwild/internal/trace"
)

func vmID(i int) trace.ServerID { return trace.ServerID("vm" + strconv.Itoa(i)) }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{MigrationFailure: -0.1},
		{MigrationFailure: 1.1},
		{MigrationStall: 2},
		{HostOutage: -1},
		{AgentDropout: 1.5},
		{MigrationFailure: 0.6, MigrationStall: 0.6},
		{StallFactor: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted", i, cfg)
		}
	}
	inj, err := New(Config{Seed: 1, MigrationFailure: 0.3, MigrationStall: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if got := inj.Config().StallFactor; got != 4 {
		t.Errorf("default StallFactor = %v, want 4", got)
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var inj *Injector
	for attempt := 1; attempt <= 100; attempt++ {
		if o := inj.MigrationOutcome("vm", attempt); o != OK {
			t.Fatalf("nil injector outcome = %v", o)
		}
	}
	if inj.HostDown("h", 0) || inj.AgentDrops("s", 0) {
		t.Error("nil injector reported a fault")
	}
	if inj.StallFactor() != 1 {
		t.Errorf("nil injector StallFactor = %v, want 1", inj.StallFactor())
	}
}

func TestDeterministicByIdentity(t *testing.T) {
	mk := func() *Injector {
		inj, err := New(Config{Seed: 42, MigrationFailure: 0.3, MigrationStall: 0.2, HostOutage: 0.1, AgentDropout: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := mk(), mk()
	// Same identity, any call order: same answer. Query b in reverse.
	const n = 200
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		outcomes[i] = a.MigrationOutcome(vmID(i%7), i/7+1)
	}
	for i := n - 1; i >= 0; i-- {
		if got := b.MigrationOutcome(vmID(i%7), i/7+1); got != outcomes[i] {
			t.Fatalf("draw %d: %v then %v", i, outcomes[i], got)
		}
	}
	for i := 0; i < 50; i++ {
		h := "h" + strconv.Itoa(i%5)
		if a.HostDown(h, i) != b.HostDown(h, i) {
			t.Fatalf("HostDown(%s, %d) not reproducible", h, i)
		}
		if a.AgentDrops("s", i) != b.AgentDrops("s", i) {
			t.Fatalf("AgentDrops(s, %d) not reproducible", i)
		}
	}
}

func TestRatesRoughlyHold(t *testing.T) {
	inj, err := New(Config{Seed: 9, MigrationFailure: 0.25, MigrationStall: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	var failed, stalled int
	for i := 0; i < n; i++ {
		switch inj.MigrationOutcome(vmID(i), 1) {
		case Failed:
			failed++
		case Stalled:
			stalled++
		}
	}
	for _, c := range []struct {
		name string
		got  float64
	}{
		{"failed", float64(failed) / n},
		{"stalled", float64(stalled) / n},
	} {
		if math.Abs(c.got-0.25) > 0.02 {
			t.Errorf("%s rate = %v, want ~0.25", c.name, c.got)
		}
	}
	// Different seeds disagree on individual draws.
	other, err := New(Config{Seed: 10, MigrationFailure: 0.25, MigrationStall: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := 0; i < 1000; i++ {
		if inj.MigrationOutcome(vmID(i), 1) == other.MigrationOutcome(vmID(i), 1) {
			same++
		}
	}
	if same == 1000 {
		t.Error("seeds 9 and 10 produced identical scenarios")
	}
}

// TestProbabilityEdges pins the degenerate probabilities the scenario
// harness leans on: p=0 must never fire and p=1 must always fire, for every
// draw, whatever the identity or attempt number.
func TestProbabilityEdges(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		always bool
		probe  func(inj *Injector, i int) bool
	}{
		{"failure-p0", Config{Seed: 3}, false,
			func(inj *Injector, i int) bool { return inj.MigrationOutcome(vmID(i), i%5+1) == Failed }},
		{"failure-p1", Config{Seed: 3, MigrationFailure: 1}, true,
			func(inj *Injector, i int) bool { return inj.MigrationOutcome(vmID(i), i%5+1) == Failed }},
		{"stall-p1", Config{Seed: 3, MigrationStall: 1}, true,
			func(inj *Injector, i int) bool { return inj.MigrationOutcome(vmID(i), i%5+1) == Stalled }},
		{"host-outage-p0", Config{Seed: 3}, false,
			func(inj *Injector, i int) bool { return inj.HostDown("h"+strconv.Itoa(i%7), i) }},
		{"host-outage-p1", Config{Seed: 3, HostOutage: 1}, true,
			func(inj *Injector, i int) bool { return inj.HostDown("h"+strconv.Itoa(i%7), i) }},
		{"rack-outage-p0", Config{Seed: 3}, false,
			func(inj *Injector, i int) bool { return inj.RackDown("r"+strconv.Itoa(i%3), i) }},
		{"rack-outage-p1", Config{Seed: 3, RackOutage: 1}, true,
			func(inj *Injector, i int) bool { return inj.RackDown("r"+strconv.Itoa(i%3), i) }},
		{"dropout-p0", Config{Seed: 3}, false,
			func(inj *Injector, i int) bool { return inj.AgentDrops(vmID(i%7), i) }},
		{"dropout-p1", Config{Seed: 3, AgentDropout: 1}, true,
			func(inj *Injector, i int) bool { return inj.AgentDrops(vmID(i%7), i) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 500; i++ {
				if got := tc.probe(inj, i); got != tc.always {
					t.Fatalf("draw %d fired=%v, want %v", i, got, tc.always)
				}
			}
		})
	}
}

// TestRackOutageIsCorrelated: one rack draw per wave — hosts that share a
// rack share its fate, and a rack's fate varies across waves (it is a
// transient outage, not a dead rack).
func TestRackOutageIsCorrelated(t *testing.T) {
	inj, err := New(Config{Seed: 11, RackOutage: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var downs, ups int
	for wave := 0; wave < 200; wave++ {
		d := inj.RackDown("rack-0", wave)
		if d {
			downs++
		} else {
			ups++
		}
		// Re-asking for the same (rack, wave) never changes the answer —
		// this is what makes every host of the rack agree.
		for i := 0; i < 3; i++ {
			if inj.RackDown("rack-0", wave) != d {
				t.Fatalf("wave %d: rack fate changed between draws", wave)
			}
		}
	}
	if downs == 0 || ups == 0 {
		t.Fatalf("rack outage at p=0.5 never varied: %d down, %d up", downs, ups)
	}
	// The empty rack label (hosts outside any rack) never draws an outage.
	for wave := 0; wave < 100; wave++ {
		if inj.RackDown("", wave) {
			t.Fatal("empty rack label drew an outage")
		}
	}
}

func TestRackOutageValidation(t *testing.T) {
	for _, cfg := range []Config{{RackOutage: -0.1}, {RackOutage: 1.01}} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if (Config{RackOutage: 0.2}).Enabled() != true {
		t.Error("RackOutage alone should enable the fault model")
	}
	var nilInj *Injector
	if nilInj.RackDown("r", 0) {
		t.Error("nil injector reported a rack outage")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{OK: "ok", Stalled: "stalled", Failed: "failed", Outcome(9): "outcome(9)"} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}
