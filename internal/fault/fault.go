// Package fault is the deterministic fault model behind the runtime path's
// robustness testing: seeded, identity-addressed probabilities for the
// failure modes the paper blames for dynamic consolidation's poor adoption
// — the "uncertainty in duration and impact" of live migration (Section
// 1.2) — plus the monitoring-plane failures (agent dropouts, transient host
// unavailability) any deployed controller must survive.
//
// Every fault decision is a pure function of (seed, identity): the model
// never holds a mutable random stream, so concurrent executors, sweeps at
// any worker count, and re-runs of the same scenario all observe the exact
// same failures. This is the stats.Derive/Split seeding discipline applied
// to misfortune.
package fault

import (
	"fmt"
	"strconv"

	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// Outcome classifies one attempted live migration.
type Outcome int

const (
	// OK: the migration commits normally.
	OK Outcome = iota
	// Stalled: the migration commits, but the transfer ran at degraded
	// bandwidth (Config.StallFactor times slower) — the paper's
	// "uncertainty in duration".
	Stalled
	// Failed: the migration aborts; the VM stays on its source host and
	// the attempt's time and network volume are wasted.
	Failed
)

// String renders the outcome for logs and reports.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Stalled:
		return "stalled"
	case Failed:
		return "failed"
	default:
		return "outcome(" + strconv.Itoa(int(o)) + ")"
	}
}

// Config parameterizes the fault model. The zero value injects nothing.
type Config struct {
	// Seed roots every fault decision; the same seed reproduces the same
	// scenario exactly.
	Seed int64
	// MigrationFailure is the per-attempt probability that a live
	// migration fails outright.
	MigrationFailure float64
	// MigrationStall is the per-attempt probability that a migration
	// completes at degraded bandwidth.
	MigrationStall float64
	// StallFactor is the duration multiplier of a stalled migration
	// (default 4 — a gigabit link degraded to fast-ethernet class).
	StallFactor float64
	// HostOutage is the per-(host, wave) probability that a host is
	// transiently unreachable for migration traffic during one wave.
	HostOutage float64
	// RackOutage is the per-(rack, wave) probability that a whole rack is
	// unreachable for migration traffic during one wave — the correlated
	// failure mode a top-of-rack switch or PDU produces. One draw covers
	// every host in the rack, so rack-mates go down together; callers map
	// hosts to racks (see placement.RackOf) and combine RackDown with the
	// per-host HostDown draw.
	RackOutage float64
	// AgentDropout is the per-sample probability that a monitoring agent
	// fails to deliver an observation.
	AgentDropout float64
}

// Enabled reports whether any fault has a nonzero probability.
func (c Config) Enabled() bool {
	return c.MigrationFailure > 0 || c.MigrationStall > 0 || c.HostOutage > 0 ||
		c.RackOutage > 0 || c.AgentDropout > 0
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"MigrationFailure", c.MigrationFailure},
		{"MigrationStall", c.MigrationStall},
		{"HostOutage", c.HostOutage},
		{"RackOutage", c.RackOutage},
		{"AgentDropout", c.AgentDropout},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.MigrationFailure+c.MigrationStall > 1 {
		return fmt.Errorf("fault: MigrationFailure+MigrationStall = %v exceeds 1",
			c.MigrationFailure+c.MigrationStall)
	}
	if c.StallFactor < 0 {
		return fmt.Errorf("fault: StallFactor %v must be non-negative", c.StallFactor)
	}
	return nil
}

// Injector answers fault questions deterministically. A nil *Injector is
// valid and injects nothing, so callers thread it through unconditionally.
type Injector struct {
	cfg Config
}

// New validates the configuration and builds an injector.
func New(cfg Config) (*Injector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.StallFactor == 0 {
		cfg.StallFactor = 4
	}
	return &Injector{cfg: cfg}, nil
}

// Config returns the injector's (defaulted) configuration.
func (inj *Injector) Config() Config {
	if inj == nil {
		return Config{}
	}
	return inj.cfg
}

// uniform maps an identity path to a deterministic draw in [0, 1).
func (inj *Injector) uniform(labels ...string) float64 {
	return float64(stats.Split(inj.cfg.Seed, labels...)) / (1 << 63)
}

// MigrationOutcome decides the fate of one migration attempt. attempt is
// the VM's 1-based attempt counter within the execution, so retries draw
// fresh, independent outcomes.
func (inj *Injector) MigrationOutcome(vm trace.ServerID, attempt int) Outcome {
	if inj == nil {
		return OK
	}
	u := inj.uniform("migration", string(vm), strconv.Itoa(attempt))
	switch {
	case u < inj.cfg.MigrationFailure:
		return Failed
	case u < inj.cfg.MigrationFailure+inj.cfg.MigrationStall:
		return Stalled
	default:
		return OK
	}
}

// StallFactor is the duration multiplier applied to stalled migrations.
func (inj *Injector) StallFactor() float64 {
	if inj == nil || inj.cfg.StallFactor <= 0 {
		return 1
	}
	return inj.cfg.StallFactor
}

// HostDown reports whether a host is unreachable for migration traffic
// during the given wave.
func (inj *Injector) HostDown(host string, wave int) bool {
	if inj == nil || inj.cfg.HostOutage <= 0 {
		return false
	}
	return inj.uniform("host-outage", host, strconv.Itoa(wave)) < inj.cfg.HostOutage
}

// RackDown reports whether an entire rack is unreachable for migration
// traffic during the given wave. The draw is addressed by rack identity, so
// every host of the rack shares one fate per wave — correlated, not
// independent, failure.
func (inj *Injector) RackDown(rack string, wave int) bool {
	if inj == nil || inj.cfg.RackOutage <= 0 || rack == "" {
		return false
	}
	return inj.uniform("rack-outage", rack, strconv.Itoa(wave)) < inj.cfg.RackOutage
}

// AgentDrops reports whether a monitoring agent loses its idx-th sample.
func (inj *Injector) AgentDrops(server trace.ServerID, idx int) bool {
	if inj == nil || inj.cfg.AgentDropout <= 0 {
		return false
	}
	return inj.uniform("agent-dropout", string(server), strconv.Itoa(idx)) < inj.cfg.AgentDropout
}
