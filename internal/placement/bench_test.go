package placement

import (
	"fmt"
	"math/rand"
	"testing"

	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

func benchItems(n int, withTails bool) []Item {
	r := rand.New(rand.NewSource(1))
	items := make([]Item, n)
	for i := range items {
		body := sizing.Demand{CPU: 50 + r.Float64()*300, Mem: 500 + r.Float64()*4000}
		it := Item{ID: trace.ServerID(fmt.Sprintf("vm%04d", i)), Demand: body}
		if withTails {
			it.Tail = sizing.Demand{CPU: body.CPU * (1 + 2*r.Float64()), Mem: body.Mem * 1.2}
		}
		items[i] = it
	}
	return items
}

var benchSpec = trace.Spec{CPURPE2: 20480, MemMB: 131072}

func BenchmarkFFDPack1000(b *testing.B) {
	items := benchItems(1000, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (FFD{HostSpec: benchSpec, Bound: 0.8, RackSize: 14}).Pack(items); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPCPPack1000(b *testing.B) {
	items := benchItems(1000, true)
	corr := func(a, c trace.ServerID) float64 { return 0.3 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (PCP{HostSpec: benchSpec, Bound: 1, RackSize: 14, Corr: corr}).Pack(items); err != nil {
			b.Fatal(err)
		}
	}
}
