package placement

import (
	"fmt"
	"testing"
	"testing/quick"

	"vmwild/internal/constraints"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

var testSpec = trace.Spec{CPURPE2: 1000, MemMB: 1000}

func item(id string, cpu, mem float64) Item {
	return Item{ID: trace.ServerID(id), Demand: sizing.Demand{CPU: cpu, Mem: mem}}
}

func TestNewPlacementValidation(t *testing.T) {
	if _, err := NewPlacement(trace.Spec{}, 1, 1); err == nil {
		t.Error("expected error for empty spec")
	}
	if _, err := NewPlacement(testSpec, 0, 1); err == nil {
		t.Error("expected error for zero bound")
	}
	if _, err := NewPlacement(testSpec, 1.5, 1); err == nil {
		t.Error("expected error for bound > 1")
	}
}

func TestPlacementAssignRemove(t *testing.T) {
	p, err := NewPlacement(testSpec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := p.OpenHost()
	if h.ID != "h0000" || h.Rack != "r0000" {
		t.Errorf("host = %+v", h)
	}
	it := item("a", 100, 200)
	if err := p.Assign(it, h.ID); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(it, h.ID); err == nil {
		t.Error("double assignment should fail")
	}
	if err := p.Assign(item("b", 1, 1), "nope"); err == nil {
		t.Error("unknown host should fail")
	}
	if got := p.Used(h.ID); got.CPU != 100 || got.Mem != 200 {
		t.Errorf("Used = %+v", got)
	}
	if host, ok := p.HostOf("a"); !ok || host != h.ID {
		t.Errorf("HostOf = %v %v", host, ok)
	}
	if p.ActiveHosts() != 1 || p.NumVMs() != 1 {
		t.Error("active host / VM accounting wrong")
	}
	removed, err := p.Remove("a")
	if err != nil {
		t.Fatal(err)
	}
	if removed.ID != "a" {
		t.Errorf("removed %v", removed.ID)
	}
	if got := p.Used(h.ID); got.CPU != 0 || got.Mem != 0 {
		t.Errorf("Used after remove = %+v", got)
	}
	if _, err := p.Remove("a"); err == nil {
		t.Error("removing unassigned VM should fail")
	}
	if p.ActiveHosts() != 0 {
		t.Error("host should be inactive after removal")
	}
}

func TestPlacementRacks(t *testing.T) {
	p, err := NewPlacement(testSpec, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var hosts []*Host
	for i := 0; i < 4; i++ {
		hosts = append(hosts, p.OpenHost())
	}
	if p.RackOf(hosts[0].ID) != p.RackOf(hosts[1].ID) {
		t.Error("first two hosts should share a rack")
	}
	if p.RackOf(hosts[0].ID) == p.RackOf(hosts[2].ID) {
		t.Error("third host should start a new rack")
	}
	if p.RackOf("unknown") != "" {
		t.Error("unknown host should have empty rack")
	}
}

func TestPlacementClone(t *testing.T) {
	p, err := NewPlacement(testSpec, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h := p.OpenHost()
	if err := p.Assign(item("a", 10, 10), h.ID); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if _, err := c.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.HostOf("a"); !ok {
		t.Error("clone mutation leaked into original")
	}
	if _, ok := c.HostOf("a"); ok {
		t.Error("clone did not mutate")
	}
}

func TestFFDPack(t *testing.T) {
	f := FFD{HostSpec: testSpec, Bound: 1, RackSize: 10}
	// Three 600-CPU items cannot pair: 3 hosts. Two 400s fill the gaps.
	items := []Item{
		item("a", 600, 100), item("b", 600, 100), item("c", 600, 100),
		item("d", 400, 100), item("e", 400, 100),
	}
	p, err := f.Pack(items)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 3 {
		t.Errorf("hosts = %d, want 3 (FFD fills gaps)", p.NumHosts())
	}
	if p.NumVMs() != 5 {
		t.Errorf("placed %d VMs, want 5", p.NumVMs())
	}
	// Every host must respect capacity.
	for _, h := range p.Hosts() {
		u := p.Used(h.ID)
		if u.CPU > 1000 || u.Mem > 1000 {
			t.Errorf("host %s over capacity: %+v", h.ID, u)
		}
	}
}

func TestFFDOversizedItem(t *testing.T) {
	f := FFD{HostSpec: testSpec, Bound: 0.8, RackSize: 10}
	if _, err := f.Pack([]Item{item("big", 900, 100)}); err == nil {
		t.Error("item above the bound must be rejected")
	}
}

func TestFFDBound(t *testing.T) {
	f := FFD{HostSpec: testSpec, Bound: 0.5, RackSize: 10}
	// Each host only holds 500 CPU: four 300-CPU items need 4 hosts.
	items := []Item{item("a", 300, 10), item("b", 300, 10), item("c", 300, 10), item("d", 300, 10)}
	p, err := f.Pack(items)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 4 {
		t.Errorf("hosts = %d, want 4 under bound 0.5", p.NumHosts())
	}
}

func TestFFDMemoryDimension(t *testing.T) {
	f := FFD{HostSpec: testSpec, Bound: 1, RackSize: 10}
	// CPU-tiny but memory-heavy items: memory must drive host count.
	items := []Item{item("a", 10, 700), item("b", 10, 700), item("c", 10, 700)}
	p, err := f.Pack(items)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 3 {
		t.Errorf("hosts = %d, want 3 (memory-bound)", p.NumHosts())
	}
}

func TestFFDConstraints(t *testing.T) {
	f := FFD{
		HostSpec: testSpec, Bound: 1, RackSize: 10,
		Constraints: constraints.Set{constraints.AntiAffinity{Group: []trace.ServerID{"a", "b"}}},
	}
	p, err := f.Pack([]Item{item("a", 100, 100), item("b", 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := p.HostOf("a")
	hb, _ := p.HostOf("b")
	if ha == hb {
		t.Error("anti-affine VMs ended up on the same host")
	}
}

func TestFFDInfeasibleConstraints(t *testing.T) {
	f := FFD{
		HostSpec: testSpec, Bound: 1, RackSize: 10,
		Constraints: constraints.Set{
			constraints.PinHost{VM: "a", Host: "h9999"},
		},
	}
	if _, err := f.Pack([]Item{item("a", 1, 1)}); err == nil {
		t.Error("unsatisfiable pin should surface an error")
	}
}

func TestPCPUncorrelatedTailsPool(t *testing.T) {
	// Four VMs: body 100, tail 500 (buffer 400). Uncorrelated pooling:
	// bodies 400 + sqrt(4*400^2)=800 -> 1200 > 1000 means 4 don't fit;
	// three fit: 300 + sqrt(3)*400 = 992.8 <= 1000.
	mk := func(id string) Item {
		return Item{
			ID:     trace.ServerID(id),
			Demand: sizing.Demand{CPU: 100, Mem: 10},
			Tail:   sizing.Demand{CPU: 500, Mem: 10},
		}
	}
	s := PCP{HostSpec: testSpec, Bound: 1, RackSize: 10}
	p, err := s.Pack([]Item{mk("a"), mk("b"), mk("c"), mk("d")})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 2 {
		t.Errorf("hosts = %d, want 2 (3+1 split with pooled tails)", p.NumHosts())
	}
	// Fully correlated: every host degenerates to sum of tails like FFD
	// at max sizing: 100+400 each -> 2 per host.
	s.Corr = func(a, b trace.ServerID) float64 { return 1 }
	p, err = s.Pack([]Item{mk("a"), mk("b"), mk("c"), mk("d")})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 2 {
		t.Errorf("hosts = %d, want 2 under full correlation", p.NumHosts())
	}
	// And in between the correlated packing must never beat uncorrelated.
}

func TestPCPMaxAvgCorrVeto(t *testing.T) {
	mk := func(id string) Item {
		return Item{
			ID:     trace.ServerID(id),
			Demand: sizing.Demand{CPU: 100, Mem: 10},
			Tail:   sizing.Demand{CPU: 150, Mem: 10},
		}
	}
	s := PCP{
		HostSpec: testSpec, Bound: 1, RackSize: 10,
		Corr:       func(a, b trace.ServerID) float64 { return 0.9 },
		MaxAvgCorr: 0.5,
	}
	p, err := s.Pack([]Item{mk("a"), mk("b")})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 2 {
		t.Errorf("hosts = %d, want 2 (correlation veto separates them)", p.NumHosts())
	}
}

func TestPCPOversized(t *testing.T) {
	s := PCP{HostSpec: testSpec, Bound: 0.5, RackSize: 10}
	over := Item{ID: "big", Demand: sizing.Demand{CPU: 100, Mem: 10}, Tail: sizing.Demand{CPU: 600, Mem: 10}}
	if _, err := s.Pack([]Item{over}); err == nil {
		t.Error("envelope above bound must be rejected")
	}
}

// Property: FFD never exceeds host capacity and never uses more hosts than
// items.
func TestQuickFFDInvariants(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 || len(seeds) > 60 {
			return true
		}
		items := make([]Item, len(seeds))
		for i, s := range seeds {
			items[i] = item(
				fmt.Sprintf("vm%d", i),
				float64(s%900)+1,
				float64((s/7)%900)+1,
			)
		}
		p, err := FFD{HostSpec: testSpec, Bound: 1, RackSize: 8}.Pack(items)
		if err != nil {
			return false
		}
		if p.NumHosts() > len(items) || p.NumVMs() != len(items) {
			return false
		}
		for _, h := range p.Hosts() {
			u := p.Used(h.ID)
			if u.CPU > 1000+1e-6 || u.Mem > 1000+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PCP with zero tails equals plain FFD feasibility (bodies only),
// and host count is within items count.
func TestQuickPCPInvariants(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 || len(seeds) > 40 {
			return true
		}
		items := make([]Item, len(seeds))
		for i, s := range seeds {
			body := float64(s%500) + 1
			items[i] = Item{
				ID:     trace.ServerID(fmt.Sprintf("vm%d", i)),
				Demand: sizing.Demand{CPU: body, Mem: 50},
				Tail:   sizing.Demand{CPU: body + float64(s%300), Mem: 50},
			}
		}
		p, err := PCP{HostSpec: testSpec, Bound: 1, RackSize: 8}.Pack(items)
		if err != nil {
			return false
		}
		if p.NumVMs() != len(items) || p.NumHosts() > len(items) {
			return false
		}
		// Bodies alone must always fit the bound.
		for _, h := range p.Hosts() {
			if u := p.Used(h.ID); u.CPU > 1000+1e-6 || u.Mem > 1000+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
