package placement

import (
	"fmt"

	"vmwild/internal/constraints"
	"vmwild/internal/trace"
)

// FFD is the two-dimensional First-Fit-Decreasing packer used by static and
// vanilla semi-static consolidation: VMs are sorted by dominant normalized
// demand and dropped into the first host with room, opening new hosts as
// needed.
type FFD struct {
	// HostSpec is the raw capacity of the (identical) target hosts.
	HostSpec trace.Spec
	// Bound is the usable fraction of each host in (0, 1]; dynamic
	// consolidation sets it to 1 minus the live-migration reservation.
	Bound float64
	// RackSize is the number of hosts per rack.
	RackSize int
	// Constraints veto candidate assignments.
	Constraints constraints.Set
	// Reference selects the retained naive kernel (per-host map lookups,
	// linear scans) instead of the flattened one. Both produce identical
	// placements — the property tests prove it — so the flag exists as an
	// escape hatch and as the test oracle.
	Reference bool
}

// Pack places all items and returns the resulting placement.
func (f FFD) Pack(items []Item) (*Placement, error) {
	p, err := NewPlacement(f.HostSpec, f.Bound, f.RackSize)
	if err != nil {
		return nil, err
	}
	sorted := sortDecreasing(items, f.HostSpec)
	if f.Reference {
		for _, it := range sorted {
			if err := f.placeReference(p, it); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	return p, f.packFlat(p, sorted)
}

// packFlat is the flattened kernel: with no constraints the first fitting
// host comes from the segment-tree finder (identical choice to the linear
// scan, leftmost-first); with constraints the scan walks the struct-of-
// arrays state directly so each probe is two float compares, not a map
// lookup through hostIdx.
func (f FFD) packFlat(p *Placement, sorted []Item) error {
	finder := newHostFinder(p)
	plain := len(f.Constraints) == 0
	for _, it := range sorted {
		if it.Demand.CPU > p.capCPU+1e-9 || it.Demand.Mem > p.capMem+1e-9 {
			return fmt.Errorf("placement: %s demand (%.0f RPE2, %.0f MB) exceeds host capacity (%.0f RPE2, %.0f MB)",
				it.ID, it.Demand.CPU, it.Demand.Mem, p.capCPU, p.capMem)
		}
		vi := p.internVM(it.ID)
		p.growVMState(vi)
		if p.vmHost[vi] >= 0 {
			return fmt.Errorf("placement: %s already assigned", it.ID)
		}
		hi := -1
		if plain {
			hi = finder.firstFit(0, it.Demand.CPU, it.Demand.Mem)
		} else {
			for i := range p.hosts {
				if p.usedCPU[i]+it.Demand.CPU <= p.capCPU+1e-9 && p.usedMem[i]+it.Demand.Mem <= p.capMem+1e-9 &&
					f.Constraints.Permits(it.ID, p.hosts[i].ID, p) == nil {
					hi = i
					break
				}
			}
		}
		if hi < 0 {
			opened := false
			for attempts := 0; attempts < 1+len(f.Constraints); attempts++ {
				h := p.OpenHost()
				finder.hostAdded()
				if f.Constraints.Permits(it.ID, h.ID, p) != nil {
					continue
				}
				hi = len(p.hosts) - 1
				opened = true
				break
			}
			if !opened {
				return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
			}
		}
		p.assignAt(vi, hi, it)
		finder.update(hi)
	}
	return nil
}
