package placement

import (
	"fmt"

	"vmwild/internal/constraints"
	"vmwild/internal/trace"
)

// FFD is the two-dimensional First-Fit-Decreasing packer used by static and
// vanilla semi-static consolidation: VMs are sorted by dominant normalized
// demand and dropped into the first host with room, opening new hosts as
// needed.
type FFD struct {
	// HostSpec is the raw capacity of the (identical) target hosts.
	HostSpec trace.Spec
	// Bound is the usable fraction of each host in (0, 1]; dynamic
	// consolidation sets it to 1 minus the live-migration reservation.
	Bound float64
	// RackSize is the number of hosts per rack.
	RackSize int
	// Constraints veto candidate assignments.
	Constraints constraints.Set
}

// Pack places all items and returns the resulting placement.
func (f FFD) Pack(items []Item) (*Placement, error) {
	p, err := NewPlacement(f.HostSpec, f.Bound, f.RackSize)
	if err != nil {
		return nil, err
	}
	for _, it := range sortDecreasing(items, f.HostSpec) {
		if err := f.place(p, it); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// place puts one item on the first permissible host with room.
func (f FFD) place(p *Placement, it Item) error {
	cap := p.Capacity()
	if it.Demand.CPU > cap.CPU+1e-9 || it.Demand.Mem > cap.Mem+1e-9 {
		return fmt.Errorf("placement: %s demand (%.0f RPE2, %.0f MB) exceeds host capacity (%.0f RPE2, %.0f MB)",
			it.ID, it.Demand.CPU, it.Demand.Mem, cap.CPU, cap.Mem)
	}
	for _, h := range p.Hosts() {
		if !p.Fits(h.ID, it.Demand) {
			continue
		}
		if f.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		return p.Assign(it, h.ID)
	}
	// No existing host works; open fresh hosts until constraints allow
	// the assignment (pinning constraints may reject arbitrary hosts, so
	// bound the retries).
	for attempts := 0; attempts < 1+len(f.Constraints); attempts++ {
		h := p.OpenHost()
		if err := f.Constraints.Permits(it.ID, h.ID, p); err != nil {
			continue
		}
		return p.Assign(it, h.ID)
	}
	return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
}
