package placement

import (
	"fmt"
	"math"

	"vmwild/internal/constraints"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// BFD is two-dimensional Best-Fit-Decreasing: like FFD it places items in
// decreasing size order, but instead of the first host with room it picks
// the host that will be left with the least normalized slack — a classical
// bin-packing baseline [26] that typically packs slightly tighter than FFD
// at a higher search cost. Provided as an ablation baseline for the
// placement step.
type BFD struct {
	// HostSpec is the raw capacity of the target hosts.
	HostSpec trace.Spec
	// Bound is the usable fraction of each host in (0, 1].
	Bound float64
	// RackSize is the number of hosts per rack.
	RackSize int
	// Constraints veto candidate assignments.
	Constraints constraints.Set
}

// Pack places all items and returns the resulting placement.
func (f BFD) Pack(items []Item) (*Placement, error) {
	p, err := NewPlacement(f.HostSpec, f.Bound, f.RackSize)
	if err != nil {
		return nil, err
	}
	for _, it := range sortDecreasing(items, f.HostSpec) {
		if err := f.place(p, it); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (f BFD) place(p *Placement, it Item) error {
	cap := p.Capacity()
	if it.Demand.CPU > cap.CPU+1e-9 || it.Demand.Mem > cap.Mem+1e-9 {
		return fmt.Errorf("placement: %s demand (%.0f RPE2, %.0f MB) exceeds host capacity (%.0f RPE2, %.0f MB)",
			it.ID, it.Demand.CPU, it.Demand.Mem, cap.CPU, cap.Mem)
	}
	best := ""
	bestSlack := math.Inf(1)
	for _, h := range p.Hosts() {
		if !p.Fits(h.ID, it.Demand) {
			continue
		}
		if f.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		if s := f.slackAfter(p, h.ID, it.Demand); s < bestSlack {
			bestSlack, best = s, h.ID
		}
	}
	if best != "" {
		return p.Assign(it, best)
	}
	for attempts := 0; attempts < 1+len(f.Constraints); attempts++ {
		h := p.OpenHost()
		if err := f.Constraints.Permits(it.ID, h.ID, p); err != nil {
			continue
		}
		return p.Assign(it, h.ID)
	}
	return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
}

// slackAfter scores the residual capacity of host after adding d: the
// larger normalized remainder of the two resources. Smaller is a better
// (tighter) fit.
func (f BFD) slackAfter(p *Placement, host string, d sizing.Demand) float64 {
	u := p.Used(host)
	cap := p.Capacity()
	cpuLeft := (cap.CPU - u.CPU - d.CPU) / cap.CPU
	memLeft := (cap.Mem - u.Mem - d.Mem) / cap.Mem
	return math.Max(cpuLeft, memLeft)
}
