package placement

import (
	"fmt"
	"math"

	"vmwild/internal/constraints"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// BFD is two-dimensional Best-Fit-Decreasing: like FFD it places items in
// decreasing size order, but instead of the first host with room it picks
// the host that will be left with the least normalized slack — a classical
// bin-packing baseline [26] that typically packs slightly tighter than FFD
// at a higher search cost. Provided as an ablation baseline for the
// placement step.
type BFD struct {
	// HostSpec is the raw capacity of the target hosts.
	HostSpec trace.Spec
	// Bound is the usable fraction of each host in (0, 1].
	Bound float64
	// RackSize is the number of hosts per rack.
	RackSize int
	// Constraints veto candidate assignments.
	Constraints constraints.Set
	// Reference selects the retained naive kernel; see FFD.Reference.
	Reference bool
}

// Pack places all items and returns the resulting placement.
func (f BFD) Pack(items []Item) (*Placement, error) {
	p, err := NewPlacement(f.HostSpec, f.Bound, f.RackSize)
	if err != nil {
		return nil, err
	}
	sorted := sortDecreasing(items, f.HostSpec)
	if f.Reference {
		for _, it := range sorted {
			if err := f.placeReference(p, it); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
	return p, f.packFlat(p, sorted)
}

// packFlat is the flattened kernel: best-fit must score every host anyway,
// so the win is walking the used arrays directly with the slack arithmetic
// inlined, skipping the per-host ID-to-index lookups of the naive path.
func (f BFD) packFlat(p *Placement, sorted []Item) error {
	plain := len(f.Constraints) == 0
	for _, it := range sorted {
		if it.Demand.CPU > p.capCPU+1e-9 || it.Demand.Mem > p.capMem+1e-9 {
			return fmt.Errorf("placement: %s demand (%.0f RPE2, %.0f MB) exceeds host capacity (%.0f RPE2, %.0f MB)",
				it.ID, it.Demand.CPU, it.Demand.Mem, p.capCPU, p.capMem)
		}
		vi := p.internVM(it.ID)
		p.growVMState(vi)
		if p.vmHost[vi] >= 0 {
			return fmt.Errorf("placement: %s already assigned", it.ID)
		}
		best := -1
		bestSlack := math.Inf(1)
		for i := range p.hosts {
			uc, um := p.usedCPU[i], p.usedMem[i]
			if uc+it.Demand.CPU > p.capCPU+1e-9 || um+it.Demand.Mem > p.capMem+1e-9 {
				continue
			}
			if !plain && f.Constraints.Permits(it.ID, p.hosts[i].ID, p) != nil {
				continue
			}
			cpuLeft := (p.capCPU - uc - it.Demand.CPU) / p.capCPU
			memLeft := (p.capMem - um - it.Demand.Mem) / p.capMem
			if s := math.Max(cpuLeft, memLeft); s < bestSlack {
				bestSlack, best = s, i
			}
		}
		if best < 0 {
			opened := false
			for attempts := 0; attempts < 1+len(f.Constraints); attempts++ {
				h := p.OpenHost()
				if f.Constraints.Permits(it.ID, h.ID, p) != nil {
					continue
				}
				best = len(p.hosts) - 1
				opened = true
				break
			}
			if !opened {
				return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
			}
		}
		p.assignAt(vi, best, it)
	}
	return nil
}

// slackAfter scores the residual capacity of host after adding d: the
// larger normalized remainder of the two resources. Smaller is a better
// (tighter) fit.
func (f BFD) slackAfter(p *Placement, host string, d sizing.Demand) float64 {
	u := p.Used(host)
	cap := p.Capacity()
	cpuLeft := (cap.CPU - u.CPU - d.CPU) / cap.CPU
	memLeft := (cap.Mem - u.Mem - d.Mem) / cap.Mem
	return math.Max(cpuLeft, memLeft)
}
