package placement

import (
	"fmt"
	"math"
)

// This file retains the naive packing kernels exactly as they were before
// the flattened (struct-of-arrays) kernels replaced them on the hot path:
// per-host lookups through the public ID-keyed API, linear first-fit scans,
// map-keyed tail pools. They are reachable via the packers' Reference flag
// — the escape hatch behind Input.DisableIncremental — and serve as the
// oracle for the kernel property tests: for every input, the flattened
// kernels must produce placements with identical Encode bytes.

// placeReference puts one item on the first permissible host with room.
func (f FFD) placeReference(p *Placement, it Item) error {
	cap := p.Capacity()
	if it.Demand.CPU > cap.CPU+1e-9 || it.Demand.Mem > cap.Mem+1e-9 {
		return fmt.Errorf("placement: %s demand (%.0f RPE2, %.0f MB) exceeds host capacity (%.0f RPE2, %.0f MB)",
			it.ID, it.Demand.CPU, it.Demand.Mem, cap.CPU, cap.Mem)
	}
	for _, h := range p.Hosts() {
		if !p.Fits(h.ID, it.Demand) {
			continue
		}
		if f.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		return p.Assign(it, h.ID)
	}
	// No existing host works; open fresh hosts until constraints allow
	// the assignment (pinning constraints may reject arbitrary hosts, so
	// bound the retries).
	for attempts := 0; attempts < 1+len(f.Constraints); attempts++ {
		h := p.OpenHost()
		if err := f.Constraints.Permits(it.ID, h.ID, p); err != nil {
			continue
		}
		return p.Assign(it, h.ID)
	}
	return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
}

// placeReference puts one item on the feasible host left with the least
// normalized slack.
func (f BFD) placeReference(p *Placement, it Item) error {
	cap := p.Capacity()
	if it.Demand.CPU > cap.CPU+1e-9 || it.Demand.Mem > cap.Mem+1e-9 {
		return fmt.Errorf("placement: %s demand (%.0f RPE2, %.0f MB) exceeds host capacity (%.0f RPE2, %.0f MB)",
			it.ID, it.Demand.CPU, it.Demand.Mem, cap.CPU, cap.Mem)
	}
	best := ""
	bestSlack := math.Inf(1)
	for _, h := range p.Hosts() {
		if !p.Fits(h.ID, it.Demand) {
			continue
		}
		if f.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		if s := f.slackAfter(p, h.ID, it.Demand); s < bestSlack {
			bestSlack, best = s, h.ID
		}
	}
	if best != "" {
		return p.Assign(it, best)
	}
	for attempts := 0; attempts < 1+len(f.Constraints); attempts++ {
		h := p.OpenHost()
		if err := f.Constraints.Permits(it.ID, h.ID, p); err != nil {
			continue
		}
		return p.Assign(it, h.ID)
	}
	return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
}

// packReference runs the naive PCP loop over pre-sorted items.
func (s PCP) packReference(p *Placement, sorted []Item) error {
	pools := make(map[string]*hostPool)
	for _, it := range sorted {
		if err := s.placeReference(p, pools, it); err != nil {
			return err
		}
	}
	return nil
}

func (s PCP) placeReference(p *Placement, pools map[string]*hostPool, it Item) error {
	cap := p.Capacity()
	if it.Tail.CPU > cap.CPU+1e-9 || it.Tail.Mem > cap.Mem+1e-9 || it.Demand.CPU > cap.CPU+1e-9 || it.Demand.Mem > cap.Mem+1e-9 {
		return fmt.Errorf("placement: %s envelope exceeds host capacity", it.ID)
	}
	for _, h := range p.Hosts() {
		pool := pools[h.ID]
		ok, corrMax := s.admitsReference(p, pool, h.ID, it)
		if !ok {
			continue
		}
		if s.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		s.commitReference(p, pools, h.ID, it, corrMax)
		return p.Assign(it, h.ID)
	}
	for attempts := 0; attempts < 1+len(s.Constraints); attempts++ {
		h := p.OpenHost()
		pools[h.ID] = &hostPool{}
		if err := s.Constraints.Permits(it.ID, h.ID, p); err != nil {
			continue
		}
		s.commitReference(p, pools, h.ID, it, 0)
		return p.Assign(it, h.ID)
	}
	return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
}

// admitsReference evaluates the PCP envelope test for adding it to host. It
// returns the candidate's strongest positive correlation against residents
// so commitReference can reuse it.
func (s PCP) admitsReference(p *Placement, pool *hostPool, host string, it Item) (bool, float64) {
	if pool == nil {
		return false, 0
	}
	residents := p.VMsOn(host)
	var corrSum, corrMax float64
	if s.CorrIdx != nil {
		ci := s.CorrIdx.Index(it.ID)
		for _, r := range residents {
			var c float64
			if ri := s.CorrIdx.Index(r); ci >= 0 && ri >= 0 {
				c = math.Max(0, s.CorrIdx.At(ci, ri))
			}
			corrSum += c
			corrMax = math.Max(corrMax, c)
		}
	} else if s.Corr != nil {
		for _, r := range residents {
			c := math.Max(0, s.Corr(it.ID, r))
			corrSum += c
			corrMax = math.Max(corrMax, c)
		}
	}
	if s.MaxAvgCorr > 0 && len(residents) > 0 {
		if corrSum/float64(len(residents)) > s.MaxAvgCorr {
			return false, corrMax
		}
	}
	rho := math.Max(pool.maxCorr, corrMax)

	tail := it.tailBuffer()
	used := p.Used(host)
	cap := p.Capacity()

	cpuTerm := rho*(pool.tailSumCPU+tail.CPU) + (1-rho)*math.Sqrt(pool.tailSqCPU+tail.CPU*tail.CPU)
	if used.CPU+it.Demand.CPU+cpuTerm > cap.CPU+1e-9 {
		return false, corrSum
	}
	memTerm := rho*(pool.tailSumMem+tail.Mem) + (1-rho)*math.Sqrt(pool.tailSqMem+tail.Mem*tail.Mem)
	if used.Mem+it.Demand.Mem+memTerm > cap.Mem+1e-9 {
		return false, corrMax
	}
	return true, corrMax
}

func (s PCP) commitReference(p *Placement, pools map[string]*hostPool, host string, it Item, corrMax float64) {
	pool := pools[host]
	tail := it.tailBuffer()
	pool.maxCorr = math.Max(pool.maxCorr, corrMax)
	pool.tailSumCPU += tail.CPU
	pool.tailSqCPU += tail.CPU * tail.CPU
	pool.tailSumMem += tail.Mem
	pool.tailSqMem += tail.Mem * tail.Mem
}
