// Package placement implements the Placement step of the consolidation flow
// (Section 2.1): assigning sized virtual machines to physical hosts.
//
// Two packers are provided. FFD is the two-dimensional First-Fit-Decreasing
// bin packing used by static and vanilla semi-static consolidation [26].
// PCP is the correlation-aware stochastic packer modeled on the PCP
// algorithm of [27]: each VM reserves its body (90th percentile) fully,
// while tail buffers are shared across co-located VMs in proportion to how
// correlated their demands are — uncorrelated tails pool (root-sum-square),
// perfectly correlated tails add up.
package placement

import (
	"errors"
	"fmt"
	"maps"
	"math"
	"slices"
	"strconv"

	"vmwild/internal/constraints"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// Item is one VM to place: identity plus sized demand. For PCP packing,
// Tail carries the envelope maximum; for plain FFD it is zero and ignored.
type Item struct {
	ID     trace.ServerID
	Demand sizing.Demand // fully reserved (body) demand
	Tail   sizing.Demand // envelope maximum; zero value means "no tail"
}

// tailBuffer returns the slack above the body, never negative.
func (it Item) tailBuffer() sizing.Demand {
	return sizing.Demand{
		CPU: math.Max(0, it.Tail.CPU-it.Demand.CPU),
		Mem: math.Max(0, it.Tail.Mem-it.Demand.Mem),
	}
}

// Host is one physical machine in a placement.
type Host struct {
	// ID is unique within the placement ("h0000", "h0001", ...).
	ID string
	// Rack groups hosts for rack-affinity constraints.
	Rack string
}

// vmUniverse interns VM identities into dense indices. A Clone chain shares
// one universe copy-on-write: the VM population of a dynamic run never
// changes across its 168 interval snapshots, so the interning table (and the
// string IDs it holds) is built once per run instead of once per snapshot.
type vmUniverse struct {
	ids []trace.ServerID
	idx map[trace.ServerID]int32
}

// Placement is a mutable assignment of VMs to hosts drawn from an unbounded
// supply of identical machines. It satisfies constraints.View.
type Placement struct {
	// Spec is the raw per-host capacity.
	Spec trace.Spec
	// Bound is the usable fraction of each host (1 - migration
	// reservation).
	Bound float64

	// Per-host state lives in slices parallel to hosts; hostIdx maps a
	// host ID to its position. The planners' hot loops walk hosts by
	// index (VMsAt/UsedAt/FitsAt) and never pay a map lookup per host.
	// Used demand is kept as parallel float slices (struct-of-arrays) so
	// fit checks touch two cache-friendly arrays instead of a struct
	// slice, and Clone is a pair of memmoves.
	hosts    []*Host
	hostIdx  map[string]int
	hostVMs  [][]trace.ServerID
	hostVIs  [][]int32 // dense VM indices, parallel to hostVMs
	usedCPU  []float64
	usedMem  []float64
	rackSize int

	// capCPU/capMem cache Spec scaled by Bound, the values every fit
	// check compares against. Spec and Bound are fixed at construction.
	capCPU, capMem float64

	// Per-VM state is dense: uni interns IDs, vmHost holds each VM's host
	// index (-1 when unassigned) and vmItems its recorded item. uniShared
	// marks the universe as shared with a Clone; the first insertion of a
	// brand-new VM copies it (VM populations are fixed in all hot paths,
	// so this effectively never happens after cloning).
	uni       *vmUniverse
	uniShared bool
	vmHost    []int32
	vmItems   []Item
	numVMs    int
}

var _ constraints.View = (*Placement)(nil)

// NewPlacement creates an empty placement over hosts of the given spec.
// bound is the usable capacity fraction in (0, 1]; rackSize is the number
// of hosts per rack (minimum 1).
func NewPlacement(spec trace.Spec, bound float64, rackSize int) (*Placement, error) {
	if spec.CPURPE2 <= 0 || spec.MemMB <= 0 {
		return nil, errors.New("placement: host spec must have positive capacities")
	}
	if bound <= 0 || bound > 1 {
		return nil, fmt.Errorf("placement: bound %v outside (0, 1]", bound)
	}
	if rackSize < 1 {
		rackSize = 1
	}
	return &Placement{
		Spec:     spec,
		Bound:    bound,
		hostIdx:  make(map[string]int),
		capCPU:   spec.CPURPE2 * bound,
		capMem:   spec.MemMB * bound,
		uni:      &vmUniverse{idx: make(map[trace.ServerID]int32)},
		rackSize: rackSize,
	}, nil
}

// Hosts returns the opened hosts in creation order. The slice is shared;
// callers must not modify it.
func (p *Placement) Hosts() []*Host { return p.hosts }

// NumHosts returns how many hosts are open.
func (p *Placement) NumHosts() int { return len(p.hosts) }

// NumVMs returns how many VMs are assigned.
func (p *Placement) NumVMs() int { return p.numVMs }

// VMsOn implements constraints.View. The returned slice is shared.
func (p *Placement) VMsOn(host string) []trace.ServerID {
	if i, ok := p.hostIdx[host]; ok {
		return p.hostVMs[i]
	}
	return nil
}

// HostIndex returns the position of the host in Hosts(), or -1 when the
// host is not part of the placement.
func (p *Placement) HostIndex(host string) int {
	if i, ok := p.hostIdx[host]; ok {
		return i
	}
	return -1
}

// VMsAt returns the VMs on Hosts()[i]. The returned slice is shared.
func (p *Placement) VMsAt(i int) []trace.ServerID { return p.hostVMs[i] }

// VMIndicesAt returns the dense VM indices of the VMs on Hosts()[i], in the
// same order VMsAt lists them. The returned slice is shared; pair with
// ItemAt to walk a host's residents without per-VM map lookups.
func (p *Placement) VMIndicesAt(i int) []int32 { return p.hostVIs[i] }

// UsedAt returns the summed body demand on Hosts()[i].
func (p *Placement) UsedAt(i int) sizing.Demand {
	return sizing.Demand{CPU: p.usedCPU[i], Mem: p.usedMem[i]}
}

// vmSlot returns the dense index of an assigned VM, or -1.
func (p *Placement) vmSlot(vm trace.ServerID) int32 {
	if vi, ok := p.uni.idx[vm]; ok && int(vi) < len(p.vmHost) && p.vmHost[vi] >= 0 {
		return vi
	}
	return -1
}

// VMIndex returns the VM's dense index within the placement's universe, or
// -1 when the VM is not assigned. Indices are stable for the lifetime of a
// Clone chain; the adapter's resize loop uses them to skip per-VM map
// lookups.
func (p *Placement) VMIndex(vm trace.ServerID) int { return int(p.vmSlot(vm)) }

// HostOfAt returns the host index of the VM at dense index vi, or -1.
func (p *Placement) HostOfAt(vi int) int {
	if vi < 0 || vi >= len(p.vmHost) {
		return -1
	}
	return int(p.vmHost[vi])
}

// ItemAt returns the item of the assigned VM at dense index vi.
func (p *Placement) ItemAt(vi int) Item { return p.vmItems[vi] }

// HostOf implements constraints.View.
func (p *Placement) HostOf(vm trace.ServerID) (string, bool) {
	vi := p.vmSlot(vm)
	if vi < 0 {
		return "", false
	}
	return p.hosts[p.vmHost[vi]].ID, true
}

// RackOf implements constraints.View.
func (p *Placement) RackOf(host string) string {
	if i, ok := p.hostIdx[host]; ok {
		return p.hosts[i].Rack
	}
	return ""
}

// Item returns the sized demand recorded for a VM.
func (p *Placement) Item(vm trace.ServerID) (Item, bool) {
	vi := p.vmSlot(vm)
	if vi < 0 {
		return Item{}, false
	}
	return p.vmItems[vi], true
}

// Used returns the summed body demand on a host.
func (p *Placement) Used(host string) sizing.Demand {
	if i, ok := p.hostIdx[host]; ok {
		return sizing.Demand{CPU: p.usedCPU[i], Mem: p.usedMem[i]}
	}
	return sizing.Demand{}
}

// Capacity returns the usable per-host capacity (spec scaled by bound).
func (p *Placement) Capacity() sizing.Demand {
	return sizing.Demand{CPU: p.capCPU, Mem: p.capMem}
}

// OpenHost appends a fresh host and returns it.
func (p *Placement) OpenHost() *Host {
	idx := len(p.hosts)
	h := &Host{
		ID:   "h" + pad(idx),
		Rack: "r" + pad(idx/p.rackSize),
	}
	p.addHost(h)
	return h
}

// EnsureHost registers a host with the given ID if it is not already part
// of the placement (the executor replays moves whose targets were opened by
// a later planning state). The rack is derived from the host's position.
func (p *Placement) EnsureHost(id string) *Host {
	if i, ok := p.hostIdx[id]; ok {
		return p.hosts[i]
	}
	h := &Host{ID: id, Rack: "r" + pad(len(p.hosts)/p.rackSize)}
	p.addHost(h)
	return h
}

func (p *Placement) addHost(h *Host) {
	p.hostIdx[h.ID] = len(p.hosts)
	p.hosts = append(p.hosts, h)
	p.hostVMs = append(p.hostVMs, nil)
	p.hostVIs = append(p.hostVIs, nil)
	p.usedCPU = append(p.usedCPU, 0)
	p.usedMem = append(p.usedMem, 0)
}

// Fits reports whether adding demand to the host keeps it within the bound.
func (p *Placement) Fits(host string, d sizing.Demand) bool {
	return p.FitsAt(p.HostIndex(host), d)
}

// FitsAt reports whether adding demand to Hosts()[i] keeps it within the
// bound. A negative index checks against an empty host.
func (p *Placement) FitsAt(i int, d sizing.Demand) bool {
	var uc, um float64
	if i >= 0 {
		uc, um = p.usedCPU[i], p.usedMem[i]
	}
	return uc+d.CPU <= p.capCPU+1e-9 && um+d.Mem <= p.capMem+1e-9
}

// MostLoadedFit returns the index of the most loaded non-empty host (load =
// max of normalized CPU and memory use) that absorbs demand d within the
// bound, skipping exclude; -1 when none fits. Ties keep the earliest host
// (strict > on load), and the fit and load expressions are exactly the
// FitsAt / UsedAt arithmetic — this is the flattened form of the repair
// loop's unconstrained target scan, reading the host arrays directly.
func (p *Placement) MostLoadedFit(exclude int, d sizing.Demand) int {
	best, bestLoad := -1, -1.0
	for i := range p.hosts {
		if i == exclude || len(p.hostVMs[i]) == 0 {
			continue
		}
		uc, um := p.usedCPU[i], p.usedMem[i]
		if uc+d.CPU > p.capCPU+1e-9 || um+d.Mem > p.capMem+1e-9 {
			continue
		}
		load := max(uc/p.capCPU, um/p.capMem)
		if load > bestLoad {
			bestLoad, best = load, i
		}
	}
	return best
}

// internVM returns the dense index for a VM, interning it into the universe
// on first sight (copying a shared universe first).
func (p *Placement) internVM(id trace.ServerID) int32 {
	if vi, ok := p.uni.idx[id]; ok {
		return vi
	}
	if p.uniShared {
		p.uni = &vmUniverse{ids: slices.Clone(p.uni.ids), idx: maps.Clone(p.uni.idx)}
		p.uniShared = false
	}
	vi := int32(len(p.uni.ids))
	p.uni.idx[id] = vi
	p.uni.ids = append(p.uni.ids, id)
	return vi
}

// growVMState extends the per-VM arrays to cover dense index vi.
func (p *Placement) growVMState(vi int32) {
	for int32(len(p.vmHost)) <= vi {
		p.vmHost = append(p.vmHost, -1)
		p.vmItems = append(p.vmItems, Item{})
	}
}

// Assign places the item on the host. It fails if the VM is already placed
// or the host does not exist.
func (p *Placement) Assign(it Item, host string) error {
	hi, ok := p.hostIdx[host]
	if !ok {
		return fmt.Errorf("placement: unknown host %s", host)
	}
	vi := p.internVM(it.ID)
	p.growVMState(vi)
	if p.vmHost[vi] >= 0 {
		return fmt.Errorf("placement: %s already assigned", it.ID)
	}
	p.assignAt(vi, hi, it)
	return nil
}

// assignAt is the packers' fast path: the VM index is already resolved and
// known to be unassigned.
func (p *Placement) assignAt(vi int32, hi int, it Item) {
	p.hostVMs[hi] = append(p.hostVMs[hi], it.ID)
	p.hostVIs[hi] = append(p.hostVIs[hi], vi)
	p.vmHost[vi] = int32(hi)
	p.vmItems[vi] = it
	p.numVMs++
	p.usedCPU[hi] += it.Demand.CPU
	p.usedMem[hi] += it.Demand.Mem
}

// Remove unassigns a VM and returns its item.
func (p *Placement) Remove(vm trace.ServerID) (Item, error) {
	vi := p.vmSlot(vm)
	if vi < 0 {
		return Item{}, fmt.Errorf("placement: %s is not assigned", vm)
	}
	it := p.vmItems[vi]
	hi := p.vmHost[vi]
	p.vmHost[vi] = -1
	p.vmItems[vi] = Item{}
	p.numVMs--
	vis := p.hostVIs[hi]
	for i, v := range vis {
		if v == vi {
			p.hostVIs[hi] = append(vis[:i], vis[i+1:]...)
			vms := p.hostVMs[hi]
			p.hostVMs[hi] = append(vms[:i], vms[i+1:]...)
			break
		}
	}
	p.usedCPU[hi] -= it.Demand.CPU
	p.usedMem[hi] -= it.Demand.Mem
	return it, nil
}

// MoveAt relocates the assigned VM at dense index vi to Hosts()[hi],
// skipping the ID-keyed lookups a Remove + Assign pair pays. The accounting
// performs the identical subtract-then-add float operations in the identical
// order, so host totals and VM orders match the two-call form bit for bit.
func (p *Placement) MoveAt(vi int, hi int) {
	it := p.vmItems[vi]
	src := p.vmHost[vi]
	vis := p.hostVIs[src]
	for i, v := range vis {
		if int(v) == vi {
			p.hostVIs[src] = append(vis[:i], vis[i+1:]...)
			vms := p.hostVMs[src]
			p.hostVMs[src] = append(vms[:i], vms[i+1:]...)
			break
		}
	}
	p.usedCPU[src] -= it.Demand.CPU
	p.usedMem[src] -= it.Demand.Mem
	p.hostVMs[hi] = append(p.hostVMs[hi], it.ID)
	p.hostVIs[hi] = append(p.hostVIs[hi], int32(vi))
	p.vmHost[vi] = int32(hi)
	p.usedCPU[hi] += it.Demand.CPU
	p.usedMem[hi] += it.Demand.Mem
}

// UpdateDemand changes the recorded body demand of an assigned VM (dynamic
// consolidation resizes VMs at every interval) and adjusts host accounting.
func (p *Placement) UpdateDemand(vm trace.ServerID, d sizing.Demand) error {
	vi := p.vmSlot(vm)
	if vi < 0 {
		return fmt.Errorf("placement: %s is not assigned", vm)
	}
	p.UpdateDemandAt(int(vi), d)
	return nil
}

// UpdateDemandAt resizes the VM at dense index vi. The accounting follows
// the same subtract-then-add arithmetic for every VM on every update —
// including no-op resizes — so host totals drift through the identical
// float rounding regardless of which VMs changed.
func (p *Placement) UpdateDemandAt(vi int, d sizing.Demand) {
	it := &p.vmItems[vi]
	hi := p.vmHost[vi]
	p.usedCPU[hi] = p.usedCPU[hi] - it.Demand.CPU + d.CPU
	p.usedMem[hi] = p.usedMem[hi] - it.Demand.Mem + d.Mem
	it.Demand = d
}

// Overloaded returns the IDs of hosts whose body demand exceeds the usable
// capacity, sorted by ID.
func (p *Placement) Overloaded() []string {
	var out []string
	for i, h := range p.hosts {
		if p.usedCPU[i] > p.capCPU+1e-9 || p.usedMem[i] > p.capMem+1e-9 {
			out = append(out, h.ID)
		}
	}
	return out
}

// OverloadedInto appends the indices of overloaded hosts to buf (ascending,
// the same order Overloaded lists them in) — the allocation-free form the
// dynamic repair loop calls once per interval.
func (p *Placement) OverloadedInto(buf []int) []int { return p.overloadedIdx(buf) }

// overloadedIdx appends the indices of overloaded hosts to buf (ascending,
// the same order Overloaded lists them in).
func (p *Placement) overloadedIdx(buf []int) []int {
	for i := range p.hosts {
		if p.usedCPU[i] > p.capCPU+1e-9 || p.usedMem[i] > p.capMem+1e-9 {
			buf = append(buf, i)
		}
	}
	return buf
}

// NumOverloaded counts hosts whose body demand exceeds the usable capacity.
func (p *Placement) NumOverloaded() int {
	n := 0
	for i := range p.hosts {
		if p.usedCPU[i] > p.capCPU+1e-9 || p.usedMem[i] > p.capMem+1e-9 {
			n++
		}
	}
	return n
}

// ActiveHosts returns how many hosts have at least one VM.
func (p *Placement) ActiveHosts() int {
	n := 0
	for i := range p.hosts {
		if len(p.hostVMs[i]) > 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy sharing no mutable state (the interned VM
// universe is shared copy-on-write; it only mutates when a brand-new VM ID
// appears, which the fixed-population hot paths never do).
func (p *Placement) Clone() *Placement {
	p.uniShared = true
	c := &Placement{
		Spec:      p.Spec,
		Bound:     p.Bound,
		hosts:     slices.Clone(p.hosts),
		hostIdx:   maps.Clone(p.hostIdx),
		hostVMs:   make([][]trace.ServerID, len(p.hostVMs)),
		hostVIs:   make([][]int32, len(p.hostVIs)),
		usedCPU:   slices.Clone(p.usedCPU),
		usedMem:   slices.Clone(p.usedMem),
		rackSize:  p.rackSize,
		capCPU:    p.capCPU,
		capMem:    p.capMem,
		uni:       p.uni,
		uniShared: true,
		vmHost:    slices.Clone(p.vmHost),
		vmItems:   slices.Clone(p.vmItems),
		numVMs:    p.numVMs,
	}
	for i, vms := range p.hostVMs {
		if len(vms) > 0 {
			c.hostVMs[i] = slices.Clone(vms)
			c.hostVIs[i] = slices.Clone(p.hostVIs[i])
		}
	}
	return c
}

func pad(i int) string {
	s := strconv.Itoa(i)
	for len(s) < 4 {
		s = "0" + s
	}
	return s
}

// sortDecreasing orders items by their dominant normalized demand, largest
// first (the "decreasing" in FFD), tie-broken by ID for determinism. Sort
// keys are computed once per item, not once per comparison; the comparator
// is a strict total order (unique IDs), so the sorted sequence is identical
// however the sort algorithm visits it.
func sortDecreasing(items []Item, spec trace.Spec) []Item {
	type keyed struct {
		it  Item
		key float64
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		ks[i] = keyed{it: it, key: math.Max(it.Demand.CPU/spec.CPURPE2, it.Demand.Mem/spec.MemMB)}
	}
	slices.SortFunc(ks, func(a, b keyed) int {
		if a.key != b.key {
			if a.key > b.key {
				return -1
			}
			return 1
		}
		if a.it.ID < b.it.ID {
			return -1
		}
		if a.it.ID > b.it.ID {
			return 1
		}
		return 0
	})
	sorted := make([]Item, len(items))
	for i, k := range ks {
		sorted[i] = k.it
	}
	return sorted
}
