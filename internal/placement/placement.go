// Package placement implements the Placement step of the consolidation flow
// (Section 2.1): assigning sized virtual machines to physical hosts.
//
// Two packers are provided. FFD is the two-dimensional First-Fit-Decreasing
// bin packing used by static and vanilla semi-static consolidation [26].
// PCP is the correlation-aware stochastic packer modeled on the PCP
// algorithm of [27]: each VM reserves its body (90th percentile) fully,
// while tail buffers are shared across co-located VMs in proportion to how
// correlated their demands are — uncorrelated tails pool (root-sum-square),
// perfectly correlated tails add up.
package placement

import (
	"errors"
	"fmt"
	"maps"
	"math"
	"sort"
	"strconv"

	"vmwild/internal/constraints"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// Item is one VM to place: identity plus sized demand. For PCP packing,
// Tail carries the envelope maximum; for plain FFD it is zero and ignored.
type Item struct {
	ID     trace.ServerID
	Demand sizing.Demand // fully reserved (body) demand
	Tail   sizing.Demand // envelope maximum; zero value means "no tail"
}

// tailBuffer returns the slack above the body, never negative.
func (it Item) tailBuffer() sizing.Demand {
	return sizing.Demand{
		CPU: math.Max(0, it.Tail.CPU-it.Demand.CPU),
		Mem: math.Max(0, it.Tail.Mem-it.Demand.Mem),
	}
}

// Host is one physical machine in a placement.
type Host struct {
	// ID is unique within the placement ("h0000", "h0001", ...).
	ID string
	// Rack groups hosts for rack-affinity constraints.
	Rack string
}

// Placement is a mutable assignment of VMs to hosts drawn from an unbounded
// supply of identical machines. It satisfies constraints.View.
type Placement struct {
	// Spec is the raw per-host capacity.
	Spec trace.Spec
	// Bound is the usable fraction of each host (1 - migration
	// reservation).
	Bound float64

	// Per-host state lives in slices parallel to hosts; hostIdx maps a
	// host ID to its position. The planners' hot loops walk hosts by
	// index (VMsAt/UsedAt/FitsAt) and never pay a map lookup per host.
	hosts    []*Host
	hostIdx  map[string]int
	hostVMs  [][]trace.ServerID
	used     []sizing.Demand
	byVM     map[trace.ServerID]string
	items    map[trace.ServerID]Item
	rackSize int
}

var _ constraints.View = (*Placement)(nil)

// NewPlacement creates an empty placement over hosts of the given spec.
// bound is the usable capacity fraction in (0, 1]; rackSize is the number
// of hosts per rack (minimum 1).
func NewPlacement(spec trace.Spec, bound float64, rackSize int) (*Placement, error) {
	if spec.CPURPE2 <= 0 || spec.MemMB <= 0 {
		return nil, errors.New("placement: host spec must have positive capacities")
	}
	if bound <= 0 || bound > 1 {
		return nil, fmt.Errorf("placement: bound %v outside (0, 1]", bound)
	}
	if rackSize < 1 {
		rackSize = 1
	}
	return &Placement{
		Spec:     spec,
		Bound:    bound,
		hostIdx:  make(map[string]int),
		byVM:     make(map[trace.ServerID]string),
		items:    make(map[trace.ServerID]Item),
		rackSize: rackSize,
	}, nil
}

// Hosts returns the opened hosts in creation order. The slice is shared;
// callers must not modify it.
func (p *Placement) Hosts() []*Host { return p.hosts }

// NumHosts returns how many hosts are open.
func (p *Placement) NumHosts() int { return len(p.hosts) }

// NumVMs returns how many VMs are assigned.
func (p *Placement) NumVMs() int { return len(p.byVM) }

// VMsOn implements constraints.View. The returned slice is shared.
func (p *Placement) VMsOn(host string) []trace.ServerID {
	if i, ok := p.hostIdx[host]; ok {
		return p.hostVMs[i]
	}
	return nil
}

// HostIndex returns the position of the host in Hosts(), or -1 when the
// host is not part of the placement.
func (p *Placement) HostIndex(host string) int {
	if i, ok := p.hostIdx[host]; ok {
		return i
	}
	return -1
}

// VMsAt returns the VMs on Hosts()[i]. The returned slice is shared.
func (p *Placement) VMsAt(i int) []trace.ServerID { return p.hostVMs[i] }

// UsedAt returns the summed body demand on Hosts()[i].
func (p *Placement) UsedAt(i int) sizing.Demand { return p.used[i] }

// HostOf implements constraints.View.
func (p *Placement) HostOf(vm trace.ServerID) (string, bool) {
	h, ok := p.byVM[vm]
	return h, ok
}

// RackOf implements constraints.View.
func (p *Placement) RackOf(host string) string {
	if i, ok := p.hostIdx[host]; ok {
		return p.hosts[i].Rack
	}
	return ""
}

// Item returns the sized demand recorded for a VM.
func (p *Placement) Item(vm trace.ServerID) (Item, bool) {
	it, ok := p.items[vm]
	return it, ok
}

// Used returns the summed body demand on a host.
func (p *Placement) Used(host string) sizing.Demand {
	if i, ok := p.hostIdx[host]; ok {
		return p.used[i]
	}
	return sizing.Demand{}
}

// Capacity returns the usable per-host capacity (spec scaled by bound).
func (p *Placement) Capacity() sizing.Demand {
	return sizing.Demand{CPU: p.Spec.CPURPE2 * p.Bound, Mem: p.Spec.MemMB * p.Bound}
}

// OpenHost appends a fresh host and returns it.
func (p *Placement) OpenHost() *Host {
	idx := len(p.hosts)
	h := &Host{
		ID:   "h" + pad(idx),
		Rack: "r" + pad(idx/p.rackSize),
	}
	p.addHost(h)
	return h
}

// EnsureHost registers a host with the given ID if it is not already part
// of the placement (the executor replays moves whose targets were opened by
// a later planning state). The rack is derived from the host's position.
func (p *Placement) EnsureHost(id string) *Host {
	if i, ok := p.hostIdx[id]; ok {
		return p.hosts[i]
	}
	h := &Host{ID: id, Rack: "r" + pad(len(p.hosts)/p.rackSize)}
	p.addHost(h)
	return h
}

func (p *Placement) addHost(h *Host) {
	p.hostIdx[h.ID] = len(p.hosts)
	p.hosts = append(p.hosts, h)
	p.hostVMs = append(p.hostVMs, nil)
	p.used = append(p.used, sizing.Demand{})
}

// Fits reports whether adding demand to the host keeps it within the bound.
func (p *Placement) Fits(host string, d sizing.Demand) bool {
	return p.FitsAt(p.HostIndex(host), d)
}

// FitsAt reports whether adding demand to Hosts()[i] keeps it within the
// bound. A negative index checks against an empty host.
func (p *Placement) FitsAt(i int, d sizing.Demand) bool {
	var u sizing.Demand
	if i >= 0 {
		u = p.used[i]
	}
	c := p.Capacity()
	return u.CPU+d.CPU <= c.CPU+1e-9 && u.Mem+d.Mem <= c.Mem+1e-9
}

// Assign places the item on the host. It fails if the VM is already placed
// or the host does not exist.
func (p *Placement) Assign(it Item, host string) error {
	if _, dup := p.byVM[it.ID]; dup {
		return fmt.Errorf("placement: %s already assigned", it.ID)
	}
	hi, ok := p.hostIdx[host]
	if !ok {
		return fmt.Errorf("placement: unknown host %s", host)
	}
	p.hostVMs[hi] = append(p.hostVMs[hi], it.ID)
	p.byVM[it.ID] = host
	p.items[it.ID] = it
	u := p.used[hi]
	p.used[hi] = sizing.Demand{CPU: u.CPU + it.Demand.CPU, Mem: u.Mem + it.Demand.Mem}
	return nil
}

// Remove unassigns a VM and returns its item.
func (p *Placement) Remove(vm trace.ServerID) (Item, error) {
	host, ok := p.byVM[vm]
	if !ok {
		return Item{}, fmt.Errorf("placement: %s is not assigned", vm)
	}
	it := p.items[vm]
	delete(p.byVM, vm)
	delete(p.items, vm)
	hi := p.hostIdx[host]
	vms := p.hostVMs[hi]
	for i, id := range vms {
		if id == vm {
			p.hostVMs[hi] = append(vms[:i], vms[i+1:]...)
			break
		}
	}
	u := p.used[hi]
	p.used[hi] = sizing.Demand{CPU: u.CPU - it.Demand.CPU, Mem: u.Mem - it.Demand.Mem}
	return it, nil
}

// UpdateDemand changes the recorded body demand of an assigned VM (dynamic
// consolidation resizes VMs at every interval) and adjusts host accounting.
func (p *Placement) UpdateDemand(vm trace.ServerID, d sizing.Demand) error {
	host, ok := p.byVM[vm]
	if !ok {
		return fmt.Errorf("placement: %s is not assigned", vm)
	}
	it := p.items[vm]
	hi := p.hostIdx[host]
	u := p.used[hi]
	p.used[hi] = sizing.Demand{
		CPU: u.CPU - it.Demand.CPU + d.CPU,
		Mem: u.Mem - it.Demand.Mem + d.Mem,
	}
	it.Demand = d
	p.items[vm] = it
	return nil
}

// Overloaded returns the IDs of hosts whose body demand exceeds the usable
// capacity, sorted by ID.
func (p *Placement) Overloaded() []string {
	c := p.Capacity()
	var out []string
	for i, h := range p.hosts {
		u := p.used[i]
		if u.CPU > c.CPU+1e-9 || u.Mem > c.Mem+1e-9 {
			out = append(out, h.ID)
		}
	}
	return out
}

// ActiveHosts returns how many hosts have at least one VM.
func (p *Placement) ActiveHosts() int {
	n := 0
	for i := range p.hosts {
		if len(p.hostVMs[i]) > 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy sharing no mutable state.
func (p *Placement) Clone() *Placement {
	c := &Placement{
		Spec:     p.Spec,
		Bound:    p.Bound,
		hosts:    make([]*Host, len(p.hosts)),
		hostIdx:  maps.Clone(p.hostIdx),
		hostVMs:  make([][]trace.ServerID, len(p.hostVMs)),
		used:     make([]sizing.Demand, len(p.used)),
		byVM:     maps.Clone(p.byVM),
		items:    maps.Clone(p.items),
		rackSize: p.rackSize,
	}
	copy(c.hosts, p.hosts)
	copy(c.used, p.used)
	for i, vms := range p.hostVMs {
		if len(vms) > 0 {
			c.hostVMs[i] = append([]trace.ServerID(nil), vms...)
		}
	}
	return c
}

func pad(i int) string {
	s := strconv.Itoa(i)
	for len(s) < 4 {
		s = "0" + s
	}
	return s
}

// sortDecreasing orders items by their dominant normalized demand, largest
// first (the "decreasing" in FFD), tie-broken by ID for determinism.
func sortDecreasing(items []Item, spec trace.Spec) []Item {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	key := func(it Item) float64 {
		return math.Max(it.Demand.CPU/spec.CPURPE2, it.Demand.Mem/spec.MemMB)
	}
	sort.Slice(sorted, func(i, j int) bool {
		ki, kj := key(sorted[i]), key(sorted[j])
		if ki != kj {
			return ki > kj
		}
		return sorted[i].ID < sorted[j].ID
	})
	return sorted
}
