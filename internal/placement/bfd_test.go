package placement

import (
	"fmt"
	"testing"
	"testing/quick"

	"vmwild/internal/constraints"
	"vmwild/internal/trace"
)

func TestBFDPacksTighterOnGapFillCase(t *testing.T) {
	// Items: 600, 500, 400, 300, 200. FFD puts 500 with 400 (first fit
	// after 600 rejects 500), BFD picks the snuggest host each time.
	items := []Item{
		item("a", 600, 10), item("b", 500, 10), item("c", 400, 10),
		item("d", 300, 10), item("e", 200, 10),
	}
	bfd := BFD{HostSpec: testSpec, Bound: 1, RackSize: 10}
	p, err := bfd.Pack(items)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVMs() != 5 {
		t.Fatalf("placed %d VMs", p.NumVMs())
	}
	// 2000 total demand fits in 2 hosts at best; BFD must achieve it:
	// h0: 600+400 -> 1000, h1: 500+300+200 -> 1000.
	if p.NumHosts() != 2 {
		t.Errorf("BFD used %d hosts, want 2", p.NumHosts())
	}
	for _, h := range p.Hosts() {
		u := p.Used(h.ID)
		if u.CPU > 1000+1e-9 {
			t.Errorf("host %s over capacity: %+v", h.ID, u)
		}
	}
}

func TestBFDOversized(t *testing.T) {
	bfd := BFD{HostSpec: testSpec, Bound: 0.5, RackSize: 10}
	if _, err := bfd.Pack([]Item{item("big", 800, 10)}); err == nil {
		t.Error("oversized item must be rejected")
	}
}

func TestBFDConstraints(t *testing.T) {
	bfd := BFD{
		HostSpec: testSpec, Bound: 1, RackSize: 10,
		Constraints: constraints.Set{constraints.AntiAffinity{Group: []trace.ServerID{"a", "b"}}},
	}
	p, err := bfd.Pack([]Item{item("a", 100, 100), item("b", 100, 100)})
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := p.HostOf("a")
	hb, _ := p.HostOf("b")
	if ha == hb {
		t.Error("anti-affine VMs share a host")
	}
	bad := BFD{
		HostSpec: testSpec, Bound: 1, RackSize: 10,
		Constraints: constraints.Set{constraints.PinHost{VM: "a", Host: "h9999"}},
	}
	if _, err := bad.Pack([]Item{item("a", 1, 1)}); err == nil {
		t.Error("unsatisfiable pin should surface an error")
	}
}

// Property: BFD is feasible and never uses more hosts than FFD + 1 (both
// are 2-approximations; in practice BFD <= FFD on these inputs).
func TestQuickBFDNeverWorseThanFFDPlusOne(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) == 0 || len(seeds) > 50 {
			return true
		}
		items := make([]Item, len(seeds))
		for i, s := range seeds {
			items[i] = item(fmt.Sprintf("vm%d", i), float64(s%900)+1, float64((s/3)%900)+1)
		}
		ffd, err := (FFD{HostSpec: testSpec, Bound: 1, RackSize: 8}).Pack(items)
		if err != nil {
			return false
		}
		bfd, err := (BFD{HostSpec: testSpec, Bound: 1, RackSize: 8}).Pack(items)
		if err != nil {
			return false
		}
		if bfd.NumVMs() != len(items) {
			return false
		}
		for _, h := range bfd.Hosts() {
			u := bfd.Used(h.ID)
			if u.CPU > 1000+1e-6 || u.Mem > 1000+1e-6 {
				return false
			}
		}
		return bfd.NumHosts() <= ffd.NumHosts()+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
