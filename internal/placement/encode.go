package placement

import (
	"encoding/json"
	"fmt"

	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// The wire form preserves everything that makes a placement behave
// identically after a round trip: host creation order (FFD and the repair
// passes iterate hosts in that order) and per-host VM order (the executor
// and drain paths walk VMsOn slices). Encoding the same placement twice
// yields identical bytes, so encoded placements double as equality
// fingerprints in the crash wall.
type placementWire struct {
	Spec     trace.Spec `json:"spec"`
	Bound    float64    `json:"bound"`
	RackSize int        `json:"rackSize"`
	Hosts    []hostWire `json:"hosts"`
}

type hostWire struct {
	ID   string   `json:"id"`
	Rack string   `json:"rack"`
	VMs  []vmWire `json:"vms,omitempty"`
}

type vmWire struct {
	ID      trace.ServerID `json:"id"`
	CPU     float64        `json:"cpu"`
	Mem     float64        `json:"mem"`
	TailCPU float64        `json:"tailCpu,omitempty"`
	TailMem float64        `json:"tailMem,omitempty"`
}

// Encode serializes the placement deterministically — the controller's
// write-ahead commit records persist placements in this form.
func (p *Placement) Encode() ([]byte, error) {
	w := placementWire{Spec: p.Spec, Bound: p.Bound, RackSize: p.rackSize}
	for hi, h := range p.hosts {
		hw := hostWire{ID: h.ID, Rack: h.Rack}
		for _, vm := range p.hostVMs[hi] {
			it, _ := p.Item(vm)
			hw.VMs = append(hw.VMs, vmWire{
				ID:      it.ID,
				CPU:     it.Demand.CPU,
				Mem:     it.Demand.Mem,
				TailCPU: it.Tail.CPU,
				TailMem: it.Tail.Mem,
			})
		}
		w.Hosts = append(w.Hosts, hw)
	}
	return json.Marshal(w)
}

// Decode rebuilds a placement from Encode output, reproducing the original
// host and VM ordering exactly.
func Decode(data []byte) (*Placement, error) {
	var w placementWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("placement: decode: %w", err)
	}
	p, err := NewPlacement(w.Spec, w.Bound, w.RackSize)
	if err != nil {
		return nil, fmt.Errorf("placement: decode: %w", err)
	}
	for _, hw := range w.Hosts {
		if _, dup := p.hostIdx[hw.ID]; dup {
			return nil, fmt.Errorf("placement: decode: duplicate host %s", hw.ID)
		}
		p.addHost(&Host{ID: hw.ID, Rack: hw.Rack})
		for _, vw := range hw.VMs {
			it := Item{
				ID:     vw.ID,
				Demand: sizing.Demand{CPU: vw.CPU, Mem: vw.Mem},
				Tail:   sizing.Demand{CPU: vw.TailCPU, Mem: vw.TailMem},
			}
			if err := p.Assign(it, hw.ID); err != nil {
				return nil, fmt.Errorf("placement: decode: %w", err)
			}
		}
	}
	return p, nil
}
