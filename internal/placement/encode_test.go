package placement

import (
	"bytes"
	"testing"

	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

func testPlacement(t *testing.T) *Placement {
	t.Helper()
	p, err := NewPlacement(trace.Spec{CPURPE2: 1000, MemMB: 4096}, 0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.OpenHost()
	}
	assign := func(vm string, host string, cpu, mem float64) {
		t.Helper()
		it := Item{ID: trace.ServerID(vm), Demand: sizing.Demand{CPU: cpu, Mem: mem}}
		if err := p.Assign(it, host); err != nil {
			t.Fatal(err)
		}
	}
	assign("vm-b", "h0000", 100, 512)
	assign("vm-a", "h0000", 50.5, 256.25)
	assign("vm-c", "h0002", 300, 1024)
	// h0001 stays empty — empty hosts must survive the round trip too.
	return p
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	p := testPlacement(t)
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumHosts() != p.NumHosts() || q.NumVMs() != p.NumVMs() {
		t.Fatalf("shape changed: %d/%d hosts, %d/%d VMs",
			q.NumHosts(), p.NumHosts(), q.NumVMs(), p.NumVMs())
	}
	for i, h := range p.Hosts() {
		qh := q.Hosts()[i]
		if qh.ID != h.ID || qh.Rack != h.Rack {
			t.Fatalf("host %d: %+v != %+v (ordering must be preserved)", i, qh, h)
		}
		vms, qvms := p.VMsOn(h.ID), q.VMsOn(h.ID)
		if len(vms) != len(qvms) {
			t.Fatalf("host %s VM count changed", h.ID)
		}
		for j := range vms {
			if vms[j] != qvms[j] {
				t.Fatalf("host %s VM order changed: %v vs %v", h.ID, vms, qvms)
			}
		}
	}
	for vm := range map[string]bool{"vm-a": true, "vm-b": true, "vm-c": true} {
		a, _ := p.Item(trace.ServerID(vm))
		b, ok := q.Item(trace.ServerID(vm))
		if !ok || a != b {
			t.Fatalf("item %s changed: %+v vs %+v", vm, a, b)
		}
		ha, _ := p.HostOf(trace.ServerID(vm))
		hb, _ := q.HostOf(trace.ServerID(vm))
		if ha != hb {
			t.Fatalf("VM %s moved during round trip", vm)
		}
	}
	if p.Used("h0000") != q.Used("h0000") {
		t.Fatal("host accounting diverged")
	}

	// Deterministic: re-encoding the decoded placement yields the same
	// bytes, so encodings work as equality fingerprints.
	again, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("Encode(Decode(Encode(p))) != Encode(p)")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode([]byte(`{"spec":{"CPURPE2":0,"MemMB":0}}`)); err == nil {
		t.Error("zero-capacity spec accepted")
	}
	dup := []byte(`{"spec":{"CPURPE2":10,"MemMB":10},"bound":1,"rackSize":1,` +
		`"hosts":[{"id":"h0","rack":"r0"},{"id":"h0","rack":"r0"}]}`)
	if _, err := Decode(dup); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestDecodedPlacementStaysUsable(t *testing.T) {
	p := testPlacement(t)
	data, _ := p.Encode()
	q, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Mutations must behave — the decoded maps and slices are live state.
	if _, err := q.Remove("vm-a"); err != nil {
		t.Fatal(err)
	}
	if err := q.Assign(Item{ID: "vm-d", Demand: sizing.Demand{CPU: 1, Mem: 1}}, "h0001"); err != nil {
		t.Fatal(err)
	}
	h := q.OpenHost()
	if h.ID != "h0003" {
		t.Fatalf("OpenHost after decode = %s, want h0003", h.ID)
	}
}
