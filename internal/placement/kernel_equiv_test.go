package placement

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"vmwild/internal/constraints"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// The kernel equivalence wall: for randomized fleets the flattened
// struct-of-arrays kernels must produce placements with Encode bytes
// identical to the retained naive reference kernels (reference.go). The
// fleets deliberately include duplicate demands (sort-key ties resolved by
// ID), items far larger than others (many non-fitting hosts for the
// segment-tree finder to prune), and AvoidHost constraints that leave
// zero-VM hosts sitting in the scan order.

// randFleet builds a deterministic pseudo-random fleet. Demands are
// quantized to a few steps so ties are common, and a handful of "whale"
// items stress the finder's pruning.
func randFleet(rng *rand.Rand, n int, withTails bool) []Item {
	items := make([]Item, n)
	for i := range items {
		cpu := float64(rng.Intn(9)+1) * 100 / float64(rng.Intn(3)+1)
		mem := float64(rng.Intn(9)+1) * 100 / float64(rng.Intn(3)+1)
		if rng.Intn(10) == 0 {
			cpu, mem = 930, 930 // whales: almost a full host
		}
		it := Item{
			ID:     trace.ServerID(fmt.Sprintf("vm%04d", i)),
			Demand: sizing.Demand{CPU: cpu, Mem: mem},
		}
		if withTails {
			it.Tail = sizing.Demand{
				CPU: min(cpu+float64(rng.Intn(4))*50, 1000),
				Mem: min(mem+float64(rng.Intn(4))*50, 1000),
			}
		}
		items[i] = it
	}
	return items
}

// randConstraints sometimes adds an AvoidHost for the fleet's first items —
// the open-retry path then leaves freshly opened hosts empty, so the
// candidate scans must step over zero-VM hosts exactly like the reference.
func randConstraints(rng *rand.Rand, items []Item) constraints.Set {
	switch rng.Intn(3) {
	case 0:
		return nil
	case 1:
		return constraints.Set{
			constraints.AvoidHost{VM: items[0].ID, Host: "h0000"},
			constraints.AvoidHost{VM: items[1].ID, Host: "h0000"},
		}
	default:
		g := []trace.ServerID{items[0].ID, items[1].ID, items[2].ID}
		return constraints.Set{constraints.AntiAffinity{Group: g}}
	}
}

// testCorr is a deterministic CorrIndexer/CorrFunc pair over the fleet.
type testCorr struct {
	ids map[trace.ServerID]int
}

func newTestCorr(items []Item) *testCorr {
	c := &testCorr{ids: make(map[trace.ServerID]int, len(items))}
	for i, it := range items {
		c.ids[it.ID] = i
	}
	return c
}

func (c *testCorr) Index(id trace.ServerID) int {
	if i, ok := c.ids[id]; ok {
		return i
	}
	return -1
}

// At is an arbitrary deterministic function into [-1, 1].
func (c *testCorr) At(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	return float64((i*31+j*17)%201-100) / 100
}

func (c *testCorr) Corr(a, b trace.ServerID) float64 {
	ia, ok := c.ids[a]
	if !ok {
		return 0
	}
	ib, ok := c.ids[b]
	if !ok {
		return 0
	}
	return c.At(ia, ib)
}

func assertSameBytes(t *testing.T, seed int64, kind string, flat, ref *Placement) {
	t.Helper()
	fb, err := flat.Encode()
	if err != nil {
		t.Fatalf("seed %d %s: encode flat: %v", seed, kind, err)
	}
	rb, err := ref.Encode()
	if err != nil {
		t.Fatalf("seed %d %s: encode reference: %v", seed, kind, err)
	}
	if !bytes.Equal(fb, rb) {
		t.Errorf("seed %d: %s flattened kernel diverges from reference (flat %d hosts, ref %d hosts)",
			seed, kind, flat.NumHosts(), ref.NumHosts())
	}
}

func TestFFDKernelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := randFleet(rng, rng.Intn(120)+4, false)
		cs := randConstraints(rng, items)
		f := FFD{HostSpec: testSpec, Bound: 1, RackSize: 8, Constraints: cs}
		flat, err := f.Pack(items)
		if err != nil {
			t.Fatalf("seed %d: flat: %v", seed, err)
		}
		f.Reference = true
		ref, err := f.Pack(items)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		assertSameBytes(t, seed, "FFD", flat, ref)
	}
}

func TestBFDKernelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := randFleet(rng, rng.Intn(120)+4, false)
		cs := randConstraints(rng, items)
		b := BFD{HostSpec: testSpec, Bound: 1, RackSize: 8, Constraints: cs}
		flat, err := b.Pack(items)
		if err != nil {
			t.Fatalf("seed %d: flat: %v", seed, err)
		}
		b.Reference = true
		ref, err := b.Pack(items)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		assertSameBytes(t, seed, "BFD", flat, ref)
	}
}

func TestPCPKernelEquivalence(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		items := randFleet(rng, rng.Intn(80)+4, true)
		cs := randConstraints(rng, items)
		corr := newTestCorr(items)
		pcp := PCP{HostSpec: testSpec, Bound: 1, RackSize: 8, Constraints: cs}
		var maxAvg float64
		switch seed % 3 {
		case 0:
			// Indexed lookups (the planner's fast path).
			pcp.CorrIdx = corr
		case 1:
			// Functional lookups only.
			pcp.Corr = corr.Corr
			maxAvg = 0.4
		default:
			// No correlation source: pure root-sum-square pooling.
		}
		pcp.MaxAvgCorr = maxAvg
		flat, err := pcp.Pack(items)
		if err != nil {
			t.Fatalf("seed %d: flat: %v", seed, err)
		}
		pcp.Reference = true
		ref, err := pcp.Pack(items)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		assertSameBytes(t, seed, "PCP", flat, ref)
	}
}

// TestKernelEquivalenceCorrViews: the two correlation views of the same
// table (indexed and functional) must make identical packing decisions.
func TestKernelEquivalenceCorrViews(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		items := randFleet(rng, rng.Intn(60)+4, true)
		corr := newTestCorr(items)
		base := PCP{HostSpec: testSpec, Bound: 1, RackSize: 8, MaxAvgCorr: 0.5}

		idx := base
		idx.CorrIdx = corr
		fn := base
		fn.Corr = corr.Corr

		pi, err := idx.Pack(items)
		if err != nil {
			t.Fatalf("seed %d: indexed: %v", seed, err)
		}
		pf, err := fn.Pack(items)
		if err != nil {
			t.Fatalf("seed %d: functional: %v", seed, err)
		}
		assertSameBytes(t, seed, "PCP corr views", pi, pf)
	}
}
