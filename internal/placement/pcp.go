package placement

import (
	"fmt"
	"math"
	"slices"

	"vmwild/internal/constraints"
	"vmwild/internal/trace"
)

// CorrFunc returns the Pearson correlation of CPU demand between two
// servers, in [-1, 1].
type CorrFunc func(a, b trace.ServerID) float64

// CorrIndexer is the optional fast path for correlation lookups: servers
// are resolved to dense indices once, and pairwise probes become integer-
// indexed. Values must be identical to the ID-keyed function — the
// stochastic planner's correlation table satisfies both interfaces from the
// same memo.
type CorrIndexer interface {
	// Index returns the server's dense index, or -1 when unknown.
	Index(id trace.ServerID) int
	// At returns the correlation of the servers at indices i and j.
	At(i, j int) float64
}

// PCP is the correlation-aware stochastic packer modeled on [27]. Each VM's
// body (90th-percentile demand) is reserved outright. Tail buffers
// (max - body) are pooled per host: the pooled reservation interpolates
// between root-sum-square pooling (independent peaks) and plain summation
// (fully correlated peaks) according to the strongest positive pairwise
// correlation among the co-located VMs:
//
//	tailTerm = rho * sum(tails) + (1-rho) * sqrt(sum(tails^2))
//
// Using the strongest (not average) correlation keeps the sizing safe: one
// pair of co-moving workloads is enough to make their peaks coincide, and a
// production planner must reserve for that. Negatively or un-correlated
// workloads share their peak headroom, while placing positively correlated
// workloads together buys nothing — the property that keeps semi-static
// consolidation honest for workloads whose bursts coincide (Observation 5).
type PCP struct {
	// HostSpec is the raw capacity of the target hosts.
	HostSpec trace.Spec
	// Bound is the usable fraction of each host in (0, 1].
	Bound float64
	// RackSize is the number of hosts per rack.
	RackSize int
	// Constraints veto candidate assignments.
	Constraints constraints.Set
	// Corr supplies pairwise CPU-demand correlations; nil treats all
	// pairs as uncorrelated.
	Corr CorrFunc
	// CorrIdx, when non-nil, replaces Corr with integer-indexed lookups
	// (values must agree with Corr). The flattened kernel resolves each
	// VM to its index once instead of hashing two string IDs per probe.
	CorrIdx CorrIndexer
	// MaxAvgCorr, when positive, additionally vetoes hosts whose average
	// correlation with the candidate would exceed the threshold, forcing
	// strongly co-moving workloads apart.
	MaxAvgCorr float64
	// Reference selects the retained naive kernel; see FFD.Reference.
	Reference bool
}

// hostPool accumulates the per-host tail statistics PCP admission needs.
type hostPool struct {
	tailSumCPU, tailSqCPU float64
	tailSumMem, tailSqMem float64
	maxCorr               float64
}

// Pack places all items and returns the resulting placement.
func (s PCP) Pack(items []Item) (*Placement, error) {
	p, err := NewPlacement(s.HostSpec, s.Bound, s.RackSize)
	if err != nil {
		return nil, err
	}
	sorted := s.sortItems(items)
	if s.Reference {
		return p, s.packReference(p, sorted)
	}
	return p, s.packFlat(p, sorted)
}

// sortItems orders items by dominant normalized envelope demand, largest
// first, ties by ID — a strict total order, so any sort yields the same
// sequence. Keys are precomputed once per item.
func (s PCP) sortItems(items []Item) []Item {
	type keyed struct {
		it  Item
		key float64
	}
	ks := make([]keyed, len(items))
	for i, it := range items {
		cpu := math.Max(it.Demand.CPU, it.Tail.CPU)
		mem := math.Max(it.Demand.Mem, it.Tail.Mem)
		ks[i] = keyed{it: it, key: math.Max(cpu/s.HostSpec.CPURPE2, mem/s.HostSpec.MemMB)}
	}
	slices.SortFunc(ks, func(a, b keyed) int {
		if a.key != b.key {
			if a.key > b.key {
				return -1
			}
			return 1
		}
		if a.it.ID < b.it.ID {
			return -1
		}
		if a.it.ID > b.it.ID {
			return 1
		}
		return 0
	})
	sorted := make([]Item, len(items))
	for i, k := range ks {
		sorted[i] = k.it
	}
	return sorted
}

// effSlack absorbs the accumulated float rounding error of the effective-
// load lower bound (a handful of ulps at host-capacity magnitude, ~1e-11).
// Pruning requires exceeding the admission threshold by this margin, so the
// tree can only under-prune — it never skips a host the exact admission
// test could accept.
const effSlack = 1e-6

// packFlat is the flattened kernel. Two changes against the naive path,
// neither observable in the output:
//
//   - Hosts that provably fail admission are skipped before any correlation
//     work, via a segment tree over per-host effective load:
//
//     eff = used + m*tailSum + (1-m)*sqrt(tailSq),  m = pool.maxCorr
//
//     The admission term rho*S + (1-rho)*R is monotone in rho (S >= R
//     because an L1 norm dominates the L2 norm), rho = max(m, corrMax) >= m,
//     and S >= tailSum, R >= sqrt(tailSq) for any candidate tail, so eff is
//     a lower bound on the admission test's left-hand side for every
//     possible item; with effSlack covering float error the tree only
//     under-prunes. Enumerated hosts still run the exact admission test, in
//     the same leftmost-first order the naive scan probes, so the chosen
//     host is identical.
//   - Correlation probes go through dense indices (CorrIdx) and per-host
//     resident index lists, avoiding two string hashes per probe. The
//     resident iteration order is the hostVMs order, identical to the
//     naive admits loop, so the corrSum accumulation sees the same floats
//     in the same order.
func (s PCP) packFlat(p *Placement, sorted []Item) error {
	finder := newMinTree(p.capCPU+1e-9+effSlack, p.capMem+1e-9+effSlack)
	plain := len(s.Constraints) == 0
	pools := make([]hostPool, 0, 64)
	// resCorr mirrors hostVMs with each resident's dense correlation
	// index (-1 when the correlation source does not know the server).
	var resCorr [][]int32
	corrOf := func(id trace.ServerID) int32 {
		if s.CorrIdx == nil {
			return -1
		}
		return int32(s.CorrIdx.Index(id))
	}
	useIdx := s.CorrIdx != nil
	useFunc := !useIdx && s.Corr != nil

	for _, it := range sorted {
		if it.Tail.CPU > p.capCPU+1e-9 || it.Tail.Mem > p.capMem+1e-9 || it.Demand.CPU > p.capCPU+1e-9 || it.Demand.Mem > p.capMem+1e-9 {
			return fmt.Errorf("placement: %s envelope exceeds host capacity", it.ID)
		}
		vi := p.internVM(it.ID)
		p.growVMState(vi)
		if p.vmHost[vi] >= 0 {
			return fmt.Errorf("placement: %s already assigned", it.ID)
		}
		ci := corrOf(it.ID)
		tail := it.tailBuffer()

		chosen, corrMax := -1, 0.0
		for hi := finder.firstFit(0, it.Demand.CPU, it.Demand.Mem); hi >= 0; hi = finder.firstFit(hi+1, it.Demand.CPU, it.Demand.Mem) {
			residents := p.hostVMs[hi]
			// Negative correlations clamp to 0: adding +0 leaves corrSum
			// bit-identical and cannot raise cMax, so the clamped probes
			// are skipped outright instead of calling math.Max.
			var corrSum, cMax float64
			if useIdx {
				for _, rc := range resCorr[hi] {
					if ci >= 0 && rc >= 0 {
						if c := s.CorrIdx.At(int(ci), int(rc)); c > 0 {
							corrSum += c
							if c > cMax {
								cMax = c
							}
						}
					}
				}
			} else if useFunc {
				for _, r := range residents {
					if c := s.Corr(it.ID, r); c > 0 {
						corrSum += c
						if c > cMax {
							cMax = c
						}
					}
				}
			}
			if s.MaxAvgCorr > 0 && len(residents) > 0 {
				if corrSum/float64(len(residents)) > s.MaxAvgCorr {
					continue
				}
			}
			pool := &pools[hi]
			rho := math.Max(pool.maxCorr, cMax)
			cpuTerm := rho*(pool.tailSumCPU+tail.CPU) + (1-rho)*math.Sqrt(pool.tailSqCPU+tail.CPU*tail.CPU)
			if p.usedCPU[hi]+it.Demand.CPU+cpuTerm > p.capCPU+1e-9 {
				continue
			}
			memTerm := rho*(pool.tailSumMem+tail.Mem) + (1-rho)*math.Sqrt(pool.tailSqMem+tail.Mem*tail.Mem)
			if p.usedMem[hi]+it.Demand.Mem+memTerm > p.capMem+1e-9 {
				continue
			}
			if !plain && s.Constraints.Permits(it.ID, p.hosts[hi].ID, p) != nil {
				continue
			}
			chosen, corrMax = hi, cMax
			break
		}
		if chosen < 0 {
			for attempts := 0; attempts < 1+len(s.Constraints); attempts++ {
				h := p.OpenHost()
				finder.grow(len(p.hosts))
				pools = append(pools, hostPool{})
				resCorr = append(resCorr, nil)
				if s.Constraints.Permits(it.ID, h.ID, p) != nil {
					continue
				}
				chosen, corrMax = len(p.hosts)-1, 0
				break
			}
			if chosen < 0 {
				return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
			}
		}
		pool := &pools[chosen]
		pool.maxCorr = math.Max(pool.maxCorr, corrMax)
		pool.tailSumCPU += tail.CPU
		pool.tailSqCPU += tail.CPU * tail.CPU
		pool.tailSumMem += tail.Mem
		pool.tailSqMem += tail.Mem * tail.Mem
		p.assignAt(vi, chosen, it)
		m := pool.maxCorr
		finder.set(chosen,
			p.usedCPU[chosen]+m*pool.tailSumCPU+(1-m)*math.Sqrt(pool.tailSqCPU),
			p.usedMem[chosen]+m*pool.tailSumMem+(1-m)*math.Sqrt(pool.tailSqMem))
		if useIdx {
			resCorr[chosen] = append(resCorr[chosen], ci)
		}
	}
	return nil
}
