package placement

import (
	"fmt"
	"math"
	"sort"

	"vmwild/internal/constraints"
	"vmwild/internal/trace"
)

// CorrFunc returns the Pearson correlation of CPU demand between two
// servers, in [-1, 1].
type CorrFunc func(a, b trace.ServerID) float64

// PCP is the correlation-aware stochastic packer modeled on [27]. Each VM's
// body (90th-percentile demand) is reserved outright. Tail buffers
// (max - body) are pooled per host: the pooled reservation interpolates
// between root-sum-square pooling (independent peaks) and plain summation
// (fully correlated peaks) according to the strongest positive pairwise
// correlation among the co-located VMs:
//
//	tailTerm = rho * sum(tails) + (1-rho) * sqrt(sum(tails^2))
//
// Using the strongest (not average) correlation keeps the sizing safe: one
// pair of co-moving workloads is enough to make their peaks coincide, and a
// production planner must reserve for that. Negatively or un-correlated
// workloads share their peak headroom, while placing positively correlated
// workloads together buys nothing — the property that keeps semi-static
// consolidation honest for workloads whose bursts coincide (Observation 5).
type PCP struct {
	// HostSpec is the raw capacity of the target hosts.
	HostSpec trace.Spec
	// Bound is the usable fraction of each host in (0, 1].
	Bound float64
	// RackSize is the number of hosts per rack.
	RackSize int
	// Constraints veto candidate assignments.
	Constraints constraints.Set
	// Corr supplies pairwise CPU-demand correlations; nil treats all
	// pairs as uncorrelated.
	Corr CorrFunc
	// MaxAvgCorr, when positive, additionally vetoes hosts whose average
	// correlation with the candidate would exceed the threshold, forcing
	// strongly co-moving workloads apart.
	MaxAvgCorr float64
}

// hostPool accumulates the per-host tail statistics PCP admission needs.
type hostPool struct {
	tailSumCPU, tailSqCPU float64
	tailSumMem, tailSqMem float64
	maxCorr               float64
}

// Pack places all items and returns the resulting placement.
func (s PCP) Pack(items []Item) (*Placement, error) {
	p, err := NewPlacement(s.HostSpec, s.Bound, s.RackSize)
	if err != nil {
		return nil, err
	}
	pools := make(map[string]*hostPool)

	sorted := make([]Item, len(items))
	copy(sorted, items)
	key := func(it Item) float64 {
		cpu := math.Max(it.Demand.CPU, it.Tail.CPU)
		mem := math.Max(it.Demand.Mem, it.Tail.Mem)
		return math.Max(cpu/s.HostSpec.CPURPE2, mem/s.HostSpec.MemMB)
	}
	sort.Slice(sorted, func(i, j int) bool {
		ki, kj := key(sorted[i]), key(sorted[j])
		if ki != kj {
			return ki > kj
		}
		return sorted[i].ID < sorted[j].ID
	})

	for _, it := range sorted {
		if err := s.place(p, pools, it); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (s PCP) place(p *Placement, pools map[string]*hostPool, it Item) error {
	cap := p.Capacity()
	if it.Tail.CPU > cap.CPU+1e-9 || it.Tail.Mem > cap.Mem+1e-9 || it.Demand.CPU > cap.CPU+1e-9 || it.Demand.Mem > cap.Mem+1e-9 {
		return fmt.Errorf("placement: %s envelope exceeds host capacity", it.ID)
	}
	for _, h := range p.Hosts() {
		pool := pools[h.ID]
		ok, corrMax := s.admits(p, pool, h.ID, it)
		if !ok {
			continue
		}
		if s.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		s.commit(p, pools, h.ID, it, corrMax)
		return p.Assign(it, h.ID)
	}
	for attempts := 0; attempts < 1+len(s.Constraints); attempts++ {
		h := p.OpenHost()
		pools[h.ID] = &hostPool{}
		if err := s.Constraints.Permits(it.ID, h.ID, p); err != nil {
			continue
		}
		s.commit(p, pools, h.ID, it, 0)
		return p.Assign(it, h.ID)
	}
	return fmt.Errorf("placement: constraints leave no feasible host for %s", it.ID)
}

// admits evaluates the PCP envelope test for adding it to host. It returns
// the candidate's strongest positive correlation against residents so
// commit can reuse it.
func (s PCP) admits(p *Placement, pool *hostPool, host string, it Item) (bool, float64) {
	if pool == nil {
		return false, 0
	}
	residents := p.VMsOn(host)
	var corrSum, corrMax float64
	if s.Corr != nil {
		for _, r := range residents {
			c := math.Max(0, s.Corr(it.ID, r))
			corrSum += c
			corrMax = math.Max(corrMax, c)
		}
	}
	if s.MaxAvgCorr > 0 && len(residents) > 0 {
		if corrSum/float64(len(residents)) > s.MaxAvgCorr {
			return false, corrMax
		}
	}
	rho := math.Max(pool.maxCorr, corrMax)

	tail := it.tailBuffer()
	used := p.Used(host)
	cap := p.Capacity()

	cpuTerm := rho*(pool.tailSumCPU+tail.CPU) + (1-rho)*math.Sqrt(pool.tailSqCPU+tail.CPU*tail.CPU)
	if used.CPU+it.Demand.CPU+cpuTerm > cap.CPU+1e-9 {
		return false, corrSum
	}
	memTerm := rho*(pool.tailSumMem+tail.Mem) + (1-rho)*math.Sqrt(pool.tailSqMem+tail.Mem*tail.Mem)
	if used.Mem+it.Demand.Mem+memTerm > cap.Mem+1e-9 {
		return false, corrMax
	}
	return true, corrMax
}

func (s PCP) commit(p *Placement, pools map[string]*hostPool, host string, it Item, corrMax float64) {
	pool := pools[host]
	tail := it.tailBuffer()
	pool.maxCorr = math.Max(pool.maxCorr, corrMax)
	pool.tailSumCPU += tail.CPU
	pool.tailSqCPU += tail.CPU * tail.CPU
	pool.tailSumMem += tail.Mem
	pool.tailSqMem += tail.Mem * tail.Mem
}
