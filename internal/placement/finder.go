package placement

import "math"

// hostFinder answers "leftmost host from index i whose body demand fits" in
// O(log H) for the common case, replacing the packers' linear first-fit
// scans (O(H) per item, O(n·H) per pack — the term that dominates at 100k
// VMs). It is a segment tree over host indices storing subtree minima of
// used CPU and memory.
//
// Pruning is sound under float arithmetic: float addition is monotone
// non-decreasing in each operand, so if fl(minUsed+d) exceeds the capacity
// test threshold, fl(used[i]+d) does for every host in the subtree — no
// feasible leaf is ever skipped. Leaves apply the placement's exact fit
// expression, so the host selected is bit-for-bit the one the linear scan
// would pick. Both resources must fit on one host; subtree minima can come
// from different leaves, so a passing interior node still requires descent
// (with backtracking), which stays cheap because packing keeps the
// feasibility frontier narrow.
type hostFinder struct {
	p      *Placement
	size   int // leaves (power of two), >= len(p.hosts)
	minCPU []float64
	minMem []float64
}

// newHostFinder builds the tree over the placement's current hosts.
func newHostFinder(p *Placement) *hostFinder {
	f := &hostFinder{p: p}
	f.rebuild()
	return f
}

// rebuild sizes the tree for the current host count and recomputes it.
func (f *hostFinder) rebuild() {
	n := len(f.p.hosts)
	size := 1
	for size < n {
		size *= 2
	}
	f.size = size
	f.minCPU = make([]float64, 2*size)
	f.minMem = make([]float64, 2*size)
	for i := 0; i < size; i++ {
		if i < n {
			f.minCPU[size+i] = f.p.usedCPU[i]
			f.minMem[size+i] = f.p.usedMem[i]
		} else {
			f.minCPU[size+i] = math.Inf(1)
			f.minMem[size+i] = math.Inf(1)
		}
	}
	for i := size - 1; i >= 1; i-- {
		f.minCPU[i] = math.Min(f.minCPU[2*i], f.minCPU[2*i+1])
		f.minMem[i] = math.Min(f.minMem[2*i], f.minMem[2*i+1])
	}
}

// update refreshes host i after its used demand changed; hostAdded grows
// the tree when a new host was opened.
func (f *hostFinder) update(i int) {
	k := f.size + i
	f.minCPU[k] = f.p.usedCPU[i]
	f.minMem[k] = f.p.usedMem[i]
	for k >>= 1; k >= 1; k >>= 1 {
		f.minCPU[k] = math.Min(f.minCPU[2*k], f.minCPU[2*k+1])
		f.minMem[k] = math.Min(f.minMem[2*k], f.minMem[2*k+1])
	}
}

func (f *hostFinder) hostAdded() {
	if len(f.p.hosts) > f.size {
		f.rebuild()
		return
	}
	f.update(len(f.p.hosts) - 1)
}

// firstFit returns the leftmost host index >= from where both resources
// fit (the placement's exact FitsAt test), or -1.
func (f *hostFinder) firstFit(from int, dCPU, dMem float64) int {
	n := len(f.p.hosts)
	if from >= n {
		return -1
	}
	return f.search(1, 0, f.size, from, dCPU, dMem)
}

func (f *hostFinder) search(node, lo, hi, from int, dCPU, dMem float64) int {
	if hi <= from {
		return -1
	}
	if f.minCPU[node]+dCPU > f.p.capCPU+1e-9 || f.minMem[node]+dMem > f.p.capMem+1e-9 {
		return -1
	}
	if hi-lo == 1 {
		// The node test above IS the exact leaf test: minCPU[leaf] is
		// usedCPU[lo] itself.
		if lo < len(f.p.hosts) {
			return lo
		}
		return -1
	}
	mid := (lo + hi) / 2
	if r := f.search(2*node, lo, mid, from, dCPU, dMem); r >= 0 {
		return r
	}
	return f.search(2*node+1, mid, hi, from, dCPU, dMem)
}

// minTree is the generalized sibling of hostFinder: a segment tree of
// subtree minima over caller-supplied per-host values with caller-supplied
// pass thresholds. The PCP packer uses it over "effective load" (body used
// plus the root-sum-square of pooled tails) — a provable lower bound on the
// admission test's left-hand side — so tail-saturated hosts are pruned in
// O(log H) without touching their correlation state. Thresholds include a
// slack that absorbs the float error of the bound, so the tree only ever
// under-prunes: every host the exact admission test could accept is
// enumerated, in the same leftmost-first order as a linear scan.
type minTree struct {
	n              int // live leaves
	size           int // allocated leaves (power of two), >= n
	tolCPU, tolMem float64
	minCPU, minMem []float64
}

func newMinTree(tolCPU, tolMem float64) *minTree {
	return &minTree{tolCPU: tolCPU, tolMem: tolMem}
}

// grow extends the tree to n leaves; new leaves start at 0 (a fresh host
// with nothing on it). Existing leaf values are preserved across resizes.
func (t *minTree) grow(n int) {
	if n <= t.n {
		return
	}
	if n > t.size {
		size := 1
		for size < n {
			size *= 2
		}
		old := t.minCPU
		oldMem := t.minMem
		oldSize := t.size
		t.minCPU = make([]float64, 2*size)
		t.minMem = make([]float64, 2*size)
		for i := 0; i < size; i++ {
			if i < t.n {
				t.minCPU[size+i] = old[oldSize+i]
				t.minMem[size+i] = oldMem[oldSize+i]
			} else if i >= n {
				t.minCPU[size+i] = math.Inf(1)
				t.minMem[size+i] = math.Inf(1)
			}
		}
		t.size = size
		t.n = n
		for i := size - 1; i >= 1; i-- {
			t.minCPU[i] = math.Min(t.minCPU[2*i], t.minCPU[2*i+1])
			t.minMem[i] = math.Min(t.minMem[2*i], t.minMem[2*i+1])
		}
		return
	}
	for i := t.n; i < n; i++ {
		t.set(i, 0, 0)
	}
	t.n = n
}

// set writes host i's values and refreshes the path to the root.
func (t *minTree) set(i int, cpu, mem float64) {
	k := t.size + i
	t.minCPU[k] = cpu
	t.minMem[k] = mem
	for k >>= 1; k >= 1; k >>= 1 {
		t.minCPU[k] = math.Min(t.minCPU[2*k], t.minCPU[2*k+1])
		t.minMem[k] = math.Min(t.minMem[2*k], t.minMem[2*k+1])
	}
}

// firstFit returns the leftmost host index >= from whose values pass both
// thresholds after adding the demands, or -1.
func (t *minTree) firstFit(from int, dCPU, dMem float64) int {
	if from >= t.n || t.n == 0 {
		return -1
	}
	return t.search(1, 0, t.size, from, dCPU, dMem)
}

func (t *minTree) search(node, lo, hi, from int, dCPU, dMem float64) int {
	if hi <= from {
		return -1
	}
	if t.minCPU[node]+dCPU > t.tolCPU || t.minMem[node]+dMem > t.tolMem {
		return -1
	}
	if hi-lo == 1 {
		if lo < t.n {
			return lo
		}
		return -1
	}
	mid := (lo + hi) / 2
	if r := t.search(2*node, lo, mid, from, dCPU, dMem); r >= 0 {
		return r
	}
	return t.search(2*node+1, mid, hi, from, dCPU, dMem)
}
