package stats

import (
	"math"
	"math/rand"
)

// Distribution helpers used by the synthetic workload generator. All take an
// explicit *rand.Rand so experiments stay deterministic under a fixed seed.

// LogNormal draws from a log-normal distribution with the given parameters of
// the underlying normal (mu, sigma). Sigma must be non-negative.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Pareto draws from a Pareto (type I) distribution with scale xm > 0 and
// shape alpha > 0. Smaller alpha means a heavier tail; alpha <= 1 has
// infinite mean.
func Pareto(r *rand.Rand, xm, alpha float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
