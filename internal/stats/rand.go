package stats

import (
	"math"
	"math/rand"
)

// Distribution helpers used by the synthetic workload generator. All take an
// explicit *rand.Rand so experiments stay deterministic under a fixed seed.

// LogNormal draws from a log-normal distribution with the given parameters of
// the underlying normal (mu, sigma). Sigma must be non-negative.
func LogNormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Pareto draws from a Pareto (type I) distribution with scale xm > 0 and
// shape alpha > 0. Smaller alpha means a heavier tail; alpha <= 1 has
// infinite mean.
func Pareto(r *rand.Rand, xm, alpha float64) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}

// Seed derivation. Everything random in the system flows from one root seed;
// concurrent work must never share a stream (results would depend on
// scheduling order), so sub-streams are derived by hashing the root with a
// stable identity — a numeric index (Derive) or a label path (Split).

// Derive mixes a root seed with a numeric stream index into an
// independent-looking sub-seed (splitmix64 finalizer). The same (seed, idx)
// pair always yields the same sub-seed, regardless of call order.
func Derive(seed, idx int64) int64 {
	z := uint64(seed) + uint64(idx)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}

// Split derives a sub-seed from a root seed and a label path, e.g.
// Split(root, "B", "dynamic", "bound=0.85") for one experiment cell. Labels
// are hashed FNV-1a style with a terminator per label, so ("ab", "c") and
// ("a", "bc") derive different seeds; the digest is then finalized through
// Derive. Splitting by identity instead of drawing from a shared stream is
// what keeps parallel sweeps byte-identical to sequential ones.
func Split(seed int64, labels ...string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, label := range labels {
		for i := 0; i < len(label); i++ {
			h = (h ^ uint64(label[i])) * prime64
		}
		h = (h ^ 0x1F) * prime64 // label terminator: path, not concatenation
	}
	return Derive(seed, int64(h))
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
