package stats

import (
	"math/rand"
	"testing"
)

// TestDeriveStability pins the splitmix64 derivation: these values are load-
// bearing — the synthetic workload generator seeds every server from them,
// so a change here silently regenerates every trace and drifts the whole
// report. The cases mirror the generator's actual call shapes.
func TestDeriveStability(t *testing.T) {
	const root = 20141208 // workload.DefaultSeed
	tests := []struct {
		idx  int64
		want int64
	}{
		{idx: 0, want: Derive(root, 0)},       // self-consistency anchor
		{idx: 424_242, want: Derive(root, 424_242)},
		{idx: 77_777, want: Derive(root, 77_777)},
	}
	for _, tt := range tests {
		if got := Derive(root, tt.idx); got != tt.want {
			t.Errorf("Derive(%d, %d) unstable: %d then %d", int64(root), tt.idx, tt.want, got)
		}
		if got := Derive(root, tt.idx); got < 0 {
			t.Errorf("Derive(%d, %d) = %d, want non-negative", int64(root), tt.idx, got)
		}
	}
	// The exact splitmix64 finalizer, independently computed.
	var rootVar, idxVar uint64 = root, 424_242
	z := rootVar + idxVar*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if want := int64(z & (1<<63 - 1)); Derive(root, 424_242) != want {
		t.Errorf("Derive(root, 424242) = %d, want %d (splitmix64 drifted)", Derive(root, 424_242), want)
	}
}

// TestDeriveIndependence: nearby indexes yield uncorrelated streams (the
// per-server sub-seeds are consecutive integers).
func TestDeriveIndependence(t *testing.T) {
	const root = 20141208
	seen := make(map[int64]int64, 4096)
	for idx := int64(0); idx < 4096; idx++ {
		s := Derive(root, idx)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Derive collision: idx %d and %d both map to %d", prev, idx, s)
		}
		seen[s] = idx
	}
	// Streams from adjacent sub-seeds should decorrelate immediately.
	a := rand.New(rand.NewSource(Derive(root, 1)))
	b := rand.New(rand.NewSource(Derive(root, 2)))
	same := 0
	for i := 0; i < 64; i++ {
		if (a.Float64() < 0.5) == (b.Float64() < 0.5) {
			same++
		}
	}
	if same < 16 || same > 48 {
		t.Errorf("adjacent streams agree on %d/64 bits, want ~32", same)
	}
}

// TestSplitPathSensitivity: Split hashes the label path, not the label
// concatenation, and is stable across calls.
func TestSplitPathSensitivity(t *testing.T) {
	const root = 20141208
	if Split(root, "A", "dynamic") != Split(root, "A", "dynamic") {
		t.Error("Split must be deterministic")
	}
	pairs := [][2][]string{
		{{"A", "dynamic"}, {"Adynamic"}},
		{{"ab", "c"}, {"a", "bc"}},
		{{"A", "dynamic"}, {"A", "stochastic"}},
		{{"A"}, {"A", ""}},
		{{}, {""}},
	}
	for _, p := range pairs {
		if Split(root, p[0]...) == Split(root, p[1]...) {
			t.Errorf("Split(%v) == Split(%v), want distinct", p[0], p[1])
		}
	}
	if Split(root, "A") == Split(root+1, "A") {
		t.Error("different roots must split differently")
	}
	if Split(root, "A", "dynamic", "bound=0.85") < 0 {
		t.Error("Split must return a non-negative seed")
	}
}

// TestSplitSpreads: cell labels of a realistic grid produce collision-free,
// roughly uniform seeds.
func TestSplitSpreads(t *testing.T) {
	const root = 20141208
	dcs := []string{"A", "B", "C", "D"}
	planners := []string{"semi-static", "stochastic", "dynamic"}
	knobs := []string{"", "bound=0.70", "bound=0.85", "interval=1h", "interval=4h", "predictor=ewma"}
	seen := make(map[int64][]string)
	low := 0
	for _, dc := range dcs {
		for _, pl := range planners {
			for _, k := range knobs {
				s := Split(root, dc, pl, k)
				if prev, dup := seen[s]; dup {
					t.Fatalf("grid seed collision: %v vs %v", prev, []string{dc, pl, k})
				}
				seen[s] = []string{dc, pl, k}
				if s < 1<<62 {
					low++
				}
			}
		}
	}
	// Non-negative 63-bit outputs: about half fall below 2^62.
	if low == 0 || low == len(seen) {
		t.Errorf("seeds not spread: %d/%d below 2^62", low, len(seen))
	}
}
