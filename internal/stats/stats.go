// Package stats provides the numeric substrate for the vmwild library:
// summary statistics, percentiles, empirical CDFs, histograms and Pearson
// correlation over float64 samples.
//
// All functions are pure and allocate only when they must copy their input
// (percentile computations sort a copy; callers' slices are never reordered).
// NaN handling: functions return an error or a defined zero result for empty
// input rather than propagating NaN silently.
package stats

import (
	"errors"
	"math"
)

// ErrEmpty is returned by functions that cannot produce a meaningful result
// for an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Max returns the maximum of xs, or 0 if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs (dividing by n, not n-1).
// It returns 0 for samples with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// CoV returns the coefficient of variability (standard deviation divided by
// mean) of xs. The paper uses CoV >= 1 as the heavy-tail indicator. A zero or
// negative mean yields CoV 0, since the ratio is meaningless for demand data
// that should be non-negative.
func CoV(xs []float64) float64 {
	mu := Mean(xs)
	if mu <= 0 {
		return 0
	}
	return StdDev(xs) / mu
}

// PeakToAverage returns the ratio of the maximum to the mean of xs. A zero or
// negative mean yields 0 (an all-idle server has no meaningful burstiness).
func PeakToAverage(xs []float64) float64 {
	mu := Mean(xs)
	if mu <= 0 {
		return 0
	}
	return Max(xs) / mu
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It copies xs; only the two order
// statistics the interpolation touches are selected, not a full sort — order
// statistics are properties of the multiset, so the result is identical to
// sorting first.
func Percentile(xs []float64, p float64) (float64, error) {
	return PercentileInto(nil, xs, p)
}

// PercentileInto is Percentile with a caller-provided working buffer,
// reused when its capacity covers the sample — for callers that take the
// same percentile of many samples in a row. The computation is identical.
func PercentileInto(scratch, xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	if cap(scratch) < len(xs) {
		scratch = make([]float64, len(xs))
	}
	scratch = scratch[:len(xs)]
	copy(scratch, xs)
	if len(scratch) == 1 {
		return scratch[0], nil
	}
	rank := p / 100 * float64(len(scratch)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	vlo := selectKth(scratch, lo)
	if lo == hi {
		return vlo, nil
	}
	// selectKth leaves everything ranked above lo in scratch[lo+1:], so the
	// (lo+1)-th order statistic is that suffix's minimum.
	vhi := Min(scratch[lo+1:])
	frac := rank - float64(lo)
	return vlo*(1-frac) + vhi*frac, nil
}

// selectKth partially orders xs in place (Hoare partitioning, median-of-three
// pivots) so that xs[k] holds the k-th smallest element, everything before it
// compares <= and everything after >=, and returns xs[k].
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
	return xs[k]
}

// percentileSorted computes the percentile of an already-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It returns an error if the slices differ in length or have fewer than two
// elements, and 0 if either series is constant (zero variance).
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: correlation inputs differ in length")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
