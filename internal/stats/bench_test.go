package stats

import (
	"math/rand"
	"testing"
)

func benchSample(n int) []float64 {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	return xs
}

func BenchmarkPercentile720(b *testing.B) {
	xs := benchSample(720)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Percentile(xs, 90); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrelation720(b *testing.B) {
	xs, ys := benchSample(720), benchSample(720)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Correlation(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCDF(b *testing.B) {
	xs := benchSample(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := NewCDF(xs)
		if err != nil {
			b.Fatal(err)
		}
		_ = c.Quantile(0.9)
	}
}
