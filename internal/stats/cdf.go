package stats

import (
	"errors"
	"sort"
)

// CDF is an empirical cumulative distribution function over a finite sample.
// The zero value is not usable; build one with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x): the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// advance past equal elements to make the CDF right-continuous.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// FractionAbove returns P(X > x), the complement of At.
func (c *CDF) FractionAbove(x float64) float64 { return 1 - c.At(x) }

// Quantile returns the value at cumulative probability q in [0, 1], using
// linear interpolation between closest ranks.
func (c *CDF) Quantile(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return percentileSorted(c.sorted, q*100)
}

// Median returns the 50th percentile of the sample.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Points returns n evenly spaced (value, cumulative probability) points
// suitable for plotting or tabulating the CDF. n must be at least 2.
func (c *CDF) Points(n int) ([]Point, error) {
	if n < 2 {
		return nil, errors.New("stats: CDF.Points requires n >= 2")
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		pts[i] = Point{X: c.Quantile(q), P: q}
	}
	return pts, nil
}

// Point is a single (value, cumulative probability) point on a CDF.
type Point struct {
	X float64 // sample value
	P float64 // cumulative probability in [0, 1]
}

// Histogram counts samples into uniform-width bins over [lo, hi). Samples
// below lo land in the first bin, samples at or above hi in the last.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins uniform bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		return nil, errors.New("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(bins))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of samples in bin i, or 0 when empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
