package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Error("expected error for empty sample")
	}
}

func TestCDFAt(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{name: "below all", x: 0, want: 0},
		{name: "at min", x: 1, want: 0.25},
		{name: "at duplicate", x: 2, want: 0.75},
		{name: "between", x: 2.5, want: 0.75},
		{name: "at max", x: 3, want: 1},
		{name: "above all", x: 10, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := c.At(tt.x); got != tt.want {
				t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

func TestCDFFractionAbove(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.FractionAbove(2); got != 0.5 {
		t.Errorf("FractionAbove(2) = %v, want 0.5", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c, err := NewCDF([]float64{10, 20, 30, 40, 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %v, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %v, want 50", got)
	}
	if got := c.Median(); got != 30 {
		t.Errorf("Median = %v, want 30", got)
	}
	// Out-of-range q is clamped.
	if got := c.Quantile(-0.5); got != 10 {
		t.Errorf("Quantile(-0.5) = %v, want 10", got)
	}
	if got := c.Quantile(1.5); got != 50 {
		t.Errorf("Quantile(1.5) = %v, want 50", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Points(1); err == nil {
		t.Error("expected error for n < 2")
	}
	pts, err := c.Points(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	if pts[0].X != 1 || pts[0].P != 0 {
		t.Errorf("first point = %+v, want {1 0}", pts[0])
	}
	if pts[2].X != 3 || pts[2].P != 1 {
		t.Errorf("last point = %+v, want {3 1}", pts[2])
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.5, 5, 9.99, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	// -1, 0, 1.5 fall in bin 0; 5 in bin 2; 9.99, 10, 100 in bin 4.
	if h.Counts[0] != 3 {
		t.Errorf("bin 0 count = %d, want 3", h.Counts[0])
	}
	if h.Counts[2] != 1 {
		t.Errorf("bin 2 count = %d, want 1", h.Counts[2])
	}
	if h.Counts[4] != 3 {
		t.Errorf("bin 4 count = %d, want 3", h.Counts[4])
	}
	if got := h.Fraction(0); got != 3.0/7.0 {
		t.Errorf("Fraction(0) = %v", got)
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("expected error for empty range")
	}
}

// Property: CDF.At is monotone non-decreasing and bounded in [0,1].
func TestQuickCDFMonotone(t *testing.T) {
	f := func(seed int64, n uint8, a, b float64) bool {
		m := int(n%100) + 1
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		if a > b {
			a, b = b, a
		}
		pa, pb := c.At(a), c.At(b)
		return pa <= pb && pa >= 0 && pb <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and At are approximately inverse.
func TestQuickCDFQuantileRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8, qRaw uint8) bool {
		m := int(n%100) + 2
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		q := float64(qRaw%101) / 100
		v := c.Quantile(q)
		// At(v) must be at least q minus one sample's worth of slack.
		return c.At(v) >= q-1.0/float64(m)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributionHelpers(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if v := LogNormal(r, 0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
		if v := Pareto(r, 2, 1.5); v < 2 {
			t.Fatalf("Pareto produced value %v below scale 2", v)
		}
	}
	// Bernoulli(1) is always true, Bernoulli(0) always false.
	if !Bernoulli(r, 1) {
		t.Error("Bernoulli(1) should be true")
	}
	if Bernoulli(r, 0) {
		t.Error("Bernoulli(0) should be false")
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		x, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.x, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.x, tt.lo, tt.hi, got, tt.want)
		}
	}
}
