package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSum(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{3.5}, want: 3.5},
		{name: "mixed signs", give: []float64{1, -2, 3}, want: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.give); got != tt.want {
				t.Errorf("Sum(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "constant", give: []float64{4, 4, 4}, want: 4},
		{name: "simple", give: []float64{1, 2, 3, 4}, want: 2.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestMaxMin(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("Max/Min of empty slice should be 0")
	}
}

func TestVariance(t *testing.T) {
	// Population variance of {2,4,4,4,5,5,7,9} is 4 (classic example).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if Variance([]float64{42}) != 0 {
		t.Error("Variance of single sample should be 0")
	}
}

func TestCoV(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "constant series has zero CoV", give: []float64{5, 5, 5}, want: 0},
		{name: "zero mean yields zero", give: []float64{0, 0}, want: 0},
		{name: "classic", give: []float64{2, 4, 4, 4, 5, 5, 7, 9}, want: 2.0 / 5.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CoV(tt.give); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("CoV(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestPeakToAverage(t *testing.T) {
	if got := PeakToAverage([]float64{1, 1, 1, 5}); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("PeakToAverage = %v, want 2.5", got)
	}
	if PeakToAverage([]float64{0, 0}) != 0 {
		t.Error("PeakToAverage of idle series should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		name string
		p    float64
		want float64
	}{
		{name: "p0 is min", p: 0, want: 15},
		{name: "p100 is max", p: 100, want: 50},
		{name: "p50 is median", p: 50, want: 35},
		{name: "p25 interpolates", p: 25, want: 20},
		{name: "p90 interpolates", p: 90, want: 46},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Percentile(xs, tt.p)
			if err != nil {
				t.Fatalf("Percentile returned error: %v", err)
			}
			if !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("expected error for p < 0")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("expected error for p > 100")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestCorrelation(t *testing.T) {
	tests := []struct {
		name    string
		xs, ys  []float64
		want    float64
		wantErr bool
	}{
		{name: "perfect positive", xs: []float64{1, 2, 3}, ys: []float64{2, 4, 6}, want: 1},
		{name: "perfect negative", xs: []float64{1, 2, 3}, ys: []float64{6, 4, 2}, want: -1},
		{name: "constant series", xs: []float64{1, 2, 3}, ys: []float64{5, 5, 5}, want: 0},
		{name: "length mismatch", xs: []float64{1, 2}, ys: []float64{1}, wantErr: true},
		{name: "too short", xs: []float64{1}, ys: []float64{1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Correlation(tt.xs, tt.ys)
			if (err != nil) != tt.wantErr {
				t.Fatalf("error = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Correlation = %v, want %v", got, tt.want)
			}
		})
	}
}

// Property: for any non-empty sample, Min <= Mean <= Max.
func TestQuickMeanBetweenMinAndMax(t *testing.T) {
	f := func(xs []float64) bool {
		xs = sanitize(xs)
		if len(xs) == 0 {
			return true
		}
		mu := Mean(xs)
		return Min(xs) <= mu+1e-9 && mu <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone non-decreasing in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		xs = sanitize(xs)
		if len(xs) == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		va, err := Percentile(xs, pa)
		if err != nil {
			return false
		}
		vb, err := Percentile(xs, pb)
		if err != nil {
			return false
		}
		return va <= vb+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: correlation is symmetric and bounded in [-1, 1].
func TestQuickCorrelationSymmetricBounded(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		m := int(n%50) + 2
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		cxy, err := Correlation(xs, ys)
		if err != nil {
			return false
		}
		cyx, err := Correlation(ys, xs)
		if err != nil {
			return false
		}
		return almostEqual(cxy, cyx, 1e-9) && cxy >= -1-1e-9 && cxy <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: variance is translation invariant.
func TestQuickVarianceTranslationInvariant(t *testing.T) {
	f := func(xs []float64, shift float64) bool {
		xs = sanitize(xs)
		if len(xs) < 2 || math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			return true
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		v1, v2 := Variance(xs), Variance(shifted)
		scale := math.Max(1, math.Max(v1, v2))
		return almostEqual(v1/scale, v2/scale, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitize drops NaN/Inf and extreme magnitudes that make float comparisons
// meaningless in property tests.
func sanitize(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
			continue
		}
		out = append(out, x)
	}
	return out
}
