// Package executor implements the Execution step of the consolidation flow
// (Section 2.1): turning a placement change into an ordered schedule of
// live migrations that respects link bandwidth, per-host migration
// concurrency and capacity feasibility at every intermediate state.
//
// This is the step whose "uncertainty in duration and impact" the paper
// identifies as the reason real data centers avoid dynamic consolidation
// (Section 1.2): a re-planned interval is only as good as the migration
// wave that realizes it, and that wave must finish well inside the
// consolidation interval. ScheduleStudy in internal/experiments uses this
// package to measure exactly that.
package executor

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"vmwild/internal/migration"
	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// Move is one VM relocation.
type Move struct {
	VM   trace.ServerID
	From string
	To   string
	// Demand is the VM's reservation, used for capacity feasibility and
	// migration cost (memory volume, CPU-derived dirty rate).
	Demand sizing.Demand
}

// ErrDeadlock is returned when no feasible migration order exists without
// a spare host (cyclic space dependencies).
var ErrDeadlock = errors.New("executor: cyclic space dependency, enable a spare host")

// Diff computes the moves that turn placement from into placement to. Both
// placements must contain exactly the same VMs; demands are taken from the
// target placement (the post-resize reservations).
func Diff(from, to *placement.Placement) ([]Move, error) {
	if from == nil || to == nil {
		return nil, errors.New("executor: nil placement")
	}
	if from.NumVMs() != to.NumVMs() {
		return nil, fmt.Errorf("executor: placements hold %d vs %d VMs", from.NumVMs(), to.NumVMs())
	}
	var moves []Move
	for _, h := range to.Hosts() {
		for _, vm := range to.VMsOn(h.ID) {
			src, ok := from.HostOf(vm)
			if !ok {
				return nil, fmt.Errorf("executor: VM %s missing from source placement", vm)
			}
			if src == h.ID {
				continue
			}
			it, _ := to.Item(vm)
			moves = append(moves, Move{VM: vm, From: src, To: h.ID, Demand: it.Demand})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].VM < moves[j].VM })
	return moves, nil
}

// Config tunes the migration scheduler.
type Config struct {
	// Migration parameterizes per-move durations (pre-copy model).
	Migration migration.Config
	// MaxPerHost bounds concurrent migrations touching one host as
	// source or target (default 1 — VMware's per-host vMotion guidance
	// for gigabit links).
	MaxPerHost int
	// MaxConcurrent bounds simultaneous migrations in the whole data
	// center (network fabric limit, default 8).
	MaxConcurrent int
	// SpareHost allows the scheduler to bounce one VM through a
	// temporary staging host to break cyclic space dependencies; the
	// bounced VM migrates twice.
	SpareHost bool
	// PostCopy costs moves with the target-driven post-copy model
	// instead of iterative pre-copy (the Section 7 improvement).
	PostCopy bool
}

// DefaultConfig returns the baseline execution settings.
func DefaultConfig() Config {
	return Config{
		Migration:     migration.DefaultConfig(),
		MaxPerHost:    1,
		MaxConcurrent: 8,
	}
}

func (c Config) withDefaults() Config {
	if c.MaxPerHost <= 0 {
		c.MaxPerHost = 1
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.Migration.LinkMBps <= 0 {
		c.Migration = migration.DefaultConfig()
	}
	return c
}

// Wave is one batch of migrations that run concurrently; the wave lasts as
// long as its slowest migration.
type Wave struct {
	Moves    []Move
	Duration time.Duration
}

// Plan is a feasible execution schedule.
type Plan struct {
	Waves []Wave
	// Total is the end-to-end execution time (waves are sequential).
	Total time.Duration
	// DataMB is the total network volume, including pre-copy re-sends.
	DataMB float64
	// Bounced counts VMs that had to stage through the spare host.
	Bounced int
}

// Moves returns the total number of migrations (bounced VMs count twice).
func (p *Plan) Moves() int {
	n := 0
	for _, w := range p.Waves {
		n += len(w.Moves)
	}
	return n
}

// ScheduleTransition plans the execution that turns placement from into
// placement to: every VM is first re-sized in place to its target
// reservation (resizing is free — no migration), then the relocations are
// scheduled with Schedule. It returns the plan and the underlying moves.
func ScheduleTransition(from, to *placement.Placement, cfg Config) (*Plan, []Move, error) {
	moves, err := Diff(from, to)
	if err != nil {
		return nil, nil, err
	}
	resized := from.Clone()
	for _, h := range to.Hosts() {
		for _, vm := range to.VMsOn(h.ID) {
			it, _ := to.Item(vm)
			if err := resized.UpdateDemand(vm, it.Demand); err != nil {
				return nil, nil, fmt.Errorf("executor: resize %s: %w", vm, err)
			}
		}
	}
	plan, err := Schedule(resized, moves, cfg)
	if err != nil {
		return nil, nil, err
	}
	return plan, moves, nil
}

// Schedule orders the moves into concurrent waves such that every
// intermediate state respects host capacity. The from placement must
// already carry execution-time reservations (see ScheduleTransition); it is
// not modified.
func Schedule(from *placement.Placement, moves []Move, cfg Config) (*Plan, error) {
	if from == nil {
		return nil, errors.New("executor: nil source placement")
	}
	cfg = cfg.withDefaults()
	plan := &Plan{}
	if len(moves) == 0 {
		return plan, nil
	}

	state := from.Clone()
	pending := append([]Move(nil), moves...)
	// Targets opened by the planner's later state may not exist in the
	// source placement yet; register them before scheduling.
	for _, mv := range moves {
		state.EnsureHost(mv.To)
	}
	var spares []string
	// Moves staged on a spare host still owe their hop to the real
	// target; spareOf records where each staged VM sits.
	staged := make(map[trace.ServerID]Move)
	spareOf := make(map[trace.ServerID]string)

	for len(pending) > 0 || len(staged) > 0 {
		var (
			wave     Wave
			busy     = make(map[string]int)
			selected []int
		)
		// Staged VMs go home first when their target has room
		// (sorted for determinism).
		var stagedIDs []trace.ServerID
		for vm := range staged {
			stagedIDs = append(stagedIDs, vm)
		}
		sort.Slice(stagedIDs, func(i, j int) bool { return stagedIDs[i] < stagedIDs[j] })
		for _, vm := range stagedIDs {
			mv := staged[vm]
			src := spareOf[vm]
			if len(wave.Moves) >= cfg.MaxConcurrent {
				break
			}
			if !state.Fits(mv.To, mv.Demand) || busy[src] >= cfg.MaxPerHost || busy[mv.To] >= cfg.MaxPerHost {
				continue
			}
			hop := Move{VM: vm, From: src, To: mv.To, Demand: mv.Demand}
			wave.Moves = append(wave.Moves, hop)
			busy[src]++
			busy[mv.To]++
			delete(staged, vm)
			delete(spareOf, vm)
		}
		for i, mv := range pending {
			if len(wave.Moves) >= cfg.MaxConcurrent {
				break
			}
			if busy[mv.From] >= cfg.MaxPerHost || busy[mv.To] >= cfg.MaxPerHost {
				continue
			}
			if !state.Fits(mv.To, mv.Demand) {
				continue
			}
			wave.Moves = append(wave.Moves, mv)
			busy[mv.From]++
			busy[mv.To]++
			selected = append(selected, i)
		}

		if len(wave.Moves) == 0 {
			if len(pending) == 0 {
				// Only staged VMs remain and none can go home yet;
				// with no pending departures this cannot resolve.
				return nil, ErrDeadlock
			}
			// Nothing fits: cyclic space dependency.
			if !cfg.SpareHost {
				return nil, ErrDeadlock
			}
			// Bounce the smallest pending VM through a spare host
			// with room, opening another spare if all are full.
			sort.Slice(pending, func(i, j int) bool {
				if pending[i].Demand.Mem != pending[j].Demand.Mem {
					return pending[i].Demand.Mem < pending[j].Demand.Mem
				}
				return pending[i].VM < pending[j].VM
			})
			mv := pending[0]
			spare := ""
			for _, s := range spares {
				if state.Fits(s, mv.Demand) {
					spare = s
					break
				}
			}
			if spare == "" {
				spare = state.OpenHost().ID
				spares = append(spares, spare)
			}
			wave.Moves = append(wave.Moves, Move{VM: mv.VM, From: mv.From, To: spare, Demand: mv.Demand})
			staged[mv.VM] = mv
			spareOf[mv.VM] = spare
			selected = append(selected, 0)
			plan.Bounced++
		}

		// Apply the wave to the state and cost it.
		var longest time.Duration
		for _, mv := range wave.Moves {
			it, ok := state.Item(mv.VM)
			if !ok {
				return nil, fmt.Errorf("executor: VM %s not in state", mv.VM)
			}
			if _, err := state.Remove(mv.VM); err != nil {
				return nil, err
			}
			it.Demand = mv.Demand
			if err := state.Assign(it, mv.To); err != nil {
				return nil, fmt.Errorf("executor: apply move of %s: %w", mv.VM, err)
			}
			memMB := max(mv.Demand.Mem, 64)
			var (
				dataMB   float64
				duration time.Duration
			)
			if cfg.PostCopy {
				pcCfg := migration.DefaultPostCopyConfig()
				pcCfg.LinkMBps = cfg.Migration.LinkMBps
				res, err := migration.SimulatePostCopy(memMB, memMB/4, pcCfg)
				if err != nil {
					return nil, err
				}
				dataMB, duration = res.TransferredMB, res.Duration
			} else {
				cost, err := migration.EstimateCost(memMB, vmUtil(mv.Demand, state), cfg.Migration)
				if err != nil {
					return nil, err
				}
				dataMB, duration = cost.DataMB, cost.Duration
			}
			plan.DataMB += dataMB
			if duration > longest {
				longest = duration
			}
		}
		wave.Duration = longest
		plan.Total += longest
		plan.Waves = append(plan.Waves, wave)

		// Drop executed moves from pending (indices shift; rebuild).
		if len(selected) > 0 {
			keep := pending[:0]
			sel := make(map[int]bool, len(selected))
			for _, i := range selected {
				sel[i] = true
			}
			for i, mv := range pending {
				if !sel[i] {
					keep = append(keep, mv)
				}
			}
			pending = keep
		}
	}
	return plan, nil
}

// vmUtil derives a busy-ness proxy for the dirty-rate model: the VM's CPU
// reservation as a fraction of its host's capacity.
func vmUtil(d sizing.Demand, p *placement.Placement) float64 {
	if p.Spec.CPURPE2 <= 0 {
		return 0
	}
	u := d.CPU / p.Spec.CPURPE2
	if u > 1 {
		u = 1
	}
	return u
}

// Drain plans the evacuation of one host for maintenance — the live
// migration use real data centers do adopt (Section 1.2: "VM live
// migration is often employed for high availability and server maintenance
// but not for dynamic VM consolidation"). Every VM on the host is
// relocated to the remaining hosts by first-fit over the emptiest targets;
// the returned schedule respects the usual concurrency and capacity rules.
func Drain(p *placement.Placement, host string, cfg Config) (*Plan, []Move, error) {
	if p == nil {
		return nil, nil, errors.New("executor: nil placement")
	}
	vms := append([]trace.ServerID(nil), p.VMsOn(host)...)
	if len(vms) == 0 {
		return &Plan{}, nil, nil
	}
	// Largest VMs first onto the emptiest hosts.
	sort.Slice(vms, func(i, j int) bool {
		a, _ := p.Item(vms[i])
		b, _ := p.Item(vms[j])
		if a.Demand.Mem != b.Demand.Mem {
			return a.Demand.Mem > b.Demand.Mem
		}
		return vms[i] < vms[j]
	})
	cap := p.Capacity()
	type slack struct{ cpu, mem float64 }
	residual := make(map[string]*slack)
	var targets []string
	for _, h := range p.Hosts() {
		if h.ID == host {
			continue
		}
		u := p.Used(h.ID)
		residual[h.ID] = &slack{cpu: cap.CPU - u.CPU, mem: cap.Mem - u.Mem}
		targets = append(targets, h.ID)
	}
	var moves []Move
	for _, vm := range vms {
		it, _ := p.Item(vm)
		// Emptiest-first keeps the drained load spread out.
		sort.Slice(targets, func(i, j int) bool {
			ri, rj := residual[targets[i]], residual[targets[j]]
			li := min(ri.cpu/cap.CPU, ri.mem/cap.Mem)
			lj := min(rj.cpu/cap.CPU, rj.mem/cap.Mem)
			if li != lj {
				return li > lj
			}
			return targets[i] < targets[j]
		})
		placed := false
		for _, tgt := range targets {
			r := residual[tgt]
			if it.Demand.CPU > r.cpu+1e-9 || it.Demand.Mem > r.mem+1e-9 {
				continue
			}
			r.cpu -= it.Demand.CPU
			r.mem -= it.Demand.Mem
			moves = append(moves, Move{VM: vm, From: host, To: tgt, Demand: it.Demand})
			placed = true
			break
		}
		if !placed {
			return nil, nil, fmt.Errorf("executor: no capacity to drain %s off %s", vm, host)
		}
	}
	plan, err := Schedule(p, moves, cfg)
	if err != nil {
		return nil, nil, err
	}
	return plan, moves, nil
}
