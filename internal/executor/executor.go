// Package executor implements the Execution step of the consolidation flow
// (Section 2.1): turning a placement change into an ordered schedule of
// live migrations that respects link bandwidth, per-host migration
// concurrency and capacity feasibility at every intermediate state.
//
// This is the step whose "uncertainty in duration and impact" the paper
// identifies as the reason real data centers avoid dynamic consolidation
// (Section 1.2): a re-planned interval is only as good as the migration
// wave that realizes it, and that wave must finish well inside the
// consolidation interval. ScheduleStudy in internal/experiments uses this
// package to measure exactly that.
package executor

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"vmwild/internal/fault"
	"vmwild/internal/migration"
	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// Move is one VM relocation.
type Move struct {
	VM   trace.ServerID
	From string
	To   string
	// Demand is the VM's reservation, used for capacity feasibility and
	// migration cost (memory volume, CPU-derived dirty rate).
	Demand sizing.Demand
}

// ErrDeadlock is returned when no feasible migration order exists without
// a spare host (cyclic space dependencies).
var ErrDeadlock = errors.New("executor: cyclic space dependency, enable a spare host")

// Diff computes the moves that turn placement from into placement to. Both
// placements must contain exactly the same VMs; demands are taken from the
// target placement (the post-resize reservations).
func Diff(from, to *placement.Placement) ([]Move, error) {
	if from == nil || to == nil {
		return nil, errors.New("executor: nil placement")
	}
	if from.NumVMs() != to.NumVMs() {
		return nil, fmt.Errorf("executor: placements hold %d vs %d VMs", from.NumVMs(), to.NumVMs())
	}
	var moves []Move
	for _, h := range to.Hosts() {
		for _, vm := range to.VMsOn(h.ID) {
			src, ok := from.HostOf(vm)
			if !ok {
				return nil, fmt.Errorf("executor: VM %s missing from source placement", vm)
			}
			if src == h.ID {
				continue
			}
			it, _ := to.Item(vm)
			moves = append(moves, Move{VM: vm, From: src, To: h.ID, Demand: it.Demand})
		}
	}
	sort.Slice(moves, func(i, j int) bool { return moves[i].VM < moves[j].VM })
	return moves, nil
}

// FaultModel decides the fate of individual migration attempts and the
// availability of hosts per wave. *fault.Injector implements it; tests may
// script exact scenarios. A nil model means every migration succeeds.
type FaultModel interface {
	// MigrationOutcome classifies the VM's attempt-th migration attempt
	// (1-based across the whole execution, bounce hops included).
	MigrationOutcome(vm trace.ServerID, attempt int) fault.Outcome
	// StallFactor is the duration multiplier for stalled attempts.
	StallFactor() float64
	// HostDown reports a transient outage of host during the given wave.
	HostDown(host string, wave int) bool
}

var _ FaultModel = (*fault.Injector)(nil)

// Config tunes the migration scheduler.
type Config struct {
	// Migration parameterizes per-move durations (pre-copy model).
	Migration migration.Config
	// MaxPerHost bounds concurrent migrations touching one host as
	// source or target (default 1 — VMware's per-host vMotion guidance
	// for gigabit links).
	MaxPerHost int
	// MaxConcurrent bounds simultaneous migrations in the whole data
	// center (network fabric limit, default 8).
	MaxConcurrent int
	// SpareHost allows the scheduler to bounce one VM through a
	// temporary staging host to break cyclic space dependencies; the
	// bounced VM migrates twice.
	SpareHost bool
	// PostCopy costs moves with the target-driven post-copy model
	// instead of iterative pre-copy (the Section 7 improvement).
	PostCopy bool
	// Fault injects migration failures, stalls and host outages into
	// Execute. Schedule ignores it: a plan models the intended schedule,
	// an execution models what actually happened.
	Fault FaultModel
	// RetryBudget is the maximum number of migration attempts per VM
	// before Execute aborts the move and leaves the VM where it is
	// (default 3).
	RetryBudget int
	// RetryBackoff is the wall-clock cost of one idle wave — a wave in
	// which every remaining move is waiting out a retry backoff or a
	// host outage (default 30s). Retries themselves back off
	// exponentially in waves: a move that failed k times is not
	// reattempted for 2^(k-1) waves.
	RetryBackoff time.Duration
}

// DefaultConfig returns the baseline execution settings.
func DefaultConfig() Config {
	return Config{
		Migration:     migration.DefaultConfig(),
		MaxPerHost:    1,
		MaxConcurrent: 8,
		RetryBudget:   3,
		RetryBackoff:  30 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	if c.MaxPerHost <= 0 {
		c.MaxPerHost = 1
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 8
	}
	if c.Migration.LinkMBps <= 0 {
		c.Migration = migration.DefaultConfig()
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 30 * time.Second
	}
	return c
}

// Wave is one batch of migrations that run concurrently; the wave lasts as
// long as its slowest migration.
type Wave struct {
	Moves    []Move
	Duration time.Duration
}

// Plan is a feasible execution schedule.
type Plan struct {
	Waves []Wave
	// Total is the end-to-end execution time (waves are sequential).
	Total time.Duration
	// DataMB is the total network volume, including pre-copy re-sends.
	DataMB float64
	// Bounced counts VMs that had to stage through the spare host.
	Bounced int
}

// Moves returns the total number of migrations (bounced VMs count twice).
func (p *Plan) Moves() int {
	n := 0
	for _, w := range p.Waves {
		n += len(w.Moves)
	}
	return n
}

// ScheduleTransition plans the execution that turns placement from into
// placement to: every VM is first re-sized in place to its target
// reservation (resizing is free — no migration), then the relocations are
// scheduled with Schedule. It returns the plan and the underlying moves.
func ScheduleTransition(from, to *placement.Placement, cfg Config) (*Plan, []Move, error) {
	moves, err := Diff(from, to)
	if err != nil {
		return nil, nil, err
	}
	resized := from.Clone()
	for _, h := range to.Hosts() {
		for _, vm := range to.VMsOn(h.ID) {
			it, _ := to.Item(vm)
			if err := resized.UpdateDemand(vm, it.Demand); err != nil {
				return nil, nil, fmt.Errorf("executor: resize %s: %w", vm, err)
			}
		}
	}
	plan, err := Schedule(resized, moves, cfg)
	if err != nil {
		return nil, nil, err
	}
	return plan, moves, nil
}

// Schedule orders the moves into concurrent waves such that every
// intermediate state respects host capacity. The from placement must
// already carry execution-time reservations (see ScheduleTransition); it is
// not modified. Schedule models the intended schedule: every migration
// succeeds and cfg.Fault is ignored — use Execute to simulate what happens
// when they don't.
func Schedule(from *placement.Placement, moves []Move, cfg Config) (*Plan, error) {
	cfg.Fault = nil
	exec, err := executeMoves(from, moves, cfg, true)
	if err != nil {
		return nil, err
	}
	return exec.Plan, nil
}

// Execution reports what a migration schedule actually did under the fault
// model: which logical moves committed, which were abandoned after
// exhausting their retry budget, and what the realized placement is.
type Execution struct {
	// Plan is the wave-by-wave record of every attempt, including failed
	// and stalled ones (their time and network volume are spent too).
	Plan *Plan
	// Completed lists the logical moves whose VM reached its target.
	Completed []Move
	// Aborted lists the logical moves that did not: the VM stayed on its
	// source host (or, rarely, was stranded on a staging host) after the
	// retry budget ran out or no feasible order remained.
	Aborted []Move
	// Attempts counts every migration attempt (bounce hops included).
	Attempts int
	// Failures counts attempts the fault model failed.
	Failures int
	// Stalls counts attempts that committed at degraded bandwidth.
	Stalls int
	// Final is the realized placement after all committed moves.
	Final *placement.Placement
}

// Degraded reports whether any move was abandoned.
func (e *Execution) Degraded() bool { return len(e.Aborted) > 0 }

// Execute runs the moves through the wave scheduler under cfg.Fault:
// failed attempts leave the VM on its source host and retry in a later
// wave with exponential backoff, up to cfg.RetryBudget attempts per VM;
// moves that exhaust the budget — or that no feasible order can realize
// once other moves aborted — are abandoned rather than failing the whole
// execution. With a nil fault model Execute commits every move and its
// Plan equals Schedule's.
func Execute(from *placement.Placement, moves []Move, cfg Config) (*Execution, error) {
	return executeMoves(from, moves, cfg, false)
}

// ExecuteTransition is ScheduleTransition's runtime counterpart: it diffs
// the placements, resizes in place, and executes the moves under the fault
// model. The returned execution's Final placement is where re-planning must
// start from when moves were aborted.
func ExecuteTransition(from, to *placement.Placement, cfg Config) (*Execution, []Move, error) {
	moves, err := Diff(from, to)
	if err != nil {
		return nil, nil, err
	}
	resized := from.Clone()
	for _, h := range to.Hosts() {
		for _, vm := range to.VMsOn(h.ID) {
			it, _ := to.Item(vm)
			if err := resized.UpdateDemand(vm, it.Demand); err != nil {
				return nil, nil, fmt.Errorf("executor: resize %s: %w", vm, err)
			}
		}
	}
	exec, err := Execute(resized, moves, cfg)
	if err != nil {
		return nil, nil, err
	}
	return exec, moves, nil
}

// waveKind tags each wave move with what it is, so failure handling knows
// where the VM actually is.
type waveKind int

const (
	kindDirect  waveKind = iota // pending move toward its real target
	kindBounce                  // hop onto a spare staging host
	kindUnstage                 // hop from the spare host to the real target
)

// executeMoves is the single scheduling loop behind Schedule and Execute.
// strict preserves Schedule's historical contract: no fault model, and
// ErrDeadlock instead of degraded aborts when no feasible order exists.
func executeMoves(from *placement.Placement, moves []Move, cfg Config, strict bool) (*Execution, error) {
	if from == nil {
		return nil, errors.New("executor: nil source placement")
	}
	cfg = cfg.withDefaults()
	inj := cfg.Fault
	exec := &Execution{Plan: &Plan{}}
	plan := exec.Plan
	if len(moves) == 0 {
		exec.Final = from.Clone()
		return exec, nil
	}

	state := from.Clone()
	type pendingMove struct {
		Move
		// eligible is the earliest wave index of the next attempt
		// (exponential backoff after failures).
		eligible int
	}
	pending := make([]pendingMove, len(moves))
	// Targets opened by the planner's later state may not exist in the
	// source placement yet; register them before scheduling.
	for i, mv := range moves {
		state.EnsureHost(mv.To)
		pending[i] = pendingMove{Move: mv}
	}
	var spares []string
	// Moves staged on a spare host still owe their hop to the real
	// target; spareOf records where each staged VM sits.
	staged := make(map[trace.ServerID]Move)
	spareOf := make(map[trace.ServerID]string)
	stagedEligible := make(map[trace.ServerID]int)
	attempts := make(map[trace.ServerID]int)

	sortedStaged := func() []trace.ServerID {
		ids := make([]trace.ServerID, 0, len(staged))
		for vm := range staged {
			ids = append(ids, vm)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	// backoffWaves is how long the k-times-failed move waits: 2^(k-1)
	// waves, capped so pathological budgets cannot freeze the schedule.
	backoffWaves := func(k int) int {
		if k > 6 {
			k = 6
		}
		return 1 << (k - 1)
	}

	waveIdx := 0
	idle := 0 // consecutive waves without a single attempt
	maxIdle := 2*len(moves)*cfg.RetryBudget + 64

	for len(pending) > 0 || len(staged) > 0 {
		var (
			wave     Wave
			kinds    []waveKind
			origs    []Move // the logical move behind each wave move
			busy     = make(map[string]int)
			selected []int
			deferred bool // something is waiting out a backoff or outage
		)
		down := func(h string) bool {
			return inj != nil && inj.HostDown(h, waveIdx)
		}
		// Staged VMs go home first when their target has room
		// (sorted for determinism).
		for _, vm := range sortedStaged() {
			mv := staged[vm]
			src := spareOf[vm]
			if len(wave.Moves) >= cfg.MaxConcurrent {
				break
			}
			if stagedEligible[vm] > waveIdx || down(src) || down(mv.To) {
				deferred = true
				continue
			}
			if !state.Fits(mv.To, mv.Demand) || busy[src] >= cfg.MaxPerHost || busy[mv.To] >= cfg.MaxPerHost {
				continue
			}
			hop := Move{VM: vm, From: src, To: mv.To, Demand: mv.Demand}
			wave.Moves = append(wave.Moves, hop)
			kinds = append(kinds, kindUnstage)
			origs = append(origs, mv)
			busy[src]++
			busy[mv.To]++
		}
		for i, pm := range pending {
			if len(wave.Moves) >= cfg.MaxConcurrent {
				break
			}
			if pm.eligible > waveIdx || down(pm.From) || down(pm.To) {
				deferred = true
				continue
			}
			if busy[pm.From] >= cfg.MaxPerHost || busy[pm.To] >= cfg.MaxPerHost {
				continue
			}
			if !state.Fits(pm.To, pm.Demand) {
				continue
			}
			wave.Moves = append(wave.Moves, pm.Move)
			kinds = append(kinds, kindDirect)
			origs = append(origs, pm.Move)
			busy[pm.From]++
			busy[pm.To]++
			selected = append(selected, i)
		}

		if len(wave.Moves) == 0 {
			if deferred {
				// Every schedulable move is backing off or blocked by a
				// transient outage: an idle wave passes.
				waveIdx++
				plan.Total += cfg.RetryBackoff
				idle++
				if idle > maxIdle {
					// Pathological scenario (e.g. outage probability 1):
					// give up on whatever is left.
					for _, pm := range pending {
						exec.Aborted = append(exec.Aborted, pm.Move)
					}
					pending = nil
					for _, vm := range sortedStaged() {
						exec.Aborted = append(exec.Aborted, staged[vm])
					}
					staged = map[trace.ServerID]Move{}
					break
				}
				continue
			}
			if cfg.SpareHost && len(pending) > 0 {
				// Bounce the smallest pending VM through a spare host
				// with room, opening another spare if all are full.
				sort.Slice(pending, func(i, j int) bool {
					if pending[i].Demand.Mem != pending[j].Demand.Mem {
						return pending[i].Demand.Mem < pending[j].Demand.Mem
					}
					return pending[i].VM < pending[j].VM
				})
				mv := pending[0].Move
				spare := ""
				for _, s := range spares {
					if state.Fits(s, mv.Demand) {
						spare = s
						break
					}
				}
				if spare == "" {
					spare = state.OpenHost().ID
					spares = append(spares, spare)
				}
				wave.Moves = append(wave.Moves, Move{VM: mv.VM, From: mv.From, To: spare, Demand: mv.Demand})
				kinds = append(kinds, kindBounce)
				origs = append(origs, mv)
				staged[mv.VM] = mv
				spareOf[mv.VM] = spare
				selected = append(selected, 0)
				plan.Bounced++
			} else if strict {
				// Nothing fits and no spare host: cyclic space
				// dependency (or only staged VMs remain and none can go
				// home, which no pending departure will resolve).
				return nil, ErrDeadlock
			} else {
				// Degraded: no feasible order can realize the remaining
				// moves — typically because earlier aborts kept their
				// capacity occupied. Abandon them and keep what
				// completed.
				for _, pm := range pending {
					exec.Aborted = append(exec.Aborted, pm.Move)
				}
				pending = nil
				for _, vm := range sortedStaged() {
					exec.Aborted = append(exec.Aborted, staged[vm])
				}
				staged = map[trace.ServerID]Move{}
				break
			}
		}

		// Run the wave: draw each attempt's outcome, cost it, and commit
		// the successful ones to the state.
		idle = 0
		var longest time.Duration
		var retries []pendingMove
		for k, mv := range wave.Moves {
			attempts[mv.VM]++
			exec.Attempts++
			outcome := fault.OK
			if inj != nil {
				outcome = inj.MigrationOutcome(mv.VM, attempts[mv.VM])
			}
			memMB := max(mv.Demand.Mem, 64)
			var (
				dataMB   float64
				duration time.Duration
			)
			if cfg.PostCopy {
				pcCfg := migration.DefaultPostCopyConfig()
				pcCfg.LinkMBps = cfg.Migration.LinkMBps
				res, err := migration.SimulatePostCopy(memMB, memMB/4, pcCfg)
				if err != nil {
					return nil, err
				}
				dataMB, duration = res.TransferredMB, res.Duration
			} else {
				cost, err := migration.EstimateCost(memMB, vmUtil(mv.Demand, state), cfg.Migration)
				if err != nil {
					return nil, err
				}
				dataMB, duration = cost.DataMB, cost.Duration
			}
			if outcome == fault.Stalled {
				// Same transfer over a degraded link: longer, not
				// bigger.
				duration = time.Duration(float64(duration) * inj.StallFactor())
				exec.Stalls++
			}
			plan.DataMB += dataMB
			if duration > longest {
				longest = duration
			}

			if outcome == fault.Failed {
				// The attempt's time and volume are spent, but the VM
				// never left its source.
				exec.Failures++
				orig := origs[k]
				switch kinds[k] {
				case kindBounce:
					// The VM never reached the spare; undo the staging
					// registration and retry the whole move.
					delete(staged, mv.VM)
					delete(spareOf, mv.VM)
					delete(stagedEligible, mv.VM)
					plan.Bounced--
					fallthrough
				case kindDirect:
					if attempts[mv.VM] >= cfg.RetryBudget {
						exec.Aborted = append(exec.Aborted, orig)
					} else {
						retries = append(retries, pendingMove{
							Move:     orig,
							eligible: waveIdx + backoffWaves(attempts[mv.VM]),
						})
					}
				case kindUnstage:
					if attempts[mv.VM] >= cfg.RetryBudget {
						// Out of budget with the VM stranded on its
						// staging host; the next planning round starts
						// from there.
						exec.Aborted = append(exec.Aborted, orig)
						delete(staged, mv.VM)
						delete(spareOf, mv.VM)
						delete(stagedEligible, mv.VM)
					} else {
						stagedEligible[mv.VM] = waveIdx + backoffWaves(attempts[mv.VM])
					}
				}
				continue
			}

			// Commit.
			it, ok := state.Item(mv.VM)
			if !ok {
				return nil, fmt.Errorf("executor: VM %s not in state", mv.VM)
			}
			if _, err := state.Remove(mv.VM); err != nil {
				return nil, err
			}
			it.Demand = mv.Demand
			if err := state.Assign(it, mv.To); err != nil {
				return nil, fmt.Errorf("executor: apply move of %s: %w", mv.VM, err)
			}
			switch kinds[k] {
			case kindDirect:
				exec.Completed = append(exec.Completed, origs[k])
			case kindUnstage:
				exec.Completed = append(exec.Completed, origs[k])
				delete(staged, mv.VM)
				delete(spareOf, mv.VM)
				delete(stagedEligible, mv.VM)
			case kindBounce:
				// On the spare now; the home hop is still owed.
			}
		}
		wave.Duration = longest
		plan.Total += longest
		plan.Waves = append(plan.Waves, wave)
		waveIdx++

		// Drop executed moves from pending (indices shift; rebuild), then
		// queue the retries.
		if len(selected) > 0 {
			keep := pending[:0]
			sel := make(map[int]bool, len(selected))
			for _, i := range selected {
				sel[i] = true
			}
			for i, pm := range pending {
				if !sel[i] {
					keep = append(keep, pm)
				}
			}
			pending = keep
		}
		pending = append(pending, retries...)
	}
	exec.Final = state
	return exec, nil
}

// vmUtil derives a busy-ness proxy for the dirty-rate model: the VM's CPU
// reservation as a fraction of its host's capacity.
func vmUtil(d sizing.Demand, p *placement.Placement) float64 {
	if p.Spec.CPURPE2 <= 0 {
		return 0
	}
	u := d.CPU / p.Spec.CPURPE2
	if u > 1 {
		u = 1
	}
	return u
}

// Drain plans the evacuation of one host for maintenance — the live
// migration use real data centers do adopt (Section 1.2: "VM live
// migration is often employed for high availability and server maintenance
// but not for dynamic VM consolidation"). Every VM on the host is
// relocated to the remaining hosts by first-fit over the emptiest targets;
// the returned schedule respects the usual concurrency and capacity rules.
func Drain(p *placement.Placement, host string, cfg Config) (*Plan, []Move, error) {
	if p == nil {
		return nil, nil, errors.New("executor: nil placement")
	}
	vms := append([]trace.ServerID(nil), p.VMsOn(host)...)
	if len(vms) == 0 {
		return &Plan{}, nil, nil
	}
	// Largest VMs first onto the emptiest hosts.
	sort.Slice(vms, func(i, j int) bool {
		a, _ := p.Item(vms[i])
		b, _ := p.Item(vms[j])
		if a.Demand.Mem != b.Demand.Mem {
			return a.Demand.Mem > b.Demand.Mem
		}
		return vms[i] < vms[j]
	})
	cap := p.Capacity()
	type slack struct{ cpu, mem float64 }
	residual := make(map[string]*slack)
	var targets []string
	for _, h := range p.Hosts() {
		if h.ID == host {
			continue
		}
		u := p.Used(h.ID)
		residual[h.ID] = &slack{cpu: cap.CPU - u.CPU, mem: cap.Mem - u.Mem}
		targets = append(targets, h.ID)
	}
	var moves []Move
	for _, vm := range vms {
		it, _ := p.Item(vm)
		// Emptiest-first keeps the drained load spread out.
		sort.Slice(targets, func(i, j int) bool {
			ri, rj := residual[targets[i]], residual[targets[j]]
			li := min(ri.cpu/cap.CPU, ri.mem/cap.Mem)
			lj := min(rj.cpu/cap.CPU, rj.mem/cap.Mem)
			if li != lj {
				return li > lj
			}
			return targets[i] < targets[j]
		})
		placed := false
		for _, tgt := range targets {
			r := residual[tgt]
			if it.Demand.CPU > r.cpu+1e-9 || it.Demand.Mem > r.mem+1e-9 {
				continue
			}
			r.cpu -= it.Demand.CPU
			r.mem -= it.Demand.Mem
			moves = append(moves, Move{VM: vm, From: host, To: tgt, Demand: it.Demand})
			placed = true
			break
		}
		if !placed {
			return nil, nil, fmt.Errorf("executor: no capacity to drain %s off %s", vm, host)
		}
	}
	plan, err := Schedule(p, moves, cfg)
	if err != nil {
		return nil, nil, err
	}
	return plan, moves, nil
}
