package executor

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

var spec = trace.Spec{CPURPE2: 1000, MemMB: 10000}

// build creates a placement with the given host count and VM assignment.
func build(t *testing.T, hosts int, assign map[string]struct {
	host string
	cpu  float64
	mem  float64
}) *placement.Placement {
	t.Helper()
	p, err := placement.NewPlacement(spec, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hosts; i++ {
		p.OpenHost()
	}
	// Deterministic order.
	var vms []string
	for vm := range assign {
		vms = append(vms, vm)
	}
	for _, vm := range sortedKeys(vms) {
		a := assign[vm]
		it := placement.Item{ID: trace.ServerID(vm), Demand: sizing.Demand{CPU: a.cpu, Mem: a.mem}}
		if err := p.Assign(it, a.host); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func sortedKeys(ss []string) []string {
	out := append([]string(nil), ss...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

type vmAt = struct {
	host string
	cpu  float64
	mem  float64
}

func TestDiff(t *testing.T) {
	from := build(t, 2, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 1000},
		"b": {host: "h0000", cpu: 100, mem: 1000},
	})
	to := build(t, 2, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 1000},
		"b": {host: "h0001", cpu: 150, mem: 1500},
	})
	moves, err := Diff(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("got %d moves, want 1", len(moves))
	}
	mv := moves[0]
	if mv.VM != "b" || mv.From != "h0000" || mv.To != "h0001" {
		t.Errorf("move = %+v", mv)
	}
	// Demands come from the target placement (post-resize).
	if mv.Demand.Mem != 1500 {
		t.Errorf("demand = %+v, want target reservation", mv.Demand)
	}
}

func TestDiffErrors(t *testing.T) {
	if _, err := Diff(nil, nil); err == nil {
		t.Error("expected error for nil placements")
	}
	from := build(t, 1, map[string]vmAt{"a": {host: "h0000", cpu: 1, mem: 1}})
	to := build(t, 1, map[string]vmAt{"a": {host: "h0000", cpu: 1, mem: 1}, "b": {host: "h0000", cpu: 1, mem: 1}})
	if _, err := Diff(from, to); err == nil {
		t.Error("expected error for VM count mismatch")
	}
}

func TestScheduleSimpleWave(t *testing.T) {
	from := build(t, 3, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 2000},
		"b": {host: "h0001", cpu: 100, mem: 2000},
	})
	moves := []Move{
		{VM: "a", From: "h0000", To: "h0002", Demand: sizing.Demand{CPU: 100, Mem: 2000}},
		{VM: "b", From: "h0001", To: "h0002", Demand: sizing.Demand{CPU: 100, Mem: 2000}},
	}
	plan, err := Schedule(from, moves, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Moves() != 2 {
		t.Fatalf("scheduled %d moves", plan.Moves())
	}
	// Both moves target h0002 with MaxPerHost=1: two waves.
	if len(plan.Waves) != 2 {
		t.Errorf("waves = %d, want 2 (target-host concurrency limit)", len(plan.Waves))
	}
	if plan.Total <= 0 || plan.DataMB < 4000 {
		t.Errorf("plan cost = %v / %v MB", plan.Total, plan.DataMB)
	}
}

func TestScheduleConcurrencyAcrossHosts(t *testing.T) {
	from := build(t, 4, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 2000},
		"b": {host: "h0001", cpu: 100, mem: 2000},
	})
	moves := []Move{
		{VM: "a", From: "h0000", To: "h0002", Demand: sizing.Demand{CPU: 100, Mem: 2000}},
		{VM: "b", From: "h0001", To: "h0003", Demand: sizing.Demand{CPU: 100, Mem: 2000}},
	}
	plan, err := Schedule(from, moves, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint host pairs run in one wave.
	if len(plan.Waves) != 1 || len(plan.Waves[0].Moves) != 2 {
		t.Errorf("expected one concurrent wave, got %+v", plan.Waves)
	}
}

func TestScheduleRespectsCapacityOrdering(t *testing.T) {
	// h0001 is full until "b" leaves; "a" must wait for the space.
	from := build(t, 3, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 4000},
		"b": {host: "h0001", cpu: 100, mem: 8000},
	})
	moves := []Move{
		{VM: "a", From: "h0000", To: "h0001", Demand: sizing.Demand{CPU: 100, Mem: 4000}},
		{VM: "b", From: "h0001", To: "h0002", Demand: sizing.Demand{CPU: 100, Mem: 8000}},
	}
	plan, err := Schedule(from, moves, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Waves) != 2 {
		t.Fatalf("waves = %d, want 2 (space dependency)", len(plan.Waves))
	}
	if plan.Waves[0].Moves[0].VM != "b" {
		t.Errorf("first wave must free space: %+v", plan.Waves[0].Moves)
	}
	if plan.Waves[1].Moves[0].VM != "a" {
		t.Errorf("second wave fills it: %+v", plan.Waves[1].Moves)
	}
}

func TestScheduleDeadlock(t *testing.T) {
	// a and b swap hosts, both hosts full: impossible without a spare.
	from := build(t, 2, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 9000},
		"b": {host: "h0001", cpu: 100, mem: 9000},
	})
	swap := []Move{
		{VM: "a", From: "h0000", To: "h0001", Demand: sizing.Demand{CPU: 100, Mem: 9000}},
		{VM: "b", From: "h0001", To: "h0000", Demand: sizing.Demand{CPU: 100, Mem: 9000}},
	}
	if _, err := Schedule(from, swap, DefaultConfig()); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}

	cfg := DefaultConfig()
	cfg.SpareHost = true
	plan, err := Schedule(from, swap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Bounced != 1 {
		t.Errorf("bounced = %d, want 1", plan.Bounced)
	}
	// Swap via spare: stage a, move b, return a = 3 migrations.
	if plan.Moves() != 3 {
		t.Errorf("moves = %d, want 3", plan.Moves())
	}
}

func TestScheduleEmpty(t *testing.T) {
	from := build(t, 1, map[string]vmAt{"a": {host: "h0000", cpu: 1, mem: 1}})
	plan, err := Schedule(from, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 0 || plan.Moves() != 0 {
		t.Errorf("empty schedule = %+v", plan)
	}
	if _, err := Schedule(nil, nil, DefaultConfig()); err == nil {
		t.Error("expected error for nil placement")
	}
}

func TestScheduleGlobalConcurrencyCap(t *testing.T) {
	assign := make(map[string]vmAt)
	var moves []Move
	// 6 disjoint moves but MaxConcurrent 2: expect 3 waves.
	p, err := placement.NewPlacement(spec, 1, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		p.OpenHost()
	}
	for i := 0; i < 6; i++ {
		vm := trace.ServerID(rune('a' + i))
		src := p.Hosts()[i*2].ID
		dst := p.Hosts()[i*2+1].ID
		it := placement.Item{ID: vm, Demand: sizing.Demand{CPU: 10, Mem: 100}}
		if err := p.Assign(it, src); err != nil {
			t.Fatal(err)
		}
		moves = append(moves, Move{VM: vm, From: src, To: dst, Demand: it.Demand})
	}
	_ = assign
	cfg := DefaultConfig()
	cfg.MaxConcurrent = 2
	plan, err := Schedule(p, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Waves) != 3 {
		t.Errorf("waves = %d, want 3 under global cap 2", len(plan.Waves))
	}
	var total time.Duration
	for _, w := range plan.Waves {
		total += w.Duration
	}
	if total != plan.Total {
		t.Errorf("total %v != sum of waves %v", plan.Total, total)
	}
}

func TestScheduleTransitionResizesInPlace(t *testing.T) {
	// In the target state "a" grew to fill most of h0000 while "b" moved
	// away. Without the in-place resize the scheduler would see phantom
	// space pressure from b's old reservation.
	from := build(t, 2, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 4000},
		"b": {host: "h0000", cpu: 100, mem: 5000},
	})
	to := build(t, 2, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 9000},
		"b": {host: "h0001", cpu: 100, mem: 5000},
	})
	plan, moves, err := ScheduleTransition(from, to, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].VM != "b" {
		t.Fatalf("moves = %+v", moves)
	}
	if plan.Moves() != 1 {
		t.Errorf("plan moves = %d, want 1 (resize is not a migration)", plan.Moves())
	}
	// from must not be mutated.
	if it, _ := from.Item("a"); it.Demand.Mem != 4000 {
		t.Error("ScheduleTransition mutated the source placement")
	}
}

func TestScheduleTransitionNewTargetHost(t *testing.T) {
	// The target opens a host the source has never seen.
	from := build(t, 1, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 4000},
	})
	to := build(t, 2, map[string]vmAt{
		"a": {host: "h0001", cpu: 100, mem: 4000},
	})
	plan, _, err := ScheduleTransition(from, to, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Moves() != 1 {
		t.Errorf("moves = %d, want 1", plan.Moves())
	}
}

// TestQuickScheduleReachesTarget: for random placement transitions, the
// scheduled waves, applied in order, reproduce exactly the target
// assignment.
func TestQuickScheduleReachesTarget(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) < 2 || len(seeds) > 24 {
			return true
		}
		// Build from/to placements over 6 hosts with consistent VMs.
		from, err := placement.NewPlacement(spec, 1, 10)
		if err != nil {
			return false
		}
		to, err := placement.NewPlacement(spec, 1, 10)
		if err != nil {
			return false
		}
		for i := 0; i < 6; i++ {
			from.OpenHost()
			to.OpenHost()
		}
		for i, s := range seeds {
			vm := trace.ServerID(fmt.Sprintf("vm%02d", i))
			demand := sizing.Demand{CPU: float64(s%150) + 1, Mem: float64(s%1500) + 1}
			srcHost := from.Hosts()[int(s)%6].ID
			dstHost := to.Hosts()[int(s/7)%6].ID
			if err := from.Assign(placement.Item{ID: vm, Demand: demand}, srcHost); err != nil {
				return false
			}
			if err := to.Assign(placement.Item{ID: vm, Demand: demand}, dstHost); err != nil {
				return false
			}
		}
		cfg := DefaultConfig()
		cfg.SpareHost = true
		plan, moves, err := ScheduleTransition(from, to, cfg)
		if err != nil {
			// Loads here always fit (max 24 * 1500 MB < 6 * 10000):
			// scheduling must succeed with a spare host.
			return false
		}
		// Replay the waves and compare the final assignment to target.
		state := from.Clone()
		for _, mv := range moves {
			state.EnsureHost(mv.To)
		}
		state.EnsureHost("") // no-op guard
		for _, w := range plan.Waves {
			for _, mv := range w.Moves {
				state.EnsureHost(mv.To)
				it, ok := state.Item(mv.VM)
				if !ok {
					return false
				}
				if _, err := state.Remove(mv.VM); err != nil {
					return false
				}
				it.Demand = mv.Demand
				if err := state.Assign(it, mv.To); err != nil {
					return false
				}
			}
		}
		for i := range seeds {
			vm := trace.ServerID(fmt.Sprintf("vm%02d", i))
			got, _ := state.HostOf(vm)
			want, _ := to.HostOf(vm)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDrain(t *testing.T) {
	from := build(t, 3, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 3000},
		"b": {host: "h0000", cpu: 100, mem: 3000},
		"c": {host: "h0001", cpu: 100, mem: 2000},
	})
	plan, moves, err := Drain(from, "h0000", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 {
		t.Fatalf("moves = %d, want 2", len(moves))
	}
	for _, mv := range moves {
		if mv.From != "h0000" {
			t.Errorf("move source = %s", mv.From)
		}
		if mv.To == "h0000" {
			t.Error("drained host used as target")
		}
	}
	if plan.Total <= 0 {
		t.Error("drain must take time")
	}
	// Draining an empty host is a no-op.
	empty, moves2, err := Drain(from, "h0002", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(moves2) != 0 || empty.Moves() != 0 {
		t.Error("empty host drain should be a no-op")
	}
	if _, _, err := Drain(nil, "x", DefaultConfig()); err == nil {
		t.Error("expected error for nil placement")
	}
}

func TestDrainNoCapacity(t *testing.T) {
	from := build(t, 2, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 9000},
		"b": {host: "h0001", cpu: 100, mem: 9000},
	})
	if _, _, err := Drain(from, "h0000", DefaultConfig()); err == nil {
		t.Error("expected error when remaining hosts cannot absorb the load")
	}
}
