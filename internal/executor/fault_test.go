package executor

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"vmwild/internal/fault"
	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

func demand(cpu, mem float64) sizing.Demand { return sizing.Demand{CPU: cpu, Mem: mem} }

// scripted is a FaultModel with exact, test-authored outcomes, so failure
// scenarios need no seed hunting.
type scripted struct {
	outcomes map[string]fault.Outcome // "vm/attempt" -> outcome
	stall    float64
	downs    map[string]bool // "host/wave" -> down
}

func (s *scripted) MigrationOutcome(vm trace.ServerID, attempt int) fault.Outcome {
	return s.outcomes[fmt.Sprintf("%s/%d", vm, attempt)]
}

func (s *scripted) StallFactor() float64 {
	if s.stall > 0 {
		return s.stall
	}
	return 1
}

func (s *scripted) HostDown(host string, wave int) bool {
	return s.downs[fmt.Sprintf("%s/%d", host, wave)]
}

// twoMoves is a simple scenario: two VMs leaving h0000 for hosts with room.
func twoMoves(t *testing.T) (*placement.Placement, []Move) {
	t.Helper()
	from := build(t, 3, map[string]vmAt{
		"a": {host: "h0000", cpu: 100, mem: 1000},
		"b": {host: "h0000", cpu: 100, mem: 1000},
	})
	moves := []Move{
		{VM: "a", From: "h0000", To: "h0001", Demand: demand(100, 1000)},
		{VM: "b", From: "h0000", To: "h0002", Demand: demand(100, 1000)},
	}
	return from, moves
}

func TestExecuteNoFaultsMatchesSchedule(t *testing.T) {
	from, moves := twoMoves(t)
	cfg := DefaultConfig()
	plan, err := Schedule(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, exec.Plan) {
		t.Errorf("fault-free execution plan differs from schedule:\n%+v\n%+v", plan, exec.Plan)
	}
	if len(exec.Completed) != 2 || len(exec.Aborted) != 0 || exec.Degraded() {
		t.Errorf("execution = %+v", exec)
	}
	if exec.Attempts != 2 || exec.Failures != 0 || exec.Stalls != 0 {
		t.Errorf("attempts/failures/stalls = %d/%d/%d", exec.Attempts, exec.Failures, exec.Stalls)
	}
	if h, _ := exec.Final.HostOf("a"); h != "h0001" {
		t.Errorf("a ended on %s, want h0001", h)
	}
}

func TestExecuteRetryAfterFailure(t *testing.T) {
	from, moves := twoMoves(t)
	cfg := DefaultConfig()
	cfg.Fault = &scripted{outcomes: map[string]fault.Outcome{"a/1": fault.Failed}}
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Completed) != 2 || exec.Degraded() {
		t.Fatalf("execution = %+v", exec)
	}
	if exec.Attempts != 3 || exec.Failures != 1 {
		t.Errorf("attempts=%d failures=%d, want 3/1", exec.Attempts, exec.Failures)
	}
	if h, _ := exec.Final.HostOf("a"); h != "h0001" {
		t.Errorf("a ended on %s, want h0001 after retry", h)
	}
	// The failed attempt's time and data are spent: the plan must cost
	// more than the clean schedule.
	clean, err := Schedule(from, moves, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if exec.Plan.DataMB <= clean.DataMB {
		t.Errorf("failed attempt cost no data: %v <= %v", exec.Plan.DataMB, clean.DataMB)
	}
}

func TestExecuteAbortsAfterBudget(t *testing.T) {
	from, moves := twoMoves(t)
	cfg := DefaultConfig()
	cfg.RetryBudget = 2
	cfg.Fault = &scripted{outcomes: map[string]fault.Outcome{
		"a/1": fault.Failed,
		"a/2": fault.Failed,
	}}
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Degraded() || len(exec.Aborted) != 1 || exec.Aborted[0].VM != "a" {
		t.Fatalf("execution = %+v, want a aborted", exec)
	}
	if len(exec.Completed) != 1 || exec.Completed[0].VM != "b" {
		t.Errorf("completed = %+v, want only b", exec.Completed)
	}
	if exec.Attempts != 3 || exec.Failures != 2 {
		t.Errorf("attempts=%d failures=%d, want 3/2", exec.Attempts, exec.Failures)
	}
	// The aborted VM never left its source; the completed one committed.
	if h, _ := exec.Final.HostOf("a"); h != "h0000" {
		t.Errorf("aborted a ended on %s, want h0000", h)
	}
	if h, _ := exec.Final.HostOf("b"); h != "h0002" {
		t.Errorf("b ended on %s, want h0002", h)
	}
}

func TestExecuteStallSlowsButCommits(t *testing.T) {
	from := build(t, 2, map[string]vmAt{"a": {host: "h0000", cpu: 100, mem: 1000}})
	moves := []Move{{VM: "a", From: "h0000", To: "h0001", Demand: demand(100, 1000)}}
	clean, err := Execute(from, moves, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Fault = &scripted{
		outcomes: map[string]fault.Outcome{"a/1": fault.Stalled},
		stall:    3,
	}
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if exec.Stalls != 1 || len(exec.Completed) != 1 || exec.Degraded() {
		t.Fatalf("execution = %+v", exec)
	}
	if exec.Plan.Total != 3*clean.Plan.Total {
		t.Errorf("stalled total %v, want 3x %v", exec.Plan.Total, clean.Plan.Total)
	}
	// A stall stretches time, not volume.
	if exec.Plan.DataMB != clean.Plan.DataMB {
		t.Errorf("stalled data %v, want %v", exec.Plan.DataMB, clean.Plan.DataMB)
	}
}

func TestExecuteHostOutageDefersWave(t *testing.T) {
	from := build(t, 2, map[string]vmAt{"a": {host: "h0000", cpu: 100, mem: 1000}})
	moves := []Move{{VM: "a", From: "h0000", To: "h0001", Demand: demand(100, 1000)}}
	cfg := DefaultConfig()
	cfg.RetryBackoff = time.Minute
	cfg.Fault = &scripted{downs: map[string]bool{"h0001/0": true}}
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Completed) != 1 || exec.Degraded() {
		t.Fatalf("execution = %+v", exec)
	}
	clean, err := Execute(from, moves, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Wave 0 idles out the outage at the configured backoff cost; the
	// move lands in the next wave.
	if want := clean.Plan.Total + time.Minute; exec.Plan.Total != want {
		t.Errorf("total %v, want %v (outage idle wave + migration)", exec.Plan.Total, want)
	}
}

func TestExecuteDegradedInsteadOfDeadlock(t *testing.T) {
	// a and b want to swap hosts that are both full: strict scheduling
	// deadlocks without a spare host; execution degrades instead.
	from := build(t, 2, map[string]vmAt{
		"a": {host: "h0000", cpu: 900, mem: 9000},
		"b": {host: "h0001", cpu: 900, mem: 9000},
	})
	moves := []Move{
		{VM: "a", From: "h0000", To: "h0001", Demand: demand(900, 9000)},
		{VM: "b", From: "h0001", To: "h0000", Demand: demand(900, 9000)},
	}
	cfg := DefaultConfig()
	cfg.SpareHost = false
	if _, err := Schedule(from, moves, cfg); err != ErrDeadlock {
		t.Fatalf("Schedule err = %v, want ErrDeadlock", err)
	}
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Degraded() || len(exec.Aborted) != 2 || len(exec.Completed) != 0 {
		t.Errorf("execution = %+v, want both moves aborted", exec)
	}
	// Nothing moved: the realized placement is the starting one.
	if h, _ := exec.Final.HostOf("a"); h != "h0000" {
		t.Errorf("a ended on %s, want h0000", h)
	}
}

func TestExecuteBudgetExhaustionIsDeterministic(t *testing.T) {
	// The same seeded injector must reproduce the same execution exactly.
	from, moves := twoMoves(t)
	cfg := DefaultConfig()
	mk := func() *Execution {
		inj, err := fault.New(fault.Config{Seed: 7, MigrationFailure: 0.5, MigrationStall: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Fault = inj
		exec, err := Execute(from, moves, c)
		if err != nil {
			t.Fatal(err)
		}
		return exec
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a.Plan, b.Plan) ||
		a.Attempts != b.Attempts || a.Failures != b.Failures || a.Stalls != b.Stalls ||
		!reflect.DeepEqual(a.Completed, b.Completed) || !reflect.DeepEqual(a.Aborted, b.Aborted) {
		t.Errorf("seeded executions differ:\n%+v\n%+v", a, b)
	}
}

// TestExecuteOutageDuringRetryWave crosses the two fault clocks: a move
// fails, backs off one wave, and its retry wave is exactly the one in which
// the target host is transiently down. The retry must defer again and still
// land, not abort or double-draw.
func TestExecuteOutageDuringRetryWave(t *testing.T) {
	from := build(t, 2, map[string]vmAt{"a": {host: "h0000", cpu: 100, mem: 1000}})
	moves := []Move{{VM: "a", From: "h0000", To: "h0001", Demand: demand(100, 1000)}}
	cfg := DefaultConfig()
	cfg.RetryBackoff = time.Minute
	cfg.Fault = &scripted{
		// Attempt 1 fails in wave 0; backoff makes the retry eligible in
		// wave 1, where the target is down; wave 2 carries it home.
		outcomes: map[string]fault.Outcome{"a/1": fault.Failed},
		downs:    map[string]bool{"h0001/1": true},
	}
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Completed) != 1 || exec.Degraded() {
		t.Fatalf("execution = %+v, want the move completed", exec)
	}
	if exec.Attempts != 2 || exec.Failures != 1 {
		t.Errorf("attempts/failures = %d/%d, want 2/1", exec.Attempts, exec.Failures)
	}
	// Two real waves (failed attempt, successful retry) separated by one
	// idle outage wave billed at the backoff cost.
	if len(exec.Plan.Waves) != 2 {
		t.Errorf("waves = %d, want 2", len(exec.Plan.Waves))
	}
	want := exec.Plan.Waves[0].Duration + time.Minute + exec.Plan.Waves[1].Duration
	if exec.Plan.Total != want {
		t.Errorf("total %v, want %v", exec.Plan.Total, want)
	}
	if h, _ := exec.Final.HostOf("a"); h != "h0001" {
		t.Errorf("a ended on %s, want h0001", h)
	}
}

// TestExecutePermanentOutageTerminates holds every host down forever
// (outage probability 1): the scheduler must not spin — it gives up after
// the idle cap and aborts everything with the VMs unmoved.
func TestExecutePermanentOutageTerminates(t *testing.T) {
	from, moves := twoMoves(t)
	inj, err := fault.New(fault.Config{Seed: 5, HostOutage: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Fault = inj
	cfg.RetryBackoff = time.Second
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !exec.Degraded() || len(exec.Aborted) != 2 || len(exec.Completed) != 0 {
		t.Fatalf("execution = %+v, want everything aborted", exec)
	}
	if exec.Attempts != 0 {
		t.Errorf("attempts = %d, want 0 (no host was ever reachable)", exec.Attempts)
	}
	for _, vm := range []trace.ServerID{"a", "b"} {
		if h, _ := exec.Final.HostOf(vm); h != "h0000" {
			t.Errorf("%s ended on %s, want h0000", vm, h)
		}
	}
}

// TestExecuteCertainFailureAbortsAtBudget runs MigrationFailure = 1: every
// attempt burns budget, every move aborts after exactly RetryBudget tries.
func TestExecuteCertainFailureAbortsAtBudget(t *testing.T) {
	from, moves := twoMoves(t)
	inj, err := fault.New(fault.Config{Seed: 5, MigrationFailure: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.RetryBudget = 3
	cfg.Fault = inj
	exec, err := Execute(from, moves, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(exec.Aborted) != 2 || len(exec.Completed) != 0 {
		t.Fatalf("execution = %+v, want both moves aborted", exec)
	}
	if want := 2 * cfg.RetryBudget; exec.Attempts != want || exec.Failures != want {
		t.Errorf("attempts/failures = %d/%d, want %d/%d", exec.Attempts, exec.Failures, want, want)
	}
}

// TestExecuteAndDrainZeroVMHosts: hosts without VMs must be harmless — as
// drain sources (nothing to do), as outage-draw subjects, and in empty
// executions.
func TestExecuteAndDrainZeroVMHosts(t *testing.T) {
	p := build(t, 3, map[string]vmAt{"a": {host: "h0000", cpu: 100, mem: 1000}})
	cfg := DefaultConfig()

	plan, moves, err := Drain(p, "h0002", cfg) // h0002 holds no VMs
	if err != nil {
		t.Fatalf("drain of empty host: %v", err)
	}
	if len(moves) != 0 || plan.Moves() != 0 {
		t.Errorf("empty-host drain produced %d moves", len(moves))
	}

	inj, err := fault.New(fault.Config{Seed: 5, HostOutage: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = inj
	exec, err := Execute(p, nil, cfg)
	if err != nil {
		t.Fatalf("empty execution: %v", err)
	}
	if exec.Attempts != 0 || exec.Final == nil || exec.Final.NumVMs() != 1 {
		t.Errorf("empty execution = %+v", exec)
	}
}
