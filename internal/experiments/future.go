package experiments

import (
	"fmt"

	"vmwild/internal/core"
	"vmwild/internal/migration"
	"vmwild/internal/predict"
)

// The Section 7 discussion sketches two improvement directions: shorter
// consolidation intervals (enabled by faster networks) and more efficient
// live migration (offloading work from the source host). These experiments
// quantify both on the reproduced workloads.

// IntervalPoint is one consolidation-interval setting in the Section 7
// "shorter intervals" study.
type IntervalPoint struct {
	IntervalHours int
	Provisioned   int
	AvgPowerW     float64
	Migrations    int
	ContentionHrs int
}

// DefaultIntervals is the consolidation-interval sweep of the Section 7
// "shorter intervals" study.
var DefaultIntervals = []int{1, 2, 4, 8}

// IntervalStudy sweeps the dynamic consolidation interval. Shorter
// intervals track demand more closely (fewer hosts, less power) at the cost
// of more migrations — the trade the paper expects better networks to
// shift.
func IntervalStudy(c *Context, intervals []int) ([]IntervalPoint, error) {
	if len(intervals) == 0 {
		intervals = DefaultIntervals
	}
	out := make([]IntervalPoint, 0, len(intervals))
	for _, h := range intervals {
		pt, err := IntervalPointAt(c, h)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// IntervalPointAt runs dynamic consolidation at one interval length — a
// single (datacenter, knob) cell of the interval sweep.
func IntervalPointAt(c *Context, hours int) (IntervalPoint, error) {
	if hours < 1 {
		return IntervalPoint{}, fmt.Errorf("experiments: interval %d hours is invalid", hours)
	}
	in := c.Input()
	in.IntervalHours = hours
	run, err := c.RunWith(core.Dynamic{}, in)
	if err != nil {
		return IntervalPoint{}, fmt.Errorf("experiments: interval study @%dh: %w", hours, err)
	}
	return IntervalPoint{
		IntervalHours: hours,
		Provisioned:   run.Plan.Provisioned,
		AvgPowerW:     run.Result.AvgPowerWatts(),
		Migrations:    run.Plan.Migrations,
		ContentionHrs: run.Result.ContentionHours,
	}, nil
}

// PredictorPoint is one predictor's outcome in the sizing-estimator
// ablation.
type PredictorPoint struct {
	Predictor     string
	Provisioned   int
	AvgPowerW     float64
	ContentionHrs int
	Migrations    int
}

// ReportPredictors lists the sizing predictors the ablation compares, in
// report order.
func ReportPredictors() []predict.Predictor {
	return []predict.Predictor{
		predict.RecentPeak{Windows: 1},
		predict.RecentPeak{Windows: 12},
		predict.EWMA{Alpha: 0.4, Intervals: 48},
		predict.Periodic{Days: 7, SamplesPerDay: 24},
		core.DefaultCPUPredictor(),
	}
}

// PredictorStudy runs the dynamic planner with different interval-peak
// predictors, isolating how the Prediction step trades provisioning
// against contention (the paper's Figures 8/9/11 risk).
func PredictorStudy(c *Context) ([]PredictorPoint, error) {
	predictors := ReportPredictors()
	out := make([]PredictorPoint, 0, len(predictors))
	for _, p := range predictors {
		pt, err := PredictorPointAt(c, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// PredictorPointAt runs dynamic consolidation under one sizing predictor —
// a single (datacenter, knob) cell of the predictor ablation.
func PredictorPointAt(c *Context, p predict.Predictor) (PredictorPoint, error) {
	in := c.Input()
	in.CPUPredictor = p
	run, err := c.RunWith(core.Dynamic{}, in)
	if err != nil {
		return PredictorPoint{}, fmt.Errorf("experiments: predictor study %s: %w", p.Name(), err)
	}
	return PredictorPoint{
		Predictor:     p.Name(),
		Provisioned:   run.Plan.Provisioned,
		AvgPowerW:     run.Result.AvgPowerWatts(),
		ContentionHrs: run.Result.ContentionHours,
		Migrations:    run.Plan.Migrations,
	}, nil
}

// MechanismRow compares one migration mechanism in the Section 7
// improved-migration study.
type MechanismRow struct {
	Mechanism string
	// Reservation is the host fraction the mechanism requires.
	Reservation float64
	// DowntimeMs is the application-visible pause for a reference 4 GB
	// busy VM.
	DowntimeMs float64
	// TransferredMB is the network cost for that VM.
	TransferredMB float64
	// DynamicHosts is the space dynamic consolidation provisions when
	// the reservation shrinks to what the mechanism needs.
	DynamicHosts int
	// BeatsStochastic records whether that beats the stochastic plan.
	BeatsStochastic bool
}

// ImprovedMigrationStudy quantifies the paper's closing argument
// (Observation 7): with a lighter migration mechanism, the reservation
// shrinks and dynamic consolidation starts winning space too. It compares
// classical pre-copy against target-driven post-copy on a reference VM and
// re-plans the workload at each mechanism's reservation.
func ImprovedMigrationStudy(c *Context) ([]MechanismRow, error) {
	const refMemMB, refDirty, refWorkingSet = 4096, 40, 1024

	stoch, err := c.Run(core.Stochastic{})
	if err != nil {
		return nil, err
	}

	pre, err := migration.Simulate(refMemMB, refDirty, migration.DefaultConfig())
	if err != nil {
		return nil, err
	}
	post, err := migration.SimulatePostCopy(refMemMB, refWorkingSet, migration.DefaultPostCopyConfig())
	if err != nil {
		return nil, err
	}

	rows := []MechanismRow{
		{
			Mechanism:     "pre-copy",
			Reservation:   migration.ReservationFor(migration.DefaultConfig().SourceCPUOverhead),
			DowntimeMs:    float64(pre.Downtime.Milliseconds()),
			TransferredMB: pre.TransferredMB,
		},
		{
			Mechanism:     "post-copy (target-driven)",
			Reservation:   migration.ReservationFor(migration.DefaultPostCopyConfig().SourceCPUOverhead),
			DowntimeMs:    float64(post.Downtime.Milliseconds()),
			TransferredMB: post.TransferredMB,
		},
	}
	for i := range rows {
		in := c.Input()
		in.Bound = 1 - rows[i].Reservation
		plan, err := c.PlanDynamic(in)
		if err != nil {
			return nil, fmt.Errorf("experiments: improved migration %s: %w", rows[i].Mechanism, err)
		}
		rows[i].DynamicHosts = plan.Provisioned
		rows[i].BeatsStochastic = plan.Provisioned < stoch.Plan.Provisioned
	}
	return rows, nil
}
