package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"vmwild/internal/core"
)

// Contexts are expensive to build (planner runs over 3000+ servers), so the
// observation tests share one set per package run.
var (
	ctxOnce sync.Once
	ctxAll  []*Context
	ctxErr  error
)

// skipHeavy gates the full-scale tests: they are numeric hot loops over
// thousands of servers that slow 5-10x under the race detector, so they run
// only in regular builds. The reduced-grid determinism tests in
// golden_test.go keep the parallel machinery covered under -race.
func skipHeavy(t *testing.T, why string) {
	t.Helper()
	if testing.Short() {
		t.Skip(why)
	}
	if raceEnabled {
		t.Skipf("%s: skipped under the race detector (see race_off.go)", why)
	}
}

func sharedContexts(t *testing.T) []*Context {
	t.Helper()
	ctxOnce.Do(func() {
		ctxAll, ctxErr = Contexts(DefaultConfig())
	})
	if ctxErr != nil {
		t.Fatal(ctxErr)
	}
	return ctxAll
}

func byName(t *testing.T, ctxs []*Context, name string) *Context {
	t.Helper()
	for _, c := range ctxs {
		if c.Profile.Name == name {
			return c
		}
	}
	t.Fatalf("no context named %s", name)
	return nil
}

func costRows(t *testing.T, c *Context) map[string]CostRow {
	t.Helper()
	rows, err := Fig7Costs(c)
	if err != nil {
		t.Fatal(err)
	}
	m := make(map[string]CostRow, len(rows))
	for _, r := range rows {
		m[r.Planner] = r
	}
	return m
}

// TestObservation5Space: dynamic consolidation does not beat intelligent
// semi-static consolidation on space for any workload, while stochastic
// improves on vanilla semi-static.
func TestObservation5Space(t *testing.T) {
	skipHeavy(t, "full planner comparison")
	dynamicBeatsVanilla := 0
	for _, c := range sharedContexts(t) {
		rows := costRows(t, c)
		stoch, dyn, vanilla := rows["stochastic"], rows["dynamic"], rows["semi-static"]
		if stoch.NormSpace > dyn.NormSpace+1e-9 {
			t.Errorf("%s: stochastic space %.3f should not exceed dynamic %.3f (Observation 5)",
				c.Profile.Name, stoch.NormSpace, dyn.NormSpace)
		}
		if stoch.NormSpace >= vanilla.NormSpace {
			t.Errorf("%s: stochastic space %.3f should beat vanilla %.3f",
				c.Profile.Name, stoch.NormSpace, vanilla.NormSpace)
		}
		if dyn.NormSpace < vanilla.NormSpace {
			dynamicBeatsVanilla++
		}
		if dyn.Migrations == 0 {
			t.Errorf("%s: dynamic plan must migrate", c.Profile.Name)
		}
	}
	// Section 5.4: dynamic outperforms vanilla semi-static for 3 of the
	// 4 workloads (all but Airlines).
	if dynamicBeatsVanilla != 3 {
		t.Errorf("dynamic beats vanilla on %d workloads, paper reports 3 of 4", dynamicBeatsVanilla)
	}
	airlines := costRows(t, byName(t, sharedContexts(t), "B"))
	if airlines["dynamic"].NormSpace <= airlines["semi-static"].NormSpace {
		t.Error("Airlines should be the workload where dynamic loses to vanilla on space")
	}
}

// TestObservation6Power: dynamic consolidation saves substantial power for
// the bursty CPU-intensive workloads (Banking, Beverage) and much less for
// the memory-bound ones (Airlines, Natural Resources).
func TestObservation6Power(t *testing.T) {
	skipHeavy(t, "full planner comparison")
	saving := make(map[string]float64)
	for _, c := range sharedContexts(t) {
		rows := costRows(t, c)
		saving[c.Profile.Name] = 1 - rows["dynamic"].AvgPowerW/rows["stochastic"].AvgPowerW
	}
	// Banking and Beverage: large savings over stochastic (paper: up to
	// ~50% for Banking).
	if saving["A"] < 0.25 {
		t.Errorf("Banking dynamic power saving over stochastic = %.2f, want >= 0.25", saving["A"])
	}
	if saving["D"] < 0.20 {
		t.Errorf("Beverage dynamic power saving over stochastic = %.2f, want >= 0.20", saving["D"])
	}
	// Airlines and Natural Resources: muted (|saving| small).
	if math.Abs(saving["B"]) > 0.15 {
		t.Errorf("Airlines dynamic power saving = %.2f, want muted (|x| <= 0.15)", saving["B"])
	}
	if math.Abs(saving["C"]) > 0.15 {
		t.Errorf("Natural Resources dynamic power saving = %.2f, want muted (|x| <= 0.15)", saving["C"])
	}
	// The bursty workloads save strictly more than the memory-bound ones.
	if !(saving["A"] > saving["B"] && saving["A"] > saving["C"] && saving["D"] > saving["B"] && saving["D"] > saving["C"]) {
		t.Errorf("power savings ordering violated: %+v", saving)
	}
}

// TestObservation7Sensitivity: Banking's Figure 13 shape — dynamic is very
// sensitive to the migration reservation, crossing below stochastic around
// a 15% reservation and reaching ~18% fewer hosts with no reservation,
// while a 30% reservation makes it worse than vanilla.
func TestObservation7Sensitivity(t *testing.T) {
	skipHeavy(t, "sensitivity sweep")
	c := byName(t, sharedContexts(t), "A")
	sens, err := Sensitivity(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	hosts := make(map[float64]int, len(sens.Points))
	prev := 1 << 30
	for _, pt := range sens.Points {
		hosts[pt.Bound] = pt.DynamicHosts
		if pt.DynamicHosts > prev {
			t.Errorf("dynamic hosts must not increase with the bound: %v", sens.Points)
		}
		prev = pt.DynamicHosts
	}
	if hosts[0.80] <= sens.StochasticHosts {
		t.Errorf("at the baseline bound dynamic (%d) should need at least as many hosts as stochastic (%d)",
			hosts[0.80], sens.StochasticHosts)
	}
	if hosts[0.90] >= sens.StochasticHosts {
		t.Errorf("by bound 0.90 dynamic (%d) should outperform stochastic (%d) (paper: crossover near 0.85)",
			hosts[0.90], sens.StochasticHosts)
	}
	gain := 1 - float64(hosts[1.0])/float64(sens.StochasticHosts)
	if gain < 0.10 || gain > 0.30 {
		t.Errorf("dynamic at bound 1.0 saves %.2f over stochastic, paper reports ~0.18", gain)
	}
	if hosts[0.70] <= sens.VanillaHosts {
		t.Errorf("at bound 0.70 dynamic (%d) should be worse than vanilla (%d)", hosts[0.70], sens.VanillaHosts)
	}
}

// TestContentionShape: contention concentrates in the bursty workloads
// under dynamic consolidation (Figures 8, 9, 11); Airlines never contends.
func TestContentionShape(t *testing.T) {
	skipHeavy(t, "full planner comparison")
	ctxs := sharedContexts(t)
	frac := make(map[string]map[string]float64)
	for _, c := range ctxs {
		rows, err := Fig8Contention(c)
		if err != nil {
			t.Fatal(err)
		}
		frac[c.Profile.Name] = make(map[string]float64)
		for _, r := range rows {
			frac[c.Profile.Name][r.Planner] = r.Fraction
		}
	}
	// Banking-dynamic is the contention hotspot.
	if frac["A"]["dynamic"] <= 0 {
		t.Error("Banking under dynamic consolidation must show contention")
	}
	for _, w := range []string{"B", "C"} {
		if frac[w]["dynamic"] >= frac["A"]["dynamic"] {
			t.Errorf("%s dynamic contention %.3f should be below Banking's %.3f", w, frac[w]["dynamic"], frac["A"]["dynamic"])
		}
	}
	// Airlines: no contention at all, so Figure 9 has no line.
	if frac["B"]["dynamic"] != 0 {
		t.Errorf("Airlines dynamic contention = %.3f, paper shows none", frac["B"]["dynamic"])
	}
	mag, err := Fig9ContentionMagnitude(byName(t, ctxs, "B"))
	if err != nil {
		t.Fatal(err)
	}
	if mag != nil {
		t.Error("Figure 9 must have no Airlines line")
	}
	magA, err := Fig9ContentionMagnitude(byName(t, ctxs, "A"))
	if err != nil {
		t.Fatal(err)
	}
	if magA == nil || magA.Len() == 0 {
		t.Fatal("Figure 9 must have a Banking line")
	}
	// Semi-static contention stays rare everywhere (isolated cases only).
	for w, planners := range frac {
		if planners["semi-static"] > 0.02 {
			t.Errorf("%s semi-static contention %.3f should be isolated (<= 0.02)", w, planners["semi-static"])
		}
	}
}

// TestUtilizationShape: Figures 10-11 — Airlines hosts run at very low CPU
// utilization (memory-bound); dynamic consolidation achieves higher average
// utilization than vanilla for the bursty workloads; Banking-dynamic has
// the largest population of hosts whose peak crosses 100%.
func TestUtilizationShape(t *testing.T) {
	skipHeavy(t, "full planner comparison")
	ctxs := sharedContexts(t)
	curves := make(map[string]map[string]UtilizationCurves)
	for _, c := range ctxs {
		utils, err := Fig10and11Utilization(c)
		if err != nil {
			t.Fatal(err)
		}
		curves[c.Profile.Name] = make(map[string]UtilizationCurves)
		for _, u := range utils {
			curves[c.Profile.Name][u.Planner] = u
		}
	}
	// Airlines: really low average CPU utilization under every scheme.
	for planner, u := range curves["B"] {
		if got := u.Avg.Median(); got > 0.15 {
			t.Errorf("Airlines %s median avg utilization = %.2f, want <= 0.15 (memory-bound)", planner, got)
		}
	}
	// Dynamic raises average utilization over vanilla for Banking.
	if curves["A"]["dynamic"].Avg.Median() <= curves["A"]["semi-static"].Avg.Median() {
		t.Error("Banking dynamic should raise median average utilization over vanilla")
	}
	// Peak-over-100% population is largest for Banking-dynamic.
	bankDyn := curves["A"]["dynamic"].FracPeakOver1
	if bankDyn <= 0 {
		t.Error("Banking dynamic must have hosts crossing 100% peak utilization")
	}
	for _, w := range []string{"B", "C"} {
		if curves[w]["dynamic"].FracPeakOver1 >= bankDyn {
			t.Errorf("%s dynamic peak>100%% fraction should be below Banking's", w)
		}
	}
	if curves["A"]["semi-static"].FracPeakOver1 >= bankDyn {
		t.Error("vanilla semi-static should have fewer hosts crossing 100% than dynamic (Banking)")
	}
}

// TestActiveServersShape: Figure 12 — Banking and Beverage switch off large
// server fractions in quiet intervals; the minimum active fraction drops
// well below 50% for Banking.
func TestActiveServersShape(t *testing.T) {
	skipHeavy(t, "full planner comparison")
	ctxs := sharedContexts(t)
	for _, tt := range []struct {
		workload string
		maxMin   float64 // the minimum active fraction must be below this
	}{
		{workload: "A", maxMin: 0.5},
		{workload: "D", maxMin: 0.6},
	} {
		cdf, err := Fig12ActiveServers(byName(t, ctxs, tt.workload))
		if err != nil {
			t.Fatal(err)
		}
		if got := cdf.Quantile(0); got > tt.maxMin {
			t.Errorf("%s: minimum active fraction = %.2f, want <= %.2f (Figure 12)", tt.workload, got, tt.maxMin)
		}
		if got := cdf.Quantile(1); got > 1.0+1e-9 {
			t.Errorf("%s: active fraction above provisioned: %v", tt.workload, got)
		}
	}
	// Airlines barely varies: its active fraction stays high throughout.
	cdf, err := Fig12ActiveServers(byName(t, ctxs, "B"))
	if err != nil {
		t.Fatal(err)
	}
	if got := cdf.Quantile(0); got < 0.6 {
		t.Errorf("Airlines minimum active fraction = %.2f, want >= 0.6 (stable memory floor)", got)
	}
}

// TestMigrationVolume: Section 6.3 cites that more than 25% of VMs may need
// migration in each consolidation interval for dynamic consolidation.
func TestMigrationVolume(t *testing.T) {
	skipHeavy(t, "full planner comparison")
	c := byName(t, sharedContexts(t), "A")
	run, err := c.Run(core.Dynamic{})
	if err != nil {
		t.Fatal(err)
	}
	intervals := 168.0
	vms := float64(len(c.Monitoring.Servers))
	perInterval := float64(run.Plan.Migrations) / intervals / vms
	if perInterval < 0.05 || perInterval > 0.60 {
		t.Errorf("Banking migrates %.0f%% of VMs per interval, want a substantial fraction (paper cites >25%%)", perInterval*100)
	}
	if run.Plan.MigrationDataMB <= 0 {
		t.Error("migration data volume must be positive")
	}
}

func TestEmulatorVerificationBounds(t *testing.T) {
	skipHeavy(t, "full planner comparison")
	c := byName(t, sharedContexts(t), "A")
	results, err := EmulatorVerification(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d verification rows, want 2", len(results))
	}
	for _, r := range results {
		if r.P99Error <= 0 || r.P99Error > r.Bound {
			t.Errorf("%s 99p error = %.4f, want in (0, %.2f] (Section 5.2)", r.Workload, r.P99Error, r.Bound)
		}
	}
}

func TestOlioStudy(t *testing.T) {
	res, err := OlioStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 6 {
		t.Fatalf("got %d points, want 6", len(res.Points))
	}
	if math.Abs(res.CPUMultiplier-7.9) > 0.05 {
		t.Errorf("CPU multiplier = %.2f, want 7.9", res.CPUMultiplier)
	}
	if math.Abs(res.MemMultiplier-3.0) > 0.05 {
		t.Errorf("memory multiplier = %.2f, want 3.0", res.MemMultiplier)
	}
}

func TestMigrationStudy(t *testing.T) {
	points, err := MigrationStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 30 {
		t.Fatalf("got %d points, want 30", len(points))
	}
	converged, diverged := 0, 0
	for _, p := range points {
		if p.Result.Converged {
			converged++
		} else {
			diverged++
		}
	}
	if converged == 0 || diverged == 0 {
		t.Errorf("study should cover both regimes: %d converged, %d diverged", converged, diverged)
	}
}

func TestTable2(t *testing.T) {
	skipHeavy(t, "needs generated traces")
	sums, err := Table2(sharedContexts(t))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"A": 816, "B": 445, "C": 1390, "D": 722}
	for _, s := range sums {
		if s.Servers != want[s.Name] {
			t.Errorf("%s has %d servers, want %d (Table 2)", s.Name, s.Servers, want[s.Name])
		}
	}
}

func TestCheckTable3(t *testing.T) {
	if err := CheckTable3(); err != nil {
		t.Error(err)
	}
	if len(Table3()) != 5 {
		t.Error("Table 3 should list five settings")
	}
}

func TestFig1Burstiness(t *testing.T) {
	skipHeavy(t, "needs generated traces")
	c := byName(t, sharedContexts(t), "A")
	servers, err := Fig1Burstiness(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(servers) != 2 {
		t.Fatalf("got %d servers", len(servers))
	}
	// Figure 1's motivation: low average, high peak.
	for _, s := range servers {
		if s.AvgUtil > 0.25 {
			t.Errorf("%s average utilization %.2f too high for the Figure 1 signature", s.ID, s.AvgUtil)
		}
		if s.PeakUtil < 0.5 {
			t.Errorf("%s peak utilization %.2f should exceed 50%%", s.ID, s.PeakUtil)
		}
	}
	if _, err := Fig1Burstiness(c, 0); err == nil {
		t.Error("expected error for n < 1")
	}
}

func TestWriteAllSmoke(t *testing.T) {
	skipHeavy(t, "full report")
	var sb strings.Builder
	if err := WriteAll(&sb, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 2", "Table 3", "Figure 1", "Figure 2", "Figure 3", "Figure 4",
		"Figure 5", "Figure 6", "Olio", "migration", "verification",
		"Figure 7", "Figure 8", "Figure 9", "Figures 10-11", "Figure 12", "Figure 13-16",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing section %q", want)
		}
	}
	if !strings.Contains(out, "no contention under dynamic consolidation") {
		t.Error("report should note the missing Airlines line in Figure 9")
	}
}
