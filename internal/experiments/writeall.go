package experiments

import (
	"fmt"
	"io"

	"vmwild/internal/report"
	"vmwild/internal/stats"
)

// WriteAll runs every experiment at the given configuration and renders the
// full table-and-figure report — the source of EXPERIMENTS.md.
func WriteAll(w io.Writer, cfg Config) error {
	ctxs, err := Contexts(cfg)
	if err != nil {
		return err
	}

	// Table 2.
	summaries, err := Table2(ctxs)
	if err != nil {
		return err
	}
	t := report.NewTable("Table 2: workload summary", "name", "industry", "servers", "cpu util", "web frac")
	for _, s := range summaries {
		t.AddRow(s.Name, s.Industry, s.Servers, s.MeanCPUUtil, s.WebFraction)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Table 3.
	t = report.NewTable("\nTable 3: baseline experimental settings", "metric", "value")
	for _, s := range Table3() {
		t.AddRow(s.Metric, s.Value)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if err := CheckTable3(); err != nil {
		return err
	}

	// Figure 1.
	t = report.NewTable("\nFigure 1: burstiness of sample servers (Banking)",
		"server", "avg util", "peak util", "peak/avg", "CoV")
	fig1, err := Fig1Burstiness(ctxs[0], 2)
	if err != nil {
		return err
	}
	for _, b := range fig1 {
		t.AddRow(string(b.ID), b.AvgUtil, b.PeakUtil, b.PeakToAvg, b.CoV)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Figures 2-5.
	if err := writeBurstiness(w, ctxs); err != nil {
		return err
	}

	// Figure 6.
	t = report.NewTable("\nFigure 6: aggregate CPU/memory demand ratio (RPE2 per GB, blade ratio 160)",
		"workload", "p10", "p50", "p90", "mem-bound frac")
	for _, c := range ctxs {
		r, err := Fig6ResourceRatio(c)
		if err != nil {
			return err
		}
		t.AddRow(r.Workload, r.CDF.Quantile(0.10), r.CDF.Median(), r.CDF.Quantile(0.90), r.MemoryBoundFrac)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Olio micro-study.
	olio, err := OlioStudy()
	if err != nil {
		return err
	}
	t = report.NewTable(fmt.Sprintf("\nOlio scaling study (CPU x%.1f, memory x%.1f for 6x throughput)",
		olio.CPUMultiplier, olio.MemMultiplier), "ops/s", "cpu cores", "mem MB")
	for _, p := range olio.Points {
		t.AddRow(p.TputOpsSec, p.CPUCores, p.MemMB)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Migration study.
	migs, err := MigrationStudy()
	if err != nil {
		return err
	}
	t = report.NewTable("\nLive migration pre-copy study", "mem GB", "dirty MB/s", "duration", "downtime", "rounds", "converged")
	for _, m := range migs {
		t.AddRow(m.MemGB, m.DirtyMBps, m.Result.Duration.Round(1e8).String(), m.Result.Downtime.Round(1e6).String(), m.Result.Rounds, m.Result.Converged)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Emulator verification.
	t = report.NewTable("\nEmulator verification (99th-percentile error)", "workload", "p99 error", "paper bound")
	ver, err := EmulatorVerification(ctxs[0])
	if err != nil {
		return err
	}
	for _, v := range ver {
		t.AddRow(v.Workload, v.P99Error, v.Bound)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Figures 7-12.
	for _, c := range ctxs {
		if err := writePlannerComparison(w, c); err != nil {
			return err
		}
	}

	// Figures 13-16.
	for _, c := range ctxs {
		sens, err := Sensitivity(c, nil)
		if err != nil {
			return err
		}
		t = report.NewTable(fmt.Sprintf("\nFigure 13-16 (%s): dynamic hosts vs utilization bound (vanilla=%d stochastic=%d)",
			c.Profile.Name, sens.VanillaHosts, sens.StochasticHosts), "bound", "dynamic hosts")
		for _, pt := range sens.Points {
			t.AddRow(pt.Bound, pt.DynamicHosts)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	// Section 7 extension studies (Banking).
	banking := ctxs[0]
	ivals, err := IntervalStudy(banking, nil)
	if err != nil {
		return err
	}
	t = report.NewTable("\nSection 7 study (A): dynamic consolidation interval sweep",
		"interval h", "hosts", "power W", "migrations", "contention hrs")
	for _, p := range ivals {
		t.AddRow(p.IntervalHours, p.Provisioned, p.AvgPowerW, p.Migrations, p.ContentionHrs)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	preds, err := PredictorStudy(banking)
	if err != nil {
		return err
	}
	t = report.NewTable("\nSection 7 study (A): sizing predictor ablation",
		"predictor", "hosts", "power W", "contention hrs", "migrations")
	for _, p := range preds {
		t.AddRow(p.Predictor, p.Provisioned, p.AvgPowerW, p.ContentionHrs, p.Migrations)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	mechs, err := ImprovedMigrationStudy(banking)
	if err != nil {
		return err
	}
	t = report.NewTable("\nSection 7 study (A): improved live migration (Observation 7)",
		"mechanism", "reservation", "downtime ms", "transfer MB", "dynamic hosts", "beats stochastic")
	for _, m := range mechs {
		t.AddRow(m.Mechanism, m.Reservation, m.DowntimeMs, m.TransferredMB, m.DynamicHosts, m.BeatsStochastic)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	blades, err := BladeStudy(banking, nil)
	if err != nil {
		return err
	}
	t = report.NewTable("\nBlade study (A): the memory extension behind Observation 3",
		"blade", "RPE2/GB", "mem-bound frac", "vanilla", "stochastic", "dynamic")
	for _, b := range blades {
		t.AddRow(b.Model, b.RatioPerGB, b.MemoryBoundFrac, b.VanillaHosts, b.StochasticHosts, b.DynamicHosts)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	execRows, err := ExecutionStudy(banking)
	if err != nil {
		return err
	}
	t = report.NewTable("\nExecution study (A): do the migration waves fit the 2h interval?",
		"mechanism", "p50", "p95", "max", "infeasible frac", "avg moves", "data GB", "bounced")
	for _, r := range execRows {
		t.AddRow(r.Mechanism, r.P50.Round(1e9).String(), r.P95.Round(1e9).String(), r.Max.Round(1e9).String(),
			r.InfeasibleFrac, r.AvgMoves, r.TotalDataGB, r.Bounced)
	}
	return t.Render(w)
}

func writeBurstiness(w io.Writer, ctxs []*Context) error {
	for _, fig := range []struct {
		title string
		curve func(*Context) ([]IntervalCurve, error)
	}{
		{title: "\nFigure 2: CDF of CPU peak-to-average ratio", curve: Fig2PeakAvgCPU},
		{title: "\nFigure 4: CDF of memory peak-to-average ratio", curve: Fig4PeakAvgMem},
	} {
		curves := make(map[string]*stats.CDF)
		var order []string
		for _, c := range ctxs {
			ics, err := fig.curve(c)
			if err != nil {
				return err
			}
			for _, ic := range ics {
				name := fmt.Sprintf("%s @%dh", c.Profile.Name, ic.IntervalHours)
				curves[name] = ic.CDF
				order = append(order, name)
			}
		}
		t, err := report.CDFTable(fig.title, report.DefaultQuantiles, curves, order)
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	for _, fig := range []struct {
		title string
		curve func(*Context) (*stats.CDF, error)
	}{
		{title: "\nFigure 3: CDF of CPU coefficient of variability", curve: Fig3CoVCPU},
		{title: "\nFigure 5: CDF of memory coefficient of variability", curve: Fig5CoVMem},
	} {
		curves := make(map[string]*stats.CDF)
		var order []string
		for _, c := range ctxs {
			cdf, err := fig.curve(c)
			if err != nil {
				return err
			}
			curves[c.Profile.Name] = cdf
			order = append(order, c.Profile.Name)
		}
		t, err := report.CDFTable(fig.title, report.DefaultQuantiles, curves, order)
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func writePlannerComparison(w io.Writer, c *Context) error {
	rows, err := Fig7Costs(c)
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("\nFigure 7 (%s): infrastructure cost comparison", c.Profile.Name),
		"planner", "hosts", "space (norm)", "power W", "power (norm)", "migrations", "migr GB")
	for _, r := range rows {
		t.AddRow(r.Planner, r.Hosts, r.NormSpace, r.AvgPowerW, r.NormPower, r.Migrations, r.MigrationDataGB)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	cont, err := Fig8Contention(c)
	if err != nil {
		return err
	}
	t = report.NewTable(fmt.Sprintf("\nFigure 8 (%s): contention time", c.Profile.Name),
		"planner", "hours", "fraction")
	for _, r := range cont {
		t.AddRow(r.Planner, r.Hours, r.Fraction)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	mag, err := Fig9ContentionMagnitude(c)
	if err != nil {
		return err
	}
	if mag == nil {
		fmt.Fprintf(w, "\nFigure 9 (%s): no contention under dynamic consolidation\n", c.Profile.Name)
	} else {
		t, err := report.CDFTable(fmt.Sprintf("\nFigure 9 (%s): CPU contention magnitude under dynamic", c.Profile.Name),
			report.DefaultQuantiles, map[string]*stats.CDF{"contention": mag}, []string{"contention"})
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	utils, err := Fig10and11Utilization(c)
	if err != nil {
		return err
	}
	t = report.NewTable(fmt.Sprintf("\nFigures 10-11 (%s): host CPU utilization", c.Profile.Name),
		"planner", "avg p50", "avg p90", "peak p50", "peak p90", "peak>100%")
	for _, u := range utils {
		t.AddRow(u.Planner, u.Avg.Median(), u.Avg.Quantile(0.90), u.Peak.Median(), u.Peak.Quantile(0.90), u.FracPeakOver1)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	active, err := Fig12ActiveServers(c)
	if err != nil {
		return err
	}
	t, err = report.CDFTable(fmt.Sprintf("\nFigure 12 (%s): active-server fraction under dynamic", c.Profile.Name),
		report.DefaultQuantiles, map[string]*stats.CDF{"active frac": active}, []string{"active frac"})
	if err != nil {
		return err
	}
	return t.Render(w)
}
