package experiments

import (
	"context"
	"fmt"
	"io"

	"vmwild/internal/report"
	"vmwild/internal/stats"
)

// WriteAll runs every experiment at the given configuration and renders the
// full table-and-figure report — the source of EXPERIMENTS.md. It executes
// the grid strictly sequentially; WriteAllWith fans it out across workers
// and produces byte-identical output.
func WriteAll(w io.Writer, cfg Config) error {
	return WriteAllWith(context.Background(), w, cfg, Options{Workers: 1})
}

// WriteAllWith collects the experiment grid under ctx with the given
// execution options and renders the report. At the same configuration the
// output is byte-identical for every worker count: cells are collected in
// typed form and rendered in fixed paper order, never in completion order.
func WriteAllWith(ctx context.Context, w io.Writer, cfg Config, opts Options) error {
	res, err := Collect(ctx, cfg, opts)
	if err != nil {
		return err
	}
	return Render(w, res)
}

// Render writes the collected results as the full report, in the paper's
// order: Tables 2-3, Figures 1-6, the micro-studies, the emulator
// verification, Figures 7-16, and the Section 7 extension studies.
func Render(w io.Writer, res *Results) error {
	// Table 2.
	t := report.NewTable("Table 2: workload summary", "name", "industry", "servers", "cpu util", "web frac")
	for _, s := range res.Summaries {
		t.AddRow(s.Name, s.Industry, s.Servers, s.MeanCPUUtil, s.WebFraction)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Table 3.
	t = report.NewTable("\nTable 3: baseline experimental settings", "metric", "value")
	for _, s := range Table3() {
		t.AddRow(s.Metric, s.Value)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if err := CheckTable3(); err != nil {
		return err
	}

	// Figure 1.
	t = report.NewTable("\nFigure 1: burstiness of sample servers (Banking)",
		"server", "avg util", "peak util", "peak/avg", "CoV")
	for _, b := range res.Fig1 {
		t.AddRow(string(b.ID), b.AvgUtil, b.PeakUtil, b.PeakToAvg, b.CoV)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Figures 2-5.
	if err := renderBurstiness(w, res); err != nil {
		return err
	}

	// Figure 6.
	t = report.NewTable("\nFigure 6: aggregate CPU/memory demand ratio (RPE2 per GB, blade ratio 160)",
		"workload", "p10", "p50", "p90", "mem-bound frac")
	for _, r := range res.Ratios {
		t.AddRow(r.Workload, r.CDF.Quantile(0.10), r.CDF.Median(), r.CDF.Quantile(0.90), r.MemoryBoundFrac)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Olio micro-study.
	t = report.NewTable(fmt.Sprintf("\nOlio scaling study (CPU x%.1f, memory x%.1f for 6x throughput)",
		res.Olio.CPUMultiplier, res.Olio.MemMultiplier), "ops/s", "cpu cores", "mem MB")
	for _, p := range res.Olio.Points {
		t.AddRow(p.TputOpsSec, p.CPUCores, p.MemMB)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Migration study.
	t = report.NewTable("\nLive migration pre-copy study", "mem GB", "dirty MB/s", "duration", "downtime", "rounds", "converged")
	for _, m := range res.Migration {
		t.AddRow(m.MemGB, m.DirtyMBps, m.Result.Duration.Round(1e8).String(), m.Result.Downtime.Round(1e6).String(), m.Result.Rounds, m.Result.Converged)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Emulator verification.
	t = report.NewTable("\nEmulator verification (99th-percentile error)", "workload", "p99 error", "paper bound")
	for _, v := range res.Verification {
		t.AddRow(v.Workload, v.P99Error, v.Bound)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// Figures 7-12.
	for i := range res.Workloads {
		if err := renderPlannerComparison(w, res, i); err != nil {
			return err
		}
	}

	// Figures 13-16.
	for _, sens := range res.Sensitivity {
		t = report.NewTable(fmt.Sprintf("\nFigure 13-16 (%s): dynamic hosts vs utilization bound (vanilla=%d stochastic=%d)",
			sens.Workload, sens.VanillaHosts, sens.StochasticHosts), "bound", "dynamic hosts")
		for _, pt := range sens.Points {
			t.AddRow(pt.Bound, pt.DynamicHosts)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	// Section 7 extension studies (Banking).
	t = report.NewTable("\nSection 7 study (A): dynamic consolidation interval sweep",
		"interval h", "hosts", "power W", "migrations", "contention hrs")
	for _, p := range res.Intervals {
		t.AddRow(p.IntervalHours, p.Provisioned, p.AvgPowerW, p.Migrations, p.ContentionHrs)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	t = report.NewTable("\nSection 7 study (A): sizing predictor ablation",
		"predictor", "hosts", "power W", "contention hrs", "migrations")
	for _, p := range res.Predictors {
		t.AddRow(p.Predictor, p.Provisioned, p.AvgPowerW, p.ContentionHrs, p.Migrations)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	t = report.NewTable("\nSection 7 study (A): improved live migration (Observation 7)",
		"mechanism", "reservation", "downtime ms", "transfer MB", "dynamic hosts", "beats stochastic")
	for _, m := range res.Mechanisms {
		t.AddRow(m.Mechanism, m.Reservation, m.DowntimeMs, m.TransferredMB, m.DynamicHosts, m.BeatsStochastic)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	t = report.NewTable("\nBlade study (A): the memory extension behind Observation 3",
		"blade", "RPE2/GB", "mem-bound frac", "vanilla", "stochastic", "dynamic")
	for _, b := range res.Blades {
		t.AddRow(b.Model, b.RatioPerGB, b.MemoryBoundFrac, b.VanillaHosts, b.StochasticHosts, b.DynamicHosts)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	t = report.NewTable("\nExecution study (A): do the migration waves fit the 2h interval?",
		"mechanism", "p50", "p95", "max", "infeasible frac", "avg moves", "data GB", "bounced")
	for _, r := range res.Execution {
		t.AddRow(r.Mechanism, r.P50.Round(1e9).String(), r.P95.Round(1e9).String(), r.Max.Round(1e9).String(),
			r.InfeasibleFrac, r.AvgMoves, r.TotalDataGB, r.Bounced)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	t = report.NewTable("\nFailure study (A): consolidation quality under migration faults",
		"fail rate", "retries", "avg hosts", "violations", "attempted", "succeeded", "aborted", "degraded ivals")
	for _, r := range res.Failure {
		t.AddRow(r.FailureRate, r.RetryBudget, r.AvgHosts, r.Violations,
			r.Attempted, r.Succeeded, r.Aborted, r.DegradedIntervals)
	}
	return t.Render(w)
}

func renderBurstiness(w io.Writer, res *Results) error {
	for _, fig := range []struct {
		title  string
		curves [][]IntervalCurve
	}{
		{title: "\nFigure 2: CDF of CPU peak-to-average ratio", curves: res.PeakAvgCPU},
		{title: "\nFigure 4: CDF of memory peak-to-average ratio", curves: res.PeakAvgMem},
	} {
		curves := make(map[string]*stats.CDF)
		var order []string
		for i, ics := range fig.curves {
			for _, ic := range ics {
				name := fmt.Sprintf("%s @%dh", res.Workloads[i], ic.IntervalHours)
				curves[name] = ic.CDF
				order = append(order, name)
			}
		}
		t, err := report.CDFTable(fig.title, report.DefaultQuantiles, curves, order)
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	for _, fig := range []struct {
		title string
		cdfs  []*stats.CDF
	}{
		{title: "\nFigure 3: CDF of CPU coefficient of variability", cdfs: res.CoVCPU},
		{title: "\nFigure 5: CDF of memory coefficient of variability", cdfs: res.CoVMem},
	} {
		curves := make(map[string]*stats.CDF)
		var order []string
		for i, cdf := range fig.cdfs {
			curves[res.Workloads[i]] = cdf
			order = append(order, res.Workloads[i])
		}
		t, err := report.CDFTable(fig.title, report.DefaultQuantiles, curves, order)
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

func renderPlannerComparison(w io.Writer, res *Results, i int) error {
	name := res.Workloads[i]
	t := report.NewTable(fmt.Sprintf("\nFigure 7 (%s): infrastructure cost comparison", name),
		"planner", "hosts", "space (norm)", "power W", "power (norm)", "migrations", "migr GB")
	for _, r := range res.Costs[i] {
		t.AddRow(r.Planner, r.Hosts, r.NormSpace, r.AvgPowerW, r.NormPower, r.Migrations, r.MigrationDataGB)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	t = report.NewTable(fmt.Sprintf("\nFigure 8 (%s): contention time", name),
		"planner", "hours", "fraction")
	for _, r := range res.Contention[i] {
		t.AddRow(r.Planner, r.Hours, r.Fraction)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	if mag := res.Magnitude[i]; mag == nil {
		fmt.Fprintf(w, "\nFigure 9 (%s): no contention under dynamic consolidation\n", name)
	} else {
		t, err := report.CDFTable(fmt.Sprintf("\nFigure 9 (%s): CPU contention magnitude under dynamic", name),
			report.DefaultQuantiles, map[string]*stats.CDF{"contention": mag}, []string{"contention"})
		if err != nil {
			return err
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	t = report.NewTable(fmt.Sprintf("\nFigures 10-11 (%s): host CPU utilization", name),
		"planner", "avg p50", "avg p90", "peak p50", "peak p90", "peak>100%")
	for _, u := range res.Utilization[i] {
		t.AddRow(u.Planner, u.Avg.Median(), u.Avg.Quantile(0.90), u.Peak.Median(), u.Peak.Quantile(0.90), u.FracPeakOver1)
	}
	if err := t.Render(w); err != nil {
		return err
	}

	active := res.Active[i]
	t, err := report.CDFTable(fmt.Sprintf("\nFigure 12 (%s): active-server fraction under dynamic", name),
		report.DefaultQuantiles, map[string]*stats.CDF{"active frac": active}, []string{"active frac"})
	if err != nil {
		return err
	}
	return t.Render(w)
}
