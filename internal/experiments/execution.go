package experiments

import (
	"errors"
	"fmt"
	"time"

	"vmwild/internal/core"
	"vmwild/internal/emulator"
	"vmwild/internal/executor"
	"vmwild/internal/stats"
)

// ExecutionRow summarizes executing the dynamic plan's migration waves with
// one migration mechanism — the Section 1.2 adoption question made
// quantitative: does the re-planning of each interval actually fit inside
// the interval?
type ExecutionRow struct {
	Mechanism string
	// Interval execution-time distribution across the plan's intervals
	// that had any migrations.
	P50, P95, Max time.Duration
	// InfeasibleFrac is the fraction of intervals whose migration waves
	// exceed the consolidation interval itself.
	InfeasibleFrac float64
	// AvgMoves is the mean number of migrations per re-planned interval.
	AvgMoves float64
	// TotalDataGB is the network volume over the whole window.
	TotalDataGB float64
	// Bounced counts VMs staged through a spare host to break cyclic
	// space dependencies.
	Bounced int
}

// ExecutionStudy schedules every interval transition of the workload's
// dynamic plan under pre-copy and post-copy migration and reports whether
// the waves fit the 2-hour interval.
func ExecutionStudy(c *Context) ([]ExecutionRow, error) {
	run, err := c.Run(core.Dynamic{})
	if err != nil {
		return nil, err
	}
	sched, ok := run.Plan.Schedule.(emulator.IntervalSchedule)
	if !ok {
		return nil, errors.New("experiments: dynamic plan has no interval schedule")
	}
	intervalDur := time.Duration(sched.IntervalHours) * time.Hour

	mechanisms := []struct {
		name string
		cfg  executor.Config
	}{
		{name: "pre-copy", cfg: preCopyExecCfg()},
		{name: "post-copy", cfg: postCopyExecCfg()},
	}
	var rows []ExecutionRow
	for _, mech := range mechanisms {
		var (
			durations  []float64
			moves      int
			intervals  int
			infeasible int
			dataMB     float64
			bounced    int
		)
		for k := 1; k < len(sched.Placements); k++ {
			plan, diff, err := executor.ScheduleTransition(sched.Placements[k-1], sched.Placements[k], mech.cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: schedule interval %d (%s): %w", k, mech.name, err)
			}
			if len(diff) == 0 {
				continue
			}
			durations = append(durations, plan.Total.Seconds())
			moves += plan.Moves()
			intervals++
			dataMB += plan.DataMB
			bounced += plan.Bounced
			if plan.Total > intervalDur {
				infeasible++
			}
		}
		if intervals == 0 {
			return nil, errors.New("experiments: dynamic plan never migrated")
		}
		cdf, err := stats.NewCDF(durations)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExecutionRow{
			Mechanism:      mech.name,
			P50:            time.Duration(cdf.Median() * float64(time.Second)),
			P95:            time.Duration(cdf.Quantile(0.95) * float64(time.Second)),
			Max:            time.Duration(cdf.Quantile(1) * float64(time.Second)),
			InfeasibleFrac: float64(infeasible) / float64(intervals),
			AvgMoves:       float64(moves) / float64(intervals),
			TotalDataGB:    dataMB / 1024,
			Bounced:        bounced,
		})
	}
	return rows, nil
}

func preCopyExecCfg() executor.Config {
	cfg := executor.DefaultConfig()
	cfg.SpareHost = true
	return cfg
}

func postCopyExecCfg() executor.Config {
	cfg := executor.DefaultConfig()
	cfg.SpareHost = true
	cfg.PostCopy = true
	return cfg
}
