package experiments

import (
	"testing"

	"vmwild/internal/workload"
)

// BenchmarkSensitivitySweep measures the Figures 13-16 sweep on a 64-server
// custom estate: two baseline planner runs plus seven plan-only dynamic
// cells. The first iteration warms the context's run and demand caches, so
// the steady state is the shared-cache path the report grid runs.
func BenchmarkSensitivitySweep(b *testing.B) {
	p, err := workload.FromTemplate(workload.Template{
		Name: "bench-sweep", Servers: 64, WebFraction: 0.5, Burstiness: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewContext(p, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sensitivity(c, nil); err != nil {
			b.Fatal(err)
		}
	}
}
