package experiments

import (
	"reflect"
	"testing"

	"vmwild/internal/workload"
)

// failureCtx builds one small Banking context for the failure study tests.
func failureCtx(t *testing.T) *Context {
	t.Helper()
	p := *workload.Profiles()[0]
	c, err := NewContext(&p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFailureStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("failure study runs 48 controller intervals")
	}
	c := failureCtx(t)
	rows, err := FailureStudy(c)
	if err != nil {
		t.Fatal(err)
	}
	want := len(DefaultFailureRates) * len(DefaultRetryBudgets)
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.FailureRate == 0 {
			// The fault-free cells must behave exactly like the plain
			// executor: nothing fails, nothing aborts, nothing degrades.
			if r.Aborted != 0 || r.DegradedIntervals != 0 {
				t.Errorf("fault-free cell degraded: %+v", r)
			}
			if r.Attempted != r.Succeeded {
				t.Errorf("fault-free cell attempted %d != succeeded %d", r.Attempted, r.Succeeded)
			}
		} else if r.Attempted < r.Succeeded {
			t.Errorf("rate %.2f: attempted %d < succeeded %d", r.FailureRate, r.Attempted, r.Succeeded)
		}
	}
	// Faults must actually bite somewhere, or the study measures nothing.
	hit := false
	for _, r := range rows {
		if r.FailureRate > 0 && r.Attempted > r.Succeeded+r.Aborted {
			hit = true
		}
	}
	if !hit {
		t.Error("no cell recorded a failed attempt; fault injection is inert")
	}

	// Determinism: a second run over a fresh context reproduces the rows
	// exactly — every fault decision is a pure function of (seed, identity).
	again, err := FailureStudy(failureCtx(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Errorf("failure study not reproducible:\n first=%+v\nsecond=%+v", rows, again)
	}
}
