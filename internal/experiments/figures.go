package experiments

import (
	"fmt"
	"sort"

	"vmwild/internal/analysis"
	"vmwild/internal/catalog"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// BurstinessIntervals are the consolidation-interval durations the paper
// studies in Figures 2 and 4.
var BurstinessIntervals = []int{1, 2, 4}

// Fig1Burstiness reproduces Figure 1: it picks the n burstiest servers of
// the monitoring window and reports their utilization profile, showing the
// low-average/high-peak signature that motivates dynamic consolidation.
func Fig1Burstiness(c *Context, n int) ([]analysis.ServerBurstiness, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: need at least one server, got %d", n)
	}
	all := make([]analysis.ServerBurstiness, 0, len(c.Monitoring.Servers))
	for _, st := range c.Monitoring.Servers {
		b, err := analysis.Burstiness(st)
		if err != nil {
			return nil, err
		}
		all = append(all, b)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].PeakToAvg != all[j].PeakToAvg {
			return all[i].PeakToAvg > all[j].PeakToAvg
		}
		return all[i].ID < all[j].ID
	})
	if n > len(all) {
		n = len(all)
	}
	return all[:n], nil
}

// IntervalCurve is one CDF curve of Figures 2 or 4: the per-server
// peak-to-average ratio at one consolidation-interval length.
type IntervalCurve struct {
	IntervalHours int
	CDF           *stats.CDF
}

// Fig2PeakAvgCPU computes the Figure 2 curves (CPU peak-to-average ratio at
// 1, 2 and 4 hour intervals) for one workload.
func Fig2PeakAvgCPU(c *Context) ([]IntervalCurve, error) {
	return peakAvgCurves(c, trace.CPU)
}

// Fig4PeakAvgMem computes the Figure 4 curves (memory peak-to-average).
func Fig4PeakAvgMem(c *Context) ([]IntervalCurve, error) {
	return peakAvgCurves(c, trace.Mem)
}

func peakAvgCurves(c *Context, r trace.Resource) ([]IntervalCurve, error) {
	out := make([]IntervalCurve, 0, len(BurstinessIntervals))
	for _, h := range BurstinessIntervals {
		cdf, err := analysis.PeakToAverageCDF(c.Monitoring, h, r)
		if err != nil {
			return nil, err
		}
		out = append(out, IntervalCurve{IntervalHours: h, CDF: cdf})
	}
	return out, nil
}

// Fig3CoVCPU computes the Figure 3 curve: per-server CPU coefficient of
// variability.
func Fig3CoVCPU(c *Context) (*stats.CDF, error) {
	return analysis.CoVCDF(c.Monitoring, trace.CPU)
}

// Fig5CoVMem computes the Figure 5 curve: per-server memory CoV.
func Fig5CoVMem(c *Context) (*stats.CDF, error) {
	return analysis.CoVCDF(c.Monitoring, trace.Mem)
}

// RatioResult is Figure 6 for one workload: the CDF of the aggregate
// CPU/memory demand ratio across consolidation intervals and the fraction
// of intervals that are memory-constrained relative to the reference blade.
type RatioResult struct {
	Workload        string
	CDF             *stats.CDF
	MemoryBoundFrac float64
	BladeRatio      float64
}

// Fig6ResourceRatio computes Figure 6 over the evaluation window at the
// baseline 2-hour interval.
func Fig6ResourceRatio(c *Context) (RatioResult, error) {
	cdf, err := analysis.ResourceRatioCDF(c.Evaluation, 2)
	if err != nil {
		return RatioResult{}, err
	}
	return RatioResult{
		Workload:        c.Profile.Name,
		CDF:             cdf,
		MemoryBoundFrac: cdf.At(catalog.ReferenceRatioPerGB),
		BladeRatio:      catalog.ReferenceRatioPerGB,
	}, nil
}

// WorkloadSummary is one Table 2 row.
type WorkloadSummary struct {
	Name        string
	Industry    string
	Servers     int
	MeanCPUUtil float64
	WebFraction float64
}

// Table2 summarizes the study workloads.
func Table2(ctxs []*Context) ([]WorkloadSummary, error) {
	out := make([]WorkloadSummary, 0, len(ctxs))
	for _, c := range ctxs {
		util, err := analysis.MeanCPUUtilization(c.Monitoring)
		if err != nil {
			return nil, err
		}
		out = append(out, WorkloadSummary{
			Name:        c.Profile.Name,
			Industry:    c.Profile.Industry,
			Servers:     len(c.Monitoring.Servers),
			MeanCPUUtil: util,
			WebFraction: c.Profile.WebFraction(),
		})
	}
	return out, nil
}
