package experiments

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"vmwild/internal/core"
	"vmwild/internal/workload"
)

// The golden-report wall. testdata/report.golden is the full report at the
// default seed, committed so that any drift in the reproduced numbers —
// silent or not — fails the build. The same bytes must come out of the
// sequential path and the parallel sweep at any worker count; regenerate
// with
//
//	go test ./internal/experiments -run TestGoldenReport -update

var update = flag.Bool("update", false, "rewrite testdata/report.golden from the current code")

const goldenPath = "testdata/report.golden"

// reportRun caches one full-grid collection per worker count, shared by the
// golden and parallel tests so the package does not repeat 25s collections.
type reportRun struct {
	once sync.Once
	res  *Results
	out  []byte
	err  error
}

var (
	seqRun reportRun // workers = 1
	parRun reportRun // workers = 8
)

func (r *reportRun) collect(t *testing.T, workers int) (*Results, []byte) {
	t.Helper()
	r.once.Do(func() {
		res, err := Collect(context.Background(), DefaultConfig(), Options{Workers: workers})
		if err != nil {
			r.err = err
			return
		}
		var buf bytes.Buffer
		if err := Render(&buf, res); err != nil {
			r.err = err
			return
		}
		r.res, r.out = res, buf.Bytes()
	})
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.res, r.out
}

// TestGoldenReport: WriteAll reproduces the committed report byte for byte
// at the default seed.
func TestGoldenReport(t *testing.T) {
	skipHeavy(t, "full report collection")
	_, out := seqRun.collect(t, 1)
	if *update {
		if err := os.WriteFile(goldenPath, out, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenPath, len(out))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	diffBytes(t, "sequential report", want, out)

	// WriteAll is the public sequential entry point; it must emit the very
	// bytes the cached collection rendered.
	var buf bytes.Buffer
	if err := WriteAll(&buf, DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	diffBytes(t, "WriteAll", want, buf.Bytes())
}

// TestParallelReportMatchesGolden: the sweep engine at 8 workers emits the
// identical bytes — the parallel==sequential guarantee, end to end.
func TestParallelReportMatchesGolden(t *testing.T) {
	skipHeavy(t, "full report collection")
	_, out := parRun.collect(t, 8)
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	diffBytes(t, "parallel report (8 workers)", want, out)
}

// TestFullGridDeterminism: the typed results of the full grid agree cell by
// cell between the sequential and the 8-worker collection.
func TestFullGridDeterminism(t *testing.T) {
	skipHeavy(t, "full report collection")
	seq, _ := seqRun.collect(t, 1)
	par, _ := parRun.collect(t, 8)
	assertResultsEqual(t, "workers 1 vs 8 (full grid)", seq, par)
}

// TestSweepDeterminism: the regression net for shared-RNG leaks. A reduced
// grid (the Airlines datacenter) is collected from scratch at worker counts
// 1, 4 and 8; every typed cell must be identical. This test runs under the
// race detector, where it doubles as the concurrency check for the whole
// collect machinery (once-caches, run memoization, slot writes).
func TestSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("reduced-grid collection")
	}
	grid := func(workers int) *Results {
		t.Helper()
		res, err := collect(context.Background(), DefaultConfig(), Options{Workers: workers},
			[]*workload.Profile{workload.Airlines()})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	base := grid(1)
	for _, workers := range []int{4, 8} {
		assertResultsEqual(t, fmt.Sprintf("workers 1 vs %d", workers), base, grid(workers))
	}
}

// TestCacheEquivalence: the shared demand and correlation caches are a pure
// performance optimization. With Config.DisableSharedCaches forcing every
// dynamic plan to recompute its predictions inline and every stochastic plan
// to rebuild its correlation function, the 8-worker report must still emit
// the committed golden bytes.
func TestCacheEquivalence(t *testing.T) {
	skipHeavy(t, "full report collection")
	cfg := DefaultConfig()
	cfg.DisableSharedCaches = true
	res, err := Collect(context.Background(), cfg, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, res); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	diffBytes(t, "cache-disabled report (8 workers)", want, buf.Bytes())
}

// TestIncrementalEquivalence: the incremental fast paths — flattened
// packing kernels, indexed correlation lookups, cross-interval evacuation
// certificates, plan-only sensitivity cells — are a pure performance
// optimization. With Config.DisableIncremental reverting every planner to
// its retained reference implementation, the 8-worker report must still
// emit the committed golden bytes.
func TestIncrementalEquivalence(t *testing.T) {
	skipHeavy(t, "full report collection")
	cfg := DefaultConfig()
	cfg.DisableIncremental = true
	res, err := Collect(context.Background(), cfg, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, res); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	diffBytes(t, "incremental-disabled report (8 workers)", want, buf.Bytes())
}

// TestSharedCacheConcurrency hammers the context-level demand and
// correlation caches from 8 goroutines at once. Every caller must observe
// the same matrix (pointer identity: each key computes exactly once), the
// shared correlation function must tolerate concurrent reads and fills of
// its memo matrix, and the resulting plans must agree. Not gated by
// skipHeavy: under -race this is the concurrency proof for both caches.
func TestSharedCacheConcurrency(t *testing.T) {
	p, err := workload.FromTemplate(workload.Template{
		Name: "cache-race", Servers: 48, WebFraction: 0.5, Burstiness: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewContext(p, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var (
		wg    sync.WaitGroup
		mats  [workers]*core.DemandMatrix
		plans [workers]*core.Plan
		errs  [workers]error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := c.Input()
			m, err := c.SizedDemands(in)
			if err != nil {
				errs[w] = err
				return
			}
			mats[w] = m
			corr, err := c.SharedCorrelations(core.DefaultIntervalHours)
			if err != nil {
				errs[w] = err
				return
			}
			servers := c.Monitoring.Servers
			for i := range servers {
				for j := i + 1; j < len(servers); j++ {
					corr(servers[i].ID, servers[j].ID)
				}
			}
			plan, err := c.PlanDynamic(in)
			if err != nil {
				errs[w] = err
				return
			}
			plans[w] = plan
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		if mats[w] != mats[0] {
			t.Errorf("worker %d observed a different demand matrix (key computed more than once)", w)
		}
		if plans[w].Provisioned != plans[0].Provisioned || plans[w].Migrations != plans[0].Migrations {
			t.Errorf("worker %d plan differs: %d hosts / %d migrations, worker 0 got %d / %d",
				w, plans[w].Provisioned, plans[w].Migrations, plans[0].Provisioned, plans[0].Migrations)
		}
	}
}

// TestCollectCancellation: a canceled context aborts the grid promptly with
// the context error instead of running (or deadlocking on) the remaining
// cells.
func TestCollectCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Collect(ctx, DefaultConfig(), Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Collect on canceled context = %v, want context.Canceled", err)
	}
}

// assertResultsEqual compares two collections field by field so a
// determinism regression names the drifted artifact.
func assertResultsEqual(t *testing.T, tag string, a, b *Results) {
	t.Helper()
	va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
	tp := reflect.TypeOf(*a)
	for i := 0; i < tp.NumField(); i++ {
		if !reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
			t.Errorf("%s: artifact %s differs between runs", tag, tp.Field(i).Name)
		}
	}
}

// diffBytes fails with the first differing line, so a golden mismatch
// points at the drifted table instead of dumping 14 KB.
func diffBytes(t *testing.T, tag string, want, got []byte) {
	t.Helper()
	if bytes.Equal(want, got) {
		return
	}
	wantLines, gotLines := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(wantLines) && i < len(gotLines); i++ {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Fatalf("%s: line %d differs\n  want: %s\n  got:  %s", tag, i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("%s: length differs: want %d lines, got %d", tag, len(wantLines), len(gotLines))
}
