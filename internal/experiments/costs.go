package experiments

import (
	"errors"
	"fmt"

	"vmwild/internal/core"
	"vmwild/internal/emulator"
	"vmwild/internal/power"
	"vmwild/internal/stats"
)

// CostRow is one bar pair of Figure 7: one planner's space and power cost
// on one workload, normalized to the vanilla semi-static planner.
type CostRow struct {
	Workload  string
	Planner   string
	Hosts     int
	SpaceCost float64
	NormSpace float64
	AvgPowerW float64
	NormPower float64
	// Migrations and MigrationDataGB quantify the dynamic plan's
	// execution cost (zero for the semi-static variants).
	Migrations      int
	MigrationDataGB float64
}

// Fig7Costs compares the three planners on one workload.
func Fig7Costs(c *Context) ([]CostRow, error) {
	facilities := power.DefaultFacilities()
	var (
		rows      []CostRow
		baseSpace float64
		basePower float64
	)
	for _, planner := range Planners() {
		run, err := c.Run(planner)
		if err != nil {
			return nil, err
		}
		space, err := facilities.SpaceCost(run.Plan.Provisioned)
		if err != nil {
			return nil, err
		}
		avgPower := run.Result.AvgPowerWatts()
		if planner.Name() == "semi-static" {
			baseSpace, basePower = space, avgPower
		}
		rows = append(rows, CostRow{
			Workload:        c.Profile.Name,
			Planner:         planner.Name(),
			Hosts:           run.Plan.Provisioned,
			SpaceCost:       space,
			AvgPowerW:       avgPower,
			Migrations:      run.Plan.Migrations,
			MigrationDataGB: run.Plan.MigrationDataMB / 1024,
		})
	}
	if baseSpace <= 0 || basePower <= 0 {
		return nil, errors.New("experiments: vanilla semi-static baseline missing")
	}
	for i := range rows {
		rows[i].NormSpace = rows[i].SpaceCost / baseSpace
		rows[i].NormPower = rows[i].AvgPowerW / basePower
	}
	return rows, nil
}

// ContentionRow is one bar of Figure 8: the fraction of evaluation hours in
// which a planner's placement suffered resource contention.
type ContentionRow struct {
	Workload string
	Planner  string
	Hours    int
	Fraction float64
}

// Fig8Contention measures contention time for the three planners.
func Fig8Contention(c *Context) ([]ContentionRow, error) {
	var rows []ContentionRow
	for _, planner := range Planners() {
		run, err := c.Run(planner)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ContentionRow{
			Workload: c.Profile.Name,
			Planner:  planner.Name(),
			Hours:    run.Result.ContentionHours,
			Fraction: run.Result.ContentionFraction(),
		})
	}
	return rows, nil
}

// Fig9ContentionMagnitude returns the CDF of CPU contention magnitude
// (unmet demand as a fraction of host capacity) under dynamic
// consolidation, or nil when the workload never contends — the paper's
// "absence of line for Airline indicates no contention".
func Fig9ContentionMagnitude(c *Context) (*stats.CDF, error) {
	run, err := c.Run(core.Dynamic{})
	if err != nil {
		return nil, err
	}
	mags := run.Result.CPUContentionMagnitudes()
	if len(mags) == 0 {
		return nil, nil
	}
	return stats.NewCDF(mags)
}

// UtilizationCurves is one workload-planner cell of Figures 10 and 11: the
// CDFs of per-host average and peak CPU utilization over the evaluation
// window, plus the fraction of hosts whose peak crossed 100%.
type UtilizationCurves struct {
	Workload      string
	Planner       string
	Avg           *stats.CDF
	Peak          *stats.CDF
	FracPeakOver1 float64
}

// Fig10and11Utilization computes host-utilization distributions for all
// planners on one workload.
func Fig10and11Utilization(c *Context) ([]UtilizationCurves, error) {
	var out []UtilizationCurves
	for _, planner := range Planners() {
		run, err := c.Run(planner)
		if err != nil {
			return nil, err
		}
		var avgs, peaks []float64
		over := 0
		for _, h := range run.Result.Hosts {
			avgs = append(avgs, h.AvgCPUUtil)
			peaks = append(peaks, h.PeakCPUUtil)
			if h.PeakCPUUtil > 1 {
				over++
			}
		}
		if len(avgs) == 0 {
			return nil, fmt.Errorf("experiments: %s %s produced no active hosts", c.Profile.Name, planner.Name())
		}
		avgCDF, err := stats.NewCDF(avgs)
		if err != nil {
			return nil, err
		}
		peakCDF, err := stats.NewCDF(peaks)
		if err != nil {
			return nil, err
		}
		out = append(out, UtilizationCurves{
			Workload:      c.Profile.Name,
			Planner:       planner.Name(),
			Avg:           avgCDF,
			Peak:          peakCDF,
			FracPeakOver1: float64(over) / float64(len(run.Result.Hosts)),
		})
	}
	return out, nil
}

// Fig12ActiveServers returns the CDF over consolidation intervals of the
// fraction of provisioned servers that dynamic consolidation keeps active —
// the dynamism signature of Figure 12.
func Fig12ActiveServers(c *Context) (*stats.CDF, error) {
	run, err := c.Run(core.Dynamic{})
	if err != nil {
		return nil, err
	}
	sched, ok := run.Plan.Schedule.(emulator.IntervalSchedule)
	if !ok {
		return nil, errors.New("experiments: dynamic plan has no interval schedule")
	}
	provisioned := float64(run.Plan.Provisioned)
	if provisioned == 0 {
		return nil, errors.New("experiments: dynamic plan provisioned no hosts")
	}
	fracs := make([]float64, 0, len(sched.Placements))
	for _, p := range sched.Placements {
		fracs = append(fracs, float64(p.ActiveHosts())/provisioned)
	}
	return stats.NewCDF(fracs)
}

// SensitivityPoint is one x-position of Figures 13-16.
type SensitivityPoint struct {
	Bound        float64
	DynamicHosts int
}

// SensitivityResult is one workload's Figure 13-16 panel: the dynamic host
// count as a function of the utilization bound, against the two semi-static
// reference lines.
type SensitivityResult struct {
	Workload        string
	VanillaHosts    int
	StochasticHosts int
	Points          []SensitivityPoint
}

// DefaultBounds is the utilization-bound sweep of Figures 13-16.
var DefaultBounds = []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00}

// Sensitivity sweeps the live-migration reservation for one workload.
func Sensitivity(c *Context, bounds []float64) (SensitivityResult, error) {
	if len(bounds) == 0 {
		bounds = DefaultBounds
	}
	vanilla, err := c.Run(core.SemiStatic{})
	if err != nil {
		return SensitivityResult{}, err
	}
	stoch, err := c.Run(core.Stochastic{})
	if err != nil {
		return SensitivityResult{}, err
	}
	res := SensitivityResult{
		Workload:        c.Profile.Name,
		VanillaHosts:    vanilla.Plan.Provisioned,
		StochasticHosts: stoch.Plan.Provisioned,
	}
	for _, b := range bounds {
		pt, err := SensitivityPointAt(c, b)
		if err != nil {
			return SensitivityResult{}, err
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// SensitivityPointAt plans dynamic consolidation at one utilization bound —
// a single (datacenter, knob) cell of the Figures 13-16 sweep.
func SensitivityPointAt(c *Context, bound float64) (SensitivityPoint, error) {
	in := c.Input()
	in.Bound = bound
	plan, err := c.PlanDynamic(in)
	if err != nil {
		return SensitivityPoint{}, fmt.Errorf("experiments: sensitivity %s bound %v: %w", c.Profile.Name, bound, err)
	}
	return SensitivityPoint{Bound: bound, DynamicHosts: plan.Provisioned}, nil
}
