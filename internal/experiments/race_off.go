//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in. The
// full-scale grid tests (five complete report collections) are numeric
// hot loops that slow 5-10x under the detector; they skip there, while the
// reduced-grid determinism tests keep exercising the parallel machinery
// under race.
const raceEnabled = false
