package experiments

import (
	"fmt"

	"vmwild/internal/controller"
	"vmwild/internal/executor"
	"vmwild/internal/fault"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

// FailureRow summarizes one (failure rate, retry budget) cell of the
// fault-tolerance study: how much consolidation quality survives when live
// migrations fail and stall — the robustness face of the paper's Section
// 1.2 adoption concern. Rates and budgets sweep over the runtime
// controller, so the numbers include graceful degradation: aborted moves
// stay in place and the next interval re-plans from the realized placement.
type FailureRow struct {
	// FailureRate is the per-attempt migration failure probability; the
	// stall probability rides along at half this rate.
	FailureRate float64
	// RetryBudget is the per-move attempt budget before aborting.
	RetryBudget int
	// AvgHosts is the mean active host count across the study intervals —
	// the consolidation quality that failures erode.
	AvgHosts float64
	// Violations totals the overloaded hosts each interval opened with
	// (capacity violations before repair), across all intervals.
	Violations int
	// Attempted, Succeeded and Aborted total the migration accounting
	// across all intervals; Aborted is the unexecuted-move backlog carried
	// forward to later intervals.
	Attempted, Succeeded, Aborted int
	// DegradedIntervals counts intervals that committed only part of
	// their plan.
	DegradedIntervals int
}

// DefaultFailureRates is the sweep's failure-probability axis.
var DefaultFailureRates = []float64{0, 0.15, 0.35}

// DefaultRetryBudgets is the sweep's retry-budget axis.
var DefaultRetryBudgets = []int{1, 3}

// failureStudyIntervals is how many 2-hour consolidation intervals each
// cell runs after the one-week warm-up.
const failureStudyIntervals = 8

// FailureStudy runs the controller over a small fleet under every
// (failure rate, retry budget) combination and reports the surviving
// consolidation quality. Every fault decision derives from the context
// seed by identity, so two runs — at any sweep worker count — produce
// identical rows.
func FailureStudy(c *Context) ([]FailureRow, error) {
	p := *c.Profile
	p.Servers = 96
	warmup := 7 * 24
	horizon := warmup + 2*failureStudyIntervals
	fleet, err := workload.Generate(&p, horizon, c.Config.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: failure study fleet: %w", err)
	}

	var rows []FailureRow
	for _, rate := range DefaultFailureRates {
		for _, budget := range DefaultRetryBudgets {
			row, err := failureCell(c, fleet, warmup, rate, budget)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// failureCell drives the controller through the study window at one fault
// configuration.
func failureCell(c *Context, fleet *trace.Set, warmup int, rate float64, budget int) (FailureRow, error) {
	execCfg := executor.DefaultConfig()
	execCfg.RetryBudget = budget
	if rate > 0 {
		inj, err := fault.New(fault.Config{
			Seed: stats.Split(c.Config.Seed, "failure",
				fmt.Sprintf("rate=%.2f", rate), fmt.Sprintf("budget=%d", budget)),
			MigrationFailure: rate,
			MigrationStall:   rate / 2,
		})
		if err != nil {
			return FailureRow{}, err
		}
		execCfg.Fault = inj
	}

	hour := warmup
	ctrl, err := controller.New(controller.Config{
		Fetch: func() (*trace.Set, error) {
			return fleet.SliceAll(0, hour)
		},
		Planner:  c.Input(),
		Executor: execCfg,
	})
	if err != nil {
		return FailureRow{}, err
	}

	row := FailureRow{FailureRate: rate, RetryBudget: budget}
	hosts := 0
	for k := 0; k < failureStudyIntervals; k++ {
		hour = warmup + 2*k
		if hour > fleet.Servers[0].Series.Len() {
			hour = fleet.Servers[0].Series.Len()
		}
		tick, err := ctrl.RunInterval()
		if err != nil {
			return FailureRow{}, fmt.Errorf("experiments: failure cell rate=%.2f budget=%d interval %d: %w",
				rate, budget, k, err)
		}
		hosts += tick.Step.ActiveHosts
		row.Violations += tick.Step.OverloadedHosts
		row.Attempted += tick.Moves.Attempted
		row.Succeeded += tick.Moves.Succeeded
		row.Aborted += tick.Moves.Aborted
		if tick.Degraded {
			row.DegradedIntervals++
		}
	}
	row.AvgHosts = float64(hosts) / float64(failureStudyIntervals)
	return row, nil
}
