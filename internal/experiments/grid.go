package experiments

import (
	"context"
	"fmt"

	"vmwild/internal/analysis"
	"vmwild/internal/core"
	"vmwild/internal/stats"
	"vmwild/internal/sweep"
	"vmwild/internal/workload"
)

// The report is an experiment grid: every table and figure decomposes into
// independent (datacenter × planner × knob) cells, each a pure function of
// the configuration. Collect submits the cells to the sweep engine and
// gathers them into a typed Results; Render then writes the report in fixed
// paper order. Because cells never share a random stream (all randomness is
// derived from the seed by identity — stats.Derive per server during
// generation, the config seed for emulator verification), the parallel
// report is byte-identical to the sequential one.

// Options control how the experiment grid executes.
type Options struct {
	// Workers bounds concurrently executing grid cells. One runs the grid
	// strictly sequentially in submission order; zero or negative means
	// GOMAXPROCS.
	Workers int
	// Progress, when non-nil, observes every finished cell. Calls are
	// serialized by the sweep engine.
	Progress func(sweep.Event)
}

// Results holds every typed artifact of the report — one field per paper
// table or figure. Per-datacenter slices are indexed in Table 2 order
// (Workloads names the datacenters). Section 7 studies cover the first
// datacenter (Banking), as in the paper.
type Results struct {
	// Workloads is the datacenter name per index, Table 2 order.
	Workloads []string

	Summaries    []WorkloadSummary           // Table 2
	Fig1         []analysis.ServerBurstiness // Figure 1 (Banking)
	PeakAvgCPU   [][]IntervalCurve           // Figure 2, per datacenter
	CoVCPU       []*stats.CDF                // Figure 3, per datacenter
	PeakAvgMem   [][]IntervalCurve           // Figure 4, per datacenter
	CoVMem       []*stats.CDF                // Figure 5, per datacenter
	Ratios       []RatioResult               // Figure 6, per datacenter
	Olio         OlioResult                  // Section 4.1 micro-study
	Migration    []MigrationPoint            // Section 4.3 pre-copy study
	Verification []VerificationResult        // Section 5.2 accuracy study
	Costs        [][]CostRow                 // Figure 7, per datacenter
	Contention   [][]ContentionRow           // Figure 8, per datacenter
	Magnitude    []*stats.CDF                // Figure 9 (nil: no line)
	Utilization  [][]UtilizationCurves       // Figures 10-11, per datacenter
	Active       []*stats.CDF                // Figure 12, per datacenter
	Sensitivity  []SensitivityResult         // Figures 13-16, per datacenter
	Intervals    []IntervalPoint             // Section 7: interval sweep
	Predictors   []PredictorPoint            // Section 7: predictor ablation
	Mechanisms   []MechanismRow              // Section 7: improved migration
	Blades       []BladeRow                  // blade study
	Execution    []ExecutionRow              // execution study
	Failure      []FailureRow                // fault-tolerance study
}

// Collect runs the full experiment grid at the given configuration and
// returns the typed results. The grid fans out across opts.Workers workers;
// at the same configuration the results are identical for every worker
// count, because each cell's computation is independent of execution order.
func Collect(ctx context.Context, cfg Config, opts Options) (*Results, error) {
	return collect(ctx, cfg, opts, workload.Profiles())
}

// collect is Collect over an explicit datacenter list; the Section 7
// studies attach to profiles[0].
func collect(ctx context.Context, cfg Config, opts Options, profiles []*workload.Profile) (*Results, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("experiments: no profiles to collect")
	}
	cache := NewContextCache(cfg)
	res := &Results{
		Workloads:   make([]string, len(profiles)),
		PeakAvgCPU:  make([][]IntervalCurve, len(profiles)),
		CoVCPU:      make([]*stats.CDF, len(profiles)),
		PeakAvgMem:  make([][]IntervalCurve, len(profiles)),
		CoVMem:      make([]*stats.CDF, len(profiles)),
		Ratios:      make([]RatioResult, len(profiles)),
		Costs:       make([][]CostRow, len(profiles)),
		Contention:  make([][]ContentionRow, len(profiles)),
		Magnitude:   make([]*stats.CDF, len(profiles)),
		Utilization: make([][]UtilizationCurves, len(profiles)),
		Active:      make([]*stats.CDF, len(profiles)),
		Sensitivity: make([]SensitivityResult, len(profiles)),
		Intervals:   make([]IntervalPoint, len(DefaultIntervals)),
		Predictors:  make([]PredictorPoint, len(ReportPredictors())),
	}
	for i, p := range profiles {
		res.Workloads[i] = p.Name
		res.Sensitivity[i] = SensitivityResult{
			Workload: p.Name,
			Points:   make([]SensitivityPoint, len(DefaultBounds)),
		}
	}

	var tasks []sweep.Task[struct{}]
	cell := func(label string, run func(context.Context) error) {
		tasks = append(tasks, sweep.Task[struct{}]{
			Label: label,
			Run: func(ctx context.Context) (struct{}, error) {
				return struct{}{}, run(ctx)
			},
		})
	}
	// ctxCell is a cell that needs its datacenter's context; the once-cache
	// builds each datacenter exactly once across all cells.
	ctxCell := func(label string, p *workload.Profile, run func(*Context) error) {
		cell(label, func(context.Context) error {
			c, err := cache.Get(p)
			if err != nil {
				return err
			}
			return run(c)
		})
	}
	contexts := func() ([]*Context, error) {
		out := make([]*Context, len(profiles))
		for i, p := range profiles {
			c, err := cache.Get(p)
			if err != nil {
				return nil, err
			}
			out[i] = c
		}
		return out, nil
	}

	// Trace generation first, so a parallel pool builds the datacenters
	// concurrently instead of serializing behind whichever cell asks first.
	for _, p := range profiles {
		ctxCell("generate/"+p.Name, p, func(*Context) error { return nil })
	}

	// Section 4: workload characterization.
	cell("table2", func(context.Context) error {
		ctxs, err := contexts()
		if err != nil {
			return err
		}
		res.Summaries, err = Table2(ctxs)
		return err
	})
	banking := profiles[0]
	ctxCell(banking.Name+"/fig1", banking, func(c *Context) error {
		var err error
		res.Fig1, err = Fig1Burstiness(c, 2)
		return err
	})
	for i, p := range profiles {
		ctxCell(p.Name+"/fig2-peak-avg-cpu", p, func(c *Context) error {
			var err error
			res.PeakAvgCPU[i], err = Fig2PeakAvgCPU(c)
			return err
		})
		ctxCell(p.Name+"/fig3-cov-cpu", p, func(c *Context) error {
			var err error
			res.CoVCPU[i], err = Fig3CoVCPU(c)
			return err
		})
		ctxCell(p.Name+"/fig4-peak-avg-mem", p, func(c *Context) error {
			var err error
			res.PeakAvgMem[i], err = Fig4PeakAvgMem(c)
			return err
		})
		ctxCell(p.Name+"/fig5-cov-mem", p, func(c *Context) error {
			var err error
			res.CoVMem[i], err = Fig5CoVMem(c)
			return err
		})
		ctxCell(p.Name+"/fig6-resource-ratio", p, func(c *Context) error {
			var err error
			res.Ratios[i], err = Fig6ResourceRatio(c)
			return err
		})
	}

	// Micro-studies (no generated traces needed).
	cell("olio", func(context.Context) error {
		var err error
		res.Olio, err = OlioStudy()
		return err
	})
	cell("migration-model", func(context.Context) error {
		var err error
		res.Migration, err = MigrationStudy()
		return err
	})
	ctxCell(banking.Name+"/verify-emulator", banking, func(c *Context) error {
		var err error
		res.Verification, err = EmulatorVerification(c)
		return err
	})

	// Section 5: baseline planner runs, one cell per (datacenter, planner).
	// These warm the per-context run cache so the figure cells behind them
	// read memoized results instead of serializing on the first figure.
	for _, p := range profiles {
		for _, planner := range Planners() {
			ctxCell(p.Name+"/run/"+planner.Name(), p, func(c *Context) error {
				_, err := c.Run(planner)
				return err
			})
		}
	}
	for i, p := range profiles {
		ctxCell(p.Name+"/fig7-costs", p, func(c *Context) error {
			var err error
			res.Costs[i], err = Fig7Costs(c)
			return err
		})
		ctxCell(p.Name+"/fig8-contention", p, func(c *Context) error {
			var err error
			res.Contention[i], err = Fig8Contention(c)
			return err
		})
		ctxCell(p.Name+"/fig9-magnitude", p, func(c *Context) error {
			var err error
			res.Magnitude[i], err = Fig9ContentionMagnitude(c)
			return err
		})
		ctxCell(p.Name+"/fig10-11-utilization", p, func(c *Context) error {
			var err error
			res.Utilization[i], err = Fig10and11Utilization(c)
			return err
		})
		ctxCell(p.Name+"/fig12-active", p, func(c *Context) error {
			var err error
			res.Active[i], err = Fig12ActiveServers(c)
			return err
		})
	}

	// Figures 13-16: one cell per (datacenter, bound) knob.
	for i, p := range profiles {
		ctxCell(p.Name+"/sensitivity/baselines", p, func(c *Context) error {
			vanilla, err := c.Run(core.SemiStatic{})
			if err != nil {
				return err
			}
			stoch, err := c.Run(core.Stochastic{})
			if err != nil {
				return err
			}
			res.Sensitivity[i].VanillaHosts = vanilla.Plan.Provisioned
			res.Sensitivity[i].StochasticHosts = stoch.Plan.Provisioned
			return nil
		})
		for j, b := range DefaultBounds {
			ctxCell(fmt.Sprintf("%s/sensitivity/bound=%.2f", p.Name, b), p, func(c *Context) error {
				var err error
				res.Sensitivity[i].Points[j], err = SensitivityPointAt(c, b)
				return err
			})
		}
	}

	// Section 7 extension studies on the first datacenter.
	for j, h := range DefaultIntervals {
		ctxCell(fmt.Sprintf("%s/interval/%dh", banking.Name, h), banking, func(c *Context) error {
			var err error
			res.Intervals[j], err = IntervalPointAt(c, h)
			return err
		})
	}
	for j, pr := range ReportPredictors() {
		ctxCell(banking.Name+"/predictor/"+pr.Name(), banking, func(c *Context) error {
			var err error
			res.Predictors[j], err = PredictorPointAt(c, pr)
			return err
		})
	}
	ctxCell(banking.Name+"/improved-migration", banking, func(c *Context) error {
		var err error
		res.Mechanisms, err = ImprovedMigrationStudy(c)
		return err
	})
	ctxCell(banking.Name+"/blades", banking, func(c *Context) error {
		var err error
		res.Blades, err = BladeStudy(c, nil)
		return err
	})
	ctxCell(banking.Name+"/execution", banking, func(c *Context) error {
		var err error
		res.Execution, err = ExecutionStudy(c)
		return err
	})
	ctxCell(banking.Name+"/failure", banking, func(c *Context) error {
		var err error
		res.Failure, err = FailureStudy(c)
		return err
	})

	if _, err := sweep.Run(ctx, tasks, sweep.Options{Workers: opts.Workers, Progress: opts.Progress}); err != nil {
		return nil, err
	}
	return res, nil
}
