package experiments

import (
	"fmt"

	"vmwild/internal/analysis"
	"vmwild/internal/catalog"
	"vmwild/internal/core"
)

// BladeRow compares one target host model in the blade-choice study.
type BladeRow struct {
	Model string
	// RatioPerGB is the blade's CPU-to-memory capacity ratio.
	RatioPerGB float64
	// MemoryBoundFrac is the fraction of intervals where the estate's
	// aggregate demand ratio falls below the blade's ratio.
	MemoryBoundFrac float64
	// Host counts per planner on this blade.
	VanillaHosts    int
	StochasticHosts int
	DynamicHosts    int
}

// BladeStudy quantifies Observation 3's "even after using extended memory
// blade servers": comparing the memory-extended reference blade against a
// standard-memory one of equal compute shows how the memory extension
// moves the estate toward CPU-bound territory and shrinks every planner's
// footprint. Models defaults to {HS23Elite, HS23Standard}.
func BladeStudy(c *Context, models []catalog.Model) ([]BladeRow, error) {
	if len(models) == 0 {
		models = []catalog.Model{catalog.HS23Elite, catalog.HS23Standard}
	}
	rows := make([]BladeRow, 0, len(models))
	for _, m := range models {
		ratio := m.Spec.RatioPerGB()
		memBound, err := analysis.MemoryBoundFraction(c.Evaluation, 2, ratio)
		if err != nil {
			return nil, err
		}
		row := BladeRow{Model: m.Name, RatioPerGB: ratio, MemoryBoundFrac: memBound}
		for _, planner := range Planners() {
			in := c.Input()
			in.Host = m
			run, err := c.RunWith(planner, in)
			if err != nil {
				return nil, fmt.Errorf("experiments: blade study %s %s: %w", m.Name, planner.Name(), err)
			}
			switch planner.(type) {
			case core.SemiStatic:
				row.VanillaHosts = run.Plan.Provisioned
			case core.Stochastic:
				row.StochasticHosts = run.Plan.Provisioned
			case core.Dynamic:
				row.DynamicHosts = run.Plan.Provisioned
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
