// Package experiments reproduces every table and figure of the paper's
// evaluation: the workload studies of Section 4 (Figures 1-6, Table 2), the
// migration and Olio micro-studies, the emulator verification, and the
// planner comparison of Section 5 (Figures 7-16, Table 3). Each experiment
// is a function from a workload Context to a structured result; the cmd
// tools and the benchmark harness render them.
package experiments

import (
	"errors"
	"fmt"
	"sync"

	"vmwild/internal/catalog"
	"vmwild/internal/core"
	"vmwild/internal/emulator"
	"vmwild/internal/power"
	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

// Config fixes the experimental conditions shared by all experiments.
type Config struct {
	// Seed drives the synthetic workload generator.
	Seed int64
	// Host is the consolidation target host model.
	Host catalog.Model
	// VirtOverhead is the hypervisor CPU overhead fraction.
	VirtOverhead float64
	// DedupFactor is the memory deduplication saving fraction.
	DedupFactor float64
}

// DefaultConfig returns the paper's baseline conditions (Table 3).
func DefaultConfig() Config {
	return Config{
		Seed:         workload.DefaultSeed,
		Host:         catalog.HS23Elite,
		VirtOverhead: 0.05,
	}
}

// Context holds one data center's generated traces, split into the
// monitoring and evaluation horizons, plus a cache of planner runs. The run
// cache is concurrency-safe: grid cells sharing a context compute each
// planner's baseline run exactly once, with concurrent callers blocking on
// the first computation instead of repeating it.
type Context struct {
	Config     Config
	Profile    *workload.Profile
	Monitoring *trace.Set
	Evaluation *trace.Set

	mu   sync.Mutex
	runs map[string]*runEntry
}

// runEntry is one memoized planner run; once guards the single computation.
type runEntry struct {
	once sync.Once
	run  *Run
	err  error
}

// Run is a planner execution: the plan plus the emulator replay of its
// schedule over the evaluation window.
type Run struct {
	Plan   *core.Plan
	Result *emulator.Result
}

// NewContext generates the profile's traces and prepares the two horizons.
func NewContext(p *workload.Profile, cfg Config) (*Context, error) {
	if p == nil {
		return nil, errors.New("experiments: nil profile")
	}
	set, err := workload.Generate(p, workload.HorizonHours, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", p.Name, err)
	}
	mon, err := set.SliceAll(0, workload.MonitoringHours)
	if err != nil {
		return nil, err
	}
	eval, err := set.SliceAll(workload.MonitoringHours, workload.HorizonHours)
	if err != nil {
		return nil, err
	}
	return &Context{
		Config:     cfg,
		Profile:    p,
		Monitoring: mon,
		Evaluation: eval,
		runs:       make(map[string]*runEntry),
	}, nil
}

// NewContextFromTraces builds a context over externally supplied traces
// (for example loaded from a warehouse or a CSV export) instead of
// generating synthetic ones. Monitoring and evaluation must cover the same
// servers in the same order; the planner comparison replays the whole
// evaluation window, whatever its length.
func NewContextFromTraces(name string, mon, eval *trace.Set, cfg Config) (*Context, error) {
	if mon == nil || eval == nil {
		return nil, errors.New("experiments: nil trace sets")
	}
	if err := mon.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: monitoring set: %w", err)
	}
	if err := eval.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: evaluation set: %w", err)
	}
	if len(mon.Servers) != len(eval.Servers) {
		return nil, fmt.Errorf("experiments: monitoring has %d servers, evaluation %d", len(mon.Servers), len(eval.Servers))
	}
	for i := range mon.Servers {
		if mon.Servers[i].ID != eval.Servers[i].ID {
			return nil, fmt.Errorf("experiments: server order mismatch at %d", i)
		}
	}
	profile := &workload.Profile{Name: name, Industry: "external", Servers: len(mon.Servers)}
	return &Context{
		Config:     cfg,
		Profile:    profile,
		Monitoring: mon,
		Evaluation: eval,
		runs:       make(map[string]*runEntry),
	}, nil
}

// Contexts prepares all four study data centers (Table 2 order).
func Contexts(cfg Config) ([]*Context, error) {
	profiles := workload.Profiles()
	out := make([]*Context, 0, len(profiles))
	for _, p := range profiles {
		c, err := NewContext(p, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ContextCache memoizes per-datacenter Contexts behind a concurrency-safe
// once-cache. Trace generation is the grid's most expensive shared artifact;
// the cache guarantees each datacenter is generated exactly once no matter
// how many parallel cells ask for it, with later callers blocking on the
// first build.
type ContextCache struct {
	cfg     Config
	mu      sync.Mutex
	entries map[string]*contextEntry
}

// contextEntry is one memoized datacenter build.
type contextEntry struct {
	once sync.Once
	c    *Context
	err  error
}

// NewContextCache creates an empty cache at the given configuration.
func NewContextCache(cfg Config) *ContextCache {
	return &ContextCache{cfg: cfg, entries: make(map[string]*contextEntry)}
}

// Get returns the profile's context, building it on first use.
func (cc *ContextCache) Get(p *workload.Profile) (*Context, error) {
	if p == nil {
		return nil, errors.New("experiments: nil profile")
	}
	cc.mu.Lock()
	e, ok := cc.entries[p.Name]
	if !ok {
		e = &contextEntry{}
		cc.entries[p.Name] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.c, e.err = NewContext(p, cc.cfg) })
	return e.c, e.err
}

// EmulatorConfig returns the replay configuration for this context.
func (c *Context) EmulatorConfig() emulator.Config {
	return emulator.Config{
		HostSpec:     c.Config.Host.Spec,
		Power:        power.HostModel{IdleWatts: c.Config.Host.IdleWatts, PeakWatts: c.Config.Host.PeakWatts},
		VirtOverhead: c.Config.VirtOverhead,
		DedupFactor:  c.Config.DedupFactor,
	}
}

// Input assembles the planner input at the baseline settings. Memory
// deduplication raises the host's effective memory capacity for packing —
// the emulator discounts VM memory by the same factor, so the two views
// agree (the paper's emulator "captures ... memory savings due to
// deduplication in a configurable fashion").
func (c *Context) Input() core.Input {
	host := c.Config.Host
	if c.Config.DedupFactor > 0 && c.Config.DedupFactor < 1 {
		host.Spec.MemMB /= 1 - c.Config.DedupFactor
	}
	return core.Input{
		Monitoring: c.Monitoring,
		Evaluation: c.Evaluation,
		Host:       host,
	}
}

// Run plans with the given planner at the baseline settings and replays the
// schedule, caching by planner name. Safe for concurrent use: the first
// caller computes, later callers (and concurrent ones) share the result.
func (c *Context) Run(planner core.Planner) (*Run, error) {
	c.mu.Lock()
	e, ok := c.runs[planner.Name()]
	if !ok {
		e = &runEntry{}
		c.runs[planner.Name()] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.run, e.err = c.RunWith(planner, c.Input()) })
	return e.run, e.err
}

// RunWith plans with explicit input (for sensitivity sweeps) and replays
// the schedule; results are not cached.
func (c *Context) RunWith(planner core.Planner, in core.Input) (*Run, error) {
	plan, err := planner.Plan(in)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s plan %s: %w", c.Profile.Name, planner.Name(), err)
	}
	res, err := emulator.Run(c.Evaluation, plan.Schedule, c.Evaluation.Servers[0].Series.Len(), c.EmulatorConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s replay %s: %w", c.Profile.Name, planner.Name(), err)
	}
	return &Run{Plan: plan, Result: res}, nil
}

// Planners returns the three compared planners in the paper's order
// (Section 5.1).
func Planners() []core.Planner {
	return []core.Planner{core.SemiStatic{}, core.Stochastic{}, core.Dynamic{}}
}
