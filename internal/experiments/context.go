// Package experiments reproduces every table and figure of the paper's
// evaluation: the workload studies of Section 4 (Figures 1-6, Table 2), the
// migration and Olio micro-studies, the emulator verification, and the
// planner comparison of Section 5 (Figures 7-16, Table 3). Each experiment
// is a function from a workload Context to a structured result; the cmd
// tools and the benchmark harness render them.
package experiments

import (
	"errors"
	"fmt"
	"sync"

	"vmwild/internal/catalog"
	"vmwild/internal/core"
	"vmwild/internal/emulator"
	"vmwild/internal/placement"
	"vmwild/internal/power"
	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

// Config fixes the experimental conditions shared by all experiments.
type Config struct {
	// Seed drives the synthetic workload generator.
	Seed int64
	// Host is the consolidation target host model.
	Host catalog.Model
	// VirtOverhead is the hypervisor CPU overhead fraction.
	VirtOverhead float64
	// DedupFactor is the memory deduplication saving fraction.
	DedupFactor float64
	// DisableSharedCaches turns off the cross-cell demand-matrix,
	// correlation and envelope caches, forcing every dynamic plan to
	// recompute its predictions inline and every stochastic plan to rebuild
	// its correlation function and envelopes. The report is byte-identical
	// either way (the equivalence is enforced by test); the switch exists
	// to prove exactly that, and as an escape hatch should a future
	// predictor ever become stateful.
	DisableSharedCaches bool
	// DisableIncremental turns off the planners' incremental fast paths —
	// flattened packing kernels, indexed correlation lookups, the dynamic
	// adapter's cross-interval evacuation certificates and plan-only
	// sensitivity cells — reverting to the retained reference
	// implementations. Byte-identical by construction and enforced by
	// TestIncrementalEquivalence; exists to prove exactly that, and as an
	// escape hatch.
	DisableIncremental bool
}

// DefaultConfig returns the paper's baseline conditions (Table 3).
func DefaultConfig() Config {
	return Config{
		Seed:         workload.DefaultSeed,
		Host:         catalog.HS23Elite,
		VirtOverhead: 0.05,
	}
}

// Context holds one data center's generated traces, split into the
// monitoring and evaluation horizons, plus a cache of planner runs. The run
// cache is concurrency-safe: grid cells sharing a context compute each
// planner's baseline run exactly once, with concurrent callers blocking on
// the first computation instead of repeating it.
type Context struct {
	Config     Config
	Profile    *workload.Profile
	Monitoring *trace.Set
	Evaluation *trace.Set

	mu      sync.Mutex
	runs    map[string]*runEntry
	demands map[string]*demandEntry
	corrs   map[int]*corrEntry
	envs    map[float64]*envEntry
	hists   histEntry
}

// runEntry is one memoized planner run; once guards the single computation.
type runEntry struct {
	once sync.Once
	run  *Run
	err  error
}

// demandEntry is one memoized demand matrix; once guards the single
// computation, exactly like runEntry.
type demandEntry struct {
	once sync.Once
	m    *core.DemandMatrix
	err  error
}

// histEntry memoizes the context's concatenated demand histories — one per
// context, since they depend only on the two trace sets.
type histEntry struct {
	once sync.Once
	h    *core.DemandHistories
	err  error
}

// corrEntry is one memoized shared-correlation table, keyed by interval
// length.
type corrEntry struct {
	once sync.Once
	t    *core.CorrTable
	err  error
}

// envEntry is one memoized stochastic envelope slice, keyed by body
// percentile.
type envEntry struct {
	once  sync.Once
	items []placement.Item
	err   error
}

// Run is a planner execution: the plan plus the emulator replay of its
// schedule over the evaluation window.
type Run struct {
	Plan   *core.Plan
	Result *emulator.Result
}

// NewContext generates the profile's traces and prepares the two horizons.
func NewContext(p *workload.Profile, cfg Config) (*Context, error) {
	if p == nil {
		return nil, errors.New("experiments: nil profile")
	}
	set, err := workload.Generate(p, workload.HorizonHours, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiments: generate %s: %w", p.Name, err)
	}
	mon, err := set.SliceAll(0, workload.MonitoringHours)
	if err != nil {
		return nil, err
	}
	eval, err := set.SliceAll(workload.MonitoringHours, workload.HorizonHours)
	if err != nil {
		return nil, err
	}
	return &Context{
		Config:     cfg,
		Profile:    p,
		Monitoring: mon,
		Evaluation: eval,
		runs:       make(map[string]*runEntry),
	}, nil
}

// NewContextFromTraces builds a context over externally supplied traces
// (for example loaded from a warehouse or a CSV export) instead of
// generating synthetic ones. Monitoring and evaluation must cover the same
// servers in the same order; the planner comparison replays the whole
// evaluation window, whatever its length.
func NewContextFromTraces(name string, mon, eval *trace.Set, cfg Config) (*Context, error) {
	if mon == nil || eval == nil {
		return nil, errors.New("experiments: nil trace sets")
	}
	if err := mon.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: monitoring set: %w", err)
	}
	if err := eval.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: evaluation set: %w", err)
	}
	if len(mon.Servers) != len(eval.Servers) {
		return nil, fmt.Errorf("experiments: monitoring has %d servers, evaluation %d", len(mon.Servers), len(eval.Servers))
	}
	for i := range mon.Servers {
		if mon.Servers[i].ID != eval.Servers[i].ID {
			return nil, fmt.Errorf("experiments: server order mismatch at %d", i)
		}
	}
	profile := &workload.Profile{Name: name, Industry: "external", Servers: len(mon.Servers)}
	return &Context{
		Config:     cfg,
		Profile:    profile,
		Monitoring: mon,
		Evaluation: eval,
		runs:       make(map[string]*runEntry),
	}, nil
}

// Contexts prepares all four study data centers (Table 2 order).
func Contexts(cfg Config) ([]*Context, error) {
	profiles := workload.Profiles()
	out := make([]*Context, 0, len(profiles))
	for _, p := range profiles {
		c, err := NewContext(p, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ContextCache memoizes per-datacenter Contexts behind a concurrency-safe
// once-cache. Trace generation is the grid's most expensive shared artifact;
// the cache guarantees each datacenter is generated exactly once no matter
// how many parallel cells ask for it, with later callers blocking on the
// first build.
type ContextCache struct {
	cfg     Config
	mu      sync.Mutex
	entries map[string]*contextEntry
}

// contextEntry is one memoized datacenter build.
type contextEntry struct {
	once sync.Once
	c    *Context
	err  error
}

// NewContextCache creates an empty cache at the given configuration.
func NewContextCache(cfg Config) *ContextCache {
	return &ContextCache{cfg: cfg, entries: make(map[string]*contextEntry)}
}

// Get returns the profile's context, building it on first use.
func (cc *ContextCache) Get(p *workload.Profile) (*Context, error) {
	if p == nil {
		return nil, errors.New("experiments: nil profile")
	}
	cc.mu.Lock()
	e, ok := cc.entries[p.Name]
	if !ok {
		e = &contextEntry{}
		cc.entries[p.Name] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.c, e.err = NewContext(p, cc.cfg) })
	return e.c, e.err
}

// EmulatorConfig returns the replay configuration for this context.
func (c *Context) EmulatorConfig() emulator.Config {
	return emulator.Config{
		HostSpec:     c.Config.Host.Spec,
		Power:        power.HostModel{IdleWatts: c.Config.Host.IdleWatts, PeakWatts: c.Config.Host.PeakWatts},
		VirtOverhead: c.Config.VirtOverhead,
		DedupFactor:  c.Config.DedupFactor,
	}
}

// Input assembles the planner input at the baseline settings. Memory
// deduplication raises the host's effective memory capacity for packing —
// the emulator discounts VM memory by the same factor, so the two views
// agree (the paper's emulator "captures ... memory savings due to
// deduplication in a configurable fashion").
func (c *Context) Input() core.Input {
	host := c.Config.Host
	if c.Config.DedupFactor > 0 && c.Config.DedupFactor < 1 {
		host.Spec.MemMB /= 1 - c.Config.DedupFactor
	}
	return core.Input{
		Monitoring:         c.Monitoring,
		Evaluation:         c.Evaluation,
		Host:               host,
		DisableIncremental: c.Config.DisableIncremental,
	}
}

// Run plans with the given planner at the baseline settings and replays the
// schedule, caching by planner name. Safe for concurrent use: the first
// caller computes, later callers (and concurrent ones) share the result.
func (c *Context) Run(planner core.Planner) (*Run, error) {
	c.mu.Lock()
	e, ok := c.runs[planner.Name()]
	if !ok {
		e = &runEntry{}
		c.runs[planner.Name()] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.run, e.err = c.RunWith(planner, c.Input()) })
	return e.run, e.err
}

// SizedDemands returns the dynamic planner's walk-forward demand matrix for
// the input's predictors, interval and sizing mode, computed at most once
// per distinct key and shared across every grid cell of this context. Safe
// for concurrent use: the first caller computes, concurrent callers block
// on that computation (the runEntry pattern).
//
// The matrix depends only on the traces, predictors and interval — never on
// Bound, Host or Constraints — so the sensitivity sweep's 7 bounds, the
// blade study's 3 host models and the improved-migration study all share
// one prediction pass per data center.
func (c *Context) SizedDemands(in core.Input) (*core.DemandMatrix, error) {
	key := core.DemandKey(in)
	c.mu.Lock()
	if c.demands == nil {
		c.demands = make(map[string]*demandEntry)
	}
	e, ok := c.demands[key]
	if !ok {
		e = &demandEntry{}
		c.demands[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		if in.Histories == nil && in.Monitoring == c.Monitoring && in.Evaluation == c.Evaluation {
			in.Histories = c.demandHistories()
		}
		e.m, e.err = core.SizeDynamicDemands(in)
	})
	return e.m, e.err
}

// demandHistories returns the context-wide demand histories, built at most
// once and shared by every demand-matrix computation; nil when shared
// caches are disabled or the build fails (SizeDynamicDemands then rebuilds
// inline, the byte-identical fallback).
func (c *Context) demandHistories() *core.DemandHistories {
	if c.Config.DisableSharedCaches {
		return nil
	}
	c.hists.once.Do(func() {
		c.hists.h, c.hists.err = core.BuildDemandHistories(c.Monitoring, c.Evaluation)
	})
	if c.hists.err != nil {
		return nil
	}
	return c.hists.h
}

// withDemands attaches the shared demand matrix to a dynamic-planner input
// when caching is enabled and the input plans over this context's own trace
// sets. On any cache miss condition the input is returned unchanged and the
// planner computes its predictions inline — the byte-identical fallback.
func (c *Context) withDemands(in core.Input) core.Input {
	if in.Demands != nil || c.Config.DisableSharedCaches {
		return in
	}
	if in.Monitoring != c.Monitoring || in.Evaluation != c.Evaluation {
		return in
	}
	m, err := c.SizedDemands(in)
	if err != nil {
		// Let the planner surface the identical error from its inline
		// computation.
		return in
	}
	in.Demands = m
	return in
}

// CorrTable returns the stochastic planner's interval-peak correlation
// table over this context's monitoring set, built at most once per interval
// length. The memo cache inside survives across plans, so the blade study's
// three host models and the ablations probe each VM pair at most once per
// data center.
func (c *Context) CorrTable(intervalHours int) (*core.CorrTable, error) {
	c.mu.Lock()
	if c.corrs == nil {
		c.corrs = make(map[int]*corrEntry)
	}
	e, ok := c.corrs[intervalHours]
	if !ok {
		e = &corrEntry{}
		c.corrs[intervalHours] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.t, e.err = core.NewCorrTable(c.Monitoring, intervalHours) })
	return e.t, e.err
}

// SharedCorrelations is the functional view of CorrTable, kept for callers
// that only need ID-keyed lookups.
func (c *Context) SharedCorrelations(intervalHours int) (placement.CorrFunc, error) {
	t, err := c.CorrTable(intervalHours)
	if err != nil {
		return nil, err
	}
	return t.Func(), nil
}

// SizedEnvelopes returns the stochastic planner's body/tail envelope items
// over this context's monitoring set at the given body percentile, computed
// at most once per percentile. SizeEnvelope is deterministic, so shared
// envelopes equal inline ones; cells must treat the slice as read-only.
func (c *Context) SizedEnvelopes(percentile float64) ([]placement.Item, error) {
	c.mu.Lock()
	if c.envs == nil {
		c.envs = make(map[float64]*envEntry)
	}
	e, ok := c.envs[percentile]
	if !ok {
		e = &envEntry{}
		c.envs[percentile] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.items, e.err = core.SizeEnvelopes(c.Monitoring, percentile) })
	return e.items, e.err
}

// withCorrelations attaches the shared correlation table and envelope items
// to a stochastic-planner input when caching is enabled and the input plans
// over this context's own monitoring set. On any miss condition the input
// is returned unchanged and the planner builds both inline — the
// byte-identical fallback.
func (c *Context) withCorrelations(in core.Input) core.Input {
	if c.Config.DisableSharedCaches || in.Monitoring != c.Monitoring {
		return in
	}
	if in.Correlations == nil && in.CorrIndex == nil && !in.ClusterCorrelation {
		hours := in.IntervalHours
		if hours == 0 {
			hours = core.DefaultIntervalHours
		}
		if t, err := c.CorrTable(hours); err == nil {
			// Both views of the same table: the packer prefers the
			// indexed one, the functional one serves as fallback.
			in.CorrIndex = t
			in.Correlations = t.Func()
		}
		// On error, let the planner surface the identical error from
		// its inline construction.
	}
	if in.Envelopes == nil {
		pct := in.BodyPercentile
		if pct == 0 {
			pct = core.DefaultBodyPercentile
		}
		if items, err := c.SizedEnvelopes(pct); err == nil {
			in.Envelopes = items
		}
	}
	return in
}

// PlanDynamic plans with the dynamic planner against explicit input,
// routing the Predict + Size steps through the shared demand cache. The
// sensitivity and mechanism studies use it for plan-only cells that never
// replay, so the returned plan carries counters only — Schedule is nil
// (unless Config.DisableIncremental reverts to the full snapshot path).
func (c *Context) PlanDynamic(in core.Input) (*core.Plan, error) {
	in.PlanOnly = !c.Config.DisableIncremental
	return core.Dynamic{}.Plan(c.withDemands(in))
}

// RunWith plans with explicit input (for sensitivity sweeps) and replays
// the schedule; results are not cached. Dynamic-planner inputs are routed
// through the shared demand cache.
func (c *Context) RunWith(planner core.Planner, in core.Input) (*Run, error) {
	switch planner.(type) {
	case core.Dynamic:
		in = c.withDemands(in)
	case core.Stochastic:
		in = c.withCorrelations(in)
	}
	plan, err := planner.Plan(in)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s plan %s: %w", c.Profile.Name, planner.Name(), err)
	}
	res, err := emulator.Run(c.Evaluation, plan.Schedule, c.Evaluation.Servers[0].Series.Len(), c.EmulatorConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s replay %s: %w", c.Profile.Name, planner.Name(), err)
	}
	return &Run{Plan: plan, Result: res}, nil
}

// Planners returns the three compared planners in the paper's order
// (Section 5.1).
func Planners() []core.Planner {
	return []core.Planner{core.SemiStatic{}, core.Stochastic{}, core.Dynamic{}}
}
