package experiments

import "testing"

func TestIntervalStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full planner runs")
	}
	c := byName(t, sharedContexts(t), "A")
	points, err := IntervalStudy(c, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Shorter intervals must not migrate less: they re-plan more often.
	if points[0].Migrations <= points[2].Migrations {
		t.Errorf("1h interval migrated %d times, 4h %d: shorter intervals should migrate more",
			points[0].Migrations, points[2].Migrations)
	}
	// And they track demand at least as closely on power.
	if points[0].AvgPowerW > points[2].AvgPowerW*1.1 {
		t.Errorf("1h power %v should not exceed 4h power %v by >10%%",
			points[0].AvgPowerW, points[2].AvgPowerW)
	}
	if _, err := IntervalStudy(c, []int{0}); err == nil {
		t.Error("expected error for invalid interval")
	}
}

func TestPredictorStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full planner runs")
	}
	c := byName(t, sharedContexts(t), "A")
	points, err := PredictorStudy(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d predictor points", len(points))
	}
	byName := make(map[string]PredictorPoint, len(points))
	for _, p := range points {
		byName[p.Predictor] = p
		if p.Provisioned <= 0 {
			t.Errorf("%s provisioned nothing", p.Predictor)
		}
	}
	// The reactive one-interval predictor under-provisions and contends
	// more than the weekly-envelope default.
	reactive, combined := byName["recent-peak-1"], byName["combined"]
	if reactive.ContentionHrs < combined.ContentionHrs {
		t.Errorf("reactive predictor contention %d should be >= combined %d",
			reactive.ContentionHrs, combined.ContentionHrs)
	}
	if reactive.Provisioned > combined.Provisioned {
		t.Errorf("reactive predictor provisioned %d should be <= combined %d",
			reactive.Provisioned, combined.Provisioned)
	}
}

func TestImprovedMigrationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full planner runs")
	}
	c := byName(t, sharedContexts(t), "A")
	rows, err := ImprovedMigrationStudy(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d mechanisms", len(rows))
	}
	pre, post := rows[0], rows[1]
	if post.Reservation >= pre.Reservation {
		t.Errorf("post-copy reservation %v should undercut pre-copy %v", post.Reservation, pre.Reservation)
	}
	if post.DynamicHosts > pre.DynamicHosts {
		t.Errorf("lighter reservation should not need more hosts: %d vs %d", post.DynamicHosts, pre.DynamicHosts)
	}
	// Observation 7: at the post-copy reservation, dynamic consolidation
	// overtakes stochastic consolidation on Banking.
	if !post.BeatsStochastic {
		t.Error("post-copy reservation should push Banking dynamic below stochastic (Figure 13)")
	}
	if pre.BeatsStochastic {
		t.Error("at the 20%+ pre-copy reservation dynamic must not beat stochastic (Observation 5)")
	}
	if post.TransferredMB >= pre.TransferredMB {
		t.Error("post-copy must move less data for a busy VM")
	}
}

func TestExecutionStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full planner runs")
	}
	c := byName(t, sharedContexts(t), "A")
	rows, err := ExecutionStudy(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d mechanisms", len(rows))
	}
	pre, post := rows[0], rows[1]
	if pre.AvgMoves <= 0 {
		t.Error("dynamic plan should migrate every interval on Banking")
	}
	// Post-copy moves memory exactly once: less data, shorter waves.
	if post.TotalDataGB >= pre.TotalDataGB {
		t.Errorf("post-copy data %v GB should undercut pre-copy %v GB", post.TotalDataGB, pre.TotalDataGB)
	}
	if post.P95 > pre.P95 {
		t.Errorf("post-copy p95 %v should not exceed pre-copy %v", post.P95, pre.P95)
	}
	// The execution must be realizable at all: durations positive, and
	// the infeasible fraction is a meaningful statistic in [0, 1].
	if pre.P50 <= 0 || pre.Max < pre.P95 || pre.P95 < pre.P50 {
		t.Errorf("nonsensical duration distribution: %+v", pre)
	}
	if pre.InfeasibleFrac < 0 || pre.InfeasibleFrac > 1 {
		t.Errorf("infeasible fraction out of range: %v", pre.InfeasibleFrac)
	}
}

func TestBladeStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full planner runs")
	}
	c := byName(t, sharedContexts(t), "A")
	rows, err := BladeStudy(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d blades", len(rows))
	}
	elite, standard := rows[0], rows[1]
	// Observation 3's contrast: without the memory extension the estate
	// is memory-bound far more often, and every planner needs more (or
	// equal) hosts.
	if standard.MemoryBoundFrac <= elite.MemoryBoundFrac {
		t.Errorf("standard blade memory-bound %.2f should exceed extended blade %.2f",
			standard.MemoryBoundFrac, elite.MemoryBoundFrac)
	}
	if standard.VanillaHosts < elite.VanillaHosts ||
		standard.StochasticHosts < elite.StochasticHosts ||
		standard.DynamicHosts < elite.DynamicHosts {
		t.Errorf("standard blade should not need fewer hosts: %+v vs %+v", standard, elite)
	}
	if elite.RatioPerGB != 160 || standard.RatioPerGB != 320 {
		t.Errorf("ratios = %v / %v", elite.RatioPerGB, standard.RatioPerGB)
	}
}
