package experiments

import (
	"errors"
	"fmt"

	"vmwild/internal/core"
	"vmwild/internal/emulator"
	"vmwild/internal/migration"
	"vmwild/internal/workload"
)

// OlioPoint is one throughput level of the Section 4.1 Olio micro-study.
type OlioPoint struct {
	TputOpsSec float64
	CPUCores   float64
	MemMB      float64
}

// OlioResult is the micro-study outcome: the resource demand curve and the
// end-to-end multipliers the paper reports (7.9x CPU, 3x memory for 6x
// throughput).
type OlioResult struct {
	Points        []OlioPoint
	CPUMultiplier float64
	MemMultiplier float64
}

// OlioStudy sweeps the Olio model from 10 to 60 operations per second.
func OlioStudy() (OlioResult, error) {
	m := workload.DefaultOlio()
	var res OlioResult
	for tput := 10.0; tput <= 60; tput += 10 {
		cpu, err := m.CPUCores(tput)
		if err != nil {
			return OlioResult{}, err
		}
		mem, err := m.MemMB(tput)
		if err != nil {
			return OlioResult{}, err
		}
		res.Points = append(res.Points, OlioPoint{TputOpsSec: tput, CPUCores: cpu, MemMB: mem})
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	res.CPUMultiplier = last.CPUCores / first.CPUCores
	res.MemMultiplier = last.MemMB / first.MemMB
	return res, nil
}

// MigrationPoint is one cell of the Section 4.3 migration study.
type MigrationPoint struct {
	MemGB     float64
	DirtyMBps float64
	Result    migration.Result
}

// MigrationStudy sweeps VM memory sizes and dirty rates through the
// pre-copy model, reproducing the published magnitudes (tens of seconds of
// migration, sub-second downtime when converging) and the divergence regime
// that motivates reserving host resources for migration.
func MigrationStudy() ([]MigrationPoint, error) {
	cfg := migration.DefaultConfig()
	var out []MigrationPoint
	for _, memGB := range []float64{1, 2, 4, 8, 16, 32} {
		for _, dirty := range []float64{1, 20, 40, 80, 105} {
			res, err := migration.Simulate(memGB*1024, dirty, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, MigrationPoint{MemGB: memGB, DirtyMBps: dirty, Result: res})
		}
	}
	return out, nil
}

// VerificationResult is one row of the Section 5.2 emulator accuracy study.
type VerificationResult struct {
	Workload string
	P99Error float64
	// Bound is the paper's published error bound for this workload.
	Bound float64
}

// EmulatorVerification replays the context's vanilla semi-static placement
// against the noisy testbed model with the RUBiS- and daxpy-like noise
// profiles, reproducing the paper's accuracy bounds (99th-percentile error
// at most 5% and 2% respectively).
func EmulatorVerification(c *Context) ([]VerificationResult, error) {
	run, err := c.Run(core.SemiStatic{})
	if err != nil {
		return nil, err
	}
	profiles := []struct {
		noise emulator.NoiseProfile
		bound float64
	}{
		{noise: emulator.RUBiSNoise, bound: 0.05},
		{noise: emulator.DaxpyNoise, bound: 0.02},
	}
	var out []VerificationResult
	for _, p := range profiles {
		p99, err := emulator.VerifyAccuracy(c.Evaluation, run.Plan.Schedule, c.Evaluation.Servers[0].Series.Len(), c.EmulatorConfig(), p.noise, c.Config.Seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: verify %s: %w", p.noise.Name, err)
		}
		out = append(out, VerificationResult{Workload: p.noise.Name, P99Error: p99, Bound: p.bound})
	}
	return out, nil
}

// Table3 returns the baseline experimental settings, checking they match
// the paper's Table 3.
type Setting struct {
	Metric string
	Value  string
}

// Table3 lists the baseline settings.
func Table3() []Setting {
	return []Setting{
		{Metric: "Experiment Duration", Value: "14 days"},
		{Metric: "Dynamic Consolidation Interval", Value: "2 hours"},
		{Metric: "Number of Intervals", Value: "168"},
		{Metric: "CPU reserved for VMotion", Value: "20%"},
		{Metric: "Memory reserved for VMotion", Value: "20%"},
	}
}

// CheckTable3 validates the code constants against Table 3.
func CheckTable3() error {
	if workload.EvaluationHours/core.DefaultIntervalHours != 168 {
		return errors.New("experiments: interval count drifted from Table 3's 168")
	}
	if core.DefaultBound != 0.8 {
		return errors.New("experiments: migration reservation drifted from Table 3's 20%")
	}
	return nil
}
