package analysis

import (
	"math"
	"testing"
	"time"

	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

func sinusoidal(id string, period, hours int) *trace.ServerTrace {
	samples := make([]trace.Usage, hours)
	for t := 0; t < hours; t++ {
		samples[t] = trace.Usage{
			CPU: 100 + 50*math.Sin(2*math.Pi*float64(t)/float64(period)),
			Mem: 1000,
		}
	}
	s, err := trace.NewSeries(time.Hour, samples)
	if err != nil {
		panic(err)
	}
	return &trace.ServerTrace{ID: trace.ServerID(id), Spec: trace.Spec{CPURPE2: 1000, MemMB: 8192}, Series: s}
}

func TestAutocorrelation(t *testing.T) {
	// A 24h sinusoid has autocorrelation ~1 at lag 24 and ~-1 at lag 12.
	st := sinusoidal("s", 24, 24*14)
	values := st.Series.Values(trace.CPU)
	at24, err := Autocorrelation(values, 24)
	if err != nil {
		t.Fatal(err)
	}
	if at24 < 0.99 {
		t.Errorf("lag-24 autocorrelation = %v, want ~1", at24)
	}
	at12, err := Autocorrelation(values, 12)
	if err != nil {
		t.Fatal(err)
	}
	if at12 > -0.99 {
		t.Errorf("lag-12 autocorrelation = %v, want ~-1", at12)
	}
	if _, err := Autocorrelation(values, 0); err == nil {
		t.Error("expected error for zero lag")
	}
	if _, err := Autocorrelation([]float64{1, 2}, 5); err == nil {
		t.Error("expected error for lag beyond series")
	}
}

func TestSeasonalityOf(t *testing.T) {
	st := sinusoidal("diurnal", 24, 24*21)
	s, err := SeasonalityOf(st)
	if err != nil {
		t.Fatal(err)
	}
	if s.Daily < 0.99 || s.Weekly < 0.99 {
		t.Errorf("diurnal server seasonality = %+v, want ~1/~1", s)
	}
	// A 30h-period signal is NOT day-periodic.
	odd, err := SeasonalityOf(sinusoidal("odd", 30, 24*21))
	if err != nil {
		t.Fatal(err)
	}
	if odd.Daily > 0.5 {
		t.Errorf("off-period server daily seasonality = %v, want low", odd.Daily)
	}
	if _, err := SeasonalityOf(&trace.ServerTrace{}); err == nil {
		t.Error("expected error for invalid trace")
	}
	// Short traces skip the weekly component.
	short, err := SeasonalityOf(sinusoidal("short", 24, 26*2))
	if err != nil {
		t.Fatal(err)
	}
	if short.Weekly != 0 {
		t.Errorf("short trace weekly = %v, want 0", short.Weekly)
	}
}

func TestSeasonalityCDFsOnWorkload(t *testing.T) {
	p := workload.Banking()
	p.Servers = 40
	set, err := workload.Generate(p, 24*21, workload.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	daily, weekly, err := SeasonalityCDFs(set)
	if err != nil {
		t.Fatal(err)
	}
	// Per-hour noise dominates raw autocorrelation, but the diurnal
	// structure still shows as a consistently positive lag-24 component
	// for the web-dominated estate.
	if got := daily.Median(); got < 0.02 {
		t.Errorf("median daily seasonality = %v, want positive", got)
	}
	if got := daily.Quantile(0.9); got < 0.1 {
		t.Errorf("p90 daily seasonality = %v, want a clearly periodic subpopulation", got)
	}
	if got := weekly.Median(); got < -0.05 {
		t.Errorf("median weekly seasonality = %v, want non-negative", got)
	}
	if _, _, err := SeasonalityCDFs(&trace.Set{}); err == nil {
		t.Error("expected error for empty set")
	}
}
