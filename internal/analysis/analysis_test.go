package analysis

import (
	"math"
	"testing"
	"time"

	"vmwild/internal/trace"
)

func server(id string, cpuRating, memMB float64, samples []trace.Usage) *trace.ServerTrace {
	s, err := trace.NewSeries(time.Hour, samples)
	if err != nil {
		panic(err)
	}
	return &trace.ServerTrace{
		ID:     trace.ServerID(id),
		Spec:   trace.Spec{CPURPE2: cpuRating, MemMB: memMB},
		Series: s,
	}
}

func usages(cpu ...float64) []trace.Usage {
	out := make([]trace.Usage, len(cpu))
	for i, c := range cpu {
		out[i] = trace.Usage{CPU: c, Mem: 1024}
	}
	return out
}

func TestPeakToAverageCDF(t *testing.T) {
	set := &trace.Set{Name: "t", Servers: []*trace.ServerTrace{
		server("a", 100, 4096, usages(1, 1, 1, 5)), // P/A = 5/2 = 2.5
		server("b", 100, 4096, usages(2, 2, 2, 2)), // P/A = 1
	}}
	cdf, err := PeakToAverageCDF(set, 1, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if got := cdf.FractionAbove(2); got != 0.5 {
		t.Errorf("fraction above 2 = %v, want 0.5", got)
	}
	// At 2h intervals server a's demands are max(1,1)=1, max(1,5)=5 ->
	// P/A = 5/3.
	cdf2, err := PeakToAverageCDF(set, 2, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if got := cdf2.Quantile(1); math.Abs(got-5.0/3.0) > 1e-9 {
		t.Errorf("max P/A at 2h = %v, want 5/3", got)
	}
	if _, err := PeakToAverageCDF(set, 0, trace.CPU); err == nil {
		t.Error("expected error for zero interval")
	}
}

func TestCoVCDF(t *testing.T) {
	set := &trace.Set{Name: "t", Servers: []*trace.ServerTrace{
		server("flat", 100, 4096, usages(3, 3, 3, 3)),
		server("spiky", 100, 4096, usages(0.1, 0.1, 0.1, 10)),
	}}
	cdf, err := CoVCDF(set, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	if got := cdf.FractionAbove(1); got != 0.5 {
		t.Errorf("heavy-tailed fraction = %v, want 0.5", got)
	}
}

func TestResourceRatios(t *testing.T) {
	// Two servers, each demanding 160 RPE2 and 1024 MB (1 GB) flat:
	// aggregate ratio = 320/2 = 160 per interval.
	set := &trace.Set{Name: "t", Servers: []*trace.ServerTrace{
		server("a", 1000, 4096, []trace.Usage{{CPU: 160, Mem: 1024}, {CPU: 160, Mem: 1024}}),
		server("b", 1000, 4096, []trace.Usage{{CPU: 160, Mem: 1024}, {CPU: 160, Mem: 1024}}),
	}}
	ratios, err := ResourceRatios(set, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != 2 {
		t.Fatalf("got %d ratios, want 2", len(ratios))
	}
	for _, r := range ratios {
		if math.Abs(r-160) > 1e-9 {
			t.Errorf("ratio = %v, want 160", r)
		}
	}
	frac, err := MemoryBoundFraction(set, 1, 160)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("memory-bound fraction = %v, want 1 (ratio at threshold counts)", frac)
	}
	frac, err = MemoryBoundFraction(set, 1, 159.9)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 0 {
		t.Errorf("memory-bound fraction below threshold = %v, want 0", frac)
	}
	if _, err := ResourceRatios(&trace.Set{}, 1); err == nil {
		t.Error("expected error for empty set")
	}
	if _, err := ResourceRatios(set, 0); err == nil {
		t.Error("expected error for zero interval")
	}
}

func TestMeanCPUUtilization(t *testing.T) {
	set := &trace.Set{Name: "t", Servers: []*trace.ServerTrace{
		server("a", 100, 4096, usages(10, 10)), // 10% util
		server("b", 100, 4096, usages(30, 30)), // 30% util
	}}
	got, err := MeanCPUUtilization(set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2) > 1e-9 {
		t.Errorf("mean utilization = %v, want 0.2", got)
	}
	if _, err := MeanCPUUtilization(&trace.Set{}); err == nil {
		t.Error("expected error for empty set")
	}
	bad := &trace.Set{Servers: []*trace.ServerTrace{server("x", 0, 1, usages(1))}}
	if _, err := MeanCPUUtilization(bad); err == nil {
		t.Error("expected error for zero CPU rating")
	}
}

func TestBurstiness(t *testing.T) {
	st := server("a", 100, 4096, []trace.Usage{
		{CPU: 5, Mem: 1000}, {CPU: 5, Mem: 1000}, {CPU: 50, Mem: 2000}, {CPU: 5, Mem: 1000},
	})
	b, err := Burstiness(st)
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != "a" {
		t.Errorf("ID = %v", b.ID)
	}
	if math.Abs(b.AvgUtil-0.1625) > 1e-9 {
		t.Errorf("AvgUtil = %v, want 0.1625", b.AvgUtil)
	}
	if math.Abs(b.PeakUtil-0.5) > 1e-9 {
		t.Errorf("PeakUtil = %v, want 0.5", b.PeakUtil)
	}
	if b.PeakToAvg <= 1 || b.MemPeakToAvg <= 1 {
		t.Error("peak-to-average ratios should exceed 1 for bursty series")
	}
	if _, err := Burstiness(&trace.ServerTrace{}); err == nil {
		t.Error("expected error for invalid trace")
	}
}

func TestCorrelations(t *testing.T) {
	set := &trace.Set{Name: "t", Servers: []*trace.ServerTrace{
		server("a", 100, 4096, usages(1, 2, 3, 4)),
		server("b", 100, 4096, usages(2, 4, 6, 8)),
		server("c", 100, 4096, usages(4, 3, 2, 1)),
	}}
	m, err := Correlations(set)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 1 || m[1][1] != 1 {
		t.Error("diagonal must be 1")
	}
	if math.Abs(m[0][1]-1) > 1e-9 {
		t.Errorf("corr(a,b) = %v, want 1", m[0][1])
	}
	if math.Abs(m[0][2]+1) > 1e-9 {
		t.Errorf("corr(a,c) = %v, want -1", m[0][2])
	}
	if m[0][1] != m[1][0] {
		t.Error("matrix must be symmetric")
	}
	if _, err := Correlations(&trace.Set{}); err == nil {
		t.Error("expected error for empty set")
	}
}
