package analysis

import (
	"errors"
	"fmt"

	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// Seasonality quantifies how periodic a server's demand is: the
// autocorrelation of its hourly CPU series at the daily (24h) and weekly
// (168h) lags. Values near 1 mean tomorrow looks like today — the property
// that makes the dynamic planner's time-of-day predictor work, and that
// semi-static consolidation exploits across weekends and month boundaries
// (Section 1, "intra-week variations").
type Seasonality struct {
	ID     trace.ServerID
	Daily  float64 // autocorrelation at lag 24
	Weekly float64 // autocorrelation at lag 168
}

// Autocorrelation returns the Pearson correlation of a series with itself
// shifted by lag samples.
func Autocorrelation(values []float64, lag int) (float64, error) {
	if lag < 1 {
		return 0, errors.New("analysis: lag must be at least 1")
	}
	if len(values) < lag+2 {
		return 0, fmt.Errorf("analysis: need more than %d samples for lag %d", lag+1, lag)
	}
	c, err := stats.Correlation(values[:len(values)-lag], values[lag:])
	if err != nil {
		return 0, err
	}
	return c, nil
}

// SeasonalityOf measures one server's daily and weekly demand periodicity.
// The weekly component is zero when the trace is shorter than two weeks.
func SeasonalityOf(st *trace.ServerTrace) (Seasonality, error) {
	if err := st.Validate(); err != nil {
		return Seasonality{}, err
	}
	values := st.Series.Col(trace.CPU)
	daily, err := Autocorrelation(values, 24)
	if err != nil {
		return Seasonality{}, fmt.Errorf("analysis: server %s: %w", st.ID, err)
	}
	s := Seasonality{ID: st.ID, Daily: daily}
	if len(values) >= 170 {
		weekly, err := Autocorrelation(values, 168)
		if err != nil {
			return Seasonality{}, fmt.Errorf("analysis: server %s: %w", st.ID, err)
		}
		s.Weekly = weekly
	}
	return s, nil
}

// SeasonalityCDFs returns the per-server daily and weekly autocorrelation
// distributions of a data center.
func SeasonalityCDFs(set *trace.Set) (daily, weekly *stats.CDF, err error) {
	if len(set.Servers) == 0 {
		return nil, nil, errors.New("analysis: empty trace set")
	}
	var ds, ws []float64
	for _, st := range set.Servers {
		s, err := SeasonalityOf(st)
		if err != nil {
			return nil, nil, err
		}
		ds = append(ds, s.Daily)
		ws = append(ws, s.Weekly)
	}
	daily, err = stats.NewCDF(ds)
	if err != nil {
		return nil, nil, err
	}
	weekly, err = stats.NewCDF(ws)
	if err != nil {
		return nil, nil, err
	}
	return daily, weekly, nil
}
