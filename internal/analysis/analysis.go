// Package analysis implements the paper's trace-analysis studies
// (Section 4): per-server burstiness of CPU and memory demand —
// peak-to-average ratio over consolidation intervals and coefficient of
// variability (Figures 2-5) — and the aggregate CPU-to-memory resource
// ratio compared against the reference blade (Figure 6).
package analysis

import (
	"errors"
	"fmt"

	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// PeakToAverageCDF computes, for every server in the set, the ratio of peak
// to average demand of resource r when demand is estimated per
// consolidation interval of intervalHours (the paper uses 1, 2 and 4). The
// per-interval demand estimate is the interval maximum, matching the max
// sizing function; the ratio is the monthly peak of those estimates over
// their mean. The resulting sample (one ratio per server) is returned as an
// empirical CDF — one curve of Figures 2 and 4.
func PeakToAverageCDF(set *trace.Set, intervalHours int, r trace.Resource) (*stats.CDF, error) {
	if intervalHours < 1 {
		return nil, errors.New("analysis: interval must be at least one hour")
	}
	ratios := make([]float64, 0, len(set.Servers))
	var buf []float64
	for _, st := range set.Servers {
		demands, err := st.Series.IntervalsInto(buf, intervalHours, r, stats.Max)
		if err != nil {
			return nil, fmt.Errorf("server %s: %w", st.ID, err)
		}
		buf = demands
		ratios = append(ratios, stats.PeakToAverage(demands))
	}
	return stats.NewCDF(ratios)
}

// CoVCDF computes the coefficient of variability of resource r's hourly
// demand for every server and returns the per-server sample as a CDF — one
// curve of Figures 3 and 5. CoV >= 1 marks a heavy-tailed server.
func CoVCDF(set *trace.Set, r trace.Resource) (*stats.CDF, error) {
	covs := make([]float64, 0, len(set.Servers))
	for _, st := range set.Servers {
		covs = append(covs, stats.CoV(st.Series.Col(r)))
	}
	return stats.NewCDF(covs)
}

// ResourceRatios computes, for every consolidation interval, the ratio of
// aggregate CPU demand (RPE2, per-server interval peaks summed) to
// aggregate memory demand (GB), the quantity Figure 6 compares against the
// reference blade's capacity ratio of 160 RPE2/GB. Intervals where the
// aggregate ratio is below the blade ratio are memory-constrained.
func ResourceRatios(set *trace.Set, intervalHours int) ([]float64, error) {
	if intervalHours < 1 {
		return nil, errors.New("analysis: interval must be at least one hour")
	}
	if len(set.Servers) == 0 {
		return nil, errors.New("analysis: empty trace set")
	}
	var cpuTotals, memTotals []float64
	var cpuBuf, memBuf []float64
	for _, st := range set.Servers {
		cpu, err := st.Series.IntervalsInto(cpuBuf, intervalHours, trace.CPU, stats.Max)
		if err != nil {
			return nil, fmt.Errorf("server %s: %w", st.ID, err)
		}
		mem, err := st.Series.IntervalsInto(memBuf, intervalHours, trace.Mem, stats.Max)
		if err != nil {
			return nil, fmt.Errorf("server %s: %w", st.ID, err)
		}
		cpuBuf, memBuf = cpu, mem
		if cpuTotals == nil {
			cpuTotals = make([]float64, len(cpu))
			memTotals = make([]float64, len(mem))
		}
		for i := range cpu {
			cpuTotals[i] += cpu[i]
			memTotals[i] += mem[i]
		}
	}
	ratios := make([]float64, len(cpuTotals))
	for i := range cpuTotals {
		if memTotals[i] > 0 {
			ratios[i] = cpuTotals[i] / (memTotals[i] / 1024)
		}
	}
	return ratios, nil
}

// ResourceRatioCDF wraps ResourceRatios in an empirical CDF.
func ResourceRatioCDF(set *trace.Set, intervalHours int) (*stats.CDF, error) {
	ratios, err := ResourceRatios(set, intervalHours)
	if err != nil {
		return nil, err
	}
	return stats.NewCDF(ratios)
}

// MemoryBoundFraction returns the fraction of consolidation intervals in
// which the aggregate demand ratio falls below the reference blade ratio —
// the intervals where consolidation is constrained by memory
// (Observation 3).
func MemoryBoundFraction(set *trace.Set, intervalHours int, bladeRatio float64) (float64, error) {
	cdf, err := ResourceRatioCDF(set, intervalHours)
	if err != nil {
		return 0, err
	}
	return cdf.At(bladeRatio), nil
}

// MeanCPUUtilization returns the data-center-wide average CPU utilization:
// the mean over servers of each server's mean demand divided by its rating
// (the Table 2 "CPU Util" column).
func MeanCPUUtilization(set *trace.Set) (float64, error) {
	if len(set.Servers) == 0 {
		return 0, errors.New("analysis: empty trace set")
	}
	var total float64
	for _, st := range set.Servers {
		if st.Spec.CPURPE2 <= 0 {
			return 0, fmt.Errorf("analysis: server %s has no CPU rating", st.ID)
		}
		total += stats.Mean(st.Series.Col(trace.CPU)) / st.Spec.CPURPE2
	}
	return total / float64(len(set.Servers)), nil
}

// ServerBurstiness summarizes one server for the Figure 1 style report.
type ServerBurstiness struct {
	ID           trace.ServerID
	AvgUtil      float64 // mean CPU utilization (fraction of rating)
	PeakUtil     float64 // peak CPU utilization
	PeakToAvg    float64 // peak/average of hourly CPU demand
	CoV          float64 // coefficient of variability of CPU demand
	MemPeakToAvg float64
	MemCoV       float64
}

// Burstiness summarizes the named server.
func Burstiness(st *trace.ServerTrace) (ServerBurstiness, error) {
	if err := st.Validate(); err != nil {
		return ServerBurstiness{}, err
	}
	cpu := st.Series.Col(trace.CPU)
	mem := st.Series.Col(trace.Mem)
	return ServerBurstiness{
		ID:           st.ID,
		AvgUtil:      stats.Mean(cpu) / st.Spec.CPURPE2,
		PeakUtil:     stats.Max(cpu) / st.Spec.CPURPE2,
		PeakToAvg:    stats.PeakToAverage(cpu),
		CoV:          stats.CoV(cpu),
		MemPeakToAvg: stats.PeakToAverage(mem),
		MemCoV:       stats.CoV(mem),
	}, nil
}

// Correlations computes the pairwise Pearson correlation matrix of CPU
// demand across the servers of the set; the stochastic planner consumes it
// to avoid co-locating positively correlated workloads.
func Correlations(set *trace.Set) ([][]float64, error) {
	n := len(set.Servers)
	if n == 0 {
		return nil, errors.New("analysis: empty trace set")
	}
	values := make([][]float64, n)
	for i, st := range set.Servers {
		values[i] = st.Series.Col(trace.CPU)
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			c, err := stats.Correlation(values[i], values[j])
			if err != nil {
				return nil, fmt.Errorf("correlating %s with %s: %w", set.Servers[i].ID, set.Servers[j].ID, err)
			}
			m[i][j], m[j][i] = c, c
		}
	}
	return m, nil
}
