// Package wal implements the durability substrate of the control plane: an
// append-only, CRC32-framed, length-prefixed segmented log with a
// configurable fsync policy, a torn-tail-tolerant reader, and segment
// rotation plus compaction after checkpoint.
//
// The paper's dynamic consolidation loop re-plans every two hours over
// 14-day windows (Observations 5-7), which only makes sense if the
// controller survives restarts: the monitoring warehouse journals accepted
// samples through a Log and the consolidation controller journals
// intent/outcome/commit records around each interval, so recovery is
// "load latest checkpoint, replay the WAL suffix" instead of "lose 30 days
// of history and orphan a half-executed migration plan".
//
// # On-disk layout
//
// A log directory holds numbered segment files and checkpoint files:
//
//	wal-0000000000000000.log    records appended before the first rotation
//	wal-0000000000000003.log    the active segment (highest sequence)
//	checkpoint-0000000000000003.ckpt
//
// Every segment starts with an 8-byte magic header, followed by frames of
// [length uint32][crc32c uint32][payload]. A checkpoint file carries one
// frame of application state (the warehouse snapshot, the controller's
// committed placement) and is written atomically: temp file, fsync,
// rename. A checkpoint named with sequence S covers every record in
// segments below S; Checkpoint rotates first, writes the checkpoint, then
// deletes the covered segments and older checkpoints.
//
// # Recovery semantics
//
// Open loads the newest checkpoint and replays the segments at or above
// its sequence. A partial final record — a crash tore the tail of the last
// segment — is truncated, not fatal: the bytes never reached a successful
// fsync, so no acknowledged write is lost. Corruption anywhere else (a
// bad frame with later segments present, a sequence gap) is an
// ErrCorruptRecord error: silently skipping acknowledged records would be
// data loss.
//
// # Storage fault model
//
// Every filesystem operation goes through an fsx.FS (Options.FS), so the
// log can run against a seeded fsx.FaultFS in tests and chaos drills. The
// write path distinguishes three failure severities:
//
//   - A failed or torn WRITE leaves garbage after the last well-formed
//     frame. The segment is marked torn; the next append truncates back
//     to the good boundary and continues in place. Nothing acknowledged
//     was lost, and the page cache is not suspect.
//
//   - A failed FSYNC poisons the segment (ErrPoisoned): the kernel may
//     have dropped the dirty pages and cleared the error, so a later
//     "successful" fsync on the same file proves nothing. No further
//     append ever lands in a poisoned segment. The next append truncates
//     the segment to its durable watermark — the well-formed boundary the
//     last successful fsync covered — and rotates to a fresh segment.
//     Under SyncAlways the watermark equals the acknowledgment boundary,
//     so no acked record is dropped; under SyncInterval/SyncNever the
//     unsynced window is lost exactly as a crash would lose it.
//
//   - A failed poison-rotation (the truncate or the new segment's create
//     cannot complete) is terminal: every subsequent operation returns
//     ErrPoisoned. The log cannot promise durability anymore, and
//     pretending otherwise is how storage systems lie.
//
// Disk-full (fsx.ErrDiskFull, re-exported as ErrDiskFull) surfaces through
// append and checkpoint errors and is retryable once space is freed: a
// torn ENOSPC write repairs like any torn write.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vmwild/internal/fsx"
)

// Typed storage sentinels. Callers use errors.Is to tell retryable
// conditions (ErrDiskFull — free space and retry) from terminal ones
// (ErrPoisoned — rotate to new storage or stop acking) and from damage
// found at rest (ErrCorruptRecord — refuse to recover silently).
var (
	// ErrDiskFull is the disk-out-of-space condition, injected or real;
	// identical to fsx.ErrDiskFull so the two layers agree under errors.Is.
	ErrDiskFull = fsx.ErrDiskFull
	// ErrPoisoned marks a segment (or, terminally, the whole log) that hit
	// a failed fsync: its unsynced bytes are doubtful and no later fsync
	// may claim them durable.
	ErrPoisoned = errors.New("wal: segment poisoned by failed fsync")
	// ErrCorruptRecord marks a frame whose length or checksum is wrong
	// somewhere recovery is not allowed to truncate — mid-log corruption
	// or a damaged checkpoint.
	ErrCorruptRecord = errors.New("wal: corrupt record")
)

// SyncPolicy selects when appends are fsynced — the durability/latency
// trade of the ingest hot path (see BenchmarkWALAppend).
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before acknowledging it: no
	// acknowledged record is ever lost, at the price of one fsync per
	// sample on the ingest path.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per SyncEvery, piggybacked on
	// appends: a crash loses at most the last unsynced window.
	SyncInterval
	// SyncNever leaves flushing to the operating system: fastest, and a
	// crash loses whatever the kernel had not written back yet.
	SyncNever
)

// ParseSyncPolicy converts the -fsync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB). Rotation bounds how much one recovery must rescan
	// and gives compaction whole files to delete.
	SegmentBytes int64
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval cadence (default 100ms).
	SyncEvery time.Duration
	// Crash, when non-nil, injects a crash into the write path after a
	// byte budget — the failpoint behind the crash-injection test wall.
	// Production opens leave it nil.
	Crash *CrashSwitch
	// FS is the filesystem the log runs on (default fsx.OS). Chaos drills
	// hand in an fsx.FaultFS to inject torn writes, failed fsyncs, ENOSPC
	// and read corruption.
	FS fsx.FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.FS == nil {
		o.FS = fsx.OS
	}
	return o
}

var magic = [8]byte{'V', 'M', 'W', 'W', 'A', 'L', '0', '1'}

const (
	headerLen = 8
	frameLen  = 8 // length + crc
	// MaxRecordBytes bounds one record: anything larger is a corrupt
	// length prefix, not a record this package ever wrote.
	MaxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Recovered is what Open reconstructed from the directory.
type Recovered struct {
	// Checkpoint is the newest durable checkpoint payload, nil when no
	// checkpoint has been taken yet.
	Checkpoint []byte
	// CheckpointSeq is the segment sequence the checkpoint covers up to.
	CheckpointSeq uint64
	// Records are the payloads appended after the checkpoint, oldest
	// first.
	Records [][]byte
	// TornBytes counts trailing bytes dropped from the final segment —
	// the torn tail of a crashed append. Zero on a clean shutdown.
	TornBytes int64
}

// Log is an append-only segmented write-ahead log. Methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options
	fs   fsx.FS

	mu         sync.Mutex
	active     fsx.File
	activeSeq  uint64
	activeSize int64 // well-formed byte boundary of the active segment
	syncedSize int64 // durable watermark: boundary covered by the last successful fsync
	written    int64
	lastSync   time.Time
	dirty      bool
	closed     bool
	torn       bool // garbage bytes sit past activeSize (failed write); repair = truncate in place
	poisoned   bool // a fsync failed; repair = truncate to syncedSize and rotate
	terminal   bool // poison repair failed; every operation returns ErrPoisoned
}

// Open recovers the log directory (creating it if needed) and returns the
// log ready for appending plus the recovered state. A torn final record is
// truncated away; checkpoint temp files are removed.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	opts = opts.withDefaults()
	fs := opts.FS
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, ckpts, err := scanDir(fs, dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovered{}
	var from uint64
	if len(ckpts) > 0 {
		seq := ckpts[len(ckpts)-1]
		payload, err := readCheckpoint(fs, checkpointName(dir, seq))
		if err != nil {
			// A renamed checkpoint is always complete (it was fsynced
			// before the rename); an unreadable one is external damage
			// that silent fallback would turn into data loss.
			return nil, nil, fmt.Errorf("wal: checkpoint %d: %w", seq, err)
		}
		rec.Checkpoint = payload
		rec.CheckpointSeq = seq
		from = seq
	}

	var replay []uint64
	for _, seq := range segs {
		if seq >= from {
			replay = append(replay, seq)
		}
	}
	var lastValid int64
	for i, seq := range replay {
		if i > 0 && seq != replay[i-1]+1 {
			return nil, nil, fmt.Errorf("wal: segment gap: %d follows %d", seq, replay[i-1])
		}
		last := i == len(replay)-1
		records, valid, torn, err := readSegment(fs, segmentName(dir, seq), last)
		if err != nil {
			return nil, nil, err
		}
		rec.Records = append(rec.Records, records...)
		rec.TornBytes += torn
		if last {
			lastValid = valid
		}
	}

	l := &Log{dir: dir, opts: opts, fs: fs, lastSync: time.Now()}
	if len(replay) == 0 {
		// Fresh directory (or everything below the checkpoint was
		// compacted away and the active segment is gone — recreate it at
		// the checkpoint sequence).
		if err := l.openSegment(from); err != nil {
			return nil, nil, err
		}
		return l, rec, nil
	}
	seq := replay[len(replay)-1]
	name := segmentName(dir, seq)
	f, err := fs.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
	}
	// The truncation boundary comes from the SAME read that produced the
	// replayed records, so the on-disk suffix and the recovered state can
	// never disagree (a second read could be corrupted differently).
	if err := f.Truncate(lastValid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.active = f
	l.activeSeq = seq
	l.activeSize = lastValid
	l.syncedSize = lastValid
	if lastValid < headerLen {
		// The crash tore the segment header itself; rewrite it so
		// post-recovery appends replay.
		if _, err := l.write(f, magic[:]); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.activeSize = headerLen
		l.syncedSize = 0
		l.dirty = true
	}
	return l, rec, nil
}

// Append writes one record and makes it durable per the sync policy. A nil
// error acknowledges the record: with SyncAlways it has reached stable
// storage.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("wal: empty record")
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if err := l.ensureWritableLocked(); err != nil {
		return err
	}
	need := int64(frameLen + len(payload))
	if l.activeSize > headerLen && l.activeSize+need > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameLen:], payload)
	if err := l.appendFrameLocked(frame); err != nil {
		return err
	}
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.syncLocked()
		}
	}
	return nil
}

// appendFrameLocked writes one frame to the active segment, marking the
// segment torn when the write fails partway.
func (l *Log) appendFrameLocked(frame []byte) error {
	n, err := l.write(l.active, frame)
	if err != nil {
		if n > 0 {
			// A partial frame sits past activeSize; the next append
			// truncates it away before writing.
			l.torn = true
		}
		return err
	}
	l.activeSize += int64(len(frame))
	l.dirty = true
	return nil
}

// ensureWritableLocked repairs whatever the last failure left behind
// before new bytes are appended: terminal logs refuse, poisoned segments
// truncate to the durable watermark and rotate, torn segments truncate
// their garbage tail in place, and a missing active segment (a failed
// rotation) is recreated.
func (l *Log) ensureWritableLocked() error {
	if l.terminal {
		return fmt.Errorf("wal: log is terminally poisoned: %w", ErrPoisoned)
	}
	// After an injected crash nothing may touch the directory — not even
	// repairs; recovery through Open is the only way forward.
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if l.poisoned {
		return l.rotatePoisonedLocked()
	}
	if l.active == nil {
		return l.openSegment(l.activeSeq + 1)
	}
	if l.torn {
		return l.repairTornLocked()
	}
	return nil
}

// repairTornLocked truncates the garbage a failed write left past the
// well-formed boundary. The page cache is not suspect after a mere write
// failure, so appending continues in the same segment.
func (l *Log) repairTornLocked() error {
	if err := l.active.Truncate(l.activeSize); err != nil {
		return fmt.Errorf("wal: repair torn segment: %w", err)
	}
	if _, err := l.active.Seek(0, io.SeekEnd); err != nil {
		return fmt.Errorf("wal: repair torn segment: %w", err)
	}
	l.torn = false
	return nil
}

// rotatePoisonedLocked retires a segment whose fsync failed: truncate it
// to the durable watermark (everything past it is doubtful and was never
// acked under SyncAlways), abandon the file, and open a fresh segment.
// Any failure here is terminal — the log can no longer promise that an
// acknowledgment means durability.
func (l *Log) rotatePoisonedLocked() error {
	fail := func(stage string, err error) error {
		l.terminal = true
		return fmt.Errorf("wal: %s while rotating poisoned segment (log now terminal): %v: %w", stage, err, ErrPoisoned)
	}
	if l.active != nil {
		if l.syncedSize == 0 {
			// Not even the header reached the disk; the file holds nothing
			// durable, so remove it and reuse its sequence.
			l.active.Close() // the handle is abandoned either way
			if err := l.fs.Remove(segmentName(l.dir, l.activeSeq)); err != nil {
				return fail("remove empty poisoned segment", err)
			}
			l.active = nil
			l.poisoned = false
			l.torn = false
			l.dirty = false
			return l.openSegmentTerminalOnFail(l.activeSeq)
		}
		if err := l.active.Truncate(l.syncedSize); err != nil {
			return fail("truncate to durable watermark", err)
		}
		// Deliberately NO fsync of the poisoned file: a success would prove
		// nothing. The truncate drops only bytes that were never durable,
		// so replay after a crash sees at most what the watermark covered.
		l.active.Close()
		l.active = nil
	}
	l.poisoned = false
	l.torn = false
	l.dirty = false
	return l.openSegmentTerminalOnFail(l.activeSeq + 1)
}

func (l *Log) openSegmentTerminalOnFail(seq uint64) error {
	if err := l.openSegment(seq); err != nil {
		l.terminal = true
		return fmt.Errorf("wal: open fresh segment after poison (log now terminal): %v: %w", err, ErrPoisoned)
	}
	return nil
}

// Sync forces any buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.terminal || l.poisoned {
		// A sync on a poisoned segment must not be allowed to "succeed".
		return fmt.Errorf("wal: sync refused: %w", ErrPoisoned)
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if err := l.active.Sync(); err != nil {
		// Poisoned: the kernel may have dropped the dirty pages and
		// cleared its error state, so no later fsync on this file can be
		// trusted. The next append rotates away from it.
		l.poisoned = true
		return fmt.Errorf("wal: fsync: %v: %w", err, ErrPoisoned)
	}
	l.dirty = false
	l.syncedSize = l.activeSize
	l.lastSync = time.Now()
	return nil
}

// Checkpoint persists the application state atomically and compacts the
// log: the active segment is rotated, the checkpoint covering everything
// before the new segment is written (temp file, fsync, rename), and the
// covered segments and older checkpoints are deleted. Open afterwards
// loads this payload and replays only the records appended since.
func (l *Log) Checkpoint(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: checkpoint of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if err := l.ensureWritableLocked(); err != nil {
		return err
	}
	if l.activeSize > headerLen {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	} else if l.dirty {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	seq := l.activeSeq

	tmp := checkpointName(l.dir, seq) + ".tmp"
	f, err := l.create(tmp)
	if err != nil {
		return err
	}
	frame := make([]byte, headerLen+frameLen+len(payload))
	copy(frame[:headerLen], magic[:])
	binary.LittleEndian.PutUint32(frame[headerLen:headerLen+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[headerLen+4:headerLen+8], crc32.Checksum(payload, crcTable))
	copy(frame[headerLen+frameLen:], payload)
	// On any failure the temp file is removed; if even the removal fails,
	// the next Open's scan sweeps it, but the caller still learns both.
	fail := func(err error) error {
		f.Close()
		if rmErr := l.fs.Remove(tmp); rmErr != nil {
			return fmt.Errorf("%w (checkpoint temp not cleaned: %v)", err, rmErr)
		}
		return err
	}
	if _, err := l.write(f, frame); err != nil {
		return fail(err)
	}
	if err := l.syncFile(f); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		// A failed close can mean lost writes on some filesystems; the
		// checkpoint must not be renamed into place.
		return fail(fmt.Errorf("wal: close checkpoint: %w", err))
	}
	if err := l.rename(tmp, checkpointName(l.dir, seq)); err != nil {
		return fail(err)
	}
	if err := l.syncDir(); err != nil {
		return err
	}

	// The checkpoint is durable; everything it covers is garbage. A crash
	// mid-deletion is harmless — recovery keys off the newest checkpoint
	// and ignores older sequences.
	segs, ckpts, err := scanDir(l.fs, l.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < seq {
			if err := l.remove(segmentName(l.dir, s)); err != nil {
				return err
			}
		}
	}
	for _, c := range ckpts {
		if c < seq {
			if err := l.remove(checkpointName(l.dir, c)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close syncs and closes the active segment. A poisoned log is closed at
// its durable watermark and Close reports ErrPoisoned: the unsynced
// window is gone, exactly as a crash would have taken it, and pretending
// otherwise would re-ack it.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		if l.terminal {
			return fmt.Errorf("wal: close: %w", ErrPoisoned)
		}
		return nil
	}
	if l.terminal || l.poisoned {
		if cerr := l.opts.Crash.check(); cerr != nil {
			l.active.Close()
			return fmt.Errorf("wal: close: %v: %w", cerr, ErrPoisoned)
		}
		// Best-effort repair to the durable watermark; never fsync a
		// poisoned file — a "success" would claim durability it cannot
		// prove.
		terr := l.active.Truncate(l.syncedSize)
		l.active.Close()
		if terr != nil {
			return fmt.Errorf("wal: close poisoned log: truncate: %v: %w", terr, ErrPoisoned)
		}
		return fmt.Errorf("wal: close: %w", ErrPoisoned)
	}
	err := func() error {
		if err := l.opts.Crash.check(); err != nil {
			// Post-crash the directory is frozen: no repair, no sync.
			return err
		}
		if l.torn {
			if err := l.repairTornLocked(); err != nil {
				return err
			}
		}
		if !l.dirty {
			return nil
		}
		if err := l.active.Sync(); err != nil {
			l.poisoned = true
			// Same contract as syncLocked: the unsynced window is lost.
			if terr := l.active.Truncate(l.syncedSize); terr != nil {
				return fmt.Errorf("wal: close: fsync failed and truncate failed (%v): %w", terr, ErrPoisoned)
			}
			return fmt.Errorf("wal: close: fsync: %v: %w", err, ErrPoisoned)
		}
		return nil
	}()
	if cerr := l.active.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("wal: close segment: %w", cerr)
	}
	return err
}

// BytesWritten reports the cumulative bytes handed to the write path —
// segment headers, record frames and checkpoint files included. The crash
// wall uses it to enumerate kill points.
func (l *Log) BytesWritten() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// Poisoned reports whether the log has hit a failed fsync it has not yet
// rotated away from (or, terminally, cannot rotate away from).
func (l *Log) Poisoned() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned || l.terminal
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// rotateLocked syncs and closes the active segment and opens the next one.
func (l *Log) rotateLocked() error {
	if l.dirty {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.active.Close(); err != nil {
		// The segment was already synced, so nothing acked is at risk,
		// but the handle is gone either way; open the next segment on the
		// retry path.
		l.active = nil
		return fmt.Errorf("wal: close segment: %w", err)
	}
	l.active = nil
	return l.openSegment(l.activeSeq + 1)
}

func (l *Log) openSegment(seq uint64) error {
	f, err := l.create(segmentName(l.dir, seq))
	if err != nil {
		return err
	}
	if _, err := l.write(f, magic[:]); err != nil {
		// A partial header is garbage; remove the file so a retry (or
		// recovery) does not find a truncated header mid-sequence.
		f.Close()
		if rmErr := l.fs.Remove(segmentName(l.dir, seq)); rmErr != nil {
			return fmt.Errorf("%w (segment not cleaned: %v)", err, rmErr)
		}
		return err
	}
	l.active = f
	l.activeSeq = seq
	l.activeSize = headerLen
	l.syncedSize = 0
	l.dirty = true
	l.torn = false
	return nil
}

// write funnels every payload write through the crash failpoint: a tripped
// switch writes only the remaining byte budget — a torn record, exactly
// what a real crash leaves behind — and fails everything after. It returns
// how many bytes actually landed.
func (l *Log) write(f fsx.File, p []byte) (int, error) {
	allowed, err := l.opts.Crash.allow(int64(len(p)))
	var n int
	if allowed > 0 {
		var werr error
		n, werr = f.Write(p[:allowed])
		l.written += int64(n)
		if werr != nil && err == nil {
			err = fmt.Errorf("wal: write: %w", werr)
		}
	}
	return n, err
}

func (l *Log) syncFile(f fsx.File) error {
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

func (l *Log) create(name string) (fsx.File, error) {
	if err := l.opts.Crash.check(); err != nil {
		return nil, err
	}
	f, err := fsx.Create(l.fs, name)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return f, nil
}

func (l *Log) rename(from, to string) error {
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if err := l.fs.Rename(from, to); err != nil {
		return fmt.Errorf("wal: rename checkpoint: %w", err)
	}
	return nil
}

func (l *Log) remove(name string) error {
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if err := l.fs.Remove(name); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("wal: compact: %w", err)
	}
	return nil
}

func (l *Log) syncDir() error {
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	// Directory fsync is best-effort hardening; the rename itself is
	// already atomic, and some filesystems reject it.
	l.fs.SyncDir(l.dir)
	return nil
}

func segmentName(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

func checkpointName(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.ckpt", seq))
}

// scanDir lists segment and checkpoint sequences in ascending order and
// removes leftover checkpoint temp files.
func scanDir(fs fsx.FS, dir string) (segs, ckpts []uint64, err error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scan: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A checkpoint that never made it to rename: dead weight. A
			// failed removal must surface — it means the directory is not
			// in the state recovery will assume.
			if rmErr := fs.Remove(filepath.Join(dir, name)); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
				return nil, nil, fmt.Errorf("wal: scan: remove stale temp %s: %w", name, rmErr)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "wal-%016x.log", &seq); err == nil {
				segs = append(segs, seq)
			}
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "checkpoint-%016x.ckpt", &seq); err == nil {
				ckpts = append(ckpts, seq)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	return segs, ckpts, nil
}

// readSegment decodes one segment, returning the records, the valid byte
// boundary of the same read, and how many trailing bytes past it were
// dropped. In the final segment a torn or corrupt suffix is tolerated and
// reported as dropped bytes; anywhere else it is ErrCorruptRecord.
func readSegment(fs fsx.FS, name string, last bool) (records [][]byte, valid int64, torn int64, err error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	valid, records, complete := parseSegment(data)
	if complete {
		return records, valid, 0, nil
	}
	if !last {
		return nil, 0, 0, fmt.Errorf("wal: segment %s: %w in non-final segment", filepath.Base(name), ErrCorruptRecord)
	}
	return records, valid, int64(len(data)) - valid, nil
}

// parseSegment walks the frames of a segment image and returns the length
// of the valid prefix, the decoded records, and whether the whole image
// parsed cleanly.
func parseSegment(data []byte) (valid int64, records [][]byte, complete bool) {
	if len(data) < headerLen || [8]byte(data[:headerLen]) != magic {
		// Crash during segment creation tore the header itself.
		return 0, nil, len(data) == 0
	}
	off := int64(headerLen)
	for off < int64(len(data)) {
		if off+frameLen > int64(len(data)) {
			return off, records, false
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > MaxRecordBytes || off+frameLen+n > int64(len(data)) {
			return off, records, false
		}
		payload := data[off+frameLen : off+frameLen+n]
		if crc32.Checksum(payload, crcTable) != crc {
			return off, records, false
		}
		records = append(records, append([]byte(nil), payload...))
		off += frameLen + n
	}
	return off, records, true
}

// readCheckpoint decodes a checkpoint file, rejecting torn or corrupt
// content with ErrCorruptRecord.
func readCheckpoint(fs fsx.FS, name string) ([]byte, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen+frameLen || [8]byte(data[:headerLen]) != magic {
		return nil, fmt.Errorf("wal: malformed checkpoint header: %w", ErrCorruptRecord)
	}
	n := int64(binary.LittleEndian.Uint32(data[headerLen : headerLen+4]))
	crc := binary.LittleEndian.Uint32(data[headerLen+4 : headerLen+8])
	if n > MaxRecordBytes || int64(len(data)) != headerLen+frameLen+n {
		return nil, fmt.Errorf("wal: checkpoint length mismatch: %w", ErrCorruptRecord)
	}
	payload := data[headerLen+frameLen:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("wal: checkpoint checksum mismatch: %w", ErrCorruptRecord)
	}
	return append([]byte(nil), payload...), nil
}
