// Package wal implements the durability substrate of the control plane: an
// append-only, CRC32-framed, length-prefixed segmented log with a
// configurable fsync policy, a torn-tail-tolerant reader, and segment
// rotation plus compaction after checkpoint.
//
// The paper's dynamic consolidation loop re-plans every two hours over
// 14-day windows (Observations 5-7), which only makes sense if the
// controller survives restarts: the monitoring warehouse journals accepted
// samples through a Log and the consolidation controller journals
// intent/outcome/commit records around each interval, so recovery is
// "load latest checkpoint, replay the WAL suffix" instead of "lose 30 days
// of history and orphan a half-executed migration plan".
//
// # On-disk layout
//
// A log directory holds numbered segment files and checkpoint files:
//
//	wal-0000000000000000.log    records appended before the first rotation
//	wal-0000000000000003.log    the active segment (highest sequence)
//	checkpoint-0000000000000003.ckpt
//
// Every segment starts with an 8-byte magic header, followed by frames of
// [length uint32][crc32c uint32][payload]. A checkpoint file carries one
// frame of application state (the warehouse snapshot, the controller's
// committed placement) and is written atomically: temp file, fsync,
// rename. A checkpoint named with sequence S covers every record in
// segments below S; Checkpoint rotates first, writes the checkpoint, then
// deletes the covered segments and older checkpoints.
//
// # Recovery semantics
//
// Open loads the newest checkpoint and replays the segments at or above
// its sequence. A partial final record — a crash tore the tail of the last
// segment — is truncated, not fatal: the bytes never reached a successful
// fsync, so no acknowledged write is lost. Corruption anywhere else (a
// bad frame with later segments present, a sequence gap) is an error:
// silently skipping acknowledged records would be data loss.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appends are fsynced — the durability/latency
// trade of the ingest hot path (see BenchmarkWALAppend).
type SyncPolicy int

const (
	// SyncAlways fsyncs every append before acknowledging it: no
	// acknowledged record is ever lost, at the price of one fsync per
	// sample on the ingest path.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per SyncEvery, piggybacked on
	// appends: a crash loses at most the last unsynced window.
	SyncInterval
	// SyncNever leaves flushing to the operating system: fastest, and a
	// crash loses whatever the kernel had not written back yet.
	SyncNever
)

// ParseSyncPolicy converts the -fsync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a log.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB). Rotation bounds how much one recovery must rescan
	// and gives compaction whole files to delete.
	SegmentBytes int64
	// Sync is the fsync policy for appends (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval cadence (default 100ms).
	SyncEvery time.Duration
	// Crash, when non-nil, injects a crash into the write path after a
	// byte budget — the failpoint behind the crash-injection test wall.
	// Production opens leave it nil.
	Crash *CrashSwitch
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	return o
}

var magic = [8]byte{'V', 'M', 'W', 'W', 'A', 'L', '0', '1'}

const (
	headerLen = 8
	frameLen  = 8 // length + crc
	// MaxRecordBytes bounds one record: anything larger is a corrupt
	// length prefix, not a record this package ever wrote.
	MaxRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Recovered is what Open reconstructed from the directory.
type Recovered struct {
	// Checkpoint is the newest durable checkpoint payload, nil when no
	// checkpoint has been taken yet.
	Checkpoint []byte
	// CheckpointSeq is the segment sequence the checkpoint covers up to.
	CheckpointSeq uint64
	// Records are the payloads appended after the checkpoint, oldest
	// first.
	Records [][]byte
	// TornBytes counts trailing bytes dropped from the final segment —
	// the torn tail of a crashed append. Zero on a clean shutdown.
	TornBytes int64
}

// Log is an append-only segmented write-ahead log. Methods are safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options

	mu         sync.Mutex
	active     *os.File
	activeSeq  uint64
	activeSize int64
	written    int64
	lastSync   time.Time
	dirty      bool
	closed     bool
}

// Open recovers the log directory (creating it if needed) and returns the
// log ready for appending plus the recovered state. A torn final record is
// truncated away; checkpoint temp files are removed.
func Open(dir string, opts Options) (*Log, *Recovered, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, ckpts, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}

	rec := &Recovered{}
	var from uint64
	if len(ckpts) > 0 {
		seq := ckpts[len(ckpts)-1]
		payload, err := readCheckpoint(checkpointName(dir, seq))
		if err != nil {
			// A renamed checkpoint is always complete (it was fsynced
			// before the rename); an unreadable one is external damage
			// that silent fallback would turn into data loss.
			return nil, nil, fmt.Errorf("wal: checkpoint %d: %w", seq, err)
		}
		rec.Checkpoint = payload
		rec.CheckpointSeq = seq
		from = seq
	}

	var replay []uint64
	for _, seq := range segs {
		if seq >= from {
			replay = append(replay, seq)
		}
	}
	for i, seq := range replay {
		if i > 0 && seq != replay[i-1]+1 {
			return nil, nil, fmt.Errorf("wal: segment gap: %d follows %d", seq, replay[i-1])
		}
		last := i == len(replay)-1
		records, torn, err := readSegment(segmentName(dir, seq), last)
		if err != nil {
			return nil, nil, err
		}
		rec.Records = append(rec.Records, records...)
		rec.TornBytes += torn
	}

	l := &Log{dir: dir, opts: opts, lastSync: time.Now()}
	if len(replay) == 0 {
		// Fresh directory (or everything below the checkpoint was
		// compacted away and the active segment is gone — recreate it at
		// the checkpoint sequence).
		if err := l.openSegment(from); err != nil {
			return nil, nil, err
		}
		return l, rec, nil
	}
	seq := replay[len(replay)-1]
	name := segmentName(dir, seq)
	valid, err := validSegmentLen(name)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(name, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek: %w", err)
	}
	l.active = f
	l.activeSeq = seq
	l.activeSize = valid
	if valid < headerLen {
		// The crash tore the segment header itself; rewrite it so
		// post-recovery appends replay.
		if err := l.write(f, magic[:]); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.activeSize = headerLen
		l.dirty = true
	}
	return l, rec, nil
}

// Append writes one record and makes it durable per the sync policy. A nil
// error acknowledges the record: with SyncAlways it has reached stable
// storage.
func (l *Log) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("wal: empty record")
	}
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	need := int64(frameLen + len(payload))
	if l.activeSize > headerLen && l.activeSize+need > l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameLen:], payload)
	if err := l.write(l.active, frame); err != nil {
		return err
	}
	l.activeSize += int64(len(frame))
	l.dirty = true
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.SyncEvery {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync forces any buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Checkpoint persists the application state atomically and compacts the
// log: the active segment is rotated, the checkpoint covering everything
// before the new segment is written (temp file, fsync, rename), and the
// covered segments and older checkpoints are deleted. Open afterwards
// loads this payload and replays only the records appended since.
func (l *Log) Checkpoint(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: checkpoint of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if l.activeSize > headerLen {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	} else if l.dirty {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	seq := l.activeSeq

	tmp := checkpointName(l.dir, seq) + ".tmp"
	f, err := l.create(tmp)
	if err != nil {
		return err
	}
	frame := make([]byte, headerLen+frameLen+len(payload))
	copy(frame[:headerLen], magic[:])
	binary.LittleEndian.PutUint32(frame[headerLen:headerLen+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[headerLen+4:headerLen+8], crc32.Checksum(payload, crcTable))
	copy(frame[headerLen+frameLen:], payload)
	if err := l.write(f, frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := l.syncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	if err := l.rename(tmp, checkpointName(l.dir, seq)); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := l.syncDir(); err != nil {
		return err
	}

	// The checkpoint is durable; everything it covers is garbage. A crash
	// mid-deletion is harmless — recovery keys off the newest checkpoint
	// and ignores older sequences.
	segs, ckpts, err := scanDir(l.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < seq {
			if err := l.remove(segmentName(l.dir, s)); err != nil {
				return err
			}
		}
	}
	for _, c := range ckpts {
		if c < seq {
			if err := l.remove(checkpointName(l.dir, c)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close syncs and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := func() error {
		if !l.dirty {
			return nil
		}
		if err := l.opts.Crash.check(); err != nil {
			return err
		}
		return l.active.Sync()
	}()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// BytesWritten reports the cumulative bytes handed to the write path —
// segment headers, record frames and checkpoint files included. The crash
// wall uses it to enumerate kill points.
func (l *Log) BytesWritten() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.written
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// rotateLocked syncs and closes the active segment and opens the next one.
func (l *Log) rotateLocked() error {
	if l.dirty {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: close segment: %w", err)
	}
	return l.openSegment(l.activeSeq + 1)
}

func (l *Log) openSegment(seq uint64) error {
	f, err := l.create(segmentName(l.dir, seq))
	if err != nil {
		return err
	}
	if err := l.write(f, magic[:]); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.activeSeq = seq
	l.activeSize = headerLen
	l.dirty = true
	return nil
}

// write funnels every payload write through the crash failpoint: a tripped
// switch writes only the remaining byte budget — a torn record, exactly
// what a real crash leaves behind — and fails everything after.
func (l *Log) write(f *os.File, p []byte) error {
	allowed, err := l.opts.Crash.allow(int64(len(p)))
	if allowed > 0 {
		n, werr := f.Write(p[:allowed])
		l.written += int64(n)
		if werr != nil {
			return fmt.Errorf("wal: write: %w", werr)
		}
	}
	return err
}

func (l *Log) syncFile(f *os.File) error {
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

func (l *Log) create(name string) (*os.File, error) {
	if err := l.opts.Crash.check(); err != nil {
		return nil, err
	}
	f, err := os.Create(name)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	return f, nil
}

func (l *Log) rename(from, to string) error {
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if err := os.Rename(from, to); err != nil {
		return fmt.Errorf("wal: rename checkpoint: %w", err)
	}
	return nil
}

func (l *Log) remove(name string) error {
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	if err := os.Remove(name); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("wal: compact: %w", err)
	}
	return nil
}

func (l *Log) syncDir() error {
	if err := l.opts.Crash.check(); err != nil {
		return err
	}
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	// Some filesystems reject directory fsync; the rename itself is
	// already atomic, so this is best-effort hardening.
	d.Sync()
	return nil
}

func segmentName(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", seq))
}

func checkpointName(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("checkpoint-%016x.ckpt", seq))
}

// scanDir lists segment and checkpoint sequences in ascending order and
// removes leftover checkpoint temp files.
func scanDir(dir string) (segs, ckpts []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: scan: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// A checkpoint that never made it to rename: dead weight.
			os.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "wal-%016x.log", &seq); err == nil {
				segs = append(segs, seq)
			}
		case strings.HasPrefix(name, "checkpoint-") && strings.HasSuffix(name, ".ckpt"):
			var seq uint64
			if _, err := fmt.Sscanf(name, "checkpoint-%016x.ckpt", &seq); err == nil {
				ckpts = append(ckpts, seq)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] < ckpts[j] })
	return segs, ckpts, nil
}

// readSegment decodes one segment. In the final segment a torn or corrupt
// suffix is tolerated and reported as dropped bytes; anywhere else it is
// an error.
func readSegment(name string, last bool) (records [][]byte, torn int64, err error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	valid, records, complete := parseSegment(data)
	if complete {
		return records, 0, nil
	}
	if !last {
		return nil, 0, fmt.Errorf("wal: corrupt record in non-final segment %s", filepath.Base(name))
	}
	return records, int64(len(data)) - valid, nil
}

// validSegmentLen returns the byte length of the valid prefix of a segment.
func validSegmentLen(name string) (int64, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return 0, fmt.Errorf("wal: read segment: %w", err)
	}
	valid, _, _ := parseSegment(data)
	return valid, nil
}

// parseSegment walks the frames of a segment image and returns the length
// of the valid prefix, the decoded records, and whether the whole image
// parsed cleanly.
func parseSegment(data []byte) (valid int64, records [][]byte, complete bool) {
	if len(data) < headerLen || [8]byte(data[:headerLen]) != magic {
		// Crash during segment creation tore the header itself.
		return 0, nil, false
	}
	off := int64(headerLen)
	for off < int64(len(data)) {
		if off+frameLen > int64(len(data)) {
			return off, records, false
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n == 0 || n > MaxRecordBytes || off+frameLen+n > int64(len(data)) {
			return off, records, false
		}
		payload := data[off+frameLen : off+frameLen+n]
		if crc32.Checksum(payload, crcTable) != crc {
			return off, records, false
		}
		records = append(records, append([]byte(nil), payload...))
		off += frameLen + n
	}
	return off, records, true
}

// readCheckpoint decodes a checkpoint file, rejecting torn or corrupt
// content.
func readCheckpoint(name string) ([]byte, error) {
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(data) < headerLen+frameLen || [8]byte(data[:headerLen]) != magic {
		return nil, errors.New("wal: malformed checkpoint header")
	}
	n := int64(binary.LittleEndian.Uint32(data[headerLen : headerLen+4]))
	crc := binary.LittleEndian.Uint32(data[headerLen+4 : headerLen+8])
	if n > MaxRecordBytes || int64(len(data)) != headerLen+frameLen+n {
		return nil, errors.New("wal: checkpoint length mismatch")
	}
	payload := data[headerLen+frameLen:]
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, errors.New("wal: checkpoint checksum mismatch")
	}
	return append([]byte(nil), payload...), nil
}
