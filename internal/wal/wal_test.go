package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"vmwild/internal/fsx"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func record(i int) []byte {
	return []byte(fmt.Sprintf("record-%04d-%s", i, string(make([]byte, i%7))))
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{})
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh log recovered state: %+v", rec)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(record(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, rec = mustOpen(t, dir, Options{})
	if len(rec.Records) != n {
		t.Fatalf("replayed %d records, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if !bytes.Equal(r, record(i)) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if rec.TornBytes != 0 {
		t.Errorf("clean log reported %d torn bytes", rec.TornBytes)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		if err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, err := scanDir(fsx.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	_, rec := mustOpen(t, dir, Options{SegmentBytes: 256})
	if len(rec.Records) != 40 {
		t.Fatalf("replayed %d records across segments, want 40", len(rec.Records))
	}
}

func TestCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		if err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	state := []byte("state-after-20")
	if err := l.Checkpoint(state); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	for i := 20; i < 25; i++ {
		if err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	segs, ckpts, err := scanDir(fsx.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ckpts) != 1 {
		t.Fatalf("want exactly one checkpoint file, got %d", len(ckpts))
	}
	for _, s := range segs {
		if s < ckpts[0] {
			t.Fatalf("segment %d below checkpoint %d survived compaction", s, ckpts[0])
		}
	}

	_, rec := mustOpen(t, dir, Options{})
	if !bytes.Equal(rec.Checkpoint, state) {
		t.Fatalf("checkpoint payload = %q, want %q", rec.Checkpoint, state)
	}
	if len(rec.Records) != 5 {
		t.Fatalf("replayed %d post-checkpoint records, want 5", len(rec.Records))
	}
	if !bytes.Equal(rec.Records[0], record(20)) {
		t.Fatal("wrong first post-checkpoint record")
	}
}

func TestEmptyCheckpointPayload(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(nil); err != nil {
		t.Fatalf("empty checkpoint: %v", err)
	}
	l.Close()
	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Records) != 0 {
		t.Fatalf("compacted log replayed %d records", len(rec.Records))
	}
}

// TestTornTailTruncated is the headline recovery property: a partial final
// record must be dropped, not fail startup, and the log must keep working.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := segmentName(dir, 0)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear at every byte boundary inside the last record.
	lastStart := int64(len(data)) - int64(frameLen+len(record(9)))
	for cut := lastStart + 1; cut < int64(len(data)); cut++ {
		sub := t.TempDir()
		torn := filepath.Join(sub, filepath.Base(seg))
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec, err := Open(sub, Options{})
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		if len(rec.Records) != 9 {
			t.Fatalf("cut at %d: replayed %d records, want 9", cut, len(rec.Records))
		}
		if rec.TornBytes != cut-lastStart {
			t.Fatalf("cut at %d: torn bytes %d, want %d", cut, rec.TornBytes, cut-lastStart)
		}
		// The torn tail is physically gone: appends after recovery land
		// on a clean boundary and replay intact.
		if err := l2.Append([]byte("after-recovery")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		l2.Close()
		_, rec2, err := Open(sub, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rec2.Records) != 10 || !bytes.Equal(rec2.Records[9], []byte("after-recovery")) {
			t.Fatalf("cut at %d: post-recovery append lost", cut)
		}
	}
}

func TestCorruptMiddleIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(fsx.OS, dir)
	if len(segs) < 2 {
		t.Fatal("need at least two segments")
	}
	// Flip a payload byte in the first (non-final) segment.
	name := segmentName(dir, segs[0])
	data, _ := os.ReadFile(name)
	data[len(data)-1] ^= 0xff
	os.WriteFile(name, data, 0o644)
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corruption in a non-final segment must fail recovery, not silently drop records")
	}
}

func TestSegmentGapIsFatal(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 30; i++ {
		if err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, _, _ := scanDir(fsx.OS, dir)
	if len(segs) < 3 {
		t.Fatal("need at least three segments")
	}
	os.Remove(segmentName(dir, segs[1]))
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("a missing middle segment must fail recovery")
	}
}

func TestCrashSwitchTearsExactlyAtBudget(t *testing.T) {
	ref := t.TempDir()
	l, _ := mustOpen(t, ref, Options{})
	for i := 0; i < 8; i++ {
		if err := l.Append(record(i)); err != nil {
			t.Fatal(err)
		}
	}
	total := l.BytesWritten()
	l.Close()

	for cut := int64(1); cut <= total; cut++ {
		dir := t.TempDir()
		crash := NewCrashSwitch(cut)
		acked := 0
		l, _, err := Open(dir, Options{Crash: crash})
		if err == nil {
			for i := 0; i < 8; i++ {
				if err := l.Append(record(i)); err != nil {
					if !errors.Is(err, ErrCrashed) {
						t.Fatalf("cut %d: unexpected error %v", cut, err)
					}
					break
				}
				acked++
			}
		} else if !errors.Is(err, ErrCrashed) {
			// A budget small enough to die inside the segment header
			// kills Open itself; anything else is a real failure.
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		if acked < 8 && !crash.Tripped() {
			t.Fatalf("cut %d: switch never tripped", cut)
		}
		// Everything acknowledged must survive recovery; at most the one
		// in-flight record may additionally appear if the crash fell
		// between its final write and its fsync.
		_, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery: %v", cut, err)
		}
		if len(rec.Records) < acked || len(rec.Records) > acked+1 {
			t.Fatalf("cut %d: recovered %d records with %d acked", cut, len(rec.Records), acked)
		}
		for i := 0; i < len(rec.Records); i++ {
			if !bytes.Equal(rec.Records[i], record(i)) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
	}
}

func TestCrashDuringCheckpointKeepsOldState(t *testing.T) {
	// Reference: append 10, checkpoint, measure bytes, append 5 more.
	ref := t.TempDir()
	l, _ := mustOpen(t, ref, Options{})
	for i := 0; i < 10; i++ {
		l.Append(record(i))
	}
	preCkpt := l.BytesWritten()
	if err := l.Checkpoint([]byte("ckpt")); err != nil {
		t.Fatal(err)
	}
	postCkpt := l.BytesWritten()
	l.Close()

	// Crash at every byte of the checkpoint write (a cut at postCkpt
	// would let the whole checkpoint through): recovery must land on
	// either the old state (all 10 records, no checkpoint) or the new
	// checkpoint — never in between.
	for cut := preCkpt + 1; cut < postCkpt; cut++ {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{Crash: NewCrashSwitch(cut)})
		for i := 0; i < 10; i++ {
			if err := l.Append(record(i)); err != nil {
				t.Fatalf("cut %d: append %d should precede crash: %v", cut, i, err)
			}
		}
		if err := l.Checkpoint([]byte("ckpt")); !errors.Is(err, ErrCrashed) {
			t.Fatalf("cut %d: checkpoint error = %v, want ErrCrashed", cut, err)
		}
		_, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery: %v", cut, err)
		}
		if rec.Checkpoint == nil {
			if len(rec.Records) != 10 {
				t.Fatalf("cut %d: old state lost: %d records", cut, len(rec.Records))
			}
		} else {
			if !bytes.Equal(rec.Checkpoint, []byte("ckpt")) || len(rec.Records) != 0 {
				t.Fatalf("cut %d: inconsistent checkpoint state", cut)
			}
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, Options{Sync: policy, SyncEvery: time.Millisecond})
			for i := 0; i < 10; i++ {
				if err := l.Append(record(i)); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec := mustOpen(t, dir, Options{})
			if len(rec.Records) != 10 {
				t.Fatalf("replayed %d records, want 10", len(rec.Records))
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "Interval": SyncInterval, " never ": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestAppendValidation(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
}

func TestClosedLogRejectsOperations(t *testing.T) {
	l, _ := mustOpen(t, t.TempDir(), Options{})
	l.Close()
	if err := l.Append([]byte("x")); err == nil {
		t.Error("append on closed log accepted")
	}
	if err := l.Checkpoint([]byte("x")); err == nil {
		t.Error("checkpoint on closed log accepted")
	}
}
