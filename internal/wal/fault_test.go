package wal

// Storage-fault tests: the torn/poisoned/terminal state machine under
// targeted injections (hookFS pins exactly which call fails) and under
// seeded schedules (FuzzFaultFS sweeps fault profiles and asserts the
// replay-equals-acked contract).

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vmwild/internal/fsx"
)

// hookFS wraps an fsx.FS with test-armed failure counters. Tests mutate
// the fields directly between calls; single-goroutine use only.
type hookFS struct {
	fsx.FS
	failNextSync   int    // fail the next n file Sync calls
	failNextWrite  int    // tear the next n writes after tearBytes bytes
	tearBytes      int    // prefix landed by a torn write
	failNextRename int    // fail the next n renames
	failOpenMatch  string // refuse OpenFile of names containing this
}

func (h *hookFS) OpenFile(name string, flag int, perm os.FileMode) (fsx.File, error) {
	if h.failOpenMatch != "" && strings.Contains(filepath.Base(name), h.failOpenMatch) {
		return nil, errors.New("hook: open refused")
	}
	f, err := h.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &hookFile{File: f, fs: h}, nil
}

func (h *hookFS) Rename(oldpath, newpath string) error {
	if h.failNextRename > 0 {
		h.failNextRename--
		return errors.New("hook: rename refused")
	}
	return h.FS.Rename(oldpath, newpath)
}

type hookFile struct {
	fsx.File
	fs *hookFS
}

func (f *hookFile) Sync() error {
	if f.fs.failNextSync > 0 {
		f.fs.failNextSync--
		return errors.New("hook: fsync refused")
	}
	return f.File.Sync()
}

func (f *hookFile) Write(p []byte) (int, error) {
	if f.fs.failNextWrite > 0 {
		f.fs.failNextWrite--
		n := f.fs.tearBytes
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			f.File.Write(p[:n])
		}
		return n, errors.New("hook: write refused")
	}
	return f.File.Write(p)
}

// TestFailedSyncPoisonsAndRotates: a failed fsync must fail the append
// with ErrPoisoned, refuse further syncs of the segment, drop the
// unacked record at the durable watermark, and continue in a fresh
// segment on the next append.
func TestFailedSyncPoisonsAndRotates(t *testing.T) {
	dir := t.TempDir()
	h := &hookFS{FS: fsx.OS}
	l, _, err := Open(dir, Options{FS: h, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("r0")); err != nil {
		t.Fatal(err)
	}
	h.failNextSync = 1
	if err := l.Append([]byte("r1")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append through failed fsync: err = %v, want ErrPoisoned", err)
	}
	if !l.Poisoned() {
		t.Fatal("log not marked poisoned after failed fsync")
	}
	// No later fsync of the poisoned segment may claim durability.
	if err := l.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync of poisoned segment: err = %v, want ErrPoisoned", err)
	}
	// The next append rotates away and succeeds.
	if err := l.Append([]byte("r2")); err != nil {
		t.Fatalf("append after poison rotation: %v", err)
	}
	if l.Poisoned() {
		t.Fatal("still poisoned after rotation")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	segs, _, err := scanDir(fsx.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("want poisoned + fresh segment, got %d segments", len(segs))
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	want := [][]byte{[]byte("r0"), []byte("r2")}
	if len(rec.Records) != 2 || !bytes.Equal(rec.Records[0], want[0]) || !bytes.Equal(rec.Records[1], want[1]) {
		t.Fatalf("replay = %q, want %q (the unacked r1 must not resurface)", rec.Records, want)
	}
}

// TestPoisonRotationFailureIsTerminal: when the fresh segment after a
// poisoned one cannot be created, the log goes terminal — every further
// operation reports ErrPoisoned, and recovery sees only acked records.
func TestPoisonRotationFailureIsTerminal(t *testing.T) {
	dir := t.TempDir()
	h := &hookFS{FS: fsx.OS}
	l, _, err := Open(dir, Options{FS: h, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("r0")); err != nil {
		t.Fatal(err)
	}
	h.failNextSync = 1
	if err := l.Append([]byte("r1")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("err = %v, want ErrPoisoned", err)
	}
	h.failOpenMatch = ".log" // the replacement segment cannot be created
	if err := l.Append([]byte("r2")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("rotation failure err = %v, want ErrPoisoned", err)
	}
	h.failOpenMatch = ""
	// Terminal is sticky: even with the disk healed, the log refuses.
	if err := l.Append([]byte("r3")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append on terminal log err = %v, want ErrPoisoned", err)
	}
	if err := l.Checkpoint([]byte("c")); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("checkpoint on terminal log err = %v, want ErrPoisoned", err)
	}
	if err := l.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("close of terminal log err = %v, want ErrPoisoned", err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], []byte("r0")) {
		t.Fatalf("replay = %q, want only the acked r0", rec.Records)
	}
}

// TestPoisonBeforeFirstSyncRemovesSegment: a segment poisoned before even
// its header was synced holds nothing durable; rotation removes the file
// and reuses its sequence so recovery never sees a gap or a headerless
// non-final segment.
func TestPoisonBeforeFirstSyncRemovesSegment(t *testing.T) {
	dir := t.TempDir()
	h := &hookFS{FS: fsx.OS}
	l, _, err := Open(dir, Options{FS: h, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	h.failNextSync = 1
	if err := l.Sync(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("sync err = %v, want ErrPoisoned", err)
	}
	if err := l.Append([]byte("r0")); err != nil {
		t.Fatalf("append after empty-segment poison: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := scanDir(fsx.OS, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("want the poisoned empty segment removed, got %d segments", len(segs))
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], []byte("r0")) {
		t.Fatalf("replay = %q", rec.Records)
	}
}

// TestTornWriteRepairsInPlace: a write that fails partway leaves garbage
// past the boundary; the next append truncates it and continues in the
// same segment — no rotation, nothing acked lost, nothing unacked kept.
func TestTornWriteRepairsInPlace(t *testing.T) {
	dir := t.TempDir()
	h := &hookFS{FS: fsx.OS}
	l, _, err := Open(dir, Options{FS: h, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("r0")); err != nil {
		t.Fatal(err)
	}
	h.failNextWrite, h.tearBytes = 1, 5
	if err := l.Append([]byte("r1-that-tears")); err == nil {
		t.Fatal("torn write reported success")
	}
	if l.Poisoned() {
		t.Fatal("a mere write failure must not poison the segment")
	}
	if err := l.Append([]byte("r2")); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := scanDir(fsx.OS, dir)
	if len(segs) != 1 {
		t.Fatalf("torn-write repair rotated (%d segments), want in-place", len(segs))
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || !bytes.Equal(rec.Records[0], []byte("r0")) || !bytes.Equal(rec.Records[1], []byte("r2")) {
		t.Fatalf("replay = %q, want [r0 r2]", rec.Records)
	}
	if rec.TornBytes != 0 {
		t.Fatalf("repair left %d torn bytes for recovery to clean", rec.TornBytes)
	}
}

// TestCheckpointRenameFailureIsRetryable: a failed checkpoint rename
// leaves the old checkpoint standing and the temp cleaned up; the retry
// succeeds.
func TestCheckpointRenameFailureIsRetryable(t *testing.T) {
	dir := t.TempDir()
	h := &hookFS{FS: fsx.OS}
	l, _, err := Open(dir, Options{FS: h, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	h.failNextRename = 1
	if err := l.Checkpoint([]byte("state-a")); err == nil {
		t.Fatal("checkpoint with failed rename reported success")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("failed checkpoint left temp file %s", e.Name())
		}
	}
	if err := l.Checkpoint([]byte("state-b")); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Checkpoint, []byte("state-b")) {
		t.Fatalf("recovered checkpoint %q, want state-b", rec.Checkpoint)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("replay = %q, want none after checkpoint", rec.Records)
	}
}

// TestAppendDiskFullRetryable: ENOSPC fails the append with a typed,
// errors.Is-able sentinel and the log resumes cleanly once space frees.
func TestAppendDiskFullRetryable(t *testing.T) {
	root := t.TempDir()
	ffs, err := fsx.NewFaultFS(fsx.OS, root, 1, fsx.Profile{DiskBudget: 64})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "w")
	l, _, err := Open(dir, Options{FS: ffs, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte("x"), 100)
	err = l.Append(big)
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("append on full disk err = %v, want ErrDiskFull", err)
	}
	if !fsx.IsNoSpace(err) {
		t.Fatal("IsNoSpace rejects the WAL's ENOSPC error")
	}
	ffs.SetDiskBudget(-1) // operator freed space
	if err := l.Append(big); err != nil {
		t.Fatalf("append after heal: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 || !bytes.Equal(rec.Records[0], big) {
		t.Fatalf("replay has %d records, want exactly the acked one", len(rec.Records))
	}
}

// TestRecoveryZeroLengthFinalSegment: an empty final segment file (the
// crash landed between create and the header write) recovers cleanly and
// the segment is reused.
func TestRecoveryZeroLengthFinalSegment(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segmentName(dir, 1), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery with zero-length final segment: %v", err)
	}
	if len(rec.Records) != 3 {
		t.Fatalf("replayed %d records, want 3", len(rec.Records))
	}
	if err := l2.Append([]byte("r3")); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != 4 || !bytes.Equal(rec2.Records[3], []byte("r3")) {
		t.Fatalf("second replay = %q", rec2.Records)
	}
}

// TestRecoveryEmptyDirWithStaleCheckpointTemp: a directory holding only
// an interrupted checkpoint temp must open as a fresh log and sweep the
// temp away.
func TestRecoveryEmptyDirWithStaleCheckpointTemp(t *testing.T) {
	dir := t.TempDir()
	tmp := checkpointName(dir, 4) + ".tmp"
	if err := os.WriteFile(tmp, []byte("half a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rec.Checkpoint != nil || len(rec.Records) != 0 {
		t.Fatalf("stale temp produced recovered state: %+v", rec)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale checkpoint temp survived recovery")
	}
	if err := l.Append([]byte("r0")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryInterruptedCheckpointRename: a temp from a checkpoint whose
// rename never happened is ignored; the previous checkpoint and the
// records since it are what recovery returns.
func TestRecoveryInterruptedCheckpointRename(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Checkpoint([]byte("good-state")); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 13; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// The interrupted second checkpoint: fully written, never renamed.
	good, err := os.ReadFile(checkpointName(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpointName(dir, 9)+".tmp", good, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if !bytes.Equal(rec.Checkpoint, []byte("good-state")) {
		t.Fatalf("recovered checkpoint %q, want good-state", rec.Checkpoint)
	}
	if len(rec.Records) != 3 || !bytes.Equal(rec.Records[0], []byte("r10")) {
		t.Fatalf("replay = %q, want [r10 r11 r12]", rec.Records)
	}
}

// TestCorruptSentinelTyped: mid-log corruption and checkpoint damage
// surface as ErrCorruptRecord, distinguishable from disk-full and poison.
func TestCorruptSentinelTyped(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, _ := scanDir(fsx.OS, dir)
	if len(segs) < 2 {
		t.Fatal("need two segments")
	}
	name := segmentName(dir, segs[0])
	data, _ := os.ReadFile(name)
	data[len(data)-1] ^= 0xff
	os.WriteFile(name, data, 0o644)
	_, _, err = Open(dir, Options{})
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("mid-log corruption err = %v, want ErrCorruptRecord", err)
	}
	if errors.Is(err, ErrDiskFull) || errors.Is(err, ErrPoisoned) {
		t.Fatal("sentinels are not distinct")
	}
}

// fuzzProfile scales raw fuzz bytes into a fault profile. Probabilities
// top out at ~50% so runs still make progress.
func fuzzProfile(wp, sp, cp, rp uint8, budget uint16) fsx.Profile {
	return fsx.Profile{
		WriteErrProb:  float64(wp) / 512,
		SyncErrProb:   float64(sp) / 512,
		CloseErrProb:  float64(cp) / 512,
		RenameErrProb: float64(rp) / 512,
		DiskBudget:    int64(budget),
	}
}

// FuzzFaultFS drives the WAL through seeded fault schedules and checks
// the contract the rest of the system stands on: replay never panics,
// never yields a record the writer was not acked for, and — under
// SyncAlways — never loses one it was.
func FuzzFaultFS(f *testing.F) {
	f.Add(int64(20141208), uint8(30), uint8(30), uint8(10), uint8(10), uint16(0), uint8(24))
	f.Add(int64(7), uint8(0), uint8(120), uint8(0), uint8(0), uint16(0), uint8(16))
	f.Add(int64(3), uint8(60), uint8(0), uint8(0), uint8(40), uint16(900), uint8(32))
	f.Add(int64(1), uint8(255), uint8(255), uint8(255), uint8(255), uint16(300), uint8(40))
	f.Fuzz(func(t *testing.T, seed int64, wp, sp, cp, rp uint8, budget uint16, n uint8) {
		root := t.TempDir()
		ffs, err := fsx.NewFaultFS(fsx.OS, root, seed, fuzzProfile(wp, sp, cp, rp, budget))
		if err != nil {
			t.Skip("profile rejected")
		}
		dir := filepath.Join(root, "wal")
		l, _, err := Open(dir, Options{FS: ffs, SegmentBytes: 512, Sync: SyncAlways})
		if err != nil {
			return // a fault killed Open; no ack was ever issued
		}
		rec := func(i int) []byte { return []byte(fmt.Sprintf("rec-%04d", i)) }
		var acked []int
		var lastCkpt []byte
		count := int(n)%48 + 1
		for i := 0; i < count; i++ {
			if i%9 == 8 {
				payload := []byte(fmt.Sprintf("ckpt-%04d", i))
				if err := l.Checkpoint(payload); err == nil {
					lastCkpt = payload
					acked = acked[:0] // compacted away
				}
				continue
			}
			if err := l.Append(rec(i)); err == nil {
				acked = append(acked, i)
			}
		}
		closeErr := l.Close()

		// The disk is what it is: recover through a clean filesystem.
		_, got, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("recovery failed after faults: %v (close: %v)", err, closeErr)
		}
		if string(got.Checkpoint) != string(lastCkpt) {
			t.Fatalf("recovered checkpoint %q, want %q", got.Checkpoint, lastCkpt)
		}
		if len(got.Records) != len(acked) {
			t.Fatalf("replayed %d records, acked %d (close: %v)\nreplay: %q", len(got.Records), len(acked), closeErr, got.Records)
		}
		for j, i := range acked {
			if !bytes.Equal(got.Records[j], rec(i)) {
				t.Fatalf("replay[%d] = %q, want acked %q", j, got.Records[j], rec(i))
			}
		}

		// A recovery attempt through a corrupting filesystem must never
		// panic and never invent records; content checks do not apply.
		cffs, err := fsx.NewFaultFS(fsx.OS, root, seed+1, fsx.Profile{ReadCorruptProb: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if l2, noisy, err := Open(dir, Options{FS: cffs}); err == nil {
			valid := make(map[string]bool, count)
			for i := 0; i < count; i++ {
				valid[string(rec(i))] = true
			}
			for _, r := range noisy.Records {
				if !valid[string(r)] {
					t.Fatalf("corrupt-read recovery slipped a damaged record past the CRC: %q", r)
				}
			}
			l2.Close()
		}
	})
}
