package wal

import (
	"errors"
	"sync"
)

// ErrCrashed is returned by every log operation after an injected crash
// point has been reached. Callers treat it like process death: stop,
// reopen, recover.
var ErrCrashed = errors.New("wal: crash injected")

// CrashSwitch is the failpoint behind the crash-injection test wall: it
// grants the write path a byte budget and then "kills" it. The write that
// exhausts the budget is cut short mid-record — exactly the torn tail a
// real crash leaves — and every subsequent operation (writes, fsyncs,
// renames, compaction deletes) fails with ErrCrashed, so nothing after
// the kill point reaches the directory.
//
// Budgets are measured against Log.BytesWritten, which makes kill points
// enumerable: run a reference workload once, read its total, and replay
// it against switches seeded across [1, total].
type CrashSwitch struct {
	mu        sync.Mutex
	remaining int64
	tripped   bool
}

// NewCrashSwitch arms a switch that crashes the write path after
// afterBytes bytes.
func NewCrashSwitch(afterBytes int64) *CrashSwitch {
	return &CrashSwitch{remaining: afterBytes}
}

// Tripped reports whether the crash point has been reached.
func (c *CrashSwitch) Tripped() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}

// allow grants up to n bytes of the remaining budget. It returns how many
// bytes may be written; once the budget runs out it trips the switch and
// returns ErrCrashed alongside the final partial grant.
func (c *CrashSwitch) allow(n int64) (int64, error) {
	if c == nil {
		return n, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tripped {
		return 0, ErrCrashed
	}
	if n <= c.remaining {
		c.remaining -= n
		return n, nil
	}
	grant := c.remaining
	c.remaining = 0
	c.tripped = true
	return grant, ErrCrashed
}

// check gates non-write operations (fsync, create, rename, remove): they
// either happen entirely before the crash or not at all.
func (c *CrashSwitch) check() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tripped {
		return ErrCrashed
	}
	return nil
}
