package wal

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkWALAppend measures the durability tax on the ingest hot path: a
// warehouse sample is a few hundred bytes, and the fsync policy decides
// whether each one costs a disk flush (always), a bounded window (interval)
// or nothing (never).
func BenchmarkWALAppend(b *testing.B) {
	payload := make([]byte, 256)
	for i := range payload {
		payload[i] = byte(i)
	}
	for _, bench := range []struct {
		name string
		opts Options
	}{
		{"fsync=never", Options{Sync: SyncNever}},
		{"fsync=interval", Options{Sync: SyncInterval, SyncEvery: 10 * time.Millisecond}},
		{"fsync=always", Options{Sync: SyncAlways}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			l, _, err := Open(b.TempDir(), bench.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALCheckpoint tracks the cost of the compaction path at
// warehouse-snapshot-like payload sizes.
func BenchmarkWALCheckpoint(b *testing.B) {
	for _, size := range []int{4 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("payload=%dKiB", size>>10), func(b *testing.B) {
			l, _, err := Open(b.TempDir(), Options{Sync: SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append([]byte("rec")); err != nil {
					b.Fatal(err)
				}
				if err := l.Checkpoint(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
