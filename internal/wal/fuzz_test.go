package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay hardens recovery against arbitrary segment images: Open
// must never panic, must tolerate any tail damage in the final segment,
// and whatever it recovers must leave the log appendable — recovered
// records plus new appends must replay intact on the next open.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real segment image.
	dir := f.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	l.Append([]byte("alpha"))
	l.Append([]byte("beta-with-a-longer-payload"))
	l.Close()
	img, err := os.ReadFile(segmentName(dir, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:len(img)-3])          // torn tail
	f.Add([]byte{})                  // empty segment file
	f.Add([]byte("VMWWAL01"))        // header only
	f.Add([]byte("garbage garbage")) // bad magic

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000000.log"), data, 0o644); err != nil {
			t.Skip()
		}
		l, rec, err := Open(dir, Options{})
		if err != nil {
			// A single (final) segment may be arbitrarily damaged; Open
			// only fails on filesystem errors here.
			t.Fatalf("single-segment recovery must not fail: %v", err)
		}
		for _, r := range rec.Records {
			if len(r) == 0 {
				t.Fatal("recovered an empty record")
			}
		}
		if err := l.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		_, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if len(rec2.Records) != len(rec.Records)+1 {
			t.Fatalf("second recovery saw %d records, want %d", len(rec2.Records), len(rec.Records)+1)
		}
		if !bytes.Equal(rec2.Records[len(rec2.Records)-1], []byte("post-recovery")) {
			t.Fatal("post-recovery append lost")
		}
	})
}
