package controller

import (
	"context"
	"errors"
	"testing"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/core"
	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

// growingFetch simulates a warehouse that accumulates one more interval of
// history on every call.
type growingFetch struct {
	full  *trace.Set
	hours int
	step  int
}

func (g *growingFetch) fetch() (*trace.Set, error) {
	if g.hours > g.full.Servers[0].Series.Len() {
		return nil, errors.New("out of trace")
	}
	set, err := g.full.SliceAll(0, g.hours)
	g.hours += g.step
	return set, err
}

func testConfig(t *testing.T, servers, startHours int) (*Controller, *growingFetch) {
	t.Helper()
	p := workload.Banking()
	p.Servers = servers
	full, err := workload.Generate(p, 24*12, workload.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	g := &growingFetch{full: full, hours: startHours, step: 2}
	c, err := New(Config{
		Fetch:   g.fetch,
		Planner: core.Input{Host: catalog.HS23Elite},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for missing fetch")
	}
	if _, err := New(Config{Fetch: func() (*trace.Set, error) { return nil, nil }}); err == nil {
		t.Error("expected error for empty host model")
	}
}

func TestWarmup(t *testing.T) {
	c, _ := testConfig(t, 6, 24) // one day of history < one week warm-up
	if _, err := c.RunInterval(); !errors.Is(err, ErrInsufficientHistory) {
		t.Fatalf("err = %v, want ErrInsufficientHistory", err)
	}
	if c.Placement() != nil {
		t.Error("no placement should exist during warm-up")
	}
}

func TestRunIntervals(t *testing.T) {
	c, _ := testConfig(t, 40, 8*24)
	var ticks []Tick
	for i := 0; i < 16; i++ {
		tick, err := c.RunInterval()
		if err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
		ticks = append(ticks, tick)
	}
	if ticks[0].Step.Migrations != 0 {
		t.Error("first interval packs from scratch, no migrations")
	}
	if ticks[0].Step.ActiveHosts < 1 {
		t.Error("first interval must activate hosts")
	}
	// History grows between intervals.
	if ticks[5].HistoryHours <= ticks[0].HistoryHours {
		t.Error("history should accumulate across intervals")
	}
	// Something must have adapted over 12 intervals of a bursty estate.
	total := 0
	for _, tk := range ticks {
		total += tk.Step.Migrations
		if tk.Execution != nil {
			if tk.Execution.Total <= 0 {
				t.Error("execution plan with migrations must take time")
			}
			if !tk.Feasible && tk.Execution.Total <= 2*time.Hour {
				t.Error("feasibility flag inconsistent with plan duration")
			}
		}
	}
	if total == 0 {
		t.Error("a bursty estate should trigger at least one migration across 16 intervals")
	}
	if got := len(c.Ticks()); got != 16 {
		t.Errorf("recorded %d ticks, want 16", got)
	}
	if c.Placement() == nil {
		t.Error("controller should expose its placement")
	}
}

func TestRunLoop(t *testing.T) {
	c, _ := testConfig(t, 6, 8*24)
	tick := make(chan time.Time)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var loopErrs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, tick, func(err error) { loopErrs = append(loopErrs, err) })
	}()
	for i := 0; i < 3; i++ {
		tick <- time.Now()
	}
	cancel()
	<-done
	if len(loopErrs) != 0 {
		t.Fatalf("loop errors: %v", loopErrs)
	}
	if got := len(c.Ticks()); got != 3 {
		t.Errorf("loop completed %d intervals, want 3", got)
	}
}

func TestRunLoopSurvivesFetchErrors(t *testing.T) {
	calls := 0
	c, err := New(Config{
		Fetch: func() (*trace.Set, error) {
			calls++
			return nil, errors.New("monitoring outage")
		},
		Planner: core.Input{Host: catalog.HS23Elite},
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var loopErrs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, tick, func(err error) { loopErrs = append(loopErrs, err) })
	}()
	tick <- time.Now()
	tick <- time.Now()
	cancel()
	<-done
	if calls != 2 {
		t.Errorf("fetch called %d times, want 2 (loop must survive errors)", calls)
	}
	if len(loopErrs) != 2 {
		t.Errorf("got %d delivered errors, want 2", len(loopErrs))
	}
}

// TestAdoptPlacement: an externally realized placement (drain, hardware
// swap) becomes the controller's planning basis, and interval numbering
// continues from the given base.
func TestAdoptPlacement(t *testing.T) {
	c, _ := testConfig(t, 12, 8*24)
	if _, err := c.RunInterval(); err != nil {
		t.Fatal(err)
	}
	p := c.Placement()
	if p == nil {
		t.Fatal("no placement after first interval")
	}

	// Simulate an out-of-band drain: evacuate one VM to a fresh host.
	vms := p.VMsOn(p.Hosts()[0].ID)
	if len(vms) == 0 {
		t.Fatal("first host empty")
	}
	vm := vms[0]
	it, _ := p.Item(vm)
	if _, err := p.Remove(vm); err != nil {
		t.Fatal(err)
	}
	dst := p.OpenHost().ID
	if err := p.Assign(it, dst); err != nil {
		t.Fatal(err)
	}
	if err := c.AdoptPlacement(p, 7); err != nil {
		t.Fatal(err)
	}

	tick, err := c.RunInterval()
	if err != nil {
		t.Fatal(err)
	}
	if tick.Interval != 7 {
		t.Errorf("interval after adopt = %d, want 7", tick.Interval)
	}
	if got := len(c.Ticks()); got != 1 {
		t.Errorf("tick history = %d entries after adopt, want 1", got)
	}

	// Error paths: nil placement, negative base, wrong VM population.
	if err := c.AdoptPlacement(nil, 0); err == nil {
		t.Error("nil placement adopted")
	}
	if err := c.AdoptPlacement(p, -1); err == nil {
		t.Error("negative interval base adopted")
	}
	short := p.Clone()
	id := short.Hosts()[0].ID
	for _, vm := range append([]trace.ServerID(nil), short.VMsOn(id)...) {
		if _, err := short.Remove(vm); err != nil {
			t.Fatal(err)
		}
	}
	if short.NumVMs() != p.NumVMs() {
		if err := c.AdoptPlacement(short, 0); err == nil {
			t.Error("placement with missing VMs adopted")
		}
	}
}
