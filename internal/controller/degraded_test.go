package controller

import (
	"context"
	"sync"
	"testing"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/core"
	"vmwild/internal/executor"
	"vmwild/internal/fault"
	"vmwild/internal/placement"
	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

// countingModel is a scripted executor.FaultModel: it fails a chosen subset
// of attempt draws, counted globally, so tests can force exact partial
// failures without seed hunting. The controller calls it from one goroutine;
// the mutex keeps it safe for the -race loop test too.
type countingModel struct {
	mu    sync.Mutex
	calls int
	// fail decides the outcome of the n-th draw (1-based); attempt is the
	// VM's own 1-based attempt counter within the execution.
	fail func(n, attempt int) bool
}

func (m *countingModel) MigrationOutcome(vm trace.ServerID, attempt int) fault.Outcome {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	if m.fail != nil && m.fail(m.calls, attempt) {
		return fault.Failed
	}
	return fault.OK
}

func (m *countingModel) StallFactor() float64      { return 1 }
func (m *countingModel) HostDown(string, int) bool { return false }

// faultController builds a controller over a synthetic Banking fleet with
// the given fault model and retry budget.
func faultController(t *testing.T, servers int, model executor.FaultModel, budget int) *Controller {
	t.Helper()
	p := workload.Banking()
	p.Servers = servers
	full, err := workload.Generate(p, 24*12, workload.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	g := &growingFetch{full: full, hours: 8 * 24, step: 2}
	execCfg := executor.DefaultConfig()
	execCfg.Fault = model
	execCfg.RetryBudget = budget
	c, err := New(Config{
		Fetch:    g.fetch,
		Planner:  core.Input{Host: catalog.HS23Elite},
		Executor: execCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// hostChanges counts VMs whose host differs between two placements.
func hostChanges(t *testing.T, prev, cur *placement.Placement) int {
	t.Helper()
	changed := 0
	for _, h := range cur.Hosts() {
		for _, vm := range cur.VMsOn(h.ID) {
			if src, ok := prev.HostOf(vm); ok && src != h.ID {
				changed++
			}
		}
	}
	return changed
}

func TestDegradedIntervals(t *testing.T) {
	tests := []struct {
		name   string
		fail   func(n, attempt int) bool
		budget int
		check  func(t *testing.T, ticks []Tick, degraded int)
	}{
		{
			name:   "no faults",
			fail:   nil,
			budget: 3,
			check: func(t *testing.T, ticks []Tick, degraded int) {
				if degraded != 0 {
					t.Errorf("%d degraded intervals without faults", degraded)
				}
				for _, tk := range ticks {
					if tk.Moves.Attempted != tk.Moves.Succeeded {
						t.Errorf("interval %d: attempted %d != succeeded %d",
							tk.Interval, tk.Moves.Attempted, tk.Moves.Succeeded)
					}
				}
			},
		},
		{
			name:   "every attempt fails",
			fail:   func(int, int) bool { return true },
			budget: 2,
			check: func(t *testing.T, ticks []Tick, degraded int) {
				if degraded == 0 {
					t.Fatal("no interval degraded although every migration fails")
				}
				for _, tk := range ticks {
					if tk.Moves.Succeeded != 0 {
						t.Errorf("interval %d: %d moves succeeded under a fail-all model",
							tk.Interval, tk.Moves.Succeeded)
					}
					if tk.Step.Migrations > 0 && !tk.Degraded {
						t.Errorf("interval %d ordered migrations but is not degraded", tk.Interval)
					}
				}
			},
		},
		{
			name:   "first attempt of each move fails, retry succeeds",
			fail:   func(_, attempt int) bool { return attempt == 1 },
			budget: 3,
			check: func(t *testing.T, ticks []Tick, degraded int) {
				if degraded != 0 {
					t.Errorf("%d degraded intervals although the retry budget covers every failure", degraded)
				}
				failed := 0
				for _, tk := range ticks {
					failed += tk.Moves.Failed
					if tk.Moves.Aborted != 0 {
						t.Errorf("interval %d aborted %d moves", tk.Interval, tk.Moves.Aborted)
					}
				}
				if failed == 0 {
					t.Error("model never failed an attempt; scenario is inert")
				}
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var model executor.FaultModel
			if tt.fail != nil {
				model = &countingModel{fail: tt.fail}
			}
			c := faultController(t, 40, model, tt.budget)
			var ticks []Tick
			degraded := 0
			for i := 0; i < 16; i++ {
				prev := c.Placement()
				tick, err := c.RunInterval()
				if err != nil {
					t.Fatalf("interval %d: %v", i, err)
				}
				ticks = append(ticks, tick)
				if tick.Degraded {
					degraded++
				}
				// The committed placement must reflect exactly the moves
				// that succeeded: aborted VMs stay put.
				if prev != nil {
					if got := hostChanges(t, prev, c.Placement()); got != tick.Moves.Succeeded {
						t.Errorf("interval %d: %d VMs changed host, %d moves succeeded",
							i, got, tick.Moves.Succeeded)
					}
				}
			}
			tt.check(t, ticks, degraded)
		})
	}
}

// TestDegradedReplanConverges forces a fully failed wave and then lifts the
// faults: the next interval must re-plan from the realized (unchanged)
// placement and the backlog must clear within the retry budget.
func TestDegradedReplanConverges(t *testing.T) {
	model := &countingModel{}
	failing := true
	model.fail = func(int, int) bool { return failing }
	c := faultController(t, 40, model, 1)

	var degradedAt = -1
	for i := 0; i < 16; i++ {
		prev := c.Placement()
		tick, err := c.RunInterval()
		if err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
		if degradedAt < 0 && tick.Degraded {
			degradedAt = i
			// Nothing may have moved in the fully failed wave.
			if got := hostChanges(t, prev, c.Placement()); got != 0 {
				t.Fatalf("fully failed wave moved %d VMs", got)
			}
			// Lift the faults; from here every migration commits.
			failing = false
		}
	}
	if degradedAt < 0 {
		t.Fatal("the fleet never ordered a migration; scenario is inert")
	}

	// With faults lifted, later intervals re-plan from the realized
	// placement and execute cleanly.
	clean := 0
	for i := 0; i < 4; i++ {
		tick, err := c.RunInterval()
		if err != nil {
			t.Fatalf("post-recovery interval %d: %v", i, err)
		}
		if tick.Degraded || tick.Moves.Aborted != 0 {
			t.Errorf("post-recovery interval %d still degraded: %+v", i, tick.Moves)
		}
		if tick.Moves.Attempted == tick.Moves.Succeeded {
			clean++
		}
	}
	if clean == 0 {
		t.Error("no clean interval after recovery")
	}
}

// TestDegradedLoopUnderRace drives the ticker loop with a failing model
// while concurrently reading controller state — the -race coverage of the
// degraded path.
func TestDegradedLoopUnderRace(t *testing.T) {
	model := &countingModel{fail: func(n, _ int) bool { return n%3 == 0 }}
	c := faultController(t, 20, model, 2)
	tick := make(chan time.Time)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, tick, func(error) {})
	}()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			c.Placement()
			c.Ticks()
		}
	}()
	for i := 0; i < 8; i++ {
		tick <- time.Now()
	}
	wg.Wait()
	cancel()
	<-done
	if len(c.Ticks()) == 0 {
		t.Error("loop completed no intervals")
	}
}
