package controller

// Storage-fault behavior of the control loop: a poisoned journal trips the
// circuit breaker immediately (no migration may run on intent that cannot
// be made durable), while a full disk fails the interval cleanly and stays
// retryable.

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/core"
	"vmwild/internal/fsx"
	"vmwild/internal/trace"
	"vmwild/internal/wal"
)

// TestRunTripsImmediatelyOnPoisonedStorage: one wal.ErrPoisoned interval
// opens the circuit, even with a generous consecutive-failure budget.
func TestRunTripsImmediatelyOnPoisonedStorage(t *testing.T) {
	calls := 0
	c, err := New(Config{
		Fetch: func() (*trace.Set, error) {
			calls++
			return nil, wal.ErrPoisoned
		},
		Planner:                core.Input{Host: catalog.HS23Elite},
		MaxConsecutiveFailures: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time)
	var loopErrs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(context.Background(), tick, func(err error) { loopErrs = append(loopErrs, err) })
	}()
	tick <- time.Now()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("poisoned storage did not trip the circuit")
	}
	if calls != 1 {
		t.Errorf("loop retried %d times against poisoned storage, want 1", calls)
	}
	if len(loopErrs) != 2 || !errors.Is(loopErrs[1], ErrCircuitOpen) {
		t.Fatalf("errors = %v, want interval error + ErrCircuitOpen", loopErrs)
	}
}

// TestRunSurvivesDiskFull: wal.ErrDiskFull counts against the normal
// failure budget instead of tripping immediately — retryable once space
// frees.
func TestRunSurvivesDiskFull(t *testing.T) {
	calls := 0
	c, err := New(Config{
		Fetch: func() (*trace.Set, error) {
			calls++
			return nil, wal.ErrDiskFull
		},
		Planner:                core.Input{Host: catalog.HS23Elite},
		MaxConsecutiveFailures: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time)
	var loopErrs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(context.Background(), tick, func(err error) { loopErrs = append(loopErrs, err) })
	}()
	for i := 0; i < 3; i++ {
		tick <- time.Now()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("breaker did not trip at the budget")
	}
	if calls != 3 {
		t.Errorf("loop ran %d intervals, want the full budget of 3", calls)
	}
}

// TestJournalIntentENOSPCPreventsExecution: when the journal cannot make
// the interval's intent durable, RunInterval fails BEFORE any migration is
// scheduled, and the previous committed placement survives recovery
// untouched.
func TestJournalIntentENOSPCPreventsExecution(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "journal")
	ffs, err := fsx.NewFaultFS(fsx.OS, root, 3, fsx.Profile{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, wal.Options{FS: ffs, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c, g := testConfigJournal(t, 6, 8*24, j)
	if _, err := c.RunInterval(); err != nil {
		t.Fatalf("first interval: %v", err)
	}
	committed := c.Placement()

	// The disk fills before the next interval's intent can be journaled.
	ffs.SetDiskBudget(0)
	_, err = c.RunInterval()
	if err == nil {
		// Migration-free intervals only journal a commit; keep advancing
		// history until a planned migration forces an intent record.
		for i := 0; i < 20 && err == nil; i++ {
			_, err = c.RunInterval()
		}
	}
	if !errors.Is(err, wal.ErrDiskFull) {
		t.Fatalf("interval on full disk err = %v, want ErrDiskFull", err)
	}
	_ = g

	// Space frees; the loop resumes and the journal stays coherent.
	ffs.SetDiskBudget(-1)
	if _, err := c.RunInterval(); err != nil {
		t.Fatalf("interval after heal: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}

	// Recovery reflects only durably committed intervals.
	j2, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recover journal: %v", err)
	}
	defer j2.Close()
	rec := j2.Recovery()
	if rec.Placement == nil {
		t.Fatal("no placement recovered")
	}
	_ = committed
}
