// Package controller is the runtime side of dynamic consolidation — the
// counterpart of the paper's deployed systems [25, 28]: a control loop that
// pulls fresh monitoring data each consolidation interval, predicts the
// next interval's per-VM peaks, adapts the placement with the least-cost
// actions, and schedules the resulting live migrations as
// capacity-feasible waves.
//
// The loop is clock-agnostic: RunInterval advances one consolidation
// interval deterministically (tests and simulations drive it directly),
// and Run wraps it in a ticker-driven goroutine with clean shutdown for
// wall-clock deployments.
package controller

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vmwild/internal/core"
	"vmwild/internal/executor"
	"vmwild/internal/placement"
	"vmwild/internal/trace"
	"vmwild/internal/wal"
)

// FetchFunc returns the monitored demand history available so far: one
// hourly series per server, oldest first. Implementations typically wrap
// monitor.Warehouse.CollectSet or monitor.QueryClient.FetchSet.
type FetchFunc func() (*trace.Set, error)

// Config assembles a controller.
type Config struct {
	// Fetch supplies monitoring data each interval.
	Fetch FetchFunc
	// Planner carries host model, bound, constraints and predictors
	// (the trace-set fields are ignored).
	Planner core.Input
	// Executor parameterizes migration-wave scheduling.
	Executor executor.Config
	// MinHistoryHours is the warm-up before the first adaptation
	// (default one week — the periodic predictor's lookback).
	MinHistoryHours int
	// Journal, when set, makes the loop crash-safe: every interval writes
	// intent → per-move outcomes → commit, and New resumes from the
	// journal's recovered placement and interval count.
	Journal *Journal
	// MaxConsecutiveFailures trips Run's circuit breaker: after this many
	// consecutive interval failures (warm-up excluded) the loop stops and
	// reports ErrCircuitOpen instead of hammering a broken dependency.
	// Zero keeps the legacy run-forever behavior.
	MaxConsecutiveFailures int
}

// MoveStats summarizes the fate of one interval's migrations.
type MoveStats struct {
	// Attempted counts migration attempts, retries and bounce hops
	// included.
	Attempted int
	// Succeeded counts logical moves whose VM reached its target.
	Succeeded int
	// Aborted counts logical moves abandoned after the retry budget ran
	// out; their VMs stay where they were and the next interval re-plans
	// around them.
	Aborted int
	// Failed counts individual failed attempts (a move that failed once
	// and then succeeded contributes to both Failed and Succeeded).
	Failed int
	// Stalled counts attempts that committed at degraded bandwidth.
	Stalled int
}

// Tick reports one completed consolidation interval.
type Tick struct {
	// Interval is the 0-based interval index.
	Interval int
	// HistoryHours is how much monitored history the decision used.
	HistoryHours int
	// Step is the adaptation outcome.
	Step core.StepResult
	// Execution is the migration-wave schedule as actually executed,
	// failed and retried attempts included (nil when nothing moved).
	Execution *executor.Plan
	// Moves is the attempted/succeeded/aborted accounting of the
	// interval's migrations.
	Moves MoveStats
	// Degraded reports that at least one move was aborted: the interval
	// committed only the moves that completed, and the next interval
	// re-plans from the realized placement.
	Degraded bool
	// Feasible reports whether the waves fit inside the interval.
	Feasible bool
}

// Controller runs the consolidation loop.
type Controller struct {
	cfg Config

	mu      sync.Mutex
	adapter *core.Adapter
	prev    *placement.Placement
	ticks   []Tick
	// base is the number of intervals committed before this process
	// started (journal recovery); interval indices continue from it.
	base int
}

// New validates the configuration and builds a controller.
func New(cfg Config) (*Controller, error) {
	if cfg.Fetch == nil {
		return nil, errors.New("controller: no fetch function")
	}
	if cfg.MinHistoryHours <= 0 {
		cfg.MinHistoryHours = 7 * 24
	}
	if cfg.Executor.MaxPerHost == 0 && cfg.Executor.MaxConcurrent == 0 {
		cfg.Executor = executor.DefaultConfig()
	}
	cfg.Executor.SpareHost = true
	adapter, err := core.NewAdapter(cfg.Planner)
	if err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg, adapter: adapter}
	if cfg.Journal != nil {
		if rec := cfg.Journal.Recovery(); rec.Placement != nil {
			// Resume from the realized placement the journal reconstructed:
			// the next Step re-plans from where the VMs actually are.
			if err := adapter.Restore(rec.Placement); err != nil {
				return nil, fmt.Errorf("controller: restore journaled placement: %w", err)
			}
			c.prev = rec.Placement.Clone()
			c.base = rec.Intervals
		}
	}
	return c, nil
}

// ErrInsufficientHistory is returned while the warm-up window has not
// filled yet.
var ErrInsufficientHistory = errors.New("controller: not enough monitored history yet")

// RunInterval executes one consolidation interval: fetch, predict, adapt,
// schedule. It is safe for use from one goroutine at a time.
func (c *Controller) RunInterval() (Tick, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	set, err := c.cfg.Fetch()
	if err != nil {
		return Tick{}, fmt.Errorf("controller: fetch: %w", err)
	}
	if set == nil || len(set.Servers) == 0 {
		return Tick{}, errors.New("controller: fetch returned no servers")
	}
	hours := set.Servers[0].Series.Len()
	if hours < c.cfg.MinHistoryHours {
		return Tick{}, fmt.Errorf("%w: %d of %d hours", ErrInsufficientHistory, hours, c.cfg.MinHistoryHours)
	}

	interval := c.cfg.Planner.IntervalHours
	if interval == 0 {
		interval = core.DefaultIntervalHours
	}
	n := len(set.Servers)
	ids := make([]trace.ServerID, n)
	specs := make([]trace.Spec, n)
	cpuHist := make([][]float64, n)
	memHist := make([][]float64, n)
	for i, st := range set.Servers {
		ids[i] = st.ID
		specs[i] = st.Spec
		cpuHist[i] = st.Series.Values(trace.CPU)
		memHist[i] = st.Series.Values(trace.Mem)
	}
	items, err := core.PredictItems(c.cfg.Planner, ids, specs, cpuHist, memHist, interval)
	if err != nil {
		return Tick{}, err
	}

	step, err := c.adapter.Step(items)
	if err != nil {
		return Tick{}, err
	}
	tick := Tick{
		Interval:     c.base + len(c.ticks),
		HistoryHours: hours,
		Step:         step,
		Feasible:     true,
	}

	cur, err := c.adapter.Snapshot()
	if err != nil {
		return Tick{}, err
	}
	if c.prev != nil && step.Migrations > 0 {
		if c.cfg.Journal != nil {
			// Journal the plan before the first migration starts: a crash
			// from here on recovers to the realized placement.
			moves, err := executor.Diff(c.prev, cur)
			if err != nil {
				return Tick{}, fmt.Errorf("controller: journal intent: %w", err)
			}
			if err := c.cfg.Journal.intent(tick.Interval, cur, moves); err != nil {
				return Tick{}, fmt.Errorf("controller: journal intent: %w", err)
			}
		}
		exec, _, err := executor.ExecuteTransition(c.prev, cur, c.cfg.Executor)
		if err != nil {
			return Tick{}, fmt.Errorf("controller: schedule execution: %w", err)
		}
		if c.cfg.Journal != nil {
			for _, mv := range exec.Completed {
				if err := c.cfg.Journal.outcome(mv, true); err != nil {
					return Tick{}, fmt.Errorf("controller: journal outcome: %w", err)
				}
			}
			for _, mv := range exec.Aborted {
				if err := c.cfg.Journal.outcome(mv, false); err != nil {
					return Tick{}, fmt.Errorf("controller: journal outcome: %w", err)
				}
			}
		}
		tick.Execution = exec.Plan
		tick.Feasible = exec.Plan.Total <= time.Duration(interval)*time.Hour
		tick.Moves = MoveStats{
			Attempted: exec.Attempts,
			Succeeded: len(exec.Completed),
			Aborted:   len(exec.Aborted),
			Failed:    exec.Failures,
			Stalled:   exec.Stalls,
		}
		if exec.Degraded() {
			// Graceful degradation: commit only what completed. The
			// realized placement — completed moves applied, aborted ones
			// left in place — becomes the ground truth the next interval
			// re-plans from; the carried-forward moves re-emerge there
			// if they are still worth making.
			tick.Degraded = true
			cur = exec.Final
			if err := c.adapter.Restore(cur); err != nil {
				return Tick{}, fmt.Errorf("controller: restore degraded placement: %w", err)
			}
		}
	}
	if c.cfg.Journal != nil {
		// Commit the realized placement — also on migration-free intervals,
		// so recovery always resumes at the right interval index — and let
		// the checkpoint compact the journal behind it.
		if err := c.cfg.Journal.commit(tick.Interval+1, cur); err != nil {
			return Tick{}, fmt.Errorf("controller: journal commit: %w", err)
		}
	}
	c.prev = cur
	c.ticks = append(c.ticks, tick)
	return tick, nil
}

// AdoptPlacement seeds the controller with an externally realized placement
// — a maintenance drain, a hardware refresh, or a scenario-harness world
// mutation that moved VMs outside the consolidation loop. The next
// RunInterval re-plans from the adopted placement, and interval numbering
// continues from intervals. Adopting also resets the in-memory tick
// history; a journaled controller keeps journaling from the adopted state.
func (c *Controller) AdoptPlacement(p *placement.Placement, intervals int) error {
	if p == nil {
		return errors.New("controller: adopt nil placement")
	}
	if intervals < 0 {
		return fmt.Errorf("controller: adopt negative interval base %d", intervals)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.adapter.Restore(p); err != nil {
		return fmt.Errorf("controller: adopt placement: %w", err)
	}
	c.prev = p.Clone()
	c.base = intervals
	c.ticks = nil
	return nil
}

// Placement returns a copy of the current placement, or nil before the
// first interval.
func (c *Controller) Placement() *placement.Placement {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.prev == nil {
		return nil
	}
	return c.prev.Clone()
}

// Ticks returns a copy of the completed intervals.
func (c *Controller) Ticks() []Tick {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Tick(nil), c.ticks...)
}

// ErrCircuitOpen is delivered to Run's onError when
// Config.MaxConsecutiveFailures consecutive intervals failed and the loop
// gives up.
var ErrCircuitOpen = errors.New("controller: circuit open: too many consecutive interval failures")

// Run drives RunInterval on every ticker firing until the context ends.
// Interval errors other than warm-up are delivered to onError (which may be
// nil); the loop keeps running — a production controller must survive
// transient monitoring outages. With Config.MaxConsecutiveFailures set,
// that many back-to-back failures trip a circuit breaker: Run reports
// ErrCircuitOpen and returns instead of retrying forever.
//
// Terminal storage failures skip the failure budget entirely: once the
// journal reports wal.ErrPoisoned, no future interval can make its intent
// durable, and a controller that keeps planning migrations it cannot
// journal would desynchronize the recovered placement from reality. A
// disk-full journal (wal.ErrDiskFull), by contrast, is retryable — the
// interval failed cleanly before any migration started, and the loop keeps
// trying within the normal failure budget.
func (c *Controller) Run(ctx context.Context, tick <-chan time.Time, onError func(error)) {
	failures := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick:
			_, err := c.RunInterval()
			if err == nil {
				failures = 0
				continue
			}
			if errors.Is(err, ErrInsufficientHistory) {
				// Warm-up is expected, not a failure.
				continue
			}
			if onError != nil {
				onError(err)
			}
			if errors.Is(err, wal.ErrPoisoned) {
				if onError != nil {
					onError(fmt.Errorf("%w (journal storage poisoned: %v)", ErrCircuitOpen, err))
				}
				return
			}
			failures++
			if max := c.cfg.MaxConsecutiveFailures; max > 0 && failures >= max {
				if onError != nil {
					onError(fmt.Errorf("%w (%d in a row, last: %v)", ErrCircuitOpen, failures, err))
				}
				return
			}
		}
	}
}
