package controller

import (
	"bytes"
	"testing"

	"vmwild/internal/catalog"
	"vmwild/internal/core"
	"vmwild/internal/executor"
	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
	"vmwild/internal/wal"
	"vmwild/internal/workload"
)

func journalPlacement(t *testing.T) *placement.Placement {
	t.Helper()
	p, err := placement.NewPlacement(trace.Spec{CPURPE2: 1000, MemMB: 8192}, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p.OpenHost()
	}
	assign := func(vm, host string, cpu, mem float64) {
		t.Helper()
		it := placement.Item{ID: trace.ServerID(vm), Demand: sizing.Demand{CPU: cpu, Mem: mem}}
		if err := p.Assign(it, host); err != nil {
			t.Fatal(err)
		}
	}
	assign("vm-a", "h0000", 100, 512)
	assign("vm-b", "h0000", 100, 512)
	assign("vm-c", "h0001", 200, 1024)
	return p
}

func encodeBytes(t *testing.T, p *placement.Placement) []byte {
	t.Helper()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestJournalFreshDir(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rec := j.Recovery()
	if rec.Placement != nil || rec.Intervals != 0 || rec.Interrupted {
		t.Fatalf("fresh journal recovered state: %+v", rec)
	}
}

// TestJournalRealizedPlacement pins the core recovery contract: committed
// placement + intent resizes + exactly the durably-completed moves, with
// in-flight moves treated as aborted.
func TestJournalRealizedPlacement(t *testing.T) {
	dir := t.TempDir()
	p := journalPlacement(t)

	j, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.commit(3, p); err != nil {
		t.Fatal(err)
	}

	// The next interval's plan: every VM resized, vm-a and vm-c relocated.
	target := p.Clone()
	resize := func(q *placement.Placement) {
		t.Helper()
		for vm, d := range map[string]sizing.Demand{
			"vm-a": {CPU: 150, Mem: 600},
			"vm-b": {CPU: 90, Mem: 500},
			"vm-c": {CPU: 210, Mem: 1100},
		} {
			if err := q.UpdateDemand(trace.ServerID(vm), d); err != nil {
				t.Fatal(err)
			}
		}
	}
	resize(target)
	relocate := func(q *placement.Placement, vm, to string) {
		t.Helper()
		it, _ := q.Item(trace.ServerID(vm))
		if _, err := q.Remove(trace.ServerID(vm)); err != nil {
			t.Fatal(err)
		}
		if err := q.Assign(it, to); err != nil {
			t.Fatal(err)
		}
	}
	relocate(target, "vm-a", "h0001")
	relocate(target, "vm-c", "h0002")
	moves, err := executor.Diff(p, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 2 || moves[0].VM != "vm-a" || moves[1].VM != "vm-c" {
		t.Fatalf("unexpected plan: %+v", moves)
	}
	if err := j.intent(3, target, moves); err != nil {
		t.Fatal(err)
	}
	if err := j.outcome(moves[0], true); err != nil { // vm-a landed
		t.Fatal(err)
	}
	if err := j.outcome(moves[1], false); err != nil { // vm-c aborted
		t.Fatal(err)
	}
	j.Close() // crash before commit: Close never checkpoints

	j2, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer j2.Close()
	rec := j2.Recovery()
	if rec.Intervals != 3 || !rec.Interrupted {
		t.Fatalf("recovered intervals=%d interrupted=%v, want 3/true", rec.Intervals, rec.Interrupted)
	}
	if rec.CompletedMoves != 1 || rec.AbortedMoves != 1 {
		t.Fatalf("moves: %d completed, %d aborted, want 1/1", rec.CompletedMoves, rec.AbortedMoves)
	}

	// The realized placement, built independently of the journal: resizes
	// applied, vm-a moved, vm-c left where it was.
	want := p.Clone()
	resize(want)
	relocate(want, "vm-a", "h0001")
	if !bytes.Equal(encodeBytes(t, rec.Placement), encodeBytes(t, want)) {
		t.Fatal("recovered placement is not the realized placement")
	}
	if h, _ := rec.Placement.HostOf("vm-c"); h != "h0001" {
		t.Errorf("aborted move applied: vm-c on %s, want h0001", h)
	}
	if it, _ := rec.Placement.Item("vm-c"); it.Demand.CPU != 210 {
		t.Errorf("intent resize lost on aborted VM: %+v", it.Demand)
	}
}

// TestJournalDoubleCrash replays two intent groups — a recovery that itself
// crashed before committing leaves both in the log.
func TestJournalDoubleCrash(t *testing.T) {
	dir := t.TempDir()
	p := journalPlacement(t)
	j, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.commit(1, p); err != nil {
		t.Fatal(err)
	}
	mkMove := func(vm, from, to string, cpu, mem float64) executor.Move {
		return executor.Move{VM: trace.ServerID(vm), From: from, To: to, Demand: sizing.Demand{CPU: cpu, Mem: mem}}
	}
	// First interrupted interval: vm-a moved.
	t1 := p.Clone()
	m1 := mkMove("vm-a", "h0000", "h0002", 100, 512)
	if err := j.intent(1, t1, []executor.Move{m1}); err != nil {
		t.Fatal(err)
	}
	if err := j.outcome(m1, true); err != nil {
		t.Fatal(err)
	}
	// Second interrupted interval: vm-b planned, never finished.
	m2 := mkMove("vm-b", "h0000", "h0001", 100, 512)
	if err := j.intent(2, t1, []executor.Move{m2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer j2.Close()
	rec := j2.Recovery()
	if rec.Intervals != 1 || !rec.Interrupted || rec.CompletedMoves != 1 {
		t.Fatalf("recovered %+v", rec)
	}
	if h, _ := rec.Placement.HostOf("vm-a"); h != "h0002" {
		t.Errorf("vm-a on %s, want h0002", h)
	}
	if h, _ := rec.Placement.HostOf("vm-b"); h != "h0000" {
		t.Errorf("vm-b on %s, want h0000 (in-flight move must abort)", h)
	}
}

func TestJournalRejectsOrphanMoveRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mv := executor.Move{VM: "vm-x", From: "a", To: "b"}
	if err := j.outcome(mv, true); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(dir, wal.Options{}); err == nil {
		t.Fatal("a move record without an intent must fail recovery")
	}
}

// TestControllerResumesFromJournal runs a journaled controller, kills it
// between intervals, and resumes: interval numbering continues and the
// placement carries over byte-identically.
func TestControllerResumesFromJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, g := testConfigJournal(t, 24, 8*24, j)
	const first = 6
	for i := 0; i < first; i++ {
		tick, err := c.RunInterval()
		if err != nil {
			t.Fatalf("interval %d: %v", i, err)
		}
		if tick.Interval != i {
			t.Fatalf("interval index %d, want %d", tick.Interval, i)
		}
	}
	before := encodeBytes(t, c.Placement())
	j.Close()

	j2, err := OpenJournal(dir, wal.Options{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer j2.Close()
	rec := j2.Recovery()
	if rec.Intervals != first || rec.Interrupted {
		t.Fatalf("recovered intervals=%d interrupted=%v, want %d/false", rec.Intervals, rec.Interrupted, first)
	}
	c2, err := New(Config{
		Fetch:   g.fetch, // same feed, picking up where the old process stopped
		Planner: core.Input{Host: catalog.HS23Elite},
		Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encodeBytes(t, c2.Placement()), before) {
		t.Fatal("resumed controller placement diverges from the pre-crash one")
	}
	tick, err := c2.RunInterval()
	if err != nil {
		t.Fatal(err)
	}
	if tick.Interval != first {
		t.Fatalf("resumed interval index %d, want %d", tick.Interval, first)
	}
}

func testConfigJournal(t *testing.T, servers, startHours int, j *Journal) (*Controller, *growingFetch) {
	t.Helper()
	p := workload.Banking()
	p.Servers = servers
	full, err := workload.Generate(p, 24*12, workload.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	g := &growingFetch{full: full, hours: startHours, step: 2}
	c, err := New(Config{
		Fetch:   g.fetch,
		Planner: core.Input{Host: catalog.HS23Elite},
		Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}
