package controller

import (
	"context"
	"errors"
	"testing"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/core"
	"vmwild/internal/trace"
)

// TestCircuitBreakerTrips: after MaxConsecutiveFailures back-to-back
// interval failures the loop reports ErrCircuitOpen and stops on its own,
// without a context cancellation.
func TestCircuitBreakerTrips(t *testing.T) {
	calls := 0
	c, err := New(Config{
		Fetch: func() (*trace.Set, error) {
			calls++
			return nil, errors.New("monitoring outage")
		},
		Planner:                core.Input{Host: catalog.HS23Elite},
		MaxConsecutiveFailures: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time)
	var loopErrs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(context.Background(), tick, func(err error) { loopErrs = append(loopErrs, err) })
	}()
	for i := 0; i < 3; i++ {
		tick <- time.Now()
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("circuit breaker did not stop the loop")
	}
	if calls != 3 {
		t.Errorf("fetch called %d times, want 3", calls)
	}
	// 3 interval errors plus the terminal circuit-open report.
	if len(loopErrs) != 4 {
		t.Fatalf("delivered %d errors, want 4: %v", len(loopErrs), loopErrs)
	}
	if !errors.Is(loopErrs[3], ErrCircuitOpen) {
		t.Errorf("last error = %v, want ErrCircuitOpen", loopErrs[3])
	}
}

// TestCircuitBreakerResetsOnSuccess: a success between failures resets the
// streak, so intermittent outages below the threshold never trip it.
func TestCircuitBreakerResetsOnSuccess(t *testing.T) {
	good, g := testConfig(t, 6, 8*24)
	_ = good
	calls := 0
	c, err := New(Config{
		Fetch: func() (*trace.Set, error) {
			calls++
			if calls == 3 { // fail, fail, succeed, fail, fail
				return g.fetch()
			}
			return nil, errors.New("flaky monitoring")
		},
		Planner:                core.Input{Host: catalog.HS23Elite},
		MaxConsecutiveFailures: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time)
	ctx, cancel := context.WithCancel(context.Background())
	var loopErrs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, tick, func(err error) { loopErrs = append(loopErrs, err) })
	}()
	for i := 0; i < 5; i++ {
		tick <- time.Now() // would trip a non-resetting breaker at tick 3
	}
	cancel()
	<-done
	if calls != 5 {
		t.Errorf("fetch called %d times, want 5 (breaker must not trip)", calls)
	}
	for _, err := range loopErrs {
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("breaker tripped despite an interleaved success: %v", loopErrs)
		}
	}
}

// TestCircuitBreakerIgnoresWarmup: warm-up intervals are expected, not
// failures — they must never accumulate toward the breaker.
func TestCircuitBreakerIgnoresWarmup(t *testing.T) {
	c, _ := testConfig(t, 6, 24) // one day of history < one-week warm-up
	c.cfg.MaxConsecutiveFailures = 2
	tick := make(chan time.Time)
	ctx, cancel := context.WithCancel(context.Background())
	var loopErrs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, tick, func(err error) { loopErrs = append(loopErrs, err) })
	}()
	for i := 0; i < 4; i++ { // twice the threshold, all warm-up
		tick <- time.Now()
	}
	cancel()
	<-done
	if len(loopErrs) != 0 {
		t.Fatalf("warm-up delivered errors: %v", loopErrs)
	}
}

// TestRunCancelMidInterval: cancelling the context while RunInterval is
// blocked inside a fetch must still shut the loop down as soon as the
// interval returns.
func TestRunCancelMidInterval(t *testing.T) {
	fetching := make(chan struct{})
	release := make(chan struct{})
	c, err := New(Config{
		Fetch: func() (*trace.Set, error) {
			close(fetching)
			<-release
			return nil, errors.New("fetch interrupted by shutdown")
		},
		Planner: core.Input{Host: catalog.HS23Elite},
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var loopErrs []error
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx, tick, func(err error) { loopErrs = append(loopErrs, err) })
	}()
	tick <- time.Now()
	<-fetching // the loop is now mid-interval
	cancel()
	close(release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("loop did not stop after mid-interval cancellation")
	}
	// The in-flight interval's error is still delivered before shutdown.
	if len(loopErrs) != 1 {
		t.Fatalf("delivered %d errors, want 1: %v", len(loopErrs), loopErrs)
	}
	if got := len(c.Ticks()); got != 0 {
		t.Errorf("interrupted interval recorded %d ticks, want 0", got)
	}
}

// TestRunNilOnError: the loop and the breaker must both survive a nil
// error callback.
func TestRunNilOnError(t *testing.T) {
	c, err := New(Config{
		Fetch:                  func() (*trace.Set, error) { return nil, errors.New("down") },
		Planner:                core.Input{Host: catalog.HS23Elite},
		MaxConsecutiveFailures: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	tick := make(chan time.Time)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(context.Background(), tick, nil)
	}()
	tick <- time.Now()
	tick <- time.Now()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("breaker with nil onError did not stop the loop")
	}
}
