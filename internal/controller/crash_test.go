package controller

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"vmwild/internal/catalog"
	"vmwild/internal/core"
	"vmwild/internal/placement"
	"vmwild/internal/trace"
	"vmwild/internal/wal"
	"vmwild/internal/workload"
)

// crashWallSeed mirrors the monitor wall: CI's crash-matrix job sweeps the
// kill points across seeds, locally the wall runs at a fixed default.
func crashWallSeed(t *testing.T) int64 {
	s := os.Getenv("CRASHWALL_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("CRASHWALL_SEED=%q: %v", s, err)
	}
	return v
}

// TestCrashWallController kills a journaled control loop at seeded record
// and byte boundaries of its WAL and asserts the recovery contract:
//
//   - kills between intervals recover the committed placement
//     byte-identically, and resuming the same feed lands byte-identically
//     on the no-crash reference's final placement;
//   - kills mid-interval recover the realized placement — every VM either
//     still on its pre-interval host or fully on its planned target, with
//     all intent resizes applied — and recovery is deterministic (two
//     recoveries of the same crashed directory agree byte-for-byte);
//   - recovery never fails, whatever the cut.
func TestCrashWallController(t *testing.T) {
	const (
		nServers  = 24
		start     = 8 * 24
		intervals = 8
	)
	opts := func(crash *wal.CrashSwitch) wal.Options {
		return wal.Options{Sync: wal.SyncAlways, SegmentBytes: 8 << 10, Crash: crash}
	}
	prof := workload.Banking()
	prof.Servers = nServers
	full, err := workload.Generate(prof, 24*12, workload.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// newController builds a journaled controller whose feed resumes at
	// interval k — the deterministic stand-in for monitoring agents
	// re-serving history after a restart.
	newController := func(t *testing.T, j *Journal, k int) *Controller {
		t.Helper()
		g := &growingFetch{full: full, hours: start + 2*k, step: 2}
		c, err := New(Config{
			Fetch:   g.fetch,
			Planner: core.Input{Host: catalog.HS23Elite},
			Journal: j,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Reference run: never crashes. commits[i] is the WAL stream position
	// after interval i committed; refEnc[i] the placement fingerprint.
	refJ, err := OpenJournal(t.TempDir(), opts(nil))
	if err != nil {
		t.Fatal(err)
	}
	ref := newController(t, refJ, 0)
	commits := make([]int64, intervals)
	refEnc := make([][]byte, intervals)
	planned := 0
	for i := 0; i < intervals; i++ {
		tick, err := ref.RunInterval()
		if err != nil {
			t.Fatalf("reference interval %d: %v", i, err)
		}
		planned += tick.Step.Migrations
		commits[i] = refJ.BytesWritten()
		refEnc[i] = encodeBytes(t, ref.Placement())
	}
	total := refJ.BytesWritten()
	refJ.Close()
	if planned == 0 {
		t.Fatal("reference run planned no migrations; the wall would not cover intent/outcome records")
	}
	hostOf := func(enc []byte) map[trace.ServerID]string {
		p, err := placement.Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[trace.ServerID]string, p.NumVMs())
		for _, h := range p.Hosts() {
			for _, vm := range p.VMsOn(h.ID) {
				m[vm] = h.ID
			}
		}
		return m
	}

	rng := rand.New(rand.NewSource(crashWallSeed(t)))
	var kills []int64
	for i := 0; i < 10; i++ { // randomized byte boundaries
		kills = append(kills, 1+rng.Int63n(total))
	}
	for i := 0; i < 4; i++ { // exact commit boundaries
		kills = append(kills, commits[rng.Intn(intervals)])
	}

	for _, cut := range kills {
		dir := t.TempDir()
		done := 0
		j, err := OpenJournal(dir, opts(wal.NewCrashSwitch(cut)))
		if err == nil {
			c := newController(t, j, 0)
			for i := 0; i < intervals; i++ {
				if _, err := c.RunInterval(); err != nil {
					if !errors.Is(err, wal.ErrCrashed) {
						t.Fatalf("cut %d: interval %d failed with %v", cut, i, err)
					}
					break
				}
				done++
			}
		} else if !errors.Is(err, wal.ErrCrashed) {
			t.Fatalf("cut %d: open: %v", cut, err)
		}

		// First recovery: capture, then recover again — restarting twice
		// from the same wreckage must reconstruct the same state.
		j2, err := OpenJournal(dir, opts(nil))
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		rec := j2.Recovery()
		var recEnc []byte
		if rec.Placement != nil {
			recEnc = encodeBytes(t, rec.Placement)
		}
		j2.Close()
		j3, err := OpenJournal(dir, opts(nil))
		if err != nil {
			t.Fatalf("cut %d: second recovery failed: %v", cut, err)
		}
		rec3 := j3.Recovery()
		if rec3.Intervals != rec.Intervals || rec3.Interrupted != rec.Interrupted {
			t.Fatalf("cut %d: recoveries disagree: %+v vs %+v", cut, rec3, rec)
		}
		if rec3.Placement != nil != (rec.Placement != nil) ||
			(rec3.Placement != nil && !bytes.Equal(encodeBytes(t, rec3.Placement), recEnc)) {
			t.Fatalf("cut %d: recovery is not deterministic", cut)
		}

		k := rec.Intervals
		// The commit for interval `done` can be durable even though the
		// crash surfaced in its wake (compaction is post-commit cleanup).
		if k < done || k > done+1 {
			t.Fatalf("cut %d: recovered %d committed intervals with %d acknowledged", cut, k, done)
		}
		if !rec.Interrupted {
			// Clean boundary: the committed placement is byte-identical to
			// the reference at the same interval.
			if k == 0 {
				if rec.Placement != nil {
					t.Fatalf("cut %d: placement recovered before any commit", cut)
				}
			} else if !bytes.Equal(recEnc, refEnc[k-1]) {
				t.Fatalf("cut %d: recovered placement diverges from reference after interval %d", cut, k)
			}
		} else {
			// Mid-interval: the realized placement. Interval k's intent was
			// durable, its commit was not, so k names the interrupted
			// interval; the reference ran it to completion.
			if k < 1 || k >= intervals {
				t.Fatalf("cut %d: interrupted at interval %d, outside the reference run", cut, k)
			}
			src, dst := hostOf(refEnc[k-1]), hostOf(refEnc[k])
			refP, err := placement.Decode(refEnc[k])
			if err != nil {
				t.Fatal(err)
			}
			moved := 0
			for vm, want := range dst {
				got, ok := rec.Placement.HostOf(vm)
				if !ok {
					t.Fatalf("cut %d: VM %s lost in recovery", cut, vm)
				}
				if got != src[vm] && got != want {
					t.Fatalf("cut %d: VM %s recovered on %s, neither source %s nor target %s",
						cut, vm, got, src[vm], want)
				}
				if got == want && want != src[vm] {
					moved++
				}
				// Intent resizes precede the first migration, so every VM
				// carries its target reservation regardless of move fate.
				it, _ := rec.Placement.Item(vm)
				wantIt, _ := refP.Item(vm)
				if it.Demand != wantIt.Demand {
					t.Fatalf("cut %d: VM %s demand %+v, want resized %+v", cut, vm, it.Demand, wantIt.Demand)
				}
			}
			if moved != rec.CompletedMoves {
				t.Fatalf("cut %d: %d VMs on their targets but %d completed-move records",
					cut, moved, rec.CompletedMoves)
			}
		}

		// Resume the loop from the recovered state through the remaining
		// intervals.
		c3 := newController(t, j3, k)
		for i := k; i < intervals; i++ {
			if _, err := c3.RunInterval(); err != nil {
				t.Fatalf("cut %d: resumed interval %d: %v", cut, i, err)
			}
		}
		finalEnc := encodeBytes(t, c3.Placement())
		if !rec.Interrupted {
			// A clean-boundary crash is invisible: the resumed run lands
			// byte-identically on the no-crash reference.
			if !bytes.Equal(finalEnc, refEnc[intervals-1]) {
				t.Fatalf("cut %d: resumed run diverges from the no-crash reference", cut)
			}
		} else {
			// After an interrupted interval the trajectory may legitimately
			// differ (aborted moves re-planned); the estate must stay whole.
			p, err := placement.Decode(finalEnc)
			if err != nil {
				t.Fatal(err)
			}
			if p.NumVMs() != nServers {
				t.Fatalf("cut %d: resumed run tracks %d VMs, want %d", cut, p.NumVMs(), nServers)
			}
		}
		j3.Close()
	}
}
