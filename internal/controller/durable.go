package controller

import (
	"encoding/json"
	"errors"
	"fmt"

	"vmwild/internal/executor"
	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
	"vmwild/internal/wal"
)

// The journal makes interval execution idempotent across restarts. Each
// interval writes, in order:
//
//	intent   — the interval's planned resizes and moves, before any
//	           migration starts
//	move     — one record per logical move as its fate is known
//	commit   — the realized placement, written as a WAL checkpoint (which
//	           also compacts the log down to just that placement)
//
// Recovery after a crash mid-interval reconstructs the realized placement:
// the committed placement, plus the intent's resizes, plus exactly the
// moves with a durable completed record. Moves that were in flight when
// the crash hit are treated as aborted — their VMs stay where they were —
// and the next interval re-plans from the realized placement instead of a
// stale one, exactly like the degraded-execution path.
const (
	walKindIntent = "intent"
	walKindMove   = "move"
)

type walRecord struct {
	Kind     string    `json:"kind"`
	Interval int       `json:"interval,omitempty"`
	Items    []walItem `json:"items,omitempty"`
	Moves    []walMove `json:"moves,omitempty"`
	Move     *walMove  `json:"move,omitempty"`
	Done     bool      `json:"done,omitempty"`
}

type walItem struct {
	VM  trace.ServerID `json:"vm"`
	CPU float64        `json:"cpu"`
	Mem float64        `json:"mem"`
}

type walMove struct {
	VM   trace.ServerID `json:"vm"`
	From string         `json:"from"`
	To   string         `json:"to"`
	CPU  float64        `json:"cpu"`
	Mem  float64        `json:"mem"`
}

// walCommit is the checkpoint payload: the placement the next interval
// plans from, plus how many intervals committed it.
type walCommit struct {
	Intervals int             `json:"intervals"`
	Placement json.RawMessage `json:"placement"`
}

// Journal is the controller's crash-safety log. Open one with OpenJournal
// and hand it to Config.Journal; New picks up the recovered state
// automatically.
type Journal struct {
	log      *wal.Log
	recovery Recovery
}

// Recovery is the controller state a journal reconstructed at open time.
type Recovery struct {
	// Intervals is the number of committed consolidation intervals; the
	// next interval gets this index.
	Intervals int
	// Placement is the realized placement to resume from; nil when the
	// journal was empty (fresh deployment).
	Placement *placement.Placement
	// Interrupted reports that a crash cut an interval short after its
	// intent record: Placement then includes that interval's resizes and
	// its durably-completed moves, with in-flight moves left in place.
	Interrupted bool
	// CompletedMoves and AbortedMoves count the interrupted interval's
	// durable move outcomes.
	CompletedMoves, AbortedMoves int
	// TornBytes is the size of the discarded torn WAL tail, if any.
	TornBytes int64
}

// OpenJournal recovers the controller journal in dir. The returned
// journal is ready to be wired into a controller via Config.Journal.
func OpenJournal(dir string, opts wal.Options) (*Journal, error) {
	log, recovered, err := wal.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	rec, err := decodeRecovery(recovered)
	if err != nil {
		log.Close()
		return nil, err
	}
	return &Journal{log: log, recovery: *rec}, nil
}

// Recovery returns the state recovered at open. The placement is the
// journal's own copy; New clones it before use.
func (j *Journal) Recovery() Recovery { return j.recovery }

// Close closes the underlying log.
func (j *Journal) Close() error { return j.log.Close() }

// BytesWritten reports the journal's WAL write-stream position — the
// crash wall's kill-point coordinate system.
func (j *Journal) BytesWritten() int64 { return j.log.BytesWritten() }

func (j *Journal) append(rec walRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("controller: journal encode: %w", err)
	}
	return j.log.Append(data)
}

// intent journals the interval's plan: the per-VM reservations of the
// target placement (the executor resizes every VM before moving any) and
// the planned logical moves.
func (j *Journal) intent(interval int, target *placement.Placement, moves []executor.Move) error {
	rec := walRecord{Kind: walKindIntent, Interval: interval}
	for _, h := range target.Hosts() {
		for _, vm := range target.VMsOn(h.ID) {
			it, _ := target.Item(vm)
			rec.Items = append(rec.Items, walItem{VM: vm, CPU: it.Demand.CPU, Mem: it.Demand.Mem})
		}
	}
	for _, mv := range moves {
		rec.Moves = append(rec.Moves, walMove{
			VM: mv.VM, From: mv.From, To: mv.To,
			CPU: mv.Demand.CPU, Mem: mv.Demand.Mem,
		})
	}
	return j.append(rec)
}

// outcome journals the fate of one logical move.
func (j *Journal) outcome(mv executor.Move, done bool) error {
	return j.append(walRecord{
		Kind: walKindMove,
		Move: &walMove{
			VM: mv.VM, From: mv.From, To: mv.To,
			CPU: mv.Demand.CPU, Mem: mv.Demand.Mem,
		},
		Done: done,
	})
}

// commit checkpoints the realized placement, compacting the journal down
// to it.
func (j *Journal) commit(intervals int, p *placement.Placement) error {
	data, err := p.Encode()
	if err != nil {
		return fmt.Errorf("controller: journal commit: %w", err)
	}
	payload, err := json.Marshal(walCommit{Intervals: intervals, Placement: data})
	if err != nil {
		return fmt.Errorf("controller: journal commit: %w", err)
	}
	return j.log.Checkpoint(payload)
}

// decodeRecovery folds the recovered checkpoint and record suffix into
// the realized placement. Records arrive in append order: zero or more
// (intent, move...) groups — more than one only when a previous recovery
// itself crashed before its first commit.
func decodeRecovery(recovered *wal.Recovered) (*Recovery, error) {
	r := &Recovery{TornBytes: recovered.TornBytes}
	if recovered.Checkpoint != nil {
		var c walCommit
		if err := json.Unmarshal(recovered.Checkpoint, &c); err != nil {
			return nil, fmt.Errorf("controller: journal checkpoint: %w", err)
		}
		p, err := placement.Decode(c.Placement)
		if err != nil {
			return nil, fmt.Errorf("controller: journal checkpoint: %w", err)
		}
		r.Intervals = c.Intervals
		r.Placement = p
	}
	for _, raw := range recovered.Records {
		var rec walRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("controller: journal record: %w", err)
		}
		switch rec.Kind {
		case walKindIntent:
			if r.Placement == nil {
				return nil, errors.New("controller: journal intent precedes any committed placement")
			}
			r.Interrupted = true
			// The executor resizes every VM to its target reservation
			// before the first migration; replay that first.
			for _, it := range rec.Items {
				if err := r.Placement.UpdateDemand(it.VM, sizing.Demand{CPU: it.CPU, Mem: it.Mem}); err != nil {
					return nil, fmt.Errorf("controller: journal replay resize: %w", err)
				}
			}
			// Targets the planner opened register up front, like
			// executeMoves does.
			for _, mv := range rec.Moves {
				r.Placement.EnsureHost(mv.To)
			}
		case walKindMove:
			if rec.Move == nil || r.Placement == nil || !r.Interrupted {
				return nil, errors.New("controller: journal move record without an intent")
			}
			if !rec.Done {
				r.AbortedMoves++
				continue
			}
			mv := rec.Move
			it, ok := r.Placement.Item(mv.VM)
			if !ok {
				return nil, fmt.Errorf("controller: journal replay: unknown VM %s", mv.VM)
			}
			if _, err := r.Placement.Remove(mv.VM); err != nil {
				return nil, fmt.Errorf("controller: journal replay: %w", err)
			}
			it.Demand = sizing.Demand{CPU: mv.CPU, Mem: mv.Mem}
			if err := r.Placement.Assign(it, mv.To); err != nil {
				return nil, fmt.Errorf("controller: journal replay move %s: %w", mv.VM, err)
			}
			r.CompletedMoves++
		default:
			return nil, fmt.Errorf("controller: journal record kind %q", rec.Kind)
		}
	}
	return r, nil
}
