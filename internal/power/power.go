// Package power implements the cost models of Section 5.3: a linear
// utilization-proportional host power model, and a facilities model that
// prices servers, racks and raised-floor space.
package power

import (
	"errors"
	"math"
)

// HostModel is the linear power model of one server: idle draw plus a
// utilization-proportional component up to peak draw.
type HostModel struct {
	IdleWatts float64
	PeakWatts float64
}

// Watts returns the draw at the given CPU utilization in [0, 1]; a powered
// off host draws nothing (use Off).
func (m HostModel) Watts(util float64) float64 {
	u := math.Max(0, math.Min(1, util))
	return m.IdleWatts + (m.PeakWatts-m.IdleWatts)*u
}

// Off is the draw of a powered-off host.
func (m HostModel) Off() float64 { return 0 }

// Validate checks the model is physically sensible.
func (m HostModel) Validate() error {
	if m.IdleWatts <= 0 || m.PeakWatts <= m.IdleWatts {
		return errors.New("power: need 0 < idle < peak watts")
	}
	return nil
}

// Facilities prices the space-and-hardware side of a data center: the
// paper's "most important cost parameter", derived from server count, rack
// occupancy and raised-floor footprint.
type Facilities struct {
	// ServerCost is the hardware cost of one server (normalized units).
	ServerCost float64
	// RackCost is the cost of one rack (enclosure, switching, PDU).
	RackCost float64
	// FloorCostPerRack is the raised-floor cost attributable to one
	// rack position.
	FloorCostPerRack float64
	// ServersPerRack is the rack density of the chosen server model.
	ServersPerRack int
}

// DefaultFacilities returns the facilities model used in the experiments,
// sized for HS23-class blades (14 per chassis/rack unit).
func DefaultFacilities() Facilities {
	return Facilities{ServerCost: 1, RackCost: 4, FloorCostPerRack: 2, ServersPerRack: 14}
}

// SpaceCost returns the facilities cost of provisioning n servers.
func (f Facilities) SpaceCost(n int) (float64, error) {
	if n < 0 {
		return 0, errors.New("power: negative server count")
	}
	if f.ServersPerRack < 1 {
		return 0, errors.New("power: need at least one server per rack")
	}
	racks := (n + f.ServersPerRack - 1) / f.ServersPerRack
	return float64(n)*f.ServerCost + float64(racks)*(f.RackCost+f.FloorCostPerRack), nil
}

// EnergyKWh converts a sequence of hourly aggregate power samples (watts)
// into energy.
func EnergyKWh(hourlyWatts []float64) float64 {
	var total float64
	for _, w := range hourlyWatts {
		total += w
	}
	return total / 1000
}
