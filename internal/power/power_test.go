package power

import (
	"math"
	"testing"
)

func TestHostModelWatts(t *testing.T) {
	m := HostModel{IdleWatts: 100, PeakWatts: 300}
	tests := []struct {
		util, want float64
	}{
		{0, 100},
		{0.5, 200},
		{1, 300},
		{-0.5, 100}, // clamped
		{1.5, 300},  // clamped
	}
	for _, tt := range tests {
		if got := m.Watts(tt.util); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Watts(%v) = %v, want %v", tt.util, got, tt.want)
		}
	}
	if m.Off() != 0 {
		t.Error("powered-off host must draw nothing")
	}
}

func TestHostModelValidate(t *testing.T) {
	if err := (HostModel{IdleWatts: 100, PeakWatts: 300}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	for _, m := range []HostModel{{}, {IdleWatts: 100, PeakWatts: 100}, {IdleWatts: -1, PeakWatts: 10}} {
		if err := m.Validate(); err == nil {
			t.Errorf("invalid model %+v accepted", m)
		}
	}
}

func TestSpaceCost(t *testing.T) {
	f := Facilities{ServerCost: 1, RackCost: 4, FloorCostPerRack: 2, ServersPerRack: 10}
	tests := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{1, 1 + 6},    // one server, one rack
		{10, 10 + 6},  // exactly one rack
		{11, 11 + 12}, // spills into a second rack
	}
	for _, tt := range tests {
		got, err := f.SpaceCost(tt.n)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("SpaceCost(%d) = %v, want %v", tt.n, got, tt.want)
		}
	}
	if _, err := f.SpaceCost(-1); err == nil {
		t.Error("expected error for negative count")
	}
	if _, err := (Facilities{}).SpaceCost(1); err == nil {
		t.Error("expected error for zero rack density")
	}
}

func TestSpaceCostMonotone(t *testing.T) {
	f := DefaultFacilities()
	prev := -1.0
	for n := 0; n <= 100; n++ {
		got, err := f.SpaceCost(n)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev {
			t.Fatalf("SpaceCost(%d) = %v decreased from %v", n, got, prev)
		}
		prev = got
	}
}

func TestEnergyKWh(t *testing.T) {
	if got := EnergyKWh([]float64{1000, 1000, 500}); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("EnergyKWh = %v, want 2.5", got)
	}
	if EnergyKWh(nil) != 0 {
		t.Error("no samples means no energy")
	}
}
