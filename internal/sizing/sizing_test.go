package sizing

import (
	"math"
	"testing"
	"time"

	"vmwild/internal/trace"
)

func testTrace(cpu, mem []float64) *trace.ServerTrace {
	samples := make([]trace.Usage, len(cpu))
	for i := range cpu {
		samples[i] = trace.Usage{CPU: cpu[i], Mem: mem[i]}
	}
	s, err := trace.NewSeries(time.Hour, samples)
	if err != nil {
		panic(err)
	}
	return &trace.ServerTrace{ID: "t", Spec: trace.Spec{CPURPE2: 1000, MemMB: 8192}, Series: s}
}

func TestSizers(t *testing.T) {
	samples := []float64{1, 2, 3, 4, 10}
	tests := []struct {
		sizer Sizer
		want  float64
		name  string
	}{
		{sizer: Max{}, want: 10, name: "max"},
		{sizer: Mean{}, want: 4, name: "mean"},
		{sizer: Percentile{P: 50}, want: 3, name: "p50"},
		{sizer: Percentile{P: 100}, want: 10, name: "p100"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.sizer.Size(samples)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("%s.Size = %v, want %v", tt.sizer.Name(), got, tt.want)
			}
			if tt.sizer.Name() != tt.name {
				t.Errorf("Name = %q, want %q", tt.sizer.Name(), tt.name)
			}
		})
	}
}

func TestSizersEmptyWindow(t *testing.T) {
	for _, s := range []Sizer{Max{}, Mean{}, Percentile{P: 90}} {
		if _, err := s.Size(nil); err == nil {
			t.Errorf("%s accepted empty window", s.Name())
		}
	}
	if _, err := (Percentile{P: 150}).Size([]float64{1}); err == nil {
		t.Error("expected error for out-of-range percentile")
	}
}

func TestSizeServer(t *testing.T) {
	st := testTrace([]float64{10, 50, 20}, []float64{1000, 1200, 1100})
	d, err := SizeServer(st, Max{})
	if err != nil {
		t.Fatal(err)
	}
	if d.CPU != 50 || d.Mem != 1200 {
		t.Errorf("SizeServer = %+v, want {50 1200}", d)
	}
	scaled := d.Scale(0.5)
	if scaled.CPU != 25 || scaled.Mem != 600 {
		t.Errorf("Scale = %+v", scaled)
	}
}

func TestSizeEnvelope(t *testing.T) {
	cpu := make([]float64, 100)
	mem := make([]float64, 100)
	for i := range cpu {
		cpu[i] = float64(i + 1) // 1..100
		mem[i] = 1000
	}
	st := testTrace(cpu, mem)
	env, err := SizeEnvelope(st, 90)
	if err != nil {
		t.Fatal(err)
	}
	if env.Tail.CPU != 100 {
		t.Errorf("tail CPU = %v, want 100", env.Tail.CPU)
	}
	if math.Abs(env.Body.CPU-90.1) > 0.5 {
		t.Errorf("body CPU = %v, want ~90", env.Body.CPU)
	}
	buf := env.TailBuffer()
	if buf.CPU <= 0 {
		t.Errorf("tail buffer CPU = %v, want positive", buf.CPU)
	}
	if buf.Mem != 0 {
		t.Errorf("tail buffer Mem = %v, want 0 for flat memory", buf.Mem)
	}
}
