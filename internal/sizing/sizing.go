// Package sizing implements the Size Estimation step of the consolidation
// flow (Section 2.1): turning a window of predicted or monitored demand
// samples into a single scalar reservation per resource.
//
// The paper's variants map onto these sizers: static and vanilla semi-static
// consolidation use Max; the stochastic PCP algorithm sizes the body of the
// distribution at the 90th percentile and the tail at the maximum; dynamic
// consolidation applies Max over the (much shorter) consolidation interval.
package sizing

import (
	"errors"
	"fmt"

	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// Sizer reduces a demand history to a single reservation value.
type Sizer interface {
	// Size returns the reservation for the given samples.
	Size(samples []float64) (float64, error)
	// Name identifies the sizer in reports.
	Name() string
}

// Max sizes at the peak of the window — the conservative default.
type Max struct{}

// Size implements Sizer.
func (Max) Size(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("sizing: empty window")
	}
	return stats.Max(samples), nil
}

// Name implements Sizer.
func (Max) Name() string { return "max" }

// Mean sizes at the average of the window — the most aggressive sizing,
// usable only with workload multiplexing guarantees.
type Mean struct{}

// Size implements Sizer.
func (Mean) Size(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("sizing: empty window")
	}
	return stats.Mean(samples), nil
}

// Name implements Sizer.
func (Mean) Name() string { return "mean" }

// Percentile sizes at the p-th percentile of the window, the body sizing
// used by stochastic consolidation.
type Percentile struct {
	// P is the percentile in (0, 100].
	P float64
}

// Size implements Sizer.
func (p Percentile) Size(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("sizing: empty window")
	}
	v, err := stats.Percentile(samples, p.P)
	if err != nil {
		return 0, fmt.Errorf("sizing: %w", err)
	}
	return v, nil
}

// Name implements Sizer.
func (p Percentile) Name() string { return fmt.Sprintf("p%g", p.P) }

// Demand is a sized two-resource reservation for one VM.
type Demand struct {
	// CPU is the reserved CPU in RPE2 units.
	CPU float64
	// Mem is the reserved memory in MB.
	Mem float64
}

// Scale multiplies both components by k.
func (d Demand) Scale(k float64) Demand {
	return Demand{CPU: d.CPU * k, Mem: d.Mem * k}
}

// SizeServer applies the sizer to both resources of one server trace.
func SizeServer(st *trace.ServerTrace, s Sizer) (Demand, error) {
	cpu, err := s.Size(st.Series.Col(trace.CPU))
	if err != nil {
		return Demand{}, fmt.Errorf("server %s cpu: %w", st.ID, err)
	}
	mem, err := s.Size(st.Series.Col(trace.Mem))
	if err != nil {
		return Demand{}, fmt.Errorf("server %s mem: %w", st.ID, err)
	}
	return Demand{CPU: cpu, Mem: mem}, nil
}

// Envelope is the PCP-style two-level reservation: a Body sized at a
// percentile of the distribution plus a Tail reaching to the maximum. The
// body is always reserved; the tail is shared across co-located workloads
// whose peaks do not coincide (Section 2.2.2, [27]).
type Envelope struct {
	Body Demand
	Tail Demand // Tail >= Body component-wise; the buffer is Tail - Body
}

// TailBuffer returns the per-resource slack between tail and body.
func (e Envelope) TailBuffer() Demand {
	return Demand{CPU: e.Tail.CPU - e.Body.CPU, Mem: e.Tail.Mem - e.Body.Mem}
}

// SizeEnvelope computes a PCP envelope for one server: body at the given
// percentile, tail at the maximum.
func SizeEnvelope(st *trace.ServerTrace, bodyPercentile float64) (Envelope, error) {
	var es EnvelopeSizer
	es.P = bodyPercentile
	return es.Size(st)
}

// EnvelopeSizer computes PCP envelopes for a stream of servers while
// reusing one percentile working buffer across calls, so sizing a whole
// data center does not allocate a scratch copy per server. Results and
// errors are identical to SizeEnvelope. Not safe for concurrent use.
type EnvelopeSizer struct {
	// P is the body percentile in [0, 100].
	P       float64
	scratch []float64
}

func (e *EnvelopeSizer) body(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, errors.New("sizing: empty window")
	}
	if cap(e.scratch) < len(samples) {
		e.scratch = make([]float64, len(samples))
	}
	v, err := stats.PercentileInto(e.scratch, samples, e.P)
	if err != nil {
		return 0, fmt.Errorf("sizing: %w", err)
	}
	return v, nil
}

// Size computes the envelope for one server.
func (e *EnvelopeSizer) Size(st *trace.ServerTrace) (Envelope, error) {
	cpu := st.Series.Col(trace.CPU)
	mem := st.Series.Col(trace.Mem)
	bodyCPU, err := e.body(cpu)
	if err != nil {
		return Envelope{}, fmt.Errorf("server %s cpu: %w", st.ID, err)
	}
	bodyMem, err := e.body(mem)
	if err != nil {
		return Envelope{}, fmt.Errorf("server %s mem: %w", st.ID, err)
	}
	tail, err := SizeServer(st, Max{})
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{
		Body: Demand{CPU: bodyCPU, Mem: bodyMem},
		Tail: tail,
	}, nil
}
