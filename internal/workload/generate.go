package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// Horizon constants. The paper plans from the most recent 30 days of hourly
// warehouse data and evaluates planners over the following 14 days
// (Table 3); generation covers both back to back.
const (
	HoursPerDay     = 24
	MonitoringDays  = 30
	EvaluationDays  = 14
	MonitoringHours = MonitoringDays * HoursPerDay // 720
	EvaluationHours = EvaluationDays * HoursPerDay // 336
	HorizonHours    = MonitoringHours + EvaluationHours
)

// DefaultSeed seeds all experiments; the value is the Middleware '14
// conference start date (8 December 2014).
const DefaultSeed int64 = 20141208

// relActivityCap bounds the CPU-relative activity fed into the memory
// coupling, so memory bursts stay within physical bounds. Linear coupling is
// capped harder: even cache-heavy servers rarely exceed an order of
// magnitude of their baseline footprint (memory peak-to-average ratios above
// 10 are essentially absent in Figure 4).
const (
	relActivityCap       = 15.0
	relActivityCapLinear = 10.0
	coupleCapSuper       = 12.0
)

// Generate synthesizes hours of hourly demand samples for every server of
// the profile. The same (profile, hours, seed) triple always produces the
// identical trace set.
func Generate(p *Profile, hours int, seed int64) (*trace.Set, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if hours < 1 {
		return nil, fmt.Errorf("workload: horizon must be at least one hour, got %d", hours)
	}

	set := &trace.Set{Name: p.Name, Servers: make([]*trace.ServerTrace, 0, p.Servers)}
	events := eventTimeline(p.Events, hours, seed)
	counts := shareCounts(p)
	serverIdx := 0
	for shareIdx, share := range p.Mix {
		n := counts[shareIdx]
		appIdx := 0
		for placed := 0; placed < n; {
			// Servers arrive in application groups of 1-5 machines
			// sharing a diurnal phase; constraint experiments and
			// correlation structure both depend on this grouping.
			appRNG := rand.New(rand.NewSource(stats.Derive(seed, int64(shareIdx)*1_000_003+int64(appIdx))))
			appSize := 1 + appRNG.Intn(5)
			if placed+appSize > n {
				appSize = n - placed
			}
			appPhase := appRNG.NormFloat64() * 1.5
			appName := fmt.Sprintf("%s-%s-%03d", p.Name, share.Archetype.Name, appIdx)
			appEvents := appEventTimeline(share.Archetype, hours, appRNG)
			for k := 0; k < appSize; k++ {
				r := rand.New(rand.NewSource(stats.Derive(seed, int64(serverIdx)+77_777)))
				model := pickModel(r, share.Models).Model
				st := synthesize(r, share.Archetype, model.Spec, hours, appPhase, events, appEvents)
				st.ID = trace.ServerID(fmt.Sprintf("%s-%04d", p.Name, serverIdx))
				st.App = appName
				st.Class = share.Archetype.Class
				set.Servers = append(set.Servers, st)
				serverIdx++
				placed++
			}
			appIdx++
		}
	}
	return set, nil
}

// shareCounts apportions p.Servers across the mix by weight, assigning
// rounding remainders to the largest shares first.
func shareCounts(p *Profile) []int {
	counts := make([]int, len(p.Mix))
	assigned := 0
	largest, largestIdx := -1.0, 0
	for i, s := range p.Mix {
		counts[i] = int(math.Floor(s.Weight * float64(p.Servers)))
		assigned += counts[i]
		if s.Weight > largest {
			largest, largestIdx = s.Weight, i
		}
	}
	counts[largestIdx] += p.Servers - assigned
	return counts
}

func pickModel(r *rand.Rand, models []ModelShare) ModelShare {
	var total float64
	for _, m := range models {
		total += m.Weight
	}
	x := r.Float64() * total
	for _, m := range models {
		x -= m.Weight
		if x <= 0 {
			return m
		}
	}
	return models[len(models)-1]
}

// eventTimeline draws the data-center-wide demand-surge process: added CPU
// utilization per hour, shared by every participating server.
func eventTimeline(e Events, hours int, seed int64) []float64 {
	events := make([]float64, hours)
	if e.Rate <= 0 {
		return events
	}
	r := rand.New(rand.NewSource(stats.Derive(seed, 424_242)))
	var (
		left int
		mag  float64
	)
	for t := 0; t < hours; t++ {
		if left > 0 {
			events[t] = mag
			mag *= 0.8
			left--
			continue
		}
		day := t / HoursPerDay
		hod := t % HoursPerDay
		if e.DayOnly && (day%7 >= 5 || hod < 9 || hod > 22) {
			continue
		}
		if stats.Bernoulli(r, e.Rate) {
			left = 1 + r.Intn(maxInt(e.MaxHours, 1))
			mag = stats.Clamp(e.Magnitude*stats.Pareto(r, 1, e.Alpha), 0, e.Cap)
			events[t] = mag
			left--
			mag *= 0.8
		}
	}
	return events
}

// appEventTimeline draws one application's private flash-crowd process.
func appEventTimeline(a Archetype, hours int, r *rand.Rand) []float64 {
	if a.AppEventRate <= 0 {
		return nil
	}
	return eventTimeline(Events{
		Rate:      a.AppEventRate,
		Magnitude: a.AppEventMag,
		Alpha:     max(a.AppEventAlpha, 1.1),
		Cap:       a.AppEventCap,
		MaxHours:  maxInt(a.AppEventMaxHours, 1),
		DayOnly:   true,
	}, hours, r.Int63())
}

// synthesize produces one server's demand series. Hour zero is a Monday
// midnight; a "month" is 30 days.
func synthesize(r *rand.Rand, a Archetype, spec trace.Spec, hours int, appPhase float64, events, appEvents []float64) *trace.ServerTrace {
	// Per-server heterogeneity: the population spread behind the CDFs.
	base := a.CPUBase * stats.LogNormal(r, 0, 0.35)
	memBase := a.MemBaseMB * (0.75 + 0.5*r.Float64())
	memAct := a.MemActivityMB * (0.75 + 0.5*r.Float64())
	burstRate := a.BurstRate * stats.LogNormal(r, 0, 0.5)
	eventSens := stats.Clamp(stats.LogNormal(r, -0.2, 0.4), 0.2, 1.8) * a.EventParticipation
	phase := appPhase + r.NormFloat64()*0.5

	samples := make([]trace.Usage, hours)
	var (
		burstLeft int
		burstMag  float64
		drift     = 1.0
	)
	for t := 0; t < hours; t++ {
		day := t / HoursPerDay
		hod := t % HoursPerDay
		dow := day % 7
		dom := day % 30

		diurnal := 1 + a.DiurnalAmp*math.Cos(2*math.Pi*(float64(hod)-14-phase)/24)
		weekly := 1.0
		if dow >= 5 {
			weekly = 1 - a.WeekendDrop
		}
		noise := stats.LogNormal(r, -a.NoiseSigma*a.NoiseSigma/2, a.NoiseSigma)
		util := base * diurnal * weekly * noise

		// Heavy-tailed burst process.
		if burstLeft > 0 {
			util += burstMag
			burstLeft--
			burstMag *= 0.75 // bursts decay as caches warm and retries drain
		} else if a.BurstRate > 0 && stats.Bernoulli(r, burstRate) {
			burstLeft = 1 + r.Intn(maxInt(a.BurstMaxHours, 1))
			burstMag = stats.Clamp(base*a.BurstScale*stats.Pareto(r, 1, a.BurstAlpha), 0, 0.92)
			util += burstMag
			burstLeft--
		}

		// Data-center-wide correlated demand surge.
		if events[t] > 0 && eventSens > 0 {
			util += eventSens * events[t]
		}

		// Application-scoped flash crowd shared by the app group.
		if appEvents != nil && appEvents[t] > 0 {
			util += appEvents[t] * (0.85 + 0.3*r.Float64())
		}

		// Scheduled batch windows.
		if a.NightJob > 0 && inWindow(hod, a.JobStartHour, a.JobHours) {
			util += a.NightJob * (0.8 + 0.4*r.Float64())
		}
		if a.MonthEndJob > 0 && (dom == 0 || dom == 29) && inWindow(hod, a.JobStartHour, a.JobHours*3) {
			util += a.MonthEndJob * (0.8 + 0.4*r.Float64())
		}

		util = stats.Clamp(util, 0.002, 0.95)

		// Memory: slow committed-memory drift plus activity coupling.
		if stats.Bernoulli(r, a.MemDriftStep) {
			drift = stats.Clamp(drift*(0.85+0.3*r.Float64()), 0.7, 1.3)
		}
		rel := util / base
		var couple float64
		switch a.Coupling {
		case CoupleLinear:
			couple = math.Min(rel, relActivityCapLinear)
		case CoupleSuper:
			couple = math.Min(math.Pow(rel, 1.5), coupleCapSuper)
		default:
			couple = math.Sqrt(math.Min(rel, relActivityCap))
		}
		mem := memBase*drift + memAct*couple + r.NormFloat64()*a.MemNoiseMB
		mem = stats.Clamp(mem, 64, 0.95*spec.MemMB)

		samples[t] = trace.Usage{CPU: util * spec.CPURPE2, Mem: mem}
	}

	series, err := trace.NewSeries(time.Hour, samples)
	if err != nil {
		// time.Hour is always a valid step; this is unreachable.
		panic(err)
	}
	return &trace.ServerTrace{Spec: spec, Series: series}
}

func inWindow(hod, start, length int) bool {
	if length <= 0 {
		return false
	}
	end := start + length
	if end <= HoursPerDay {
		return hod >= start && hod < end
	}
	return hod >= start || hod < end-HoursPerDay
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
