package workload

import (
	"errors"
	"math"
)

// OlioModel reproduces the paper's Olio web-benchmark micro-study
// (Section 4.1): on a dual-core Xeon, scaling throughput from 10 to 60
// operations per second raised CPU demand from 0.18 to 1.42 cores (a 7.9x
// increase) while memory demand grew only 3x.
//
// The model is a pair of power laws fitted to those two endpoints:
//
//	cpu(tput) = CPUAtRef * (tput/RefTput)^log6(7.9)
//	mem(tput) = MemAtRef * (tput/RefTput)^log6(3.0)
//
// It backs the generator's sub-linear memory coupling and the
// BenchmarkOlioScaling experiment.
type OlioModel struct {
	// RefTput is the reference throughput in operations per second.
	RefTput float64
	// CPUAtRef is CPU demand (cores) at the reference throughput.
	CPUAtRef float64
	// MemAtRefMB is memory demand (MB) at the reference throughput.
	MemAtRefMB float64
}

// DefaultOlio returns the model calibrated to the paper's measurements.
func DefaultOlio() OlioModel {
	return OlioModel{RefTput: 10, CPUAtRef: 0.18, MemAtRefMB: 600}
}

// Exponents of the fitted power laws: 6^cpuExp = 7.9 and 6^memExp = 3.
var (
	olioCPUExp = math.Log(7.9) / math.Log(6)
	olioMemExp = math.Log(3.0) / math.Log(6)
)

// CPUCores returns the CPU demand in cores at the given throughput.
func (m OlioModel) CPUCores(tput float64) (float64, error) {
	if tput <= 0 || m.RefTput <= 0 {
		return 0, errors.New("workload: olio throughput must be positive")
	}
	return m.CPUAtRef * math.Pow(tput/m.RefTput, olioCPUExp), nil
}

// MemMB returns the memory demand in MB at the given throughput.
func (m OlioModel) MemMB(tput float64) (float64, error) {
	if tput <= 0 || m.RefTput <= 0 {
		return 0, errors.New("workload: olio throughput must be positive")
	}
	return m.MemAtRefMB * math.Pow(tput/m.RefTput, olioMemExp), nil
}
