package workload

import (
	"errors"
	"fmt"

	"vmwild/internal/catalog"
)

// Template describes a custom estate in engagement-level terms, for users
// who want a what-if data center without hand-tuning archetypes. The four
// paper profiles remain the calibrated reference points; templates
// interpolate the same building blocks.
type Template struct {
	// Name identifies the estate.
	Name string
	// Servers is the estate size.
	Servers int
	// WebFraction in [0, 1] sets the share of interactive web/app
	// servers; the rest are batch and infrastructure machines.
	WebFraction float64
	// Burstiness in [0, 1] scales the data-center-wide demand surges
	// from Natural-Resources-calm (0) to Banking-wild (1).
	Burstiness float64
	// MemoryFootprintMB is the target average committed memory per
	// server; it shifts the estate between CPU-bound and memory-bound
	// regimes (Figure 6). Zero selects 2048.
	MemoryFootprintMB float64
	// Hardware selects the source-server model: "small", "medium",
	// "large" or "xlarge" (default "medium").
	Hardware string
}

// FromTemplate expands a template into a full profile.
func FromTemplate(t Template) (*Profile, error) {
	if t.Name == "" {
		return nil, errors.New("workload: template needs a name")
	}
	if t.Servers < 1 {
		return nil, errors.New("workload: template needs at least one server")
	}
	if t.WebFraction < 0 || t.WebFraction > 1 {
		return nil, fmt.Errorf("workload: web fraction %v outside [0, 1]", t.WebFraction)
	}
	if t.Burstiness < 0 || t.Burstiness > 1 {
		return nil, fmt.Errorf("workload: burstiness %v outside [0, 1]", t.Burstiness)
	}
	mem := t.MemoryFootprintMB
	if mem == 0 {
		mem = 2048
	}
	if mem < 64 {
		return nil, fmt.Errorf("workload: memory footprint %v MB below the 64 MB floor", mem)
	}

	var model catalog.Model
	switch t.Hardware {
	case "", "medium":
		model = catalog.LegacyMedium
	case "small":
		model = catalog.LegacySmall
	case "large":
		model = catalog.LegacyLarge
	case "xlarge":
		model = catalog.LegacyXLarge
	default:
		return nil, fmt.Errorf("workload: unknown hardware class %q", t.Hardware)
	}
	if mem > 0.9*model.Spec.MemMB {
		return nil, fmt.Errorf("workload: footprint %v MB exceeds %s capacity", mem, model.Name)
	}
	models := []ModelShare{{Model: model, Weight: 1}}

	// Scale the archetype memory so the estate's average footprint lands
	// near the target (the built-in archetypes average ~2.2 GB in the
	// mixes below).
	memScale := mem / 2200

	scaleMem := func(a Archetype) Archetype {
		a.MemBaseMB *= memScale
		a.MemActivityMB *= memScale
		return a
	}
	web := scaleMem(WebHot)
	webMild := scaleMem(WebMild)
	cache := scaleMem(WebCache)
	db := scaleMem(Database)
	// Databases in the batch share back office pipelines, not web apps.
	db.Class = "batch"
	nightly := scaleMem(BatchNightly)
	compute := scaleMem(BatchCompute)
	infra := scaleMem(FileInfra)

	wf, bf := t.WebFraction, 1-t.WebFraction
	p := &Profile{
		Name:     t.Name,
		Industry: "custom",
		Servers:  t.Servers,
		Events: Events{
			Rate:      0.01 + 0.06*t.Burstiness,
			Magnitude: 0.02 + 0.06*t.Burstiness,
			Alpha:     2.2 - 0.7*t.Burstiness,
			Cap:       0.06 + 0.28*t.Burstiness,
			MaxHours:  2,
			DayOnly:   true,
		},
		Mix: []Share{
			{Archetype: web, Weight: wf * 0.5, Models: models},
			{Archetype: webMild, Weight: wf * 0.3, Models: models},
			{Archetype: cache, Weight: wf * 0.2, Models: models},
			{Archetype: db, Weight: bf * 0.2, Models: models},
			{Archetype: nightly, Weight: bf * 0.3, Models: models},
			{Archetype: compute, Weight: bf * 0.3, Models: models},
			{Archetype: infra, Weight: bf * 0.2, Models: models},
		},
	}
	// Drop zero-weight shares (all-web or all-batch templates).
	mix := p.Mix[:0]
	for _, s := range p.Mix {
		if s.Weight > 0 {
			mix = append(mix, s)
		}
	}
	p.Mix = mix
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload: template expansion: %w", err)
	}
	return p, nil
}
