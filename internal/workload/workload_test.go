package workload

import (
	"math"
	"testing"

	"vmwild/internal/trace"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		t.Run(p.Name, func(t *testing.T) {
			if err := p.Validate(); err != nil {
				t.Errorf("profile %s invalid: %v", p.Name, err)
			}
		})
	}
}

func TestProfileValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		p    *Profile
	}{
		{name: "no servers", p: &Profile{Mix: Banking().Mix}},
		{name: "no mix", p: &Profile{Servers: 10}},
		{name: "bad weights", p: &Profile{Servers: 10, Mix: []Share{{Archetype: WebHot, Weight: 0.5, Models: mediumOnly()}}}},
		{name: "no models", p: &Profile{Servers: 10, Mix: []Share{{Archetype: WebHot, Weight: 1}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestWebFractionOrdering(t *testing.T) {
	// The paper orders web fraction A > D > B > C (Section 3.2).
	a, b, c, d := Banking().WebFraction(), Airlines().WebFraction(), NaturalResources().WebFraction(), Beverage().WebFraction()
	if !(a > d && d > b && b > c) {
		t.Errorf("web fractions A=%.2f D=%.2f B=%.2f C=%.2f violate A > D > B > C", a, d, b, c)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Banking()
	p.Servers = 8
	s1, err := Generate(p, 48, 42)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Generate(p, 48, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Servers {
		a, b := s1.Servers[i], s2.Servers[i]
		if a.ID != b.ID || a.App != b.App {
			t.Fatalf("server %d identity differs", i)
		}
		for j := range a.Series.Samples {
			if a.Series.Samples[j] != b.Series.Samples[j] {
				t.Fatalf("server %d sample %d differs: %+v vs %+v", i, j, a.Series.Samples[j], b.Series.Samples[j])
			}
		}
	}
	s3, err := Generate(p, 48, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for j, u := range s1.Servers[0].Series.Samples {
		if s3.Servers[0].Series.Samples[j] != u {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	p := Beverage()
	p.Servers = 20
	set, err := Generate(p, 72, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("generated set invalid: %v", err)
	}
	if len(set.Servers) != 20 {
		t.Fatalf("got %d servers, want 20", len(set.Servers))
	}
	for _, st := range set.Servers {
		if st.Series.Len() != 72 {
			t.Fatalf("server %s has %d samples, want 72", st.ID, st.Series.Len())
		}
		for _, u := range st.Series.Samples {
			if u.CPU < 0 || u.CPU > st.Spec.CPURPE2 {
				t.Fatalf("CPU demand %v outside [0, %v]", u.CPU, st.Spec.CPURPE2)
			}
			if u.Mem < 0 || u.Mem > st.Spec.MemMB {
				t.Fatalf("memory demand %v outside [0, %v]", u.Mem, st.Spec.MemMB)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(&Profile{}, 24, 1); err == nil {
		t.Error("expected error for invalid profile")
	}
	if _, err := Generate(Banking(), 0, 1); err == nil {
		t.Error("expected error for zero horizon")
	}
}

func TestShareCountsSumToServers(t *testing.T) {
	for _, p := range Profiles() {
		counts := shareCounts(p)
		total := 0
		for _, c := range counts {
			total += c
		}
		if total != p.Servers {
			t.Errorf("profile %s: counts sum to %d, want %d", p.Name, total, p.Servers)
		}
	}
}

func TestInWindow(t *testing.T) {
	tests := []struct {
		hod, start, length int
		want               bool
	}{
		{2, 1, 4, true},
		{0, 1, 4, false},
		{5, 1, 4, false},
		{23, 22, 4, true}, // wraps midnight
		{1, 22, 4, true},  // wrapped portion
		{2, 22, 4, false}, // past wrapped end
		{3, 2, 0, false},  // empty window
	}
	for _, tt := range tests {
		if got := inWindow(tt.hod, tt.start, tt.length); got != tt.want {
			t.Errorf("inWindow(%d,%d,%d) = %v, want %v", tt.hod, tt.start, tt.length, got, tt.want)
		}
	}
}

func TestOlioModel(t *testing.T) {
	m := DefaultOlio()
	cpu10, err := m.CPUCores(10)
	if err != nil {
		t.Fatal(err)
	}
	cpu60, err := m.CPUCores(60)
	if err != nil {
		t.Fatal(err)
	}
	mem10, err := m.MemMB(10)
	if err != nil {
		t.Fatal(err)
	}
	mem60, err := m.MemMB(60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cpu10-0.18) > 1e-9 {
		t.Errorf("CPU at 10 ops/s = %v, want 0.18", cpu10)
	}
	if math.Abs(cpu60/cpu10-7.9) > 0.01 {
		t.Errorf("CPU scaling = %vx, want 7.9x", cpu60/cpu10)
	}
	if math.Abs(mem60/mem10-3.0) > 0.01 {
		t.Errorf("memory scaling = %vx, want 3x", mem60/mem10)
	}
	if math.Abs(cpu60-1.42) > 0.01 {
		t.Errorf("CPU at 60 ops/s = %v, want 1.42", cpu60)
	}
	if _, err := m.CPUCores(0); err == nil {
		t.Error("expected error for zero throughput")
	}
	if _, err := m.MemMB(-1); err == nil {
		t.Error("expected error for negative throughput")
	}
}

func TestHorizonConstants(t *testing.T) {
	if MonitoringHours != 720 || EvaluationHours != 336 || HorizonHours != 1056 {
		t.Error("horizon constants drifted from the paper's 30+14 day design")
	}
}

func TestSpecRatioSanity(t *testing.T) {
	// Generated servers must carry positive specs usable downstream.
	p := Airlines()
	p.Servers = 5
	set, err := Generate(p, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range set.Servers {
		if st.Spec == (trace.Spec{}) {
			t.Fatalf("server %s has empty spec", st.ID)
		}
	}
}
