package workload

import (
	"errors"
	"fmt"

	"vmwild/internal/catalog"
)

// Share assigns a fraction of a data center's servers to one archetype
// running on one hardware model mix.
type Share struct {
	// Archetype is copied by value so profiles may tweak fields (for
	// example burst duration) without affecting the package defaults.
	Archetype Archetype
	// Weight is the fraction of servers with this behaviour; weights in
	// a profile must sum to 1 within rounding.
	Weight float64
	// Models is the hardware mix for this share.
	Models []ModelShare
}

// ModelShare weights one hardware model inside a Share.
type ModelShare struct {
	Model  catalog.Model
	Weight float64
}

// Events parameterizes the data-center-wide correlated demand surges
// (market opens, fare sales, promotions). Because the surge hits every
// participating server in the same hours, per-server peaks coincide — the
// aggregate peak stays close to the sum of individual peaks, which is why
// dynamic consolidation cannot simply multiplex burstiness away.
type Events struct {
	// Rate is the per-candidate-hour probability that a surge starts.
	Rate float64
	// Magnitude scales surge strength (added CPU utilization before the
	// Pareto draw and per-server sensitivity).
	Magnitude float64
	// Alpha is the Pareto tail index of surge strength.
	Alpha float64
	// Cap bounds the added utilization of a single surge.
	Cap float64
	// MaxHours bounds surge duration.
	MaxHours int
	// DayOnly restricts surge starts to business hours (9-22) on
	// weekdays.
	DayOnly bool
}

// Profile describes one data center from Table 2 of the paper.
type Profile struct {
	// Name is the paper's single-letter workload name: A, B, C or D.
	Name string
	// Industry is the descriptive industry label.
	Industry string
	// Servers is the number of monitored servers.
	Servers int
	// TargetCPUUtil is the data-center-wide average CPU utilization the
	// profile is calibrated to (Table 2).
	TargetCPUUtil float64
	// Events is the shared demand-surge process.
	Events Events
	// Mix is the archetype composition.
	Mix []Share
}

// Validate checks structural consistency of the profile.
func (p *Profile) Validate() error {
	if p.Servers <= 0 {
		return errors.New("workload: profile needs at least one server")
	}
	if len(p.Mix) == 0 {
		return errors.New("workload: profile has no archetype mix")
	}
	var total float64
	for _, s := range p.Mix {
		if s.Weight < 0 {
			return fmt.Errorf("workload: negative weight for %q", s.Archetype.Name)
		}
		if len(s.Models) == 0 {
			return fmt.Errorf("workload: share %q has no hardware models", s.Archetype.Name)
		}
		total += s.Weight
	}
	if total < 0.999 || total > 1.001 {
		return fmt.Errorf("workload: archetype weights sum to %v, want 1", total)
	}
	return nil
}

// WebFraction returns the fraction of servers labeled "web", the paper's
// proxy for expected burstiness.
func (p *Profile) WebFraction() float64 {
	var web float64
	for _, s := range p.Mix {
		if s.Archetype.Class == "web" {
			web += s.Weight
		}
	}
	return web
}

// Hardware model mixes. Banking runs on larger boxes (CPU-hungry trading and
// channel apps), the others mostly on mid-size rack servers.
func xlargeHeavy() []ModelShare {
	return []ModelShare{
		{Model: catalog.LegacyXLarge, Weight: 0.5},
		{Model: catalog.LegacyLarge, Weight: 0.5},
	}
}

func largeHeavy() []ModelShare {
	return []ModelShare{
		{Model: catalog.LegacyLarge, Weight: 0.7},
		{Model: catalog.LegacyMedium, Weight: 0.3},
	}
}

func mediumHeavy() []ModelShare {
	return []ModelShare{
		{Model: catalog.LegacyMedium, Weight: 0.7},
		{Model: catalog.LegacyLarge, Weight: 0.2},
		{Model: catalog.LegacySmall, Weight: 0.1},
	}
}

func mediumOnly() []ModelShare {
	return []ModelShare{{Model: catalog.LegacyMedium, Weight: 1}}
}

// Banking returns workload A: a Fortune-100 bank's production data center —
// 816 servers, ~5% average CPU utilization, the highest web fraction and by
// far the burstiest CPU demand, with strong market-hour demand surges that
// hit all customer-facing tiers simultaneously. It is the only workload that
// is CPU-intensive in a majority of consolidation intervals (Figure 6a).
func Banking() *Profile {
	web := WebHot
	web.DiurnalAmp = 0.35
	web.WeekendDrop = 0.25
	webMild := WebMild
	webMild.DiurnalAmp = 0.30
	cache := WebCache
	cache.DiurnalAmp = 0.35
	db := Database
	db.MemBaseMB = 3500
	db.MemActivityMB = 600
	nightly := BatchNightly
	nightly.NightJob = 0.35
	nightly.MemBaseMB = 1600
	nightly.MemActivityMB = 400
	infra := FileInfra
	infra.MemBaseMB = 1000
	infra.MemActivityMB = 150
	return &Profile{
		Name: "A", Industry: "Banking", Servers: 816, TargetCPUUtil: 0.05,
		Events: Events{Rate: 0.07, Magnitude: 0.07, Alpha: 1.5, Cap: 0.34, MaxHours: 2, DayOnly: true},
		Mix: []Share{
			{Archetype: web, Weight: 0.40, Models: largeHeavy()},
			{Archetype: webMild, Weight: 0.17, Models: largeHeavy()},
			{Archetype: cache, Weight: 0.18, Models: largeHeavy()},
			{Archetype: db, Weight: 0.05, Models: largeHeavy()},
			{Archetype: nightly, Weight: 0.12, Models: largeHeavy()},
			{Archetype: infra, Weight: 0.08, Models: mediumHeavy()},
		},
	}
}

// Airlines returns workload B: an airline data center — 445 servers, ~1%
// average CPU utilization, strongly memory-bound (aggregate CPU/memory ratio
// below 50 RPE2/GB throughout) with stable memory demand that dips mildly at
// night as caches drain.
func Airlines() *Profile {
	// The airline's reservation databases are labeled batch: they back
	// offline ticketing pipelines, not interactive web applications.
	reservations := Database
	reservations.Class = "batch"
	reservations.CPUBase = 0.015
	reservations.DiurnalAmp = 0.20
	reservations.NoiseSigma = 0.15
	reservations.BurstRate = 0.002
	reservations.MemBaseMB = 7000
	reservations.MemActivityMB = 2500
	quietWeb := WebMild
	quietWeb.CPUBase = 0.008
	quietWeb.AppEventRate = 0
	quietWeb.DiurnalAmp = 0.25
	quietWeb.NoiseSigma = 0.15
	quietWeb.BurstRate = 0.002
	quietWeb.MemBaseMB = 3800
	quietWeb.MemActivityMB = 700
	spikyWeb := WebHot
	spikyWeb.CPUBase = 0.007
	spikyWeb.NoiseSigma = 0.30
	spikyWeb.AppEventRate = 0.0008
	spikyWeb.AppEventMag = 0.03
	spikyWeb.AppEventCap = 0.08
	spikyWeb.BurstRate = 0.015
	spikyWeb.BurstScale = 4
	spikyWeb.BurstAlpha = 2.2
	spikyWeb.MemBaseMB = 3200
	spikyWeb.MemActivityMB = 500
	infra := FileInfra
	infra.CPUBase = 0.008
	infra.NoiseSigma = 0.15
	infra.BurstRate = 0.001
	infra.MemBaseMB = 1800
	return &Profile{
		Name: "B", Industry: "Airlines", Servers: 445, TargetCPUUtil: 0.01,
		Events: Events{Rate: 0.02, Magnitude: 0.008, Alpha: 2.2, Cap: 0.03, MaxHours: 2, DayOnly: true},
		Mix: []Share{
			{Archetype: spikyWeb, Weight: 0.30, Models: mediumOnly()},
			{Archetype: quietWeb, Weight: 0.25, Models: mediumOnly()},
			{Archetype: reservations, Weight: 0.25, Models: mediumHeavy()},
			{Archetype: infra, Weight: 0.20, Models: mediumOnly()},
		},
	}
}

// NaturalResources returns workload C: a mining and minerals company's
// primary data center — 1390 servers, ~12% average CPU utilization, the
// highest fraction of custom batch applications and hence the lowest
// burstiness, memory-bound in nearly all consolidation intervals.
func NaturalResources() *Profile {
	steadyWeb := WebMild
	steadyWeb.AppEventRate = 0.0005
	steadyWeb.AppEventMag = 0.05
	steadyWeb.AppEventCap = 0.15
	nightly := BatchNightly
	nightly.CPUBase = 0.06
	nightly.NightJob = 0.26
	nightly.MemActivityMB = 1200
	payroll := BatchPayroll
	payroll.CPUBase = 0.07
	payroll.MonthEndJob = 0.35
	return &Profile{
		Name: "C", Industry: "Natural Resources", Servers: 1390, TargetCPUUtil: 0.12,
		Events: Events{Rate: 0.01, Magnitude: 0.02, Alpha: 2.4, Cap: 0.06, MaxHours: 2, DayOnly: true},
		Mix: []Share{
			{Archetype: BatchCompute, Weight: 0.38, Models: mediumHeavy()},
			{Archetype: nightly, Weight: 0.22, Models: mediumOnly()},
			{Archetype: payroll, Weight: 0.10, Models: mediumOnly()},
			{Archetype: steadyWeb, Weight: 0.15, Models: mediumOnly()},
			{Archetype: Database, Weight: 0.10, Models: mediumHeavy()},
			{Archetype: FileInfra, Weight: 0.05, Models: mediumOnly()},
		},
	}
}

// Beverage returns workload D: a global beverage company — 722 servers, ~6%
// average CPU utilization, bursty like Banking but with longer-lived
// promotion-driven surges (burstiness less sensitive to the consolidation
// interval) and higher absolute memory demand, leaving it memory-dominated
// in over 90% of intervals.
func Beverage() *Profile {
	bevWeb := []ModelShare{
		{Model: catalog.LegacyXLarge, Weight: 0.3},
		{Model: catalog.LegacyLarge, Weight: 0.7},
	}
	longWebHot := WebHot
	longWebHot.CPUBase = 0.040
	longWebHot.BurstMaxHours = 4
	longWebHot.MemBaseMB = 2400
	longWebHot.MemActivityMB = 400
	longWebCache := WebCache
	longWebCache.BurstMaxHours = 4
	longWebCache.MemBaseMB = 800
	longWebCache.MemActivityMB = 800
	return &Profile{
		Name: "D", Industry: "Beverage", Servers: 722, TargetCPUUtil: 0.06,
		Events: Events{Rate: 0.04, Magnitude: 0.10, Alpha: 1.7, Cap: 0.32, MaxHours: 4, DayOnly: true},
		Mix: []Share{
			{Archetype: longWebHot, Weight: 0.38, Models: bevWeb},
			{Archetype: WebMild, Weight: 0.15, Models: bevWeb},
			{Archetype: longWebCache, Weight: 0.09, Models: bevWeb},
			{Archetype: Database, Weight: 0.10, Models: mediumHeavy()},
			{Archetype: BatchNightly, Weight: 0.18, Models: mediumOnly()},
			{Archetype: FileInfra, Weight: 0.10, Models: mediumOnly()},
		},
	}
}

// Profiles returns the four study data centers in Table 2 order.
func Profiles() []*Profile {
	return []*Profile{Banking(), Airlines(), NaturalResources(), Beverage()}
}
