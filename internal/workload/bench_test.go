package workload

import "testing"

// BenchmarkGenerateBanking measures synthesizing the full Banking estate
// over the complete 44-day horizon.
func BenchmarkGenerateBanking(b *testing.B) {
	p := Banking()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, HorizonHours, DefaultSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	p := Airlines()
	p.Servers = 50
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p, 24*7, 1); err != nil {
			b.Fatal(err)
		}
	}
}
