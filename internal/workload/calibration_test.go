package workload

import (
	"testing"

	"vmwild/internal/analysis"
	"vmwild/internal/catalog"
	"vmwild/internal/trace"
)

// The calibration tests pin the synthetic workloads to the distributional
// facts published in the paper (Section 4). Each assertion cites the
// published number; bands are wide enough to absorb seed-to-seed noise but
// tight enough that a generator regression breaks them. Change generator
// parameters only together with these bands.

type calibration struct {
	set  *trace.Set
	eval *trace.Set
}

func calibrate(t *testing.T, p *Profile) calibration {
	t.Helper()
	set, err := Generate(p, HorizonHours, DefaultSeed)
	if err != nil {
		t.Fatalf("generate %s: %v", p.Name, err)
	}
	mon, err := set.SliceAll(0, MonitoringHours)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := set.SliceAll(MonitoringHours, HorizonHours)
	if err != nil {
		t.Fatal(err)
	}
	return calibration{set: mon, eval: eval}
}

func inBand(t *testing.T, name string, got, lo, hi float64) {
	t.Helper()
	if got < lo || got > hi {
		t.Errorf("%s = %.3f, want within [%.3f, %.3f]", name, got, lo, hi)
	}
}

func TestCalibrationBanking(t *testing.T) {
	c := calibrate(t, Banking())
	util, err := analysis.MeanCPUUtilization(c.set)
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: Banking averages 5% CPU utilization.
	inBand(t, "mean CPU util", util, 0.035, 0.065)

	pa1, err := analysis.PeakToAverageCDF(c.set, 1, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	pa4, err := analysis.PeakToAverageCDF(c.set, 4, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2a: >50% of Banking servers above P/A 5 at 1-2h intervals;
	// ~30% above 10 at 1h, ~5% above 10 at 4h.
	inBand(t, "CPU P/A median @1h", pa1.Median(), 5, 12)
	inBand(t, "CPU P/A >10 @1h", pa1.FractionAbove(10), 0.20, 0.55)
	inBand(t, "CPU P/A >10 @4h", pa4.FractionAbove(10), 0, 0.25)
	if pa4.Median() >= pa1.Median() {
		t.Error("P/A must shrink with longer consolidation intervals")
	}

	cov, err := analysis.CoVCDF(c.set, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3a: more than half of Banking servers heavy-tailed. The
	// generator lands just below (0.45) — the highest of all four
	// workloads, which is the load-bearing property.
	inBand(t, "CPU CoV>=1 fraction", cov.FractionAbove(1), 0.38, 0.70)

	mpa, err := analysis.PeakToAverageCDF(c.set, 1, trace.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4a: more than half of servers at memory P/A <= 1.5; hardly
	// any above 10.
	inBand(t, "mem P/A <=1.5 fraction", mpa.At(1.5), 0.45, 0.75)
	inBand(t, "mem P/A >10 fraction", mpa.FractionAbove(10), 0, 0.02)

	mcov, err := analysis.CoVCDF(c.set, trace.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5a: about 20% of Banking servers with memory CoV > 1.
	inBand(t, "mem CoV>=1 fraction", mcov.FractionAbove(1), 0.08, 0.30)

	memBound, err := analysis.MemoryBoundFraction(c.eval, 2, catalog.ReferenceRatioPerGB)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6a: Banking is memory-intensive ~30% of the time.
	inBand(t, "memory-bound fraction", memBound, 0.20, 0.55)
}

func TestCalibrationAirlines(t *testing.T) {
	c := calibrate(t, Airlines())
	util, err := analysis.MeanCPUUtilization(c.set)
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: Airlines averages 1% CPU utilization.
	inBand(t, "mean CPU util", util, 0.006, 0.018)

	pa1, err := analysis.PeakToAverageCDF(c.set, 1, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2b: modest burstiness, but >50% of servers above P/A 2.
	if got := pa1.FractionAbove(2); got < 0.60 {
		t.Errorf("CPU P/A >2 fraction = %.2f, want >= 0.60", got)
	}

	cov, err := analysis.CoVCDF(c.set, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3b: roughly 30% of Airlines servers heavy-tailed.
	inBand(t, "CPU CoV>=1 fraction", cov.FractionAbove(1), 0.12, 0.40)

	mpa, err := analysis.PeakToAverageCDF(c.set, 1, trace.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4b: 90% of Airlines servers at memory P/A < 1.5.
	if got := mpa.At(1.5); got < 0.85 {
		t.Errorf("mem P/A <=1.5 fraction = %.2f, want >= 0.85", got)
	}

	mcov, err := analysis.CoVCDF(c.set, trace.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5b: no heavy-tailed memory servers at all.
	if got := mcov.FractionAbove(1); got > 0.01 {
		t.Errorf("mem CoV>=1 fraction = %.3f, want ~0", got)
	}

	// Figure 6b: memory-bound throughout, aggregate ratio below 50.
	ratios, err := analysis.ResourceRatioCDF(c.eval, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ratios.Quantile(0.95); got >= 50 {
		t.Errorf("ratio p95 = %.0f, want < 50 (paper: below 50 throughout)", got)
	}
	memBound, err := analysis.MemoryBoundFraction(c.eval, 2, catalog.ReferenceRatioPerGB)
	if err != nil {
		t.Fatal(err)
	}
	if memBound < 0.99 {
		t.Errorf("memory-bound fraction = %.2f, want ~1.0", memBound)
	}
}

func TestCalibrationNaturalResources(t *testing.T) {
	c := calibrate(t, NaturalResources())
	util, err := analysis.MeanCPUUtilization(c.set)
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: Natural Resources averages 12% CPU utilization.
	inBand(t, "mean CPU util", util, 0.09, 0.15)

	pa1, err := analysis.PeakToAverageCDF(c.set, 1, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2c: modest burstiness (>50% above 2, median well below
	// Banking's).
	if got := pa1.FractionAbove(2); got < 0.60 {
		t.Errorf("CPU P/A >2 fraction = %.2f, want >= 0.60", got)
	}
	inBand(t, "CPU P/A median @1h", pa1.Median(), 2, 6.5)

	cov, err := analysis.CoVCDF(c.set, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3c: about 15% of servers heavy-tailed.
	inBand(t, "CPU CoV>=1 fraction", cov.FractionAbove(1), 0.05, 0.25)

	mpa, err := analysis.PeakToAverageCDF(c.set, 1, trace.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4c: ~60% of servers at memory P/A < 1.5.
	inBand(t, "mem P/A <=1.5 fraction", mpa.At(1.5), 0.40, 0.75)

	memBound, err := analysis.MemoryBoundFraction(c.eval, 2, catalog.ReferenceRatioPerGB)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6c / Section 5.4: memory-constrained in >90% of intervals.
	if memBound < 0.90 {
		t.Errorf("memory-bound fraction = %.2f, want >= 0.90", memBound)
	}
}

func TestCalibrationBeverage(t *testing.T) {
	c := calibrate(t, Beverage())
	util, err := analysis.MeanCPUUtilization(c.set)
	if err != nil {
		t.Fatal(err)
	}
	// Table 2: Beverage averages 6% CPU utilization.
	inBand(t, "mean CPU util", util, 0.04, 0.08)

	pa1, err := analysis.PeakToAverageCDF(c.set, 1, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2d: bursty like Banking.
	inBand(t, "CPU P/A median @1h", pa1.Median(), 5, 12)

	cov, err := analysis.CoVCDF(c.set, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3d: heavy-tailed population similar to Banking's.
	inBand(t, "CPU CoV>=1 fraction", cov.FractionAbove(1), 0.40, 0.75)

	mcov, err := analysis.CoVCDF(c.set, trace.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5d: a few heavy-tailed memory servers, below 10%.
	inBand(t, "mem CoV>=1 fraction", mcov.FractionAbove(1), 0.005, 0.10)

	memBound, err := analysis.MemoryBoundFraction(c.eval, 2, catalog.ReferenceRatioPerGB)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 6d: memory-dominated in more than 90% of intervals.
	if memBound < 0.85 {
		t.Errorf("memory-bound fraction = %.2f, want >= 0.85", memBound)
	}
}

// TestCalibrationOrdering pins the cross-workload orderings the paper's
// arguments depend on.
func TestCalibrationOrdering(t *testing.T) {
	var (
		ratioMedian = make(map[string]float64)
		covFrac     = make(map[string]float64)
	)
	for _, p := range Profiles() {
		c := calibrate(t, p)
		ratios, err := analysis.ResourceRatioCDF(c.eval, 2)
		if err != nil {
			t.Fatal(err)
		}
		ratioMedian[p.Name] = ratios.Median()
		cov, err := analysis.CoVCDF(c.set, trace.CPU)
		if err != nil {
			t.Fatal(err)
		}
		covFrac[p.Name] = cov.FractionAbove(1)
	}
	// Section 4.2: CPU intensity ordering Banking > Beverage > Natural
	// Resources > Airlines.
	if !(ratioMedian["A"] > ratioMedian["D"] && ratioMedian["D"] > ratioMedian["C"] && ratioMedian["C"] > ratioMedian["B"]) {
		t.Errorf("resource-ratio ordering violated: A=%.0f D=%.0f C=%.0f B=%.0f",
			ratioMedian["A"], ratioMedian["D"], ratioMedian["C"], ratioMedian["B"])
	}
	// Figures 3a-d: Banking and Beverage clearly burstier than Airlines,
	// which is burstier than Natural Resources.
	if !(covFrac["A"] > covFrac["B"] && covFrac["D"] > covFrac["B"] && covFrac["B"] > covFrac["C"]) {
		t.Errorf("burstiness ordering violated: A=%.2f D=%.2f B=%.2f C=%.2f",
			covFrac["A"], covFrac["D"], covFrac["B"], covFrac["C"])
	}
}

// TestObservations1and2 checks the paper's headline observations across the
// pooled population of all four data centers.
func TestObservations1and2(t *testing.T) {
	pooled := &trace.Set{Name: "all"}
	for _, p := range Profiles() {
		c := calibrate(t, p)
		pooled.Servers = append(pooled.Servers, c.set.Servers...)
	}
	pa, err := analysis.PeakToAverageCDF(pooled, 1, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	cov, err := analysis.CoVCDF(pooled, trace.CPU)
	if err != nil {
		t.Fatal(err)
	}
	// Observation 1: P/A >= 5 and CoV >= 1 for more than 25% of servers.
	if got := pa.FractionAbove(5); got < 0.25 {
		t.Errorf("Observation 1: CPU P/A>5 fraction = %.2f, want >= 0.25", got)
	}
	if got := cov.FractionAbove(1); got < 0.20 {
		t.Errorf("Observation 1: CPU CoV>=1 fraction = %.2f, want >= 0.20", got)
	}

	mpa, err := analysis.PeakToAverageCDF(pooled, 1, trace.Mem)
	if err != nil {
		t.Fatal(err)
	}
	mcov, err := analysis.CoVCDF(pooled, trace.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Observation 2: memory P/A of 1.5 and CoV of 0.5 or less for more
	// than 80% of servers (we allow 70% for the P/A band).
	if got := mpa.At(1.55); got < 0.70 {
		t.Errorf("Observation 2: mem P/A<=1.55 fraction = %.2f, want >= 0.70", got)
	}
	if got := mcov.At(0.5); got < 0.80 {
		t.Errorf("Observation 2: mem CoV<=0.5 fraction = %.2f, want >= 0.80", got)
	}
}

// TestCalibrationSeedStability guards against overfitting the generator to
// the default seed: the headline bands must hold (with wider tolerances)
// under other seeds too.
func TestCalibrationSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("generates two extra full estates")
	}
	for _, seed := range []int64{7, 20260705} {
		set, err := Generate(Banking(), HorizonHours, seed)
		if err != nil {
			t.Fatal(err)
		}
		mon, err := set.SliceAll(0, MonitoringHours)
		if err != nil {
			t.Fatal(err)
		}
		eval, err := set.SliceAll(MonitoringHours, HorizonHours)
		if err != nil {
			t.Fatal(err)
		}
		cov, err := analysis.CoVCDF(mon, trace.CPU)
		if err != nil {
			t.Fatal(err)
		}
		if got := cov.FractionAbove(1); got < 0.30 || got > 0.75 {
			t.Errorf("seed %d: Banking CoV>=1 fraction = %.2f outside loose band", seed, got)
		}
		memBound, err := analysis.MemoryBoundFraction(eval, 2, catalog.ReferenceRatioPerGB)
		if err != nil {
			t.Fatal(err)
		}
		if memBound < 0.15 || memBound > 0.65 {
			t.Errorf("seed %d: Banking memory-bound fraction = %.2f outside loose band", seed, memBound)
		}
		util, err := analysis.MeanCPUUtilization(mon)
		if err != nil {
			t.Fatal(err)
		}
		if util < 0.03 || util > 0.07 {
			t.Errorf("seed %d: Banking mean utilization = %.3f outside loose band", seed, util)
		}
	}
}
