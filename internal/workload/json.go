package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"vmwild/internal/catalog"
)

// Profiles are serializable so consolidation engagements can describe a
// custom estate as data and run every planner and experiment on it. The
// JSON form references hardware models by catalog name.

// profileJSON is the wire form of a Profile.
type profileJSON struct {
	Name          string      `json:"name"`
	Industry      string      `json:"industry"`
	Servers       int         `json:"servers"`
	TargetCPUUtil float64     `json:"targetCpuUtil"`
	Events        Events      `json:"events"`
	Mix           []shareJSON `json:"mix"`
}

type shareJSON struct {
	Archetype Archetype        `json:"archetype"`
	Weight    float64          `json:"weight"`
	Models    []modelShareJSON `json:"models"`
}

type modelShareJSON struct {
	Model  string  `json:"model"`
	Weight float64 `json:"weight"`
}

// WriteProfileJSON serializes a profile.
func WriteProfileJSON(w io.Writer, p *Profile) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	out := profileJSON{
		Name:          p.Name,
		Industry:      p.Industry,
		Servers:       p.Servers,
		TargetCPUUtil: p.TargetCPUUtil,
		Events:        p.Events,
	}
	for _, s := range p.Mix {
		sj := shareJSON{Archetype: s.Archetype, Weight: s.Weight}
		for _, m := range s.Models {
			sj.Models = append(sj.Models, modelShareJSON{Model: m.Model.Name, Weight: m.Weight})
		}
		out.Mix = append(out.Mix, sj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadProfileJSON deserializes a profile, resolving hardware models against
// the catalog.
func ReadProfileJSON(r io.Reader, cat *catalog.Catalog) (*Profile, error) {
	if cat == nil {
		cat = catalog.Default()
	}
	var in profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decode profile: %w", err)
	}
	p := &Profile{
		Name:          in.Name,
		Industry:      in.Industry,
		Servers:       in.Servers,
		TargetCPUUtil: in.TargetCPUUtil,
		Events:        in.Events,
	}
	for _, sj := range in.Mix {
		share := Share{Archetype: sj.Archetype, Weight: sj.Weight}
		for _, mj := range sj.Models {
			model, err := cat.Lookup(mj.Model)
			if err != nil {
				return nil, fmt.Errorf("workload: share %q: %w", sj.Archetype.Name, err)
			}
			share.Models = append(share.Models, ModelShare{Model: model, Weight: mj.Weight})
		}
		p.Mix = append(p.Mix, share)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return p, nil
}
