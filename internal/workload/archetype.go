// Package workload synthesizes enterprise server demand traces with the
// statistical profile of the four production data centers studied in the
// paper (Table 2): Banking (A), Airlines (B), Natural Resources (C) and
// Beverage (D).
//
// The real traces are proprietary; this generator is the substitution. Every
// result in the paper is a functional of trace distributions — burstiness
// (peak-to-average ratio and CoV of CPU and memory), aggregate CPU/memory
// resource ratios, diurnal/weekly structure and cross-server correlation —
// so the generator is built from archetypes whose parameters are calibrated
// until those published distributions hold (see calibration_test.go).
package workload

// MemCoupling selects how a server's memory demand follows its CPU activity.
type MemCoupling int

const (
	// CoupleSqrt models typical services: memory grows with the square
	// root of relative CPU activity (caches and session state saturate).
	// This is the regime behind the paper's Olio observation that a 6x
	// throughput increase costs 7.9x CPU but only 3x memory.
	CoupleSqrt MemCoupling = iota + 1
	// CoupleLinear models in-memory batch and cache-heavy jobs whose
	// memory tracks load directly.
	CoupleLinear
	// CoupleSuper models heap-heavy application servers whose memory
	// balloons super-linearly under load (session caches, JVM heaps);
	// these are the minority of servers with heavy-tailed memory demand
	// in Figure 5.
	CoupleSuper
)

// Archetype parameterizes one class of server behaviour. CPU utilization is
// produced as
//
//	util(t) = clamp(base * diurnal(t) * weekly(t) * lognormal-noise + burst(t), 0, cap)
//
// where burst(t) is a heavy-tailed ON/OFF spike process (web flash crowds)
// or a scheduled job (batch windows). Memory demand is absolute (MB): a
// service's committed memory is a property of the application, not of the
// box it happens to run on:
//
//	mem(t) = clamp(memBaseMB * drift(t) + memActivityMB * couple(util(t)/base) + noise, floor, ram)
type Archetype struct {
	// Name identifies the archetype in labels and reports.
	Name string
	// Class is the paper's two-way application label: "web" or "batch".
	Class string

	// CPUBase is the baseline CPU utilization (fraction of the source
	// machine's RPE2 rating).
	CPUBase float64
	// DiurnalAmp is the relative amplitude of the day/night cycle in
	// [0, 1); web workloads have pronounced daytime peaks.
	DiurnalAmp float64
	// WeekendDrop is the relative reduction of the base on weekends.
	WeekendDrop float64
	// NoiseSigma is the sigma of multiplicative log-normal noise.
	NoiseSigma float64

	// BurstRate is the per-hour probability that a demand burst starts.
	BurstRate float64
	// BurstScale sets the burst magnitude as a multiple of CPUBase.
	BurstScale float64
	// BurstAlpha is the Pareto tail index of burst magnitudes; values
	// near 1 give the heavy tails seen in the Banking workload.
	BurstAlpha float64
	// BurstMaxHours bounds burst duration. Longer bursts make
	// peak-to-average ratios less sensitive to the consolidation
	// interval length (the Beverage signature in Figure 2).
	BurstMaxHours int
	// EventParticipation scales how strongly this archetype reacts to
	// data-center-wide demand events (market opens, promotions, flash
	// crowds). Correlated events are what keep the aggregate peak close
	// to the sum of individual peaks for web-heavy data centers — the
	// reason dynamic consolidation cannot multiplex bursts away
	// (Observation 5 and the stability of correlation noted in [27]).
	EventParticipation float64

	// Application-scoped flash crowds: rarer, larger surges that hit all
	// servers of one application together but are independent across
	// applications. These are what overload individual hosts under
	// dynamic consolidation (the scattered contention of Figures 8-9)
	// without moving the data-center-wide aggregate much.
	AppEventRate     float64
	AppEventMag      float64
	AppEventAlpha    float64
	AppEventCap      float64
	AppEventMaxHours int

	// NightJob, when positive, adds a scheduled batch window of this
	// utilization starting at JobStartHour for JobHours every day.
	NightJob     float64
	JobStartHour int
	JobHours     int
	// MonthEndJob, when positive, adds a payroll-style burst on the
	// first and last day of each 30-day month.
	MonthEndJob float64

	// MemBaseMB is the baseline committed memory in MB.
	MemBaseMB float64
	// MemActivityMB is the additional memory (MB) coupled to CPU
	// activity through Coupling.
	MemActivityMB float64
	// MemNoiseMB is the sigma of small additive Gaussian memory noise
	// in MB.
	MemNoiseMB float64
	// MemDriftStep is the per-hour probability of a committed-memory
	// step change (deploy, restart, slow leak being reclaimed).
	MemDriftStep float64
	// Coupling selects the CPU-to-memory coupling shape.
	Coupling MemCoupling
}

// Built-in archetypes. The parameter values are the product of the
// calibration loop in calibration_test.go; change them only together with
// the bands asserted there.
var (
	// WebHot is a heavy-tailed customer-facing web/app server: low
	// baseline, strong diurnal cycle, full participation in
	// data-center-wide demand events.
	WebHot = Archetype{
		Name: "web-hot", Class: "web",
		CPUBase: 0.034, DiurnalAmp: 0.55, WeekendDrop: 0.35, NoiseSigma: 0.46,
		BurstRate: 0.010, BurstScale: 3, BurstAlpha: 2.2, BurstMaxHours: 2,
		EventParticipation: 1.0,
		AppEventRate:       0.0022, AppEventMag: 0.09, AppEventAlpha: 1.7, AppEventCap: 0.32, AppEventMaxHours: 2,
		MemBaseMB: 400, MemActivityMB: 100, MemNoiseMB: 4, MemDriftStep: 0.002,
		Coupling: CoupleSqrt,
	}
	// WebMild is a steadier intranet/web-tier server.
	WebMild = Archetype{
		Name: "web-mild", Class: "web",
		CPUBase: 0.040, DiurnalAmp: 0.45, WeekendDrop: 0.30, NoiseSigma: 0.25,
		BurstRate: 0.006, BurstScale: 2.5, BurstAlpha: 2.4, BurstMaxHours: 2,
		EventParticipation: 0.75,
		AppEventRate:       0.0015, AppEventMag: 0.08, AppEventAlpha: 1.8, AppEventCap: 0.35, AppEventMaxHours: 2,
		MemBaseMB: 500, MemActivityMB: 100, MemNoiseMB: 4, MemDriftStep: 0.002,
		Coupling: CoupleSqrt,
	}
	// WebCache is the cache/app-server minority whose memory tracks load
	// linearly; source of the heavy-tailed memory CoV population.
	WebCache = Archetype{
		Name: "web-cache", Class: "web",
		CPUBase: 0.032, DiurnalAmp: 0.50, WeekendDrop: 0.35, NoiseSigma: 0.46,
		BurstRate: 0.010, BurstScale: 3, BurstAlpha: 2.2, BurstMaxHours: 2,
		EventParticipation: 1.0,
		AppEventRate:       0.0022, AppEventMag: 0.09, AppEventAlpha: 1.7, AppEventCap: 0.32, AppEventMaxHours: 2,
		MemBaseMB: 150, MemActivityMB: 800, MemNoiseMB: 4, MemDriftStep: 0.002,
		Coupling: CoupleSuper,
	}
	// Database is a steady database tier: higher base, mild cycles,
	// large stable buffer-pool memory.
	Database = Archetype{
		Name: "database", Class: "web",
		CPUBase: 0.06, DiurnalAmp: 0.30, WeekendDrop: 0.20, NoiseSigma: 0.20,
		BurstRate: 0.005, BurstScale: 2.5, BurstAlpha: 2.5, BurstMaxHours: 2,
		EventParticipation: 0.4,
		MemBaseMB:          4500, MemActivityMB: 800, MemNoiseMB: 30, MemDriftStep: 0.001,
		Coupling: CoupleSqrt,
	}
	// BatchNightly runs a nightly processing window on top of a quiet
	// baseline.
	BatchNightly = Archetype{
		Name: "batch-nightly", Class: "batch",
		CPUBase: 0.04, DiurnalAmp: 0.10, WeekendDrop: 0.10, NoiseSigma: 0.25,
		BurstRate: 0.003, BurstScale: 2.5, BurstAlpha: 2.5, BurstMaxHours: 3,
		NightJob: 0.30, JobStartHour: 1, JobHours: 4,
		EventParticipation: 0.1,
		MemBaseMB:          2200, MemActivityMB: 600, MemNoiseMB: 40, MemDriftStep: 0.001,
		Coupling: CoupleSqrt,
	}
	// BatchCompute is a long-running computational job server (the
	// Natural Resources signature): high sustained utilization.
	BatchCompute = Archetype{
		Name: "batch-compute", Class: "batch",
		CPUBase: 0.17, DiurnalAmp: 0.15, WeekendDrop: 0.05, NoiseSigma: 0.22,
		BurstRate: 0.006, BurstScale: 1.5, BurstAlpha: 2.6, BurstMaxHours: 6,
		EventParticipation: 0.05,
		MemBaseMB:          5000, MemActivityMB: 1800, MemNoiseMB: 40, MemDriftStep: 0.001,
		Coupling: CoupleLinear,
	}
	// BatchPayroll adds month-boundary processing (first and last day of
	// the month), the intra-month variation semi-static consolidation
	// exploits.
	BatchPayroll = Archetype{
		Name: "batch-payroll", Class: "batch",
		CPUBase: 0.04, DiurnalAmp: 0.10, WeekendDrop: 0.10, NoiseSigma: 0.25,
		NightJob: 0.15, JobStartHour: 2, JobHours: 3, MonthEndJob: 0.45,
		EventParticipation: 0.05,
		MemBaseMB:          2600, MemActivityMB: 800, MemNoiseMB: 40, MemDriftStep: 0.001,
		Coupling: CoupleSqrt,
	}
	// FileInfra is a quiet infrastructure server (file/print/AD) with
	// stable moderate memory.
	FileInfra = Archetype{
		Name: "file-infra", Class: "batch",
		CPUBase: 0.015, DiurnalAmp: 0.25, WeekendDrop: 0.20, NoiseSigma: 0.20,
		BurstRate: 0.003, BurstScale: 3, BurstAlpha: 2.5, BurstMaxHours: 1,
		EventParticipation: 0.15,
		MemBaseMB:          1500, MemActivityMB: 200, MemNoiseMB: 30, MemDriftStep: 0.001,
		Coupling: CoupleSqrt,
	}
)
