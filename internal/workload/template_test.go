package workload

import (
	"testing"

	"vmwild/internal/analysis"
	"vmwild/internal/trace"
)

func TestFromTemplateValidation(t *testing.T) {
	tests := []struct {
		name string
		tpl  Template
	}{
		{name: "no name", tpl: Template{Servers: 10}},
		{name: "no servers", tpl: Template{Name: "x"}},
		{name: "bad web fraction", tpl: Template{Name: "x", Servers: 1, WebFraction: 1.5}},
		{name: "bad burstiness", tpl: Template{Name: "x", Servers: 1, Burstiness: -1}},
		{name: "tiny memory", tpl: Template{Name: "x", Servers: 1, MemoryFootprintMB: 1}},
		{name: "unknown hardware", tpl: Template{Name: "x", Servers: 1, Hardware: "mainframe"}},
		{name: "memory above hardware", tpl: Template{Name: "x", Servers: 1, Hardware: "small", MemoryFootprintMB: 5000}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromTemplate(tt.tpl); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestFromTemplateExpansion(t *testing.T) {
	p, err := FromTemplate(Template{Name: "custom", Servers: 60, WebFraction: 0.7, Burstiness: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("expanded profile invalid: %v", err)
	}
	if got := p.WebFraction(); got < 0.65 || got > 0.75 {
		t.Errorf("web fraction = %v, want ~0.7", got)
	}
	// All-web and all-batch templates drop the empty shares.
	allWeb, err := FromTemplate(Template{Name: "web", Servers: 10, WebFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := allWeb.WebFraction(); got != 1 {
		t.Errorf("all-web template web fraction = %v", got)
	}
	allBatch, err := FromTemplate(Template{Name: "batch", Servers: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := allBatch.WebFraction(); got != 0 {
		t.Errorf("all-batch template web fraction = %v", got)
	}
}

func TestFromTemplateKnobsShapeTheEstate(t *testing.T) {
	generateStats := func(tpl Template) (burstFrac, avgMemMB float64) {
		t.Helper()
		p, err := FromTemplate(tpl)
		if err != nil {
			t.Fatal(err)
		}
		set, err := Generate(p, MonitoringHours, DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		cov, err := analysis.CoVCDF(set, trace.CPU)
		if err != nil {
			t.Fatal(err)
		}
		var mem float64
		for _, st := range set.Servers {
			var sum float64
			for _, u := range st.Series.Samples {
				sum += u.Mem
			}
			mem += sum / float64(st.Series.Len())
		}
		return cov.FractionAbove(1), mem / float64(len(set.Servers))
	}

	calm, _ := generateStats(Template{Name: "calm", Servers: 60, WebFraction: 0.6, Burstiness: 0})
	wild, _ := generateStats(Template{Name: "wild", Servers: 60, WebFraction: 0.6, Burstiness: 1})
	if wild <= calm {
		t.Errorf("burstiness knob inert: heavy-tail fraction calm=%.2f wild=%.2f", calm, wild)
	}

	_, lean := generateStats(Template{Name: "lean", Servers: 60, WebFraction: 0.6, Burstiness: 0.5, MemoryFootprintMB: 1024})
	_, heavy := generateStats(Template{Name: "heavy", Servers: 60, WebFraction: 0.6, Burstiness: 0.5, MemoryFootprintMB: 8192})
	if heavy <= lean*2 {
		t.Errorf("memory knob inert: lean=%.0f MB heavy=%.0f MB", lean, heavy)
	}
	// The footprint lands in the target's neighbourhood.
	if lean < 400 || lean > 2500 {
		t.Errorf("lean footprint = %.0f MB, want near 1024", lean)
	}
}
