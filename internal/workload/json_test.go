package workload

import (
	"bytes"
	"strings"
	"testing"

	"vmwild/internal/catalog"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	for _, p := range Profiles() {
		t.Run(p.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteProfileJSON(&buf, p); err != nil {
				t.Fatal(err)
			}
			got, err := ReadProfileJSON(&buf, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != p.Name || got.Servers != p.Servers || got.Industry != p.Industry {
				t.Errorf("identity changed: %+v", got)
			}
			if len(got.Mix) != len(p.Mix) {
				t.Fatalf("mix length changed: %d vs %d", len(got.Mix), len(p.Mix))
			}
			for i := range got.Mix {
				if got.Mix[i].Archetype != p.Mix[i].Archetype {
					t.Errorf("share %d archetype changed", i)
				}
				if got.Mix[i].Weight != p.Mix[i].Weight {
					t.Errorf("share %d weight changed", i)
				}
				if len(got.Mix[i].Models) != len(p.Mix[i].Models) {
					t.Fatalf("share %d model count changed", i)
				}
				for j := range got.Mix[i].Models {
					if got.Mix[i].Models[j].Model.Name != p.Mix[i].Models[j].Model.Name {
						t.Errorf("share %d model %d changed", i, j)
					}
				}
			}
			if got.Events != p.Events {
				t.Errorf("events changed: %+v vs %+v", got.Events, p.Events)
			}

			// The round-tripped profile generates identical traces.
			a, err := Generate(p, 24, 9)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(got, 24, 9)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Servers {
				for h := range a.Servers[i].Series.Samples {
					if a.Servers[i].Series.Samples[h] != b.Servers[i].Series.Samples[h] {
						t.Fatalf("traces diverge after JSON round trip (server %d hour %d)", i, h)
					}
				}
			}
		})
	}
}

func TestReadProfileJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		json string
	}{
		{name: "malformed", json: "{nope"},
		{name: "unknown field", json: `{"name":"X","bogus":1}`},
		{name: "unknown model", json: `{"name":"X","servers":2,"mix":[{"archetype":{"Name":"w","CPUBase":0.1},"weight":1,"models":[{"model":"not-a-model","weight":1}]}]}`},
		{name: "invalid profile", json: `{"name":"X","servers":0,"mix":[]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadProfileJSON(strings.NewReader(tt.json), catalog.Default()); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestWriteProfileJSONRejectsInvalid(t *testing.T) {
	if err := WriteProfileJSON(&bytes.Buffer{}, &Profile{}); err == nil {
		t.Error("expected error for invalid profile")
	}
}
