package trace

import "errors"

// ServerID names a monitored server (a physical source server that becomes a
// VM candidate, or an already-virtual machine).
type ServerID string

// Spec is the resource capacity of a machine: CPU rating in RPE2 units and
// memory in MB.
type Spec struct {
	CPURPE2 float64
	MemMB   float64
}

// RatioPerGB returns the machine's CPU-to-memory capacity ratio in RPE2 per
// GB of RAM, the unit the paper uses when comparing aggregate demand against
// the HS23 reference blade (ratio 160).
func (s Spec) RatioPerGB() float64 {
	if s.MemMB <= 0 {
		return 0
	}
	return s.CPURPE2 / (s.MemMB / 1024)
}

// ServerTrace binds a server's identity, capacity and demand history. It is
// the unit of input to analysis and consolidation planning.
type ServerTrace struct {
	ID ServerID
	// Spec is the capacity of the source machine the trace was recorded
	// on; sizing never exceeds it.
	Spec Spec
	// App labels the application the server belongs to; servers of the
	// same application inherit the application's class.
	App string
	// Class is "web" or "batch" per the paper's loose two-way labeling.
	Class string
	// Series is the demand history.
	Series *Series
}

// Validate reports whether the server trace is internally consistent.
func (st *ServerTrace) Validate() error {
	switch {
	case st.ID == "":
		return errors.New("trace: server has empty ID")
	case st.Spec.CPURPE2 <= 0 || st.Spec.MemMB <= 0:
		return errors.New("trace: server spec must have positive capacities")
	case st.Series == nil || st.Series.Len() == 0:
		return errors.New("trace: server has no samples")
	}
	return nil
}

// Set is a collection of server traces sharing one sampling step — one data
// center's worth of monitored data.
type Set struct {
	// Name identifies the data center (for example "A" or "Banking").
	Name string
	// Servers holds one trace per monitored server.
	Servers []*ServerTrace
}

// Validate checks every member trace and that steps agree.
func (s *Set) Validate() error {
	if len(s.Servers) == 0 {
		return errors.New("trace: empty set")
	}
	step := s.Servers[0].Series.Step
	for _, st := range s.Servers {
		if err := st.Validate(); err != nil {
			return err
		}
		if st.Series.Step != step {
			return errors.New("trace: mixed sampling steps in set")
		}
	}
	return nil
}

// SeriesList extracts the demand series of every server, in order.
func (s *Set) SeriesList() []*Series {
	out := make([]*Series, len(s.Servers))
	for i, st := range s.Servers {
		out[i] = st.Series
	}
	return out
}

// SliceAll returns a copy of the set whose series are restricted to sample
// indices [from, to) — used to separate the monitoring horizon from the
// evaluation horizon.
func (s *Set) SliceAll(from, to int) (*Set, error) {
	out := &Set{Name: s.Name, Servers: make([]*ServerTrace, len(s.Servers))}
	for i, st := range s.Servers {
		sliced, err := st.Series.Slice(from, to)
		if err != nil {
			return nil, err
		}
		out.Servers[i] = &ServerTrace{ID: st.ID, Spec: st.Spec, App: st.App, Class: st.Class, Series: sliced}
	}
	return out, nil
}
