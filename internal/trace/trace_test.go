package trace

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"vmwild/internal/stats"
)

func hourly(samples ...Usage) *Series {
	s, err := NewSeries(time.Hour, samples)
	if err != nil {
		panic(err)
	}
	return s
}

func TestResourceString(t *testing.T) {
	if CPU.String() != "cpu" || Mem.String() != "mem" {
		t.Error("unexpected resource names")
	}
	if Resource(9).String() != "Resource(9)" {
		t.Error("unexpected fallback name")
	}
}

func TestUsageArithmetic(t *testing.T) {
	u := Usage{CPU: 1, Mem: 2}.Add(Usage{CPU: 3, Mem: 4})
	if u != (Usage{CPU: 4, Mem: 6}) {
		t.Errorf("Add = %+v", u)
	}
	if got := u.Scale(0.5); got != (Usage{CPU: 2, Mem: 3}) {
		t.Errorf("Scale = %+v", got)
	}
	if u.Get(CPU) != 4 || u.Get(Mem) != 6 {
		t.Error("Get returned wrong components")
	}
}

func TestNewSeriesRejectsBadStep(t *testing.T) {
	if _, err := NewSeries(0, nil); err == nil {
		t.Error("expected error for zero step")
	}
}

func TestSeriesValues(t *testing.T) {
	s := hourly(Usage{CPU: 1, Mem: 10}, Usage{CPU: 2, Mem: 20})
	cpu := s.Values(CPU)
	mem := s.Values(Mem)
	if cpu[0] != 1 || cpu[1] != 2 || mem[0] != 10 || mem[1] != 20 {
		t.Errorf("Values: cpu=%v mem=%v", cpu, mem)
	}
	if s.Duration() != 2*time.Hour {
		t.Errorf("Duration = %v", s.Duration())
	}
}

func TestSeriesSlice(t *testing.T) {
	s := hourly(Usage{CPU: 1}, Usage{CPU: 2}, Usage{CPU: 3})
	sub, err := s.Slice(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Samples[0].CPU != 2 {
		t.Errorf("Slice = %+v", sub.Samples)
	}
	if _, err := s.Slice(-1, 2); err == nil {
		t.Error("expected error for negative from")
	}
	if _, err := s.Slice(2, 1); err == nil {
		t.Error("expected error for inverted bounds")
	}
	if _, err := s.Slice(0, 4); err == nil {
		t.Error("expected error for to out of range")
	}
}

func TestResample(t *testing.T) {
	s := hourly(
		Usage{CPU: 1, Mem: 10}, Usage{CPU: 3, Mem: 30},
		Usage{CPU: 5, Mem: 50}, Usage{CPU: 7, Mem: 70},
		Usage{CPU: 9, Mem: 90},
	)
	r, err := s.Resample(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Step != 2*time.Hour {
		t.Errorf("Step = %v", r.Step)
	}
	want := []Usage{{CPU: 2, Mem: 20}, {CPU: 6, Mem: 60}, {CPU: 9, Mem: 90}}
	if len(r.Samples) != len(want) {
		t.Fatalf("got %d samples, want %d", len(r.Samples), len(want))
	}
	for i := range want {
		if r.Samples[i] != want[i] {
			t.Errorf("sample %d = %+v, want %+v", i, r.Samples[i], want[i])
		}
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("expected error for factor 0")
	}
	same, err := s.Resample(1)
	if err != nil || same.Len() != s.Len() {
		t.Error("factor 1 should be identity")
	}
}

func TestIntervals(t *testing.T) {
	s := hourly(Usage{CPU: 1}, Usage{CPU: 5}, Usage{CPU: 2}, Usage{CPU: 8}, Usage{CPU: 3})
	peaks, err := s.Intervals(2, CPU, stats.Max)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 8, 3}
	for i := range want {
		if peaks[i] != want[i] {
			t.Errorf("peaks = %v, want %v", peaks, want)
			break
		}
	}
	if _, err := s.Intervals(0, CPU, stats.Max); err == nil {
		t.Error("expected error for interval 0")
	}
}

func TestAggregate(t *testing.T) {
	a := hourly(Usage{CPU: 1, Mem: 1}, Usage{CPU: 2, Mem: 2}, Usage{CPU: 3, Mem: 3})
	b := hourly(Usage{CPU: 10, Mem: 10}, Usage{CPU: 20, Mem: 20})
	sum, err := Aggregate([]*Series{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Len() != 2 {
		t.Fatalf("aggregate length = %d, want shortest input 2", sum.Len())
	}
	if sum.Samples[1] != (Usage{CPU: 22, Mem: 22}) {
		t.Errorf("sample 1 = %+v", sum.Samples[1])
	}
	if _, err := Aggregate(nil); err == nil {
		t.Error("expected error for empty input")
	}
	c, _ := NewSeries(time.Minute, []Usage{{}})
	if _, err := Aggregate([]*Series{a, c}); err == nil {
		t.Error("expected error for mixed steps")
	}
}

func TestServerTraceValidate(t *testing.T) {
	good := &ServerTrace{
		ID:     "srv-1",
		Spec:   Spec{CPURPE2: 1000, MemMB: 32768},
		Series: hourly(Usage{CPU: 1, Mem: 1}),
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	tests := []struct {
		name string
		st   *ServerTrace
	}{
		{name: "empty id", st: &ServerTrace{Spec: good.Spec, Series: good.Series}},
		{name: "zero capacity", st: &ServerTrace{ID: "x", Series: good.Series}},
		{name: "no samples", st: &ServerTrace{ID: "x", Spec: good.Spec}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.st.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}

func TestSpecRatioPerGB(t *testing.T) {
	// HS23-class: ratio 160 RPE2 per GB with 128 GB.
	s := Spec{CPURPE2: 160 * 128, MemMB: 128 * 1024}
	if got := s.RatioPerGB(); math.Abs(got-160) > 1e-9 {
		t.Errorf("RatioPerGB = %v, want 160", got)
	}
	if (Spec{CPURPE2: 100}).RatioPerGB() != 0 {
		t.Error("zero-memory spec should have ratio 0")
	}
}

func TestSetValidateAndSlice(t *testing.T) {
	set := &Set{
		Name: "test",
		Servers: []*ServerTrace{
			{ID: "a", Spec: Spec{CPURPE2: 1, MemMB: 1}, Series: hourly(Usage{CPU: 1}, Usage{CPU: 2})},
			{ID: "b", Spec: Spec{CPURPE2: 1, MemMB: 1}, Series: hourly(Usage{CPU: 3}, Usage{CPU: 4})},
		},
	}
	if err := set.Validate(); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if got := len(set.SeriesList()); got != 2 {
		t.Errorf("SeriesList length = %d", got)
	}
	sub, err := set.SliceAll(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Servers[0].Series.Samples[0].CPU != 2 {
		t.Error("SliceAll did not slice")
	}
	if _, err := set.SliceAll(0, 5); err == nil {
		t.Error("expected error for out-of-range slice")
	}
	if err := (&Set{}).Validate(); err == nil {
		t.Error("empty set should fail validation")
	}
}

// Property: Resample with factor f preserves the total demand-hours up to
// rounding on the trailing partial group.
func TestQuickResamplePreservesMass(t *testing.T) {
	f := func(vals []uint16, factorRaw uint8) bool {
		factor := int(factorRaw%6) + 1
		n := len(vals) - len(vals)%factor // complete groups only
		if n == 0 {
			return true
		}
		samples := make([]Usage, n)
		var want float64
		for i := 0; i < n; i++ {
			samples[i] = Usage{CPU: float64(vals[i])}
			want += float64(vals[i])
		}
		s := hourly(samples...)
		r, err := s.Resample(factor)
		if err != nil {
			return false
		}
		var got float64
		for _, u := range r.Samples {
			got += u.CPU * float64(factor)
		}
		return math.Abs(got-want) < 1e-6*math.Max(1, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Aggregate of k copies of a series equals the series scaled by k.
func TestQuickAggregateLinear(t *testing.T) {
	f := func(vals []uint16, kRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		k := int(kRaw%4) + 1
		samples := make([]Usage, len(vals))
		for i, v := range vals {
			samples[i] = Usage{CPU: float64(v), Mem: float64(v) * 2}
		}
		s := hourly(samples...)
		copies := make([]*Series, k)
		for i := range copies {
			copies[i] = s
		}
		sum, err := Aggregate(copies)
		if err != nil {
			return false
		}
		for i, u := range sum.Samples {
			if math.Abs(u.CPU-float64(k)*samples[i].CPU) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
