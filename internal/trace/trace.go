// Package trace provides the time-series substrate of the vmwild library.
//
// A Series records the resource demand of one server (physical source server
// or virtual machine) as a sequence of equally spaced Usage samples. The
// paper's pipeline works on hourly averages over a 30-day monitoring horizon
// and a 14-day evaluation horizon; the monitoring substrate produces
// per-minute samples that are resampled to hourly ones.
//
// CPU demand is expressed in RPE2 units (the IDEAS Relative Performance
// Estimate v2 used by the paper) and memory demand in MB.
package trace

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Resource identifies one of the two resources the planners optimize.
// Network and disk are treated as placement constraints, not packed
// resources, exactly as in the paper (Section 3.1).
type Resource int

const (
	// CPU is compute demand in RPE2 units.
	CPU Resource = iota + 1
	// Mem is memory demand in MB.
	Mem
)

// String returns the resource name.
func (r Resource) String() string {
	switch r {
	case CPU:
		return "cpu"
	case Mem:
		return "mem"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Usage is one demand sample: CPU in RPE2 units, memory in MB.
type Usage struct {
	CPU float64
	Mem float64
}

// Add returns the element-wise sum of two usage samples.
func (u Usage) Add(v Usage) Usage {
	return Usage{CPU: u.CPU + v.CPU, Mem: u.Mem + v.Mem}
}

// Scale returns the usage multiplied by factor k on both resources.
func (u Usage) Scale(k float64) Usage {
	return Usage{CPU: u.CPU * k, Mem: u.Mem * k}
}

// Get returns the named resource component.
func (u Usage) Get(r Resource) float64 {
	if r == CPU {
		return u.CPU
	}
	return u.Mem
}

// Series is a fixed-step demand time series.
type Series struct {
	// Step is the sampling interval (one hour for warehouse data).
	Step time.Duration
	// Samples holds one Usage per step.
	Samples []Usage

	colMu sync.Mutex
	cols  [2][]float64 // cached per-resource columns; see Col
}

// NewSeries creates a series with the given step and samples. The samples
// slice is used directly (not copied); callers hand over ownership.
func NewSeries(step time.Duration, samples []Usage) (*Series, error) {
	if step <= 0 {
		return nil, errors.New("trace: step must be positive")
	}
	return &Series{Step: step, Samples: samples}, nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Duration returns the time covered by the series.
func (s *Series) Duration() time.Duration {
	return time.Duration(len(s.Samples)) * s.Step
}

// Values extracts one resource component as a flat slice. The slice is
// freshly allocated on every call; callers may mutate it. Read-only callers
// should prefer Col, which caches the column on the series.
func (s *Series) Values(r Resource) []float64 {
	out := make([]float64, len(s.Samples))
	for i, u := range s.Samples {
		out[i] = u.Get(r)
	}
	return out
}

// Col returns one resource component as a flat slice, cached on the series
// after the first call. The returned slice MUST be treated as read-only: it
// is shared between every caller (and across goroutines). Series samples are
// never mutated after construction anywhere in this module, so the cache is
// invalidated only defensively, by length.
func (s *Series) Col(r Resource) []float64 {
	i := 0
	if r == Mem {
		i = 1
	}
	s.colMu.Lock()
	col := s.cols[i]
	if len(col) != len(s.Samples) {
		col = make([]float64, len(s.Samples))
		for j, u := range s.Samples {
			col[j] = u.Get(r)
		}
		s.cols[i] = col
	}
	s.colMu.Unlock()
	return col
}

// Slice returns a view of samples [from, to) as a new Series sharing the
// underlying array. It returns an error when the bounds are invalid.
func (s *Series) Slice(from, to int) (*Series, error) {
	if from < 0 || to > len(s.Samples) || from > to {
		return nil, fmt.Errorf("trace: slice [%d,%d) out of range 0..%d", from, to, len(s.Samples))
	}
	return &Series{Step: s.Step, Samples: s.Samples[from:to]}, nil
}

// Resample aggregates groups of factor consecutive samples into one by
// averaging, producing a series with a step factor times larger. A trailing
// partial group is averaged over its actual length. This is how the
// warehouse converts per-minute agent samples to hourly averages.
func (s *Series) Resample(factor int) (*Series, error) {
	if factor < 1 {
		return nil, errors.New("trace: resample factor must be >= 1")
	}
	if factor == 1 {
		return &Series{Step: s.Step, Samples: s.Samples}, nil
	}
	n := (len(s.Samples) + factor - 1) / factor
	out := make([]Usage, 0, n)
	for i := 0; i < len(s.Samples); i += factor {
		end := i + factor
		if end > len(s.Samples) {
			end = len(s.Samples)
		}
		var sum Usage
		for _, u := range s.Samples[i:end] {
			sum = sum.Add(u)
		}
		out = append(out, sum.Scale(1/float64(end-i)))
	}
	return &Series{Step: s.Step * time.Duration(factor), Samples: out}, nil
}

// Intervals splits the series into consolidation intervals of n samples each
// and reduces every interval's values for resource r with f (for example
// stats.Max or stats.Mean). A trailing partial interval is reduced over the
// samples it has.
func (s *Series) Intervals(n int, r Resource, f func([]float64) float64) ([]float64, error) {
	return s.IntervalsInto(nil, n, r, f)
}

// IntervalsInto is Intervals appending into buf's backing storage (reused
// from buf[:0] when the capacity suffices) — for callers that reduce one
// server after another and do not retain the per-server slice.
func (s *Series) IntervalsInto(buf []float64, n int, r Resource, f func([]float64) float64) ([]float64, error) {
	if n < 1 {
		return nil, errors.New("trace: interval length must be >= 1")
	}
	vals := s.Col(r)
	out := buf[:0]
	for i := 0; i < len(vals); i += n {
		end := i + n
		if end > len(vals) {
			end = len(vals)
		}
		out = append(out, f(vals[i:end]))
	}
	return out, nil
}

// Aggregate returns the element-wise sum of a set of series. All series must
// share the same step; the result has the length of the shortest input.
func Aggregate(series []*Series) (*Series, error) {
	if len(series) == 0 {
		return nil, errors.New("trace: nothing to aggregate")
	}
	step := series[0].Step
	minLen := series[0].Len()
	for _, s := range series[1:] {
		if s.Step != step {
			return nil, fmt.Errorf("trace: mixed steps %v and %v", step, s.Step)
		}
		if s.Len() < minLen {
			minLen = s.Len()
		}
	}
	sum := make([]Usage, minLen)
	for _, s := range series {
		for i := 0; i < minLen; i++ {
			sum[i] = sum[i].Add(s.Samples[i])
		}
	}
	return &Series{Step: step, Samples: sum}, nil
}
