package trace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"
)

// roundTrip compresses, decodes, and demands bit-identity.
func roundTrip(t *testing.T, nanos []int64, cpu, mem []float64) *CompressedChunk {
	t.Helper()
	c, err := CompressChunk(nanos, cpu, mem)
	if err != nil {
		t.Fatalf("CompressChunk: %v", err)
	}
	gotN, gotC, gotM, err := c.AppendTo(nil, nil, nil)
	if err != nil {
		t.Fatalf("AppendTo: %v", err)
	}
	if len(gotN) != len(nanos) {
		t.Fatalf("decoded %d samples, want %d", len(gotN), len(nanos))
	}
	for i := range nanos {
		if gotN[i] != nanos[i] {
			t.Fatalf("ts[%d] = %d, want %d", i, gotN[i], nanos[i])
		}
		if math.Float64bits(gotC[i]) != math.Float64bits(cpu[i]) {
			t.Fatalf("cpu[%d] = %x, want %x", i, math.Float64bits(gotC[i]), math.Float64bits(cpu[i]))
		}
		if math.Float64bits(gotM[i]) != math.Float64bits(mem[i]) {
			t.Fatalf("mem[%d] = %x, want %x", i, math.Float64bits(gotM[i]), math.Float64bits(mem[i]))
		}
	}
	return c
}

func TestChunkRoundTripRegularCadence(t *testing.T) {
	const n = 4096
	base := time.Date(2012, 6, 4, 0, 0, 0, 0, time.UTC).UnixNano()
	nanos := make([]int64, n)
	cpu := make([]float64, n)
	mem := make([]float64, n)
	for i := range nanos {
		nanos[i] = base + int64(i)*int64(time.Minute)
		cpu[i] = 20 + 10*math.Sin(float64(i)/60)
		mem[i] = 4096
	}
	c := roundTrip(t, nanos, cpu, mem)
	// A steady cadence must compress the timestamp column to ~1 bit per
	// sample; the exact bound guards against silent codec regressions.
	if got, limit := len(c.ts), n/8+16; got > limit {
		t.Errorf("timestamp stream %d bytes for %d regular samples, want <= %d", got, n, limit)
	}
	// Constant memory compresses to ~1 bit per sample too.
	if got, limit := len(c.mem), n/8+24; got > limit {
		t.Errorf("constant mem stream %d bytes, want <= %d", got, limit)
	}
}

func TestChunkRoundTripHostileValues(t *testing.T) {
	nanos := []int64{0, 0, 1, 1, math.MaxInt64 / 2, math.MaxInt64 - 1}
	cpu := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), 5e-324}
	mem := []float64{math.MaxFloat64, -math.MaxFloat64, 1e300, -5e-324, 0, math.Float64frombits(0x7ff8000000000001)}
	roundTrip(t, nanos, cpu, mem)
}

func TestChunkRoundTripRandom(t *testing.T) {
	for _, seed := range []int64{20141208, 7, 3} {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2000)
		nanos := make([]int64, n)
		cpu := make([]float64, n)
		mem := make([]float64, n)
		ts := rng.Int63n(1 << 40)
		for i := range nanos {
			// Irregular cadence with duplicates and occasional huge gaps.
			switch rng.Intn(10) {
			case 0: // duplicate timestamp
			case 1:
				ts += rng.Int63n(int64(24 * time.Hour))
			default:
				ts += int64(time.Minute) + rng.Int63n(int64(time.Second)) - int64(time.Second)/2
			}
			nanos[i] = ts
			if rng.Intn(4) == 0 {
				cpu[i] = math.Float64frombits(rng.Uint64())
			} else {
				cpu[i] = rng.Float64() * 100
			}
			mem[i] = float64(rng.Intn(1 << 20))
		}
		roundTrip(t, nanos, cpu, mem)
	}
}

func TestChunkRoundTripSingleSample(t *testing.T) {
	c := roundTrip(t, []int64{42}, []float64{1.5}, []float64{-0.0})
	if c.FirstNanos() != 42 || c.LastNanos() != 42 || c.Count() != 1 {
		t.Fatalf("header = (%d, %d, %d), want (42, 42, 1)", c.FirstNanos(), c.LastNanos(), c.Count())
	}
}

func TestChunkAppendToExistingBuffers(t *testing.T) {
	a, _ := CompressChunk([]int64{1, 2}, []float64{1, 2}, []float64{3, 4})
	b, _ := CompressChunk([]int64{3, 4}, []float64{5, 6}, []float64{7, 8})
	nanos, cpu, mem, err := a.AppendTo(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	nanos, cpu, mem, err = b.AppendTo(nanos, cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	wantN := []int64{1, 2, 3, 4}
	wantC := []float64{1, 2, 5, 6}
	wantM := []float64{3, 4, 7, 8}
	for i := range wantN {
		if nanos[i] != wantN[i] || cpu[i] != wantC[i] || mem[i] != wantM[i] {
			t.Fatalf("concatenated decode[%d] = (%d, %v, %v), want (%d, %v, %v)",
				i, nanos[i], cpu[i], mem[i], wantN[i], wantC[i], wantM[i])
		}
	}
}

func TestChunkCompressRejects(t *testing.T) {
	if _, err := CompressChunk(nil, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := CompressChunk([]int64{1, 2}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := CompressChunk([]int64{2, 1}, []float64{0, 0}, []float64{0, 0}); err == nil {
		t.Error("decreasing timestamps accepted")
	}
}

func TestChunkOverlaps(t *testing.T) {
	c, _ := CompressChunk([]int64{100, 200}, []float64{0, 0}, []float64{0, 0})
	for _, tc := range []struct {
		from, to int64
		want     bool
	}{
		{0, 100, false},   // ends before the chunk
		{0, 101, true},    // touches the first sample
		{200, 300, true},  // starts at the last sample
		{201, 300, false}, // starts after the chunk
		{150, 160, true},  // inside
	} {
		if got := c.Overlaps(tc.from, tc.to); got != tc.want {
			t.Errorf("Overlaps(%d, %d) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestChunkMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	nanos := make([]int64, n)
	cpu := make([]float64, n)
	mem := make([]float64, n)
	ts := int64(0)
	for i := range nanos {
		ts += rng.Int63n(int64(time.Hour))
		nanos[i] = ts
		cpu[i] = rng.NormFloat64() * 50
		mem[i] = rng.NormFloat64() * 1e4
	}
	c, err := CompressChunk(nanos, cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	raw := c.MarshalBinary()
	d, err := UnmarshalChunk(raw)
	if err != nil {
		t.Fatalf("UnmarshalChunk: %v", err)
	}
	if d.Count() != c.Count() || d.FirstNanos() != c.FirstNanos() || d.LastNanos() != c.LastNanos() {
		t.Fatalf("header mismatch after round trip")
	}
	gotN, gotC, gotM, err := d.AppendTo(nil, nil, nil)
	if err != nil {
		t.Fatalf("decode after round trip: %v", err)
	}
	for i := range nanos {
		if gotN[i] != nanos[i] ||
			math.Float64bits(gotC[i]) != math.Float64bits(cpu[i]) ||
			math.Float64bits(gotM[i]) != math.Float64bits(mem[i]) {
			t.Fatalf("sample %d differs after marshal round trip", i)
		}
	}
}

func TestUnmarshalChunkRejects(t *testing.T) {
	c, _ := CompressChunk([]int64{1, 2, 3}, []float64{1, 2, 3}, []float64{4, 5, 6})
	raw := c.MarshalBinary()
	cases := map[string][]byte{
		"empty":         {},
		"bad version":   append([]byte{0x7f}, raw[1:]...),
		"truncated":     raw[:len(raw)-1],
		"trailing junk": append(bytes.Clone(raw), 0xaa),
	}
	for name, data := range cases {
		if _, err := UnmarshalChunk(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// FuzzGorillaDecode hardens the compressed-block decoder against arbitrary
// bytes: whatever arrives, UnmarshalChunk + AppendTo must return a typed
// error or a well-formed decode — never panic, never loop, never
// over-allocate. When the input happens to round-trip, the re-encoded
// chunk must decode identically.
func FuzzGorillaDecode(f *testing.F) {
	// Seed with well-formed chunks so coverage starts inside the decoder.
	small, _ := CompressChunk([]int64{1}, []float64{0}, []float64{0})
	f.Add(small.MarshalBinary())
	nanos := make([]int64, 300)
	cpu := make([]float64, 300)
	mem := make([]float64, 300)
	rng := rand.New(rand.NewSource(20141208))
	for i := range nanos {
		nanos[i] = int64(i) * int64(time.Minute)
		cpu[i] = rng.Float64() * 100
		mem[i] = math.Float64frombits(rng.Uint64())
	}
	big, _ := CompressChunk(nanos, cpu, mem)
	f.Add(big.MarshalBinary())
	f.Add([]byte{chunkVersion, 0x01})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalChunk(data)
		if err != nil {
			return
		}
		gotN, gotC, gotM, err := c.AppendTo(nil, nil, nil)
		if err != nil {
			return
		}
		if len(gotN) != c.Count() || len(gotC) != c.Count() || len(gotM) != c.Count() {
			t.Fatalf("decode produced %d/%d/%d samples for count %d",
				len(gotN), len(gotC), len(gotM), c.Count())
		}
		// A successful decode must satisfy the header's contract.
		if gotN[0] != c.FirstNanos() || gotN[len(gotN)-1] != c.LastNanos() {
			t.Fatalf("decoded range [%d, %d] contradicts header [%d, %d]",
				gotN[0], gotN[len(gotN)-1], c.FirstNanos(), c.LastNanos())
		}
		for i := 1; i < len(gotN); i++ {
			if gotN[i] < gotN[i-1] {
				t.Fatalf("decoded timestamps decrease at %d", i)
			}
		}
		// Round-trip: re-encoding the decode must reproduce it exactly.
		re, err := CompressChunk(gotN, gotC, gotM)
		if err != nil {
			t.Fatalf("re-encode of a valid decode failed: %v", err)
		}
		reN, reC, reM, err := re.AppendTo(nil, nil, nil)
		if err != nil {
			t.Fatalf("decode of re-encode failed: %v", err)
		}
		for i := range gotN {
			if reN[i] != gotN[i] ||
				math.Float64bits(reC[i]) != math.Float64bits(gotC[i]) ||
				math.Float64bits(reM[i]) != math.Float64bits(gotM[i]) {
				t.Fatalf("re-encode round trip diverges at sample %d", i)
			}
		}
	})
}
