package trace

// Gorilla-style lossless compression for the warehouse's hot columns
// (timestamp, cpu, mem), after Facebook's in-memory TSDB: timestamps are
// delta-of-delta coded (a regular collection cadence costs one bit per
// sample) and float values are XOR coded against their predecessor (a
// repeated or slowly moving value costs one bit, a changed value only its
// meaningful mantissa bits). The codec is exact — decode reproduces the
// input bit for bit, NaN payloads and negative zeros included — which is
// what lets compressed read replicas answer queries bitwise-identically to
// the raw columns.
//
// Data is framed in immutable chunks of bounded sample count. Each chunk
// is independently decodable and carries its covering time range in the
// header, so readers can skip chunks that cannot intersect a query window
// without touching the bitstreams.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// chunkVersion tags the serialized chunk layout.
const chunkVersion = 0x01

// MaxChunkSamples bounds one chunk's sample count; CompressChunk refuses
// more and UnmarshalChunk rejects headers claiming more (a fuzz guard: a
// corrupt count must not buy unbounded allocation or decode work).
const MaxChunkSamples = 1 << 16

var (
	errChunkEmpty    = errors.New("trace: compress: no samples")
	errChunkLens     = errors.New("trace: compress: column lengths differ")
	errChunkOrder    = errors.New("trace: compress: timestamps decrease")
	errChunkTooBig   = fmt.Errorf("trace: compress: more than %d samples", MaxChunkSamples)
	errChunkCorrupt  = errors.New("trace: chunk corrupt")
	errChunkTrunc    = errors.New("trace: chunk truncated")
	errChunkVersion  = errors.New("trace: chunk version unsupported")
	errChunkDecodeTS = errors.New("trace: chunk timestamp stream corrupt")
)

// CompressedChunk is one immutable compressed run of the three hot columns.
// The zero value is not usable; build chunks with CompressChunk or
// UnmarshalChunk.
type CompressedChunk struct {
	count      int
	firstNanos int64
	lastNanos  int64
	ts         []byte // delta-of-delta bitstream (first timestamp in header)
	cpu        []byte // XOR bitstream
	mem        []byte // XOR bitstream
}

// Count reports how many samples the chunk holds.
func (c *CompressedChunk) Count() int { return c.count }

// FirstNanos is the first (earliest) timestamp in the chunk, unix nanos.
func (c *CompressedChunk) FirstNanos() int64 { return c.firstNanos }

// LastNanos is the last (latest) timestamp in the chunk, unix nanos.
func (c *CompressedChunk) LastNanos() int64 { return c.lastNanos }

// CompressedBytes is the chunk's bitstream footprint (excluding the small
// fixed header) — the numerator of the compression-ratio metric.
func (c *CompressedChunk) CompressedBytes() int {
	return len(c.ts) + len(c.cpu) + len(c.mem)
}

// Overlaps reports whether the chunk can contain samples in [fromNanos,
// toNanos). Readers use it to skip chunks without decoding them.
func (c *CompressedChunk) Overlaps(fromNanos, toNanos int64) bool {
	return c.lastNanos >= fromNanos && c.firstNanos < toNanos
}

// CompressChunk compresses parallel columns into one chunk. Timestamps
// must be non-decreasing (the warehouse keeps its columns timestamp-
// sorted); values may be anything representable in a float64.
func CompressChunk(nanos []int64, cpu, mem []float64) (*CompressedChunk, error) {
	n := len(nanos)
	if n == 0 {
		return nil, errChunkEmpty
	}
	if len(cpu) != n || len(mem) != n {
		return nil, errChunkLens
	}
	if n > MaxChunkSamples {
		return nil, errChunkTooBig
	}

	var tw bitWriter
	prevTS := nanos[0]
	prevDelta := int64(0)
	for i := 1; i < n; i++ {
		if nanos[i] < prevTS {
			return nil, errChunkOrder
		}
		delta := nanos[i] - prevTS
		tw.writeDoD(delta - prevDelta)
		prevTS, prevDelta = nanos[i], delta
	}

	return &CompressedChunk{
		count:      n,
		firstNanos: nanos[0],
		lastNanos:  nanos[n-1],
		ts:         tw.finish(),
		cpu:        compressFloats(cpu),
		mem:        compressFloats(mem),
	}, nil
}

// AppendTo decodes the chunk, appending its samples to the given column
// buffers (any of which may be nil). It returns the grown slices. A chunk
// built by CompressChunk always decodes; a chunk deserialized from bytes
// may fail with a typed error if the streams are truncated or inconsistent
// with the header — never with a panic.
func (c *CompressedChunk) AppendTo(nanos []int64, cpu, mem []float64) ([]int64, []float64, []float64, error) {
	if c.count <= 0 || c.count > MaxChunkSamples {
		return nanos, cpu, mem, errChunkCorrupt
	}
	baseN, baseC, baseM := len(nanos), len(cpu), len(mem)
	nanos = slicesGrow(nanos, c.count)
	tr := bitReader{b: c.ts}
	prevTS, prevDelta := c.firstNanos, int64(0)
	nanos = append(nanos, prevTS)
	for i := 1; i < c.count; i++ {
		dod, ok := tr.readDoD()
		if !ok {
			return nanos[:baseN], cpu, mem, errChunkTrunc
		}
		prevDelta += dod
		if prevDelta < 0 {
			return nanos[:baseN], cpu, mem, errChunkDecodeTS
		}
		next := prevTS + prevDelta
		if next < prevTS { // int64 overflow
			return nanos[:baseN], cpu, mem, errChunkDecodeTS
		}
		prevTS = next
		nanos = append(nanos, prevTS)
	}
	if prevTS != c.lastNanos {
		return nanos[:baseN], cpu, mem, errChunkDecodeTS
	}
	var err error
	if cpu, err = appendFloats(cpu, c.cpu, c.count); err != nil {
		return nanos[:baseN], cpu[:baseC], mem, err
	}
	if mem, err = appendFloats(mem, c.mem, c.count); err != nil {
		return nanos[:baseN], cpu[:baseC], mem[:baseM], err
	}
	return nanos, cpu, mem, nil
}

// MarshalBinary serializes the chunk (version, count, time range, stream
// lengths, streams) — the at-rest form future storage tiers and the fuzz
// harness consume.
func (c *CompressedChunk) MarshalBinary() []byte {
	out := make([]byte, 0, 32+c.CompressedBytes())
	out = append(out, chunkVersion)
	out = binary.AppendUvarint(out, uint64(c.count))
	out = binary.AppendVarint(out, c.firstNanos)
	out = binary.AppendVarint(out, c.lastNanos-c.firstNanos)
	out = binary.AppendUvarint(out, uint64(len(c.ts)))
	out = binary.AppendUvarint(out, uint64(len(c.cpu)))
	out = binary.AppendUvarint(out, uint64(len(c.mem)))
	out = append(out, c.ts...)
	out = append(out, c.cpu...)
	out = append(out, c.mem...)
	return out
}

// UnmarshalChunk deserializes a chunk written by MarshalBinary. Structural
// damage (bad version, impossible count, short streams) is reported as a
// typed error; bitstream damage inside plausible bounds surfaces later,
// from AppendTo.
func UnmarshalChunk(data []byte) (*CompressedChunk, error) {
	if len(data) < 1 || data[0] != chunkVersion {
		return nil, errChunkVersion
	}
	rest := data[1:]
	readUvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	readVarint := func() (int64, bool) {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	count, ok := readUvarint()
	if !ok || count == 0 || count > MaxChunkSamples {
		return nil, errChunkCorrupt
	}
	first, ok := readVarint()
	if !ok {
		return nil, errChunkTrunc
	}
	span, ok := readVarint()
	if !ok || span < 0 {
		return nil, errChunkCorrupt
	}
	last := first + span
	var lens [3]uint64
	for i := range lens {
		if lens[i], ok = readUvarint(); !ok {
			return nil, errChunkTrunc
		}
	}
	total := lens[0] + lens[1] + lens[2]
	if total != uint64(len(rest)) {
		return nil, errChunkTrunc
	}
	c := &CompressedChunk{
		count:      int(count),
		firstNanos: first,
		lastNanos:  last,
		ts:         rest[:lens[0]],
		cpu:        rest[lens[0] : lens[0]+lens[1]],
		mem:        rest[lens[0]+lens[1]:],
	}
	return c, nil
}

// slicesGrow ensures room for n more elements without changing length.
func slicesGrow(s []int64, n int) []int64 {
	if cap(s)-len(s) >= n {
		return s
	}
	out := make([]int64, len(s), len(s)+n)
	copy(out, s)
	return out
}

// compressFloats XOR-codes one float column.
func compressFloats(vals []float64) []byte {
	var w bitWriter
	prev := math.Float64bits(vals[0])
	w.writeBits(prev, 64)
	// The "window" is the (leading, trailing) zero-bit frame of the last
	// explicitly coded XOR; while successive XORs fit it, each costs only
	// its meaningful bits plus a two-bit control code.
	winLZ, winSig := -1, 0
	for _, v := range vals[1:] {
		b := math.Float64bits(v)
		xor := b ^ prev
		prev = b
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		lz := bits.LeadingZeros64(xor)
		tz := bits.TrailingZeros64(xor)
		sig := 64 - lz - tz
		if winLZ >= 0 {
			winTZ := 64 - winLZ - winSig
			if lz >= winLZ && tz >= winTZ {
				// Fits the open window: '10' + the window's bits.
				w.writeBits(0b10, 2)
				w.writeBits(xor>>uint(winTZ), uint(winSig))
				continue
			}
		}
		// New window: '11' + 6 bits leading + 6 bits (sig-1) + sig bits.
		w.writeBits(0b11, 2)
		w.writeBits(uint64(lz), 6)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>uint(tz), uint(sig))
		winLZ, winSig = lz, sig
	}
	return w.finish()
}

// appendFloats decodes one XOR stream of count values into out.
func appendFloats(out []float64, stream []byte, count int) ([]float64, error) {
	base := len(out)
	if cap(out)-base < count {
		grown := make([]float64, base, base+count)
		copy(grown, out)
		out = grown
	}
	r := bitReader{b: stream}
	prev, ok := r.readBits(64)
	if !ok {
		return out, errChunkTrunc
	}
	out = append(out, math.Float64frombits(prev))
	winLZ, winSig := -1, 0
	for i := 1; i < count; i++ {
		ctrl, ok := r.readBit()
		if !ok {
			return out[:base], errChunkTrunc
		}
		if ctrl == 0 {
			out = append(out, math.Float64frombits(prev))
			continue
		}
		newWin, ok := r.readBit()
		if !ok {
			return out[:base], errChunkTrunc
		}
		if newWin == 1 {
			hdr, ok := r.readBits(12)
			if !ok {
				return out[:base], errChunkTrunc
			}
			winLZ = int(hdr >> 6)
			winSig = int(hdr&0x3f) + 1
		} else if winLZ < 0 {
			// '10' before any window was opened: corrupt stream.
			return out[:base], errChunkCorrupt
		}
		winTZ := 64 - winLZ - winSig
		if winTZ < 0 {
			return out[:base], errChunkCorrupt
		}
		mant, ok := r.readBits(uint(winSig))
		if !ok {
			return out[:base], errChunkTrunc
		}
		prev ^= mant << uint(winTZ)
		out = append(out, math.Float64frombits(prev))
	}
	return out, nil
}

// writeDoD encodes one delta-of-delta with nanosecond-scale buckets:
// 0 costs one bit (a steady cadence), jitter up to ±8 µs costs 16, up to
// ±2 min costs 31, up to ±100 days costs 48, and anything else 68.
func (w *bitWriter) writeDoD(dod int64) {
	z := uint64(dod<<1) ^ uint64(dod>>63) // zigzag
	switch {
	case z == 0:
		w.writeBit(0)
	case z < 1<<14:
		w.writeBits(0b10, 2)
		w.writeBits(z, 14)
	case z < 1<<28:
		w.writeBits(0b110, 3)
		w.writeBits(z, 28)
	case z < 1<<44:
		w.writeBits(0b1110, 4)
		w.writeBits(z, 44)
	default:
		w.writeBits(0b1111, 4)
		w.writeBits(z, 64)
	}
}

// readDoD decodes one delta-of-delta.
func (r *bitReader) readDoD() (int64, bool) {
	b, ok := r.readBit()
	if !ok {
		return 0, false
	}
	if b == 0 {
		return 0, true
	}
	width := uint(0)
	for _, n := range [3]uint{14, 28, 44} {
		b, ok = r.readBit()
		if !ok {
			return 0, false
		}
		if b == 0 {
			width = n
			break
		}
	}
	if width == 0 {
		width = 64
	}
	z, ok := r.readBits(width)
	if !ok {
		return 0, false
	}
	return int64(z>>1) ^ -int64(z&1), true // un-zigzag
}

// bitWriter packs MSB-first bits into a byte slice through a 64-bit
// accumulator (word-at-a-time, not bit-at-a-time — the codec sits on the
// replica publish path).
type bitWriter struct {
	b   []byte
	acc uint64 // pending bits, MSB-aligned
	n   uint   // valid bits in acc
}

func (w *bitWriter) writeBit(bit uint64) { w.writeBits(bit, 1) }

// writeBits appends the low n bits of v, MSB first. n must be in [1, 64].
func (w *bitWriter) writeBits(v uint64, n uint) {
	if n < 64 {
		v &= 1<<n - 1
	}
	v <<= 64 - n // left-align
	if w.n+n < 64 {
		w.acc |= v >> w.n
		w.n += n
		return
	}
	take := 64 - w.n
	w.acc |= v >> w.n
	w.b = binary.BigEndian.AppendUint64(w.b, w.acc)
	w.acc = v << take // take == 64 shifts to zero, per Go shift semantics
	w.n = n - take
}

// finish flushes the partial tail and returns the stream. The writer must
// not be reused afterwards.
func (w *bitWriter) finish() []byte {
	for i := uint(0); i < w.n; i += 8 {
		w.b = append(w.b, byte(w.acc>>(56-i)))
	}
	w.acc, w.n = 0, 0
	return w.b
}

// bitReader consumes MSB-first bits from a byte slice.
type bitReader struct {
	b   []byte
	pos int
	acc uint64 // upcoming bits, MSB-aligned
	n   uint   // valid bits in acc
}

func (r *bitReader) fill() {
	for r.n <= 56 && r.pos < len(r.b) {
		r.acc |= uint64(r.b[r.pos]) << (56 - r.n)
		r.pos++
		r.n += 8
	}
}

func (r *bitReader) readBit() (uint64, bool) {
	if r.n == 0 {
		r.fill()
		if r.n == 0 {
			return 0, false
		}
	}
	v := r.acc >> 63
	r.acc <<= 1
	r.n--
	return v, true
}

// readBits reads n bits MSB-first. n must be in [1, 64].
func (r *bitReader) readBits(n uint) (uint64, bool) {
	if r.n < n {
		r.fill()
	}
	if n <= r.n {
		v := r.acc >> (64 - n)
		r.acc <<= n // n == 64 shifts to zero, per Go shift semantics
		r.n -= n
		return v, true
	}
	// fill tops the accumulator up only to 63 bits, so an unaligned read
	// of more than 56 bits can land here with bytes still unread: take
	// what is buffered, refill, take the rest.
	if r.pos >= len(r.b) {
		return 0, false
	}
	have := r.n
	hi := r.acc >> (64 - have)
	r.acc, r.n = 0, 0
	r.fill()
	rem := n - have // <= 7: have is at least 57 when bytes remained
	if r.n < rem {
		return 0, false
	}
	lo := r.acc >> (64 - rem)
	r.acc <<= rem
	r.n -= rem
	return hi<<rem | lo, true
}
