package report

import (
	"strings"
	"testing"

	"vmwild/internal/stats"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", 1)
	tbl.AddRow("beta", 2.5)
	tbl.AddRow("gamma", "text")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "2.500", "text", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title + header + separator + 3 rows
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestTableRenderNoColumns(t *testing.T) {
	if err := (&Table{}).Render(&strings.Builder{}); err == nil {
		t.Error("expected error for table without columns")
	}
}

func TestFormatCell(t *testing.T) {
	tests := []struct {
		give any
		want string
	}{
		{give: "s", want: "s"},
		{give: 42, want: "42"},
		{give: 1.5, want: "1.500"},
		{give: 12345.6, want: "12346"},
		{give: 0.0001234, want: "0.000123"},
		{give: float32(2), want: "2.000"},
		{give: true, want: "true"},
		{give: 0.0, want: "0.000"},
	}
	for _, tt := range tests {
		if got := formatCell(tt.give); got != tt.want {
			t.Errorf("formatCell(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestCDFTable(t *testing.T) {
	c1, err := stats.NewCDF([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := stats.NewCDF([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := CDFTable("curves", []float64{0.5, 1}, map[string]*stats.CDF{"a": c1, "b": c2}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"p50", "p100", "3.000", "20.000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Order must follow the order argument.
	if strings.Index(out, "a") > strings.Index(out, "b ") {
		t.Error("curve order not respected")
	}
	if _, err := CDFTable("x", nil, nil, nil); err == nil {
		t.Error("expected error for empty curves")
	}
	if _, err := CDFTable("x", nil, map[string]*stats.CDF{"a": c1}, []string{"missing"}); err == nil {
		t.Error("expected error for unknown curve name")
	}
}
