// Package report renders experiment results as aligned text tables and
// CDF tabulations for the CLI tools and the benchmark harness.
package report

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vmwild/internal/stats"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are stringified with %v, floats with 3
// significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	if len(t.Columns) == 0 {
		return errors.New("report: table has no columns")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	case int:
		return strconv.Itoa(v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

func formatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a != 0 && a < 0.01:
		return strconv.FormatFloat(v, 'g', 3, 64)
	case a < 100:
		return strconv.FormatFloat(v, 'f', 3, 64)
	default:
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
}

// CDFTable tabulates one or more named CDFs at the given cumulative
// probabilities — the text rendering of the paper's CDF figures.
func CDFTable(title string, quantiles []float64, curves map[string]*stats.CDF, order []string) (*Table, error) {
	if len(curves) == 0 {
		return nil, errors.New("report: no curves")
	}
	cols := make([]string, 0, len(quantiles)+1)
	cols = append(cols, "series")
	for _, q := range quantiles {
		cols = append(cols, fmt.Sprintf("p%g", q*100))
	}
	t := NewTable(title, cols...)
	names := order
	if len(names) == 0 {
		for name := range curves {
			names = append(names, name)
		}
	}
	for _, name := range names {
		c, ok := curves[name]
		if !ok {
			return nil, fmt.Errorf("report: unknown curve %q", name)
		}
		cells := make([]any, 0, len(quantiles)+1)
		cells = append(cells, name)
		for _, q := range quantiles {
			cells = append(cells, c.Quantile(q))
		}
		t.AddRow(cells...)
	}
	return t, nil
}

// DefaultQuantiles are the tabulation points used for CDF figures.
var DefaultQuantiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 1.0}
