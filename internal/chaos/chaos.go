// Package chaos is a deterministic in-process TCP fault proxy: it sits
// between the monitoring plane's clients (agents, query clients) and its
// servers (warehouse, query server) and degrades the wire the way real
// networks do during migration-heavy intervals — added latency and jitter,
// throttled bandwidth, slow-loris dribble, mid-stream resets, byte
// corruption, truncation, and full partitions that heal on command.
//
// Every fault decision is a pure function of (seed, connection, direction,
// chunk): the proxy never holds a shared random stream, so the same seed
// reproduces the same fault schedule per connection regardless of how
// goroutines interleave. This is the internal/fault identity-addressing
// discipline applied to the network itself. What is NOT deterministic is
// how the kernel batches bytes into reads, so byte-exact fault positions
// vary across runs; the chaos wall therefore asserts invariants that must
// hold under every realization (exact accounting, bit-identical surviving
// aggregates), never exact fault counts.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vmwild/internal/stats"
)

// Config parameterizes the proxy. The zero value forwards bytes
// transparently.
type Config struct {
	// Seed roots every fault decision; the same seed draws the same fault
	// schedule for the same (connection, direction, chunk) identity.
	Seed int64

	// Latency delays every forwarded chunk (one-way, per chunk).
	Latency time.Duration
	// Jitter widens Latency by a seeded uniform draw in [0, Jitter).
	Jitter time.Duration
	// BandwidthBPS throttles forwarding to roughly this many bytes per
	// second per direction (0 = unthrottled).
	BandwidthBPS int
	// DribbleBytes caps how many bytes one forwarded chunk carries — the
	// slow-loris shape: a frame arrives as many tiny paced writes instead
	// of one. 0 forwards whatever one read returned.
	DribbleBytes int

	// ResetProb is the per-chunk probability that the connection is cut
	// mid-stream (both directions), as an RST or a dying middlebox would.
	ResetProb float64
	// CorruptProb is the per-chunk probability that one byte of the chunk
	// is flipped before forwarding.
	CorruptProb float64
	// TruncateProb is the per-chunk probability that the chunk's tail is
	// dropped and the connection cut right after — a mid-frame FIN.
	TruncateProb float64
}

func (c Config) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ResetProb", c.ResetProb},
		{"CorruptProb", c.CorruptProb},
		{"TruncateProb", c.TruncateProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.BandwidthBPS < 0 || c.DribbleBytes < 0 || c.Latency < 0 || c.Jitter < 0 {
		return errors.New("chaos: negative latency, jitter, bandwidth or dribble")
	}
	return nil
}

// Stats counts what the proxy did to the traffic. Counts are cumulative
// since New.
type Stats struct {
	// Conns is how many client connections were accepted (including ones
	// refused service during a partition).
	Conns int64
	// PartitionRefused is how many accepted connections were cut
	// immediately because the network was partitioned.
	PartitionRefused int64
	// Resets is how many connections were cut mid-stream by ResetProb.
	Resets int64
	// CorruptedChunks is how many chunks had a byte flipped.
	CorruptedChunks int64
	// TruncatedChunks is how many chunks lost their tail (and their
	// connection).
	TruncatedChunks int64
	// BytesIn / BytesOut are the payload bytes forwarded client→upstream
	// and upstream→client after faults were applied.
	BytesIn  int64
	BytesOut int64
}

// Proxy is one listener forwarding to one upstream address through the
// fault model.
type Proxy struct {
	cfg      Config
	upstream string

	lis      net.Listener
	wg       sync.WaitGroup
	shutdown chan struct{}

	partitioned atomic.Bool
	connSeq     atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	stats struct {
		conns, refused, resets atomic.Int64
		corrupted, truncated   atomic.Int64
		bytesIn, bytesOut      atomic.Int64
	}
}

// New validates the configuration and builds a proxy targeting upstream.
func New(cfg Config, upstream string) (*Proxy, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if upstream == "" {
		return nil, errors.New("chaos: empty upstream address")
	}
	return &Proxy{
		cfg:      cfg,
		upstream: upstream,
		shutdown: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Listen starts accepting client connections on addr (use "127.0.0.1:0"
// for an ephemeral port) and returns the bound address clients should dial
// instead of the upstream.
func (p *Proxy) Listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("chaos: listen: %w", err)
	}
	p.lis = lis
	p.wg.Add(1)
	go p.acceptLoop()
	return lis.Addr().String(), nil
}

// Partition cuts the network: every live connection is severed and new
// connections are accepted but immediately cut (the client sees a dial
// that succeeds and then dies, the way a blackholed route behaves under
// TCP timeouts compressed to zero).
func (p *Proxy) Partition() {
	p.partitioned.Store(true)
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Heal lifts a partition; new connections flow again.
func (p *Proxy) Heal() { p.partitioned.Store(false) }

// Partitioned reports whether the network is currently cut.
func (p *Proxy) Partitioned() bool { return p.partitioned.Load() }

// Stats returns the cumulative fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:            p.stats.conns.Load(),
		PartitionRefused: p.stats.refused.Load(),
		Resets:           p.stats.resets.Load(),
		CorruptedChunks:  p.stats.corrupted.Load(),
		TruncatedChunks:  p.stats.truncated.Load(),
		BytesIn:          p.stats.bytesIn.Load(),
		BytesOut:         p.stats.bytesOut.Load(),
	}
}

// Close stops the listener and severs every live connection.
func (p *Proxy) Close() error {
	select {
	case <-p.shutdown:
		return nil
	default:
	}
	close(p.shutdown)
	var err error
	if p.lis != nil {
		err = p.lis.Close()
	}
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.lis.Accept()
		if err != nil {
			select {
			case <-p.shutdown:
				return
			case <-time.After(5 * time.Millisecond):
				continue
			}
		}
		p.stats.conns.Add(1)
		if p.partitioned.Load() {
			p.stats.refused.Add(1)
			conn.Close()
			continue
		}
		id := p.connSeq.Add(1)
		p.wg.Add(1)
		go p.serve(conn, id)
	}
}

// track registers c for severing on Partition/Close; the returned func
// unregisters it.
func (p *Proxy) track(c net.Conn) func() {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

func (p *Proxy) serve(client net.Conn, id int64) {
	defer p.wg.Done()
	defer client.Close()
	untrackClient := p.track(client)
	defer untrackClient()

	up, err := net.DialTimeout("tcp", p.upstream, 10*time.Second)
	if err != nil {
		return
	}
	defer up.Close()
	untrackUp := p.track(up)
	defer untrackUp()

	// cut severs both directions at once; a reset in either pump must not
	// leave the other half-draining a dead peer.
	var once sync.Once
	cut := func() {
		once.Do(func() {
			client.Close()
			up.Close()
		})
	}

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() {
		defer pumps.Done()
		p.pump(client, up, id, "in", &p.stats.bytesIn, cut)
	}()
	go func() {
		defer pumps.Done()
		p.pump(up, client, id, "out", &p.stats.bytesOut, cut)
	}()
	pumps.Wait()
}

// draw maps a (direction, connection, chunk) identity to a deterministic
// uniform in [0, 1).
func (p *Proxy) draw(kind, dir string, conn, chunk int64) float64 {
	s := stats.Split(p.cfg.Seed, kind, dir, strconv.FormatInt(conn, 10), strconv.FormatInt(chunk, 10))
	return float64(s) / (1 << 63)
}

// pump forwards src→dst one chunk at a time through the fault model until
// either side dies. dir distinguishes the two directions of one connection
// so their fault schedules are independent.
func (p *Proxy) pump(src, dst net.Conn, id int64, dir string, volume *atomic.Int64, cut func()) {
	// A clean EOF propagates the FIN and leaves the reverse direction
	// draining (a query response or an ack may still be in flight); every
	// other exit severs both directions.
	clean := false
	defer func() {
		if !clean {
			cut()
		}
	}()
	chunkSize := 32 * 1024
	if p.cfg.DribbleBytes > 0 && p.cfg.DribbleBytes < chunkSize {
		chunkSize = p.cfg.DribbleBytes
	}
	buf := make([]byte, chunkSize)
	for chunk := int64(0); ; chunk++ {
		n, err := src.Read(buf)
		if n > 0 {
			b := buf[:n]
			if p.cfg.ResetProb > 0 && p.draw("reset", dir, id, chunk) < p.cfg.ResetProb {
				p.stats.resets.Add(1)
				return
			}
			truncated := false
			if p.cfg.TruncateProb > 0 && p.draw("truncate", dir, id, chunk) < p.cfg.TruncateProb {
				// Keep a seeded prefix (possibly empty) and cut the
				// connection right after it — a mid-frame FIN.
				keep := int(p.draw("truncate-len", dir, id, chunk) * float64(n))
				b = b[:keep]
				truncated = true
				p.stats.truncated.Add(1)
			}
			if len(b) > 0 && p.cfg.CorruptProb > 0 && p.draw("corrupt", dir, id, chunk) < p.cfg.CorruptProb {
				i := int(p.draw("corrupt-pos", dir, id, chunk) * float64(len(b)))
				flip := byte(1 + int(p.draw("corrupt-bit", dir, id, chunk)*255))
				b[i] ^= flip
				p.stats.corrupted.Add(1)
			}
			p.sleepFor(len(b), dir, id, chunk)
			if len(b) > 0 {
				if _, err := dst.Write(b); err != nil {
					return
				}
				volume.Add(int64(len(b)))
			}
			if truncated {
				return
			}
		}
		if err != nil {
			if err != io.EOF {
				return
			}
			// Half-close: propagate the FIN so line-oriented peers see a
			// clean end of stream, then let the other pump drain.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite() //nolint:errcheck
				clean = true
			} else {
				dst.Close()
			}
			return
		}
	}
}

// sleepFor applies latency, jitter and bandwidth pacing for one chunk,
// returning early if the proxy shuts down.
func (p *Proxy) sleepFor(n int, dir string, id, chunk int64) {
	d := p.cfg.Latency
	if p.cfg.Jitter > 0 {
		d += time.Duration(p.draw("jitter", dir, id, chunk) * float64(p.cfg.Jitter))
	}
	if p.cfg.BandwidthBPS > 0 && n > 0 {
		d += time.Duration(float64(n) / float64(p.cfg.BandwidthBPS) * float64(time.Second))
	}
	if d <= 0 {
		return
	}
	select {
	case <-p.shutdown:
	case <-time.After(d):
	}
}
