package chaos

import (
	"bytes"
	"crypto/rand"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections and echoes every byte back until the
// client closes its write side.
func echoServer(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c) //nolint:errcheck
			}(conn)
		}
	}()
	return lis.Addr().String()
}

func newProxyT(t *testing.T, cfg Config, upstream string) (*Proxy, string) {
	t.Helper()
	p, err := New(cfg, upstream)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, addr
}

// roundTrip writes payload through addr and reads the echo back.
func roundTrip(t *testing.T, addr string, payload []byte) ([]byte, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if _, err := conn.Write(payload); err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite() //nolint:errcheck
	}
	return io.ReadAll(conn)
}

func TestTransparentForwarding(t *testing.T) {
	up := echoServer(t)
	_, addr := newProxyT(t, Config{Seed: 1}, up)

	payload := make([]byte, 256*1024)
	if _, err := rand.Read(payload); err != nil {
		t.Fatal(err)
	}
	got, err := roundTrip(t, addr, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("zero-config proxy altered the stream: %d bytes in, %d out", len(payload), len(got))
	}
}

func TestDribbleAndLatencyPreserveBytes(t *testing.T) {
	up := echoServer(t)
	p, addr := newProxyT(t, Config{
		Seed:         7,
		Latency:      100 * time.Microsecond,
		Jitter:       100 * time.Microsecond,
		DribbleBytes: 64,
		BandwidthBPS: 4 << 20,
	}, up)

	payload := make([]byte, 8*1024)
	if _, err := rand.Read(payload); err != nil {
		t.Fatal(err)
	}
	got, err := roundTrip(t, addr, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("dribble/latency faults must delay bytes, never change them")
	}
	if st := p.Stats(); st.BytesIn < int64(len(payload)) {
		t.Fatalf("proxy counted %d bytes in, want >= %d", st.BytesIn, len(payload))
	}
}

func TestPartitionSeversAndHeals(t *testing.T) {
	up := echoServer(t)
	p, addr := newProxyT(t, Config{Seed: 3}, up)

	// A healthy round trip first.
	if _, err := roundTrip(t, addr, []byte("hello")); err != nil {
		t.Fatalf("pre-partition round trip: %v", err)
	}

	p.Partition()
	if !p.Partitioned() {
		t.Fatal("Partitioned() false after Partition()")
	}
	// During the partition a dial may succeed (the listener is up) but no
	// data ever comes back.
	if got, err := roundTrip(t, addr, []byte("lost")); err == nil && len(got) > 0 {
		t.Fatalf("partitioned proxy echoed %q", got)
	}

	p.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := roundTrip(t, addr, []byte("back"))
		if err == nil && bytes.Equal(got, []byte("back")) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("proxy never recovered after heal: got %q, err %v", got, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := p.Stats(); st.PartitionRefused == 0 {
		t.Error("partition never refused a connection")
	}
}

// TestPartitionSeversLiveConns proves an established connection dies when
// the partition starts, instead of lingering half-usable.
func TestPartitionSeversLiveConns(t *testing.T) {
	up := echoServer(t)
	p, addr := newProxyT(t, Config{Seed: 3}, up)

	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}

	p.Partition()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("read on a partitioned connection succeeded")
	}
}

// TestFaultsFire drives enough chunks through an aggressive config that
// every probabilistic fault class triggers, and confirms the client
// observes failures rather than silent corruption-free success.
func TestFaultsFire(t *testing.T) {
	up := echoServer(t)
	p, addr := newProxyT(t, Config{
		Seed:         20141208,
		DribbleBytes: 128,
		ResetProb:    0.05,
		CorruptProb:  0.2,
		TruncateProb: 0.05,
	}, up)

	payload := make([]byte, 16*1024)
	if _, err := rand.Read(payload); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Errors and short/corrupted echoes are expected; the point is
			// volume through the fault path.
			roundTrip(t, addr, payload) //nolint:errcheck
		}()
	}
	wg.Wait()

	st := p.Stats()
	if st.CorruptedChunks == 0 {
		t.Error("no chunk was ever corrupted at p=0.2")
	}
	if st.Resets+st.TruncatedChunks == 0 {
		t.Error("no connection was ever reset or truncated")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{ResetProb: 1.5}, "x:1"); err == nil {
		t.Error("ResetProb > 1 accepted")
	}
	if _, err := New(Config{Latency: -time.Second}, "x:1"); err == nil {
		t.Error("negative latency accepted")
	}
	if _, err := New(Config{}, ""); err == nil {
		t.Error("empty upstream accepted")
	}
}
