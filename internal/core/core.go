// Package core implements the paper's consolidation planners on top of the
// substrate packages: Static, vanilla SemiStatic, Stochastic (PCP-style)
// and Dynamic consolidation (Section 5.1), wired together through the
// Monitor -> Predict -> Size -> Place -> Execute flow of Section 2.1.
//
// All planners consume a monitoring trace set (the most recent 30 days of
// hourly warehouse data) and produce a Plan: the number of servers to
// provision and an emulator schedule describing which VM runs where at each
// hour of the 14-day evaluation window.
package core

import (
	"errors"
	"fmt"

	"vmwild/internal/catalog"
	"vmwild/internal/constraints"
	"vmwild/internal/emulator"
	"vmwild/internal/migration"
	"vmwild/internal/placement"
	"vmwild/internal/predict"
	"vmwild/internal/trace"
)

// Defaults from Table 3 of the paper.
const (
	// DefaultIntervalHours is the dynamic consolidation interval.
	DefaultIntervalHours = 2
	// DefaultBound is the host utilization bound for dynamic
	// consolidation: 1 minus the 20% live-migration reservation.
	DefaultBound = 1 - migration.DefaultReservation
	// DefaultBodyPercentile is the PCP body sizing percentile.
	DefaultBodyPercentile = 90
)

// Input carries everything a planner needs.
type Input struct {
	// Monitoring is the planning window (30 days of hourly data).
	Monitoring *trace.Set
	// Evaluation is the replay window (14 days). The dynamic planner
	// walks forward through it, re-planning each interval from history
	// only; semi-static planners never look at it.
	Evaluation *trace.Set
	// Host is the target host model (HS23-class by default).
	Host catalog.Model
	// Bound is the usable host fraction for dynamic consolidation in
	// (0, 1]; zero selects DefaultBound. Semi-static variants always
	// pack to full capacity — they need no live-migration headroom.
	Bound float64
	// IntervalHours is the dynamic consolidation interval; zero selects
	// DefaultIntervalHours.
	IntervalHours int
	// Constraints veto placements for all planners.
	Constraints constraints.Set
	// BodyPercentile is the PCP body percentile; zero selects
	// DefaultBodyPercentile.
	BodyPercentile float64
	// MaxAvgCorr, when positive, makes the stochastic packer refuse
	// hosts whose average correlation with the candidate VM exceeds it.
	MaxAvgCorr float64
	// ClusterCorrelation makes the stochastic packer approximate
	// pairwise correlations by cluster medoids — O(k^2) instead of
	// O(n^2) series correlations, the practical choice for estates of
	// thousands of servers.
	ClusterCorrelation bool
	// CPUPredictor and MemPredictor size dynamic intervals; nil selects
	// the default combined recent-peak/time-of-day predictor.
	CPUPredictor predict.Predictor
	MemPredictor predict.Predictor
	// OracleSizing sizes each dynamic interval at the actual realized
	// peak instead of a prediction — the clairvoyant upper bound that
	// isolates prediction error from packing effects in ablations. Never
	// available in production.
	OracleSizing bool
	// Demands, when non-nil, supplies the dynamic planner's walk-forward
	// sizing precomputed by SizeDynamicDemands, letting many plans over
	// the same traces (different bounds, host models, mechanisms) share
	// one prediction pass. It must have been computed from the same trace
	// sets, predictors and interval as this input; Dynamic.Plan verifies
	// the structural parts (interval, sizing mode, server identity) and
	// trusts the caller for the rest. Other planners ignore it.
	Demands *DemandMatrix
	// Histories, when non-nil, supplies the concatenated per-server
	// demand columns that SizeDynamicDemands otherwise rebuilds on every
	// call, precomputed by BuildDemandHistories from the same monitoring
	// and evaluation sets.
	// The histories depend only on the trace sets — not on predictors,
	// interval or sizing mode — so one build serves every demand key of a
	// data center. SizeDynamicDemands verifies server identity and
	// monitoring length; results are byte-identical with or without it.
	Histories *DemandHistories
	// Correlations, when non-nil, supplies the stochastic planner's
	// pairwise interval-peak correlation function precomputed by
	// NewSharedCorrelation, letting plans over the same monitoring set
	// (different host models, percentiles, correlation caps) share one
	// peak-vector pass and one memo cache. It must have been built from
	// this input's Monitoring set and interval. Ignored when
	// ClusterCorrelation is set; other planners ignore it.
	Correlations placement.CorrFunc
	// CorrIndex supplies the same correlations as Correlations through
	// dense integer indices (a *CorrTable), letting the packer skip two
	// string hashes per probe. Takes precedence over Correlations; values
	// must agree. Ignored when ClusterCorrelation is set.
	CorrIndex placement.CorrIndexer
	// Envelopes, when non-nil, supplies the stochastic planner's body/tail
	// envelope items precomputed over this input's Monitoring set at its
	// body percentile (SizeEnvelope is deterministic, so precomputed items
	// equal inline ones). The planner adopts them only when they cover
	// exactly the monitoring servers in order; other planners ignore them.
	Envelopes []placement.Item
	// DisableIncremental turns off this package's incremental fast paths:
	// the packers fall back to their retained naive reference kernels and
	// the dynamic adapter re-derives every evacuation attempt from scratch
	// instead of reusing cross-interval failure certificates and scratch
	// buffers. The output is byte-identical either way (enforced by
	// TestIncrementalEquivalence); the switch exists to prove exactly
	// that, and as an escape hatch.
	DisableIncremental bool
	// PlanOnly tells the dynamic planner to skip the per-interval
	// placement snapshots and leave Plan.Schedule nil — for plan-only
	// cells (sensitivity sweeps) that read Provisioned and the migration
	// counters but never replay the schedule. Counters are unaffected.
	PlanOnly bool
}

func (in *Input) validate() error {
	if in.Monitoring == nil || len(in.Monitoring.Servers) == 0 {
		return errors.New("core: no monitoring data")
	}
	if in.Host.Spec.CPURPE2 <= 0 || in.Host.Spec.MemMB <= 0 {
		return errors.New("core: host model has no capacity")
	}
	if in.Bound < 0 || in.Bound > 1 {
		return fmt.Errorf("core: bound %v outside [0, 1]", in.Bound)
	}
	return nil
}

func (in *Input) bound() float64 {
	if in.Bound == 0 {
		return DefaultBound
	}
	return in.Bound
}

func (in *Input) intervalHours() int {
	if in.IntervalHours == 0 {
		return DefaultIntervalHours
	}
	return in.IntervalHours
}

func (in *Input) bodyPercentile() float64 {
	if in.BodyPercentile == 0 {
		return DefaultBodyPercentile
	}
	return in.BodyPercentile
}

func (in *Input) rackSize() int {
	if in.Host.BladesPerRack > 0 {
		return in.Host.BladesPerRack
	}
	return 14
}

// Plan is a planner's output.
type Plan struct {
	// Planner names the algorithm that produced the plan.
	Planner string
	// Provisioned is how many servers must be owned: for semi-static
	// plans the packed host count, for dynamic plans the maximum number
	// of simultaneously active hosts across all intervals.
	Provisioned int
	// Schedule drives the emulator replay.
	Schedule emulator.Schedule
	// Migrations is the total number of VM moves the dynamic plan
	// performs across the window (zero for semi-static plans).
	Migrations int
	// MigrationDataMB is the memory volume those moves transfer.
	MigrationDataMB float64
}

// Planner produces a consolidation plan from monitored data.
type Planner interface {
	Name() string
	Plan(in Input) (*Plan, error)
}
