package core

import (
	"testing"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/constraints"
	"vmwild/internal/emulator"
	"vmwild/internal/trace"
)

// testHost is a small host so unit tests need few VMs to fill it.
var testHost = catalog.Model{
	Name:          "test-host",
	Spec:          trace.Spec{CPURPE2: 1000, MemMB: 10000},
	IdleWatts:     100,
	PeakWatts:     200,
	BladesPerRack: 4,
}

// mkServer builds a server whose CPU series is cpu and whose memory is flat.
func mkServer(id string, mem float64, cpu []float64) *trace.ServerTrace {
	samples := make([]trace.Usage, len(cpu))
	for i, c := range cpu {
		samples[i] = trace.Usage{CPU: c, Mem: mem}
	}
	s, err := trace.NewSeries(time.Hour, samples)
	if err != nil {
		panic(err)
	}
	return &trace.ServerTrace{
		ID:     trace.ServerID(id),
		Spec:   trace.Spec{CPURPE2: 1000, MemMB: 8000},
		Series: s,
	}
}

// repeat builds a series that repeats pattern for n cycles.
func repeat(pattern []float64, cycles int) []float64 {
	out := make([]float64, 0, len(pattern)*cycles)
	for i := 0; i < cycles; i++ {
		out = append(out, pattern...)
	}
	return out
}

// splitInput builds an Input whose monitoring window is the first monHours
// of each server and whose evaluation window is the rest.
func splitInput(t *testing.T, monHours int, servers ...*trace.ServerTrace) Input {
	t.Helper()
	set := &trace.Set{Name: "test", Servers: servers}
	mon, err := set.SliceAll(0, monHours)
	if err != nil {
		t.Fatal(err)
	}
	eval, err := set.SliceAll(monHours, servers[0].Series.Len())
	if err != nil {
		t.Fatal(err)
	}
	return Input{Monitoring: mon, Evaluation: eval, Host: testHost}
}

func TestSemiStaticPlan(t *testing.T) {
	// Two VMs peaking at 600 CPU cannot share a 1000-CPU host.
	day := []float64{100, 200, 600, 100}
	in := splitInput(t, 8,
		mkServer("a", 1000, repeat(day, 4)),
		mkServer("b", 1000, repeat(day, 4)),
	)
	plan, err := (SemiStatic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Provisioned != 2 {
		t.Errorf("Provisioned = %d, want 2 (peak sizing forbids sharing)", plan.Provisioned)
	}
	if plan.Migrations != 0 {
		t.Error("semi-static plans never migrate")
	}
	if _, ok := plan.Schedule.(emulator.StaticSchedule); !ok {
		t.Errorf("schedule type = %T, want StaticSchedule", plan.Schedule)
	}
}

func TestStaticPlanAddsHeadroom(t *testing.T) {
	// One VM peaking at 450: semi-static fits two on a host (900), the
	// static planner's 1.25 headroom (562 each) does not.
	day := []float64{100, 450, 100, 100}
	servers := []*trace.ServerTrace{
		mkServer("a", 1000, repeat(day, 4)),
		mkServer("b", 1000, repeat(day, 4)),
	}
	in := splitInput(t, 8, servers...)
	semi, err := (SemiStatic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	static, err := (Static{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if semi.Provisioned != 1 {
		t.Errorf("semi-static = %d hosts, want 1", semi.Provisioned)
	}
	if static.Provisioned != 2 {
		t.Errorf("static = %d hosts, want 2 with lifetime headroom", static.Provisioned)
	}
}

func TestStochasticPoolsUncorrelatedTails(t *testing.T) {
	// Two anti-phased workloads: body 100, tail buffer 500 (peak 600),
	// never peaking together. Stochastic pools the tails
	// (200 + sqrt(2)*500 = 907 <= 1000) onto one host; vanilla peak
	// sizing (600+600) needs two.
	patA := []float64{600, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100}
	patB := []float64{100, 100, 100, 100, 100, 100, 600, 100, 100, 100, 100, 100}
	in := splitInput(t, 36, mkServer("a", 1000, repeat(patA, 4)), mkServer("b", 1000, repeat(patB, 4)))

	vanilla, err := (SemiStatic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	stoch, err := (Stochastic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if vanilla.Provisioned != 2 {
		t.Errorf("vanilla = %d hosts, want 2", vanilla.Provisioned)
	}
	if stoch.Provisioned != 1 {
		t.Errorf("stochastic = %d hosts, want 1 for anti-correlated tails", stoch.Provisioned)
	}
}

func TestStochasticRespectsCorrelatedTails(t *testing.T) {
	// Two perfectly correlated workloads (identical phase) with pooled
	// tails that would fit if independent (200 + sqrt(2)*500 = 907) but
	// not when summed (200 + 1000 > 1000).
	day := []float64{600, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100}
	in := splitInput(t, 36,
		mkServer("a", 1000, repeat(day, 4)),
		mkServer("b", 1000, repeat(day, 4)),
	)
	stoch, err := (Stochastic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if stoch.Provisioned != 2 {
		t.Errorf("stochastic = %d hosts, want 2 for correlated tails", stoch.Provisioned)
	}
}

func TestDynamicConsolidatesQuietIntervals(t *testing.T) {
	// Workloads busy only in daytime hours; dynamic packs the night onto
	// fewer hosts than its own daytime peak.
	day := []float64{50, 50, 50, 50, 50, 50, 50, 50, 600, 600, 600, 600, 600, 600, 50, 50, 50, 50, 50, 50, 50, 50, 50, 50}
	servers := []*trace.ServerTrace{
		mkServer("a", 1000, repeat(day, 10)),
		mkServer("b", 1000, repeat(day, 10)),
		mkServer("c", 1000, repeat(day, 10)),
	}
	in := splitInput(t, 24*8, servers...)
	plan, err := (Dynamic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Provisioned < 2 {
		t.Errorf("Provisioned = %d, want >= 2 at daytime peak (3 x 600 CPU at bound 0.8)", plan.Provisioned)
	}
	sched, ok := plan.Schedule.(emulator.IntervalSchedule)
	if !ok {
		t.Fatalf("schedule type = %T", plan.Schedule)
	}
	minActive := plan.Provisioned
	for _, p := range sched.Placements {
		if a := p.ActiveHosts(); a < minActive {
			minActive = a
		}
	}
	if minActive >= plan.Provisioned {
		t.Errorf("dynamic never consolidated below its peak of %d hosts", plan.Provisioned)
	}
	if plan.Migrations == 0 {
		t.Error("dynamic with a diurnal workload must migrate")
	}
	if plan.MigrationDataMB <= 0 {
		t.Error("migrations must account data volume")
	}
}

func TestDynamicRespectsConstraints(t *testing.T) {
	day := []float64{50, 50, 600, 50}
	servers := []*trace.ServerTrace{
		mkServer("a", 1000, repeat(day, 48)),
		mkServer("b", 1000, repeat(day, 48)),
	}
	in := splitInput(t, 96, servers...)
	in.Constraints = constraints.Set{constraints.AntiAffinity{Group: []trace.ServerID{"a", "b"}}}
	plan, err := (Dynamic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	sched := plan.Schedule.(emulator.IntervalSchedule)
	for i, p := range sched.Placements {
		ha, _ := p.HostOf("a")
		hb, _ := p.HostOf("b")
		if ha == hb {
			t.Fatalf("interval %d: anti-affine VMs share host %s", i, ha)
		}
	}
}

func TestDynamicBoundSensitivity(t *testing.T) {
	day := []float64{50, 50, 300, 500, 300, 50, 50, 50}
	servers := make([]*trace.ServerTrace, 6)
	for i := range servers {
		servers[i] = mkServer(string(rune('a'+i)), 1000, repeat(day, 24))
	}
	in := splitInput(t, 96, servers...)
	prev := 0
	for _, bound := range []float64{0.6, 0.8, 1.0} {
		in.Bound = bound
		plan, err := (Dynamic{}).Plan(in)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 && plan.Provisioned > prev {
			t.Errorf("provisioned hosts increased from %d to %d as bound grew to %v", prev, plan.Provisioned, bound)
		}
		prev = plan.Provisioned
	}
}

func TestPlannerInputValidation(t *testing.T) {
	if _, err := (SemiStatic{}).Plan(Input{}); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := (Stochastic{}).Plan(Input{}); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := (Dynamic{}).Plan(Input{}); err == nil {
		t.Error("expected error for empty input")
	}
	// Dynamic needs an evaluation window.
	day := []float64{1, 2, 3, 4}
	in := splitInput(t, 8, mkServer("a", 100, repeat(day, 4)))
	in.Evaluation = nil
	if _, err := (Dynamic{}).Plan(in); err == nil {
		t.Error("expected error for missing evaluation window")
	}
}

func TestDefaults(t *testing.T) {
	var in Input
	if in.bound() != 0.8 {
		t.Errorf("default bound = %v, want 0.8 (Table 3)", in.bound())
	}
	if in.intervalHours() != 2 {
		t.Errorf("default interval = %d, want 2 (Table 3)", in.intervalHours())
	}
	if in.bodyPercentile() != 90 {
		t.Errorf("default body percentile = %v, want 90 (Section 5.1)", in.bodyPercentile())
	}
	if DefaultCPUPredictor().Name() == "" || DefaultMemPredictor().Name() == "" {
		t.Error("default predictors must have names")
	}
}

func TestPlannerNames(t *testing.T) {
	for _, p := range []Planner{Static{}, SemiStatic{}, Stochastic{}, Dynamic{}} {
		if p.Name() == "" {
			t.Errorf("%T has no name", p)
		}
	}
}

func TestStochasticClusterCorrelation(t *testing.T) {
	// The medoid-proxy correlation must produce a valid plan whose host
	// count is in the same ballpark as the exact all-pairs computation.
	day := []float64{600, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100, 100}
	night := []float64{100, 100, 100, 100, 100, 100, 600, 100, 100, 100, 100, 100}
	servers := []*trace.ServerTrace{
		mkServer("d1", 1000, repeat(day, 4)),
		mkServer("d2", 1000, repeat(day, 4)),
		mkServer("n1", 1000, repeat(night, 4)),
		mkServer("n2", 1000, repeat(night, 4)),
	}
	in := splitInput(t, 36, servers...)
	exact, err := (Stochastic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	in.ClusterCorrelation = true
	proxy, err := (Stochastic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if proxy.Provisioned <= 0 {
		t.Fatal("cluster-correlation plan provisioned nothing")
	}
	diff := proxy.Provisioned - exact.Provisioned
	if diff < -1 || diff > 1 {
		t.Errorf("cluster proxy hosts %d diverge from exact %d", proxy.Provisioned, exact.Provisioned)
	}
}

func TestDynamicOracleSizing(t *testing.T) {
	// The clairvoyant variant never under-provisions and never needs the
	// prediction headroom, so it provisions at most as many hosts as the
	// predictive planner and suffers no contention from sizing error.
	day := []float64{50, 50, 400, 600, 200, 50, 50, 50}
	servers := make([]*trace.ServerTrace, 5)
	for i := range servers {
		servers[i] = mkServer(string(rune('a'+i)), 1000, repeat(day, 24))
	}
	in := splitInput(t, 96, servers...)
	predictive, err := (Dynamic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	in.OracleSizing = true
	oracle, err := (Dynamic{}).Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Provisioned > predictive.Provisioned {
		t.Errorf("oracle provisioned %d hosts, predictive %d: clairvoyance cannot cost hosts",
			oracle.Provisioned, predictive.Provisioned)
	}
}
