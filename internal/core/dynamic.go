package core

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"vmwild/internal/emulator"
	"vmwild/internal/placement"
	"vmwild/internal/predict"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// Dynamic is the dynamic consolidation planner (Section 5.1): every
// consolidation interval (2 hours by default) it re-sizes each VM to its
// predicted peak demand for the interval, then adapts the placement with
// the cheapest actions that fix overloads and the evacuations that free
// whole hosts, counting every live migration it orders. A fraction of every
// host (1 - Bound, 20% by default) stays reserved for the live migrations
// themselves — Observation 4's price of admission.
//
// The planner walks forward through the evaluation window using only
// history available at each decision point; the gap between its predicted
// peaks and the realized demand is what produces the contention the
// emulator later measures (Figures 8, 9, 11).
type Dynamic struct{}

// Name implements Planner.
func (Dynamic) Name() string { return "dynamic" }

// evacuationHeadroom keeps a little slack when consolidating onto fewer
// hosts, so the next interval's growth does not immediately re-trigger
// migrations (anti-thrash hysteresis).
const evacuationHeadroom = 0.97

// Plan implements Planner.
func (Dynamic) Plan(in Input) (*Plan, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if in.Evaluation == nil || len(in.Evaluation.Servers) == 0 {
		return nil, errors.New("dynamic: no evaluation window to plan over")
	}
	if len(in.Evaluation.Servers) != len(in.Monitoring.Servers) {
		return nil, errors.New("dynamic: monitoring and evaluation sets differ in servers")
	}

	interval := in.intervalHours()
	evalHours := in.Evaluation.Servers[0].Series.Len()
	intervals := evalHours / interval
	if intervals < 1 {
		return nil, fmt.Errorf("dynamic: evaluation window of %d hours is shorter than one interval", evalHours)
	}

	// The Predict + Size steps either come precomputed (shared across
	// plans by experiments.Context) or run inline; both paths execute
	// SizeDynamicDemands, so the resulting reservations are identical.
	m := in.Demands
	if m == nil {
		var err error
		m, err = SizeDynamicDemands(in)
		if err != nil {
			return nil, err
		}
	} else if err := m.compatible(in, interval, intervals); err != nil {
		return nil, err
	}

	n := len(in.Monitoring.Servers)
	plan := &Plan{Planner: "dynamic"}
	adapter, err := NewAdapter(in)
	if err != nil {
		return nil, err
	}
	placements := make([]*placement.Placement, 0, intervals)
	items := make([]placement.Item, n)
	for k := 0; k < intervals; k++ {
		row := m.Demands[k]
		for i := 0; i < n; i++ {
			items[i] = placement.Item{ID: m.IDs[i], Demand: row[i]}
		}

		step, err := adapter.Step(items)
		if err != nil {
			return nil, fmt.Errorf("dynamic: interval %d: %w", k, err)
		}
		plan.Migrations += step.Migrations
		plan.MigrationDataMB += step.MigrationDataMB
		if step.ActiveHosts > plan.Provisioned {
			plan.Provisioned = step.ActiveHosts
		}
		snap, err := adapter.Snapshot()
		if err != nil {
			return nil, err
		}
		placements = append(placements, snap)
	}
	plan.Schedule = emulator.IntervalSchedule{IntervalHours: interval, Placements: placements}
	return plan, nil
}

// DefaultCPUPredictor is the dynamic planner's CPU sizing estimator: the
// larger of the most recent interval's peak and the same interval's peak
// over the previous week, with 10% headroom. Sizing at the weekly
// time-of-day envelope is what a production planner that must bound SLA
// risk does; it still under-predicts record-setting demand surges, which is
// where the contention of Figures 8-9 comes from.
func DefaultCPUPredictor() predict.Predictor {
	return predict.Combined{
		Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 1},
			predict.Periodic{Days: 7, SamplesPerDay: 24},
		},
		Headroom: 1.10,
	}
}

// DefaultMemPredictor is the memory analogue with smaller headroom —
// memory demand is an order of magnitude less bursty (Observation 2).
func DefaultMemPredictor() predict.Predictor {
	return predict.Combined{
		Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 1},
			predict.Periodic{Days: 3, SamplesPerDay: 24},
		},
		Headroom: 1.05,
	}
}

// repairOverloads migrates VMs off hosts whose resized demand exceeds the
// utilization bound, cheapest (smallest-memory) VMs first, preferring the
// most-loaded feasible target so the packing stays tight. Returns the moves
// made and the memory they transferred.
func repairOverloads(p *placement.Placement, in Input) (int, float64, error) {
	var (
		moves  int
		dataMB float64
	)
	for _, hostID := range p.Overloaded() {
		hi := p.HostIndex(hostID)
		// Candidate order: cheapest migrations first. Demands do not
		// change during the repair, so the items and sort keys are read
		// once up front instead of inside the comparator.
		onHost := p.VMsAt(hi)
		cands := make([]placement.Item, len(onHost))
		for i, vm := range onHost {
			cands[i], _ = p.Item(vm)
		}
		slices.SortFunc(cands, func(a, b placement.Item) int {
			if c := cmp.Compare(a.Demand.Mem, b.Demand.Mem); c != 0 {
				return c
			}
			return cmp.Compare(a.ID, b.ID)
		})
		cap := p.Capacity()
		for _, it := range cands {
			used := p.UsedAt(hi)
			if used.CPU <= cap.CPU+1e-9 && used.Mem <= cap.Mem+1e-9 {
				break
			}
			target := pickTarget(p, hi, it, in)
			if target == "" {
				// Power a previously freed host back on before
				// racking a new one.
				for i, h := range p.Hosts() {
					if i != hi && len(p.VMsAt(i)) == 0 && in.Constraints.Permits(it.ID, h.ID, p) == nil {
						target = h.ID
						break
					}
				}
			}
			if target == "" {
				h := p.OpenHost()
				if in.Constraints.Permits(it.ID, h.ID, p) != nil {
					continue
				}
				target = h.ID
			}
			if _, err := p.Remove(it.ID); err != nil {
				return moves, dataMB, err
			}
			if err := p.Assign(it, target); err != nil {
				return moves, dataMB, err
			}
			moves++
			dataMB += it.Demand.Mem
		}
		used := p.UsedAt(hi)
		if used.CPU > cap.CPU+1e-9 || used.Mem > cap.Mem+1e-9 {
			return moves, dataMB, fmt.Errorf("host %s cannot be repaired within constraints", hostID)
		}
	}
	return moves, dataMB, nil
}

// pickTarget returns the most-loaded other host that fits the item and
// passes constraints, or "" if none. exclude is the host's index in Hosts().
func pickTarget(p *placement.Placement, exclude int, it placement.Item, in Input) string {
	var (
		best     string
		bestLoad = -1.0
	)
	cap := p.Capacity()
	for i, h := range p.Hosts() {
		if i == exclude || len(p.VMsAt(i)) == 0 {
			continue
		}
		if !p.FitsAt(i, it.Demand) {
			continue
		}
		if in.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		u := p.UsedAt(i)
		load := max(u.CPU/cap.CPU, u.Mem/cap.Mem)
		if load > bestLoad {
			bestLoad, best = load, h.ID
		}
	}
	return best
}

// consolidate evacuates lightly loaded hosts whose VMs all fit elsewhere
// (with hysteresis headroom), switching the freed hosts off. Hosts are
// tried emptiest-first.
func consolidate(p *placement.Placement, in Input) (int, float64) {
	cap := p.Capacity()
	limit := sizing.Demand{CPU: cap.CPU * evacuationHeadroom, Mem: cap.Mem * evacuationHeadroom}
	// Loads are snapshotted before sorting (the placement is not mutated
	// while the order is established, so precomputing reads the same
	// values the comparator used to).
	type candidate struct {
		id   string
		idx  int
		load float64
	}
	active := make([]candidate, 0, len(p.Hosts()))
	for i, h := range p.Hosts() {
		if len(p.VMsAt(i)) > 0 {
			u := p.UsedAt(i)
			active = append(active, candidate{id: h.ID, idx: i, load: max(u.CPU/cap.CPU, u.Mem/cap.Mem)})
		}
	}
	slices.SortFunc(active, func(a, b candidate) int {
		if c := cmp.Compare(a.load, b.load); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})

	var (
		moves  int
		dataMB float64
	)
	// The sorted target list is a function of the placement state, which
	// only changes when an evacuation succeeds — most attempts fail, so
	// the list (and its O(n log n) sort) is rebuilt on success instead of
	// per source host. Dropping the source from a copy preserves relative
	// order, so every attempt sees exactly the list a fresh build would
	// produce.
	allTargets := evacTargets(p, limit)
	scratch := make([]evacTarget, 0, len(allTargets))
	for _, cand := range active {
		src := cand.id
		vms := append([]trace.ServerID(nil), p.VMsAt(cand.idx)...)
		if len(vms) == 0 {
			continue
		}
		scratch = scratch[:0]
		for _, t := range allTargets {
			if t.id != src {
				scratch = append(scratch, t)
			}
		}
		plan, ok := planEvacuation(p, scratch, cap, vms, in)
		if !ok {
			continue
		}
		// Apply in sorted order, not map order: assignment order fixes
		// the VM order on each host, which downstream float summation
		// (emulator replay) must see deterministically.
		moved := make([]trace.ServerID, 0, len(plan))
		for vm := range plan {
			moved = append(moved, vm)
		}
		slices.Sort(moved)
		for _, vm := range moved {
			target := plan[vm]
			it, _ := p.Item(vm)
			if _, err := p.Remove(vm); err != nil {
				continue
			}
			if err := p.Assign(it, target); err != nil {
				// Re-place on the source host; planEvacuation
				// verified feasibility so this is defensive.
				_ = p.Assign(it, src)
				continue
			}
			moves++
			dataMB += it.Demand.Mem
		}
		allTargets = evacTargets(p, limit)
	}
	return moves, dataMB
}

// evacTarget is one candidate evacuation destination: residual headroom
// against the hysteresis limit, plus the precomputed fill-order key.
type evacTarget struct {
	id       string
	cpu, mem float64
	key      float64
}

// evacTargets lists every active host with its residual headroom, sorted
// most-loaded first (ties by ID) — the fill order of planEvacuation.
func evacTargets(p *placement.Placement, limit sizing.Demand) []evacTarget {
	targets := make([]evacTarget, 0, len(p.Hosts()))
	for i, h := range p.Hosts() {
		if len(p.VMsAt(i)) == 0 {
			continue
		}
		u := p.UsedAt(i)
		rc, rm := limit.CPU-u.CPU, limit.Mem-u.Mem
		targets = append(targets, evacTarget{id: h.ID, cpu: rc, mem: rm, key: min(rc/limit.CPU, rm/limit.Mem)})
	}
	slices.SortFunc(targets, func(a, b evacTarget) int {
		if c := cmp.Compare(a.key, b.key); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})
	return targets
}

// planEvacuation checks whether every VM in vms fits onto the candidate
// targets within the hysteresis headroom and constraints, and returns the
// target mapping. targets is consumed (residuals are decremented in place);
// callers pass a scratch copy.
func planEvacuation(p *placement.Placement, targets []evacTarget, cap sizing.Demand, vms []trace.ServerID, in Input) (map[trace.ServerID]string, bool) {
	// Biggest VMs first.
	type mover struct {
		it  placement.Item
		key float64
	}
	movers := make([]mover, len(vms))
	for i, vm := range vms {
		it, _ := p.Item(vm)
		movers[i] = mover{it: it, key: max(it.Demand.CPU/cap.CPU, it.Demand.Mem/cap.Mem)}
	}
	slices.SortFunc(movers, func(a, b mover) int {
		if c := cmp.Compare(b.key, a.key); c != 0 {
			return c
		}
		return cmp.Compare(a.it.ID, b.it.ID)
	})

	assignment := make(map[trace.ServerID]string, len(movers))
	view := overlayView{base: p, moved: assignment}
	for _, mv := range movers {
		it := mv.it
		placed := false
		for t := range targets {
			r := &targets[t]
			if it.Demand.CPU > r.cpu+1e-9 || it.Demand.Mem > r.mem+1e-9 {
				continue
			}
			if in.Constraints.Permits(it.ID, r.id, view) != nil {
				continue
			}
			r.cpu -= it.Demand.CPU
			r.mem -= it.Demand.Mem
			assignment[it.ID] = r.id
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return assignment, true
}

// overlayView presents the placement as if the planned (but not yet
// committed) evacuation moves had already happened, so constraints see the
// post-move world while the plan is being built.
type overlayView struct {
	base  *placement.Placement
	moved map[trace.ServerID]string
}

func (v overlayView) HostOf(vm trace.ServerID) (string, bool) {
	if t, ok := v.moved[vm]; ok {
		return t, true
	}
	return v.base.HostOf(vm)
}

func (v overlayView) VMsOn(host string) []trace.ServerID {
	var out []trace.ServerID
	for _, vm := range v.base.VMsOn(host) {
		if t, ok := v.moved[vm]; ok && t != host {
			continue
		}
		out = append(out, vm)
	}
	var incoming []trace.ServerID
	for vm, t := range v.moved {
		if t == host {
			if cur, ok := v.base.HostOf(vm); !ok || cur != host {
				incoming = append(incoming, vm)
			}
		}
	}
	// Sorted, not map order, so constraint checks see a stable view.
	slices.Sort(incoming)
	return append(out, incoming...)
}

func (v overlayView) RackOf(host string) string { return v.base.RackOf(host) }
