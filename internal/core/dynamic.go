package core

import (
	"errors"
	"fmt"
	"sort"

	"vmwild/internal/emulator"
	"vmwild/internal/placement"
	"vmwild/internal/predict"
	"vmwild/internal/sizing"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// Dynamic is the dynamic consolidation planner (Section 5.1): every
// consolidation interval (2 hours by default) it re-sizes each VM to its
// predicted peak demand for the interval, then adapts the placement with
// the cheapest actions that fix overloads and the evacuations that free
// whole hosts, counting every live migration it orders. A fraction of every
// host (1 - Bound, 20% by default) stays reserved for the live migrations
// themselves — Observation 4's price of admission.
//
// The planner walks forward through the evaluation window using only
// history available at each decision point; the gap between its predicted
// peaks and the realized demand is what produces the contention the
// emulator later measures (Figures 8, 9, 11).
type Dynamic struct{}

// Name implements Planner.
func (Dynamic) Name() string { return "dynamic" }

// evacuationHeadroom keeps a little slack when consolidating onto fewer
// hosts, so the next interval's growth does not immediately re-trigger
// migrations (anti-thrash hysteresis).
const evacuationHeadroom = 0.97

// Plan implements Planner.
func (Dynamic) Plan(in Input) (*Plan, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if in.Evaluation == nil || len(in.Evaluation.Servers) == 0 {
		return nil, errors.New("dynamic: no evaluation window to plan over")
	}
	if len(in.Evaluation.Servers) != len(in.Monitoring.Servers) {
		return nil, errors.New("dynamic: monitoring and evaluation sets differ in servers")
	}

	interval := in.intervalHours()
	evalHours := in.Evaluation.Servers[0].Series.Len()
	intervals := evalHours / interval
	if intervals < 1 {
		return nil, fmt.Errorf("dynamic: evaluation window of %d hours is shorter than one interval", evalHours)
	}

	cpuPred := in.CPUPredictor
	if cpuPred == nil {
		cpuPred = DefaultCPUPredictor()
	}
	memPred := in.MemPredictor
	if memPred == nil {
		memPred = DefaultMemPredictor()
	}

	// Concatenate monitoring and evaluation demand once per server; the
	// walk-forward predictions slice into this.
	n := len(in.Monitoring.Servers)
	var (
		ids     = make([]trace.ServerID, n)
		specs   = make([]trace.Spec, n)
		cpuHist = make([][]float64, n)
		memHist = make([][]float64, n)
	)
	monHours := in.Monitoring.Servers[0].Series.Len()
	for i, st := range in.Monitoring.Servers {
		ev := in.Evaluation.Servers[i]
		if ev.ID != st.ID {
			return nil, fmt.Errorf("dynamic: server order mismatch at %d: %s vs %s", i, st.ID, ev.ID)
		}
		ids[i] = st.ID
		specs[i] = st.Spec
		cpuHist[i] = append(st.Series.Values(trace.CPU), ev.Series.Values(trace.CPU)...)
		memHist[i] = append(st.Series.Values(trace.Mem), ev.Series.Values(trace.Mem)...)
	}

	plan := &Plan{Planner: "dynamic"}
	adapter, err := NewAdapter(in)
	if err != nil {
		return nil, err
	}
	placements := make([]*placement.Placement, 0, intervals)
	for k := 0; k < intervals; k++ {
		histEnd := monHours + k*interval
		items := make([]placement.Item, n)
		for i := 0; i < n; i++ {
			var cpu, mem float64
			if in.OracleSizing {
				cpu = stats.Max(cpuHist[i][histEnd:min(histEnd+interval, len(cpuHist[i]))])
				mem = stats.Max(memHist[i][histEnd:min(histEnd+interval, len(memHist[i]))])
			} else {
				cpu, err = cpuPred.PredictPeak(cpuHist[i][:histEnd], interval)
				if err != nil {
					return nil, fmt.Errorf("dynamic: predict cpu for %s: %w", ids[i], err)
				}
				mem, err = memPred.PredictPeak(memHist[i][:histEnd], interval)
				if err != nil {
					return nil, fmt.Errorf("dynamic: predict mem for %s: %w", ids[i], err)
				}
			}
			// A VM can demand at most its source machine's capacity;
			// the adapter clamps to host capacity.
			items[i] = placement.Item{ID: ids[i], Demand: sizing.Demand{
				CPU: min(cpu, specs[i].CPURPE2),
				Mem: min(mem, specs[i].MemMB),
			}}
		}

		step, err := adapter.Step(items)
		if err != nil {
			return nil, fmt.Errorf("dynamic: interval %d: %w", k, err)
		}
		plan.Migrations += step.Migrations
		plan.MigrationDataMB += step.MigrationDataMB
		if step.ActiveHosts > plan.Provisioned {
			plan.Provisioned = step.ActiveHosts
		}
		snap, err := adapter.Snapshot()
		if err != nil {
			return nil, err
		}
		placements = append(placements, snap)
	}
	plan.Schedule = emulator.IntervalSchedule{IntervalHours: interval, Placements: placements}
	return plan, nil
}

// DefaultCPUPredictor is the dynamic planner's CPU sizing estimator: the
// larger of the most recent interval's peak and the same interval's peak
// over the previous week, with 10% headroom. Sizing at the weekly
// time-of-day envelope is what a production planner that must bound SLA
// risk does; it still under-predicts record-setting demand surges, which is
// where the contention of Figures 8-9 comes from.
func DefaultCPUPredictor() predict.Predictor {
	return predict.Combined{
		Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 1},
			predict.Periodic{Days: 7, SamplesPerDay: 24},
		},
		Headroom: 1.10,
	}
}

// DefaultMemPredictor is the memory analogue with smaller headroom —
// memory demand is an order of magnitude less bursty (Observation 2).
func DefaultMemPredictor() predict.Predictor {
	return predict.Combined{
		Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 1},
			predict.Periodic{Days: 3, SamplesPerDay: 24},
		},
		Headroom: 1.05,
	}
}

// repairOverloads migrates VMs off hosts whose resized demand exceeds the
// utilization bound, cheapest (smallest-memory) VMs first, preferring the
// most-loaded feasible target so the packing stays tight. Returns the moves
// made and the memory they transferred.
func repairOverloads(p *placement.Placement, in Input) (int, float64, error) {
	var (
		moves  int
		dataMB float64
	)
	for _, hostID := range p.Overloaded() {
		// Candidate order: cheapest migrations first.
		vms := append([]trace.ServerID(nil), p.VMsOn(hostID)...)
		sort.Slice(vms, func(i, j int) bool {
			a, _ := p.Item(vms[i])
			b, _ := p.Item(vms[j])
			if a.Demand.Mem != b.Demand.Mem {
				return a.Demand.Mem < b.Demand.Mem
			}
			return vms[i] < vms[j]
		})
		cap := p.Capacity()
		for _, vm := range vms {
			used := p.Used(hostID)
			if used.CPU <= cap.CPU+1e-9 && used.Mem <= cap.Mem+1e-9 {
				break
			}
			it, _ := p.Item(vm)
			target := pickTarget(p, hostID, it, in)
			if target == "" {
				// Power a previously freed host back on before
				// racking a new one.
				for _, h := range p.Hosts() {
					if h.ID != hostID && len(p.VMsOn(h.ID)) == 0 && in.Constraints.Permits(vm, h.ID, p) == nil {
						target = h.ID
						break
					}
				}
			}
			if target == "" {
				h := p.OpenHost()
				if in.Constraints.Permits(vm, h.ID, p) != nil {
					continue
				}
				target = h.ID
			}
			if _, err := p.Remove(vm); err != nil {
				return moves, dataMB, err
			}
			if err := p.Assign(it, target); err != nil {
				return moves, dataMB, err
			}
			moves++
			dataMB += it.Demand.Mem
		}
		used := p.Used(hostID)
		if used.CPU > cap.CPU+1e-9 || used.Mem > cap.Mem+1e-9 {
			return moves, dataMB, fmt.Errorf("host %s cannot be repaired within constraints", hostID)
		}
	}
	return moves, dataMB, nil
}

// pickTarget returns the most-loaded other host that fits the item and
// passes constraints, or "" if none.
func pickTarget(p *placement.Placement, exclude string, it placement.Item, in Input) string {
	var (
		best     string
		bestLoad = -1.0
	)
	cap := p.Capacity()
	for _, h := range p.Hosts() {
		if h.ID == exclude || len(p.VMsOn(h.ID)) == 0 {
			continue
		}
		if !p.Fits(h.ID, it.Demand) {
			continue
		}
		if in.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		u := p.Used(h.ID)
		load := max(u.CPU/cap.CPU, u.Mem/cap.Mem)
		if load > bestLoad {
			bestLoad, best = load, h.ID
		}
	}
	return best
}

// consolidate evacuates lightly loaded hosts whose VMs all fit elsewhere
// (with hysteresis headroom), switching the freed hosts off. Hosts are
// tried emptiest-first.
func consolidate(p *placement.Placement, in Input) (int, float64) {
	cap := p.Capacity()
	load := func(id string) float64 {
		u := p.Used(id)
		return max(u.CPU/cap.CPU, u.Mem/cap.Mem)
	}
	active := make([]string, 0, len(p.Hosts()))
	for _, h := range p.Hosts() {
		if len(p.VMsOn(h.ID)) > 0 {
			active = append(active, h.ID)
		}
	}
	sort.Slice(active, func(i, j int) bool {
		li, lj := load(active[i]), load(active[j])
		if li != lj {
			return li < lj
		}
		return active[i] < active[j]
	})

	var (
		moves  int
		dataMB float64
	)
	for _, src := range active {
		vms := append([]trace.ServerID(nil), p.VMsOn(src)...)
		if len(vms) == 0 {
			continue
		}
		plan, ok := planEvacuation(p, src, vms, in)
		if !ok {
			continue
		}
		// Apply in sorted order, not map order: assignment order fixes
		// the VM order on each host, which downstream float summation
		// (emulator replay) must see deterministically.
		moved := make([]trace.ServerID, 0, len(plan))
		for vm := range plan {
			moved = append(moved, vm)
		}
		sort.Slice(moved, func(i, j int) bool { return moved[i] < moved[j] })
		for _, vm := range moved {
			target := plan[vm]
			it, _ := p.Item(vm)
			if _, err := p.Remove(vm); err != nil {
				continue
			}
			if err := p.Assign(it, target); err != nil {
				// Re-place on the source host; planEvacuation
				// verified feasibility so this is defensive.
				_ = p.Assign(it, src)
				continue
			}
			moves++
			dataMB += it.Demand.Mem
		}
	}
	return moves, dataMB
}

// planEvacuation checks whether every VM on src fits onto other active
// hosts within the hysteresis headroom and constraints, and returns the
// target mapping.
func planEvacuation(p *placement.Placement, src string, vms []trace.ServerID, in Input) (map[trace.ServerID]string, bool) {
	cap := p.Capacity()
	limit := sizing.Demand{CPU: cap.CPU * evacuationHeadroom, Mem: cap.Mem * evacuationHeadroom}

	// Residual capacity of each candidate target.
	type slack struct{ cpu, mem float64 }
	residual := make(map[string]*slack)
	var targets []string
	for _, h := range p.Hosts() {
		if h.ID == src || len(p.VMsOn(h.ID)) == 0 {
			continue
		}
		u := p.Used(h.ID)
		residual[h.ID] = &slack{cpu: limit.CPU - u.CPU, mem: limit.Mem - u.Mem}
		targets = append(targets, h.ID)
	}
	// Fill the most-loaded targets first.
	sort.Slice(targets, func(i, j int) bool {
		ri, rj := residual[targets[i]], residual[targets[j]]
		li := min(ri.cpu/limit.CPU, ri.mem/limit.Mem)
		lj := min(rj.cpu/limit.CPU, rj.mem/limit.Mem)
		if li != lj {
			return li < lj
		}
		return targets[i] < targets[j]
	})

	// Biggest VMs first.
	sorted := append([]trace.ServerID(nil), vms...)
	sort.Slice(sorted, func(i, j int) bool {
		a, _ := p.Item(sorted[i])
		b, _ := p.Item(sorted[j])
		ka := max(a.Demand.CPU/cap.CPU, a.Demand.Mem/cap.Mem)
		kb := max(b.Demand.CPU/cap.CPU, b.Demand.Mem/cap.Mem)
		if ka != kb {
			return ka > kb
		}
		return sorted[i] < sorted[j]
	})

	assignment := make(map[trace.ServerID]string, len(sorted))
	view := overlayView{base: p, moved: assignment}
	for _, vm := range sorted {
		it, _ := p.Item(vm)
		placed := false
		for _, t := range targets {
			r := residual[t]
			if it.Demand.CPU > r.cpu+1e-9 || it.Demand.Mem > r.mem+1e-9 {
				continue
			}
			if in.Constraints.Permits(vm, t, view) != nil {
				continue
			}
			r.cpu -= it.Demand.CPU
			r.mem -= it.Demand.Mem
			assignment[vm] = t
			placed = true
			break
		}
		if !placed {
			return nil, false
		}
	}
	return assignment, true
}

// overlayView presents the placement as if the planned (but not yet
// committed) evacuation moves had already happened, so constraints see the
// post-move world while the plan is being built.
type overlayView struct {
	base  *placement.Placement
	moved map[trace.ServerID]string
}

func (v overlayView) HostOf(vm trace.ServerID) (string, bool) {
	if t, ok := v.moved[vm]; ok {
		return t, true
	}
	return v.base.HostOf(vm)
}

func (v overlayView) VMsOn(host string) []trace.ServerID {
	var out []trace.ServerID
	for _, vm := range v.base.VMsOn(host) {
		if t, ok := v.moved[vm]; ok && t != host {
			continue
		}
		out = append(out, vm)
	}
	var incoming []trace.ServerID
	for vm, t := range v.moved {
		if t == host {
			if cur, ok := v.base.HostOf(vm); !ok || cur != host {
				incoming = append(incoming, vm)
			}
		}
	}
	// Sorted, not map order, so constraint checks see a stable view.
	sort.Slice(incoming, func(i, j int) bool { return incoming[i] < incoming[j] })
	return append(out, incoming...)
}

func (v overlayView) RackOf(host string) string { return v.base.RackOf(host) }
