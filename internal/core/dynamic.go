package core

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"

	"vmwild/internal/emulator"
	"vmwild/internal/placement"
	"vmwild/internal/predict"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// Dynamic is the dynamic consolidation planner (Section 5.1): every
// consolidation interval (2 hours by default) it re-sizes each VM to its
// predicted peak demand for the interval, then adapts the placement with
// the cheapest actions that fix overloads and the evacuations that free
// whole hosts, counting every live migration it orders. A fraction of every
// host (1 - Bound, 20% by default) stays reserved for the live migrations
// themselves — Observation 4's price of admission.
//
// The planner walks forward through the evaluation window using only
// history available at each decision point; the gap between its predicted
// peaks and the realized demand is what produces the contention the
// emulator later measures (Figures 8, 9, 11).
type Dynamic struct{}

// Name implements Planner.
func (Dynamic) Name() string { return "dynamic" }

// evacuationHeadroom keeps a little slack when consolidating onto fewer
// hosts, so the next interval's growth does not immediately re-trigger
// migrations (anti-thrash hysteresis).
const evacuationHeadroom = 0.97

// evacSumSlack is the margin the sum-capacity reject leaves before declaring
// an evacuation infeasible: large enough to absorb one 1e-9 fit tolerance per
// mover plus summation rounding for any realistic fleet, small enough that a
// genuinely feasible evacuation is never rejected.
const evacSumSlack = 1e-3

// Plan implements Planner.
func (Dynamic) Plan(in Input) (*Plan, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if in.Evaluation == nil || len(in.Evaluation.Servers) == 0 {
		return nil, errors.New("dynamic: no evaluation window to plan over")
	}
	if len(in.Evaluation.Servers) != len(in.Monitoring.Servers) {
		return nil, errors.New("dynamic: monitoring and evaluation sets differ in servers")
	}

	interval := in.intervalHours()
	evalHours := in.Evaluation.Servers[0].Series.Len()
	intervals := evalHours / interval
	if intervals < 1 {
		return nil, fmt.Errorf("dynamic: evaluation window of %d hours is shorter than one interval", evalHours)
	}

	// The Predict + Size steps either come precomputed (shared across
	// plans by experiments.Context) or run inline; both paths execute
	// SizeDynamicDemands, so the resulting reservations are identical.
	m := in.Demands
	if m == nil {
		var err error
		m, err = SizeDynamicDemands(in)
		if err != nil {
			return nil, err
		}
	} else if err := m.compatible(in, interval, intervals); err != nil {
		return nil, err
	}

	n := len(in.Monitoring.Servers)
	plan := &Plan{Planner: "dynamic"}
	adapter, err := NewAdapter(in)
	if err != nil {
		return nil, err
	}
	var placements []*placement.Placement
	if !in.PlanOnly {
		placements = make([]*placement.Placement, 0, intervals)
	}
	items := make([]placement.Item, n)
	for k := 0; k < intervals; k++ {
		row := m.Demands[k]
		for i := 0; i < n; i++ {
			items[i] = placement.Item{ID: m.IDs[i], Demand: row[i]}
		}

		step, err := adapter.Step(items)
		if err != nil {
			return nil, fmt.Errorf("dynamic: interval %d: %w", k, err)
		}
		plan.Migrations += step.Migrations
		plan.MigrationDataMB += step.MigrationDataMB
		if step.ActiveHosts > plan.Provisioned {
			plan.Provisioned = step.ActiveHosts
		}
		if in.PlanOnly {
			continue
		}
		snap, err := adapter.Snapshot()
		if err != nil {
			return nil, err
		}
		placements = append(placements, snap)
	}
	if !in.PlanOnly {
		plan.Schedule = emulator.IntervalSchedule{IntervalHours: interval, Placements: placements}
	}
	return plan, nil
}

// DefaultCPUPredictor is the dynamic planner's CPU sizing estimator: the
// larger of the most recent interval's peak and the same interval's peak
// over the previous week, with 10% headroom. Sizing at the weekly
// time-of-day envelope is what a production planner that must bound SLA
// risk does; it still under-predicts record-setting demand surges, which is
// where the contention of Figures 8-9 comes from.
func DefaultCPUPredictor() predict.Predictor {
	return predict.Combined{
		Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 1},
			predict.Periodic{Days: 7, SamplesPerDay: 24},
		},
		Headroom: 1.10,
	}
}

// DefaultMemPredictor is the memory analogue with smaller headroom —
// memory demand is an order of magnitude less bursty (Observation 2).
func DefaultMemPredictor() predict.Predictor {
	return predict.Combined{
		Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 1},
			predict.Periodic{Days: 3, SamplesPerDay: 24},
		},
		Headroom: 1.05,
	}
}

// repairOverloads migrates VMs off hosts whose resized demand exceeds the
// utilization bound, cheapest (smallest-memory) VMs first, preferring the
// most-loaded feasible target so the packing stays tight. Returns the moves
// made and the memory they transferred.
func repairOverloads(p *placement.Placement, in Input, st *evacState) (int, float64, error) {
	var (
		moves  int
		dataMB float64
		over   []int
		cands  []repairCand
	)
	if st != nil {
		over, cands = st.overIdx[:0], st.cands[:0]
		defer func() { st.overIdx, st.cands = over[:0], cands[:0] }()
	}
	// The overloaded set is fixed before any repair: targets are always
	// checked with FitsAt (or freshly opened), so a repair move can never
	// overload another host.
	over = p.OverloadedInto(over)
	for _, hi := range over {
		cands = cands[:0]
		for _, vi := range p.VMIndicesAt(hi) {
			cands = append(cands, repairCand{it: p.ItemAt(int(vi)), vi: vi})
		}
		cap := p.Capacity()
		// Candidate order: cheapest migrations first. Repairs rarely need
		// more than a couple of moves, so instead of sorting the whole
		// host, each round selects the minimum-(Mem, ID) candidate still
		// untried — the picks come out in exactly sorted order (the key is
		// a strict total order), without the O(n log n) sort.
		n := len(cands)
		for n > 0 {
			used := p.UsedAt(hi)
			if used.CPU <= cap.CPU+1e-9 && used.Mem <= cap.Mem+1e-9 {
				break
			}
			best := 0
			for i := 1; i < n; i++ {
				if cands[i].it.Demand.Mem < cands[best].it.Demand.Mem ||
					(cands[i].it.Demand.Mem == cands[best].it.Demand.Mem && cands[i].it.ID < cands[best].it.ID) {
					best = i
				}
			}
			c := cands[best]
			cands[best] = cands[n-1]
			n--
			it := c.it
			target := pickTarget(p, hi, it, in)
			if target < 0 {
				// Power a previously freed host back on before
				// racking a new one.
				for i, h := range p.Hosts() {
					if i != hi && len(p.VMsAt(i)) == 0 && in.Constraints.Permits(it.ID, h.ID, p) == nil {
						target = i
						break
					}
				}
			}
			if target < 0 {
				h := p.OpenHost()
				if in.Constraints.Permits(it.ID, h.ID, p) != nil {
					continue
				}
				target = len(p.Hosts()) - 1
			}
			p.MoveAt(int(c.vi), target)
			moves++
			dataMB += it.Demand.Mem
		}
		used := p.UsedAt(hi)
		if used.CPU > cap.CPU+1e-9 || used.Mem > cap.Mem+1e-9 {
			return moves, dataMB, fmt.Errorf("host %s cannot be repaired within constraints", p.Hosts()[hi].ID)
		}
	}
	return moves, dataMB, nil
}

// repairCand is one overloaded-host resident: its item plus dense index, so
// the eventual move skips ID-keyed lookups.
type repairCand struct {
	it placement.Item
	vi int32
}

// pickTarget returns the index of the most-loaded other host that fits the
// item and passes constraints, or -1 if none. exclude is the host's index in
// Hosts().
func pickTarget(p *placement.Placement, exclude int, it placement.Item, in Input) int {
	if len(in.Constraints) == 0 {
		// No constraint can veto, so the scan is the pure most-loaded-fit
		// kernel placement implements over its flat arrays.
		return p.MostLoadedFit(exclude, it.Demand)
	}
	best, bestLoad := -1, -1.0
	cap := p.Capacity()
	for i, h := range p.Hosts() {
		if i == exclude || len(p.VMsAt(i)) == 0 {
			continue
		}
		if !p.FitsAt(i, it.Demand) {
			continue
		}
		if in.Constraints.Permits(it.ID, h.ID, p) != nil {
			continue
		}
		u := p.UsedAt(i)
		load := max(u.CPU/cap.CPU, u.Mem/cap.Mem)
		if load > bestLoad {
			bestLoad, best = load, i
		}
	}
	return best
}

// evacState carries the dynamic adapter's cross-interval consolidation
// state: reusable scratch buffers (an evacuation attempt allocates nothing
// in steady state) and, per source host, a failure certificate — a VM that
// fit no evacuation target when the host last failed to empty.
//
// The certificate is re-validated before use, so reuse is sound, not
// heuristic: if the certified VM still lives on the host and its current
// demand exceeds every current target's full residual headroom in CPU or
// memory, the greedy evacuation must fail — residuals only shrink as
// earlier movers consume them, float addition is monotone, and constraint
// vetoes can only remove further options. The attempt (sorting movers,
// walking targets per mover) is skipped without being able to change the
// outcome. Certificates whose VM moved away or now fits somewhere are
// discarded and the full attempt runs.
type evacState struct {
	certs   map[string]trace.ServerID
	targets []evacTarget
	scratch []evacTarget
	movers  []evacMover
	pairs   []evacMove
	overIdx []int
	cands   []repairCand
}

// evacMover is one VM to evacuate: its item, dense index and precomputed
// sort key.
type evacMover struct {
	it  placement.Item
	vi  int32
	key float64
}

// evacMove is one planned relocation, index-addressed so applying it skips
// every ID-keyed lookup.
type evacMove struct {
	vi        int32
	it        placement.Item
	targetIdx int
}

// consolidate evacuates lightly loaded hosts whose VMs all fit elsewhere
// (with hysteresis headroom), switching the freed hosts off. Hosts are
// tried emptiest-first. A non-nil st enables the incremental machinery:
// quick rejects against target maxima, cross-interval failure certificates
// and buffer reuse — all outcome-preserving, so the moves made (and the
// placement bytes) are identical with st == nil.
func consolidate(p *placement.Placement, in Input, st *evacState) (int, float64) {
	cap := p.Capacity()
	limit := sizing.Demand{CPU: cap.CPU * evacuationHeadroom, Mem: cap.Mem * evacuationHeadroom}
	// Loads are snapshotted before sorting (the placement is not mutated
	// while the order is established, so precomputing reads the same
	// values the comparator used to).
	type candidate struct {
		id   string
		idx  int
		load float64
	}
	active := make([]candidate, 0, len(p.Hosts()))
	for i, h := range p.Hosts() {
		if len(p.VMsAt(i)) > 0 {
			u := p.UsedAt(i)
			active = append(active, candidate{id: h.ID, idx: i, load: max(u.CPU/cap.CPU, u.Mem/cap.Mem)})
		}
	}
	slices.SortFunc(active, func(a, b candidate) int {
		if c := cmp.Compare(a.load, b.load); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})

	var (
		moves  int
		dataMB float64
	)
	var allTargets, scratch []evacTarget
	var movers []evacMover
	var pairs []evacMove
	if st != nil {
		if st.certs == nil {
			st.certs = make(map[string]trace.ServerID)
		}
		allTargets, scratch, movers, pairs = st.targets[:0], st.scratch[:0], st.movers[:0], st.pairs[:0]
		defer func() {
			st.targets, st.scratch, st.movers, st.pairs = allTargets[:0], scratch[:0], movers[:0], pairs[:0]
		}()
	}
	// The sorted target list is a function of the placement state, which
	// only changes when an evacuation succeeds — most attempts fail, so
	// the list (and its O(n log n) sort) is rebuilt on success instead of
	// per source host. Dropping the source from a copy preserves relative
	// order, so every attempt sees exactly the list a fresh build would
	// produce.
	allTargets = evacTargets(p, limit, allTargets)
	var agg targetAgg
	if st != nil {
		agg = aggregateTargets(allTargets)
	}
	for _, cand := range active {
		src := cand.id
		vis := p.VMIndicesAt(cand.idx)
		if len(vis) == 0 {
			continue
		}
		maxRC, maxRM := math.Inf(-1), math.Inf(-1)
		if st != nil {
			// The exclude-self residual view is derived in O(1) from the
			// aggregates: the per-resource maximum is the global top value
			// unless this source holds it (then the runner-up, which under
			// ties equals the top), and the placeable sum is the global
			// positive-residual sum minus this host's own headroom. The
			// source's residual is recomputed with the exact expression
			// evacTargets used, and the placement has not mutated since the
			// list was built, so the values match bit for bit.
			maxRC, maxRM = agg.maxRC1, agg.maxRM1
			if agg.maxRCIdx == cand.idx {
				maxRC = agg.maxRC2
			}
			if agg.maxRMIdx == cand.idx {
				maxRM = agg.maxRM2
			}
			u := p.UsedAt(cand.idx)
			rcSrc, rmSrc := limit.CPU-u.CPU, limit.Mem-u.Mem
			sumRC, sumRM := agg.sumRC, agg.sumRM
			if rcSrc > 0 {
				sumRC -= rcSrc
			}
			if rmSrc > 0 {
				sumRM -= rmSrc
			}
			// Sum-capacity reject: greedy placement consumes residuals by
			// exactly each mover's demand (within the 1e-9 per-placement
			// fit tolerance), so when the source's total used demand
			// exceeds the summed residuals by more than the slack — which
			// covers n accumulated tolerances plus float error — every
			// assignment order must leave some mover without a target.
			if u.CPU > sumRC+evacSumSlack || u.Mem > sumRM+evacSumSlack {
				continue
			}
			if certID, ok := st.certs[src]; ok {
				if h, on := p.HostOf(certID); on && h == src {
					if it, have := p.Item(certID); have && fitsNoTarget(it, allTargets, cand.idx) {
						continue
					}
				} else {
					delete(st.certs, src)
				}
			}
		}
		movers = movers[:0]
		var reject trace.ServerID
		big := -1
		for _, vi := range vis {
			it := p.ItemAt(int(vi))
			// A VM larger than the best per-resource residual across
			// all targets fits nowhere, so the whole evacuation is
			// doomed; certify and skip the attempt.
			if st != nil && (it.Demand.CPU > maxRC+1e-9 || it.Demand.Mem > maxRM+1e-9) {
				reject = it.ID
				break
			}
			key := max(it.Demand.CPU/cap.CPU, it.Demand.Mem/cap.Mem)
			if big < 0 || key > movers[big].key || (key == movers[big].key && it.ID < movers[big].it.ID) {
				big = len(movers)
			}
			movers = append(movers, evacMover{it: it, vi: vi, key: key})
		}
		if reject != "" {
			st.certs[src] = reject
			continue
		}
		// Fail fast on the mover the sort would place first (largest key,
		// ties by ID): greedy tries it against full residuals, so if it
		// fits no target on capacity alone the attempt must fail there —
		// the identical certificate planEvacuation would return — and the
		// sort plus planning walk are skipped.
		if st != nil && big >= 0 && fitsNoTarget(movers[big].it, allTargets, cand.idx) {
			st.certs[src] = movers[big].it.ID
			continue
		}
		// All rejects passed — materialize the consumable target copy for
		// the real attempt.
		scratch = scratch[:0]
		for _, t := range allTargets {
			if t.id != src {
				scratch = append(scratch, t)
			}
		}
		// Biggest VMs first.
		slices.SortFunc(movers, func(a, b evacMover) int {
			if c := cmp.Compare(b.key, a.key); c != 0 {
				return c
			}
			return cmp.Compare(a.it.ID, b.it.ID)
		})
		var (
			stuck trace.ServerID
			ok    bool
		)
		pairs, stuck, ok = planEvacuation(p, scratch, movers, in, pairs[:0])
		if !ok {
			if st != nil && stuck != "" {
				st.certs[src] = stuck
			}
			continue
		}
		if st != nil {
			delete(st.certs, src)
		}
		// Apply in sorted order, not plan order: assignment order fixes
		// the VM order on each host, which downstream float summation
		// (emulator replay) must see deterministically. planEvacuation
		// verified feasibility of every pair, so the moves are applied
		// unconditionally through the index-addressed fast path.
		slices.SortFunc(pairs, func(a, b evacMove) int {
			return cmp.Compare(a.it.ID, b.it.ID)
		})
		for _, mv := range pairs {
			p.MoveAt(int(mv.vi), mv.targetIdx)
			moves++
			dataMB += mv.it.Demand.Mem
		}
		allTargets = evacTargets(p, limit, allTargets[:0])
		if st != nil {
			agg = aggregateTargets(allTargets)
		}
	}
	return moves, dataMB
}

// targetAgg summarizes a target list for O(1) exclude-one queries: the top
// two residuals per resource (with the top holder's host index) and the sum
// of positive residuals. Only positive residuals count as placeable
// headroom; hosts already above the hysteresis limit must not drag the sum
// down, or the sum reject would veto feasible evacuations.
type targetAgg struct {
	maxRC1, maxRC2 float64
	maxRCIdx       int
	maxRM1, maxRM2 float64
	maxRMIdx       int
	sumRC, sumRM   float64
}

func aggregateTargets(ts []evacTarget) targetAgg {
	a := targetAgg{
		maxRC1: math.Inf(-1), maxRC2: math.Inf(-1), maxRCIdx: -1,
		maxRM1: math.Inf(-1), maxRM2: math.Inf(-1), maxRMIdx: -1,
	}
	for i := range ts {
		t := &ts[i]
		if t.cpu > a.maxRC1 {
			a.maxRC2, a.maxRC1, a.maxRCIdx = a.maxRC1, t.cpu, t.idx
		} else if t.cpu > a.maxRC2 {
			a.maxRC2 = t.cpu
		}
		if t.mem > a.maxRM1 {
			a.maxRM2, a.maxRM1, a.maxRMIdx = a.maxRM1, t.mem, t.idx
		} else if t.mem > a.maxRM2 {
			a.maxRM2 = t.mem
		}
		if t.cpu > 0 {
			a.sumRC += t.cpu
		}
		if t.mem > 0 {
			a.sumRM += t.mem
		}
	}
	return a
}

// fitsNoTarget reports whether the item exceeds every target's full
// residual headroom (the host at index exclude skipped) — the certificate
// validity test.
func fitsNoTarget(it placement.Item, targets []evacTarget, exclude int) bool {
	for i := range targets {
		if targets[i].idx == exclude {
			continue
		}
		if !(it.Demand.CPU > targets[i].cpu+1e-9 || it.Demand.Mem > targets[i].mem+1e-9) {
			return false
		}
	}
	return true
}

// evacTarget is one candidate evacuation destination: residual headroom
// against the hysteresis limit, plus the precomputed fill-order key and the
// host's index in Hosts() for index-addressed application.
type evacTarget struct {
	id       string
	idx      int
	cpu, mem float64
	key      float64
}

// evacTargets lists every active host with its residual headroom, sorted
// most-loaded first (ties by ID) — the fill order of planEvacuation. The
// result is appended to buf.
func evacTargets(p *placement.Placement, limit sizing.Demand, buf []evacTarget) []evacTarget {
	targets := buf
	for i, h := range p.Hosts() {
		if len(p.VMsAt(i)) == 0 {
			continue
		}
		u := p.UsedAt(i)
		rc, rm := limit.CPU-u.CPU, limit.Mem-u.Mem
		targets = append(targets, evacTarget{id: h.ID, idx: i, cpu: rc, mem: rm, key: min(rc/limit.CPU, rm/limit.Mem)})
	}
	slices.SortFunc(targets, func(a, b evacTarget) int {
		if c := cmp.Compare(a.key, b.key); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})
	return targets
}

// planEvacuation checks whether every mover fits onto the candidate targets
// within the hysteresis headroom and constraints, appending the planned
// moves to pairs. targets is consumed (residuals are decremented in place);
// callers pass a scratch copy. On failure it returns the mover that fit
// nowhere — the failure certificate. The overlay view (constraints seeing
// the post-move world) is only materialized when constraints exist; without
// them the map bookkeeping is dead weight the hot path skips.
func planEvacuation(p *placement.Placement, targets []evacTarget, movers []evacMover, in Input, pairs []evacMove) ([]evacMove, trace.ServerID, bool) {
	constrained := len(in.Constraints) > 0
	var (
		assignment map[trace.ServerID]string
		view       overlayView
	)
	if constrained {
		assignment = make(map[trace.ServerID]string, len(movers))
		view = overlayView{base: p, moved: assignment}
	}
	for _, mv := range movers {
		it := mv.it
		placed := false
		for t := range targets {
			r := &targets[t]
			if it.Demand.CPU > r.cpu+1e-9 || it.Demand.Mem > r.mem+1e-9 {
				continue
			}
			if constrained && in.Constraints.Permits(it.ID, r.id, view) != nil {
				continue
			}
			r.cpu -= it.Demand.CPU
			r.mem -= it.Demand.Mem
			if constrained {
				assignment[it.ID] = r.id
			}
			pairs = append(pairs, evacMove{vi: mv.vi, it: it, targetIdx: r.idx})
			placed = true
			break
		}
		if !placed {
			return pairs, it.ID, false
		}
	}
	return pairs, "", true
}

// overlayView presents the placement as if the planned (but not yet
// committed) evacuation moves had already happened, so constraints see the
// post-move world while the plan is being built.
type overlayView struct {
	base  *placement.Placement
	moved map[trace.ServerID]string
}

func (v overlayView) HostOf(vm trace.ServerID) (string, bool) {
	if t, ok := v.moved[vm]; ok {
		return t, true
	}
	return v.base.HostOf(vm)
}

func (v overlayView) VMsOn(host string) []trace.ServerID {
	var out []trace.ServerID
	for _, vm := range v.base.VMsOn(host) {
		if t, ok := v.moved[vm]; ok && t != host {
			continue
		}
		out = append(out, vm)
	}
	var incoming []trace.ServerID
	for vm, t := range v.moved {
		if t == host {
			if cur, ok := v.base.HostOf(vm); !ok || cur != host {
				incoming = append(incoming, vm)
			}
		}
	}
	// Sorted, not map order, so constraint checks see a stable view.
	slices.Sort(incoming)
	return append(out, incoming...)
}

func (v overlayView) RackOf(host string) string { return v.base.RackOf(host) }
