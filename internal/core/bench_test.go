package core

import (
	"fmt"
	"math"
	"testing"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

// benchDynamicInput builds a 60-server Banking estate over the standard
// monitoring + evaluation horizon.
func benchDynamicInput(b *testing.B) Input {
	b.Helper()
	p := workload.Banking()
	p.Servers = 60
	set, err := workload.Generate(p, workload.HorizonHours, 1)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := set.SliceAll(0, workload.MonitoringHours)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := set.SliceAll(workload.MonitoringHours, workload.HorizonHours)
	if err != nil {
		b.Fatal(err)
	}
	return Input{Monitoring: mon, Evaluation: eval, Host: catalog.HS23Elite}
}

// BenchmarkDynamicPlan separates the dynamic planner's three cost centers
// so a regression in one cannot hide inside another:
//
//   - sizing: the Predict + Size walk alone (SizeDynamicDemands).
//   - packing: Plan against a precomputed demand matrix with PlanOnly set,
//     so only the adapt/repair/consolidate loop is on the measured path —
//     no sizing, no per-interval snapshot clones.
//   - inline: the full end-to-end Plan, sizing and snapshots included.
//
// inline should approximately equal sizing + packing + snapshot cost; the
// earlier shape of this benchmark compared inline against precomputed-with-
// snapshots, and the snapshot clones dominated both, making the two
// statistically indistinguishable.
func BenchmarkDynamicPlan(b *testing.B) {
	in := benchDynamicInput(b)
	b.Run("sizing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := SizeDynamicDemands(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("packing", func(b *testing.B) {
		m, err := SizeDynamicDemands(in)
		if err != nil {
			b.Fatal(err)
		}
		cached := in
		cached.Demands = m
		cached.PlanOnly = true
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := (Dynamic{}).Plan(cached); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (Dynamic{}).Plan(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDynamicPlanIncremental isolates the incremental consolidation
// machinery: demands are precomputed for both arms, so the only difference
// is the incremental fast paths (flattened kernels, evacuation certificates,
// scratch reuse) versus the retained reference implementations.
func BenchmarkDynamicPlanIncremental(b *testing.B) {
	in := benchDynamicInput(b)
	m, err := SizeDynamicDemands(in)
	if err != nil {
		b.Fatal(err)
	}
	in.Demands = m
	in.PlanOnly = true
	for _, arm := range []struct {
		name    string
		disable bool
	}{{"incremental", false}, {"reference", true}} {
		b.Run(arm.name, func(b *testing.B) {
			cfg := in
			cfg.DisableIncremental = arm.disable
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (Dynamic{}).Plan(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchHugeFleet synthesizes an n-server monitoring set with short series
// built from a few shared diurnal patterns — generating a full workload
// horizon for 100k servers would dwarf the planning time being measured.
// Same-pattern servers are perfectly correlated (identical shape, different
// amplitude), across patterns the phases differ, so the stochastic packer
// sees the full range of correlation values.
func benchHugeFleet(b *testing.B, n int) *trace.Set {
	b.Helper()
	const (
		hours    = 24
		patterns = 16
	)
	base := make([][]trace.Usage, patterns)
	for p := range base {
		s := make([]trace.Usage, hours)
		phase := float64(p) * 2 * math.Pi / patterns
		for h := range s {
			day := 0.5 + 0.5*math.Sin(2*math.Pi*float64(h)/24+phase)
			s[h] = trace.Usage{CPU: 400 + 800*day, Mem: 2048 + 1024*day}
		}
		base[p] = s
	}
	servers := make([]*trace.ServerTrace, n)
	for i := range servers {
		scale := 0.4 + 0.1*float64(i%7)
		src := base[i%patterns]
		samples := make([]trace.Usage, hours)
		for h := range samples {
			samples[h] = src[h].Scale(scale)
		}
		series, err := trace.NewSeries(time.Hour, samples)
		if err != nil {
			b.Fatal(err)
		}
		servers[i] = &trace.ServerTrace{
			ID:     trace.ServerID(fmt.Sprintf("s%06d", i)),
			Spec:   trace.Spec{CPURPE2: 4200, MemMB: 32 * 1024},
			Series: series,
		}
	}
	return &trace.Set{Servers: servers}
}

// BenchmarkStochasticPlan100k measures one full stochastic plan over a
// synthetic 100k-VM fleet — the interactive-latency target for a single
// plan at warehouse scale. The dense correlation memo is disabled above
// memoMaxServers, so this also covers the recompute path.
func BenchmarkStochasticPlan100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-VM fleet")
	}
	set := benchHugeFleet(b, 100_000)
	in := Input{Monitoring: set, Evaluation: set, Host: catalog.HS23Elite}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := (Stochastic{}).Plan(in)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Provisioned == 0 {
			b.Fatal("no hosts provisioned")
		}
	}
}
