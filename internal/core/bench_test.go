package core

import (
	"testing"

	"vmwild/internal/catalog"
	"vmwild/internal/workload"
)

// benchDynamicInput builds a 60-server Banking estate over the standard
// monitoring + evaluation horizon.
func benchDynamicInput(b *testing.B) Input {
	b.Helper()
	p := workload.Banking()
	p.Servers = 60
	set, err := workload.Generate(p, workload.HorizonHours, 1)
	if err != nil {
		b.Fatal(err)
	}
	mon, err := set.SliceAll(0, workload.MonitoringHours)
	if err != nil {
		b.Fatal(err)
	}
	eval, err := set.SliceAll(workload.MonitoringHours, workload.HorizonHours)
	if err != nil {
		b.Fatal(err)
	}
	return Input{Monitoring: mon, Evaluation: eval, Host: catalog.HS23Elite}
}

// BenchmarkDynamicPlan measures the dynamic planner end to end: inline, with
// the Predict + Size walk on the measured path, and against a precomputed
// demand matrix — the cached path every grid cell after the first takes.
func BenchmarkDynamicPlan(b *testing.B) {
	in := benchDynamicInput(b)
	b.Run("inline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := (Dynamic{}).Plan(in); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("precomputed", func(b *testing.B) {
		m, err := SizeDynamicDemands(in)
		if err != nil {
			b.Fatal(err)
		}
		cached := in
		cached.Demands = m
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := (Dynamic{}).Plan(cached); err != nil {
				b.Fatal(err)
			}
		}
	})
}
