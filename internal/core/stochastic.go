package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"vmwild/internal/cluster"
	"vmwild/internal/emulator"
	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// Stochastic is the correlation-aware semi-static planner modeled on the
// PCP algorithm of [27] (Section 5.1): each VM is sized as an envelope —
// body at the 90th percentile, tail at the maximum — and packed so that
// tail buffers are shared between co-located VMs in proportion to how
// correlated their demands are. Like vanilla semi-static consolidation it
// needs no live-migration reservation.
type Stochastic struct{}

// Name implements Planner.
func (Stochastic) Name() string { return "stochastic" }

// Plan implements Planner.
func (Stochastic) Plan(in Input) (*Plan, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	servers := in.Monitoring.Servers
	items := make([]placement.Item, 0, len(servers))
	for _, st := range servers {
		env, envErr := sizing.SizeEnvelope(st, in.bodyPercentile())
		if envErr != nil {
			return nil, fmt.Errorf("stochastic: %w", envErr)
		}
		items = append(items, placement.Item{ID: st.ID, Demand: env.Body, Tail: env.Tail})
	}

	var (
		corr placement.CorrFunc
		err  error
	)
	switch {
	case in.ClusterCorrelation:
		corr, err = clusterCorrelation(in.Monitoring, in.intervalHours())
	case in.Correlations != nil:
		// Precomputed by NewSharedCorrelation over the same monitoring
		// set — same peak vectors, same stats.Correlation values.
		corr = in.Correlations
	default:
		corr, err = intervalPeakCorrelation(in.Monitoring, in.intervalHours())
	}
	if err != nil {
		return nil, fmt.Errorf("stochastic: %w", err)
	}

	p, err := placement.PCP{
		HostSpec:    in.Host.Spec,
		Bound:       1.0,
		RackSize:    in.rackSize(),
		Constraints: in.Constraints,
		Corr:        corr,
		MaxAvgCorr:  in.MaxAvgCorr,
	}.Pack(items)
	if err != nil {
		return nil, fmt.Errorf("stochastic: %w", err)
	}
	return &Plan{
		Planner:     "stochastic",
		Provisioned: p.NumHosts(),
		Schedule:    emulator.StaticSchedule{P: p},
	}, nil
}

// clusterCorrelation approximates pairwise correlations by demand-pattern
// cluster medoids (see internal/cluster) — within a cluster servers count
// as fully correlated, across clusters the medoid correlation stands in.
func clusterCorrelation(set *trace.Set, intervalHours int) (placement.CorrFunc, error) {
	cfg := cluster.Config{IntervalHours: intervalHours}
	res, err := cluster.ByCPUPattern(set, cfg)
	if err != nil {
		return nil, err
	}
	fn, err := cluster.MedoidCorr(set, res, cfg)
	if err != nil {
		return nil, err
	}
	return fn, nil
}

// intervalPeakCorrelation builds a pairwise Pearson correlation function
// over per-interval CPU peaks. Interval peaks, not raw hourly samples, are
// what co-located tails share — two workloads whose 2-hour peaks coincide
// cannot pool their headroom even if the within-interval shapes differ.
func intervalPeakCorrelation(set *trace.Set, intervalHours int) (placement.CorrFunc, error) {
	n := len(set.Servers)
	peaks := make([][]float64, n)
	index := make(map[trace.ServerID]int, n)
	for i, st := range set.Servers {
		p, err := st.Series.Intervals(intervalHours, trace.CPU, stats.Max)
		if err != nil {
			return nil, err
		}
		peaks[i] = p
		index[st.ID] = i
	}
	// Correlations are computed lazily and memoized in a dense matrix:
	// PCP probes pairs repeatedly during packing, so the hit path (one
	// index) dominates. A cell holds ^Float64bits(c); the bitwise NOT
	// makes a stored 0.0 distinguishable from an empty (zero) cell
	// without pre-filling the matrix.
	cells := make([]uint64, n*n)
	return func(a, b trace.ServerID) float64 {
		ia, ok := index[a]
		if !ok {
			return 0
		}
		ib, ok := index[b]
		if !ok {
			return 0
		}
		if ia > ib {
			ia, ib = ib, ia
		}
		k := ia*n + ib
		if u := cells[k]; u != 0 {
			return math.Float64frombits(^u)
		}
		c, err := stats.Correlation(peaks[ia], peaks[ib])
		if err != nil {
			c = 0
		}
		cells[k] = ^math.Float64bits(c)
		return c
	}, nil
}

// NewSharedCorrelation builds the stochastic planner's interval-peak
// correlation function for a monitoring set, with the dense memo matrix
// accessed atomically so the function is safe to share across concurrent
// plans (the per-plan function built by Stochastic.Plan is not). Values are
// identical to the inline path: stats.Correlation over the same
// per-interval peak vectors. A racing duplicate computation evaluates the
// same pure function, so last-write-wins stores are safe. Attach it via
// Input.Correlations.
func NewSharedCorrelation(set *trace.Set, intervalHours int) (placement.CorrFunc, error) {
	n := len(set.Servers)
	peaks := make([][]float64, n)
	index := make(map[trace.ServerID]int, n)
	for i, st := range set.Servers {
		p, err := st.Series.Intervals(intervalHours, trace.CPU, stats.Max)
		if err != nil {
			return nil, err
		}
		peaks[i] = p
		index[st.ID] = i
	}
	// Same ^Float64bits encoding as the inline path: zero means empty.
	cells := make([]atomic.Uint64, n*n)
	return func(a, b trace.ServerID) float64 {
		ia, ok := index[a]
		if !ok {
			return 0
		}
		ib, ok := index[b]
		if !ok {
			return 0
		}
		if ia > ib {
			ia, ib = ib, ia
		}
		k := ia*n + ib
		if u := cells[k].Load(); u != 0 {
			return math.Float64frombits(^u)
		}
		c, err := stats.Correlation(peaks[ia], peaks[ib])
		if err != nil {
			c = 0
		}
		cells[k].Store(^math.Float64bits(c))
		return c
	}, nil
}
