package core

import (
	"fmt"

	"vmwild/internal/cluster"
	"vmwild/internal/emulator"
	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// Stochastic is the correlation-aware semi-static planner modeled on the
// PCP algorithm of [27] (Section 5.1): each VM is sized as an envelope —
// body at the 90th percentile, tail at the maximum — and packed so that
// tail buffers are shared between co-located VMs in proportion to how
// correlated their demands are. Like vanilla semi-static consolidation it
// needs no live-migration reservation.
type Stochastic struct{}

// Name implements Planner.
func (Stochastic) Name() string { return "stochastic" }

// Plan implements Planner.
func (Stochastic) Plan(in Input) (*Plan, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	items, err := envelopeItems(in)
	if err != nil {
		return nil, err
	}

	var (
		corr    placement.CorrFunc
		corrIdx placement.CorrIndexer
	)
	switch {
	case in.ClusterCorrelation:
		corr, err = clusterCorrelation(in.Monitoring, in.intervalHours())
	case in.CorrIndex != nil:
		// Precomputed by NewCorrTable over the same monitoring set —
		// same peak vectors, same stats.Correlation values.
		corrIdx = in.CorrIndex
	case in.Correlations != nil:
		// Precomputed by NewSharedCorrelation; functional lookups only.
		corr = in.Correlations
	default:
		var t *CorrTable
		t, err = NewCorrTable(in.Monitoring, in.intervalHours())
		if err == nil {
			corrIdx = t
			corr = t.Func()
		}
	}
	if err != nil {
		return nil, fmt.Errorf("stochastic: %w", err)
	}

	p, err := placement.PCP{
		HostSpec:    in.Host.Spec,
		Bound:       1.0,
		RackSize:    in.rackSize(),
		Constraints: in.Constraints,
		Corr:        corr,
		CorrIdx:     corrIdx,
		MaxAvgCorr:  in.MaxAvgCorr,
		Reference:   in.DisableIncremental,
	}.Pack(items)
	if err != nil {
		return nil, fmt.Errorf("stochastic: %w", err)
	}
	return &Plan{
		Planner:     "stochastic",
		Provisioned: p.NumHosts(),
		Schedule:    emulator.StaticSchedule{P: p},
	}, nil
}

// envelopeItems sizes every server as a body/tail envelope, or adopts the
// precomputed envelopes when they cover exactly this monitoring set (the
// shared-cache path; SizeEnvelope is deterministic, so precomputed items
// are identical to inline ones). Any mismatch falls back to inline sizing.
func envelopeItems(in Input) ([]placement.Item, error) {
	servers := in.Monitoring.Servers
	if len(in.Envelopes) == len(servers) {
		match := true
		for i, st := range servers {
			if in.Envelopes[i].ID != st.ID {
				match = false
				break
			}
		}
		if match {
			return in.Envelopes, nil
		}
	}
	return SizeEnvelopes(in.Monitoring, in.bodyPercentile())
}

// SizeEnvelopes sizes every server of the set as a body/tail envelope at
// the given body percentile — the stochastic planner's sizing pass, exposed
// so experiment grids can compute it once and share it via Input.Envelopes.
func SizeEnvelopes(set *trace.Set, percentile float64) ([]placement.Item, error) {
	items := make([]placement.Item, 0, len(set.Servers))
	es := sizing.EnvelopeSizer{P: percentile}
	for _, st := range set.Servers {
		env, err := es.Size(st)
		if err != nil {
			return nil, fmt.Errorf("stochastic: %w", err)
		}
		items = append(items, placement.Item{ID: st.ID, Demand: env.Body, Tail: env.Tail})
	}
	return items, nil
}

// clusterCorrelation approximates pairwise correlations by demand-pattern
// cluster medoids (see internal/cluster) — within a cluster servers count
// as fully correlated, across clusters the medoid correlation stands in.
func clusterCorrelation(set *trace.Set, intervalHours int) (placement.CorrFunc, error) {
	cfg := cluster.Config{IntervalHours: intervalHours}
	res, err := cluster.ByCPUPattern(set, cfg)
	if err != nil {
		return nil, err
	}
	fn, err := cluster.MedoidCorr(set, res, cfg)
	if err != nil {
		return nil, err
	}
	return fn, nil
}
