package core

import (
	"math"
	"math/rand"
	"testing"

	"vmwild/internal/predict"
)

// TestCompiledBlockPlansMatchPredictors drives the compiled block-folded
// sizing plans against each predictor's own scan across random histories
// and every report interval, demanding bitwise equality at every aligned
// boundary. The demand matrix feeds a byte-identical report, so
// approximate agreement is not enough.
func TestCompiledBlockPlansMatchPredictors(t *testing.T) {
	preds := []predict.Predictor{
		predict.RecentPeak{Windows: 1},
		predict.RecentPeak{Windows: 12},
		predict.RecentPeak{}, // defaulted Windows
		predict.Periodic{Days: 7, SamplesPerDay: 24},
		predict.Periodic{Days: 3, SamplesPerDay: 24},
		predict.EWMA{Alpha: 0.4, Intervals: 48},
		predict.EWMA{}, // defaulted Alpha, all history
		DefaultCPUPredictor(),
		DefaultMemPredictor(),
		predict.Combined{Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 2},
			predict.Periodic{Days: 5},
			predict.EWMA{Alpha: 0.7, Intervals: 12},
		}},
	}
	rng := rand.New(rand.NewSource(99))
	col := make([]float64, 24*44) // 30d monitoring + 14d evaluation
	for i := range col {
		col[i] = rng.ExpFloat64()*40 + 15*math.Sin(float64(i)/24*2*math.Pi)
	}
	for _, interval := range []int{1, 2, 4, 8, 24} {
		blocks := buildBlockPeaks(col, interval)
		for _, p := range preds {
			ev, ok := compileBlockPlan(p, interval)
			if !ok {
				t.Fatalf("interval %d: %s did not compile", interval, p.Name())
			}
			for histEnd := interval; histEnd <= len(col)-interval; histEnd += interval {
				want, err := p.PredictPeak(col[:histEnd], interval)
				if err != nil {
					t.Fatalf("%s histEnd=%d interval=%d: %v", p.Name(), histEnd, interval, err)
				}
				if got := ev(blocks, col, histEnd, histEnd/interval); got != want {
					t.Fatalf("%s histEnd=%d interval=%d: blocks %v, scan %v", p.Name(), histEnd, interval, got, want)
				}
			}
		}
	}
	// Shapes the fold cannot mirror exactly must be refused, not
	// approximated: a day offset that is not a whole number of blocks,
	// an interval wider than a day, and unknown predictor types.
	if _, ok := compileBlockPlan(predict.Periodic{Days: 2, SamplesPerDay: 10}, 8); ok {
		t.Fatal("misaligned periodic stride should not compile")
	}
	if _, ok := compileBlockPlan(predict.Periodic{Days: 2, SamplesPerDay: 24}, 48); ok {
		t.Fatal("interval wider than a day should not compile")
	}
	if _, ok := compileBlockPlan(predict.Oracle{Future: col}, 8); ok {
		t.Fatal("unknown predictor should not compile")
	}
	if _, ok := compileBlockPlan(predict.Combined{Predictors: []predict.Predictor{predict.Oracle{}}}, 8); ok {
		t.Fatal("combined with unknown component should not compile")
	}
}
