package core

import (
	"math"
	"sync/atomic"

	"vmwild/internal/placement"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// CorrTable is the stochastic planner's pairwise interval-peak correlation
// source. It serves both lookup styles the packer understands — ID-keyed
// (placement.CorrFunc) and dense-indexed (placement.CorrIndexer) — from one
// memo, and is safe to share across concurrent plans.
//
// Values are bit-identical to stats.Correlation over the per-interval peak
// vectors, at about a third of the flops: the mean-centered vectors and
// their summed squares depend on one server only, so they are computed once
// per server here instead of once per probed pair. A pair probe is then a
// single dot product over the centered vectors — the same multiply-add
// sequence, in the same index order, as the sxy accumulator inside
// stats.Correlation, so the result rounds identically.
type CorrTable struct {
	index    map[trace.ServerID]int32
	centered [][]float64
	sxx      []float64
	n        int
	// cells memoizes pair values for the upper triangle: PCP probes pairs
	// repeatedly during packing, so the hit path (one index) dominates. A
	// cell holds ^Float64bits(c); the bitwise NOT makes a stored 0.0
	// distinguishable from an empty (zero) cell without pre-filling.
	// Stores are atomic so the table can be shared across plans; a racing
	// duplicate computation evaluates the same pure function, so
	// last-write-wins is safe. Nil above memoMaxServers (the dense matrix
	// would need n^2 cells — at 100k VMs that is 80 GB), where probes
	// recompute the cheap dot product instead.
	cells []atomic.Uint64
}

// memoMaxServers caps the dense memo matrix at 32 MB (2048^2 cells). Every
// study datacenter is far below it; synthetic 100k-VM fleets skip the memo.
const memoMaxServers = 2048

var _ placement.CorrIndexer = (*CorrTable)(nil)

// NewCorrTable precomputes the centered per-interval CPU peak vectors for
// every server in the set. Interval peaks, not raw hourly samples, are what
// co-located tails share — two workloads whose 2-hour peaks coincide cannot
// pool their headroom even if the within-interval shapes differ.
func NewCorrTable(set *trace.Set, intervalHours int) (*CorrTable, error) {
	n := len(set.Servers)
	t := &CorrTable{
		index:    make(map[trace.ServerID]int32, n),
		centered: make([][]float64, n),
		sxx:      make([]float64, n),
		n:        n,
	}
	for i, st := range set.Servers {
		p, err := st.Series.Intervals(intervalHours, trace.CPU, stats.Max)
		if err != nil {
			return nil, err
		}
		m := stats.Mean(p)
		c := make([]float64, len(p))
		var sxx float64
		for k, x := range p {
			d := x - m
			c[k] = d
			sxx += d * d
		}
		t.centered[i] = c
		t.sxx[i] = sxx
		t.index[st.ID] = int32(i)
	}
	if n <= memoMaxServers {
		t.cells = make([]atomic.Uint64, n*n)
	}
	return t, nil
}

// Index implements placement.CorrIndexer.
func (t *CorrTable) Index(id trace.ServerID) int {
	if i, ok := t.index[id]; ok {
		return int(i)
	}
	return -1
}

// At implements placement.CorrIndexer.
func (t *CorrTable) At(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	if t.cells == nil {
		return t.pairCorr(i, j)
	}
	k := i*t.n + j
	if u := t.cells[k].Load(); u != 0 {
		return math.Float64frombits(^u)
	}
	c := t.pairCorr(i, j)
	t.cells[k].Store(^math.Float64bits(c))
	return c
}

// pairCorr mirrors stats.Correlation exactly: fewer-than-two samples and
// zero-variance series yield 0, everything else sxy/sqrt(sxx*syy).
func (t *CorrTable) pairCorr(i, j int) float64 {
	xs, ys := t.centered[i], t.centered[j]
	if len(xs) < 2 || len(xs) != len(ys) {
		return 0
	}
	sxx, syy := t.sxx[i], t.sxx[j]
	if sxx == 0 || syy == 0 {
		return 0
	}
	var sxy float64
	for k := range xs {
		sxy += xs[k] * ys[k]
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Corr is the ID-keyed lookup; unknown servers correlate 0.
func (t *CorrTable) Corr(a, b trace.ServerID) float64 {
	ia, ok := t.index[a]
	if !ok {
		return 0
	}
	ib, ok := t.index[b]
	if !ok {
		return 0
	}
	return t.At(int(ia), int(ib))
}

// Func adapts the table to the packer's functional interface.
func (t *CorrTable) Func() placement.CorrFunc { return t.Corr }

// NewSharedCorrelation builds the stochastic planner's interval-peak
// correlation function for a monitoring set, with the memo shared safely
// across concurrent plans. Values are identical to the inline path. Attach
// it via Input.Correlations; NewCorrTable exposes the indexed fast path.
func NewSharedCorrelation(set *trace.Set, intervalHours int) (placement.CorrFunc, error) {
	t, err := NewCorrTable(set, intervalHours)
	if err != nil {
		return nil, err
	}
	return t.Func(), nil
}
