package core

import (
	"fmt"

	"vmwild/internal/emulator"
	"vmwild/internal/placement"
	"vmwild/internal/sizing"
)

// SemiStatic is the vanilla semi-static planner (Section 5.1): every VM is
// sized at its peak demand over the monitoring window and packed with
// two-dimensional First-Fit-Decreasing at full host capacity. The placement
// holds for the whole evaluation window; re-planning happens out of band at
// the next maintenance window.
type SemiStatic struct{}

// Name implements Planner.
func (SemiStatic) Name() string { return "semi-static" }

// Plan implements Planner.
func (SemiStatic) Plan(in Input) (*Plan, error) {
	return maxSizedPlan(in, "semi-static", 1.0)
}

// Static is classical one-time consolidation (Section 2.2.1): VMs are sized
// for their expected lifetime peak, which a 30-day window can only estimate
// from below, so a headroom factor pads the observed peak. Packing is the
// same FFD.
type Static struct {
	// Headroom pads the observed monthly peak to approximate the
	// lifetime peak; zero selects 1.25.
	Headroom float64
}

// Name implements Planner.
func (Static) Name() string { return "static" }

// Plan implements Planner.
func (s Static) Plan(in Input) (*Plan, error) {
	h := s.Headroom
	if h == 0 {
		h = 1.25
	}
	return maxSizedPlan(in, "static", h)
}

// maxSizedPlan packs max-sized VMs scaled by headroom at full capacity.
func maxSizedPlan(in Input, name string, headroom float64) (*Plan, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	items := make([]placement.Item, 0, len(in.Monitoring.Servers))
	hostSpec := in.Host.Spec
	for _, st := range in.Monitoring.Servers {
		d, err := sizing.SizeServer(st, sizing.Max{})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		d = d.Scale(headroom)
		// A reservation can never exceed the source machine's own
		// capacity: the workload physically cannot demand more.
		d.CPU = min(d.CPU, st.Spec.CPURPE2)
		d.Mem = min(d.Mem, st.Spec.MemMB)
		items = append(items, placement.Item{ID: st.ID, Demand: d})
	}
	p, err := placement.FFD{
		HostSpec:    hostSpec,
		Bound:       1.0,
		RackSize:    in.rackSize(),
		Constraints: in.Constraints,
		Reference:   in.DisableIncremental,
	}.Pack(items)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &Plan{
		Planner:     name,
		Provisioned: p.NumHosts(),
		Schedule:    emulator.StaticSchedule{P: p},
	}, nil
}
