package core

import (
	"errors"
	"fmt"

	"vmwild/internal/placement"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

// Adapter is the single-interval adaptation engine behind dynamic
// consolidation: given each VM's reservation for the next interval it
// resizes in place, repairs overloaded hosts with the cheapest migrations,
// and evacuates lightly used hosts so they can be switched off. The Dynamic
// planner drives it across a whole evaluation window; the runtime
// controller drives it live, one interval at a time.
type Adapter struct {
	// In carries host model, bound, constraints and rack size; the
	// trace-set fields are not used by the adapter.
	In Input

	cur *placement.Placement
	// clamped is the per-step scratch for bound-clamped items, reused
	// across intervals.
	clamped []placement.Item
	// evac carries consolidate's cross-interval state (failure
	// certificates, scratch buffers); nil when DisableIncremental.
	evac *evacState
	// vmIdx/vmIDs cache each item position's dense VM index: the
	// population and order of items is fixed across intervals, so the
	// per-VM map resolution is paid once, then validated per step with a
	// cheap ID equality check.
	vmIdx []int32
	vmIDs []trace.ServerID
}

// NewAdapter validates the configuration.
func NewAdapter(in Input) (*Adapter, error) {
	if in.Host.Spec.CPURPE2 <= 0 || in.Host.Spec.MemMB <= 0 {
		return nil, errors.New("core: adapter host model has no capacity")
	}
	if in.Bound < 0 || in.Bound > 1 {
		return nil, fmt.Errorf("core: bound %v outside [0, 1]", in.Bound)
	}
	return &Adapter{In: in}, nil
}

// Current returns the adapter's placement (nil before the first Step).
func (a *Adapter) Current() *placement.Placement { return a.cur }

// StepResult summarizes one adaptation round.
type StepResult struct {
	// Migrations is how many VM moves the round ordered.
	Migrations int
	// MigrationDataMB is the memory those moves transfer.
	MigrationDataMB float64
	// ActiveHosts is the number of powered-on hosts afterwards.
	ActiveHosts int
	// OverloadedHosts is how many hosts exceeded their usable capacity
	// after the in-place resize, before repair — the capacity violations
	// the interval opened with. Degraded executions that leave VMs on
	// crowded hosts drive this up.
	OverloadedHosts int
}

// Step adapts the placement to the given per-VM reservations. The first
// call packs from scratch (no migrations); later calls resize, repair and
// consolidate. Items must always cover the same VM population.
func (a *Adapter) Step(items []placement.Item) (StepResult, error) {
	if len(items) == 0 {
		return StepResult{}, errors.New("core: adapter step with no items")
	}
	capacity := sizing.Demand{
		CPU: a.In.Host.Spec.CPURPE2 * a.In.bound(),
		Mem: a.In.Host.Spec.MemMB * a.In.bound(),
	}
	if cap(a.clamped) < len(items) {
		a.clamped = make([]placement.Item, len(items))
	}
	clamped := a.clamped[:len(items)]
	for i, it := range items {
		it.Demand.CPU = min(it.Demand.CPU, capacity.CPU)
		it.Demand.Mem = min(it.Demand.Mem, capacity.Mem)
		clamped[i] = it
	}

	if a.cur == nil {
		p, err := placement.FFD{
			HostSpec:    a.In.Host.Spec,
			Bound:       a.In.bound(),
			RackSize:    a.In.rackSize(),
			Constraints: a.In.Constraints,
			Reference:   a.In.DisableIncremental,
		}.Pack(clamped)
		if err != nil {
			return StepResult{}, fmt.Errorf("core: adapter initial pack: %w", err)
		}
		a.cur = p
		if !a.In.DisableIncremental {
			a.evac = &evacState{}
		}
		return StepResult{ActiveHosts: p.ActiveHosts()}, nil
	}

	if a.cur.NumVMs() != len(clamped) {
		return StepResult{}, fmt.Errorf("core: adapter has %d VMs, step brought %d", a.cur.NumVMs(), len(clamped))
	}
	if len(a.vmIdx) != len(clamped) {
		a.vmIdx, a.vmIDs = a.vmIdx[:0], a.vmIDs[:0]
		for _, it := range clamped {
			a.vmIdx = append(a.vmIdx, int32(a.cur.VMIndex(it.ID)))
			a.vmIDs = append(a.vmIDs, it.ID)
		}
	}
	for i, it := range clamped {
		// The indexed resize skips the per-VM map lookup inside
		// UpdateDemand; unknown VMs fall through to it for the error.
		vi := -1
		if a.vmIDs[i] == it.ID {
			vi = int(a.vmIdx[i])
		} else {
			vi = a.cur.VMIndex(it.ID)
		}
		if vi >= 0 {
			a.cur.UpdateDemandAt(vi, it.Demand)
		} else if err := a.cur.UpdateDemand(it.ID, it.Demand); err != nil {
			return StepResult{}, fmt.Errorf("core: adapter resize %s: %w", it.ID, err)
		}
	}
	var res StepResult
	res.OverloadedHosts = a.cur.NumOverloaded()
	moved, dataMB, err := repairOverloads(a.cur, a.In, a.evac)
	if err != nil {
		return StepResult{}, err
	}
	res.Migrations += moved
	res.MigrationDataMB += dataMB

	moved, dataMB = consolidate(a.cur, a.In, a.evac)
	res.Migrations += moved
	res.MigrationDataMB += dataMB
	res.ActiveHosts = a.cur.ActiveHosts()
	return res, nil
}

// Snapshot returns an isolated copy of the current placement for emulation
// or execution scheduling.
func (a *Adapter) Snapshot() (*placement.Placement, error) {
	if a.cur == nil {
		return nil, errors.New("core: adapter has no placement yet")
	}
	return a.cur.Clone(), nil
}

// Restore replaces the adapter's placement with the given one — the
// degraded-execution path: when live migrations fail, the realized
// placement diverges from the intended one, and the next Step must re-plan
// from where the VMs actually are, not where the plan wanted them.
func (a *Adapter) Restore(p *placement.Placement) error {
	if p == nil {
		return errors.New("core: restore nil placement")
	}
	if a.cur != nil && a.cur.NumVMs() != p.NumVMs() {
		return fmt.Errorf("core: restore placement has %d VMs, adapter tracks %d", p.NumVMs(), a.cur.NumVMs())
	}
	a.cur = p.Clone()
	// The restored placement may come from a different Clone chain, whose
	// universe numbers VMs differently — drop the cached indices.
	a.vmIdx, a.vmIDs = nil, nil
	return nil
}

// PredictItems sizes every server for the next interval from its history —
// the Predict + Size steps packaged for adapter users. history maps server
// IDs to their demand series so far (hourly samples, oldest first).
func PredictItems(in Input, ids []trace.ServerID, specs []trace.Spec, cpuHist, memHist [][]float64, interval int) ([]placement.Item, error) {
	if len(ids) != len(specs) || len(ids) != len(cpuHist) || len(ids) != len(memHist) {
		return nil, errors.New("core: prediction inputs differ in length")
	}
	cpuPred := in.CPUPredictor
	if cpuPred == nil {
		cpuPred = DefaultCPUPredictor()
	}
	memPred := in.MemPredictor
	if memPred == nil {
		memPred = DefaultMemPredictor()
	}
	items := make([]placement.Item, len(ids))
	for i := range ids {
		cpu, err := cpuPred.PredictPeak(cpuHist[i], interval)
		if err != nil {
			return nil, fmt.Errorf("core: predict cpu for %s: %w", ids[i], err)
		}
		mem, err := memPred.PredictPeak(memHist[i], interval)
		if err != nil {
			return nil, fmt.Errorf("core: predict mem for %s: %w", ids[i], err)
		}
		items[i] = placement.Item{
			ID: ids[i],
			Demand: sizing.Demand{
				CPU: min(cpu, specs[i].CPURPE2),
				Mem: min(mem, specs[i].MemMB),
			},
		}
	}
	return items, nil
}
