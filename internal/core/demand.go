package core

import (
	"errors"
	"fmt"
	"sync"

	"vmwild/internal/predict"
	"vmwild/internal/sizing"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// DemandMatrix is the dynamic planner's walk-forward sizing, fully
// materialized: Demands[k][i] is the clamped per-interval reservation of
// server i (in Monitoring set order) for consolidation interval k.
//
// The matrix depends only on the demand histories, the predictors and the
// interval length — never on the host model, the utilization bound, the
// constraints or the emulator knobs. That independence is what makes it
// shareable: the sensitivity sweep (7 bounds), the blade study (3 host
// models) and the improved-migration study all consume the same matrix for
// a given data center, which experiments.Context exploits with a keyed
// once-cache.
type DemandMatrix struct {
	// IntervalHours is the consolidation interval the matrix was sized for.
	IntervalHours int
	// OracleSizing records whether the matrix holds realized peaks
	// (clairvoyant sizing) rather than predictions.
	OracleSizing bool
	// IDs holds the servers in Monitoring set order.
	IDs []trace.ServerID
	// Demands[k][i] is server i's reservation for interval k, already
	// clamped to the source machine's capacity.
	Demands [][]sizing.Demand
}

// SizeDynamicDemands runs the Predict + Size steps of dynamic consolidation
// for every interval of the evaluation window and returns the full demand
// matrix. It performs exactly the computation Dynamic.Plan does inline when
// Input.Demands is nil, so planning against a precomputed matrix is
// byte-identical to planning without one.
func SizeDynamicDemands(in Input) (*DemandMatrix, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if in.Evaluation == nil || len(in.Evaluation.Servers) == 0 {
		return nil, errors.New("dynamic: no evaluation window to plan over")
	}
	if len(in.Evaluation.Servers) != len(in.Monitoring.Servers) {
		return nil, errors.New("dynamic: monitoring and evaluation sets differ in servers")
	}

	interval := in.intervalHours()
	evalHours := in.Evaluation.Servers[0].Series.Len()
	intervals := evalHours / interval
	if intervals < 1 {
		return nil, fmt.Errorf("dynamic: evaluation window of %d hours is shorter than one interval", evalHours)
	}

	cpuPred := in.CPUPredictor
	if cpuPred == nil {
		cpuPred = DefaultCPUPredictor()
	}
	memPred := in.MemPredictor
	if memPred == nil {
		memPred = DefaultMemPredictor()
	}

	// Concatenate monitoring and evaluation demand once per server; the
	// walk-forward predictions slice into this. A caller-supplied
	// Histories (experiments.Context shares one per data center) skips
	// the rebuild — one column copy per server per context instead of one
	// per demand key.
	n := len(in.Monitoring.Servers)
	monHours := in.Monitoring.Servers[0].Series.Len()
	hist := in.Histories
	if hist != nil {
		if err := hist.compatible(in, monHours); err != nil {
			return nil, err
		}
	}
	var (
		ids     []trace.ServerID
		specs   []trace.Spec
		cpuHist [][]float64
		memHist [][]float64
	)
	if hist != nil {
		ids, specs, cpuHist, memHist = hist.IDs, hist.Specs, hist.CPU, hist.Mem
	} else {
		ids = make([]trace.ServerID, n)
		specs = make([]trace.Spec, n)
		cpuHist = make([][]float64, n)
		memHist = make([][]float64, n)
		for i, st := range in.Monitoring.Servers {
			ev := in.Evaluation.Servers[i]
			if ev.ID != st.ID {
				return nil, fmt.Errorf("dynamic: server order mismatch at %d: %s vs %s", i, st.ID, ev.ID)
			}
			ids[i] = st.ID
			specs[i] = st.Spec
			cpuHist[i] = concat(st.Series.Col(trace.CPU), ev.Series.Col(trace.CPU))
			memHist[i] = concat(st.Series.Col(trace.Mem), ev.Series.Col(trace.Mem))
		}
	}

	// Per-interval block maxima over each column. Every walk-forward
	// boundary histEnd = monHours + k*interval is a block boundary
	// whenever monHours divides evenly, so the predictors' windows
	// decompose into whole blocks and fold a handful of cached maxima
	// instead of rescanning the samples — bit-identical by max
	// associativity. The predictors are compiled to closures once per
	// matrix (compileBlockPlan refuses any shape it cannot mirror
	// exactly), and shared histories memoize the blocks per interval so
	// every demand key over a data center reuses one build pass.
	aligned := monHours%interval == 0
	var cpuEval, memEval blockEval
	if aligned && !in.OracleSizing {
		cpuEval, _ = compileBlockPlan(cpuPred, interval)
		memEval, _ = compileBlockPlan(memPred, interval)
	}
	var cpuBlocks, memBlocks [][]float64
	if (aligned && in.OracleSizing) || cpuEval != nil || memEval != nil {
		if hist != nil {
			cpuBlocks, memBlocks = hist.blockPeaks(interval)
		} else {
			cpuBlocks = make([][]float64, n)
			memBlocks = make([][]float64, n)
			for i := 0; i < n; i++ {
				cpuBlocks[i] = buildBlockPeaks(cpuHist[i], interval)
				memBlocks[i] = buildBlockPeaks(memHist[i], interval)
			}
		}
	}

	m := &DemandMatrix{
		IntervalHours: interval,
		OracleSizing:  in.OracleSizing,
		IDs:           ids,
		Demands:       make([][]sizing.Demand, intervals),
	}
	var err error
	for k := 0; k < intervals; k++ {
		histEnd := monHours + k*interval
		hb := histEnd / interval
		row := make([]sizing.Demand, n)
		for i := 0; i < n; i++ {
			var cpu, mem float64
			switch {
			case in.OracleSizing && cpuBlocks != nil:
				// The block holds exactly the realized window's max
				// (blocks clamp at the column end the same way).
				cpu = cpuBlocks[i][hb]
				mem = memBlocks[i][hb]
			case in.OracleSizing:
				cpu = stats.Max(cpuHist[i][histEnd:min(histEnd+interval, len(cpuHist[i]))])
				mem = stats.Max(memHist[i][histEnd:min(histEnd+interval, len(memHist[i]))])
			default:
				if cpuEval != nil {
					cpu = cpuEval(cpuBlocks[i], cpuHist[i], histEnd, hb)
				} else if cpu, err = cpuPred.PredictPeak(cpuHist[i][:histEnd], interval); err != nil {
					return nil, fmt.Errorf("dynamic: predict cpu for %s: %w", ids[i], err)
				}
				if memEval != nil {
					mem = memEval(memBlocks[i], memHist[i], histEnd, hb)
				} else if mem, err = memPred.PredictPeak(memHist[i][:histEnd], interval); err != nil {
					return nil, fmt.Errorf("dynamic: predict mem for %s: %w", ids[i], err)
				}
			}
			// A VM can demand at most its source machine's capacity;
			// the adapter clamps to host capacity.
			row[i] = sizing.Demand{
				CPU: min(cpu, specs[i].CPURPE2),
				Mem: min(mem, specs[i].MemMB),
			}
		}
		m.Demands[k] = row
	}
	return m, nil
}

// DemandKey is the cache identity of the matrix SizeDynamicDemands would
// produce for this input: predictors (fully parameterized, after
// defaulting), interval length and sizing mode. Inputs with equal keys and
// equal trace sets yield identical matrices.
func DemandKey(in Input) string {
	cpuPred := in.CPUPredictor
	if cpuPred == nil {
		cpuPred = DefaultCPUPredictor()
	}
	memPred := in.MemPredictor
	if memPred == nil {
		memPred = DefaultMemPredictor()
	}
	// Predictor names are not parameter-unique (predict.Combined is just
	// "combined"), so key on the full printed value.
	return fmt.Sprintf("cpu=%+v|mem=%+v|interval=%d|oracle=%t",
		cpuPred, memPred, in.intervalHours(), in.OracleSizing)
}

// compatible checks that a caller-supplied matrix matches the input it is
// being used with.
func (m *DemandMatrix) compatible(in Input, interval, intervals int) error {
	if m.IntervalHours != interval {
		return fmt.Errorf("dynamic: demand matrix sized for %dh intervals, input wants %dh", m.IntervalHours, interval)
	}
	if m.OracleSizing != in.OracleSizing {
		return errors.New("dynamic: demand matrix sizing mode differs from input")
	}
	if len(m.Demands) != intervals {
		return fmt.Errorf("dynamic: demand matrix has %d intervals, input wants %d", len(m.Demands), intervals)
	}
	if len(m.IDs) != len(in.Monitoring.Servers) {
		return fmt.Errorf("dynamic: demand matrix has %d servers, input has %d", len(m.IDs), len(in.Monitoring.Servers))
	}
	for i, st := range in.Monitoring.Servers {
		if ev := in.Evaluation.Servers[i]; ev.ID != st.ID {
			return fmt.Errorf("dynamic: server order mismatch at %d: %s vs %s", i, st.ID, ev.ID)
		}
		if m.IDs[i] != st.ID {
			return fmt.Errorf("dynamic: demand matrix server mismatch at %d: %s vs %s", i, m.IDs[i], st.ID)
		}
	}
	return nil
}

// buildBlockPeaks computes per-interval block maxima of one column: entry b
// is the maximum of col[b*interval : min((b+1)*interval, len(col))],
// accumulated with the same left-to-right strictly-greater scan stats.Max
// performs, so each entry equals stats.Max of its block bit for bit.
// interval 1 aliases the column itself — every block is one sample.
func buildBlockPeaks(col []float64, interval int) []float64 {
	if interval == 1 {
		return col
	}
	nb := (len(col) + interval - 1) / interval
	out := make([]float64, nb)
	for b := 0; b < nb; b++ {
		lo := b * interval
		hi := min(lo+interval, len(col))
		m := col[lo]
		for _, x := range col[lo+1 : hi] {
			if x > m {
				m = x
			}
		}
		out[b] = m
	}
	return out
}

// blockEval evaluates one compiled predictor over a column's block maxima;
// histEnd must be hb*interval for the interval the plan was compiled with.
// Compiled plans never fail: every error branch of the source predictor is
// refused at compile time instead.
type blockEval func(blocks, col []float64, histEnd, hb int) float64

// compileBlockPlan translates a predictor into a blockEval, hoisting the
// type dispatch and parameter defaulting out of the per-cell loop. A plan
// exists only for predictor shapes whose windows decompose into whole
// interval blocks at every aligned boundary — then folding the cached block
// maxima left to right with the strictly-greater rule is the same reduction
// stats.Max runs over the raw samples (max is associative), so compiled and
// direct evaluation return the identical float. Anything else (unknown
// predictor, misaligned periodic stride) yields ok=false and the caller
// runs the predictor itself.
func compileBlockPlan(p predict.Predictor, interval int) (blockEval, bool) {
	if interval < 1 {
		return nil, false
	}
	switch q := p.(type) {
	case predict.RecentPeak:
		w := q.Windows
		if w < 1 {
			w = 1
		}
		return func(blocks, _ []float64, _, hb int) float64 {
			nb := w
			if nb > hb {
				nb = hb
			}
			m := blocks[hb-nb]
			for _, x := range blocks[hb-nb+1 : hb] {
				if x > m {
					m = x
				}
			}
			return m
		}, true
	case predict.Periodic:
		spd := q.SamplesPerDay
		if spd <= 0 {
			spd = 24
		}
		days := q.Days
		if days < 1 {
			days = 1
		}
		if spd%interval != 0 || interval > spd {
			// A day offset that is not a whole number of blocks, or a
			// window that would clamp at the history end — the scan
			// ranges are not block decompositions.
			return nil, false
		}
		stride := spd / interval
		return func(blocks, col []float64, histEnd, hb int) float64 {
			// Seeded at zero and folded with max, exactly like the scan.
			var peak float64
			found := false
			for d := 1; d <= days; d++ {
				b := hb - d*stride
				if b < 0 {
					break
				}
				peak = max(peak, blocks[b])
				found = true
			}
			if !found {
				return stats.Max(col[:histEnd])
			}
			return peak
		}, true
	case predict.EWMA:
		alpha := q.Alpha
		if alpha <= 0 || alpha > 1 {
			alpha = 0.5
		}
		bound := q.Intervals
		return func(blocks, _ []float64, _, hb int) float64 {
			b := 0
			if bound > 0 && hb-bound > 0 {
				b = hb - bound
			}
			est := blocks[b]
			for b++; b < hb; b++ {
				est = alpha*blocks[b] + (1-alpha)*est
			}
			return est
		}, true
	case predict.Combined:
		if len(q.Predictors) == 0 {
			return nil, false
		}
		parts := make([]blockEval, len(q.Predictors))
		for i, c := range q.Predictors {
			ev, ok := compileBlockPlan(c, interval)
			if !ok {
				return nil, false
			}
			parts[i] = ev
		}
		h := q.Headroom
		if h <= 0 {
			h = 1
		}
		return func(blocks, col []float64, histEnd, hb int) float64 {
			var peak float64
			for _, ev := range parts {
				peak = max(peak, ev(blocks, col, histEnd, hb))
			}
			return peak * h
		}, true
	default:
		return nil, false
	}
}

// DemandHistories holds the concatenated monitoring+evaluation demand
// columns of a data center — exactly what SizeDynamicDemands rebuilds from
// the trace sets when the field is absent. The histories depend only on the
// two trace sets (never on predictors, interval or sizing mode), so one
// build serves every demand key computed over a data center;
// experiments.Context caches exactly one per context.
type DemandHistories struct {
	// IDs and Specs mirror the monitoring set's server order.
	IDs   []trace.ServerID
	Specs []trace.Spec
	// MonHours is the monitoring window length; sample MonHours+k is the
	// k-th evaluation hour.
	MonHours int
	// CPU and Mem are the concatenated demand columns per server.
	CPU, Mem [][]float64

	mu sync.Mutex
	// blocks memoizes per-interval block maxima of the columns, so every
	// demand key sized at the same interval shares one build pass.
	blocks map[int]*blockPair
}

// blockPair holds the block maxima of both resources for one interval.
type blockPair struct {
	cpu, mem [][]float64
}

// blockPeaks returns the per-interval block maxima for every column,
// building them at most once per interval. Safe for concurrent use.
func (h *DemandHistories) blockPeaks(interval int) (cpu, mem [][]float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.blocks == nil {
		h.blocks = make(map[int]*blockPair)
	}
	bp, ok := h.blocks[interval]
	if !ok {
		bp = &blockPair{
			cpu: make([][]float64, len(h.CPU)),
			mem: make([][]float64, len(h.Mem)),
		}
		for i := range h.CPU {
			bp.cpu[i] = buildBlockPeaks(h.CPU[i], interval)
			bp.mem[i] = buildBlockPeaks(h.Mem[i], interval)
		}
		h.blocks[interval] = bp
	}
	return bp.cpu, bp.mem
}

// BuildDemandHistories concatenates the demand columns of the two sets.
func BuildDemandHistories(mon, eval *trace.Set) (*DemandHistories, error) {
	if mon == nil || len(mon.Servers) == 0 || eval == nil || len(eval.Servers) == 0 {
		return nil, errors.New("dynamic: histories need monitoring and evaluation servers")
	}
	if len(mon.Servers) != len(eval.Servers) {
		return nil, errors.New("dynamic: monitoring and evaluation sets differ in servers")
	}
	n := len(mon.Servers)
	h := &DemandHistories{
		IDs:      make([]trace.ServerID, n),
		Specs:    make([]trace.Spec, n),
		MonHours: mon.Servers[0].Series.Len(),
		CPU:      make([][]float64, n),
		Mem:      make([][]float64, n),
	}
	for i, st := range mon.Servers {
		ev := eval.Servers[i]
		if ev.ID != st.ID {
			return nil, fmt.Errorf("dynamic: server order mismatch at %d: %s vs %s", i, st.ID, ev.ID)
		}
		h.IDs[i] = st.ID
		h.Specs[i] = st.Spec
		h.CPU[i] = concat(st.Series.Col(trace.CPU), ev.Series.Col(trace.CPU))
		h.Mem[i] = concat(st.Series.Col(trace.Mem), ev.Series.Col(trace.Mem))
	}
	return h, nil
}

// compatible checks the histories against the input they are used with.
func (h *DemandHistories) compatible(in Input, monHours int) error {
	if len(h.IDs) != len(in.Monitoring.Servers) {
		return fmt.Errorf("dynamic: histories cover %d servers, input has %d", len(h.IDs), len(in.Monitoring.Servers))
	}
	if h.MonHours != monHours {
		return fmt.Errorf("dynamic: histories monitored %d hours, input %d", h.MonHours, monHours)
	}
	for i, st := range in.Monitoring.Servers {
		if ev := in.Evaluation.Servers[i]; ev.ID != st.ID {
			return fmt.Errorf("dynamic: server order mismatch at %d: %s vs %s", i, st.ID, ev.ID)
		}
		if h.IDs[i] != st.ID {
			return fmt.Errorf("dynamic: histories server mismatch at %d: %s vs %s", i, h.IDs[i], st.ID)
		}
	}
	return nil
}

// concat joins two read-only columns into one freshly allocated slice.
func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}
