package core

import (
	"errors"
	"fmt"

	"vmwild/internal/sizing"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// DemandMatrix is the dynamic planner's walk-forward sizing, fully
// materialized: Demands[k][i] is the clamped per-interval reservation of
// server i (in Monitoring set order) for consolidation interval k.
//
// The matrix depends only on the demand histories, the predictors and the
// interval length — never on the host model, the utilization bound, the
// constraints or the emulator knobs. That independence is what makes it
// shareable: the sensitivity sweep (7 bounds), the blade study (3 host
// models) and the improved-migration study all consume the same matrix for
// a given data center, which experiments.Context exploits with a keyed
// once-cache.
type DemandMatrix struct {
	// IntervalHours is the consolidation interval the matrix was sized for.
	IntervalHours int
	// OracleSizing records whether the matrix holds realized peaks
	// (clairvoyant sizing) rather than predictions.
	OracleSizing bool
	// IDs holds the servers in Monitoring set order.
	IDs []trace.ServerID
	// Demands[k][i] is server i's reservation for interval k, already
	// clamped to the source machine's capacity.
	Demands [][]sizing.Demand
}

// SizeDynamicDemands runs the Predict + Size steps of dynamic consolidation
// for every interval of the evaluation window and returns the full demand
// matrix. It performs exactly the computation Dynamic.Plan does inline when
// Input.Demands is nil, so planning against a precomputed matrix is
// byte-identical to planning without one.
func SizeDynamicDemands(in Input) (*DemandMatrix, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	if in.Evaluation == nil || len(in.Evaluation.Servers) == 0 {
		return nil, errors.New("dynamic: no evaluation window to plan over")
	}
	if len(in.Evaluation.Servers) != len(in.Monitoring.Servers) {
		return nil, errors.New("dynamic: monitoring and evaluation sets differ in servers")
	}

	interval := in.intervalHours()
	evalHours := in.Evaluation.Servers[0].Series.Len()
	intervals := evalHours / interval
	if intervals < 1 {
		return nil, fmt.Errorf("dynamic: evaluation window of %d hours is shorter than one interval", evalHours)
	}

	cpuPred := in.CPUPredictor
	if cpuPred == nil {
		cpuPred = DefaultCPUPredictor()
	}
	memPred := in.MemPredictor
	if memPred == nil {
		memPred = DefaultMemPredictor()
	}

	// Concatenate monitoring and evaluation demand once per server; the
	// walk-forward predictions slice into this. One allocation per column:
	// the cached Series columns are copied back to back.
	n := len(in.Monitoring.Servers)
	var (
		ids     = make([]trace.ServerID, n)
		specs   = make([]trace.Spec, n)
		cpuHist = make([][]float64, n)
		memHist = make([][]float64, n)
	)
	monHours := in.Monitoring.Servers[0].Series.Len()
	for i, st := range in.Monitoring.Servers {
		ev := in.Evaluation.Servers[i]
		if ev.ID != st.ID {
			return nil, fmt.Errorf("dynamic: server order mismatch at %d: %s vs %s", i, st.ID, ev.ID)
		}
		ids[i] = st.ID
		specs[i] = st.Spec
		cpuHist[i] = concat(st.Series.Col(trace.CPU), ev.Series.Col(trace.CPU))
		memHist[i] = concat(st.Series.Col(trace.Mem), ev.Series.Col(trace.Mem))
	}

	m := &DemandMatrix{
		IntervalHours: interval,
		OracleSizing:  in.OracleSizing,
		IDs:           ids,
		Demands:       make([][]sizing.Demand, intervals),
	}
	var err error
	for k := 0; k < intervals; k++ {
		histEnd := monHours + k*interval
		row := make([]sizing.Demand, n)
		for i := 0; i < n; i++ {
			var cpu, mem float64
			if in.OracleSizing {
				cpu = stats.Max(cpuHist[i][histEnd:min(histEnd+interval, len(cpuHist[i]))])
				mem = stats.Max(memHist[i][histEnd:min(histEnd+interval, len(memHist[i]))])
			} else {
				cpu, err = cpuPred.PredictPeak(cpuHist[i][:histEnd], interval)
				if err != nil {
					return nil, fmt.Errorf("dynamic: predict cpu for %s: %w", ids[i], err)
				}
				mem, err = memPred.PredictPeak(memHist[i][:histEnd], interval)
				if err != nil {
					return nil, fmt.Errorf("dynamic: predict mem for %s: %w", ids[i], err)
				}
			}
			// A VM can demand at most its source machine's capacity;
			// the adapter clamps to host capacity.
			row[i] = sizing.Demand{
				CPU: min(cpu, specs[i].CPURPE2),
				Mem: min(mem, specs[i].MemMB),
			}
		}
		m.Demands[k] = row
	}
	return m, nil
}

// DemandKey is the cache identity of the matrix SizeDynamicDemands would
// produce for this input: predictors (fully parameterized, after
// defaulting), interval length and sizing mode. Inputs with equal keys and
// equal trace sets yield identical matrices.
func DemandKey(in Input) string {
	cpuPred := in.CPUPredictor
	if cpuPred == nil {
		cpuPred = DefaultCPUPredictor()
	}
	memPred := in.MemPredictor
	if memPred == nil {
		memPred = DefaultMemPredictor()
	}
	// Predictor names are not parameter-unique (predict.Combined is just
	// "combined"), so key on the full printed value.
	return fmt.Sprintf("cpu=%+v|mem=%+v|interval=%d|oracle=%t",
		cpuPred, memPred, in.intervalHours(), in.OracleSizing)
}

// compatible checks that a caller-supplied matrix matches the input it is
// being used with.
func (m *DemandMatrix) compatible(in Input, interval, intervals int) error {
	if m.IntervalHours != interval {
		return fmt.Errorf("dynamic: demand matrix sized for %dh intervals, input wants %dh", m.IntervalHours, interval)
	}
	if m.OracleSizing != in.OracleSizing {
		return errors.New("dynamic: demand matrix sizing mode differs from input")
	}
	if len(m.Demands) != intervals {
		return fmt.Errorf("dynamic: demand matrix has %d intervals, input wants %d", len(m.Demands), intervals)
	}
	if len(m.IDs) != len(in.Monitoring.Servers) {
		return fmt.Errorf("dynamic: demand matrix has %d servers, input has %d", len(m.IDs), len(in.Monitoring.Servers))
	}
	for i, st := range in.Monitoring.Servers {
		if ev := in.Evaluation.Servers[i]; ev.ID != st.ID {
			return fmt.Errorf("dynamic: server order mismatch at %d: %s vs %s", i, st.ID, ev.ID)
		}
		if m.IDs[i] != st.ID {
			return fmt.Errorf("dynamic: demand matrix server mismatch at %d: %s vs %s", i, m.IDs[i], st.ID)
		}
	}
	return nil
}

// concat joins two read-only columns into one freshly allocated slice.
func concat(a, b []float64) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	return append(append(out, a...), b...)
}
