package advisor

import (
	"testing"

	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

func generate(t *testing.T, p *workload.Profile, servers int) *trace.Set {
	t.Helper()
	p.Servers = servers
	set, err := workload.Generate(p, workload.MonitoringHours, workload.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	return set
}

func TestAdviseEmpty(t *testing.T) {
	if _, err := Advise(nil, Config{}); err == nil {
		t.Error("expected error for nil set")
	}
	if _, err := Advise(&trace.Set{}, Config{}); err == nil {
		t.Error("expected error for empty set")
	}
}

func TestAdviseMemoryBoundWorkload(t *testing.T) {
	// Airlines is memory-bound throughout: the advisor must not pick
	// dynamic consolidation (the paper's Section 8 recommendation).
	set := generate(t, workload.Airlines(), 120)
	rec, err := Advise(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Mode == ModeDynamic {
		t.Errorf("memory-bound estate recommended dynamic: %+v", rec)
	}
	if rec.Attributes.MemoryBoundFrac < 0.9 {
		t.Errorf("memory-bound fraction = %.2f, want >= 0.9", rec.Attributes.MemoryBoundFrac)
	}
	if len(rec.Reasons) == 0 {
		t.Error("recommendation must carry reasons")
	}
}

func TestAdviseNaturalResources(t *testing.T) {
	// Natural Resources: memory-constrained and only moderately bursty —
	// semi-static family.
	set := generate(t, workload.NaturalResources(), 150)
	rec, err := Advise(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Mode == ModeDynamic {
		t.Errorf("Natural Resources recommended dynamic: %+v", rec.Attributes)
	}
}

func TestMeasureBankingAttributes(t *testing.T) {
	set := generate(t, workload.Banking(), 150)
	attrs, err := Measure(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if attrs.HeavyTailFrac < 0.25 {
		t.Errorf("Banking heavy-tail fraction = %.2f, want bursty", attrs.HeavyTailFrac)
	}
	if attrs.PeakAvgMedian < 3 {
		t.Errorf("Banking peak/avg median = %.1f, want >= 3", attrs.PeakAvgMedian)
	}
	if attrs.MemoryBoundFrac > 0.6 {
		t.Errorf("Banking memory-bound fraction = %.2f, want CPU-dominated", attrs.MemoryBoundFrac)
	}
	if attrs.TailGainFrac <= 0 || attrs.TailGainFrac >= 1 {
		t.Errorf("tail gain = %.2f out of range", attrs.TailGainFrac)
	}
	if attrs.UnderPrediction < 0 || attrs.UnderPrediction > 1 {
		t.Errorf("under-prediction = %.2f out of range", attrs.UnderPrediction)
	}
	if attrs.DynamicFriendlyFrac < 0 || attrs.DynamicFriendlyFrac > 1 {
		t.Errorf("dynamic-friendly fraction = %.2f out of range", attrs.DynamicFriendlyFrac)
	}
}

func TestAdviseBankingIsNotVanilla(t *testing.T) {
	// Banking is the bursty CPU-bound estate: the advisor should pick
	// dynamic (if the predictor scores well) or stochastic — never plain
	// vanilla semi-static.
	set := generate(t, workload.Banking(), 150)
	rec, err := Advise(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Mode == ModeSemiStatic {
		t.Errorf("Banking recommended vanilla semi-static: %+v", rec.Attributes)
	}
}

func TestAdviseThresholdOverrides(t *testing.T) {
	set := generate(t, workload.Banking(), 80)
	// With an absurd memory-bound limit of effectively zero, everything
	// is "memory-bound" and dynamic must not be chosen.
	rec, err := Advise(set, Config{MemoryBoundLimit: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Mode == ModeDynamic {
		t.Error("override should force the semi-static family")
	}
}

func TestModeString(t *testing.T) {
	if ModeSemiStatic.String() != "semi-static" || ModeStochastic.String() != "stochastic" || ModeDynamic.String() != "dynamic" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("fallback name wrong")
	}
}

func TestSampleServers(t *testing.T) {
	set := generate(t, workload.Beverage(), 20)
	if got := sampleServers(set, 50); len(got) != 20 {
		t.Errorf("sample larger than population: %d", len(got))
	}
	got := sampleServers(set, 5)
	if len(got) != 5 {
		t.Errorf("sample size = %d, want 5", len(got))
	}
	seen := make(map[trace.ServerID]bool)
	for _, st := range got {
		if seen[st.ID] {
			t.Error("duplicate server in sample")
		}
		seen[st.ID] = true
	}
}
