// Package advisor implements the paper's concluding recommendation
// (Section 8): "Our work establishes the need of a comprehensive
// consolidation planning analysis prior to VM consolidation in the wild."
//
// Given a monitoring window, the advisor computes the workload attributes
// the paper shows to be decisive — CPU burstiness, memory constraint,
// demand predictability and correlation stability — and recommends a
// consolidation mode:
//
//   - highly bursty, predictable, CPU-bound estates benefit from dynamic
//     consolidation (at the price of the migration reservation and
//     contention risk);
//   - memory-constrained estates should use semi-static consolidation;
//     stochastic semi-static when tail pooling has something to win and
//     workload correlations are stable, vanilla otherwise.
//
// It also classifies individual servers as candidates for dynamic
// placement, following the screening idea of Bobroff et al. [4].
package advisor

import (
	"errors"
	"fmt"

	"vmwild/internal/analysis"
	"vmwild/internal/catalog"
	"vmwild/internal/cluster"
	"vmwild/internal/predict"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
)

// Mode is a consolidation recommendation.
type Mode int

const (
	// ModeSemiStatic recommends vanilla semi-static consolidation.
	ModeSemiStatic Mode = iota + 1
	// ModeStochastic recommends correlation-aware semi-static
	// consolidation.
	ModeStochastic
	// ModeDynamic recommends dynamic consolidation with a live
	// migration reservation.
	ModeDynamic
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeSemiStatic:
		return "semi-static"
	case ModeStochastic:
		return "stochastic"
	case ModeDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Attributes are the decision inputs the advisor measures.
type Attributes struct {
	// HeavyTailFrac is the fraction of servers with CPU CoV >= 1
	// (Figure 3).
	HeavyTailFrac float64
	// PeakAvgMedian is the median CPU peak-to-average ratio at the
	// dynamic consolidation interval (Figure 2).
	PeakAvgMedian float64
	// MemoryBoundFrac is the fraction of consolidation intervals in
	// which aggregate demand is memory-constrained (Figure 6).
	MemoryBoundFrac float64
	// UnderPrediction is the mean relative under-prediction of interval
	// peaks by the dynamic planner's default predictor, averaged over a
	// server sample — the paper's contention driver.
	UnderPrediction float64
	// CorrelationStability is the correlation between first-half and
	// second-half pairwise correlations on a server sample; values near
	// 1 mean stochastic placement decisions stay valid over time (the
	// stability noted in [27]).
	CorrelationStability float64
	// TailGainFrac is the average fraction of a server's peak
	// reservation that percentile (body) sizing would release — what
	// stochastic consolidation has to play with.
	TailGainFrac float64
	// DynamicFriendlyFrac is the fraction of servers individually
	// classified as good dynamic-placement candidates.
	DynamicFriendlyFrac float64
	// DemandClusters is the number of distinct demand patterns found in
	// the server sample; low counts mean strong shared structure
	// (events, job windows) that limits statistical multiplexing.
	DemandClusters int
}

// Recommendation is the advisor's output.
type Recommendation struct {
	Mode       Mode
	Attributes Attributes
	// Reasons explains the decision step by step.
	Reasons []string
}

// Config tunes the decision thresholds; zero values select the defaults
// derived from the paper's findings.
type Config struct {
	// IntervalHours is the dynamic consolidation interval (default 2).
	IntervalHours int
	// BladeRatio is the target host's CPU/memory capacity ratio in
	// RPE2 per GB (default 160, the HS23-class blade).
	BladeRatio float64
	// MemoryBoundLimit above which dynamic consolidation is pointless
	// (default 0.6).
	MemoryBoundLimit float64
	// HeavyTailMin is the heavy-tail fraction above which an estate
	// counts as bursty (default 0.3).
	HeavyTailMin float64
	// UnderPredictionMax is the predictor error above which fine-grained
	// sizing is too risky (default 0.25).
	UnderPredictionMax float64
	// TailGainMin is the sizing slack below which stochastic packing
	// cannot beat vanilla (default 0.15).
	TailGainMin float64
	// SampleServers bounds how many servers the expensive per-server
	// screens examine (default 64).
	SampleServers int
}

func (c Config) withDefaults() Config {
	if c.IntervalHours <= 0 {
		c.IntervalHours = 2
	}
	if c.BladeRatio <= 0 {
		c.BladeRatio = catalog.ReferenceRatioPerGB
	}
	if c.MemoryBoundLimit <= 0 {
		c.MemoryBoundLimit = 0.6
	}
	if c.HeavyTailMin <= 0 {
		c.HeavyTailMin = 0.3
	}
	if c.UnderPredictionMax <= 0 {
		c.UnderPredictionMax = 0.25
	}
	if c.TailGainMin <= 0 {
		c.TailGainMin = 0.15
	}
	if c.SampleServers <= 0 {
		c.SampleServers = 64
	}
	return c
}

// Advise analyzes the monitoring window and recommends a consolidation
// mode.
func Advise(set *trace.Set, cfg Config) (Recommendation, error) {
	if set == nil || len(set.Servers) == 0 {
		return Recommendation{}, errors.New("advisor: empty trace set")
	}
	cfg = cfg.withDefaults()

	attrs, err := Measure(set, cfg)
	if err != nil {
		return Recommendation{}, err
	}

	rec := Recommendation{Attributes: attrs}
	memBound := attrs.MemoryBoundFrac >= cfg.MemoryBoundLimit
	bursty := attrs.HeavyTailFrac >= cfg.HeavyTailMin && attrs.PeakAvgMedian >= 3
	predictable := attrs.UnderPrediction <= cfg.UnderPredictionMax
	tailsWorthIt := attrs.TailGainFrac >= cfg.TailGainMin
	stableCorr := attrs.CorrelationStability >= 0.5

	switch {
	case memBound:
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"memory-constrained in %.0f%% of intervals: fine-grained CPU sizing cannot release capacity (Observation 3)",
			attrs.MemoryBoundFrac*100))
		if tailsWorthIt && stableCorr {
			rec.Mode = ModeStochastic
			rec.Reasons = append(rec.Reasons, fmt.Sprintf(
				"percentile sizing releases %.0f%% of peak reservations and correlations are stable (%.2f): stochastic packing is safe",
				attrs.TailGainFrac*100, attrs.CorrelationStability))
		} else {
			rec.Mode = ModeSemiStatic
			rec.Reasons = append(rec.Reasons,
				"little sizing slack or unstable correlations: keep conservative peak sizing")
		}
	case bursty && predictable:
		rec.Mode = ModeDynamic
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"bursty (%.0f%% heavy-tailed, median peak/avg %.1f) and predictable (under-prediction %.0f%%): dynamic consolidation can save power (Observation 6)",
			attrs.HeavyTailFrac*100, attrs.PeakAvgMedian, attrs.UnderPrediction*100))
		rec.Reasons = append(rec.Reasons,
			"reserve at least 20% of every host for live migration (Observation 4) and expect contention during record surges (Figures 8-9)")
	case bursty:
		rec.Mode = ModeStochastic
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"bursty but hard to predict (under-prediction %.0f%%): fine-grained sizing would contend; pool tails statistically instead",
			attrs.UnderPrediction*100))
	default:
		if tailsWorthIt && stableCorr {
			rec.Mode = ModeStochastic
			rec.Reasons = append(rec.Reasons,
				"steady demand with usable sizing slack and stable correlations: stochastic semi-static captures the gains without migration risk (Observation 5)")
		} else {
			rec.Mode = ModeSemiStatic
			rec.Reasons = append(rec.Reasons,
				"steady demand with little slack: vanilla semi-static consolidation is sufficient")
		}
	}
	return rec, nil
}

// Measure computes the advisor's decision attributes without deciding.
func Measure(set *trace.Set, cfg Config) (Attributes, error) {
	cfg = cfg.withDefaults()
	var attrs Attributes

	cov, err := analysis.CoVCDF(set, trace.CPU)
	if err != nil {
		return attrs, err
	}
	attrs.HeavyTailFrac = cov.FractionAbove(1)

	pa, err := analysis.PeakToAverageCDF(set, cfg.IntervalHours, trace.CPU)
	if err != nil {
		return attrs, err
	}
	attrs.PeakAvgMedian = pa.Median()

	memBound, err := analysis.MemoryBoundFraction(set, cfg.IntervalHours, cfg.BladeRatio)
	if err != nil {
		return attrs, err
	}
	attrs.MemoryBoundFrac = memBound

	sample := sampleServers(set, cfg.SampleServers)
	attrs.UnderPrediction, err = underPrediction(sample, cfg.IntervalHours)
	if err != nil {
		return attrs, err
	}
	attrs.CorrelationStability, err = correlationStability(sample, cfg.IntervalHours)
	if err != nil {
		return attrs, err
	}
	attrs.TailGainFrac, err = tailGain(sample)
	if err != nil {
		return attrs, err
	}
	attrs.DynamicFriendlyFrac, err = dynamicFriendlyFraction(sample, cfg)
	if err != nil {
		return attrs, err
	}
	clusters, err := cluster.ByCPUPattern(&trace.Set{Name: set.Name, Servers: sample},
		cluster.Config{IntervalHours: cfg.IntervalHours})
	if err != nil {
		return attrs, err
	}
	attrs.DemandClusters = len(clusters.Clusters)
	return attrs, nil
}

// sampleServers picks an evenly spaced subset for the per-server screens.
func sampleServers(set *trace.Set, n int) []*trace.ServerTrace {
	if len(set.Servers) <= n {
		return set.Servers
	}
	out := make([]*trace.ServerTrace, 0, n)
	step := float64(len(set.Servers)) / float64(n)
	for i := 0; i < n; i++ {
		out = append(out, set.Servers[int(float64(i)*step)])
	}
	return out
}

// underPrediction scores the dynamic planner's default predictor across the
// sample, walking each trace past a one-week warmup.
func underPrediction(sample []*trace.ServerTrace, interval int) (float64, error) {
	p := predict.Combined{
		Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 1},
			predict.Periodic{Days: 7, SamplesPerDay: 24},
		},
		Headroom: 1.10,
	}
	var (
		total float64
		n     int
	)
	for _, st := range sample {
		series := st.Series.Values(trace.CPU)
		warmup := 7 * 24
		if warmup >= len(series)-interval {
			warmup = len(series) / 2
		}
		if warmup < interval {
			continue
		}
		e, err := predict.Error(p, series, warmup, interval)
		if err != nil {
			return 0, fmt.Errorf("advisor: score %s: %w", st.ID, err)
		}
		total += e
		n++
	}
	if n == 0 {
		return 0, errors.New("advisor: traces too short to score predictability")
	}
	return total / float64(n), nil
}

// correlationStability compares pairwise interval-peak correlations
// measured on the first and second halves of the window.
func correlationStability(sample []*trace.ServerTrace, interval int) (float64, error) {
	if len(sample) < 3 {
		return 1, nil
	}
	half := sample[0].Series.Len() / 2
	if half < 2*interval {
		return 1, nil
	}
	var firsts, seconds []float64
	for i := 0; i < len(sample); i++ {
		for j := i + 1; j < len(sample) && j < i+6; j++ {
			a, b := sample[i].Series, sample[j].Series
			c1, err := halfCorr(a, b, 0, half, interval)
			if err != nil {
				return 0, err
			}
			c2, err := halfCorr(a, b, half, a.Len(), interval)
			if err != nil {
				return 0, err
			}
			firsts = append(firsts, c1)
			seconds = append(seconds, c2)
		}
	}
	c, err := stats.Correlation(firsts, seconds)
	if err != nil {
		return 0, err
	}
	return c, nil
}

func halfCorr(a, b *trace.Series, from, to, interval int) (float64, error) {
	sa, err := a.Slice(from, to)
	if err != nil {
		return 0, err
	}
	sb, err := b.Slice(from, to)
	if err != nil {
		return 0, err
	}
	pa, err := sa.Intervals(interval, trace.CPU, stats.Max)
	if err != nil {
		return 0, err
	}
	pb, err := sb.Intervals(interval, trace.CPU, stats.Max)
	if err != nil {
		return 0, err
	}
	c, err := stats.Correlation(pa, pb)
	if err != nil {
		return 0, err
	}
	return c, nil
}

// tailGain measures how much of the peak CPU reservation percentile sizing
// would release, averaged over the sample.
func tailGain(sample []*trace.ServerTrace) (float64, error) {
	var (
		total float64
		n     int
	)
	for _, st := range sample {
		vals := st.Series.Values(trace.CPU)
		peak := stats.Max(vals)
		if peak <= 0 {
			continue
		}
		body, err := stats.Percentile(vals, 90)
		if err != nil {
			return 0, err
		}
		total += (peak - body) / peak
		n++
	}
	if n == 0 {
		return 0, errors.New("advisor: no usable servers for tail gain")
	}
	return total / float64(n), nil
}

// dynamicFriendlyFraction classifies servers individually: a server is a
// dynamic-placement candidate when its demand is bursty (peak/avg >= 3)
// and its interval peaks are predictable (under-prediction <= 25%) — the
// Bobroff-style screen.
func dynamicFriendlyFraction(sample []*trace.ServerTrace, cfg Config) (float64, error) {
	p := predict.Combined{
		Predictors: []predict.Predictor{
			predict.RecentPeak{Windows: 1},
			predict.Periodic{Days: 7, SamplesPerDay: 24},
		},
		Headroom: 1.10,
	}
	friendly := 0
	for _, st := range sample {
		vals := st.Series.Values(trace.CPU)
		if stats.PeakToAverage(vals) < 3 {
			continue
		}
		warmup := 7 * 24
		if warmup >= len(vals)-cfg.IntervalHours {
			warmup = len(vals) / 2
		}
		if warmup < cfg.IntervalHours {
			continue
		}
		e, err := predict.Error(p, vals, warmup, cfg.IntervalHours)
		if err != nil {
			return 0, err
		}
		if e <= cfg.UnderPredictionMax {
			friendly++
		}
	}
	return float64(friendly) / float64(len(sample)), nil
}
