package scenario

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/constraints"
	"vmwild/internal/controller"
	"vmwild/internal/core"
	"vmwild/internal/emulator"
	"vmwild/internal/executor"
	"vmwild/internal/fault"
	"vmwild/internal/monitor"
	"vmwild/internal/placement"
	"vmwild/internal/power"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
	"vmwild/internal/wal"
	"vmwild/internal/workload"
)

// soakEpoch anchors hour zero of every soak scenario's monitoring
// timeline (the paper's trace collection date).
var soakEpoch = time.Date(2014, 12, 8, 0, 0, 0, 0, time.UTC)

// World is the mutable simulation state a scenario's turns act on: the
// ground-truth demand traces, the consolidation controller, the fault
// model, and (for soak scenarios) the durable warehouse+journal stack.
type World struct {
	scn  *Scenario
	seed int64
	opts *Options

	set  *trace.Set
	hour int
	step int

	host     catalog.Model
	emCfg    emulator.Config
	execCfg  executor.Config
	faultCfg fault.Config
	faults   *scriptedFaults
	avoid    map[string]bool

	ctrl     *controller.Controller
	interval int

	// Soak plumbing (nil/zero for in-memory scenarios).
	stateDir  string
	ownsState bool
	wh        *monitor.Warehouse
	whLog     *monitor.WarehouseLog
	journal   *controller.Journal
	specs     map[trace.ServerID]trace.Spec
	perHour   int
	ingested  int
	recovered int
}

// scriptedFaults adapts the pure fault injector to the executor's
// FaultModel seam and layers the scenario's scripted state on top: forced
// host outages and the host→rack map that turns RackOutage draws into
// correlated per-host downtime. The harness re-derives the injector every
// interval so identical (vm, attempt) identities draw fresh across
// intervals.
type scriptedFaults struct {
	inj  *fault.Injector
	down map[string]bool
	rack map[string]string
}

func (f *scriptedFaults) MigrationOutcome(vm trace.ServerID, attempt int) fault.Outcome {
	return f.inj.MigrationOutcome(vm, attempt)
}

func (f *scriptedFaults) StallFactor() float64 { return f.inj.StallFactor() }

func (f *scriptedFaults) HostDown(host string, wave int) bool {
	if f.down[host] {
		return true
	}
	if f.inj.HostDown(host, wave) {
		return true
	}
	return f.inj.RackDown(f.rack[host], wave)
}

// avoidHosts vetoes every assignment onto a drained host; one constraint
// covers the whole avoid set.
type avoidHosts struct{ hosts map[string]bool }

func (c avoidHosts) Name() string { return "avoid-drained-hosts" }

func (c avoidHosts) Permits(vm trace.ServerID, host string, _ constraints.View) error {
	if c.hosts[host] {
		return fmt.Errorf("host %s is drained for maintenance", host)
	}
	return nil
}

func newWorld(s *Scenario, seed int64, opts *Options) (*World, error) {
	prof := *s.Profile
	set, err := workload.Generate(&prof, s.Hours(), stats.Split(seed, "workload"))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: generate workload: %w", s.ID, err)
	}
	w := &World{
		scn:      s,
		seed:     seed,
		opts:     opts,
		set:      set,
		hour:     s.StartHours,
		step:     s.step(),
		host:     s.Host,
		faultCfg: s.Fault,
		faults:   &scriptedFaults{down: map[string]bool{}, rack: map[string]string{}},
		avoid:    map[string]bool{},
	}
	w.emCfg = emulator.Config{
		HostSpec:     s.Host.Spec,
		Power:        power.HostModel{IdleWatts: s.Host.IdleWatts, PeakWatts: s.Host.PeakWatts},
		VirtOverhead: 0.05,
	}
	w.execCfg = executor.DefaultConfig()
	w.execCfg.Fault = w.faults

	if s.Soak != nil {
		if err := w.openSoak(); err != nil {
			w.close()
			return nil, err
		}
	}
	if err := w.buildController(nil); err != nil {
		w.close()
		return nil, err
	}
	if w.journal != nil {
		w.recovered = w.journal.Recovery().Intervals
	}
	return w, nil
}

func (w *World) openSoak() error {
	soak := w.scn.Soak
	w.perHour = soak.samplesPerHour()
	w.stateDir = w.opts.StateDir
	if w.stateDir == "" {
		dir, err := os.MkdirTemp("", "vmwild-scenario-")
		if err != nil {
			return fmt.Errorf("scenario %s: soak state dir: %w", w.scn.ID, err)
		}
		w.stateDir = dir
		w.ownsState = true
	}
	w.specs = make(map[trace.ServerID]trace.Spec, len(w.set.Servers))
	for _, st := range w.set.Servers {
		w.specs[st.ID] = st.Spec
	}
	// Retention far beyond any scenario horizon: soak runs must never
	// age samples out mid-run.
	w.wh = monitor.NewWarehouse(1 << 20 * time.Hour)
	whOpts := wal.Options{Sync: soak.syncPolicy()}
	whLog, err := monitor.OpenWarehouseLog(w.wh, filepath.Join(w.stateDir, "warehouse"), soak.checkpointEvery(), whOpts)
	if err != nil {
		return fmt.Errorf("scenario %s: open warehouse log: %w", w.scn.ID, err)
	}
	w.whLog = whLog
	jOpts := wal.Options{Sync: soak.syncPolicy()}
	if w.opts.journalOpts != nil {
		jOpts = *w.opts.journalOpts
	}
	journal, err := controller.OpenJournal(filepath.Join(w.stateDir, "controller"), jOpts)
	if err != nil {
		return fmt.Errorf("scenario %s: open controller journal: %w", w.scn.ID, err)
	}
	w.journal = journal
	// The warehouse remembers how far ingestion got (the WAL replays it
	// back); server 0 is the ingestion clock — it is exempt from agent
	// dropout, so its sample count divides evenly into hours.
	if len(w.set.Servers) > 0 {
		w.ingested = w.wh.SampleCount(w.set.Servers[0].ID) / w.perHour
	}
	return nil
}

// buildController (re)assembles the consolidation loop around the current
// host model and constraint set. adopt, when non-nil, seeds it with an
// externally realized placement (drain, hardware swap).
func (w *World) buildController(adopt *placement.Placement) error {
	var cons constraints.Set
	if len(w.avoid) > 0 {
		cons = constraints.Set{avoidHosts{hosts: w.avoid}}
	}
	ctrl, err := controller.New(controller.Config{
		Fetch: w.fetch,
		Planner: core.Input{
			Host:          w.host,
			IntervalHours: w.step,
			Constraints:   cons,
		},
		Executor:        w.execCfg,
		MinHistoryHours: w.scn.StartHours,
		Journal:         w.journal,
	})
	if err != nil {
		return fmt.Errorf("scenario %s: build controller: %w", w.scn.ID, err)
	}
	if adopt != nil {
		if err := ctrl.AdoptPlacement(adopt, w.interval); err != nil {
			return fmt.Errorf("scenario %s: adopt placement: %w", w.scn.ID, err)
		}
	}
	w.ctrl = ctrl
	return nil
}

func (w *World) fetch() (*trace.Set, error) {
	if w.wh != nil {
		return w.wh.CollectSet(w.set.Name, w.specs, soakEpoch)
	}
	return w.set.SliceAll(0, w.hour)
}

// refreshFaults re-derives the injector for the current interval (extra
// distinguishes retry rounds inside one action) and rebuilds the host→rack
// map from the live placement so RackOutage draws hit whole racks.
func (w *World) refreshFaults(extra int64) error {
	cfg := w.faultCfg
	if !cfg.Enabled() {
		w.faults.inj = nil
		return nil
	}
	cfg.Seed = stats.Derive(stats.Derive(stats.Split(w.seed, "fault"), int64(w.interval)), extra)
	inj, err := fault.New(cfg)
	if err != nil {
		return fmt.Errorf("scenario %s: fault config: %w", w.scn.ID, err)
	}
	w.faults.inj = inj
	w.faults.rack = map[string]string{}
	if cfg.RackOutage > 0 {
		if p := w.ctrl.Placement(); p != nil {
			for _, h := range p.Hosts() {
				w.faults.rack[h.ID] = h.Rack
			}
		}
	}
	return nil
}

// ingestUpTo feeds the warehouse every monitoring sample up to (not
// including) hour — the agents' view of the ground-truth traces, with
// agent dropout applied to every server except the clock server 0.
func (w *World) ingestUpTo(hour int) error {
	if w.wh == nil || w.ingested >= hour {
		return nil
	}
	slot := time.Hour / time.Duration(w.perHour)
	for si, st := range w.set.Servers {
		spec := st.Spec
		for h := w.ingested; h < hour; h++ {
			u := st.Series.Samples[h]
			pct := 0.0
			if spec.CPURPE2 > 0 {
				pct = u.CPU / spec.CPURPE2 * 100
			}
			pct = min(max(pct, 0), 100)
			mem := max(u.Mem, 0)
			for k := 0; k < w.perHour; k++ {
				if si > 0 && w.faults.inj.AgentDrops(st.ID, h*w.perHour+k) {
					continue
				}
				s := monitor.Sample{
					Server:            st.ID,
					Timestamp:         soakEpoch.Add(time.Duration(h)*time.Hour + time.Duration(k)*slot),
					TotalProcessorPct: pct,
					MemCommittedMB:    mem,
				}
				if err := w.wh.IngestDurable(s); err != nil {
					return fmt.Errorf("scenario %s: ingest hour %d: %w", w.scn.ID, h, err)
				}
			}
		}
	}
	w.ingested = hour
	return nil
}

// runInterval drives one consolidation interval and measures it: the
// controller's tick, then an emulator replay of the realized placement
// against the actual demand of the hours the placement serves.
func (w *World) runInterval(turn string) (IntervalMetrics, error) {
	if err := w.refreshFaults(0); err != nil {
		return IntervalMetrics{}, err
	}
	if err := w.ingestUpTo(w.hour); err != nil {
		return IntervalMetrics{}, err
	}
	t0 := time.Now()
	tick, err := w.ctrl.RunInterval()
	latency := time.Since(t0)
	if err != nil {
		return IntervalMetrics{}, fmt.Errorf("scenario %s: interval %d: %w", w.scn.ID, w.interval, err)
	}
	m := IntervalMetrics{
		Interval:        tick.Interval,
		Turn:            turn,
		HistoryHours:    tick.HistoryHours,
		PlannedMoves:    tick.Step.Migrations,
		Attempted:       tick.Moves.Attempted,
		Completed:       tick.Moves.Succeeded,
		Aborted:         tick.Moves.Aborted,
		FailedAttempts:  tick.Moves.Failed,
		StalledAttempts: tick.Moves.Stalled,
		Degraded:        tick.Degraded,
		Feasible:        tick.Feasible,
		OverloadedHosts: tick.Step.OverloadedHosts,
		MigrationDataMB: tick.Step.MigrationDataMB,
		PlanLatency:     latency,
	}
	if tick.Execution != nil {
		m.ExecMillis = tick.Execution.Total.Milliseconds()
	}
	realized := w.ctrl.Placement()
	m.ActiveHosts = realized.ActiveHosts()

	end := min(w.hour+w.step, w.set.Servers[0].Series.Len())
	if end > w.hour {
		slice, err := w.set.SliceAll(w.hour, end)
		if err != nil {
			return IntervalMetrics{}, err
		}
		replay, err := emulator.Run(slice, emulator.StaticSchedule{P: realized}, end-w.hour, w.emCfg)
		if err != nil {
			return IntervalMetrics{}, fmt.Errorf("scenario %s: SLO replay: %w", w.scn.ID, err)
		}
		m.SLOViolations = len(replay.Contentions)
		m.ContentionHours = replay.ContentionHours
	}

	w.hour += w.step
	w.interval++
	return m, nil
}

// skipInterval fast-forwards past an interval the journal already
// committed (soak resume): the clock advances, nothing is re-driven.
func (w *World) skipInterval() {
	w.hour += w.step
	w.interval++
}

func (w *World) close() {
	if w.whLog != nil {
		w.whLog.Close()
		w.whLog = nil
	}
	if w.journal != nil {
		w.journal.Close()
		w.journal = nil
	}
	if w.ownsState && w.stateDir != "" {
		os.RemoveAll(w.stateDir)
		w.stateDir = ""
	}
}

// ---- Accessors for turn actions and checkpoints ----

// Hour is the current position in the trace timeline.
func (w *World) Hour() int { return w.hour }

// Interval is the next global interval index.
func (w *World) Interval() int { return w.interval }

// Set is the ground-truth trace set (turn actions may mutate future
// hours; checkpoints must treat it as read-only).
func (w *World) Set() *trace.Set { return w.set }

// Placement is a copy of the current placement (nil before the first
// interval).
func (w *World) Placement() *placement.Placement { return w.ctrl.Placement() }

// Warehouse is the soak warehouse, nil for in-memory scenarios.
func (w *World) Warehouse() *monitor.Warehouse { return w.wh }

// JournalBytes is the controller journal's write volume (0 without soak).
func (w *World) JournalBytes() int64 {
	if w.journal == nil {
		return 0
	}
	return w.journal.BytesWritten()
}

// Drained returns the currently drained (maintenance) hosts, sorted.
func (w *World) Drained() []string {
	out := make([]string, 0, len(w.avoid))
	for h := range w.avoid {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// ActiveHostIDs returns the IDs of hosts with at least one VM, sorted.
func (w *World) ActiveHostIDs() []string {
	p := w.ctrl.Placement()
	if p == nil {
		return nil
	}
	var out []string
	for _, h := range p.Hosts() {
		if len(p.VMsOn(h.ID)) > 0 {
			out = append(out, h.ID)
		}
	}
	sort.Strings(out)
	return out
}

// ---- World mutations (turn actions) ----

// ScaleDemand multiplies the demand of every server whose Class matches
// (empty matches all) for the next hours hours — CPU by cpuFactor, memory
// by memFactor — clamped to each server's capacity. The paper's estates
// are memory-bound, so a surge that should stress consolidation must grow
// memory too, not just CPU. It returns how many servers were touched.
func (w *World) ScaleDemand(class string, cpuFactor, memFactor float64, hours int) int {
	touched := 0
	for _, st := range w.set.Servers {
		if class != "" && st.Class != class {
			continue
		}
		touched++
		end := min(w.hour+hours, st.Series.Len())
		for h := w.hour; h < end; h++ {
			s := &st.Series.Samples[h]
			s.CPU = min(s.CPU*cpuFactor, st.Spec.CPURPE2)
			s.Mem = min(s.Mem*memFactor, st.Spec.MemMB)
		}
	}
	return touched
}

// SetFault replaces the fault model from the next interval on (the seed
// field is managed by the harness and ignored).
func (w *World) SetFault(cfg fault.Config) error {
	cfg.Seed = 0
	probe := cfg
	probe.Seed = 1
	if _, err := fault.New(probe); err != nil {
		return err
	}
	w.faultCfg = cfg
	return nil
}

// ForceHostsDown marks hosts unreachable for migration traffic until
// ClearForcedOutages — a scripted outage on top of the probabilistic ones.
func (w *World) ForceHostsDown(hosts ...string) {
	for _, h := range hosts {
		w.faults.down[h] = true
	}
}

// ClearForcedOutages lifts every forced outage.
func (w *World) ClearForcedOutages() {
	w.faults.down = map[string]bool{}
}

// DrainHosts evacuates the given hosts (largest VMs first onto the
// emptiest remaining hosts, opening fresh hosts when capacity runs out),
// executes the migrations under the fault model — retrying aborted moves
// in up to four follow-up rounds, as a maintenance operator would — and
// fences the hosts off from future planning until ReopenHosts.
func (w *World) DrainHosts(hosts ...string) error {
	if len(hosts) == 0 {
		return nil
	}
	cur := w.ctrl.Placement()
	if cur == nil {
		return errors.New("scenario: drain before the first interval")
	}
	drainSet := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		if cur.HostIndex(h) < 0 {
			return fmt.Errorf("scenario: drain unknown host %s", h)
		}
		drainSet[h] = true
		w.avoid[h] = true
	}
	for round := int64(0); ; round++ {
		if err := w.refreshFaults(1 + round); err != nil {
			return err
		}
		moves, err := w.planEvacuation(cur, drainSet)
		if err != nil {
			return err
		}
		if len(moves) == 0 {
			break
		}
		exec, err := executor.Execute(cur, moves, w.execCfg)
		if err != nil {
			return fmt.Errorf("scenario: drain execution: %w", err)
		}
		cur = exec.Final
		if !exec.Degraded() {
			break
		}
		if round >= 4 {
			return fmt.Errorf("scenario: drain of %v stuck with %d moves aborted after %d rounds",
				hosts, len(exec.Aborted), round+1)
		}
	}
	return w.buildController(cur)
}

// ReopenHosts returns drained hosts to the planner's pool; the next
// consolidation intervals fold load back onto them if worthwhile.
func (w *World) ReopenHosts(hosts ...string) error {
	for _, h := range hosts {
		delete(w.avoid, h)
	}
	return w.buildController(w.ctrl.Placement())
}

// planEvacuation relocates every VM on the drained hosts: largest memory
// first onto the emptiest non-drained, non-avoided hosts, opening fresh
// hosts when nothing fits (an evacuation must succeed even if the
// remaining estate is full).
func (w *World) planEvacuation(p *placement.Placement, drain map[string]bool) ([]executor.Move, error) {
	var vms []trace.ServerID
	for h := range drain {
		vms = append(vms, p.VMsOn(h)...)
	}
	if len(vms) == 0 {
		return nil, nil
	}
	sort.Slice(vms, func(i, j int) bool {
		a, _ := p.Item(vms[i])
		b, _ := p.Item(vms[j])
		if a.Demand.Mem != b.Demand.Mem {
			return a.Demand.Mem > b.Demand.Mem
		}
		return vms[i] < vms[j]
	})
	target := p.Clone()
	for _, vm := range vms {
		it, err := target.Remove(vm)
		if err != nil {
			return nil, err
		}
		best := -1
		bestSlack := -1.0
		cap := target.Capacity()
		for i, h := range target.Hosts() {
			if drain[h.ID] || w.avoid[h.ID] || !target.FitsAt(i, it.Demand) {
				continue
			}
			u := target.UsedAt(i)
			slack := min((cap.CPU-u.CPU)/cap.CPU, (cap.Mem-u.Mem)/cap.Mem)
			if slack > bestSlack {
				bestSlack = slack
				best = i
			}
		}
		var host string
		if best >= 0 {
			host = target.Hosts()[best].ID
		} else {
			host = target.OpenHost().ID
		}
		if err := target.Assign(it, host); err != nil {
			return nil, err
		}
	}
	return executor.Diff(p, target)
}

// UpgradeHardware swaps every host to a new model in place (the
// hardware-generation refresh: same blades, extended memory). VMs stay
// where they are; the controller re-plans on the new capacity from the
// next interval, and the consolidation wave that follows is the payoff
// being measured.
func (w *World) UpgradeHardware(m catalog.Model) error {
	if m.Spec.CPURPE2 <= 0 || m.Spec.MemMB <= 0 {
		return fmt.Errorf("scenario: hardware model %q has no capacity", m.Name)
	}
	cur := w.ctrl.Placement()
	if cur == nil {
		return errors.New("scenario: hardware swap before the first interval")
	}
	rackSize := m.BladesPerRack
	if rackSize <= 0 {
		rackSize = 14
	}
	next, err := placement.NewPlacement(m.Spec, core.DefaultBound, rackSize)
	if err != nil {
		return err
	}
	for _, h := range cur.Hosts() {
		next.EnsureHost(h.ID)
		for _, vm := range cur.VMsOn(h.ID) {
			it, _ := cur.Item(vm)
			if err := next.Assign(it, h.ID); err != nil {
				return fmt.Errorf("scenario: hardware swap: %w", err)
			}
		}
	}
	w.host = m
	w.emCfg.HostSpec = m.Spec
	w.emCfg.Power = power.HostModel{IdleWatts: m.IdleWatts, PeakWatts: m.PeakWatts}
	return w.buildController(next)
}
