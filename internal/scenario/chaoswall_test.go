package scenario

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"vmwild/internal/workload"
)

// chaosWallSeeds returns the seeds the chaos wall runs at: the paper seed
// and one unrelated seed by default, or exactly the seed CHAOSWALL_SEED
// names — the hook CI's seed matrix uses.
func chaosWallSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("CHAOSWALL_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOSWALL_SEED %q: %v", env, err)
		}
		return []int64{n}
	}
	return []int64{workload.DefaultSeed, 7}
}

// TestChaosWall drives every resilience scenario — the real sender →
// proxy → warehouse → query server → controller stack over real sockets —
// and requires every checkpoint to pass. The checkpoints assert only
// timing-free invariants (exact accounting, bit-identical survivors,
// bounded recovery), so the wall is meaningful at any seed even though
// socket timing varies run to run.
func TestChaosWall(t *testing.T) {
	for _, rs := range Resilience() {
		for _, seed := range chaosWallSeeds(t) {
			rs, seed := rs, seed
			t.Run(fmt.Sprintf("%s/seed=%d", rs.ID, seed), func(t *testing.T) {
				t.Parallel()
				res, err := rs.Run(seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, cp := range res.Checkpoints {
					if cp.Passed {
						t.Logf("checkpoint %-28s [%s] ok", cp.Name, cp.Turn)
					} else {
						t.Errorf("checkpoint %s [%s]: %s", cp.Name, cp.Turn, cp.Detail)
					}
				}
				if !res.Passed && !t.Failed() {
					t.Error("result reports failure but no checkpoint did")
				}
			})
		}
	}
}

func TestGetResilience(t *testing.T) {
	seen := map[string]bool{}
	for _, rs := range Resilience() {
		if rs.ID == "" || rs.Name == "" || rs.Description == "" || rs.run == nil {
			t.Fatalf("scenario %q is structurally incomplete", rs.ID)
		}
		if seen[rs.ID] {
			t.Fatalf("duplicate resilience scenario id %q", rs.ID)
		}
		seen[rs.ID] = true
		got, err := GetResilience(rs.ID)
		if err != nil || got.ID != rs.ID {
			t.Fatalf("GetResilience(%q) = %v, %v", rs.ID, got, err)
		}
	}
	if _, err := GetResilience("no-such-drill"); err == nil {
		t.Fatal("unknown resilience scenario did not error")
	}
}
