package scenario

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/chaos"
	"vmwild/internal/controller"
	"vmwild/internal/core"
	"vmwild/internal/executor"
	"vmwild/internal/monitor"
	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

// IngestStorm floods a gated warehouse: a calm baseline, then a burst the
// ingest limiter is frozen against so only a fixed budget may land, then
// the limit lifts and the fleet drains. The shed count must equal the
// over-budget excess EXACTLY — not approximately — because the frozen
// token bucket plus the acked envelope protocol make admission
// deterministic even while the proxy is injecting resets.
func IngestStorm() *ResilienceScenario {
	const (
		servers    = 24
		calmHours  = 24
		stormHours = 24
		liftHours  = 6
		perHour    = 4
		hours      = calmHours + stormHours + liftHours
	)
	return &ResilienceScenario{
		ID:   "ingest-storm",
		Name: "Ingest storm",
		Description: "Admission control under a monitoring flood: a frozen token " +
			"budget sheds the over-budget excess exactly, the connection gate keeps " +
			"the listener live, and the surviving aggregates stay bit-identical.",
		rig: rigConfig{
			servers: servers,
			hours:   hours,
			perHour: perHour,
			profile: workload.Airlines,
			ingest: chaos.Config{
				Latency:   100 * time.Microsecond,
				Jitter:    100 * time.Microsecond,
				ResetProb: 0.02,
			},
			warehouse: func(w *monitor.Warehouse) {
				w.MaxConns = 8
				w.WriteTimeout = 2 * time.Second
			},
			sender: func(i int, s *monitor.ReliableSender) {
				s.Chunk = 48
				s.BackoffMax = 50 * time.Millisecond
				// Every sender releases its slot after each flush: 24
				// agents funnel through 8 connection slots, so the
				// admission gate is exercised on every single flush. A
				// fleet of persistent connections above MaxConns would
				// instead starve whoever dials ninth — that is the
				// overload the gate exists to refuse.
				s.CloseEachFlush = true
			},
		},
		run: func(r *chaosRig) error {
			r.phase("calm")
			r.queueHours(0, calmHours)
			r.check("calm-ingest-clean", r.flushAll(10))

			r.phase("storm")
			const storm = servers * stormHours * perHour
			const budget = storm / 3
			r.wh.SetIngestLimit(0, budget)
			r.queueHours(calmHours, calmHours+stormHours)
			r.check("storm-flush-completes", r.flushAll(10))
			r.check("storm-sheds-exactly", func() error {
				t := r.totals()
				if want := int64(storm - budget); t.ServerShed != want {
					return fmt.Errorf("shed %d samples, want exactly %d (storm %d − budget %d)",
						t.ServerShed, want, storm, budget)
				}
				return nil
			}())

			r.phase("recovery")
			r.wh.SetIngestLimit(0, 0)
			r.queueHours(calmHours+stormHours, hours)
			r.check("post-storm-recovery", r.flushAll(10))
			r.check("nothing-left-pending", func() error {
				if t := r.totals(); t.Pending != 0 {
					return fmt.Errorf("%d samples still pending after recovery", t.Pending)
				}
				return nil
			}())
			r.check("accounting-exact", r.checkAccounting())
			r.check("survivor-identity", r.verifyIdentity(false))
			return nil
		},
	}
}

// PartitionHeal cuts the network between the fleet and the serving plane
// mid-run, proves nothing leaks through or gets lost, heals it, and
// requires full recovery: every generated sample lands exactly once, the
// aggregates match a clean rebuild bit for bit, and the consolidation
// controller plans off the healed query path as if nothing had happened.
func PartitionHeal() *ResilienceScenario {
	const (
		servers   = 16
		perHour   = 1
		preHours  = 85
		partHours = 128
		hours     = 170 // ≥ the controller's one-week warm-up plus one interval
	)
	return &ResilienceScenario{
		ID:   "partition-heal",
		Name: "Partition and heal",
		Description: "A full network partition between fleet and serving plane: " +
			"ingest and query both go dark, nothing is lost or duplicated across the " +
			"heal, and the controller plans off the recovered warehouse bit-identically.",
		rig: rigConfig{
			servers: servers,
			hours:   hours,
			perHour: perHour,
			profile: workload.Airlines,
			ingest:  chaos.Config{Latency: 50 * time.Microsecond},
			query:   chaos.Config{Latency: 50 * time.Microsecond},
			warehouse: func(w *monitor.Warehouse) {
				w.WriteTimeout = 2 * time.Second
			},
			sender: func(i int, s *monitor.ReliableSender) {
				s.Chunk = 64
				s.BackoffMax = 20 * time.Millisecond
			},
		},
		run: func(r *chaosRig) error {
			r.phase("steady")
			r.queueHours(0, preHours)
			r.check("pre-partition-clean", r.flushAll(10))
			pre := r.totals().Acked

			r.phase("partition")
			r.ingestProxy.Partition()
			r.queryProxy.Partition()
			r.queueHours(preHours, partHours)
			flushErr := r.flushAll(2)
			r.check("partition-blocks-ingest", func() error {
				if flushErr == nil {
					return errors.New("flush succeeded through a partitioned network")
				}
				if got := r.totals().Acked; got != pre {
					return fmt.Errorf("%d samples acked during the partition", got-pre)
				}
				return nil
			}())
			r.check("partition-blocks-query", func() error {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				qc, err := monitor.DialQuery(ctx, r.queryAddr)
				if err != nil {
					return nil // refused at dial: also a correct partition
				}
				defer qc.Close()
				qc.Timeout = time.Second
				if _, err := qc.Stats(); err == nil {
					return errors.New("query round-tripped through a partitioned network")
				}
				return nil
			}())

			r.phase("heal")
			r.ingestProxy.Heal()
			r.queryProxy.Heal()
			_, drainErr := r.drain(3, 8)
			r.check("recovery-within-deadline", drainErr)

			r.phase("steady-after")
			r.queueHours(partHours, hours)
			r.check("post-heal-ingest-clean", r.flushAll(10))
			r.check("accounting-exact", r.checkAccounting())
			r.check("no-sample-lost", r.verifyIdentity(true))
			r.check("partition-refusals-counted", func() error {
				if got := r.ingestProxy.Stats().PartitionRefused; got == 0 {
					return errors.New("ingest proxy refused no connections during the partition")
				}
				if got := r.queryProxy.Stats().PartitionRefused; got == 0 {
					return errors.New("query proxy refused no connections during the partition")
				}
				return nil
			}())
			r.check("controller-plans-post-heal", func() error {
				// The full stack: the consolidation loop fetches its
				// monitoring history from the chaos-battered warehouse
				// through the healed query proxy and must plan normally.
				fetch := func() (*trace.Set, error) {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					qc, err := monitor.DialQuery(ctx, r.queryAddr)
					if err != nil {
						return nil, err
					}
					defer qc.Close()
					qc.Timeout = 5 * time.Second
					return qc.FetchSet(r.set.Name, r.specs, soakEpoch)
				}
				ctrl, err := controller.New(controller.Config{
					Fetch: fetch,
					Planner: core.Input{
						Host:          catalog.HS23Elite,
						IntervalHours: 2,
					},
					Executor:        executor.DefaultConfig(),
					MinHistoryHours: 168,
				})
				if err != nil {
					return err
				}
				tick, err := ctrl.RunInterval()
				if err != nil {
					return err
				}
				if tick.HistoryHours < 168 {
					return fmt.Errorf("controller planned on %d hours of history, want ≥ 168", tick.HistoryHours)
				}
				return nil
			}())
			return nil
		},
	}
}

// SlowLorisSiege drips every frame through a dribbling, corrupting,
// resetting proxy: tiny paced chunks, flipped bytes, mid-frame FINs. The
// CRC'd envelope protocol must reject every mangled frame, retry it, and
// still land every single generated sample exactly once — the warehouse
// ends the siege bit-identical to a clean ingest.
func SlowLorisSiege() *ResilienceScenario {
	const (
		servers = 12
		perHour = 2
		hours   = 36
	)
	return &ResilienceScenario{
		ID:   "slow-loris-siege",
		Name: "Slow-loris siege",
		Description: "Dribbled frames, flipped bytes and mid-stream resets on the " +
			"ingest path: corruption is rejected by CRC — never stored — and retries " +
			"land every sample exactly once, bit-identical to a clean ingest.",
		rig: rigConfig{
			servers: servers,
			hours:   hours,
			perHour: perHour,
			profile: workload.Airlines,
			ingest: chaos.Config{
				Latency:      150 * time.Microsecond,
				Jitter:       150 * time.Microsecond,
				DribbleBytes: 120,
				ResetProb:    0.01,
				CorruptProb:  0.02,
				TruncateProb: 0.005,
			},
			warehouse: func(w *monitor.Warehouse) {
				w.WriteTimeout = 2 * time.Second
			},
			sender: func(i int, s *monitor.ReliableSender) {
				s.Chunk = 16 // small frames: many chunks, many fault draws
				s.Backoff = time.Millisecond
				s.BackoffMax = 20 * time.Millisecond
				s.Timeout = time.Second
			},
		},
		run: func(r *chaosRig) error {
			r.phase("siege")
			r.queueHours(0, hours)
			_, drainErr := r.drain(6, 8)
			r.check("drained-under-siege", drainErr)
			r.check("every-sample-lands", func() error {
				t := r.totals()
				if t.Pending != 0 || t.DroppedQueue != 0 || t.ServerShed != 0 {
					return fmt.Errorf("pending %d, dropped %d, shed %d — want all zero",
						t.Pending, t.DroppedQueue, t.ServerShed)
				}
				if t.Acked != t.Queued {
					return fmt.Errorf("acked %d of %d queued", t.Acked, t.Queued)
				}
				return nil
			}())
			r.check("faults-actually-fired", func() error {
				st := r.ingestProxy.Stats()
				if st.CorruptedChunks == 0 {
					return errors.New("proxy corrupted nothing — the siege did not happen")
				}
				if st.Resets+st.TruncatedChunks == 0 {
					return errors.New("proxy cut nothing — the siege did not happen")
				}
				return nil
			}())
			r.check("corruption-rejected-not-stored", func() error {
				if m := r.wh.Metrics(); m.CorruptFrames == 0 {
					return errors.New("warehouse rejected no frames despite byte corruption")
				}
				return nil
			}())
			r.check("accounting-exact", r.checkAccounting())
			r.check("bitwise-identity", r.verifyIdentity(true))
			return nil
		},
	}
}
