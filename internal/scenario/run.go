package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"vmwild/internal/workload"
)

// sink writes JSONL records, remembering the first write error so the
// run can report it once at the end.
type sink struct {
	w   io.Writer
	err error
}

func (s *sink) emit(v any) {
	if s.w == nil || s.err != nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(b, '\n')); err != nil {
		s.err = err
	}
}

// The metric stream's record types. Everything in these structs is a pure
// function of the scenario seed — wall-clock measurements go to the
// timing sink instead.
type runRecord struct {
	Record    string `json:"record"`
	ID        string `json:"id"`
	Name      string `json:"name"`
	Seed      int64  `json:"seed"`
	Servers   int    `json:"servers"`
	Hours     int    `json:"hours"`
	StepHours int    `json:"stepHours"`
	Soak      bool   `json:"soak"`
	Resumed   int    `json:"resumed,omitempty"`
}

type intervalRecord struct {
	Record string `json:"record"`
	IntervalMetrics
}

type turnRecord struct {
	Record string `json:"record"`
	TurnMetrics
}

type checkpointRecord struct {
	Record string `json:"record"`
	CheckpointResult
}

type summaryRecord struct {
	Record      string `json:"record"`
	ID          string `json:"id"`
	Passed      bool   `json:"passed"`
	Checkpoints int    `json:"checkpoints"`
	Failed      int    `json:"failed"`
}

type timingRecord struct {
	Record   string  `json:"record"`
	Interval int     `json:"interval"`
	Turn     string  `json:"turn"`
	PlanMs   float64 `json:"planMs"`
}

// Run executes a scenario and grades its checkpoints. A checkpoint
// failure is reported in the Result (Passed=false), not as an error;
// errors mean the simulation itself could not proceed.
func Run(s *Scenario, opts Options) (*Result, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	seed := opts.Seed
	if seed == 0 {
		seed = s.Seed
	}
	if seed == 0 {
		seed = workload.DefaultSeed
	}
	w, err := newWorld(s, seed, &opts)
	if err != nil {
		return nil, err
	}
	defer w.close()

	metrics := &sink{w: opts.Metrics}
	timing := &sink{w: opts.Timing}
	res := &Result{ID: s.ID, Seed: seed, Servers: len(w.set.Servers), Recovered: w.recovered}
	metrics.emit(runRecord{
		Record: "scenario", ID: s.ID, Name: s.Name, Seed: seed,
		Servers: res.Servers, Hours: s.Hours(), StepHours: w.step,
		Soak: s.Soak != nil, Resumed: w.recovered,
	})

	passed := true
	skip := w.recovered
	var history []TurnMetrics
	for _, turn := range s.Turns {
		if turn.Action != nil {
			if err := turn.Action(w); err != nil {
				return nil, fmt.Errorf("scenario %s: turn %q action: %w", s.ID, turn.Name, err)
			}
		}
		tm := TurnMetrics{Turn: turn.Name, MoveBudget: turn.MoveBudget, RecoveryIntervals: -1}
		for i := 0; i < turn.Intervals; i++ {
			if skip > 0 {
				// Resume fast-forward: the journal already committed this
				// interval before the crash; the action above re-mutated
				// the world identically, only the loop is skipped.
				skip--
				w.skipInterval()
				continue
			}
			im, err := w.runInterval(turn.Name)
			if err != nil {
				return nil, err
			}
			tm.Intervals++
			tm.PlannedMoves += im.PlannedMoves
			tm.Attempted += im.Attempted
			tm.Completed += im.Completed
			tm.Aborted += im.Aborted
			tm.FailedAttempts += im.FailedAttempts
			tm.StalledAttempts += im.StalledAttempts
			tm.OverloadedHostIntervals += im.OverloadedHosts
			tm.SLOViolations += im.SLOViolations
			tm.ContentionHours += im.ContentionHours
			tm.MigrationDataMB += im.MigrationDataMB
			tm.ExecMillis += im.ExecMillis
			tm.PlanLatency += im.PlanLatency
			if im.Degraded {
				tm.DegradedIntervals++
			}
			if !im.Feasible {
				tm.InfeasibleIntervals++
			}
			if im.clean() && tm.RecoveryIntervals == -1 {
				tm.RecoveryIntervals = i + 1
			}
			tm.FinalClean = im.clean()
			tm.ActiveHosts = im.ActiveHosts
			metrics.emit(intervalRecord{Record: "interval", IntervalMetrics: im})
			timing.emit(timingRecord{
				Record: "timing", Interval: im.Interval, Turn: turn.Name,
				PlanMs: float64(im.PlanLatency.Microseconds()) / 1000,
			})
			if opts.afterInterval != nil {
				opts.afterInterval(w, im)
			}
		}
		if tm.Intervals == 0 {
			// Fully fast-forwarded turn: report the adopted state.
			if p := w.Placement(); p != nil {
				tm.ActiveHosts = p.ActiveHosts()
			}
		}
		tm.BudgetOverrun = tm.MoveBudget > 0 && tm.Attempted > tm.MoveBudget
		metrics.emit(turnRecord{Record: "turn", TurnMetrics: tm})
		if opts.afterTurn != nil {
			opts.afterTurn(w, tm)
		}
		history = append(history, tm)

		for _, cp := range s.Checkpoints {
			if cp.Turn != turn.Name {
				continue
			}
			cr := gradeCheckpoint(cp, w, tm, history)
			passed = passed && cr.Passed
			res.Checkpoints = append(res.Checkpoints, cr)
			metrics.emit(checkpointRecord{Record: "checkpoint", CheckpointResult: cr})
		}
	}
	if len(history) > 0 {
		last := history[len(history)-1]
		for _, cp := range s.Checkpoints {
			if cp.Turn != "" {
				continue
			}
			cr := gradeCheckpoint(cp, w, last, history)
			passed = passed && cr.Passed
			res.Checkpoints = append(res.Checkpoints, cr)
			metrics.emit(checkpointRecord{Record: "checkpoint", CheckpointResult: cr})
		}
	}
	res.Turns = history
	res.Passed = passed
	metrics.emit(summaryRecord{
		Record: "summary", ID: s.ID, Passed: passed,
		Checkpoints: len(res.Checkpoints), Failed: len(res.Failed()),
	})
	if metrics.err != nil {
		return nil, fmt.Errorf("scenario %s: metrics sink: %w", s.ID, metrics.err)
	}
	if timing.err != nil {
		return nil, fmt.Errorf("scenario %s: timing sink: %w", s.ID, timing.err)
	}
	return res, nil
}

func gradeCheckpoint(cp Checkpoint, w *World, tm TurnMetrics, history []TurnMetrics) CheckpointResult {
	cr := CheckpointResult{Name: cp.Name, Turn: cp.Turn, Passed: true}
	if tm.Intervals == 0 && cp.Turn != "" {
		// The whole turn was fast-forwarded on resume; its metrics are
		// empty, so grading would be meaningless.
		cr.Detail = "skipped: turn resumed from journal"
		return cr
	}
	if err := cp.Assert(&Check{World: w, Turn: tm, History: history}); err != nil {
		cr.Passed = false
		cr.Detail = err.Error()
	}
	return cr
}
