package scenario

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"vmwild/internal/workload"
)

// diskWallSeeds returns the seeds the disk-chaos wall runs at: the paper
// seed and one unrelated seed by default, or exactly the seed
// DISKWALL_SEED names — the hook CI's seed matrix uses.
func diskWallSeeds(t *testing.T) []int64 {
	t.Helper()
	if env := os.Getenv("DISKWALL_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("DISKWALL_SEED %q: %v", env, err)
		}
		return []int64{n}
	}
	return []int64{workload.DefaultSeed, 7}
}

// TestDiskWall drives every disk-chaos drill — the WAL/journal/snapshot
// stack over a seeded fault-injecting filesystem — and requires every
// checkpoint to pass. The fault schedule is a pure function of the seed,
// so every invariant (exact two-sided accounting, replay == acked,
// byte-identical recovery, typed failures) is fully deterministic.
func TestDiskWall(t *testing.T) {
	for _, ds := range DiskChaos() {
		for _, seed := range diskWallSeeds(t) {
			ds, seed := ds, seed
			t.Run(fmt.Sprintf("%s/seed=%d", ds.ID, seed), func(t *testing.T) {
				t.Parallel()
				res, err := ds.Run(seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, cp := range res.Checkpoints {
					if cp.Passed {
						t.Logf("checkpoint %-32s [%s] ok", cp.Name, cp.Turn)
					} else {
						t.Errorf("checkpoint %s [%s]: %s", cp.Name, cp.Turn, cp.Detail)
					}
				}
				if !res.Passed && !t.Failed() {
					t.Error("result reports failure but no checkpoint did")
				}
			})
		}
	}
}

func TestGetDiskChaos(t *testing.T) {
	seen := map[string]bool{}
	for _, ds := range DiskChaos() {
		if ds.ID == "" || ds.Name == "" || ds.Description == "" || ds.run == nil {
			t.Fatalf("scenario %q is structurally incomplete", ds.ID)
		}
		if seen[ds.ID] {
			t.Fatalf("duplicate disk-chaos scenario id %q", ds.ID)
		}
		seen[ds.ID] = true
		got, err := GetDiskChaos(ds.ID)
		if err != nil || got.ID != ds.ID {
			t.Fatalf("GetDiskChaos(%q) = %v, %v", ds.ID, got, err)
		}
	}
	if _, err := GetDiskChaos("no-such-drill"); err == nil {
		t.Fatal("unknown disk-chaos scenario did not error")
	}
}
