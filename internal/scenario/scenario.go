// Package scenario is the end-to-end test wall the paper never had: named,
// seeded, multi-phase simulations ("a flash crowd hits the web tier", "a
// rack loses its top-of-rack switch", "the estate is evacuated for
// maintenance") that drive the real controller/executor/monitor stack and
// grade the outcome against hard checkpoints.
//
// A Scenario is a declarative script: an initial world (workload profile,
// host model, warm-up history) followed by Turns. Each turn first mutates
// the world — scales demand, drains hosts, injects correlated faults, swaps
// the hardware generation — and then lets the consolidation loop run for a
// fixed number of intervals while the harness collects per-turn Metrics
// (SLO violations, migrations spent against the turn's budget, degraded
// moves, recovery time). Checkpoints are pass/fail assertions evaluated
// after their turn; a failed checkpoint fails the scenario.
//
// Everything a scenario does is a pure function of its seed: the workload,
// the fault draws, the controller's decisions and the resulting metric
// stream are bitwise-reproducible, which the replay wall
// (TestReplayWall) enforces by running every scenario twice and diffing
// the metrics JSONL byte for byte.
package scenario

import (
	"errors"
	"fmt"
	"io"
	"time"

	"vmwild/internal/catalog"
	"vmwild/internal/fault"
	"vmwild/internal/wal"
	"vmwild/internal/workload"
)

// Action mutates the world at the start of a turn: scale demand, drain
// hosts, change the fault model, swap hardware. Actions must be
// deterministic functions of the world state — the replay wall re-runs
// them and expects identical outcomes.
type Action func(w *World) error

// Turn is one phase of a scenario: an optional world mutation followed by
// a fixed number of consolidation intervals.
type Turn struct {
	// Name labels the turn in metrics and checkpoints. Unique per
	// scenario.
	Name string
	// Intervals is how many consolidation intervals the loop runs after
	// the action (at least 1).
	Intervals int
	// Action mutates the world before the first interval (nil for a
	// pure observation turn).
	Action Action
	// MoveBudget caps the migration attempts the turn is expected to
	// spend; exceeding it sets TurnMetrics.BudgetOverrun (0 = unbudgeted).
	MoveBudget int
}

// Check is the state a checkpoint assertion sees: the world after the
// checkpoint's turn, that turn's metrics, and every turn finished so far.
type Check struct {
	// World is the live world; checkpoints may inspect the placement,
	// the trace set or the warehouse, but must not mutate them.
	World *World
	// Turn is the metrics of the turn the checkpoint follows.
	Turn TurnMetrics
	// History holds the metrics of every finished turn, oldest first
	// (Turn is the last element).
	History []TurnMetrics
}

// TurnNamed returns the metrics of an earlier turn by name.
func (c *Check) TurnNamed(name string) (TurnMetrics, bool) {
	for _, tm := range c.History {
		if tm.Turn == name {
			return tm, true
		}
	}
	return TurnMetrics{}, false
}

// Checkpoint is a hard pass/fail assertion evaluated after a named turn.
type Checkpoint struct {
	// Name labels the checkpoint in results.
	Name string
	// Turn names the turn the checkpoint runs after; empty means after
	// the scenario's last turn.
	Turn string
	// Assert returns nil to pass or an error describing the violation.
	Assert func(c *Check) error
}

// SoakConfig routes a scenario through the durable stack: monitoring
// samples are ingested into a WAL-backed warehouse (the controller fetches
// from it instead of reading the trace directly) and every interval is
// journaled through the controller WAL — the configuration the crash wall
// kills and resumes.
type SoakConfig struct {
	// SamplesPerHour is the per-server monitoring density (default 4).
	SamplesPerHour int
	// CheckpointEvery is the warehouse WAL checkpoint cadence in samples
	// (default 2048).
	CheckpointEvery int
	// Sync is the fsync policy for both WAL lanes. The zero value maps
	// to SyncNever — scenarios simulate crashes above the filesystem,
	// and per-sample fsyncs would dominate the runtime (the crash wall
	// overrides the journal's policy through its own hook).
	Sync wal.SyncPolicy
}

func (c *SoakConfig) syncPolicy() wal.SyncPolicy {
	if c.Sync == wal.SyncPolicy(0) {
		return wal.SyncNever
	}
	return c.Sync
}

func (c *SoakConfig) samplesPerHour() int {
	if c.SamplesPerHour <= 0 {
		return 4
	}
	return c.SamplesPerHour
}

func (c *SoakConfig) checkpointEvery() int {
	if c.CheckpointEvery <= 0 {
		return 2048
	}
	return c.CheckpointEvery
}

// Scenario is a named, seeded end-to-end simulation.
type Scenario struct {
	// ID is the stable machine name (kebab-case, CLI-addressable).
	ID string
	// Name is the human title.
	Name string
	// Description says what shape the scenario exercises and why.
	Description string
	// Seed roots every random choice; Options.Seed overrides it.
	Seed int64
	// Profile is the workload the estate runs (its Servers field is the
	// estate size).
	Profile *workload.Profile
	// Host is the consolidation target hardware.
	Host catalog.Model
	// StartHours is the monitored history before the first turn (must
	// cover the predictor's warm-up; 168+ hours).
	StartHours int
	// StepHours is the consolidation interval (default 2).
	StepHours int
	// Fault is the initial fault model; the harness re-derives the
	// injector seed per interval so retries across intervals draw fresh.
	Fault fault.Config
	// Soak, when set, routes the scenario through the durable
	// warehouse+journal stack.
	Soak *SoakConfig
	// Turns runs in order.
	Turns []Turn
	// Checkpoints grade the run.
	Checkpoints []Checkpoint
}

func (s *Scenario) step() int {
	if s.StepHours <= 0 {
		return 2
	}
	return s.StepHours
}

// TotalIntervals is the number of consolidation intervals across all turns.
func (s *Scenario) TotalIntervals() int {
	n := 0
	for _, t := range s.Turns {
		n += t.Intervals
	}
	return n
}

// Hours is the trace length the scenario needs: warm-up plus every
// interval it will drive.
func (s *Scenario) Hours() int {
	return s.StartHours + s.TotalIntervals()*s.step()
}

func (s *Scenario) validate() error {
	if s == nil {
		return errors.New("scenario: nil scenario")
	}
	if s.ID == "" {
		return errors.New("scenario: empty ID")
	}
	if s.Profile == nil {
		return fmt.Errorf("scenario %s: no workload profile", s.ID)
	}
	if s.Host.Spec.CPURPE2 <= 0 || s.Host.Spec.MemMB <= 0 {
		return fmt.Errorf("scenario %s: host model has no capacity", s.ID)
	}
	if s.StartHours < 168 {
		return fmt.Errorf("scenario %s: StartHours %d below the 168h predictor warm-up", s.ID, s.StartHours)
	}
	if len(s.Turns) == 0 {
		return fmt.Errorf("scenario %s: no turns", s.ID)
	}
	names := make(map[string]bool, len(s.Turns))
	for i, t := range s.Turns {
		if t.Name == "" {
			return fmt.Errorf("scenario %s: turn %d has no name", s.ID, i)
		}
		if names[t.Name] {
			return fmt.Errorf("scenario %s: duplicate turn %q", s.ID, t.Name)
		}
		names[t.Name] = true
		if t.Intervals < 1 {
			return fmt.Errorf("scenario %s: turn %q has %d intervals", s.ID, t.Name, t.Intervals)
		}
	}
	for i, cp := range s.Checkpoints {
		if cp.Name == "" {
			return fmt.Errorf("scenario %s: checkpoint %d has no name", s.ID, i)
		}
		if cp.Assert == nil {
			return fmt.Errorf("scenario %s: checkpoint %q has no assertion", s.ID, cp.Name)
		}
		if cp.Turn != "" && !names[cp.Turn] {
			return fmt.Errorf("scenario %s: checkpoint %q references unknown turn %q", s.ID, cp.Name, cp.Turn)
		}
	}
	return nil
}

// IntervalMetrics is one consolidation interval as the harness observed it.
type IntervalMetrics struct {
	// Interval is the global 0-based interval index.
	Interval int
	// Turn names the turn the interval belongs to.
	Turn string
	// HistoryHours is the monitored history the decision used.
	HistoryHours int
	// PlannedMoves is what the adapter ordered; Attempted/Completed/
	// Aborted/FailedAttempts/StalledAttempts are what execution made of
	// it under the fault model.
	PlannedMoves    int
	Attempted       int
	Completed       int
	Aborted         int
	FailedAttempts  int
	StalledAttempts int
	// Degraded reports that at least one move was abandoned.
	Degraded bool
	// Feasible reports that the migration waves fit inside the interval.
	Feasible bool
	// OverloadedHosts is how many hosts the interval opened with above
	// usable capacity (before repair).
	OverloadedHosts int
	// ActiveHosts is the powered-on host count after the interval.
	ActiveHosts int
	// MigrationDataMB is the memory volume the planned moves transfer.
	MigrationDataMB float64
	// ExecMillis is the simulated wall-clock of the migration waves.
	ExecMillis int64
	// SLOViolations counts host-hours with unmet demand when the
	// realized placement is replayed against the actual traces of the
	// interval; ContentionHours counts distinct hours with at least one.
	SLOViolations   int
	ContentionHours int
	// PlanLatency is the real wall-clock the control decision took. It
	// is observability only: it goes to the timing sink, never to the
	// deterministic metrics stream.
	PlanLatency time.Duration `json:"-"`
}

// clean reports an interval in which the estate actually served its
// demand: the SLO replay found no contention and no migration was
// abandoned. Pre-repair overload predictions are deliberately excluded —
// they are the planner's internal signal (repair exists to act on them
// before they materialize) and with a 0.8 bound over noisy demand some
// host trips it most intervals; the replay is the ground truth.
func (m IntervalMetrics) clean() bool {
	return m.Aborted == 0 && m.SLOViolations == 0
}

// TurnMetrics aggregates one turn.
type TurnMetrics struct {
	Turn string
	// Intervals is how many intervals the turn actually drove (fewer
	// than declared only when resuming from a journal skips some).
	Intervals           int
	PlannedMoves        int
	Attempted           int
	Completed           int
	Aborted             int
	FailedAttempts      int
	StalledAttempts     int
	DegradedIntervals   int
	InfeasibleIntervals int
	// OverloadedHostIntervals sums per-interval capacity violations.
	OverloadedHostIntervals int
	SLOViolations           int
	ContentionHours         int
	MigrationDataMB         float64
	ExecMillis              int64
	// MoveBudget echoes the turn's budget; BudgetOverrun reports that
	// attempted migrations exceeded it.
	MoveBudget    int
	BudgetOverrun bool
	// RecoveryIntervals is the 1-based index of the turn's first clean
	// interval (no overloads, no aborts, no SLO violations) — the
	// recovery time after the turn's disruption. -1 when the turn never
	// came clean.
	RecoveryIntervals int
	// FinalClean reports whether the turn's last interval was clean.
	FinalClean bool
	// ActiveHosts is the estate size after the turn's last interval.
	ActiveHosts int
	// PlanLatency is the total wall-clock of the turn's control
	// decisions (timing sink only, see IntervalMetrics.PlanLatency).
	PlanLatency time.Duration `json:"-"`
}

// CheckpointResult is one graded assertion.
type CheckpointResult struct {
	Name   string
	Turn   string
	Passed bool
	// Detail is the assertion error on failure.
	Detail string
}

// Result is a finished scenario run.
type Result struct {
	ID      string
	Seed    int64
	Servers int
	// Recovered is how many already-committed intervals a journaled
	// (soak) run skipped on resume; 0 on a fresh run.
	Recovered   int
	Turns       []TurnMetrics
	Checkpoints []CheckpointResult
	// Passed reports that every checkpoint passed.
	Passed bool
}

// Failed returns the checkpoints that did not pass.
func (r *Result) Failed() []CheckpointResult {
	var out []CheckpointResult
	for _, cp := range r.Checkpoints {
		if !cp.Passed {
			out = append(out, cp)
		}
	}
	return out
}

// Checkpoint returns a checkpoint result by name.
func (r *Result) Checkpoint(name string) (CheckpointResult, bool) {
	for _, cp := range r.Checkpoints {
		if cp.Name == name {
			return cp, true
		}
	}
	return CheckpointResult{}, false
}

// TurnNamed returns a turn's metrics by name.
func (r *Result) TurnNamed(name string) (TurnMetrics, bool) {
	for _, tm := range r.Turns {
		if tm.Turn == name {
			return tm, true
		}
	}
	return TurnMetrics{}, false
}

// Options tunes one run without touching the scenario definition.
type Options struct {
	// Seed overrides the scenario's seed (0 keeps it).
	Seed int64
	// Metrics receives the deterministic JSONL metric stream — one
	// record per interval, turn, checkpoint and summary. Byte-identical
	// across runs from the same seed; nil discards it.
	Metrics io.Writer
	// Timing receives the wall-clock JSONL stream (plan latency per
	// interval). Nondeterministic by nature, excluded from the replay
	// wall; nil discards it.
	Timing io.Writer
	// StateDir is where a soak scenario keeps its WALs. Empty uses a
	// fresh temporary directory (removed after the run); pointing two
	// runs at the same directory makes the second resume from the
	// first's journal.
	StateDir string

	// journalOpts overrides the controller journal's WAL options — the
	// crash wall's hook for sync policy and crash switches.
	journalOpts *wal.Options
	// afterInterval and afterTurn are test hooks observing the live
	// world between intervals/turns.
	afterInterval func(w *World, m IntervalMetrics)
	afterTurn     func(w *World, m TurnMetrics)
}
