package scenario

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

// wallSeeds are the seeds the scenario wall runs at: the default plus one
// alternate, both fixed in CI. SCENARIO_SEED overrides for sweeps.
func wallSeeds(t *testing.T) []int64 {
	if s := os.Getenv("SCENARIO_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SCENARIO_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	return []int64{0, 7} // 0 = each scenario's own default seed
}

// TestScenarioWall runs every named scenario at the wall seeds and
// requires every checkpoint to pass.
func TestScenarioWall(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			t.Parallel()
			for _, seed := range wallSeeds(t) {
				res, err := Run(Get2(t, s.ID), Options{Seed: seed})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				for _, tm := range res.Turns {
					t.Logf("seed %d turn %-14s intervals=%d planned=%d attempted=%d completed=%d aborted=%d failed=%d stalled=%d overload=%d slo=%d degraded=%d recov=%d finalClean=%v active=%d",
						res.Seed, tm.Turn, tm.Intervals, tm.PlannedMoves, tm.Attempted, tm.Completed,
						tm.Aborted, tm.FailedAttempts, tm.StalledAttempts, tm.OverloadedHostIntervals,
						tm.SLOViolations, tm.DegradedIntervals, tm.RecoveryIntervals, tm.FinalClean, tm.ActiveHosts)
				}
				if !res.Passed {
					for _, cp := range res.Failed() {
						t.Errorf("seed %d checkpoint %s/%s: %s", res.Seed, cp.Turn, cp.Name, cp.Detail)
					}
				}
			}
		})
	}
}

// Get2 fetches a fresh scenario instance, failing the test on unknown IDs.
func Get2(t *testing.T, id string) *Scenario {
	t.Helper()
	s, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestReplayWall proves bitwise reproducibility: every scenario, run twice
// from the same seed (in parallel with every other scenario, so scheduling
// cannot leak in), must produce byte-identical metric streams.
func TestReplayWall(t *testing.T) {
	for _, s := range All() {
		id := s.ID
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			var a, b bytes.Buffer
			ra, err := Run(Get2(t, id), Options{Metrics: &a})
			if err != nil {
				t.Fatal(err)
			}
			rb, err := Run(Get2(t, id), Options{Metrics: &b})
			if err != nil {
				t.Fatal(err)
			}
			if ra.Seed != rb.Seed {
				t.Fatalf("seeds diverged: %d vs %d", ra.Seed, rb.Seed)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				la, lb := strings.Split(a.String(), "\n"), strings.Split(b.String(), "\n")
				for i := range la {
					if i >= len(lb) || la[i] != lb[i] {
						t.Fatalf("metric streams diverge at line %d:\n  run1: %s\n  run2: %s", i+1, la[i], at(lb, i))
					}
				}
				t.Fatalf("metric streams differ in length: %d vs %d lines", len(la), len(lb))
			}
			if a.Len() == 0 {
				t.Fatal("metric stream is empty")
			}
		})
	}
}

func at(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<missing>"
}

// TestScenarioValidation pins the declarative layer's error paths.
func TestScenarioValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Error("nil scenario accepted")
	}
	if _, err := Get("no-such-scenario"); err == nil {
		t.Error("unknown scenario ID accepted")
	}
	base := FlashCrowd()
	base.Turns[1].Name = base.Turns[0].Name
	if _, err := Run(base, Options{}); err == nil {
		t.Error("duplicate turn name accepted")
	}
	base = FlashCrowd()
	base.Checkpoints[0].Turn = "missing-turn"
	if _, err := Run(base, Options{}); err == nil {
		t.Error("checkpoint referencing unknown turn accepted")
	}
	base = FlashCrowd()
	base.StartHours = 24
	if _, err := Run(base, Options{}); err == nil {
		t.Error("sub-warmup StartHours accepted")
	}
}
