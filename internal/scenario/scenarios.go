package scenario

import (
	"errors"
	"fmt"
	"sort"

	"vmwild/internal/catalog"
	"vmwild/internal/fault"
	"vmwild/internal/workload"
)

// defaultStartHours gives every scenario a full week of history for the
// periodic predictor plus a day of slack before the first turn.
const defaultStartHours = 8 * 24

// All returns a fresh instance of every named scenario, sorted by ID.
// Instances are independent: running one never affects another.
func All() []*Scenario {
	list := []*Scenario{
		CorrelatedRackOutage(),
		DCEvacuation(),
		FlashCrowd(),
		HardwareRefresh(),
		RollingMaintenance(),
		SoakStress(),
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	return list
}

// Get returns a fresh instance of the named scenario.
func Get(id string) (*Scenario, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q", id)
}

func expect(ok bool, format string, args ...any) error {
	if ok {
		return nil
	}
	return fmt.Errorf(format, args...)
}

// FlashCrowd: the web tier's demand multiplies overnight — the shape the
// paper's static traces never contained. The controller must first absorb
// the hit (SLO violations while predictions lag reality) and then prove it
// recovers: repairs spread the load, and the estate comes back clean while
// the surge is still running.
func FlashCrowd() *Scenario {
	prof := workload.Airlines()
	prof.Servers = 96
	return &Scenario{
		ID:   "flash-crowd",
		Name: "Flash crowd on the web tier",
		Description: "Web-class demand jumps 2.5x for 14 hours; the loop must absorb " +
			"the overloads and return the estate to a clean steady state once it passes.",
		Seed:       workload.DefaultSeed,
		Profile:    prof,
		Host:       catalog.HS23Elite,
		StartHours: defaultStartHours,
		StepHours:  2,
		Turns: []Turn{
			{Name: "steady", Intervals: 3, MoveBudget: 40},
			{Name: "surge", Intervals: 4, MoveBudget: 60, Action: func(w *World) error {
				if n := w.ScaleDemand("web", 2.5, 1.5, 14); n == 0 {
					return errors.New("no web-class servers to surge")
				}
				return nil
			}},
			{Name: "recovery", Intervals: 4, MoveBudget: 60},
		},
		Checkpoints: []Checkpoint{
			{Name: "steady-clean", Turn: "steady", Assert: func(c *Check) error {
				return expect(c.Turn.SLOViolations == 0 && c.Turn.Aborted == 0,
					"steady state not clean: %d SLO violations, %d aborted moves",
					c.Turn.SLOViolations, c.Turn.Aborted)
			}},
			{Name: "surge-bites", Turn: "surge", Assert: func(c *Check) error {
				return expect(c.Turn.OverloadedHostIntervals > 0 || c.Turn.SLOViolations > 0,
					"the surge never stressed the estate — scenario is vacuous")
			}},
			{Name: "surge-answered", Turn: "surge", Assert: func(c *Check) error {
				return expect(c.Turn.PlannedMoves > 0,
					"the controller never reacted to the surge")
			}},
			{Name: "recovered", Turn: "recovery", Assert: func(c *Check) error {
				if c.Turn.RecoveryIntervals == -1 {
					return errors.New("estate never came clean after the surge")
				}
				return expect(c.Turn.FinalClean,
					"estate dirty again at end of recovery (clean first at interval %d)",
					c.Turn.RecoveryIntervals)
			}},
			{Name: "migration-budget", Assert: func(c *Check) error {
				for _, tm := range c.History {
					if tm.BudgetOverrun {
						return fmt.Errorf("turn %q spent %d migration attempts against a budget of %d",
							tm.Turn, tm.Attempted, tm.MoveBudget)
					}
				}
				return nil
			}},
		},
	}
}

// RollingMaintenance: hosts are drained one at a time, patched, and
// returned — the live-migration workflow real estates actually run
// (Section 1.2). The wall asserts the fence holds: a drained host stays
// empty across consolidation intervals until it is reopened.
func RollingMaintenance() *Scenario {
	prof := workload.Banking()
	prof.Servers = 84
	var first, second string
	return &Scenario{
		ID:   "rolling-maintenance",
		Name: "Rolling maintenance window",
		Description: "Two hosts are drained back-to-back and reopened; drained hosts " +
			"must stay empty while fenced and the estate must end whole and clean.",
		Seed:       workload.DefaultSeed,
		Profile:    prof,
		Host:       catalog.HS23Elite,
		StartHours: defaultStartHours,
		StepHours:  2,
		Turns: []Turn{
			{Name: "steady", Intervals: 2, MoveBudget: 40},
			{Name: "drain-first", Intervals: 2, MoveBudget: 60, Action: func(w *World) error {
				hosts := w.ActiveHostIDs()
				if len(hosts) < 2 {
					return fmt.Errorf("estate too small to drain: %d active hosts", len(hosts))
				}
				first = hosts[0]
				return w.DrainHosts(first)
			}},
			{Name: "drain-second", Intervals: 2, MoveBudget: 60, Action: func(w *World) error {
				if err := w.ReopenHosts(first); err != nil {
					return err
				}
				for _, h := range w.ActiveHostIDs() {
					if h != first {
						second = h
						break
					}
				}
				if second == "" {
					return errors.New("no second host to drain")
				}
				return w.DrainHosts(second)
			}},
			{Name: "restore", Intervals: 3, MoveBudget: 40, Action: func(w *World) error {
				return w.ReopenHosts(second)
			}},
		},
		Checkpoints: []Checkpoint{
			{Name: "first-fenced", Turn: "drain-first", Assert: func(c *Check) error {
				n := len(c.World.Placement().VMsOn(first))
				return expect(n == 0, "drained host %s still carries %d VMs after two intervals", first, n)
			}},
			{Name: "second-fenced", Turn: "drain-second", Assert: func(c *Check) error {
				n := len(c.World.Placement().VMsOn(second))
				return expect(n == 0, "drained host %s still carries %d VMs after two intervals", second, n)
			}},
			{Name: "estate-whole", Assert: func(c *Check) error {
				got := c.World.Placement().NumVMs()
				return expect(got == 84, "placement tracks %d VMs, want 84", got)
			}},
			{Name: "ends-clean", Turn: "restore", Assert: func(c *Check) error {
				return expect(c.Turn.FinalClean && c.Turn.Aborted == 0,
					"estate not clean after maintenance: finalClean=%v, %d aborted",
					c.Turn.FinalClean, c.Turn.Aborted)
			}},
		},
	}
}

// DCEvacuation: a third of the active estate must be emptied at once — the
// "get everything off that row" shape of a cooling failure or a planned
// power cut. The evacuation may open fresh hosts; no VM may be lost and
// the evacuated zone must stay empty.
func DCEvacuation() *Scenario {
	prof := workload.NaturalResources()
	prof.Servers = 84
	var zone []string
	return &Scenario{
		ID:   "dc-evacuation",
		Name: "Zone evacuation",
		Description: "A third of the active hosts are evacuated in one action; the zone " +
			"must stay empty, every VM must survive, and the estate must settle.",
		Seed:       workload.DefaultSeed,
		Profile:    prof,
		Host:       catalog.HS23Elite,
		StartHours: defaultStartHours,
		StepHours:  2,
		Turns: []Turn{
			{Name: "steady", Intervals: 2, MoveBudget: 50},
			{Name: "evacuate", Intervals: 3, MoveBudget: 80, Action: func(w *World) error {
				hosts := w.ActiveHostIDs()
				k := (len(hosts) + 2) / 3
				if k == len(hosts) {
					return fmt.Errorf("cannot evacuate the whole estate (%d hosts)", len(hosts))
				}
				zone = hosts[:k]
				return w.DrainHosts(zone...)
			}},
			{Name: "settle", Intervals: 3, MoveBudget: 60},
		},
		Checkpoints: []Checkpoint{
			{Name: "zone-empty", Turn: "evacuate", Assert: func(c *Check) error {
				p := c.World.Placement()
				for _, h := range zone {
					if n := len(p.VMsOn(h)); n > 0 {
						return fmt.Errorf("evacuated host %s still carries %d VMs", h, n)
					}
				}
				return expect(len(zone) > 0, "no zone was evacuated")
			}},
			{Name: "no-vm-lost", Assert: func(c *Check) error {
				got := c.World.Placement().NumVMs()
				return expect(got == 84, "placement tracks %d VMs, want 84", got)
			}},
			{Name: "settled", Turn: "settle", Assert: func(c *Check) error {
				return expect(c.Turn.Aborted == 0 && c.Turn.FinalClean,
					"estate did not settle after evacuation: %d aborted, finalClean=%v",
					c.Turn.Aborted, c.Turn.FinalClean)
			}},
		},
	}
}

// HardwareRefresh: every blade gets the extended-memory upgrade in place
// (HS23 standard -> elite, Observation 3's contrast). The memory-bound
// estate should consolidate visibly denser on the doubled memory, without
// losing a VM or aborting a move.
func HardwareRefresh() *Scenario {
	prof := workload.NaturalResources()
	prof.Servers = 90
	var before int
	return &Scenario{
		ID:   "hardware-refresh",
		Name: "Hardware generation swap",
		Description: "All hosts are upgraded from standard to extended memory in place; " +
			"the consolidation wave that follows must shrink the active estate.",
		Seed:       workload.DefaultSeed,
		Profile:    prof,
		Host:       catalog.HS23Standard,
		StartHours: defaultStartHours,
		StepHours:  2,
		Turns: []Turn{
			{Name: "steady", Intervals: 2, MoveBudget: 50},
			{Name: "refresh", Intervals: 4, MoveBudget: 80, Action: func(w *World) error {
				before = len(w.ActiveHostIDs())
				return w.UpgradeHardware(catalog.HS23Elite)
			}},
		},
		Checkpoints: []Checkpoint{
			{Name: "estate-shrank", Turn: "refresh", Assert: func(c *Check) error {
				after := len(c.World.ActiveHostIDs())
				return expect(after < before,
					"doubled memory did not consolidate the estate: %d hosts before, %d after", before, after)
			}},
			{Name: "no-move-lost", Turn: "refresh", Assert: func(c *Check) error {
				return expect(c.Turn.Aborted == 0, "%d moves aborted during the refresh wave", c.Turn.Aborted)
			}},
			{Name: "estate-whole", Assert: func(c *Check) error {
				got := c.World.Placement().NumVMs()
				return expect(got == 90, "placement tracks %d VMs, want 90", got)
			}},
			{Name: "ends-clean", Assert: func(c *Check) error {
				return expect(c.Turn.FinalClean, "estate not clean after the refresh wave")
			}},
		},
	}
}

// CorrelatedRackOutage: migrations keep failing in rack-sized bursts while
// a demand bump forces the planner to keep moving VMs — the correlated
// failure mode (top-of-rack switch, PDU) that independent per-host draws
// understate. The loop must degrade gracefully, never wedge, and come
// clean once the network heals.
func CorrelatedRackOutage() *Scenario {
	prof := workload.Banking()
	prof.Servers = 84
	return &Scenario{
		ID:   "correlated-rack-outage",
		Name: "Correlated rack outage",
		Description: "Racks flap with p=0.4 per wave while demand rises 50%; executions " +
			"must terminate degraded-not-wedged and the estate must come clean after healing.",
		Seed:       workload.DefaultSeed,
		Profile:    prof,
		Host:       catalog.HS23Elite,
		StartHours: defaultStartHours,
		StepHours:  2,
		Turns: []Turn{
			{Name: "calm", Intervals: 2, MoveBudget: 40},
			{Name: "outage", Intervals: 3, MoveBudget: 120, Action: func(w *World) error {
				if n := w.ScaleDemand("", 1.6, 1.35, 6); n == 0 {
					return errors.New("no servers to scale")
				}
				return w.SetFault(fault.Config{
					RackOutage:       0.4,
					MigrationFailure: 0.15,
					MigrationStall:   0.15,
				})
			}},
			{Name: "healed", Intervals: 3, MoveBudget: 80, Action: func(w *World) error {
				return w.SetFault(fault.Config{})
			}},
		},
		Checkpoints: []Checkpoint{
			{Name: "calm-clean", Turn: "calm", Assert: func(c *Check) error {
				return expect(c.Turn.SLOViolations == 0 && c.Turn.Aborted == 0,
					"calm baseline not clean: %d SLO violations, %d aborted",
					c.Turn.SLOViolations, c.Turn.Aborted)
			}},
			{Name: "outage-stresses", Turn: "outage", Assert: func(c *Check) error {
				return expect(c.Turn.Attempted > 0,
					"no migrations were attempted during the outage — nothing was tested")
			}},
			{Name: "never-wedged", Turn: "outage", Assert: func(c *Check) error {
				return expect(c.Turn.Intervals == 3,
					"outage turn drove %d of 3 intervals", c.Turn.Intervals)
			}},
			{Name: "heals-clean", Turn: "healed", Assert: func(c *Check) error {
				if c.Turn.RecoveryIntervals == -1 {
					return errors.New("estate never came clean after the outage")
				}
				return expect(c.Turn.FinalClean && c.Turn.Aborted == 0,
					"estate still degraded after healing: finalClean=%v, %d aborted",
					c.Turn.FinalClean, c.Turn.Aborted)
			}},
		},
	}
}

// SoakStress: the same control loop, but through the durable stack — WAL-
// backed warehouse ingestion (with agent dropout) and a journaled
// controller — under a demand surge and a migration-fault burst. This is
// the scenario the crash wall kills mid-run; its checkpoints also audit
// the monitoring plane's sample accounting.
func SoakStress() *Scenario {
	prof := workload.Airlines()
	prof.Servers = 48
	const dropout = 0.03
	return &Scenario{
		ID:   "soak-stress",
		Name: "Durable-stack soak",
		Description: "Controller journal + warehouse WAL under surge, agent dropout and " +
			"migration faults; sample accounting must be exact and the estate must settle.",
		Seed:       workload.DefaultSeed,
		Profile:    prof,
		Host:       catalog.HS23Elite,
		StartHours: defaultStartHours,
		StepHours:  2,
		Fault:      fault.Config{AgentDropout: dropout},
		Soak:       &SoakConfig{SamplesPerHour: 4},
		Turns: []Turn{
			{Name: "warm", Intervals: 2, MoveBudget: 40},
			{Name: "surge", Intervals: 3, MoveBudget: 60, Action: func(w *World) error {
				if n := w.ScaleDemand("web", 1.8, 1.3, 10); n == 0 {
					return errors.New("no web-class servers to surge")
				}
				return nil
			}},
			{Name: "churn", Intervals: 3, MoveBudget: 120, Action: func(w *World) error {
				if n := w.ScaleDemand("", 1.4, 1.25, 6); n == 0 {
					return errors.New("no servers to churn")
				}
				return w.SetFault(fault.Config{
					AgentDropout:     dropout,
					MigrationFailure: 0.25,
					MigrationStall:   0.15,
				})
			}},
			{Name: "settle", Intervals: 3, MoveBudget: 60, Action: func(w *World) error {
				return w.SetFault(fault.Config{AgentDropout: dropout})
			}},
		},
		Checkpoints: []Checkpoint{
			{Name: "samples-accounted", Assert: func(c *Check) error {
				w := c.World
				perHour := 4
				// Ingestion runs up to the start of each interval, so the
				// last step's hours are never ingested.
				hours := w.Hour() - w.scn.step()
				clock := w.Set().Servers[0].ID
				want := hours * perHour
				if got := w.Warehouse().SampleCount(clock); got != want {
					return fmt.Errorf("clock server holds %d samples, want %d", got, want)
				}
				total := w.Warehouse().Stats().Samples
				full := len(w.Set().Servers) * hours * perHour
				if total >= full {
					return fmt.Errorf("agent dropout never dropped a sample: %d of %d", total, full)
				}
				if float64(total) < 0.9*float64(full) {
					return fmt.Errorf("dropout ate too much: %d of %d samples", total, full)
				}
				return nil
			}},
			{Name: "journaled", Assert: func(c *Check) error {
				return expect(c.World.JournalBytes() > 0, "controller journal never wrote a byte")
			}},
			{Name: "churn-stresses", Turn: "churn", Assert: func(c *Check) error {
				return expect(c.Turn.FailedAttempts > 0 || c.Turn.StalledAttempts > 0,
					"fault burst never touched a migration")
			}},
			{Name: "settles", Turn: "settle", Assert: func(c *Check) error {
				return expect(c.Turn.FinalClean && c.Turn.Aborted == 0,
					"estate did not settle: finalClean=%v, %d aborted", c.Turn.FinalClean, c.Turn.Aborted)
			}},
		},
	}
}
