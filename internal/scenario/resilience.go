package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vmwild/internal/chaos"
	"vmwild/internal/monitor"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
	"vmwild/internal/workload"
)

// The chaos wall: resilience scenarios that drive the real serving plane —
// reliable senders → TCP → warehouse → query server → controller — through
// a seeded fault proxy and assert invariants that must hold under ANY
// timing realization of the chaos:
//
//   - exact accounting: every sample ever queued is acked, shed by the
//     server, dropped from a bounded queue, or still pending — the four
//     counters reconcile to the queue total with no slack;
//   - value integrity: nothing the warehouse retains differs by a single
//     bit from what was generated — corruption is rejected, never stored;
//   - aggregate identity: the hourly series the chaos-battered warehouse
//     serves are bitwise identical to a clean warehouse rebuilt from the
//     surviving samples alone;
//   - bounded recovery: after the fault clears, a fixed number of flush
//     rounds drains every sender to empty.
//
// What the wall never asserts is HOW MANY faults fired at exactly which
// byte: kernel read batching makes chunk boundaries nondeterministic, so
// fault counts vary run to run even at a fixed seed. The invariants above
// are the ones that cannot.

// ResilienceScenario is one network-chaos drill against the serving plane.
// Unlike consolidation scenarios these run real sockets, so wall-clock
// nondeterminism is part of the test surface — Run returns the same
// Result/CheckpointResult shape, but checkpoints assert timing-free
// invariants only.
type ResilienceScenario struct {
	ID          string
	Name        string
	Description string

	rig rigConfig
	run func(r *chaosRig) error
}

// Resilience returns the chaos-wall scenarios in wall order.
func Resilience() []*ResilienceScenario {
	return []*ResilienceScenario{IngestStorm(), PartitionHeal(), SlowLorisSiege()}
}

// GetResilience finds a resilience scenario by ID.
func GetResilience(id string) (*ResilienceScenario, error) {
	for _, rs := range Resilience() {
		if rs.ID == id {
			return rs, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown resilience scenario %q", id)
}

// Run executes the drill at the given seed. The returned Result carries
// one CheckpointResult per invariant checked; Run itself errors only on
// harness failures (generation, listen), never on a failed checkpoint.
func (rs *ResilienceScenario) Run(seed int64) (*Result, error) {
	r, err := newChaosRig(rs.ID, seed, rs.rig)
	if err != nil {
		return nil, err
	}
	defer r.close()
	if err := rs.run(r); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", rs.ID, err)
	}
	res := &Result{
		ID:          rs.ID,
		Seed:        seed,
		Servers:     len(r.set.Servers),
		Checkpoints: r.checkpoints,
		Passed:      true,
	}
	for _, cp := range res.Checkpoints {
		if !cp.Passed {
			res.Passed = false
		}
	}
	return res, nil
}

// rigConfig parameterizes the chaos rig one scenario runs against.
type rigConfig struct {
	servers int
	hours   int
	perHour int
	profile func() *workload.Profile
	shards  int

	// ingest and query shape the fault proxies in front of the warehouse
	// ingest port and the query server; their Seed fields are overwritten
	// with identity-derived splits of the run seed.
	ingest chaos.Config
	query  chaos.Config

	warehouse func(w *monitor.Warehouse)
	sender    func(i int, s *monitor.ReliableSender)
}

type genKey struct {
	id trace.ServerID
	ts int64
}

type genVal struct {
	cpu float64
	mem float64
}

// chaosRig is the live stack a resilience scenario drives: ground-truth
// traces, one reliable sender per server dialing the warehouse through a
// chaos proxy, and a query server behind its own proxy. Everything runs
// single-goroutine in the scenario body; only the servers spawn handlers.
type chaosRig struct {
	id   string
	seed int64

	set     *trace.Set
	specs   map[trace.ServerID]trace.Spec
	perHour int

	wh          *monitor.Warehouse
	qs          *monitor.QueryServer
	ingestProxy *chaos.Proxy
	queryProxy  *chaos.Proxy
	// ingestAddr and queryAddr are the proxy fronts — what senders and
	// query clients dial.
	ingestAddr string
	queryAddr  string

	senders []*monitor.ReliableSender

	// generated maps every queued (server, timestamp) to the exact values
	// handed to the sender — the ground truth the survivor checks compare
	// against.
	generated map[genKey]genVal

	turn        string
	checkpoints []CheckpointResult
}

func newChaosRig(id string, seed int64, cfg rigConfig) (*chaosRig, error) {
	prof := *cfg.profile()
	prof.Servers = cfg.servers
	set, err := workload.Generate(&prof, cfg.hours, stats.Split(seed, "resilience", id))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: generate workload: %w", id, err)
	}
	r := &chaosRig{
		id:        id,
		seed:      seed,
		set:       set,
		perHour:   cfg.perHour,
		specs:     make(map[trace.ServerID]trace.Spec, len(set.Servers)),
		generated: make(map[genKey]genVal, cfg.servers*cfg.hours*cfg.perHour),
		turn:      "setup",
	}
	for _, st := range set.Servers {
		r.specs[st.ID] = st.Spec
	}

	shards := cfg.shards
	if shards <= 0 {
		shards = 4
	}
	// Retention 0: a resilience run must never age samples out mid-drill,
	// or the survivor accounting would have a second leak path.
	r.wh = monitor.NewWarehouseShards(0, shards)
	r.wh.BackoffSeed = stats.Split(seed, "resilience", id, "warehouse-backoff")
	if cfg.warehouse != nil {
		cfg.warehouse(r.wh)
	}
	whAddr, err := r.wh.Listen("127.0.0.1:0")
	if err != nil {
		r.close()
		return nil, fmt.Errorf("scenario %s: warehouse listen: %w", id, err)
	}
	icfg := cfg.ingest
	icfg.Seed = stats.Split(seed, "resilience", id, "chaos-ingest")
	r.ingestProxy, err = chaos.New(icfg, whAddr)
	if err == nil {
		r.ingestAddr, err = r.ingestProxy.Listen("127.0.0.1:0")
	}
	if err != nil {
		r.close()
		return nil, fmt.Errorf("scenario %s: ingest proxy: %w", id, err)
	}

	r.qs = monitor.NewQueryServer(r.wh)
	r.qs.WriteTimeout = 2 * time.Second
	r.qs.BackoffSeed = stats.Split(seed, "resilience", id, "query-backoff")
	qsAddr, err := r.qs.Listen("127.0.0.1:0")
	if err != nil {
		r.close()
		return nil, fmt.Errorf("scenario %s: query server listen: %w", id, err)
	}
	qcfg := cfg.query
	qcfg.Seed = stats.Split(seed, "resilience", id, "chaos-query")
	r.queryProxy, err = chaos.New(qcfg, qsAddr)
	if err == nil {
		r.queryAddr, err = r.queryProxy.Listen("127.0.0.1:0")
	}
	if err != nil {
		r.close()
		return nil, fmt.Errorf("scenario %s: query proxy: %w", id, err)
	}

	senderSeed := stats.Split(seed, "resilience", id, "sender")
	for i, st := range set.Servers {
		s := &monitor.ReliableSender{
			Addr:       r.ingestAddr,
			AgentID:    string(st.ID),
			Seed:       stats.Derive(senderSeed, int64(i)),
			Backoff:    2 * time.Millisecond,
			BackoffMax: 100 * time.Millisecond,
			Timeout:    2 * time.Second,
		}
		if cfg.sender != nil {
			cfg.sender(i, s)
		}
		r.senders = append(r.senders, s)
	}
	return r, nil
}

func (r *chaosRig) close() {
	for _, s := range r.senders {
		s.Close()
	}
	if r.ingestProxy != nil {
		r.ingestProxy.Close()
	}
	if r.queryProxy != nil {
		r.queryProxy.Close()
	}
	if r.qs != nil {
		r.qs.Close()
	}
	if r.wh != nil {
		r.wh.Close()
	}
}

// phase labels subsequent checkpoints, mirroring Turn on the consolidation
// wall's checkpoint results.
func (r *chaosRig) phase(name string) { r.turn = name }

// check records one invariant's outcome.
func (r *chaosRig) check(name string, err error) {
	cp := CheckpointResult{Name: name, Turn: r.turn, Passed: err == nil}
	if err != nil {
		cp.Detail = err.Error()
	}
	r.checkpoints = append(r.checkpoints, cp)
}

// queueHours queues hours [from, to) of every server's trace into its
// sender, converting ground-truth Usage into monitoring samples exactly as
// the soak worlds do, and records each (server, timestamp, values) triple
// as ground truth for the survivor checks.
func (r *chaosRig) queueHours(from, to int) {
	slot := time.Hour / time.Duration(r.perHour)
	for si, st := range r.set.Servers {
		spec := st.Spec
		for h := from; h < to; h++ {
			u := st.Series.Samples[h]
			pct := 0.0
			if spec.CPURPE2 > 0 {
				pct = u.CPU / spec.CPURPE2 * 100
			}
			pct = min(max(pct, 0), 100)
			mem := max(u.Mem, 0)
			for k := 0; k < r.perHour; k++ {
				ts := soakEpoch.Add(time.Duration(h)*time.Hour + time.Duration(k)*slot)
				r.senders[si].Queue(monitor.Sample{
					Server:            st.ID,
					Timestamp:         ts,
					TotalProcessorPct: pct,
					MemCommittedMB:    mem,
				})
				r.generated[genKey{st.ID, ts.UnixNano()}] = genVal{cpu: pct, mem: mem}
			}
		}
	}
}

// flushAll flushes every sender once, allowing attempts tries per
// envelope, and reports the first failure (with how many senders failed).
func (r *chaosRig) flushAll(attempts int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	var firstErr error
	failed := 0
	for _, s := range r.senders {
		if err := s.Flush(ctx, attempts); err != nil {
			failed++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if firstErr != nil {
		return fmt.Errorf("%d of %d senders unflushed: %w", failed, len(r.senders), firstErr)
	}
	return nil
}

// drain is the recovery deadline: up to maxRounds flush rounds to get
// every sender to empty. It returns the round that finished the job.
func (r *chaosRig) drain(maxRounds, attempts int) (int, error) {
	var lastErr error
	for round := 1; round <= maxRounds; round++ {
		if lastErr = r.flushAll(attempts); lastErr == nil {
			return round, nil
		}
	}
	t := r.totals()
	return maxRounds, fmt.Errorf("%d samples still pending after %d drain rounds: %w",
		t.Pending, maxRounds, lastErr)
}

// totals sums the senders' reconciliation counters.
func (r *chaosRig) totals() monitor.SenderCounters {
	var t monitor.SenderCounters
	for _, s := range r.senders {
		c := s.Counters()
		t.Queued += c.Queued
		t.DroppedQueue += c.DroppedQueue
		t.Acked += c.Acked
		t.ServerShed += c.ServerShed
		t.Retries += c.Retries
		t.Reconnects += c.Reconnects
		t.Pending += c.Pending
	}
	return t
}

// checkAccounting asserts the exactly-once ledger: sender-side counters
// reconcile to Queued with no slack, and the warehouse's own books agree
// with them — what the senders think was acked is what the warehouse
// admitted and stored, and what they think was shed is what the limiter
// counted.
func (r *chaosRig) checkAccounting() error {
	t := r.totals()
	if got := t.Acked + t.ServerShed + t.DroppedQueue + t.Pending; got != t.Queued {
		return fmt.Errorf("sender ledger leaks: queued %d but acked %d + shed %d + dropped %d + pending %d = %d",
			t.Queued, t.Acked, t.ServerShed, t.DroppedQueue, t.Pending, got)
	}
	m := r.wh.Metrics()
	if m.AckedSamples != t.Acked {
		return fmt.Errorf("warehouse admitted %d samples, senders hold acks for %d", m.AckedSamples, t.Acked)
	}
	if m.ShedIngest+m.ShedDisk != t.ServerShed {
		return fmt.Errorf("warehouse shed %d samples (%d limiter + %d disk), senders were told %d",
			m.ShedIngest+m.ShedDisk, m.ShedIngest, m.ShedDisk, t.ServerShed)
	}
	var stored, shardShed int64
	for _, sh := range m.Shards {
		stored += int64(sh.Samples)
		shardShed += sh.Shed
	}
	if stored != t.Acked {
		return fmt.Errorf("warehouse stores %d samples but acked %d — an admitted sample vanished", stored, t.Acked)
	}
	if shardShed != m.ShedIngest+m.ShedDisk {
		return fmt.Errorf("per-shard shed %d does not sum to global %d", shardShed, m.ShedIngest+m.ShedDisk)
	}
	return nil
}

// survivors decodes the warehouse snapshot — every retained sample ordered
// by server then timestamp.
func (r *chaosRig) survivors() ([]monitor.Sample, error) {
	var buf bytes.Buffer
	if err := r.wh.Snapshot(&buf); err != nil {
		return nil, err
	}
	dec := json.NewDecoder(&buf)
	var out []monitor.Sample
	for {
		var s monitor.Sample
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("decode snapshot: %w", err)
		}
		out = append(out, s)
	}
}

// verifyIdentity is the wall's strongest invariant, in three layers:
//
//  1. value integrity — every retained sample matches the generated
//     ground truth for its (server, timestamp) bit for bit, exactly once;
//  2. completeness (when requireAll) — the survivor set IS the generated
//     set: nothing the fault model threw at the network lost a sample;
//  3. aggregate identity — the hourly series served after the chaos are
//     bitwise identical to a clean warehouse rebuilt from the survivors,
//     so resets, retries and shedding left no hidden aggregation skew.
func (r *chaosRig) verifyIdentity(requireAll bool) error {
	survivors, err := r.survivors()
	if err != nil {
		return err
	}
	seen := make(map[genKey]bool, len(survivors))
	for _, s := range survivors {
		k := genKey{s.Server, s.Timestamp.UnixNano()}
		want, ok := r.generated[k]
		if !ok {
			return fmt.Errorf("warehouse retains a sample never generated: %s @ %s", s.Server, s.Timestamp)
		}
		if s.TotalProcessorPct != want.cpu || s.MemCommittedMB != want.mem {
			return fmt.Errorf("corrupted values survived for %s @ %s: stored (%v, %v), generated (%v, %v)",
				s.Server, s.Timestamp, s.TotalProcessorPct, s.MemCommittedMB, want.cpu, want.mem)
		}
		if seen[k] {
			return fmt.Errorf("sample ingested twice: %s @ %s", s.Server, s.Timestamp)
		}
		seen[k] = true
	}
	if requireAll && len(survivors) != len(r.generated) {
		return fmt.Errorf("only %d of %d generated samples survived", len(survivors), len(r.generated))
	}

	ref := monitor.NewWarehouseShards(0, r.wh.Shards())
	for _, s := range survivors {
		ref.Ingest(s)
	}
	for _, st := range r.set.Servers {
		got, gotErr := r.wh.HourlySeries(st.ID, st.Spec, soakEpoch)
		want, wantErr := ref.HourlySeries(st.ID, st.Spec, soakEpoch)
		if (gotErr != nil) != (wantErr != nil) {
			return fmt.Errorf("server %s: chaos warehouse err %v, clean rebuild err %v", st.ID, gotErr, wantErr)
		}
		if gotErr != nil {
			continue // no survivors for this server on either side
		}
		if len(got.Samples) != len(want.Samples) {
			return fmt.Errorf("server %s: chaos warehouse serves %d hours, clean rebuild %d",
				st.ID, len(got.Samples), len(want.Samples))
		}
		for h := range got.Samples {
			if got.Samples[h] != want.Samples[h] {
				return fmt.Errorf("server %s hour %d: aggregates diverge — chaos %+v, clean rebuild %+v",
					st.ID, h, got.Samples[h], want.Samples[h])
			}
		}
	}
	return nil
}
