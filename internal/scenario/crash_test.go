package scenario

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"vmwild/internal/controller"
	"vmwild/internal/placement"
	"vmwild/internal/wal"
)

// crashWallSeed mirrors the monitor and controller walls: CI's crash-matrix
// job sweeps the kill points across seeds, locally the wall runs at a fixed
// default.
func crashWallSeed(t *testing.T) int64 {
	s := os.Getenv("CRASHWALL_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("CRASHWALL_SEED=%q: %v", s, err)
	}
	return v
}

func encPlacement(t *testing.T, p *placement.Placement) []byte {
	t.Helper()
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// intervalLines filters a metric stream down to its per-interval records —
// the only record type whose values are not aggregated across a resume
// boundary, so the one stream a crashed-and-resumed run can be compared
// against the no-crash reference line by line.
func intervalLines(buf *bytes.Buffer) []string {
	var out []string
	for _, ln := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(ln, `{"record":"interval"`) {
			out = append(out, ln)
		}
	}
	return out
}

// TestCrashWallScenarioSoak kills the soak scenario's journaled control
// loop mid-run — at seeded commit boundaries and at arbitrary byte
// offsets of the controller WAL — and asserts the recovery contract end
// to end through the scenario harness:
//
//   - the crashing run dies with wal.ErrCrashed, never a corrupt result;
//   - recovery from the wreckage is deterministic (two opens agree);
//   - a clean-boundary kill is invisible: the resumed scenario emits
//     byte-identical interval records for every post-crash interval and
//     lands byte-identically on the reference's final placement, with
//     every checkpoint passing;
//   - a mid-interval kill may legitimately re-plan the interrupted
//     interval, but the estate stays whole and the run completes.
func TestCrashWallScenarioSoak(t *testing.T) {
	walOpts := func(crash *wal.CrashSwitch) wal.Options {
		return wal.Options{Sync: wal.SyncAlways, SegmentBytes: 8 << 10, Crash: crash}
	}

	// Reference run: the full soak, never crashed. commits[i] is the
	// journal position after interval i committed; refEnc[i] the realized
	// placement fingerprint at the same point.
	var commits []int64
	var refEnc [][]byte
	var refMetrics bytes.Buffer
	refJ := walOpts(nil)
	ref, err := Run(SoakStress(), Options{
		StateDir:    t.TempDir(),
		Metrics:     &refMetrics,
		journalOpts: &refJ,
		afterInterval: func(w *World, _ IntervalMetrics) {
			commits = append(commits, w.JournalBytes())
			refEnc = append(refEnc, encPlacement(t, w.Placement()))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Passed {
		for _, cp := range ref.Failed() {
			t.Errorf("reference checkpoint %s/%s: %s", cp.Turn, cp.Name, cp.Detail)
		}
		t.Fatal("reference soak run failed its checkpoints; the crash wall has no baseline")
	}
	refLines := intervalLines(&refMetrics)
	n := len(commits)
	if n != len(refLines) {
		t.Fatalf("reference emitted %d interval records for %d intervals", len(refLines), n)
	}
	total := commits[n-1]

	rng := rand.New(rand.NewSource(crashWallSeed(t)))
	var cuts []int64
	for i := 0; i < 2; i++ { // exact commit boundaries, mid-turn
		cuts = append(cuts, commits[1+rng.Intn(n-2)])
	}
	for i := 0; i < 2; i++ { // anywhere in the stream
		cuts = append(cuts, 1+rng.Int63n(total-1))
	}

	for _, cut := range cuts {
		dir := t.TempDir()
		crashJ := walOpts(wal.NewCrashSwitch(cut))
		_, err := Run(SoakStress(), Options{StateDir: dir, journalOpts: &crashJ})
		if err == nil {
			t.Fatalf("cut %d: run survived the crash switch", cut)
		}
		if !errors.Is(err, wal.ErrCrashed) {
			t.Fatalf("cut %d: died with %v, want wal.ErrCrashed", cut, err)
		}

		// Recovery from the wreckage must be deterministic: two
		// independent opens reconstruct the same committed state.
		jdir := filepath.Join(dir, "controller")
		j1, err := controller.OpenJournal(jdir, walOpts(nil))
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		rec := j1.Recovery()
		k, interrupted := rec.Intervals, rec.Interrupted
		var recEnc []byte
		if rec.Placement != nil {
			recEnc = encPlacement(t, rec.Placement)
		}
		j1.Close()
		j2, err := controller.OpenJournal(jdir, walOpts(nil))
		if err != nil {
			t.Fatalf("cut %d: second recovery failed: %v", cut, err)
		}
		rec2 := j2.Recovery()
		if rec2.Intervals != k || rec2.Interrupted != interrupted ||
			(rec2.Placement != nil) != (rec.Placement != nil) ||
			(rec2.Placement != nil && !bytes.Equal(encPlacement(t, rec2.Placement), recEnc)) {
			t.Fatalf("cut %d: recovery is not deterministic", cut)
		}
		j2.Close()
		if k < 1 || k > n-1 {
			t.Fatalf("cut %d: recovered %d committed intervals, want within [1,%d]", cut, k, n-1)
		}

		// Resume the scenario from the same state directory.
		var resMetrics bytes.Buffer
		var finalEnc []byte
		resumeJ := walOpts(nil)
		res, err := Run(SoakStress(), Options{
			StateDir:    dir,
			Metrics:     &resMetrics,
			journalOpts: &resumeJ,
			afterTurn: func(w *World, _ TurnMetrics) {
				finalEnc = encPlacement(t, w.Placement())
			},
		})
		if err != nil {
			t.Fatalf("cut %d: resume failed: %v", cut, err)
		}
		if res.Recovered != k {
			t.Fatalf("cut %d: resume fast-forwarded %d intervals, journal committed %d", cut, res.Recovered, k)
		}

		if !interrupted {
			// Clean boundary: the crash is invisible. Every live interval
			// of the resumed run matches the reference record-for-record,
			// the final placement is byte-identical, and the checkpoints
			// that were not fast-forwarded all pass.
			resLines := intervalLines(&resMetrics)
			if len(resLines) != n-k {
				t.Fatalf("cut %d: resumed run emitted %d interval records, want %d", cut, len(resLines), n-k)
			}
			for i, ln := range resLines {
				if ln != refLines[k+i] {
					t.Fatalf("cut %d: interval record %d diverges from reference:\n  ref: %s\n  got: %s",
						cut, k+i, refLines[k+i], ln)
				}
			}
			if !bytes.Equal(finalEnc, refEnc[n-1]) {
				t.Fatalf("cut %d: resumed run's final placement diverges from the no-crash reference", cut)
			}
			if !res.Passed {
				for _, cp := range res.Failed() {
					t.Errorf("cut %d: checkpoint %s/%s: %s", cut, cp.Turn, cp.Name, cp.Detail)
				}
			}
		} else {
			// Mid-interval: the interrupted interval is re-planned from
			// the recovered realized placement, so the trajectory may
			// differ — the estate must stay whole.
			p, err := placement.Decode(finalEnc)
			if err != nil {
				t.Fatal(err)
			}
			if p.NumVMs() != ref.Servers {
				t.Fatalf("cut %d: resumed run tracks %d VMs, want %d", cut, p.NumVMs(), ref.Servers)
			}
		}
	}
}
