package scenario

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"vmwild/internal/fsx"
	"vmwild/internal/monitor"
	"vmwild/internal/stats"
	"vmwild/internal/trace"
	"vmwild/internal/wal"
)

// The disk-chaos wall: storage-fault drills against the durable plane —
// the warehouse journal lanes, the segmented WAL, its checkpoints and
// snapshots — running over a seeded fsx.FaultFS instead of a real failing
// disk. Where the network chaos wall (resilience.go) attacks the bytes in
// flight, this wall attacks the bytes at rest: torn writes, failed fsyncs,
// exhausted disks, failed checkpoint renames, bit rot on the read path,
// and a crash that tears every unsynced tail.
//
// Every fault decision is an identity-addressed draw from the run seed, so
// a drill is bit-reproducible: same seed, same fault schedule, same
// recovery. The checkpoints assert only storage-fault-free invariants:
//
//   - acknowledgment honesty: a nil ingest error means the sample is
//     durable; a failing disk surfaces typed, retryable errors (shed, not
//     silently dropped), and the two-sided sender/warehouse ledger
//     reconciles exactly through a full ENOSPC brownout;
//   - replay == acked: recovery through a clean filesystem yields exactly
//     the acknowledged records — a poisoned segment's doubtful tail is
//     never re-acked, and nothing acknowledged is lost;
//   - byte identity at commit boundaries: the recovered warehouse
//     serializes bit-identically to the pre-crash one (or to a clean
//     rebuild from the acked set), or recovery truncated at the documented
//     record boundary and says so;
//   - determinism: two independent recoveries of the same wreckage agree
//     byte for byte.

// DiskScenario is one storage-chaos drill. Unlike resilience scenarios it
// needs no sockets for its storage invariants (the ENOSPC drill runs the
// real sender/warehouse protocol over loopback purely to prove the ack
// ledger stays honest); the fault schedule is a pure function of the seed.
type DiskScenario struct {
	ID          string
	Name        string
	Description string

	run func(r *diskRig) error
}

// DiskChaos returns the disk-chaos drills in wall order.
func DiskChaos() []*DiskScenario {
	return []*DiskScenario{
		ENOSPCBrownout(),
		FsyncPoison(),
		TornRename(),
		CorruptReadRecovery(),
	}
}

// GetDiskChaos finds a disk-chaos drill by ID.
func GetDiskChaos(id string) (*DiskScenario, error) {
	for _, ds := range DiskChaos() {
		if ds.ID == id {
			return ds, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown disk-chaos scenario %q", id)
}

// Run executes the drill at the given seed. Run errors only on harness
// failures (temp dir, listen); invariant outcomes land in the Result's
// checkpoints.
func (ds *DiskScenario) Run(seed int64) (*Result, error) {
	r, err := newDiskRig(ds.ID, seed)
	if err != nil {
		return nil, err
	}
	defer r.close()
	if err := ds.run(r); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", ds.ID, err)
	}
	res := &Result{
		ID:          ds.ID,
		Seed:        seed,
		Servers:     r.servers,
		Checkpoints: r.checkpoints,
		Passed:      true,
	}
	for _, cp := range res.Checkpoints {
		if !cp.Passed {
			res.Passed = false
		}
	}
	return res, nil
}

// diskRig is the scratch state one disk drill runs in: a temp root the
// FaultFS draws are keyed relative to, and the checkpoint ledger.
type diskRig struct {
	id      string
	seed    int64
	root    string
	servers int

	turn        string
	checkpoints []CheckpointResult
}

func newDiskRig(id string, seed int64) (*diskRig, error) {
	root, err := os.MkdirTemp("", "vmwild-diskwall-")
	if err != nil {
		return nil, fmt.Errorf("scenario %s: temp root: %w", id, err)
	}
	return &diskRig{id: id, seed: seed, root: root, turn: "setup"}, nil
}

func (r *diskRig) close() { os.RemoveAll(r.root) }

// faultFS builds the drill's seeded fault injector rooted at the rig's
// temp dir, so the schedule is independent of where the temp dir landed.
func (r *diskRig) faultFS(p fsx.Profile) (*fsx.FaultFS, error) {
	return fsx.NewFaultFS(fsx.OS, r.root, r.seed, p)
}

// phase labels subsequent checkpoints.
func (r *diskRig) phase(name string) { r.turn = name }

// check records one invariant's outcome.
func (r *diskRig) check(name string, err error) {
	cp := CheckpointResult{Name: name, Turn: r.turn, Passed: err == nil}
	if err != nil {
		cp.Detail = err.Error()
	}
	r.checkpoints = append(r.checkpoints, cp)
}

// diskSample is the drills' deterministic ground truth: values are a pure
// function of (agent, index), so any retained or recovered sample can be
// checked bit for bit without a side table.
func diskSample(agent, i int) monitor.Sample {
	return monitor.Sample{
		Server:            trace.ServerID(fmt.Sprintf("disk-%02d", agent)),
		Timestamp:         soakEpoch.Add(time.Duration(i) * time.Minute),
		TotalProcessorPct: float64((i*37 + agent*11) % 101),
		MemCommittedMB:    float64(512 + (i*13+agent*7)%2048),
	}
}

// snapshotOf serializes a warehouse's full retained state (sorted by
// server then timestamp — the byte-identity surface of the wall).
func snapshotOf(w *monitor.Warehouse) ([]byte, error) {
	var buf bytes.Buffer
	if err := w.Snapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// storageErrTyped reports whether a write-path failure is one of the typed
// storage conditions the stack promises to surface — retryable disk-full,
// poisoned-by-failed-fsync, or an injected I/O fault — rather than an
// untyped mystery.
func storageErrTyped(err error) bool {
	return errors.Is(err, wal.ErrDiskFull) ||
		errors.Is(err, wal.ErrPoisoned) ||
		errors.Is(err, fsx.ErrInjected)
}

// ENOSPCBrownout fills the journal's disk mid-ingest and requires graceful
// degradation end to end: typed ErrDiskFull on the durable path, the
// warehouse latched into shed-ingest read-only mode, every network sample
// refused-and-counted (the ack never claims durability the journal
// refused — even when the disk fills mid-envelope), reads still served,
// and after the operator frees space an explicit resume plus a recovery
// that replays exactly the acked set, byte-identical.
func ENOSPCBrownout() *DiskScenario {
	const (
		agents  = 6
		shards  = 2
		steady  = 48 // samples per agent before the disk fills
		burst   = 32 // samples per agent queued against the full disk
		after   = 32 // samples per agent after the heal
		brownoutBudget = 1536 // bytes left when the brownout starts: a few samples, then ENOSPC
	)
	return &DiskScenario{
		ID:   "enospc-brownout",
		Name: "ENOSPC brownout",
		Description: "The journal disk fills mid-ingest: durable ingest fails with typed " +
			"ErrDiskFull, the warehouse sheds network ingest read-only with an exact " +
			"two-sided ledger, and after space frees recovery replays exactly the acked set.",
		run: func(r *diskRig) error {
			r.servers = agents
			ffs, err := r.faultFS(fsx.Profile{})
			if err != nil {
				return err
			}
			w := monitor.NewWarehouseShards(0, shards)
			walDir := filepath.Join(r.root, "wal")
			wl, err := monitor.OpenWarehouseLog(w, walDir, 1<<20,
				wal.Options{FS: ffs, Sync: wal.SyncAlways})
			if err != nil {
				return fmt.Errorf("open warehouse log: %w", err)
			}
			addr, err := w.Listen("127.0.0.1:0")
			if err != nil {
				wl.Close()
				return fmt.Errorf("warehouse listen: %w", err)
			}

			senders := make([]*monitor.ReliableSender, agents)
			for i := range senders {
				senders[i] = &monitor.ReliableSender{
					Addr:       addr,
					AgentID:    fmt.Sprintf("disk-agent-%02d", i),
					Seed:       stats.Split(r.seed, "diskwall", r.id, "sender", strconv.Itoa(i)),
					Backoff:    time.Millisecond,
					BackoffMax: 50 * time.Millisecond,
					Timeout:    2 * time.Second,
					Chunk:      16,
				}
			}
			next := make([]int, agents)
			queue := func(n int) {
				for a, s := range senders {
					for k := 0; k < n; k++ {
						s.Queue(diskSample(a, next[a]))
						next[a]++
					}
				}
			}
			flushAll := func(attempts int) error {
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				defer cancel()
				var firstErr error
				failed := 0
				for _, s := range senders {
					if err := s.Flush(ctx, attempts); err != nil {
						failed++
						if firstErr == nil {
							firstErr = err
						}
					}
				}
				if firstErr != nil {
					return fmt.Errorf("%d of %d senders unflushed: %w", failed, len(senders), firstErr)
				}
				return nil
			}
			totals := func() monitor.SenderCounters {
				var t monitor.SenderCounters
				for _, s := range senders {
					c := s.Counters()
					t.Queued += c.Queued
					t.DroppedQueue += c.DroppedQueue
					t.Acked += c.Acked
					t.ServerShed += c.ServerShed
					t.Pending += int64(s.Pending())
				}
				return t
			}
			// accounting is the two-sided ledger: the sender counters
			// reconcile to Queued with no slack, and the warehouse's books
			// agree sample for sample — acks equal admitted-and-stored,
			// sheds equal limiter-shed plus disk-shed, globally and per
			// shard.
			accounting := func() error {
				t := totals()
				if got := t.Acked + t.ServerShed + t.DroppedQueue + t.Pending; got != t.Queued {
					return fmt.Errorf("sender ledger leaks: queued %d but acked %d + shed %d + dropped %d + pending %d = %d",
						t.Queued, t.Acked, t.ServerShed, t.DroppedQueue, t.Pending, got)
				}
				m := w.Metrics()
				if m.AckedSamples != t.Acked {
					return fmt.Errorf("warehouse acked %d samples, senders hold acks for %d", m.AckedSamples, t.Acked)
				}
				if m.ShedIngest+m.ShedDisk != t.ServerShed {
					return fmt.Errorf("warehouse shed %d (%d limiter + %d disk), senders were told %d",
						m.ShedIngest+m.ShedDisk, m.ShedIngest, m.ShedDisk, t.ServerShed)
				}
				var stored, shardShed int64
				for _, sh := range m.Shards {
					stored += int64(sh.Samples)
					shardShed += sh.Shed
				}
				if stored != t.Acked {
					return fmt.Errorf("warehouse stores %d samples but acked %d — an ack without durability", stored, t.Acked)
				}
				if shardShed != m.ShedIngest+m.ShedDisk {
					return fmt.Errorf("per-shard shed %d does not sum to global %d", shardShed, m.ShedIngest+m.ShedDisk)
				}
				return nil
			}

			r.phase("steady")
			queue(steady)
			r.check("steady-ingest-clean", flushAll(10))
			r.check("steady-all-acked", func() error {
				t := totals()
				if t.Acked != t.Queued || t.Pending != 0 || t.ServerShed != 0 {
					return fmt.Errorf("queued %d: acked %d, shed %d, pending %d — want all acked",
						t.Queued, t.Acked, t.ServerShed, t.Pending)
				}
				return nil
			}())

			r.phase("brownout")
			ffs.SetDiskBudget(brownoutBudget)
			queue(burst)
			r.check("brownout-flush-completes", flushAll(10))
			r.check("enospc-actually-fired", func() error {
				if c := ffs.Counters(); c.NoSpace == 0 {
					return errors.New("the disk never refused a write — no brownout happened")
				}
				return nil
			}())
			r.check("degraded-mode-latched", func() error {
				if !w.DiskDegraded() {
					return errors.New("disk-full journal failures did not latch degraded mode")
				}
				if !w.UnderPressure() {
					return errors.New("degraded warehouse does not report pressure")
				}
				return nil
			}())
			r.check("brownout-sheds-not-acks", func() error {
				t := totals()
				if t.ServerShed == 0 {
					return errors.New("nothing was shed against a full disk")
				}
				if m := w.Metrics(); m.ShedDisk == 0 {
					return errors.New("no sample attributed to the disk-degraded gate")
				}
				return nil
			}())
			r.check("acks-stay-honest", accounting())
			r.check("reads-serve-degraded", func() error {
				t := totals()
				if got := w.Stats(); int64(got.Samples) != t.Acked {
					return fmt.Errorf("degraded warehouse serves %d samples, want the %d acked", got.Samples, t.Acked)
				}
				return nil
			}())

			r.phase("heal")
			ffs.SetDiskBudget(-1)
			w.ResumeIngest()
			queue(after)
			r.check("post-heal-ingest-clean", flushAll(10))
			r.check("nothing-left-pending", func() error {
				if t := totals(); t.Pending != 0 {
					return fmt.Errorf("%d samples still pending after the heal", t.Pending)
				}
				return nil
			}())
			r.check("accounting-exact", accounting())

			r.phase("recovery")
			for _, s := range senders {
				s.Close()
			}
			w.Close()
			pre, preErr := snapshotOf(w)
			if preErr != nil {
				return fmt.Errorf("pre-recovery snapshot: %w", preErr)
			}
			r.check("journal-closes-clean", wl.Close())
			t := totals()
			w2 := monitor.NewWarehouseShards(0, shards)
			wl2, err := monitor.OpenWarehouseLog(w2, walDir, 1<<20, wal.Options{})
			if err != nil {
				r.check("recovery-reopens", err)
				return nil
			}
			r.check("recovery-reopens", nil)
			defer wl2.Close()
			r.check("recovery-counts-acked", func() error {
				rec := wl2.Recovery()
				if got := int64(rec.Restored + rec.Replayed); got != t.Acked {
					return fmt.Errorf("recovered %d samples, want the %d acked (restored %d + replayed %d)",
						got, t.Acked, rec.Restored, rec.Replayed)
				}
				return nil
			}())
			r.check("recovery-byte-identical", func() error {
				post, err := snapshotOf(w2)
				if err != nil {
					return err
				}
				if !bytes.Equal(pre, post) {
					return fmt.Errorf("recovered snapshot (%d bytes) differs from the pre-close snapshot (%d bytes)",
						len(post), len(pre))
				}
				return nil
			}())
			return nil
		},
	}
}

// FsyncPoison runs durable ingest under randomly failing fsyncs and holds
// the poisoning contract: a failed fsync surfaces as typed ErrPoisoned and
// is never re-acked — the poisoned segment's doubtful tail is truncated to
// the durable watermark and the writer rotates — so recovery through a
// clean filesystem replays exactly the acknowledged set, byte for byte,
// twice over.
func FsyncPoison() *DiskScenario {
	const (
		shards  = 2
		agents  = 4
		samples = 600
	)
	return &DiskScenario{
		ID:   "fsync-poison",
		Name: "Fsync poisoning",
		Description: "Randomly failing fsyncs on the journal lanes: failed syncs poison " +
			"their segment (typed ErrPoisoned, never re-acked), the writer rotates, and " +
			"recovery replays exactly the acked set — byte-identical, deterministically.",
		run: func(r *diskRig) error {
			r.servers = agents
			ffs, err := r.faultFS(fsx.Profile{SyncErrProb: 0.08})
			if err != nil {
				return err
			}
			w := monitor.NewWarehouseShards(0, shards)
			walDir := filepath.Join(r.root, "wal")
			wl, err := monitor.OpenWarehouseLog(w, walDir, 64,
				wal.Options{FS: ffs, Sync: wal.SyncAlways, SegmentBytes: 4 << 10})
			if err != nil {
				return fmt.Errorf("open warehouse log: %w", err)
			}

			r.phase("ingest")
			var acked []monitor.Sample
			failures, sawPoison := 0, false
			var untyped error
			for i := 0; i < samples; i++ {
				s := diskSample(i%agents, i)
				if err := w.IngestDurable(s); err != nil {
					failures++
					if errors.Is(err, wal.ErrPoisoned) {
						sawPoison = true
					}
					if !storageErrTyped(err) && untyped == nil {
						untyped = err
					}
					continue
				}
				acked = append(acked, s)
			}
			r.check("sync-faults-fired", func() error {
				if c := ffs.Counters(); c.SyncFaults == 0 {
					return errors.New("no fsync ever failed — the drill did not happen")
				}
				return nil
			}())
			r.check("poison-surfaces-typed", func() error {
				if !sawPoison {
					return fmt.Errorf("%d ingest failures, none typed ErrPoisoned", failures)
				}
				return nil
			}())
			r.check("failures-all-typed", func() error {
				if untyped != nil {
					return fmt.Errorf("untyped storage failure escaped: %v", untyped)
				}
				return nil
			}())
			r.check("poison-latches-degraded", func() error {
				if !w.DiskDegraded() {
					return errors.New("poisoned journal did not latch degraded mode")
				}
				return nil
			}())

			r.phase("recovery")
			r.check("close-failure-typed", func() error {
				if err := wl.Close(); err != nil && !storageErrTyped(err) {
					return fmt.Errorf("close error is untyped: %v", err)
				}
				return nil
			}())
			// The reference: a clean warehouse holding exactly the acked
			// samples in ingest order.
			ref := monitor.NewWarehouseShards(0, shards)
			for _, s := range acked {
				ref.Ingest(s)
			}
			want, err := snapshotOf(ref)
			if err != nil {
				return fmt.Errorf("reference snapshot: %w", err)
			}
			recoverOnce := func() ([]byte, int, error) {
				w2 := monitor.NewWarehouseShards(0, shards)
				wl2, err := monitor.OpenWarehouseLog(w2, walDir, 64, wal.Options{})
				if err != nil {
					return nil, 0, err
				}
				defer wl2.Close()
				rec := wl2.Recovery()
				snap, err := snapshotOf(w2)
				return snap, rec.Restored + rec.Replayed, err
			}
			snap1, n1, err1 := recoverOnce()
			r.check("recovery-succeeds", err1)
			if err1 != nil {
				return nil
			}
			r.check("replay-is-exactly-acked", func() error {
				if n1 != len(acked) {
					return fmt.Errorf("recovered %d samples, want the %d acked", n1, len(acked))
				}
				if !bytes.Equal(snap1, want) {
					return errors.New("recovered state differs from a clean rebuild of the acked set — " +
						"a poisoned segment's doubtful bytes resurfaced or an acked record vanished")
				}
				return nil
			}())
			snap2, n2, err2 := recoverOnce()
			r.check("recovery-deterministic", func() error {
				if err2 != nil {
					return fmt.Errorf("second recovery failed: %w", err2)
				}
				if n2 != n1 || !bytes.Equal(snap1, snap2) {
					return errors.New("two recoveries of the same wreckage disagree")
				}
				return nil
			}())
			return nil
		},
	}
}

// TornRename batters a raw WAL with torn writes and failed checkpoint
// renames, then crashes it — every unsynced tail torn at a seeded point —
// and requires: the newest successfully renamed checkpoint survives intact
// (rename is atomic: it happened or it did not), replay equals exactly the
// records acked since it, no stale checkpoint temp files outlive recovery,
// and two recoveries of the wreckage agree byte for byte.
func TornRename() *DiskScenario {
	const (
		records   = 400
		ckptEvery = 20
	)
	return &DiskScenario{
		ID:   "torn-rename",
		Name: "Torn writes and failed checkpoint renames",
		Description: "Torn appends, failed checkpoint renames, then a crash that tears " +
			"every unsynced tail: the last renamed checkpoint survives bit-identical, " +
			"replay is exactly the records acked since it, and no temp files survive.",
		run: func(r *diskRig) error {
			ffs, err := r.faultFS(fsx.Profile{WriteErrProb: 0.12, RenameErrProb: 0.4})
			if err != nil {
				return err
			}
			dir := filepath.Join(r.root, "wal")
			log, _, err := wal.Open(dir, wal.Options{FS: ffs, Sync: wal.SyncAlways, SegmentBytes: 512})
			if err != nil {
				return fmt.Errorf("open wal: %w", err)
			}

			r.phase("batter")
			var ackedSince [][]byte // records acked after the last successful checkpoint
			var lastCkpt []byte
			ckptOK := 0
			var untypedAppend, untypedCkpt error
			for i := 0; i < records; i++ {
				rec := []byte(fmt.Sprintf("torn-rename record %04d", i))
				if err := log.Append(rec); err != nil {
					if !storageErrTyped(err) && untypedAppend == nil {
						untypedAppend = err
					}
					continue
				}
				ackedSince = append(ackedSince, rec)
				if (i+1)%ckptEvery == 0 {
					state := []byte(fmt.Sprintf("checkpoint state through %04d (%d acked)", i, len(ackedSince)))
					if err := log.Checkpoint(state); err != nil {
						if !storageErrTyped(err) && untypedCkpt == nil {
							untypedCkpt = err
						}
						continue
					}
					lastCkpt = state
					ckptOK++
					ackedSince = ackedSince[:0]
				}
			}
			r.check("write-and-rename-faults-fired", func() error {
				c := ffs.Counters()
				if c.WriteFaults == 0 {
					return errors.New("no write was ever torn")
				}
				if c.RenameFaults == 0 {
					return errors.New("no rename ever failed")
				}
				return nil
			}())
			r.check("append-errors-typed", func() error {
				if untypedAppend != nil {
					return fmt.Errorf("untyped append failure: %v", untypedAppend)
				}
				return nil
			}())
			r.check("checkpoint-errors-typed", func() error {
				if untypedCkpt != nil {
					return fmt.Errorf("untyped checkpoint failure: %v", untypedCkpt)
				}
				return nil
			}())
			r.check("some-checkpoint-committed", func() error {
				if ckptOK == 0 {
					return errors.New("no checkpoint ever committed; the survival invariant is vacuous")
				}
				return nil
			}())

			r.phase("crash")
			if err := ffs.Crash(); err != nil {
				return fmt.Errorf("crash tear: %w", err)
			}
			// The crashed log's handles are dead; recovery through a fresh,
			// clean view of the directory is the only way forward.

			r.phase("recovery")
			recoverOnce := func() (*wal.Recovered, error) {
				l, rec, err := wal.Open(dir, wal.Options{})
				if err != nil {
					return nil, err
				}
				if err := l.Close(); err != nil {
					return nil, fmt.Errorf("close recovered log: %w", err)
				}
				return rec, nil
			}
			rec1, err := recoverOnce()
			r.check("recovery-succeeds", err)
			if err != nil {
				return nil
			}
			r.check("last-renamed-checkpoint-survives", func() error {
				if !bytes.Equal(rec1.Checkpoint, lastCkpt) {
					return fmt.Errorf("recovered checkpoint %q, want the last committed %q",
						rec1.Checkpoint, lastCkpt)
				}
				return nil
			}())
			r.check("replay-is-exactly-acked", func() error {
				if len(rec1.Records) != len(ackedSince) {
					return fmt.Errorf("replayed %d records, want the %d acked since the checkpoint",
						len(rec1.Records), len(ackedSince))
				}
				for i := range rec1.Records {
					if !bytes.Equal(rec1.Records[i], ackedSince[i]) {
						return fmt.Errorf("record %d diverges: got %q, acked %q", i, rec1.Records[i], ackedSince[i])
					}
				}
				return nil
			}())
			r.check("no-stale-temp-files", func() error {
				entries, err := fsx.OS.ReadDir(dir)
				if err != nil {
					return err
				}
				for _, e := range entries {
					if strings.HasSuffix(e.Name(), ".tmp") {
						return fmt.Errorf("stale temp file %s survived recovery", e.Name())
					}
				}
				return nil
			}())
			rec2, err := recoverOnce()
			r.check("recovery-deterministic", func() error {
				if err != nil {
					return fmt.Errorf("second recovery failed: %w", err)
				}
				if !bytes.Equal(rec2.Checkpoint, rec1.Checkpoint) || len(rec2.Records) != len(rec1.Records) {
					return errors.New("two recoveries of the same wreckage disagree")
				}
				for i := range rec2.Records {
					if !bytes.Equal(rec2.Records[i], rec1.Records[i]) {
						return fmt.Errorf("record %d differs between recoveries", i)
					}
				}
				return nil
			}())
			return nil
		},
	}
}

// CorruptReadRecovery writes a clean, durable log, then recovers it
// through a bit-flipping read path: every recovery attempt must either
// refuse with typed ErrCorruptRecord or return only byte-identical true
// records — a prefix truncated at the documented record boundary — never
// an invented or reordered one. The final clean re-read must be
// deterministic.
func CorruptReadRecovery() *DiskScenario {
	const (
		records = 120
		ckptAt  = 59
	)
	return &DiskScenario{
		ID:   "corrupt-read-recovery",
		Name: "Corrupt-read recovery",
		Description: "Bit rot on the recovery read path: every attempt either refuses " +
			"with typed ErrCorruptRecord or yields only byte-identical true records " +
			"truncated at a record boundary — corruption is never silently recovered.",
		run: func(r *diskRig) error {
			dir := filepath.Join(r.root, "wal")
			log, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, SegmentBytes: 512})
			if err != nil {
				return fmt.Errorf("open wal: %w", err)
			}
			trueCkpt := []byte(fmt.Sprintf("checkpoint state through %04d", ckptAt))
			var trueTail [][]byte // records the checkpoint does not cover
			for i := 0; i < records; i++ {
				rec := []byte(fmt.Sprintf("corrupt-read record %04d", i))
				if err := log.Append(rec); err != nil {
					return fmt.Errorf("build append %d: %w", i, err)
				}
				if i > ckptAt {
					trueTail = append(trueTail, rec)
				}
				if i == ckptAt {
					if err := log.Checkpoint(trueCkpt); err != nil {
						return fmt.Errorf("build checkpoint: %w", err)
					}
				}
			}
			if err := log.Close(); err != nil {
				return fmt.Errorf("build close: %w", err)
			}

			// isTruePrefix: the recovered set is byte-identical true records
			// forming a contiguous prefix of the real tail — nothing
			// invented, nothing reordered, truncation only at the end.
			isTruePrefix := func(got [][]byte) error {
				if len(got) > len(trueTail) {
					return fmt.Errorf("recovered %d records from a log holding %d", len(got), len(trueTail))
				}
				for i := range got {
					if !bytes.Equal(got[i], trueTail[i]) {
						return fmt.Errorf("record %d diverges from the true log: got %q, want %q",
							i, got[i], trueTail[i])
					}
				}
				return nil
			}

			r.phase("corrupt-reads")
			ffs, err := r.faultFS(fsx.Profile{ReadCorruptProb: 0.25})
			if err != nil {
				return err
			}
			refused, succeeded := 0, 0
			var badErr, badSet error
			// At least 6 attempts, and keep going (bounded) until the read
			// path has actually corrupted something, so the drill is never
			// vacuous at an unlucky seed.
			for k := 0; k < 24 && (k < 6 || ffs.Counters().ReadCorrupts == 0); k++ {
				l, rec, err := wal.Open(dir, wal.Options{FS: ffs})
				if err != nil {
					refused++
					if !errors.Is(err, wal.ErrCorruptRecord) && badErr == nil {
						badErr = err
					}
					continue
				}
				succeeded++
				if !bytes.Equal(rec.Checkpoint, trueCkpt) && badSet == nil {
					badSet = errors.New("a corrupted read returned a checkpoint that differs from the committed bytes")
				}
				if err := isTruePrefix(rec.Records); err != nil && badSet == nil {
					badSet = err
				}
				if err := l.Close(); err != nil && badSet == nil {
					badSet = fmt.Errorf("close after corrupted-read recovery: %w", err)
				}
			}
			r.check("read-corruption-fired", func() error {
				if c := ffs.Counters(); c.ReadCorrupts == 0 {
					return errors.New("the read path never corrupted a byte — the drill did not happen")
				}
				return nil
			}())
			r.check("corruption-refusals-typed", func() error {
				if badErr != nil {
					return fmt.Errorf("a recovery refusal was not typed ErrCorruptRecord: %v", badErr)
				}
				return nil
			}())
			r.check("no-invented-records", func() error {
				if badSet != nil {
					return badSet
				}
				return nil
			}())

			r.phase("clean-reread")
			recoverClean := func() (*wal.Recovered, error) {
				l, rec, err := wal.Open(dir, wal.Options{})
				if err != nil {
					return nil, err
				}
				if err := l.Close(); err != nil {
					return nil, fmt.Errorf("close: %w", err)
				}
				return rec, nil
			}
			rec1, err := recoverClean()
			r.check("clean-recovery-succeeds", err)
			if err != nil {
				return nil
			}
			r.check("clean-recovery-at-record-boundary", func() error {
				if !bytes.Equal(rec1.Checkpoint, trueCkpt) {
					return errors.New("clean recovery lost the committed checkpoint")
				}
				return isTruePrefix(rec1.Records)
			}())
			rec2, err := recoverClean()
			r.check("recovery-deterministic", func() error {
				if err != nil {
					return fmt.Errorf("second clean recovery failed: %w", err)
				}
				if !bytes.Equal(rec2.Checkpoint, rec1.Checkpoint) || len(rec2.Records) != len(rec1.Records) {
					return errors.New("two clean recoveries disagree")
				}
				for i := range rec2.Records {
					if !bytes.Equal(rec2.Records[i], rec1.Records[i]) {
						return fmt.Errorf("record %d differs between clean recoveries", i)
					}
				}
				return nil
			}())
			return nil
		},
	}
}
