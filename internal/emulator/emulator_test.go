package emulator

import (
	"math"
	"testing"
	"time"

	"vmwild/internal/placement"
	"vmwild/internal/power"
	"vmwild/internal/sizing"
	"vmwild/internal/trace"
)

var (
	testSpec  = trace.Spec{CPURPE2: 1000, MemMB: 1000}
	testPower = power.HostModel{IdleWatts: 100, PeakWatts: 300}
)

func testConfig() Config {
	return Config{HostSpec: testSpec, Power: testPower}
}

func mkSet(cpuByServer map[string][]float64) *trace.Set {
	set := &trace.Set{Name: "t"}
	for id, cpu := range cpuByServer {
		samples := make([]trace.Usage, len(cpu))
		for i, c := range cpu {
			samples[i] = trace.Usage{CPU: c, Mem: 100}
		}
		s, err := trace.NewSeries(time.Hour, samples)
		if err != nil {
			panic(err)
		}
		set.Servers = append(set.Servers, &trace.ServerTrace{
			ID: trace.ServerID(id), Spec: testSpec, Series: s,
		})
	}
	return set
}

func mkPlacement(t *testing.T, assign map[string]string) *placement.Placement {
	t.Helper()
	p, err := placement.NewPlacement(testSpec, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	opened := make(map[string]bool)
	// Open hosts in deterministic order of first use.
	hostFor := make(map[string]string)
	for vm, host := range assign {
		hostFor[vm] = host
	}
	for _, host := range []string{"h0000", "h0001", "h0002", "h0003"} {
		needed := false
		for _, h := range hostFor {
			if h == host {
				needed = true
			}
		}
		if needed || len(opened) == 0 {
			p.OpenHost()
			opened[host] = true
		}
	}
	for vm, host := range assign {
		it := placement.Item{ID: trace.ServerID(vm), Demand: sizing.Demand{CPU: 1, Mem: 1}}
		if err := p.Assign(it, host); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestRunBasic(t *testing.T) {
	set := mkSet(map[string][]float64{
		"a": {100, 200},
		"b": {300, 400},
	})
	p := mkPlacement(t, map[string]string{"a": "h0000", "b": "h0000"})
	res, err := Run(set, StaticSchedule{P: p}, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Hours != 2 {
		t.Errorf("Hours = %d", res.Hours)
	}
	if res.ActiveHosts[0] != 1 || res.ActiveHosts[1] != 1 {
		t.Errorf("ActiveHosts = %v", res.ActiveHosts)
	}
	// Hour 0: util 0.4 -> 100+200*0.4 = 180 W.
	if math.Abs(res.PowerWatts[0]-180) > 1e-9 {
		t.Errorf("PowerWatts[0] = %v, want 180", res.PowerWatts[0])
	}
	if len(res.Hosts) != 1 {
		t.Fatalf("Hosts = %d", len(res.Hosts))
	}
	hs := res.Hosts[0]
	if math.Abs(hs.AvgCPUUtil-0.5) > 1e-9 {
		t.Errorf("AvgCPUUtil = %v, want 0.5", hs.AvgCPUUtil)
	}
	if math.Abs(hs.PeakCPUUtil-0.6) > 1e-9 {
		t.Errorf("PeakCPUUtil = %v, want 0.6", hs.PeakCPUUtil)
	}
	if res.ContentionHours != 0 || len(res.Contentions) != 0 {
		t.Error("no contention expected")
	}
	if math.Abs(res.AvgPowerWatts()-200) > 1e-9 {
		t.Errorf("AvgPowerWatts = %v, want 200 ((180+220)/2)", res.AvgPowerWatts())
	}
}

func TestRunContention(t *testing.T) {
	set := mkSet(map[string][]float64{
		"a": {600, 100},
		"b": {600, 100},
	})
	p := mkPlacement(t, map[string]string{"a": "h0000", "b": "h0000"})
	res, err := Run(set, StaticSchedule{P: p}, 2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ContentionHours != 1 {
		t.Fatalf("ContentionHours = %d, want 1", res.ContentionHours)
	}
	c := res.Contentions[0]
	if c.Hour != 0 || math.Abs(c.CPUOver-0.2) > 1e-9 {
		t.Errorf("contention = %+v, want hour 0 with 20%% CPU over", c)
	}
	if got := res.ContentionFraction(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ContentionFraction = %v, want 0.5", got)
	}
	mags := res.CPUContentionMagnitudes()
	if len(mags) != 1 || math.Abs(mags[0]-0.2) > 1e-9 {
		t.Errorf("magnitudes = %v", mags)
	}
}

func TestRunVirtOverheadAndDedup(t *testing.T) {
	set := mkSet(map[string][]float64{"a": {500}})
	p := mkPlacement(t, map[string]string{"a": "h0000"})
	cfg := testConfig()
	cfg.VirtOverhead = 0.10
	res, err := Run(set, StaticSchedule{P: p}, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// util = 500*1.1/1000 = 0.55 -> power 100+200*0.55 = 210.
	if math.Abs(res.PowerWatts[0]-210) > 1e-9 {
		t.Errorf("power with overhead = %v, want 210", res.PowerWatts[0])
	}
	cfg.DedupFactor = 0.5
	if _, err := Run(set, StaticSchedule{P: p}, 1, cfg); err != nil {
		t.Errorf("dedup config rejected: %v", err)
	}
}

func TestRunSwitchedOffHostsDrawNothing(t *testing.T) {
	set := mkSet(map[string][]float64{"a": {100}})
	p := mkPlacement(t, map[string]string{"a": "h0000"})
	p.OpenHost() // an empty host
	res, err := Run(set, StaticSchedule{P: p}, 1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveHosts[0] != 1 {
		t.Errorf("ActiveHosts = %d, want 1 (empty host off)", res.ActiveHosts[0])
	}
}

func TestRunErrors(t *testing.T) {
	set := mkSet(map[string][]float64{"a": {100}})
	p := mkPlacement(t, map[string]string{"a": "h0000"})
	if _, err := Run(set, StaticSchedule{P: p}, 0, testConfig()); err == nil {
		t.Error("expected error for zero hours")
	}
	if _, err := Run(set, StaticSchedule{P: p}, 5, testConfig()); err == nil {
		t.Error("expected error for trace shorter than replay")
	}
	bad := testConfig()
	bad.HostSpec = trace.Spec{}
	if _, err := Run(set, StaticSchedule{P: p}, 1, bad); err == nil {
		t.Error("expected error for invalid config")
	}
	// Placement referencing a VM with no trace.
	p2 := mkPlacement(t, map[string]string{"ghost": "h0000"})
	if _, err := Run(set, StaticSchedule{P: p2}, 1, testConfig()); err == nil {
		t.Error("expected error for unknown server")
	}
}

func TestIntervalSchedule(t *testing.T) {
	p1 := mkPlacement(t, map[string]string{})
	p2 := mkPlacement(t, map[string]string{})
	s := IntervalSchedule{IntervalHours: 2, Placements: []*placement.Placement{p1, p2}}
	if s.PlacementAt(0) != p1 || s.PlacementAt(1) != p1 {
		t.Error("hours 0-1 should use the first placement")
	}
	if s.PlacementAt(2) != p2 {
		t.Error("hour 2 should use the second placement")
	}
	if s.PlacementAt(99) != p2 {
		t.Error("beyond the last interval the final placement holds")
	}
	if (IntervalSchedule{}).PlacementAt(0) != nil {
		t.Error("empty schedule returns nil")
	}
}

func TestVerifyAccuracy(t *testing.T) {
	set := mkSet(map[string][]float64{
		"a": {100, 200, 300, 400},
		"b": {50, 60, 70, 80},
	})
	p := mkPlacement(t, map[string]string{"a": "h0000", "b": "h0000"})
	sched := StaticSchedule{P: p}

	rubis, err := VerifyAccuracy(set, sched, 4, testConfig(), RUBiSNoise, 1)
	if err != nil {
		t.Fatal(err)
	}
	daxpy, err := VerifyAccuracy(set, sched, 4, testConfig(), DaxpyNoise, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rubis <= 0 || daxpy <= 0 {
		t.Error("noisy verification should report positive error")
	}
	if daxpy >= rubis {
		t.Errorf("daxpy error %v should be below rubis error %v", daxpy, rubis)
	}
	// Zero noise -> zero error.
	zero, err := VerifyAccuracy(set, sched, 4, testConfig(), NoiseProfile{Name: "exact"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if zero != 0 {
		t.Errorf("zero-noise error = %v, want 0", zero)
	}
	if _, err := VerifyAccuracy(set, sched, 0, testConfig(), RUBiSNoise, 1); err == nil {
		t.Error("expected error for zero hours")
	}
	if _, err := VerifyAccuracy(set, sched, 4, testConfig(), NoiseProfile{Sigma: -1}, 1); err == nil {
		t.Error("expected error for negative sigma")
	}
}
